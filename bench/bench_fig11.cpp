// Figure 11: Guardian overhead on the GeForce RTX 3080 Ti (cv, rnn, lenet)
// — §7.5 "similar overhead across different GPU types".
#include <cstdio>

#include "simgpu/device_spec.hpp"
#include "workloads/harness.hpp"

int main() {
  using namespace grd::workloads;
  Harness geforce(grd::simgpu::GeForceRtx3080Ti());
  Harness quadro(grd::simgpu::QuadroRtxA4000());

  std::printf("Figure 11: standalone execution on GeForce RTX 3080 Ti "
              "(seconds)\n\n");
  std::printf("%-8s %9s %9s %9s %9s %10s %10s\n", "net", "Native", "Grd-noP",
              "fence-bit", "checking", "ovh(GeF)", "ovh(Quad)");
  for (const char* app : {"cv", "rnn", "lenet"}) {
    const AppRun run{app, 0, false};
    const double native =
        geforce.RunStandalone(run, Deployment::kNative).seconds;
    const double noprot =
        geforce.RunStandalone(run, Deployment::kGuardianNoProtection).seconds;
    const double bitwise =
        geforce.RunStandalone(run, Deployment::kGuardianBitwise).seconds;
    const double checking =
        geforce.RunStandalone(run, Deployment::kGuardianChecking).seconds;
    const double q_native =
        quadro.RunStandalone(run, Deployment::kNative).seconds;
    const double q_bitwise =
        quadro.RunStandalone(run, Deployment::kGuardianBitwise).seconds;
    std::printf("%-8s %9.3f %9.3f %9.3f %9.3f %9.1f%% %9.1f%%\n", app, native,
                noprot, bitwise, checking, 100.0 * (bitwise / native - 1.0),
                100.0 * (q_bitwise / q_native - 1.0));
  }
  std::printf("\nPaper: cv 12%%, rnn 10%%, lenet 13%% on GeForce; checking "
              "~1.8x; similar overheads across GPU types\n");
  return 0;
}
