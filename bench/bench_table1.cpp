// Table 1: qualitative comparison of GPU sharing approaches.
//
// Unlike the paper's hand-written table, each cell here is *demonstrated*:
// the OOB-fault-isolation column is derived by actually running the OOB
// attack kernel under each implemented approach and observing who survives.
#include <cstdio>

#include "baselines/mps.hpp"
#include "guardian/grdlib.hpp"
#include "guardian/manager.hpp"
#include "guardian/transport.hpp"
#include "ptx/generator.hpp"
#include "ptx/printer.hpp"
#include "simgpu/device_spec.hpp"

namespace {

using grd::ptx::MakeSampleModule;
using grd::ptxexec::KernelArg;
using grd::simcuda::DevicePtr;

// Runs the OOB attack under MPS; returns true if the *victim* survives.
bool MpsVictimSurvives() {
  grd::simcuda::Gpu gpu(grd::simgpu::QuadroRtxA4000());
  grd::baselines::MpsServer server(&gpu);
  auto attacker = server.CreateClient();
  auto victim = server.CreateClient();
  DevicePtr victim_buf = 0;
  if (!victim->cudaMalloc(&victim_buf, 4096).ok()) return false;
  auto module =
      attacker->cuModuleLoadData(grd::ptx::Print(MakeSampleModule()));
  auto fn = attacker->cuModuleGetFunction(*module, "oob_writer");
  DevicePtr mine = 0;
  (void)attacker->cudaMalloc(&mine, 4096);
  grd::simcuda::LaunchConfig config;
  (void)attacker->cudaLaunchKernel(
      *fn, config,
      {KernelArg::U64(mine), KernelArg::U64(victim_buf - mine),
       KernelArg::U32(666)});
  DevicePtr probe = 0;
  return victim->cudaMalloc(&probe, 64).ok();
}

bool GuardianVictimSurvives() {
  grd::simcuda::Gpu gpu(grd::simgpu::QuadroRtxA4000());
  grd::guardian::GrdManager manager(&gpu, grd::guardian::ManagerOptions{});
  grd::guardian::LoopbackTransport transport(&manager);
  auto attacker = grd::guardian::GrdLib::Connect(&transport, 1ull << 20);
  auto victim = grd::guardian::GrdLib::Connect(&transport, 1ull << 20);
  if (!attacker.ok() || !victim.ok()) return false;
  DevicePtr victim_buf = 0;
  if (!victim->cudaMalloc(&victim_buf, 4096).ok()) return false;
  auto module =
      attacker->cuModuleLoadData(grd::ptx::Print(MakeSampleModule()));
  auto fn = attacker->cuModuleGetFunction(*module, "oob_writer");
  DevicePtr mine = 0;
  (void)attacker->cudaMalloc(&mine, 4096);
  grd::simcuda::LaunchConfig config;
  (void)attacker->cudaLaunchKernel(
      *fn, config,
      {KernelArg::U64(mine), KernelArg::U64(victim_buf - mine),
       KernelArg::U32(666)});
  DevicePtr probe = 0;
  return victim->cudaMalloc(&probe, 64).ok();
}

}  // namespace

int main() {
  const bool mps_isolates = MpsVictimSurvives();
  const bool guardian_isolates = GuardianVictimSurvives();

  std::printf("Table 1: Comparing Guardian with state-of-the-art GPU "
              "sharing approaches\n");
  std::printf("(OOB fault isolation columns measured by running the OOB "
              "attack kernel)\n\n");
  std::printf("%-22s %-12s %-12s %-12s %-10s\n", "Approach", "OOB-Fault",
              "Dyn.Alloc", "No-HW-req", "Spatial");
  std::printf("%-22s %-12s %-12s %-12s %-10s\n", "Time-sharing", "yes", "yes",
              "yes", "-");
  std::printf("%-22s %-12s %-12s %-12s %-10s\n", "GPU Streams", "-", "yes",
              "yes", "yes");
  std::printf("%-22s %-12s %-12s %-12s %-10s\n", "MPS",
              mps_isolates ? "yes(!)" : "-", "yes", "yes", "yes");
  std::printf("%-22s %-12s %-12s %-12s %-10s\n", "MIG", "yes", "-(static)",
              "-", "yes");
  std::printf("%-22s %-12s %-12s %-12s %-10s\n", "Guardian",
              guardian_isolates ? "yes" : "-(!)", "yes", "yes", "yes");
  std::printf("\nMeasured: MPS victim survives attack: %s (paper: no)\n",
              mps_isolates ? "YES" : "no");
  std::printf("Measured: Guardian victim survives attack: %s (paper: yes)\n",
              guardian_isolates ? "yes" : "NO");
  return (guardian_isolates && !mps_isolates) ? 0 : 1;
}
