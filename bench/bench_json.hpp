// Shared emission of the machine-readable BENCH_*.json lines.
//
// Every bench used to hand-roll one giant snprintf; the builder keeps the
// exact output contract — keys in insertion order, fixed printf precision,
// one `BENCH_<name>.json {...}` line on stdout AND the same JSON written to
// ./BENCH_<name>.json — while making "add a field" a one-liner.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <type_traits>

namespace grd::bench {

class JsonLine {
 public:
  // Fixed-point double with an explicit precision, e.g. Add("p99_ms", v, 3)
  // renders "\"p99_ms\":1.234" exactly like the old %.3f emission.
  JsonLine& Add(const char* key, double value, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    Key(key);
    body_ += buf;
    return *this;
  }
  // Any integer type except bool (the template beats the bool overload for
  // them, so a uint32_t counter can never silently render as true/false).
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  JsonLine& Add(const char* key, T value) {
    char buf[32];
    if constexpr (std::is_signed_v<T>)
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    else
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(value));
    Key(key);
    body_ += buf;
    return *this;
  }
  JsonLine& Add(const char* key, bool value) {
    Key(key);
    body_ += value ? "true" : "false";
    return *this;
  }
  JsonLine& AddString(const char* key, const std::string& value) {
    Key(key);
    body_ += '"';
    for (const char c : value) {
      if (c == '"' || c == '\\') body_ += '\\';
      body_ += c;
    }
    body_ += '"';
    return *this;
  }

  std::string Build() const { return "{" + body_ + "}"; }

  // The emission contract: stdout line for the CI artifact splitter plus
  // the file for local runs. `name` is the stem, e.g. "interpreter".
  void Emit(const char* name) const {
    const std::string json = Build();
    std::printf("BENCH_%s.json %s\n", name, json.c_str());
    std::ofstream(std::string("BENCH_") + name + ".json") << json << "\n";
  }

 private:
  void Key(const char* key) {
    if (!body_.empty()) body_ += ',';
    body_ += '"';
    body_ += key;
    body_ += "\":";
  }

  std::string body_;
};

}  // namespace grd::bench
