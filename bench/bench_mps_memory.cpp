// §2.2 memory comparison: MPS creates one context per client while Guardian
// creates one context total. Reproduces: 4 clients -> MPS 734 MB vs Guardian
// 176 MB; 16 clients -> 2.8 GB vs 176 MB.
#include <cstdio>

#include "baselines/mps.hpp"
#include "common/strings.hpp"
#include "guardian/grdlib.hpp"
#include "guardian/manager.hpp"
#include "guardian/transport.hpp"
#include "simgpu/device_spec.hpp"

int main() {
  std::printf("GPU memory consumed by the sharing layer itself "
              "(no application data)\n\n");
  std::printf("%-10s %-14s %-14s %-8s\n", "#clients", "MPS", "Guardian",
              "ratio");
  for (const std::size_t clients : {1u, 2u, 4u, 8u, 16u}) {
    grd::simcuda::Gpu mps_gpu(grd::simgpu::QuadroRtxA4000());
    grd::baselines::MpsServer server(&mps_gpu);
    std::vector<std::unique_ptr<grd::baselines::MpsClient>> mps_clients;
    for (std::size_t i = 0; i < clients; ++i)
      mps_clients.push_back(server.CreateClient());

    grd::simcuda::Gpu grd_gpu(grd::simgpu::QuadroRtxA4000());
    grd::guardian::GrdManager manager(&grd_gpu,
                                      grd::guardian::ManagerOptions{});
    grd::guardian::LoopbackTransport transport(&manager);
    std::vector<grd::guardian::GrdLib> grd_clients;
    for (std::size_t i = 0; i < clients; ++i) {
      auto lib = grd::guardian::GrdLib::Connect(&transport, 1ull << 20);
      if (lib.ok()) grd_clients.push_back(std::move(*lib));
    }

    const auto mps_bytes = server.GpuMemoryFootprint();
    const auto grd_bytes = manager.SharingLayerFootprint();
    std::printf("%-10zu %-14s %-14s %.1fx\n", clients,
                grd::HumanBytes(mps_bytes).c_str(),
                grd::HumanBytes(grd_bytes).c_str(),
                static_cast<double>(mps_bytes) /
                    static_cast<double>(grd_bytes));
  }
  std::printf("\nPaper: 4 clients -> 734 MB vs 176 MB (4x); "
              "16 clients -> 2.8 GB vs 176 MB (16x)\n");
  return 0;
}
