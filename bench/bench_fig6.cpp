// Figure 6: multi-tenant GPU sharing — total execution time of the Table 4
// workload mixes (A-P) under Native time-sharing, MPS, Guardian without
// protection, and Guardian address fencing (bitwise).
#include <cstdio>

#include "simgpu/device_spec.hpp"
#include "workloads/harness.hpp"

int main(int argc, char** argv) {
  using namespace grd::workloads;
  // --full runs the paper's epoch counts; default scales by 10 for speed.
  const std::uint64_t scale =
      (argc > 1 && std::string(argv[1]) == "--full") ? 1 : 10;
  Harness harness(grd::simgpu::QuadroRtxA4000());

  std::printf("Figure 6: co-located execution time (seconds), Table 4 "
              "mixes, epoch scale 1/%llu\n\n",
              static_cast<unsigned long long>(scale));
  std::printf("%-3s %-34s %9s %9s %9s %9s %7s %7s\n", "ID", "Workload",
              "Native", "MPS", "Grd-noP", "Grd-fence", "vsNat", "vsMPS");

  double sum_vs_native = 0, sum_vs_mps = 0, sum_noprot_vs_mps = 0;
  int count = 0;
  for (const auto& mix : Table4Workloads()) {
    const auto runs = Harness::ExpandMix(mix, scale);
    const double native =
        harness.RunColocated(runs, Deployment::kNative).seconds;
    const double mps = harness.RunColocated(runs, Deployment::kMps).seconds;
    const double noprot =
        harness.RunColocated(runs, Deployment::kGuardianNoProtection).seconds;
    const double fence =
        harness.RunColocated(runs, Deployment::kGuardianBitwise).seconds;
    std::printf("%-3s %-34s %9.3f %9.3f %9.3f %9.3f %6.1f%% %6.2f%%\n",
                mix.id.c_str(), mix.name.c_str(), native, mps, noprot, fence,
                100.0 * (native / fence - 1.0), 100.0 * (fence / mps - 1.0));
    sum_vs_native += native / fence;
    sum_vs_mps += fence / mps;
    sum_noprot_vs_mps += noprot / mps;
    ++count;
  }
  std::printf("\nAverages across A-P:\n");
  std::printf("  Guardian fencing vs native time-sharing : %.1f%% faster "
              "(paper: 23%% faster, up to 2x)\n",
              100.0 * (sum_vs_native / count - 1.0));
  std::printf("  Guardian fencing vs MPS                 : %.2f%% slower "
              "(paper: 4.84%%)\n",
              100.0 * (sum_vs_mps / count - 1.0));
  std::printf("  Guardian w/o protection vs MPS          : %+.2f%% "
              "(paper: +0.05%%)\n",
              100.0 * (sum_noprot_vs_mps / count - 1.0));
  return 0;
}
