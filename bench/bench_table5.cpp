// Table 5: host-side cost in CPU cycles of the operations Guardian performs
// per intercepted kernel launch. These are REAL measurements of the real
// manager code paths (pointerToSymbol lookup in a std::unordered_map,
// parameter-array augmentation), timed with rdtsc, exactly like the paper's
// methodology (§7.6: 10 runs, min and max excluded).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <numeric>

#include "common/cycle_clock.hpp"
#include "guardian/grdlib.hpp"
#include "guardian/manager.hpp"
#include "guardian/transport.hpp"
#include "ptx/generator.hpp"
#include "ptx/printer.hpp"
#include "ptxpatcher/patcher.hpp"
#include "simgpu/device_spec.hpp"

namespace {

using namespace grd;

// Trimmed mean over 10 samples, min/max excluded (§7.6).
template <typename Fn>
double TrimmedMeanCycles(Fn&& fn) {
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 10; ++i) samples.push_back(CycleClock::Measure(fn));
  std::sort(samples.begin(), samples.end());
  const auto sum =
      std::accumulate(samples.begin() + 1, samples.end() - 1, std::uint64_t{0});
  return static_cast<double>(sum) / 8.0;
}

struct LaunchFixture {
  LaunchFixture()
      : gpu(simgpu::QuadroRtxA4000()),
        manager(&gpu, guardian::ManagerOptions{}),
        transport(&manager) {
    auto connected = guardian::GrdLib::Connect(&transport, 16ull << 20);
    lib.emplace(std::move(*connected));
    // Populate pointerToSymbol with many kernels so the lookup is realistic.
    const std::string ptx_text = ptx::Print(ptx::MakeSampleModule());
    for (int i = 0; i < 64; ++i) {
      auto module = lib->cuModuleLoadData(ptx_text);
      auto function = lib->cuModuleGetFunction(*module, "kernel");
      fn = *function;
    }
    (void)lib->cudaMalloc(&buffer, 4096);
  }

  simcuda::Gpu gpu;
  guardian::GrdManager manager;
  guardian::LoopbackTransport transport;
  std::optional<guardian::GrdLib> lib;
  simcuda::FunctionId fn = 0;
  simcuda::DevicePtr buffer = 0;
};

LaunchFixture& Fixture() {
  static LaunchFixture fixture;
  return fixture;
}

void BM_LookupGpuKernel(benchmark::State& state) {
  auto& f = Fixture();
  std::unordered_map<std::uint64_t, std::string> pointer_to_symbol;
  for (std::uint64_t i = 0; i < 4096; ++i)
    pointer_to_symbol[i] = "kernel_" + std::to_string(i);
  std::uint64_t key = 1;
  double cycles = 0;
  for (auto _ : state) {
    cycles = TrimmedMeanCycles([&] {
      benchmark::DoNotOptimize(pointer_to_symbol.find(key));
      key = (key * 2862933555777941757ull + 3037000493ull) % 4096;
    });
    benchmark::DoNotOptimize(cycles);
  }
  state.counters["cycles"] = cycles;
  (void)f;
}
BENCHMARK(BM_LookupGpuKernel);

void BM_AugmentKernelParams(benchmark::State& state) {
  const auto grd_args = ptxpatcher::ComputeGrdArgs(
      ptxpatcher::BoundsCheckMode::kFencingBitwise, 1ull << 20, 1ull << 20);
  const std::vector<ptxexec::KernelArg> original = {
      ptxexec::KernelArg::U64(0x1000), ptxexec::KernelArg::U32(5),
      ptxexec::KernelArg::U64(0x2000), ptxexec::KernelArg::U32(7)};
  double cycles = 0;
  for (auto _ : state) {
    cycles = TrimmedMeanCycles([&] {
      std::vector<ptxexec::KernelArg> augmented;
      augmented.reserve(original.size() + 2);
      for (const auto& arg : original) augmented.push_back(arg);
      augmented.push_back(ptxexec::KernelArg::U64(grd_args.arg0));
      augmented.push_back(ptxexec::KernelArg::U64(grd_args.arg1));
      benchmark::DoNotOptimize(augmented.data());
    });
    benchmark::DoNotOptimize(cycles);
  }
  state.counters["cycles"] = cycles;
}
BENCHMARK(BM_AugmentKernelParams);

void BM_FullInterceptedLaunch(benchmark::State& state) {
  auto& f = Fixture();
  simcuda::LaunchConfig config;
  config.block = {1, 1, 1};
  double cycles = 0;
  for (auto _ : state) {
    cycles = TrimmedMeanCycles([&] {
      (void)f.lib->cudaLaunchKernel(
          f.fn, config,
          {ptxexec::KernelArg::U64(f.buffer), ptxexec::KernelArg::U32(1)});
    });
    benchmark::DoNotOptimize(cycles);
  }
  state.counters["cycles"] = cycles;
}
BENCHMARK(BM_FullInterceptedLaunch);

void BM_ManagerMeasuredTable5(benchmark::State& state) {
  // The manager's own rdtsc accounting across many launches — the numbers
  // a deployment would report for Table 5.
  auto& f = Fixture();
  simcuda::LaunchConfig config;
  config.block = {1, 1, 1};
  for (auto _ : state) {
    (void)f.lib->cudaLaunchKernel(
        f.fn, config,
        {ptxexec::KernelArg::U64(f.buffer), ptxexec::KernelArg::U32(1)});
  }
  const auto& stats = f.manager.stats();
  if (stats.launches > 0) {
    state.counters["lookup_cycles_per_launch"] =
        static_cast<double>(stats.lookup_cycles) /
        static_cast<double>(stats.launches);
    state.counters["augment_cycles_per_launch"] =
        static_cast<double>(stats.augment_cycles) /
        static_cast<double>(stats.launches);
  }
}
BENCHMARK(BM_ManagerMeasuredTable5);

}  // namespace

BENCHMARK_MAIN();
