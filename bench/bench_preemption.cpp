// High-priority latency under a batch-tenant flood: a batch tenant keeps the
// whole simulated device busy with full-occupancy kernels while a realtime
// tenant repeatedly launches a small kernel and waits for it. With the
// preemption engine the batch kernel is revoked at its next safe point (one
// block boundary), so the realtime p99 launch-to-finish latency collapses
// from "remaining batch-kernel time" to roughly one block; the revoked
// kernel resumes from its checkpoint, so batch throughput stays within a few
// percent of the no-preemption baseline.
//
// Exits non-zero unless preemption (a) cuts the realtime p99, (b) actually
// fired (nonzero preemptions AND resumes), and (c) never replayed a
// completed block (exact device-block accounting, correct batch output).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "guardian/grdlib.hpp"
#include "guardian/manager.hpp"
#include "guardian/transport.hpp"
#include "ptx/generator.hpp"
#include "ptx/printer.hpp"
#include "simgpu/device_spec.hpp"

namespace {

using namespace grd;
using guardian::protocol::PriorityClass;

constexpr double kNsPerCycle = 300.0;    // ~180 µs modeled time per block
constexpr std::uint32_t kBatchBlock = 1024;
constexpr std::uint32_t kBatchElems = 48 * 1024;  // 48 blocks = every SM
constexpr int kBatchKernels = 4;
constexpr std::uint32_t kRtElems = 256;  // one block
constexpr int kRtRounds = 24;

struct RunStats {
  double hp_p50_ms = 0.0;
  double hp_p99_ms = 0.0;
  double batch_makespan_ms = 0.0;
  std::uint64_t preemptions = 0;
  std::uint64_t resumes = 0;
  std::uint64_t checkpoint_bytes = 0;
  std::uint64_t blocks_executed = 0;
  bool batch_output_ok = false;
  std::string stats_json;
};

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<std::size_t>(p * (xs.size() - 1));
  return xs[rank];
}

RunStats RunWorkload(bool preemption_enabled) {
  using Clock = std::chrono::steady_clock;
  using MsF = std::chrono::duration<double, std::milli>;

  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  guardian::ManagerOptions options;
  options.scheduler_executors = 4;
  options.device_time_ns_per_cycle = kNsPerCycle;
  options.preemption_enabled = preemption_enabled;
  options.aging_quantum_ns = 0;  // isolate preemption from aging
  guardian::GrdManager manager(&gpu, options);
  guardian::LoopbackTransport transport(&manager);
  const std::string ptx_text = ptx::Print(ptx::MakeSampleModule());

  auto batch = guardian::GrdLib::Connect(&transport, 16ull << 20);
  auto rt = guardian::GrdLib::Connect(&transport, 8ull << 20);
  if (!batch.ok() || !rt.ok()) {
    std::printf("connect failed\n");
    std::exit(1);
  }
  (void)batch->SetPriority(PriorityClass::kBatch);
  (void)rt->SetPriority(PriorityClass::kRealtime);

  auto batch_module = batch->cuModuleLoadData(ptx_text);
  auto batch_fn = batch->cuModuleGetFunction(*batch_module, "copyk");
  auto rt_module = rt->cuModuleLoadData(ptx_text);
  auto rt_fn = rt->cuModuleGetFunction(*rt_module, "copyk");

  simcuda::DevicePtr bsrc = 0, bdst = 0, rsrc = 0, rdst = 0;
  (void)batch->cudaMalloc(&bsrc, kBatchElems * 4);
  (void)batch->cudaMalloc(&bdst, kBatchElems * 4);
  (void)rt->cudaMalloc(&rsrc, kRtElems * 4);
  (void)rt->cudaMalloc(&rdst, kRtElems * 4);
  std::vector<std::uint32_t> bdata(kBatchElems);
  for (std::uint32_t i = 0; i < kBatchElems; ++i) bdata[i] = i * 7 + 5;
  (void)batch->cudaMemcpyH2D(bsrc, bdata.data(), kBatchElems * 4);
  std::vector<std::uint32_t> rdata(kRtElems, 0xFA57);
  (void)rt->cudaMemcpyH2D(rsrc, rdata.data(), kRtElems * 4);

  simcuda::StreamId bstream = 0, rstream = 0;
  (void)batch->cudaStreamCreate(&bstream);
  (void)rt->cudaStreamCreate(&rstream);

  simcuda::LaunchConfig bconfig;
  bconfig.block = {kBatchBlock, 1, 1};
  bconfig.grid = {kBatchElems / kBatchBlock, 1, 1};
  bconfig.stream = bstream;
  simcuda::LaunchConfig rconfig;
  rconfig.block = {256, 1, 1};
  rconfig.grid = {(kRtElems + 255) / 256, 1, 1};
  rconfig.stream = rstream;

  // Batch flood: back-to-back full-device kernels on one stream.
  const auto batch_begin = Clock::now();
  for (int i = 0; i < kBatchKernels; ++i) {
    const Status s = batch->cudaLaunchKernel(
        *batch_fn, bconfig,
        {ptxexec::KernelArg::U64(bsrc), ptxexec::KernelArg::U64(bdst),
         ptxexec::KernelArg::U32(kBatchElems)});
    if (!s.ok()) {
      std::printf("batch launch failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  }

  // Realtime tenant: launch-to-finish latency, one small kernel at a time.
  std::vector<double> latencies_ms;
  latencies_ms.reserve(kRtRounds);
  for (int round = 0; round < kRtRounds; ++round) {
    const auto begin = Clock::now();
    Status s = rt->cudaLaunchKernel(
        *rt_fn, rconfig,
        {ptxexec::KernelArg::U64(rsrc), ptxexec::KernelArg::U64(rdst),
         ptxexec::KernelArg::U32(kRtElems)});
    if (s.ok()) s = rt->cudaStreamSynchronize(rstream);
    if (!s.ok()) {
      std::printf("realtime round failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
    latencies_ms.push_back(MsF(Clock::now() - begin).count());
  }

  (void)batch->cudaStreamSynchronize(bstream);
  const double batch_makespan = MsF(Clock::now() - batch_begin).count();

  RunStats out;
  out.hp_p50_ms = Percentile(latencies_ms, 0.5);
  out.hp_p99_ms = Percentile(latencies_ms, 0.99);
  out.batch_makespan_ms = batch_makespan;
  out.preemptions = manager.stats().preemptions;
  out.resumes = manager.stats().preemption_resumes;
  out.checkpoint_bytes = manager.stats().checkpoint_bytes_saved;
  out.blocks_executed = manager.stats().kernel_blocks_executed;
  out.stats_json = manager.stats().ToJson();

  std::vector<std::uint32_t> bout(kBatchElems);
  out.batch_output_ok =
      batch
          ->cudaMemcpy(bout.data(), bdst, kBatchElems * 4,
                       simcuda::MemcpyKind::kDeviceToHost)
          .ok() &&
      bout == bdata;
  return out;
}

}  // namespace

int main() {
  std::printf("realtime latency under a batch flood: %d batch kernels x %u "
              "blocks (full device) vs %d realtime rounds\n\n",
              kBatchKernels, kBatchElems / kBatchBlock, kRtRounds);

  const RunStats baseline = RunWorkload(/*preemption_enabled=*/false);
  const RunStats preempt = RunWorkload(/*preemption_enabled=*/true);

  std::printf("%-26s %-12s %-12s %-14s %-12s %-9s\n", "engine", "hp_p50_ms",
              "hp_p99_ms", "batch_ms", "preemptions", "resumes");
  std::printf("%-26s %-12.2f %-12.2f %-14.1f %-12llu %-9llu\n",
              "no preemption (baseline)", baseline.hp_p50_ms,
              baseline.hp_p99_ms, baseline.batch_makespan_ms,
              static_cast<unsigned long long>(baseline.preemptions),
              static_cast<unsigned long long>(baseline.resumes));
  std::printf("%-26s %-12.2f %-12.2f %-14.1f %-12llu %-9llu\n",
              "preemption engine", preempt.hp_p50_ms, preempt.hp_p99_ms,
              preempt.batch_makespan_ms,
              static_cast<unsigned long long>(preempt.preemptions),
              static_cast<unsigned long long>(preempt.resumes));
  // Full structured export (per-class wait histograms included) replaces
  // further ad-hoc counter dumps.
  std::printf("\nMANAGER_STATS %s\n", preempt.stats_json.c_str());

  std::printf("\ncheckpoint bytes saved: %llu; batch overhead: %+.1f%%; "
              "p99 speedup: %.1fx\n",
              static_cast<unsigned long long>(preempt.checkpoint_bytes),
              baseline.batch_makespan_ms > 0.0
                  ? (preempt.batch_makespan_ms / baseline.batch_makespan_ms -
                     1.0) *
                        100.0
                  : 0.0,
              preempt.hp_p99_ms > 0.0
                  ? baseline.hp_p99_ms / preempt.hp_p99_ms
                  : 0.0);

  // Machine-readable line for cross-PR perf tracking.
  bench::JsonLine json;
  json.Add("hp_p50_ms", preempt.hp_p50_ms, 3)
      .Add("hp_p99_ms", preempt.hp_p99_ms, 3)
      .Add("hp_p50_baseline_ms", baseline.hp_p50_ms, 3)
      .Add("hp_p99_baseline_ms", baseline.hp_p99_ms, 3)
      .Add("batch_makespan_ms", preempt.batch_makespan_ms, 3)
      .Add("batch_makespan_baseline_ms", baseline.batch_makespan_ms, 3)
      .Add("preemptions", preempt.preemptions)
      .Add("resumes", preempt.resumes)
      .Add("checkpoint_bytes", preempt.checkpoint_bytes);
  json.Emit("preemption");

  const std::uint64_t expected_blocks =
      static_cast<std::uint64_t>(kBatchKernels) * (kBatchElems / kBatchBlock) +
      static_cast<std::uint64_t>(kRtRounds) * (kRtElems / 256);
  bool ok = true;
  if (preempt.preemptions == 0 || preempt.resumes == 0) {
    std::printf("FAIL: the engine never preempted/resumed a kernel\n");
    ok = false;
  }
  if (preempt.hp_p99_ms >= baseline.hp_p99_ms) {
    std::printf("FAIL: preemption did not improve realtime p99\n");
    ok = false;
  }
  if (preempt.blocks_executed != expected_blocks) {
    std::printf("FAIL: %llu device blocks executed, expected %llu "
                "(completed blocks were replayed?)\n",
                static_cast<unsigned long long>(preempt.blocks_executed),
                static_cast<unsigned long long>(expected_blocks));
    ok = false;
  }
  if (!preempt.batch_output_ok) {
    std::printf("FAIL: preempted batch kernel produced a wrong result\n");
    ok = false;
  }
  if (baseline.preemptions != 0) {
    std::printf("FAIL: baseline run preempted with the engine disabled\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
