// Figure 9: per-thread register usage of sandboxed kernels vs native, under
// (a) no optimization (-G: one architectural register per virtual register)
// and (b) -O3 (linear-scan reuse over live ranges). Run over a generated
// kernel corpus; prints the histogram of extra registers.
#include <cstdio>
#include <map>

#include "common/rng.hpp"
#include "ptx/generator.hpp"
#include "ptxpatcher/patcher.hpp"
#include "ptxpatcher/regmodel.hpp"

int main() {
  using namespace grd;
  using namespace grd::ptxpatcher;

  std::map<long, std::size_t> histogram_noopt, histogram_o3;
  std::size_t kernels = 0;

  Rng rng(2024);
  PatchOptions options;
  auto account = [&](const ptx::Kernel& kernel) {
    auto patched = PatchKernel(kernel, options);
    if (!patched.ok()) return;
    const RegisterUsage native = EstimateRegisterUsage(kernel);
    const RegisterUsage sandboxed = EstimateRegisterUsage(patched->kernel);
    histogram_noopt[static_cast<long>(sandboxed.no_opt) -
                    static_cast<long>(native.no_opt)]++;
    histogram_o3[static_cast<long>(sandboxed.optimized) -
                 static_cast<long>(native.optimized)]++;
    ++kernels;
  };

  for (const auto& kernel : ptx::MakeSampleModule().kernels) account(kernel);
  // A corpus shaped like the Caffe library row of Table 3, scaled down.
  ptx::LibraryCorpusSpec spec{"corpus", 1000, 4, 67440, 25460};
  ptx::GenerateCorpus(spec, /*seed=*/7, account);

  auto print = [&](const char* title, const std::map<long, std::size_t>& h) {
    std::printf("%s\n", title);
    std::printf("%-18s %-10s %s\n", "extra registers", "#kernels", "share");
    for (const auto& [delta, count] : h) {
      std::printf("%-18ld %-10zu %5.1f%%\n", delta, count,
                  100.0 * static_cast<double>(count) /
                      static_cast<double>(kernels));
    }
    std::printf("\n");
  };

  std::printf("Figure 9: Guardian per-thread register usage vs native "
              "(%zu kernels)\n\n", kernels);
  print("(a) No optimizations (-G)", histogram_noopt);
  print("(b) Optimization level 3 (-O3)", histogram_o3);
  std::printf("Paper: -G: up to 4 extra registers in 62%% of kernels; "
              "-O3: 71%% none, 13%% one, 7%% two; spilling in 0.9%% of "
              "PyTorch kernels\n");
  return 0;
}
