// Ablation of Guardian's design choices (DESIGN.md §4):
//
//  A. Bounds-check mechanism x cache residency: why bitwise fencing wins
//     (the §4.4 tradeoff behind choosing AND/OR over modulo/checking).
//  B. Power-of-two partitions: the internal fragmentation they cost for the
//     evaluation apps vs the per-access cycles arbitrary-size (modulo)
//     fencing would cost — the allocator-vs-instruction tradeoff.
//  C. IPC dispatch-cost sensitivity: how much the Figure 6 Guardian-vs-MPS
//     result depends on the manager's per-launch dispatch cost.
#include <cstdio>

#include "common/bits.hpp"
#include "common/strings.hpp"
#include "simgpu/device_spec.hpp"
#include "simgpu/timing.hpp"
#include "workloads/apps.hpp"
#include "workloads/harness.hpp"
#include "workloads/table4.hpp"

int main() {
  using namespace grd;
  using namespace grd::workloads;
  const simgpu::DeviceSpec spec = simgpu::QuadroRtxA4000();
  const simgpu::TimingModel model(spec);

  // --- A: mechanism x cache residency -----------------------------------
  std::printf("A. Fencing overhead vs cache residency (pure-memory kernel)\n\n");
  std::printf("%-12s %10s %10s %10s\n", "L1 hit", "bitwise", "modulo",
              "checking");
  for (const double l1 : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    simgpu::KernelProfile profile;
    profile.loads = 100;
    profile.cache.l1_hit = l1;
    profile.cache.l2_hit = 0.72;
    std::printf("%-12.0f %9.1f%% %9.1f%% %9.1f%%\n", 100 * l1,
                100 * model.RelativeOverhead(
                          profile, simgpu::ProtectionMode::kFencingBitwise),
                100 * model.RelativeOverhead(
                          profile, simgpu::ProtectionMode::kFencingModulo),
                100 * model.RelativeOverhead(
                          profile, simgpu::ProtectionMode::kChecking));
  }

  // --- B: power-of-two rounding waste ------------------------------------
  std::printf("\nB. Power-of-two partition rounding (the §4.4 allocator "
              "tradeoff)\n\n");
  std::printf("%-14s %12s %12s %8s\n", "app", "requested", "partition",
              "waste");
  double total_requested = 0, total_partition = 0;
  for (const auto& name : AllAppNames()) {
    const AppSpec& app = GetApp(name);
    const std::uint64_t partition = NextPowerOfTwo(app.memory_bytes);
    total_requested += static_cast<double>(app.memory_bytes);
    total_partition += static_cast<double>(partition);
    std::printf("%-14s %12s %12s %7.0f%%\n", name.c_str(),
                HumanBytes(app.memory_bytes).c_str(),
                HumanBytes(partition).c_str(),
                100.0 * (static_cast<double>(partition) /
                             static_cast<double>(app.memory_bytes) -
                         1.0));
  }
  std::printf("\naverage rounding waste: %.0f%%; the alternative (modulo "
              "fencing, arbitrary sizes) costs %+0.0f cycles per access "
              "instead of %.0f\n",
              100.0 * (total_partition / total_requested - 1.0),
              model.ProtectionCyclesPerAccess(
                  simgpu::ProtectionMode::kFencingModulo, 0.0),
              model.ProtectionCyclesPerAccess(
                  simgpu::ProtectionMode::kFencingBitwise, 0.0));

  // --- C: dispatch-cost sensitivity ---------------------------------------
  std::printf("\nC. Sensitivity of the Figure 6 average to the manager's "
              "per-launch dispatch cost\n\n");
  std::printf("%-18s %14s %14s\n", "dispatch cycles", "fencing/MPS",
              "fencing/native");
  for (const double dispatch : {250.0, 750.0, 1500.0, 3000.0, 6000.0}) {
    Harness harness(spec);
    const_cast<HostCostModel&>(harness.costs()).guardian_dispatch = dispatch;
    double vs_mps = 0, vs_native = 0;
    int count = 0;
    for (const auto& mix : Table4Workloads()) {
      const auto runs = Harness::ExpandMix(mix, 20);
      const double mps =
          harness.RunColocated(runs, Deployment::kMps).total_cycles;
      const double native =
          harness.RunColocated(runs, Deployment::kNative).total_cycles;
      const double fence =
          harness.RunColocated(runs, Deployment::kGuardianBitwise)
              .total_cycles;
      vs_mps += fence / mps;
      vs_native += fence / native;
      ++count;
    }
    std::printf("%-18.0f %+13.1f%% %+13.1f%%\n", dispatch,
                100.0 * (vs_mps / count - 1.0),
                100.0 * (vs_native / count - 1.0));
  }
  std::printf("\nEven at 4x the calibrated dispatch cost, spatial Guardian "
              "stays well ahead of time-sharing; the MPS gap is what moves.\n");
  return 0;
}
