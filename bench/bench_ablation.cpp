// Ablation of Guardian's design choices (DESIGN.md §4):
//
//  A. Bounds-check mechanism x cache residency: why bitwise fencing wins
//     (the §4.4 tradeoff behind choosing AND/OR over modulo/checking).
//  B. Power-of-two partitions: the internal fragmentation they cost for the
//     evaluation apps vs the per-access cycles arbitrary-size (modulo)
//     fencing would cost — the allocator-vs-instruction tradeoff.
//  C. IPC dispatch-cost sensitivity: how much the Figure 6 Guardian-vs-MPS
//     result depends on the manager's per-launch dispatch cost.
//  D. Guard elision: the patcher's CFG/loop analysis vs full per-access
//     patching on a fenced-loop corpus — static inserted instructions,
//     dynamically executed guard instructions, and effective compiled-tier
//     throughput on the hot pointer-walk loop. Writes the machine-readable
//     line to stdout AND to ./BENCH_guard_elision.json; exits non-zero
//     unless elision removes >= 40% of the executed guard instructions and
//     delivers >= 1.3x effective Minstr/s on the hot loop. GRD_BENCH_QUICK=1
//     shrinks phase D for CI smoke runs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_json.hpp"
#include "common/bits.hpp"
#include "common/strings.hpp"
#include "ptx/generator.hpp"
#include "ptxexec/interpreter.hpp"
#include "ptxpatcher/patcher.hpp"
#include "simgpu/device_spec.hpp"
#include "simgpu/timing.hpp"
#include "workloads/apps.hpp"
#include "workloads/harness.hpp"
#include "workloads/table4.hpp"

namespace {

// Executed-instruction count of one compiled-tier run (exits on failure).
std::uint64_t RunInstructions(const grd::ptx::Module& module,
                              const std::string& kernel,
                              const grd::ptxexec::LaunchParams& params) {
  grd::simgpu::GlobalMemory memory(8ull << 20);
  grd::simgpu::AllowAllPolicy allow;
  grd::ptxexec::Interpreter interp(&memory, &allow, 1);
  auto stats = interp.Execute(module, kernel, params);
  if (!stats.ok()) {
    std::printf("phase D run failed (%s): %s\n", kernel.c_str(),
                stats.status().ToString().c_str());
    std::exit(1);
  }
  return stats->instructions;
}

// Best-of-`reps` wall time of the compiled-tier hot loop, in seconds. The
// one-time lowering happens outside the timed region, like every launch
// after the first through the manager's compiled-program cache.
double RunSecondsBest(const grd::ptx::Module& module, const std::string& kernel,
                      const grd::ptxexec::LaunchParams& params, int reps) {
  using Clock = std::chrono::steady_clock;
  grd::simgpu::GlobalMemory memory(8ull << 20);
  grd::simgpu::AllowAllPolicy allow;
  grd::ptxexec::Interpreter interp(&memory, &allow, 1);
  const grd::ptx::Kernel* k = module.FindKernel(kernel);
  auto compiled = grd::ptxexec::CompileKernel(*k);
  if (!compiled.ok()) {
    std::printf("phase D compile failed: %s\n",
                compiled.status().ToString().c_str());
    std::exit(1);
  }
  double best = 1e30;
  for (int rep = 0; rep < reps; ++rep) {
    const auto begin = Clock::now();
    auto stats = interp.Execute(*compiled, params);
    const double secs =
        std::chrono::duration<double>(Clock::now() - begin).count();
    if (!stats.ok()) {
      std::printf("phase D timed run failed: %s\n",
                  stats.status().ToString().c_str());
      std::exit(1);
    }
    if (secs < best) best = secs;
  }
  return best;
}

}  // namespace

int main() {
  using namespace grd;
  using namespace grd::workloads;
  const simgpu::DeviceSpec spec = simgpu::QuadroRtxA4000();
  const simgpu::TimingModel model(spec);

  // --- A: mechanism x cache residency -----------------------------------
  std::printf("A. Fencing overhead vs cache residency (pure-memory kernel)\n\n");
  std::printf("%-12s %10s %10s %10s\n", "L1 hit", "bitwise", "modulo",
              "checking");
  for (const double l1 : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    simgpu::KernelProfile profile;
    profile.loads = 100;
    profile.cache.l1_hit = l1;
    profile.cache.l2_hit = 0.72;
    std::printf("%-12.0f %9.1f%% %9.1f%% %9.1f%%\n", 100 * l1,
                100 * model.RelativeOverhead(
                          profile, simgpu::ProtectionMode::kFencingBitwise),
                100 * model.RelativeOverhead(
                          profile, simgpu::ProtectionMode::kFencingModulo),
                100 * model.RelativeOverhead(
                          profile, simgpu::ProtectionMode::kChecking));
  }

  // --- B: power-of-two rounding waste ------------------------------------
  std::printf("\nB. Power-of-two partition rounding (the §4.4 allocator "
              "tradeoff)\n\n");
  std::printf("%-14s %12s %12s %8s\n", "app", "requested", "partition",
              "waste");
  double total_requested = 0, total_partition = 0;
  for (const auto& name : AllAppNames()) {
    const AppSpec& app = GetApp(name);
    const std::uint64_t partition = NextPowerOfTwo(app.memory_bytes);
    total_requested += static_cast<double>(app.memory_bytes);
    total_partition += static_cast<double>(partition);
    std::printf("%-14s %12s %12s %7.0f%%\n", name.c_str(),
                HumanBytes(app.memory_bytes).c_str(),
                HumanBytes(partition).c_str(),
                100.0 * (static_cast<double>(partition) /
                             static_cast<double>(app.memory_bytes) -
                         1.0));
  }
  std::printf("\naverage rounding waste: %.0f%%; the alternative (modulo "
              "fencing, arbitrary sizes) costs %+0.0f cycles per access "
              "instead of %.0f\n",
              100.0 * (total_partition / total_requested - 1.0),
              model.ProtectionCyclesPerAccess(
                  simgpu::ProtectionMode::kFencingModulo, 0.0),
              model.ProtectionCyclesPerAccess(
                  simgpu::ProtectionMode::kFencingBitwise, 0.0));

  // --- C: dispatch-cost sensitivity ---------------------------------------
  std::printf("\nC. Sensitivity of the Figure 6 average to the manager's "
              "per-launch dispatch cost\n\n");
  std::printf("%-18s %14s %14s\n", "dispatch cycles", "fencing/MPS",
              "fencing/native");
  for (const double dispatch : {250.0, 750.0, 1500.0, 3000.0, 6000.0}) {
    Harness harness(spec);
    const_cast<HostCostModel&>(harness.costs()).guardian_dispatch = dispatch;
    double vs_mps = 0, vs_native = 0;
    int count = 0;
    for (const auto& mix : Table4Workloads()) {
      const auto runs = Harness::ExpandMix(mix, 20);
      const double mps =
          harness.RunColocated(runs, Deployment::kMps).total_cycles;
      const double native =
          harness.RunColocated(runs, Deployment::kNative).total_cycles;
      const double fence =
          harness.RunColocated(runs, Deployment::kGuardianBitwise)
              .total_cycles;
      vs_mps += fence / mps;
      vs_native += fence / native;
      ++count;
    }
    std::printf("%-18.0f %+13.1f%% %+13.1f%%\n", dispatch,
                100.0 * (vs_mps / count - 1.0),
                100.0 * (vs_native / count - 1.0));
  }
  std::printf("\nEven at 4x the calibrated dispatch cost, spatial Guardian "
              "stays well ahead of time-sharing; the MPS gap is what moves.\n");

  // --- D: guard elision vs full per-access patching -----------------------
  using ptxexec::KernelArg;
  using ptxexec::LaunchParams;
  const bool quick = std::getenv("GRD_BENCH_QUICK") != nullptr;
  std::printf("\nD. Guard elision (patcher CFG/loop analysis) vs full "
              "per-access patching\n\n");

  // Fenced-loop corpus: two affine pointer-walk loops (versioned behind one
  // preheader range check) and a straight-line repeated-RMW kernel (fences
  // dominated by identical earlier fences).
  ptx::Module corpus;
  corpus.kernels.push_back(ptx::MakePointerWalkKernel("walk1", 1));
  corpus.kernels.push_back(ptx::MakePointerWalkKernel("walk2", 2));
  corpus.kernels.push_back(ptx::MakeRepeatedRmwKernel("rmw", 4));

  ptxpatcher::PatchOptions full_options;  // bitwise, elision off
  ptxpatcher::PatchStats full_stats;
  auto full = ptxpatcher::PatchModule(corpus, full_options, &full_stats);
  ptxpatcher::PatchOptions elide_options;
  elide_options.elision_enabled = true;
  ptxpatcher::PatchStats elide_stats;
  auto elided = ptxpatcher::PatchModule(corpus, elide_options, &elide_stats);
  if (!full.ok() || !elided.ok()) {
    std::printf("phase D patch failed\n");
    return 1;
  }

  // Dynamic guard cost: executed instructions of each patched flavor minus
  // the unpatched kernel, summed over the corpus. This is the number that
  // matters — a versioned loop trades a constant preheader check (plus a
  // never-executed slow clone, which inflates the *static* count) for zero
  // in-loop fences.
  const std::uint64_t elision_base = 1ull << 20;  // 1 MiB partition, aligned
  const std::uint64_t elision_size = 1ull << 20;
  const auto elision_grd = ptxpatcher::ComputeGrdArgs(
      full_options.mode, elision_base, elision_size);
  const std::uint32_t dyn_iters = quick ? 32 : 128;
  std::uint64_t native_dyn = 0, full_dyn = 0, elided_dyn = 0;
  for (const auto& k : corpus.kernels) {
    LaunchParams params;
    params.block = {32, 1, 1};
    params.args = {KernelArg::U64(elision_base)};
    if (k.name != "rmw") params.args.push_back(KernelArg::U32(dyn_iters));
    LaunchParams patched_params = params;
    patched_params.args.push_back(KernelArg::U64(elision_grd.arg0));
    patched_params.args.push_back(KernelArg::U64(elision_grd.arg1));
    native_dyn += RunInstructions(corpus, k.name, params);
    full_dyn += RunInstructions(*full, k.name, patched_params);
    elided_dyn += RunInstructions(*elided, k.name, patched_params);
  }
  const std::uint64_t full_guards = full_dyn - native_dyn;
  const std::uint64_t elided_guards = elided_dyn - native_dyn;
  const double guard_reduction =
      full_guards > 0
          ? 1.0 - static_cast<double>(elided_guards) /
                      static_cast<double>(full_guards)
          : 0.0;

  // Hot-loop throughput: effective Minstr/s = native-equivalent instructions
  // per second, so both flavors are scored on useful work, not on how many
  // guard instructions they manage to retire.
  const std::uint32_t hot_iters = quick ? 256 : 2048;
  LaunchParams hot;
  hot.block = {32, 1, 1};
  hot.args = {KernelArg::U64(elision_base), KernelArg::U32(hot_iters),
              KernelArg::U64(elision_grd.arg0),
              KernelArg::U64(elision_grd.arg1)};
  LaunchParams hot_native = hot;
  hot_native.args.resize(2);
  const std::uint64_t hot_useful =
      RunInstructions(corpus, "walk2", hot_native);
  const int reps = quick ? 3 : 7;
  const double full_secs = RunSecondsBest(*full, "walk2", hot, reps);
  const double elided_secs = RunSecondsBest(*elided, "walk2", hot, reps);
  const double full_mips =
      static_cast<double>(hot_useful) / full_secs / 1e6;
  const double elided_mips =
      static_cast<double>(hot_useful) / elided_secs / 1e6;
  const double speedup = full_mips > 0.0 ? elided_mips / full_mips : 0.0;

  std::printf("%-34s %12s %12s\n", "", "full patch", "elision");
  std::printf("%-34s %12llu %12llu\n", "static inserted instructions",
              static_cast<unsigned long long>(full_stats.inserted_instructions),
              static_cast<unsigned long long>(
                  elide_stats.inserted_instructions));
  std::printf("%-34s %12llu %12llu\n", "executed guard instructions",
              static_cast<unsigned long long>(full_guards),
              static_cast<unsigned long long>(elided_guards));
  std::printf("%-34s %12.1f %12.1f\n", "hot-loop effective Minstr/s",
              full_mips, elided_mips);
  std::printf("\nguard elision: %llu elided, %llu hoisted, %llu loops "
              "versioned; %.0f%% fewer executed guard instructions, %.2fx "
              "hot-loop throughput\n",
              static_cast<unsigned long long>(elide_stats.guards_elided),
              static_cast<unsigned long long>(elide_stats.guards_hoisted),
              static_cast<unsigned long long>(elide_stats.loop_range_checks),
              100.0 * guard_reduction, speedup);

  bench::JsonLine json;
  json.Add("full_inserted", full_stats.inserted_instructions)
      .Add("elided_inserted", elide_stats.inserted_instructions)
      .Add("full_guard_instructions", full_guards)
      .Add("elided_guard_instructions", elided_guards)
      .Add("guard_reduction", guard_reduction, 3)
      .Add("guards_elided", elide_stats.guards_elided)
      .Add("guards_hoisted", elide_stats.guards_hoisted)
      .Add("loop_range_checks", elide_stats.loop_range_checks)
      .Add("hot_full_mips", full_mips, 2)
      .Add("hot_elided_mips", elided_mips, 2)
      .Add("hot_speedup", speedup, 2)
      .Add("quick", quick);
  json.Emit("guard_elision");

  bool ok = true;
  if (guard_reduction < 0.40) {
    std::printf("FAIL: executed guard reduction %.0f%% < 40%%\n",
                100.0 * guard_reduction);
    ok = false;
  }
  if (speedup < 1.3) {
    std::printf("FAIL: hot-loop speedup %.2fx < 1.3x\n", speedup);
    ok = false;
  }
  return ok ? 0 : 1;
}
