// Kernel-execution hot path across all execution tiers, plus cold vs cached
// launch latency through the grdManager's compiled-program cache.
//
//  phase 1 — Minstr/s on an ALU-heavy loop kernel and on a patched (fenced)
//            memory-copy kernel at every tier:
//              cold      — the seed string-map reference engine
//              compiled  — PR 4 bytecode, enum-switch dispatch (tier 0)
//              fused     — superinstruction-fused program, switch dispatch
//                          (tier 1): the whole loop body retires per dispatch
//              threaded  — fused program under direct-threaded computed-goto
//                          dispatch (tier 2; falls back to the switch loop
//                          where labels-as-values is unavailable)
//  phase 2 — ModuleLoad + first-launch latency for a cold tenant (parse +
//            patch + compile) vs a tenant whose identical PTX hits the
//            sandbox cache (hash + source compare only), then enough warm
//            launches to cross both promotion thresholds, proving the
//            manager's heat-keyed tier promotion end to end.
//  phase 3 — tracing overhead gate: the same manager-path launch workload
//            with tracing off vs on (spans emitted for every request,
//            queue wait and execution segment); tracing-on must stay
//            within 5% of tracing-off Minstr/s.
//
// Exits non-zero unless the compiled engine is >= 3x the reference on both
// workloads, the best fused/threaded tier is >= 2x compiled on the hot ALU
// loop (>= 0.9x on the memory copy — fencing is load/store bound), the cache
// hit skipped CompileKernel, and phase 2 performed both promotions. Writes
// the machine-readable line to stdout AND to ./BENCH_interpreter.json.
// GRD_BENCH_QUICK=1 shrinks the workload for CI smoke runs (all tiers still
// exercised).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "guardian/grdlib.hpp"
#include "guardian/manager.hpp"
#include "guardian/transport.hpp"
#include "obs/trace.hpp"
#include "ptx/generator.hpp"
#include "ptx/parser.hpp"
#include "ptx/printer.hpp"
#include "ptxexec/interpreter.hpp"
#include "ptxexec/tier.hpp"
#include "ptxpatcher/patcher.hpp"
#include "simgpu/device_spec.hpp"

namespace {

using namespace grd;
using ptxexec::ExecStats;
using ptxexec::KernelArg;
using ptxexec::LaunchParams;

// ALU-heavy loop: ~8 instructions per iteration, no memory traffic beyond
// one final store — isolates per-step dispatch/operand costs.
constexpr char kAluPtx[] = R"(
.version 7.7
.target sm_86
.address_size 64
.visible .entry aluspin(
    .param .u64 out,
    .param .u32 iters
)
{
    .reg .pred %p1;
    .reg .b32 %r<8>;
    .reg .b64 %rd<6>;
    ld.param.u64 %rd1, [out];
    ld.param.u32 %r1, [iters];
    cvta.to.global.u64 %rd1, %rd1;
    mov.u32 %r2, %tid.x;
    mov.u32 %r3, 0;
LOOP:
    mad.lo.u32 %r2, %r2, 1664525, 1013904223;
    xor.b32 %r4, %r2, %r3;
    shr.u32 %r5, %r4, 7;
    add.u32 %r3, %r3, %r5;
    add.u32 %r6, %r6, 1;
    setp.lt.u32 %p1, %r6, %r1;
    @%p1 bra LOOP;
    mov.u32 %r7, %ctaid.x;
    mad.lo.u32 %r7, %r7, 64, %r2;
    mul.wide.u32 %rd2, %r7, 0;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r3;
    ret;
}
)";

struct EngineScore {
  double mips = 0.0;  // million interpreted instructions per second
  std::uint64_t instructions = 0;
};

template <typename RunFn>
EngineScore Measure(int reps, RunFn&& run) {
  using Clock = std::chrono::steady_clock;
  EngineScore best;
  for (int rep = 0; rep < reps; ++rep) {
    const auto begin = Clock::now();
    const ExecStats stats = run();
    const double secs =
        std::chrono::duration<double>(Clock::now() - begin).count();
    const double mips =
        secs > 0.0 ? static_cast<double>(stats.instructions) / secs / 1e6 : 0;
    if (mips > best.mips) best = EngineScore{mips, stats.instructions};
  }
  return best;
}

// One kernel/launch measured at every tier: cold reference, compiled
// bytecode, fused (tier 1) and direct-threaded (tier 2).
struct TierScores {
  EngineScore cold;      // string-map reference engine
  EngineScore compiled;  // tier 0: enum-switch bytecode
  EngineScore fused;     // tier 1: superinstructions, switch dispatch
  EngineScore threaded;  // tier 2: superinstructions, computed goto
  std::uint32_t superinstructions = 0;
};

TierScores Race(const ptx::Module& module, const std::string& kernel,
                const LaunchParams& params, int reps) {
  simgpu::GlobalMemory memory(16ull << 20);
  simgpu::AllowAllPolicy allow;
  ptxexec::Interpreter interp(&memory, &allow, 1);
  TierScores out;

  out.cold = Measure(reps, [&] {
    auto stats = interp.ExecuteReference(module, kernel, params);
    if (!stats.ok()) {
      std::printf("reference run failed: %s\n",
                  stats.status().ToString().c_str());
      std::exit(1);
    }
    return *stats;
  });

  // The one-time lowering (and, for tiers >= 1, the one-time fusion pass)
  // happens outside the measured launches — that is the whole point:
  // launches should not pay per-call rewrite costs.
  const ptx::Kernel* k = module.FindKernel(kernel);
  auto compiled = ptxexec::CompileKernel(*k);
  if (!compiled.ok()) {
    std::printf("compile failed: %s\n", compiled.status().ToString().c_str());
    std::exit(1);
  }
  out.compiled = Measure(reps, [&] {
    auto stats = interp.Execute(*compiled, params);
    if (!stats.ok()) {
      std::printf("compiled run failed: %s\n",
                  stats.status().ToString().c_str());
      std::exit(1);
    }
    return *stats;
  });

  const ptxexec::CompiledKernel fused = ptxexec::FuseKernel(*compiled);
  out.superinstructions = fused.super_count;
  const auto run_tier = [&](ptxexec::ExecTier tier) {
    return Measure(reps, [&] {
      auto stats = interp.Execute(fused, params, ptxexec::ExecControls{}, tier);
      if (!stats.ok()) {
        std::printf("tier-%d run failed: %s\n", static_cast<int>(tier),
                    stats.status().ToString().c_str());
        std::exit(1);
      }
      return *stats;
    });
  };
  out.fused = run_tier(ptxexec::ExecTier::kFused);
  out.threaded = run_tier(ptxexec::ExecTier::kThreaded);
  return out;
}

struct LaunchLatency {
  double load_us = 0.0;    // ModuleLoad: parse [+ patch + compile | cache hit]
  double launch_us = 0.0;  // first launch + sync
};

// ModuleLoad then one launch + sync through the manager, timed separately.
LaunchLatency LoadAndLaunch(guardian::GrdLib& lib, const std::string& ptx,
                            std::uint32_t n) {
  using Clock = std::chrono::steady_clock;
  using UsF = std::chrono::duration<double, std::micro>;
  LaunchLatency out;
  const auto load_begin = Clock::now();
  auto module = lib.cuModuleLoadData(ptx);
  out.load_us = UsF(Clock::now() - load_begin).count();
  if (!module.ok()) {
    std::printf("module load failed: %s\n",
                module.status().ToString().c_str());
    std::exit(1);
  }
  auto fn = lib.cuModuleGetFunction(*module, "copyk");
  if (!fn.ok()) {
    std::printf("get function failed: %s\n", fn.status().ToString().c_str());
    std::exit(1);
  }
  simcuda::DevicePtr src = 0, dst = 0;
  (void)lib.cudaMalloc(&src, n * 4);
  (void)lib.cudaMalloc(&dst, n * 4);
  simcuda::LaunchConfig config;
  config.block = {256, 1, 1};
  config.grid = {(n + 255) / 256, 1, 1};
  const auto launch_begin = Clock::now();
  const Status launched = lib.cudaLaunchKernel(
      *fn, config,
      {KernelArg::U64(src), KernelArg::U64(dst), KernelArg::U32(n)});
  if (!launched.ok()) {
    std::printf("launch failed: %s\n", launched.ToString().c_str());
    std::exit(1);
  }
  (void)lib.cudaDeviceSynchronize();
  out.launch_us = UsF(Clock::now() - launch_begin).count();
  return out;
}

}  // namespace

int main() {
  const bool quick = std::getenv("GRD_BENCH_QUICK") != nullptr;
  const int reps = quick ? 3 : 7;
  const std::uint32_t iters = quick ? 2'000 : 20'000;

  // ---- phase 1: instructions/sec ------------------------------------------
  auto alu_module = ptx::Parse(kAluPtx);
  if (!alu_module.ok()) {
    std::printf("parse failed: %s\n", alu_module.status().ToString().c_str());
    return 1;
  }
  LaunchParams alu_params;
  alu_params.grid = {4, 1, 1};
  alu_params.block = {64, 1, 1};
  alu_params.args = {KernelArg::U64(0x10000), KernelArg::U32(iters)};
  const TierScores alu = Race(*alu_module, "aluspin", alu_params, reps);

  // Fenced memory traffic: the sandboxed copy kernel every tenant runs.
  ptxpatcher::PatchOptions patch_options;
  auto patched = ptxpatcher::PatchModule(ptx::MakeSampleModule(),
                                         patch_options);
  if (!patched.ok()) {
    std::printf("patch failed: %s\n", patched.status().ToString().c_str());
    return 1;
  }
  const std::uint64_t base = 1ull << 20;
  const std::uint32_t mem_elems = quick ? 16 * 1024 : 64 * 1024;
  const auto grd_args = ptxpatcher::ComputeGrdArgs(
      patch_options.mode, base, 4ull << 20);
  LaunchParams mem_params;
  mem_params.grid = {(mem_elems + 255) / 256, 1, 1};
  mem_params.block = {256, 1, 1};
  mem_params.args = {KernelArg::U64(base), KernelArg::U64(base + (2ull << 20)),
                     KernelArg::U32(mem_elems), KernelArg::U64(grd_args.arg0),
                     KernelArg::U64(grd_args.arg1)};
  const TierScores mem = Race(*patched, "copyk", mem_params, reps);

  const auto ratio = [](double num, double den) {
    return den > 0.0 ? num / den : 0.0;
  };
  const double alu_speedup = ratio(alu.compiled.mips, alu.cold.mips);
  const double mem_speedup = ratio(mem.compiled.mips, mem.cold.mips);
  // Tier gain: best of fused/threaded over the tier-0 compiled engine.
  const double alu_tier_speedup =
      ratio(std::max(alu.fused.mips, alu.threaded.mips), alu.compiled.mips);
  const double mem_tier_speedup =
      ratio(std::max(mem.fused.mips, mem.threaded.mips), mem.compiled.mips);

  std::printf("interpreter hot path per tier (%d reps, best; Minstr/s)\n",
              reps);
  std::printf("tier-2 dispatch: %s\n\n",
              ptxexec::ThreadedDispatchAvailable()
                  ? "computed goto"
                  : "switch fallback (GRD_NO_COMPUTED_GOTO)");
  std::printf("%-22s %-11s %-11s %-11s %-11s %-10s %-9s\n", "workload",
              "cold", "compiled", "fused", "threaded", "vs cold",
              "tier gain");
  std::printf("%-22s %-11.1f %-11.1f %-11.1f %-11.1f %-9.1fx %-8.2fx\n",
              "alu loop", alu.cold.mips, alu.compiled.mips, alu.fused.mips,
              alu.threaded.mips, alu_speedup, alu_tier_speedup);
  std::printf("%-22s %-11.1f %-11.1f %-11.1f %-11.1f %-9.1fx %-8.2fx\n",
              "fenced copy", mem.cold.mips, mem.compiled.mips, mem.fused.mips,
              mem.threaded.mips, mem_speedup, mem_tier_speedup);
  std::printf("superinstructions: alu %u, fenced copy %u\n",
              alu.superinstructions, mem.superinstructions);

  // ---- phase 2: cold vs cached launch, then heat-keyed promotion ----------
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  guardian::ManagerOptions manager_options;
  // Low explicit thresholds so a short bench run crosses both promotions.
  manager_options.tier1_launch_threshold = 2;
  manager_options.tier2_launch_threshold = 4;
  guardian::GrdManager manager(&gpu, manager_options);
  guardian::LoopbackTransport transport(&manager);
  auto cold_tenant = guardian::GrdLib::Connect(&transport, 8ull << 20);
  auto warm_tenant = guardian::GrdLib::Connect(&transport, 8ull << 20);
  if (!cold_tenant.ok() || !warm_tenant.ok()) {
    std::printf("connect failed\n");
    return 1;
  }
  const std::string sample_ptx = ptx::Print(ptx::MakeSampleModule());
  const std::uint32_t launch_elems = quick ? 4 * 1024 : 16 * 1024;
  const LaunchLatency cold = LoadAndLaunch(*cold_tenant, sample_ptx,
                                           launch_elems);
  const LaunchLatency cached = LoadAndLaunch(*warm_tenant, sample_ptx,
                                             launch_elems);
  // Warm launches past both thresholds (2 and 4 above): the module's
  // cache-slot heat promotes it to the fused program and then to
  // direct-threaded dispatch; the manager counters prove both fired.
  for (int i = 0; i < 6; ++i)
    (void)LoadAndLaunch(*warm_tenant, sample_ptx, launch_elems);
  const std::uint64_t programs_compiled =
      manager.stats().ptx_programs_compiled;
  const std::uint64_t tier1_promotions = manager.stats().tier1_promotions;
  const std::uint64_t tier2_promotions = manager.stats().tier2_promotions;
  const std::uint64_t tier1_instructions =
      manager.stats().tier_instructions[1];
  const std::uint64_t tier2_instructions =
      manager.stats().tier_instructions[2];

  std::printf("\ncold   module load: %9.1f us (parse + patch + compile); "
              "first launch: %9.1f us\n", cold.load_us, cold.launch_us);
  std::printf("cached module load: %9.1f us (cache hit: hash + compare); "
              "first launch: %9.1f us\n", cached.load_us, cached.launch_us);
  std::printf("programs compiled by the manager: %llu (second tenant "
              "recompiled nothing)\n",
              static_cast<unsigned long long>(programs_compiled));
  std::printf("tier promotions: %llu to fused, %llu to threaded "
              "(tier1 %llu instr, tier2 %llu instr)\n",
              static_cast<unsigned long long>(tier1_promotions),
              static_cast<unsigned long long>(tier2_promotions),
              static_cast<unsigned long long>(tier1_instructions),
              static_cast<unsigned long long>(tier2_instructions));
  std::printf("\nMANAGER_STATS %s\n", manager.stats().ToJson().c_str());

  // ---- phase 3: tracing overhead gate -------------------------------------
  // The identical manager-path launch workload with the recorder off vs on.
  // Tracing is per-request spans (client span, dispatch span, queue wait,
  // execution segment) — never per-instruction — so throughput must stay
  // within 5% of the untraced run.
  const int trace_reps = quick ? 3 : 5;
  const int trace_launches = quick ? 4 : 12;
  const auto traced_mips = [&](bool tracing) {
    simcuda::Gpu trace_gpu(simgpu::QuadroRtxA4000());
    guardian::ManagerOptions trace_options;
    trace_options.tracing_enabled = tracing;
    guardian::GrdManager trace_manager(&trace_gpu, trace_options);
    // The manager ctor only ever *enables* the recorder; the off-phase must
    // turn it off explicitly (a previous phase may have left it on).
    obs::TraceRecorder::Instance().Enable(tracing);
    guardian::LoopbackTransport trace_transport(&trace_manager);
    auto tenant = guardian::GrdLib::Connect(&trace_transport, 8ull << 20);
    if (!tenant.ok()) {
      std::printf("tracing-phase connect failed\n");
      std::exit(1);
    }
    auto module = tenant->cuModuleLoadData(kAluPtx);
    if (!module.ok()) {
      std::printf("tracing-phase load failed: %s\n",
                  module.status().ToString().c_str());
      std::exit(1);
    }
    auto fn = tenant->cuModuleGetFunction(*module, "aluspin");
    if (!fn.ok()) {
      std::printf("tracing-phase get function failed: %s\n",
                  fn.status().ToString().c_str());
      std::exit(1);
    }
    simcuda::LaunchConfig config;
    config.grid = {4, 1, 1};
    config.block = {64, 1, 1};
    const std::vector<KernelArg> args = {KernelArg::U64(0x10000),
                                         KernelArg::U32(iters)};
    const auto launch_all = [&] {
      for (int l = 0; l < trace_launches; ++l) {
        const Status launched = tenant->cudaLaunchKernel(*fn, config, args);
        if (!launched.ok()) {
          std::printf("tracing-phase launch failed: %s\n",
                      launched.ToString().c_str());
          std::exit(1);
        }
      }
    };
    launch_all();  // warm the sandbox cache + program lookup
    using Clock = std::chrono::steady_clock;
    double best = 0.0;
    for (int rep = 0; rep < trace_reps; ++rep) {
      const auto& stats = trace_manager.stats();
      const auto retired = [&stats] {
        return stats.tier_instructions[0].load() +
               stats.tier_instructions[1].load() +
               stats.tier_instructions[2].load();
      };
      const std::uint64_t before = retired();
      const auto begin = Clock::now();
      launch_all();
      const double secs =
          std::chrono::duration<double>(Clock::now() - begin).count();
      const double mips =
          secs > 0.0 ? static_cast<double>(retired() - before) / secs / 1e6
                     : 0.0;
      best = std::max(best, mips);
    }
    return best;
  };
  const double tracing_off_mips = traced_mips(false);
  const double tracing_on_mips = traced_mips(true);
  obs::TraceRecorder::Instance().Enable(false);
  const double tracing_ratio = ratio(tracing_on_mips, tracing_off_mips);
  std::printf("\ntracing overhead (manager path, %d launches x %d reps): "
              "off %.1f Minstr/s, on %.1f Minstr/s (%.3fx)\n",
              trace_launches, trace_reps, tracing_off_mips, tracing_on_mips,
              tracing_ratio);

  bench::JsonLine json;
  json.Add("alu_cold_mips", alu.cold.mips, 2)
      .Add("alu_compiled_mips", alu.compiled.mips, 2)
      .Add("alu_fused_mips", alu.fused.mips, 2)
      .Add("alu_threaded_mips", alu.threaded.mips, 2)
      .Add("alu_speedup", alu_speedup, 2)
      .Add("alu_tier_speedup", alu_tier_speedup, 2)
      .Add("mem_cold_mips", mem.cold.mips, 2)
      .Add("mem_compiled_mips", mem.compiled.mips, 2)
      .Add("mem_fused_mips", mem.fused.mips, 2)
      .Add("mem_threaded_mips", mem.threaded.mips, 2)
      .Add("mem_speedup", mem_speedup, 2)
      .Add("mem_tier_speedup", mem_tier_speedup, 2)
      .Add("threaded_dispatch", ptxexec::ThreadedDispatchAvailable())
      .Add("cold_load_us", cold.load_us, 1)
      .Add("cached_load_us", cached.load_us, 1)
      .Add("cold_first_launch_us", cold.launch_us, 1)
      .Add("cached_first_launch_us", cached.launch_us, 1)
      .Add("programs_compiled", programs_compiled)
      .Add("tier1_promotions", tier1_promotions)
      .Add("tier2_promotions", tier2_promotions)
      .Add("tier1_instructions", tier1_instructions)
      .Add("tier2_instructions", tier2_instructions)
      .Add("tracing_off_mips", tracing_off_mips, 2)
      .Add("tracing_on_mips", tracing_on_mips, 2)
      .Add("tracing_overhead_ratio", tracing_ratio, 3)
      .Add("quick", quick);
  json.Emit("interpreter");

  bool ok = true;
  if (alu_speedup < 3.0) {
    std::printf("FAIL: alu speedup %.2fx < 3x\n", alu_speedup);
    ok = false;
  }
  if (mem_speedup < 3.0) {
    std::printf("FAIL: fenced-copy speedup %.2fx < 3x\n", mem_speedup);
    ok = false;
  }
  if (alu_tier_speedup < 2.0) {
    std::printf("FAIL: alu tier gain %.2fx < 2x over compiled\n",
                alu_tier_speedup);
    ok = false;
  }
  // The fenced copy is load/store bound, so fusion mostly saves dispatches
  // between memory ops: require no regression (within noise) rather than a
  // multiple.
  if (mem_tier_speedup < 0.9) {
    std::printf("FAIL: fenced-copy tier gain %.2fx < 0.9x over compiled\n",
                mem_tier_speedup);
    ok = false;
  }
  if (programs_compiled != 1) {
    std::printf("FAIL: expected exactly 1 compiled program, saw %llu "
                "(cache hit recompiled?)\n",
                static_cast<unsigned long long>(programs_compiled));
    ok = false;
  }
  if (tier1_promotions != 1 || tier2_promotions != 1) {
    std::printf("FAIL: expected exactly one promotion per tier, saw "
                "tier1=%llu tier2=%llu\n",
                static_cast<unsigned long long>(tier1_promotions),
                static_cast<unsigned long long>(tier2_promotions));
    ok = false;
  }
  if (tier1_instructions == 0 || tier2_instructions == 0) {
    std::printf("FAIL: expected instructions retired at tiers 1 and 2, saw "
                "tier1=%llu tier2=%llu\n",
                static_cast<unsigned long long>(tier1_instructions),
                static_cast<unsigned long long>(tier2_instructions));
    ok = false;
  }
  if (tracing_ratio < 0.95) {
    std::printf("FAIL: tracing-on throughput %.3fx of tracing-off < 0.95x\n",
                tracing_ratio);
    ok = false;
  }
  return ok ? 0 : 1;
}
