// Table 2: GPU specifications used in the evaluation.
#include <cstdio>

#include "simgpu/device_spec.hpp"

int main() {
  const auto quadro = grd::simgpu::QuadroRtxA4000();
  const auto geforce = grd::simgpu::GeForceRtx3080Ti();
  std::printf("Table 2: GPU specifications used for the evaluation\n\n");
  std::printf("%-28s %-14s %-14s\n", "Specification", quadro.name.c_str(),
              geforce.name.c_str());
  auto row = [](const char* name, auto a, auto b) {
    std::printf("%-28s %-14lld %-14lld\n", name, (long long)a, (long long)b);
  };
  std::printf("%-28s %-14s %-14s\n", "Compute Capability",
              quadro.compute_capability.c_str(),
              geforce.compute_capability.c_str());
  row("#SMs", quadro.sms, geforce.sms);
  row("#CUDA cores", quadro.cuda_cores, geforce.cuda_cores);
  row("L1 (KB)", quadro.l1_kb, geforce.l1_kb);
  row("L2 (KB)", quadro.l2_kb, geforce.l2_kb);
  row("Global memory (GB)", quadro.global_mem_bytes >> 30,
      geforce.global_mem_bytes >> 30);
  row("#Registers / Thread", quadro.regs_per_thread, geforce.regs_per_thread);
  row("L1 hit latency (cycles)", quadro.l1_hit_latency,
      geforce.l1_hit_latency);
  row("L2 hit latency (cycles)", quadro.l2_hit_latency,
      geforce.l2_hit_latency);
  std::printf("%-28s %-14.0f %-14.0f\n", "Global memory BW (GB/s)",
              quadro.global_bw_gbps, geforce.global_bw_gbps);
  std::printf("%-28s %-14s %-14s\n", "Error Correction Code",
              quadro.ecc ? "Yes" : "No", geforce.ecc ? "Yes" : "No");
  return 0;
}
