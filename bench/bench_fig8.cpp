// Figure 8: standalone imagenet-scale networks — (a) Caffe training
// (googlenet/alexnet/caffenet) and (b) PyTorch training+inference
// (vgg11/mobilenetv2/resnet50) under the five deployments.
#include <cstdio>

#include "simgpu/device_spec.hpp"
#include "workloads/harness.hpp"

namespace {

using namespace grd::workloads;

void Row(const Harness& harness, const char* app, bool inference = false) {
  const AppRun run{app, 0, inference};
  const double native =
      harness.RunStandalone(run, Deployment::kNative).seconds;
  const double noprot =
      harness.RunStandalone(run, Deployment::kGuardianNoProtection).seconds;
  const double bitwise =
      harness.RunStandalone(run, Deployment::kGuardianBitwise).seconds;
  const double modulo =
      harness.RunStandalone(run, Deployment::kGuardianModulo).seconds;
  const double checking =
      harness.RunStandalone(run, Deployment::kGuardianChecking).seconds;
  std::printf("%-14s %9.2f %9.2f %9.2f %9.2f %9.2f %7.1f%% %7.1f%%\n", app,
              native, noprot, bitwise, modulo, checking,
              100.0 * (noprot / native - 1.0),
              100.0 * (bitwise / native - 1.0));
}

}  // namespace

int main() {
  Harness harness(grd::simgpu::QuadroRtxA4000());
  std::printf("Figure 8: imagenet-scale networks, standalone (seconds)\n\n");
  std::printf("%-14s %9s %9s %9s %9s %9s %8s %8s\n", "net", "Native",
              "Grd-noP", "fence-bit", "fence-mod", "checking", "noP-ovh",
              "bit-ovh");
  std::printf("(a) Caffe training\n");
  for (const char* app : {"googlenet", "alexnet", "caffenet"})
    Row(harness, app);
  std::printf("(b) PyTorch training\n");
  for (const char* app : {"vgg11", "mobilenetv2", "resnet50"})
    Row(harness, app);
  std::printf("(b) PyTorch inference\n");
  for (const char* app : {"vgg11", "mobilenetv2", "resnet50"})
    Row(harness, app, /*inference=*/true);
  std::printf("\nPaper bands: fencing 4.5-10%% over native (Caffe); "
              "interception 1.36-6%% (Caffe), ~5.5%% (PyTorch); fencing vs "
              "no-protection 2.9-4.3%% (Caffe), ~7.6%% (PyTorch)\n");
  return 0;
}
