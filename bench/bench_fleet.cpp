// bench_fleet: chaos-gated fleet traffic bench over the process-mode pool.
//
// Two seeded scenarios, identical load shape:
//   baseline  — mixed realtime-inference / batch-training tenants, no faults;
//   chaos     — same fleet with worker SIGKILLs, a SIGSTOP delay, torn /
//               truncated / garbage frames on the reserved chaos channel and
//               one stalled (non-draining) tenant.
// Both scenarios run a 2-device-per-worker fleet: sessions are placed
// least-loaded across each worker's devices and may live-migrate under
// queue-depth imbalance.
// Emits one flat BENCH_fleet.json line (schema: docs/metrics.md) and exits
// non-zero when the robustness gates fail:
//   - hangs == 0 in both scenarios (every deadline-bounded call returned);
//   - every victim session recovered via the grdLib retry path, and no
//     victim burned all rebuild attempts (retry_exhausted == 0);
//   - chaos landed: >= 2 kills, >= 1 stalled tenant, >= 1 corrupt frame
//     contained by the ring;
//   - SIGKILLed workers' sessions were adopted from their journals rather
//     than failed (sessions_adopted >= 1), and at least one checkpointed
//     kernel resumed mid-grid (checkpoint_kernels_resumed >= 1);
//   - realtime survivor p99 within 2x of the no-chaos baseline (both
//     percentiles are log2-bucket upper bounds, so one bucket of drift is
//     exactly 2.0 — the gate uses <=).
//
// GRD_BENCH_QUICK=1 shrinks the fleet for CI smoke runs.
#include <cstdio>
#include <cstdlib>

#include "bench_json.hpp"
#include "fleet/fleet.hpp"

namespace {

using grd::fleet::Fleet;
using grd::fleet::FleetOptions;
using grd::fleet::FleetReport;

FleetOptions BaseOptions(bool quick) {
  FleetOptions options;
  options.seed = 42;
  options.workers = 4;
  options.channels = quick ? 8 : 12;
  options.sessions_per_channel = quick ? 3 : 6;
  options.requests_per_session = 24;
  options.realtime_fraction = 0.5;
  options.ring_bytes = 1u << 16;
  options.call_timeout = std::chrono::milliseconds(200);
  options.recovery_attempts = 8;
  options.devices_per_worker = 2;
  return options;
}

FleetOptions ChaosOptionsFor(bool quick) {
  FleetOptions options = BaseOptions(quick);
  options.stalled_tenants = 1;
  // Aggressive migration under chaos: any 2-deep queue next to an idle
  // device moves the session, so the revoke-and-resume path gets exercised.
  options.migrate_queue_threshold = 2;
  options.chaos.seed = 1234;
  options.chaos.worker_kills = quick ? 2 : 3;
  options.chaos.delays = 1;
  options.chaos.delay_hold = std::chrono::microseconds(1500);
  options.chaos.torn_frames = 3;
  options.chaos.truncated_frames = 2;
  options.chaos.garbage_frames = 3;
  // Kills wait for a quarter of the fleet's request cycles so they land
  // mid-traffic, not on an idle pool.
  options.chaos.min_requests_before_kill =
      static_cast<std::uint64_t>(options.channels) *
      options.sessions_per_channel * options.requests_per_session / 4;
  options.chaos.min_gap = std::chrono::microseconds(500);
  options.chaos.max_gap = std::chrono::microseconds(4000);
  // Trace the chaos scenario: CI uploads the span timeline of the faulted
  // run (killed-worker spans included) next to the JSON artifact. Fleet
  // exports before teardown — the span arena dies with the pool.
  options.tracing = true;
  options.trace_path = "trace.json";
  return options;
}

int Fail(const char* gate, unsigned long long got, unsigned long long want) {
  std::printf("bench_fleet: GATE FAILED: %s (got %llu, want %llu)\n", gate,
              got, want);
  return 1;
}

}  // namespace

int main() {
  const bool quick = std::getenv("GRD_BENCH_QUICK") != nullptr;

  Fleet baseline(BaseOptions(quick));
  grd::Status status = baseline.Run();
  if (!status.ok()) {
    std::printf("bench_fleet: baseline scenario failed: %s\n",
                status.ToString().c_str());
    return 1;
  }
  const FleetReport& base = baseline.report();

  Fleet chaos(ChaosOptionsFor(quick));
  status = chaos.Run();
  if (!status.ok()) {
    std::printf("bench_fleet: chaos scenario failed: %s\n",
                status.ToString().c_str());
    return 1;
  }
  const FleetReport& faulted = chaos.report();

  const double ratio =
      base.realtime_p99_ns > 0
          ? static_cast<double>(faulted.realtime_p99_ns) /
                static_cast<double>(base.realtime_p99_ns)
          : 0.0;

  grd::bench::JsonLine json;
  json.Add("quick", quick)
      .Add("seed", std::uint64_t{42})
      .Add("sessions", faulted.sessions)
      .Add("baseline_rt_requests", base.realtime_requests)
      .Add("baseline_rt_p50_us", base.realtime_p50_ns / 1000)
      .Add("baseline_rt_p99_us", base.realtime_p99_ns / 1000)
      .Add("baseline_batch_p99_us", base.batch_p99_ns / 1000)
      .Add("baseline_wall_ms", base.wall_ms, 1)
      .Add("chaos_rt_requests", faulted.realtime_requests)
      .Add("chaos_rt_p50_us", faulted.realtime_p50_ns / 1000)
      .Add("chaos_rt_p99_us", faulted.realtime_p99_ns / 1000)
      .Add("chaos_batch_p99_us", faulted.batch_p99_ns / 1000)
      .Add("chaos_wall_ms", faulted.wall_ms, 1)
      .Add("rt_p99_ratio", ratio, 3)
      .Add("kills", faulted.kills)
      .Add("delays", faulted.delays)
      .Add("torn_frames", faulted.torn_frames)
      .Add("truncated_frames", faulted.truncated_frames)
      .Add("garbage_frames", faulted.garbage_frames)
      .Add("stalls_injected", faulted.stalls_injected)
      .Add("frames_corrupt", faulted.frames_corrupt)
      .Add("victims", faulted.victims)
      .Add("victims_recovered", faulted.victims_recovered)
      .Add("retry_exhausted", faulted.retry_exhausted)
      .Add("recoveries", faulted.recoveries)
      .Add("recovery_retries", faulted.recovery_retries)
      .Add("resume_attaches", faulted.resume_attaches)
      .Add("sessions_adopted", faulted.sessions_adopted)
      .Add("sessions_migrated", faulted.sessions_migrated)
      .Add("checkpoint_kernels_resumed", faulted.checkpoint_kernels_resumed)
      .Add("deadline_exceeded", faulted.deadline_exceeded)
      .Add("synthetic_responses", faulted.synthetic_responses)
      .Add("workers_respawned", faulted.workers_respawned)
      .Add("sessions_crash_failed", faulted.sessions_crash_failed)
      .Add("sessions_completed", faulted.sessions_completed)
      .Add("connect_failures", faulted.connect_failures)
      .Add("hangs", base.hangs + faulted.hangs);
  json.Emit("fleet");

  // ---- robustness gates ---------------------------------------------------
  int rc = 0;
  if (base.hangs + faulted.hangs != 0)
    rc |= Fail("zero hangs", base.hangs + faulted.hangs, 0);
  if (faulted.kills < 2) rc |= Fail("kills >= 2", faulted.kills, 2);
  if (faulted.stalls_injected < 1)
    rc |= Fail("stalled tenants >= 1", faulted.stalls_injected, 1);
  if (faulted.frames_corrupt < 1)
    rc |= Fail("corrupt frames contained >= 1", faulted.frames_corrupt, 1);
  if (faulted.victims_recovered < faulted.victims)
    rc |= Fail("every victim recovered", faulted.victims_recovered,
               faulted.victims);
  if (faulted.retry_exhausted != 0)
    rc |= Fail("no victim exhausted its retries", faulted.retry_exhausted, 0);
  if (faulted.sessions_adopted < 1)
    rc |= Fail("killed workers' sessions adopted >= 1",
               faulted.sessions_adopted, 1);
  if (faulted.checkpoint_kernels_resumed < 1)
    rc |= Fail("checkpointed kernels resumed >= 1",
               faulted.checkpoint_kernels_resumed, 1);
  if (faulted.sessions_completed < faulted.sessions)
    rc |= Fail("all sessions completed", faulted.sessions_completed,
               faulted.sessions);
  if (ratio > 2.0) {
    std::printf(
        "bench_fleet: GATE FAILED: realtime survivor p99 ratio %.3f > 2.0 "
        "(baseline %llu us, chaos %llu us)\n",
        ratio, static_cast<unsigned long long>(base.realtime_p99_ns / 1000),
        static_cast<unsigned long long>(faulted.realtime_p99_ns / 1000));
    rc = 1;
  }
  if (rc == 0) std::printf("bench_fleet: all robustness gates passed\n");
  return rc;
}
