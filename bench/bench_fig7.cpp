// Figure 7: standalone Caffe networks (mnist/cifar) — training (a) and
// inference (b) under the five deployments of §6.
#include <cstdio>

#include "simgpu/device_spec.hpp"
#include "workloads/harness.hpp"

namespace {

using namespace grd::workloads;

void RunPhase(const Harness& harness, const char* title, bool inference) {
  std::printf("%s\n", title);
  std::printf("%-10s %9s %9s %9s %9s %9s %8s\n", "net", "Native", "Grd-noP",
              "fence-bit", "fence-mod", "checking", "bit-ovh");
  for (const char* app : {"lenet", "siamese", "cifar10"}) {
    const AppRun run{app, 0, inference};
    const double native =
        harness.RunStandalone(run, Deployment::kNative).seconds;
    const double noprot =
        harness.RunStandalone(run, Deployment::kGuardianNoProtection).seconds;
    const double bitwise =
        harness.RunStandalone(run, Deployment::kGuardianBitwise).seconds;
    const double modulo =
        harness.RunStandalone(run, Deployment::kGuardianModulo).seconds;
    const double checking =
        harness.RunStandalone(run, Deployment::kGuardianChecking).seconds;
    std::printf("%-10s %9.3f %9.3f %9.3f %9.3f %9.3f %7.1f%%\n", app, native,
                noprot, bitwise, modulo, checking,
                100.0 * (bitwise / native - 1.0));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Harness harness(grd::simgpu::QuadroRtxA4000());
  std::printf("Figure 7: Caffe with mnist/cifar, standalone (seconds)\n\n");
  RunPhase(harness, "(a) Training", /*inference=*/false);
  RunPhase(harness, "(b) Inference", /*inference=*/true);
  std::printf("Paper bands: Guardian fencing 5.9-12%% over native; "
              "w/o protection 3.7-10%%; modulo ~+29%%; checking ~1.7x\n");
  return 0;
}
