// Table 6: implicit CUDA runtime and driver calls performed by high-level
// calls of the CUDA-accelerated libraries — measured by interposing the
// tracing layer at the same level grdLib intercepts (Figure 2).
#include <cstdio>

#include "simcuda/native.hpp"
#include "simcuda/tracing.hpp"
#include "simgpu/device_spec.hpp"
#include "simlibs/cublas.hpp"
#include "simlibs/cufft.hpp"
#include "simlibs/cusolver.hpp"
#include "simlibs/cusparse.hpp"

namespace {

using namespace grd;

void PrintCounts(const char* call, const simcuda::TracingCudaApi& traced) {
  std::printf("%-18s:", call);
  std::uint64_t total = 0;
  for (const auto& [name, count] : traced.counts()) {
    std::printf(" %s:%llu", name.c_str(),
                static_cast<unsigned long long>(count));
    total += count;
  }
  std::printf("  (total %llu)\n", static_cast<unsigned long long>(total));
}

}  // namespace

int main() {
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  simcuda::NativeCuda native(&gpu);
  simcuda::TracingCudaApi traced(&native);

  std::printf("Table 6: implicit CUDA runtime/driver calls behind "
              "high-level library calls\n\n");

  // cublasCreate.
  traced.ResetCounts();
  auto blas = simlibs::Cublas::Create(traced);
  if (!blas.ok()) return 1;
  // Exclude the one-time module registration (not in the paper's row).
  {
    auto counts = traced.counts();
    std::printf("%-18s: cudaMalloc:%llu cudaEventCreateWithFlags:%llu "
                "cudaFree:%llu  (total %llu; paper: 3+18+2=23)\n",
                "cublasCreate",
                (unsigned long long)traced.CountOf("cudaMalloc"),
                (unsigned long long)traced.CountOf("cudaEventCreateWithFlags"),
                (unsigned long long)traced.CountOf("cudaFree"),
                (unsigned long long)(traced.CountOf("cudaMalloc") +
                                     traced.CountOf("cudaEventCreateWithFlags") +
                                     traced.CountOf("cudaFree")));
  }

  // Device data for the per-call rows.
  simcuda::DevicePtr x = 0, y = 0, out = 0;
  const double xs[8] = {1, -7, 3, 2, 5, -1, 0, 4};
  const double ys[8] = {2, 2, 2, 2, 2, 2, 2, 2};
  (void)native.cudaMalloc(&x, sizeof(xs));
  (void)native.cudaMalloc(&y, sizeof(ys));
  (void)native.cudaMalloc(&out, 64);
  (void)native.cudaMemcpyH2D(x, xs, sizeof(xs));
  (void)native.cudaMemcpyH2D(y, ys, sizeof(ys));

  traced.ResetCounts();
  (void)blas->Idamax(x, 8);
  PrintCounts("cublasIdamax", traced);

  traced.ResetCounts();
  (void)blas->Ddot(x, y, 8);
  PrintCounts("cublasDdot", traced);

  auto sparse = simlibs::Cusparse::Create(traced);
  if (!sparse.ok()) return 1;
  traced.ResetCounts();
  (void)sparse->Axpby(1.0f, x, 1.0f, y, 8);
  PrintCounts("cusparseAxpby", traced);

  auto fft = simlibs::Cufft::Create(traced);
  if (!fft.ok()) return 1;
  traced.ResetCounts();
  (void)fft->ExecC2C(x, out, 4);
  PrintCounts("cufftExecC2C", traced);

  auto solver = simlibs::Cusolver::Create(traced);
  if (!solver.ok()) return 1;
  traced.ResetCounts();
  (void)solver->SpDcsrqr(x, y, out, 4);
  PrintCounts("cusolverSpDcsrqr", traced);

  std::printf("\nPaper rows: cublasCreate 23, cublasIdamax 5, cublasDdot 6, "
              "cusparseAxpby 2, cufftExecC2C 6, cusolverSpDcsrqr 4\n");
  return 0;
}
