// Sandbox-cache amortization: N tenants loading the same PTX library pay
// the §4.2.3 patch cost once, not N times. Prints per-tenant module-load
// latency and the manager's patch/hit counters.
#include <chrono>
#include <cstdio>
#include <vector>

#include "guardian/grdlib.hpp"
#include "guardian/manager.hpp"
#include "guardian/transport.hpp"
#include "ptx/generator.hpp"
#include "ptx/printer.hpp"
#include "simgpu/device_spec.hpp"

int main() {
  using namespace grd;
  using Clock = std::chrono::steady_clock;

  constexpr int kTenants = 16;
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  guardian::GrdManager manager(&gpu, guardian::ManagerOptions{});
  guardian::LoopbackTransport transport(&manager);
  const std::string ptx_text = ptx::Print(ptx::MakeSampleModule());

  std::printf("module load latency, %d tenants loading identical PTX "
              "(%zu bytes)\n\n",
              kTenants, ptx_text.size());
  std::printf("%-8s %-14s %-10s\n", "tenant", "load_us", "served_by");

  std::vector<guardian::GrdLib> tenants;
  double first_us = 0.0, cached_us_total = 0.0;
  for (int t = 0; t < kTenants; ++t) {
    auto lib = guardian::GrdLib::Connect(&transport, 1ull << 20);
    if (!lib.ok()) {
      std::printf("connect failed: %s\n", lib.status().ToString().c_str());
      return 1;
    }
    const std::uint64_t patches_before = manager.stats().ptx_modules_patched;
    const auto begin = Clock::now();
    auto module = lib->cuModuleLoadData(ptx_text);
    const auto elapsed = Clock::now() - begin;
    if (!module.ok()) {
      std::printf("load failed: %s\n", module.status().ToString().c_str());
      return 1;
    }
    const double us =
        std::chrono::duration<double, std::micro>(elapsed).count();
    const bool patched = manager.stats().ptx_modules_patched > patches_before;
    if (patched)
      first_us = us;
    else
      cached_us_total += us;
    std::printf("%-8d %-14.1f %-10s\n", t + 1, us,
                patched ? "patcher" : "cache");
    tenants.push_back(std::move(*lib));
  }

  const double cached_us = cached_us_total / (kTenants - 1);
  std::printf("\nptx_modules_patched : %llu (identical PTX patched exactly "
              "once)\n",
              static_cast<unsigned long long>(
                  manager.stats().ptx_modules_patched));
  std::printf("ptx_cache_hits      : %llu\n",
              static_cast<unsigned long long>(manager.stats().ptx_cache_hits));
  std::printf("first load (patch)  : %.1f us\n", first_us);
  std::printf("cached load (mean)  : %.1f us  (%.1fx faster)\n", cached_us,
              cached_us > 0 ? first_us / cached_us : 0.0);

  return manager.stats().ptx_modules_patched == 1 ? 0 : 1;
}
