// Sandbox-cache amortization: N tenants loading the same PTX library pay
// the §4.2.3 patch cost once, not N times. Prints per-tenant module-load
// latency and the manager's patch/hit counters.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "guardian/grdlib.hpp"
#include "guardian/manager.hpp"
#include "guardian/transport.hpp"
#include "ptx/generator.hpp"
#include "ptx/printer.hpp"
#include "simgpu/device_spec.hpp"

int main() {
  using namespace grd;
  using Clock = std::chrono::steady_clock;

  constexpr int kTenants = 16;
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  guardian::GrdManager manager(&gpu, guardian::ManagerOptions{});
  guardian::LoopbackTransport transport(&manager);
  const std::string ptx_text = ptx::Print(ptx::MakeSampleModule());

  std::printf("module load latency, %d tenants loading identical PTX "
              "(%zu bytes)\n\n",
              kTenants, ptx_text.size());
  std::printf("%-8s %-14s %-10s\n", "tenant", "load_us", "served_by");

  std::vector<guardian::GrdLib> tenants;
  double first_us = 0.0, cached_us_total = 0.0;
  for (int t = 0; t < kTenants; ++t) {
    auto lib = guardian::GrdLib::Connect(&transport, 1ull << 20);
    if (!lib.ok()) {
      std::printf("connect failed: %s\n", lib.status().ToString().c_str());
      return 1;
    }
    const std::uint64_t patches_before = manager.stats().ptx_modules_patched;
    const auto begin = Clock::now();
    auto module = lib->cuModuleLoadData(ptx_text);
    const auto elapsed = Clock::now() - begin;
    if (!module.ok()) {
      std::printf("load failed: %s\n", module.status().ToString().c_str());
      return 1;
    }
    const double us =
        std::chrono::duration<double, std::micro>(elapsed).count();
    const bool patched = manager.stats().ptx_modules_patched > patches_before;
    if (patched)
      first_us = us;
    else
      cached_us_total += us;
    std::printf("%-8d %-14.1f %-10s\n", t + 1, us,
                patched ? "patcher" : "cache");
    tenants.push_back(std::move(*lib));
  }

  const double cached_us = cached_us_total / (kTenants - 1);
  std::printf("\nptx_modules_patched : %llu (identical PTX patched exactly "
              "once)\n",
              static_cast<unsigned long long>(
                  manager.stats().ptx_modules_patched));
  std::printf("ptx_cache_hits      : %llu\n",
              static_cast<unsigned long long>(manager.stats().ptx_cache_hits));
  std::printf("first load (patch)  : %.1f us\n", first_us);
  std::printf("cached load (mean)  : %.1f us  (%.1fx faster)\n", cached_us,
              cached_us > 0 ? first_us / cached_us : 0.0);

  // Phase 2: a tenant cycling unique PTX against a small cache — LRU keeps
  // the manager bounded and the eviction counters account for what was
  // reclaimed.
  constexpr std::size_t kSmallCapacity = 8;
  constexpr int kUniqueModules = 32;
  guardian::ManagerOptions bounded_options;
  bounded_options.sandbox_cache_capacity = kSmallCapacity;
  guardian::GrdManager bounded(&gpu, bounded_options);
  guardian::LoopbackTransport bounded_transport(&bounded);
  auto churn = guardian::GrdLib::Connect(&bounded_transport, 1ull << 20);
  if (!churn.ok()) {
    std::printf("connect failed: %s\n", churn.status().ToString().c_str());
    return 1;
  }
  for (int i = 0; i < kUniqueModules; ++i) {
    // Distinct kernel name => distinct source => distinct cache entry.
    ptx::Module module;
    module.kernels.push_back(
        ptx::MakeStoreTidKernel("churn_" + std::to_string(i)));
    auto loaded = churn->cuModuleLoadData(ptx::Print(module));
    if (!loaded.ok()) {
      std::printf("churn load failed: %s\n",
                  loaded.status().ToString().c_str());
      return 1;
    }
  }
  std::printf("\nunique-PTX churn, cache capacity %zu, %d loads:\n",
              kSmallCapacity, kUniqueModules);
  std::printf("cache entries live  : %zu\n", bounded.sandbox_cache().size());
  std::printf("evictions           : %llu\n",
              static_cast<unsigned long long>(
                  bounded.stats().sandbox_cache_evictions));
  std::printf("bytes reclaimed     : %llu\n",
              static_cast<unsigned long long>(
                  bounded.stats().sandbox_cache_bytes_reclaimed));

  const bool amortized = manager.stats().ptx_modules_patched == 1;
  const bool bounded_ok =
      bounded.sandbox_cache().size() <= kSmallCapacity &&
      bounded.stats().sandbox_cache_evictions ==
          kUniqueModules - kSmallCapacity &&
      bounded.stats().sandbox_cache_bytes_reclaimed > 0;
  if (!bounded_ok) std::printf("FAIL: eviction accounting off\n");

  // Machine-readable line for cross-PR perf tracking.
  bench::JsonLine json;
  json.Add("first_load_us", first_us, 1)
      .Add("cached_load_us", cached_us, 1)
      .Add("modules_patched", manager.stats().ptx_modules_patched.load())
      .Add("programs_compiled", manager.stats().ptx_programs_compiled.load())
      .Add("evictions", bounded.stats().sandbox_cache_evictions.load())
      .Add("bytes_reclaimed",
           bounded.stats().sandbox_cache_bytes_reclaimed.load());
  json.Emit("sandbox_cache");
  return amortized && bounded_ok ? 0 : 1;
}
