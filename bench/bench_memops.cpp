// §7.6 memory-operation micro-benchmark: Guardian's partition allocator vs
// the native device allocator, and the bounds-checked transfer path vs the
// unchecked one, over a range of sizes. Paper finding: the allocator adds
// no overhead and the per-transfer checks are negligible.
#include <benchmark/benchmark.h>

#include "guardian/grdlib.hpp"
#include "guardian/manager.hpp"
#include "guardian/transport.hpp"
#include "simcuda/native.hpp"
#include "simgpu/device_spec.hpp"

namespace {

using namespace grd;

void BM_NativeMallocFree(benchmark::State& state) {
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  simcuda::NativeCuda api(&gpu);
  const std::uint64_t size = state.range(0);
  for (auto _ : state) {
    simcuda::DevicePtr p = 0;
    benchmark::DoNotOptimize(api.cudaMalloc(&p, size));
    benchmark::DoNotOptimize(api.cudaFree(p));
  }
}
BENCHMARK(BM_NativeMallocFree)->Range(4 << 10, 64 << 20);

void BM_GuardianMallocFree(benchmark::State& state) {
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  guardian::GrdManager manager(&gpu, guardian::ManagerOptions{});
  guardian::LoopbackTransport transport(&manager);
  auto lib = guardian::GrdLib::Connect(&transport, 256ull << 20);
  const std::uint64_t size = state.range(0);
  for (auto _ : state) {
    simcuda::DevicePtr p = 0;
    benchmark::DoNotOptimize(lib->cudaMalloc(&p, size));
    benchmark::DoNotOptimize(lib->cudaFree(p));
  }
}
BENCHMARK(BM_GuardianMallocFree)->Range(4 << 10, 64 << 20);

void BM_NativeH2D(benchmark::State& state) {
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  simcuda::NativeCuda api(&gpu);
  const std::uint64_t size = state.range(0);
  std::vector<std::uint8_t> host(size, 0xAB);
  simcuda::DevicePtr p = 0;
  (void)api.cudaMalloc(&p, size);
  for (auto _ : state) {
    benchmark::DoNotOptimize(api.cudaMemcpyH2D(p, host.data(), size));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_NativeH2D)->Range(4 << 10, 16 << 20);

void BM_GuardianH2DChecked(benchmark::State& state) {
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  guardian::GrdManager manager(&gpu, guardian::ManagerOptions{});
  guardian::LoopbackTransport transport(&manager);
  auto lib = guardian::GrdLib::Connect(&transport, 256ull << 20);
  const std::uint64_t size = state.range(0);
  std::vector<std::uint8_t> host(size, 0xAB);
  simcuda::DevicePtr p = 0;
  (void)lib->cudaMalloc(&p, size);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lib->cudaMemcpyH2D(p, host.data(), size));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_GuardianH2DChecked)->Range(4 << 10, 16 << 20);

// Isolated cost of one bounds-table check (the only extra work the Guardian
// transfer path performs besides message framing).
void BM_BoundsTableCheck(benchmark::State& state) {
  guardian::PartitionBoundsTable table;
  (void)table.Insert(1, guardian::PartitionBounds{1ull << 20, 1ull << 20});
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.CheckTransfer(1, (1ull << 20) + 64, 4096));
  }
}
BENCHMARK(BM_BoundsTableCheck);

}  // namespace

BENCHMARK_MAIN();
