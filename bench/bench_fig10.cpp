// Figure 10: performance overhead of the sandboxed lenet kernels (bitwise
// fencing) against native execution, per kernel, plus the §7.4 cache
// analysis.
#include <cstdio>

#include "simgpu/device_spec.hpp"
#include "simgpu/timing.hpp"
#include "workloads/apps.hpp"

int main() {
  using namespace grd;
  const simgpu::TimingModel model(simgpu::QuadroRtxA4000());

  std::printf("Figure 10: sandboxed-kernel overhead vs native, lenet kernel "
              "mix (bitwise fencing)\n\n");
  std::printf("%-18s %9s %7s %7s %9s\n", "kernel", "overhead", "L1-hit",
              "L2-hit", "cyc/thr");
  double total = 0, l1 = 0, l2 = 0;
  for (const auto& kernel : workloads::LenetKernelMix()) {
    const double overhead = model.RelativeOverhead(
        kernel.profile, simgpu::ProtectionMode::kFencingBitwise);
    std::printf("%-18s %8.2f%% %6.0f%% %6.0f%% %9.0f\n", kernel.name.c_str(),
                100.0 * overhead, 100.0 * kernel.profile.cache.l1_hit,
                100.0 * kernel.profile.cache.l2_hit,
                model.ThreadCycles(kernel.profile,
                                   simgpu::ProtectionMode::kNone));
    total += overhead;
    l1 += kernel.profile.cache.l1_hit;
    l2 += kernel.profile.cache.l2_hit;
  }
  const auto n = workloads::LenetKernelMix().size();
  std::printf("\nAverage overhead : %.1f%% (paper: 3.2%%)\n",
              100.0 * total / n);
  std::printf("Average L1 hit   : %.0f%% (paper: 37%%)\n", 100.0 * l1 / n);
  std::printf("Average L2 hit   : %.0f%% (paper: 72%%)\n", 100.0 * l2 / n);
  return 0;
}
