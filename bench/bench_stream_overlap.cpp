// Multi-tenant stream overlap: the device scheduler (per-stream FIFO queues
// + SM-occupancy executor pool) vs. the serialized baseline (one executor =
// the old gpu_mu behaviour, one kernel at a time). Modeled device time is
// dilated into real executor sleeps so the makespan difference is the
// overlap, not interpreter CPU contention. Exits non-zero unless at least
// two tenants' kernels were resident concurrently AND the scheduled makespan
// beats the serialized one.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "guardian/grdlib.hpp"
#include "guardian/manager.hpp"
#include "guardian/transport.hpp"
#include "ptx/generator.hpp"
#include "ptx/printer.hpp"
#include "simgpu/device_spec.hpp"

namespace {

constexpr int kTenants = 4;
constexpr int kKernelsPerTenant = 3;
constexpr std::uint32_t kElems = 4096;
constexpr double kNsPerCycle = 10'000.0;  // ~40 ms modeled time per kernel

struct RunStats {
  double makespan_ms = 0.0;
  std::uint64_t peak_resident = 0;
  std::uint64_t peak_sms = 0;
  std::uint64_t peak_queue_depth = 0;
};

// Each tenant enqueues kKernelsPerTenant copy kernels on its own stream
// (async), then everyone synchronizes. One driver thread suffices: async
// launches return as soon as the work is queued.
RunStats RunWorkload(std::size_t executors) {
  using Clock = std::chrono::steady_clock;
  using namespace grd;

  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  guardian::ManagerOptions options;
  options.scheduler_executors = executors;
  options.device_time_ns_per_cycle = kNsPerCycle;
  guardian::GrdManager manager(&gpu, options);
  guardian::LoopbackTransport transport(&manager);
  const std::string ptx_text = ptx::Print(ptx::MakeSampleModule());

  struct Tenant {
    guardian::GrdLib lib;
    simcuda::FunctionId fn = 0;
    simcuda::StreamId stream = 0;
    simcuda::DevicePtr src = 0;
    simcuda::DevicePtr dst = 0;
  };
  std::vector<Tenant> tenants;
  for (int t = 0; t < kTenants; ++t) {
    auto lib = guardian::GrdLib::Connect(&transport, 8ull << 20);
    if (!lib.ok()) {
      std::printf("connect failed: %s\n", lib.status().ToString().c_str());
      std::exit(1);
    }
    Tenant tenant{std::move(*lib)};
    auto module = tenant.lib.cuModuleLoadData(ptx_text);
    auto fn = tenant.lib.cuModuleGetFunction(*module, "copyk");
    tenant.fn = *fn;
    (void)tenant.lib.cudaStreamCreate(&tenant.stream);
    (void)tenant.lib.cudaMalloc(&tenant.src, kElems * 4);
    (void)tenant.lib.cudaMalloc(&tenant.dst, kElems * 4);
    std::vector<std::uint32_t> xs(kElems, 0xC0FFEE);
    (void)tenant.lib.cudaMemcpyH2D(tenant.src, xs.data(), kElems * 4);
    tenants.push_back(std::move(tenant));
  }

  simcuda::LaunchConfig config;
  config.block = {256, 1, 1};
  config.grid = {(kElems + 255) / 256, 1, 1};

  const auto begin = Clock::now();
  for (int round = 0; round < kKernelsPerTenant; ++round) {
    for (auto& tenant : tenants) {
      config.stream = tenant.stream;
      const Status s = tenant.lib.cudaLaunchKernel(
          tenant.fn, config,
          {ptxexec::KernelArg::U64(tenant.src),
           ptxexec::KernelArg::U64(tenant.dst),
           ptxexec::KernelArg::U32(kElems)});
      if (!s.ok()) {
        std::printf("launch failed: %s\n", s.ToString().c_str());
        std::exit(1);
      }
    }
  }
  for (auto& tenant : tenants)
    (void)tenant.lib.cudaStreamSynchronize(tenant.stream);
  const auto elapsed = Clock::now() - begin;

  RunStats out;
  out.makespan_ms =
      std::chrono::duration<double, std::milli>(elapsed).count();
  out.peak_resident = manager.stats().peak_resident_kernels;
  out.peak_sms = manager.stats().peak_sms_in_use;
  out.peak_queue_depth = manager.stats().peak_queue_depth;
  return out;
}

}  // namespace

int main() {
  std::printf("multi-tenant makespan, %d tenants x %d kernels "
              "(copyk over %u u32s, %.0f ns modeled time per cycle)\n\n",
              kTenants, kKernelsPerTenant, kElems, kNsPerCycle);

  const RunStats serialized = RunWorkload(/*executors=*/1);
  const RunStats scheduled = RunWorkload(/*executors=*/8);

  std::printf("%-28s %-14s %-16s %-10s\n", "engine", "makespan_ms",
              "peak_resident", "peak_sms");
  std::printf("%-28s %-14.1f %-16llu %-10llu\n", "serialized (1 executor)",
              serialized.makespan_ms,
              static_cast<unsigned long long>(serialized.peak_resident),
              static_cast<unsigned long long>(serialized.peak_sms));
  std::printf("%-28s %-14.1f %-16llu %-10llu\n", "occupancy scheduler (8)",
              scheduled.makespan_ms,
              static_cast<unsigned long long>(scheduled.peak_resident),
              static_cast<unsigned long long>(scheduled.peak_sms));
  std::printf("\npeak queue depth (scheduled): %llu\n",
              static_cast<unsigned long long>(scheduled.peak_queue_depth));
  std::printf("speedup: %.2fx\n",
              scheduled.makespan_ms > 0.0
                  ? serialized.makespan_ms / scheduled.makespan_ms
                  : 0.0);

  // Machine-readable line for cross-PR perf tracking.
  grd::bench::JsonLine json;
  json.Add("makespan_serialized_ms", serialized.makespan_ms, 3)
      .Add("makespan_scheduled_ms", scheduled.makespan_ms, 3)
      .Add("speedup",
           scheduled.makespan_ms > 0.0
               ? serialized.makespan_ms / scheduled.makespan_ms
               : 0.0,
           3)
      .Add("peak_resident", scheduled.peak_resident)
      .Add("peak_sms", scheduled.peak_sms);
  json.Emit("stream_overlap");

  const bool overlapped = scheduled.peak_resident >= 2;
  const bool faster = scheduled.makespan_ms < serialized.makespan_ms;
  if (!overlapped) std::printf("FAIL: no two kernels were co-resident\n");
  if (!faster) std::printf("FAIL: scheduler no faster than serialized\n");
  return overlapped && faster ? 0 : 1;
}
