// Table 3: load/store instructions identified and safeguarded within the
// CUDA-accelerated libraries and frameworks.
//
// A synthetic corpus is generated per library with exactly the paper's
// kernel/function counts, then each kernel is run through the PTX-patcher;
// the safeguarded-instruction counts must equal the corpus totals (100%
// coverage, §3). Generation streams kernel-by-kernel so even the 28k-kernel
// PyTorch corpus stays O(1) in memory. Pass --fast to subsample.
#include <chrono>
#include <cstdio>
#include <cstring>

#include "ptx/generator.hpp"
#include "ptxpatcher/patcher.hpp"

int main(int argc, char** argv) {
  using namespace grd;
  const bool fast = argc > 1 && std::strcmp(argv[1], "--fast") == 0;

  std::printf("Table 3: ld/st instructions identified and safeguarded\n\n");
  std::printf("%-18s %8s %6s %13s %13s %11s %9s\n", "Library/Framework",
              "#kernels", "#func", "loads(found)", "stores(found)",
              "loads(spec)", "coverage");

  const auto start = std::chrono::steady_clock::now();
  for (ptx::LibraryCorpusSpec spec : ptx::Table3Corpora()) {
    if (fast && spec.kernels > 2000) {
      // Subsample preserving the loads-per-kernel density.
      const double ratio = 2000.0 / static_cast<double>(spec.kernels);
      spec.total_loads = static_cast<std::size_t>(spec.total_loads * ratio);
      spec.total_stores = static_cast<std::size_t>(spec.total_stores * ratio);
      spec.kernels = 2000;
      spec.funcs = std::min<std::size_t>(spec.funcs, 20);
    }
    ptxpatcher::PatchStats aggregate;
    ptxpatcher::PatchOptions options;
    std::size_t kernels = 0, funcs = 0;
    ptx::GenerateCorpus(spec, /*seed=*/11, [&](const ptx::Kernel& kernel) {
      auto patched = ptxpatcher::PatchKernel(kernel, options);
      if (!patched.ok()) return;
      aggregate += patched->stats;
      (kernel.is_entry ? kernels : funcs)++;
    });
    const bool covered = aggregate.patched_loads == spec.total_loads &&
                         aggregate.patched_stores == spec.total_stores;
    std::printf("%-18s %8zu %6zu %13zu %13zu %11zu %9s\n", spec.name.c_str(),
                kernels, funcs, aggregate.patched_loads,
                aggregate.patched_stores, spec.total_loads,
                covered ? "100%" : "MISS");
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  std::printf("\nPatched the full corpus in %lld ms%s\n",
              static_cast<long long>(elapsed.count()),
              fast ? " (subsampled with --fast)" : "");
  return 0;
}
