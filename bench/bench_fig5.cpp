// Figure 5: bit-masking latency (8 cycles) compared to the latency of the
// memory hierarchy levels, plus the §7.4 overhead bands these imply.
#include <cstdio>

#include "simgpu/device_spec.hpp"
#include "simgpu/timing.hpp"

int main() {
  using namespace grd::simgpu;
  const DeviceSpec spec = QuadroRtxA4000();
  const TimingModel model(spec);

  std::printf("Figure 5: bit-masking latency vs memory latencies\n\n");
  std::printf("  bit-masking (AND+OR)    : %2d cycles\n", 2 * spec.alu_cycles);
  std::printf("  load L1 hit             : %2d cycles\n", spec.l1_hit_latency);
  std::printf("  load L2 hit             : %d cycles\n", spec.l2_hit_latency);
  std::printf("  load/store global       : %d cycles\n", spec.global_latency);

  KernelProfile pure;
  pure.loads = 100;
  pure.cache = CacheProfile::AllL1();
  std::printf("\nImplied fencing overhead (pure-memory kernel):\n");
  std::printf("  100%% L1 hits           : %5.1f%% (paper: ~30%%)\n",
              100.0 * model.RelativeOverhead(
                          pure, ProtectionMode::kFencingBitwise));
  pure.cache = CacheProfile::AllGlobal();
  std::printf("  all-global             : %5.1f%% (paper: 2-5%%)\n",
              100.0 * model.RelativeOverhead(
                          pure, ProtectionMode::kFencingBitwise));
  return 0;
}
