// Figure 12: Guardian overhead for 37 kernels from CUDA-accelerated library
// sample calls (not exercised by the ML frameworks), on the GeForce GPU.
#include <cstdio>

#include "simgpu/device_spec.hpp"
#include "simgpu/timing.hpp"
#include "simlibs/libcalls.hpp"

int main() {
  using namespace grd;
  const simgpu::TimingModel model(simgpu::GeForceRtx3080Ti());

  std::printf("Figure 12: fencing overhead for 37 CUDA-library kernels "
              "(GeForce RTX 3080 Ti)\n\n");
  std::printf("%-16s %-10s %9s\n", "call", "library", "overhead");
  double total = 0;
  for (const auto& call : simlibs::Figure12Calls()) {
    const double overhead = model.RelativeOverhead(
        call.profile, simgpu::ProtectionMode::kFencingBitwise);
    std::printf("%-16s %-10s %8.1f%%\n", call.name.c_str(),
                call.library.c_str(), 100.0 * overhead);
    total += overhead;
  }
  std::printf("\nAverage overhead: %.1f%% over %zu calls (paper: 4%% "
              "average, 0-13%% range)\n",
              100.0 * total / simlibs::Figure12Calls().size(),
              simlibs::Figure12Calls().size());
  return 0;
}
