#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "guardian/grdlib.hpp"
#include "guardian/manager.hpp"
#include "guardian/partition_allocator.hpp"
#include "guardian/transport.hpp"
#include "ptx/generator.hpp"
#include "ptx/printer.hpp"
#include "simgpu/device_spec.hpp"
#include "simlibs/cublas.hpp"

namespace grd::guardian {
namespace {

using ptxexec::KernelArg;
using simcuda::DevicePtr;
using simcuda::MemcpyKind;

std::string SamplePtx() { return ptx::Print(ptx::MakeSampleModule()); }

class GuardianTest : public ::testing::Test {
 protected:
  GuardianTest()
      : gpu_(simgpu::QuadroRtxA4000()),
        manager_(&gpu_, ManagerOptions{}),
        transport_(&manager_) {}

  Result<GrdLib> Connect(std::uint64_t bytes = 16ull << 20) {
    return GrdLib::Connect(&transport_, bytes);
  }

  // Loads the sample module and returns the handle for `kernel`.
  Result<simcuda::FunctionId> LoadKernel(GrdLib& lib,
                                         const std::string& kernel) {
    GRD_ASSIGN_OR_RETURN(simcuda::ModuleId module,
                         lib.cuModuleLoadData(SamplePtx()));
    return lib.cuModuleGetFunction(module, kernel);
  }

  simcuda::Gpu gpu_;
  GrdManager manager_;
  LoopbackTransport transport_;
};

TEST_F(GuardianTest, RegistrationCreatesPowerOfTwoPartition) {
  auto lib = Connect((10ull << 20) + 5);  // 10 MB + change
  ASSERT_TRUE(lib.ok()) << lib.status();
  EXPECT_EQ(lib->partition_size(), 16ull << 20);  // rounded up
  EXPECT_EQ(lib->partition_base() % lib->partition_size(), 0u);
  EXPECT_GT(lib->client_id(), 0u);
}

TEST_F(GuardianTest, MallocServedFromOwnPartition) {
  auto lib = Connect();
  ASSERT_TRUE(lib.ok());
  DevicePtr p = 0;
  ASSERT_TRUE(lib->cudaMalloc(&p, 4096).ok());
  EXPECT_GE(p, lib->partition_base());
  EXPECT_LT(p, lib->partition_base() + lib->partition_size());
  ASSERT_TRUE(lib->cudaFree(p).ok());
}

TEST_F(GuardianTest, PartitionExhaustionIsOom) {
  auto lib = Connect(1ull << 20);
  ASSERT_TRUE(lib.ok());
  DevicePtr p = 0;
  EXPECT_EQ(lib->cudaMalloc(&p, 8ull << 20).code(),
            StatusCode::kOutOfMemory);
}

TEST_F(GuardianTest, TransfersRoundTrip) {
  auto lib = Connect();
  ASSERT_TRUE(lib.ok());
  DevicePtr p = 0;
  ASSERT_TRUE(lib->cudaMalloc(&p, 64).ok());
  const std::uint32_t data[4] = {9, 8, 7, 6};
  ASSERT_TRUE(lib->cudaMemcpyH2D(p, data, sizeof(data)).ok());
  std::uint32_t back[4] = {};
  ASSERT_TRUE(
      lib->cudaMemcpy(back, p, sizeof(back), MemcpyKind::kDeviceToHost).ok());
  EXPECT_EQ(back[0], 9u);
  EXPECT_EQ(back[3], 6u);
}

TEST_F(GuardianTest, TransferOutsidePartitionRejected) {
  // §4.2.2: host-initiated transfers are fenced by the bounds table.
  auto alice = Connect();
  auto bob = Connect();
  ASSERT_TRUE(alice.ok() && bob.ok());
  DevicePtr bobs = 0;
  ASSERT_TRUE(bob->cudaMalloc(&bobs, 64).ok());
  const std::uint32_t v = 666;
  EXPECT_EQ(alice->cudaMemcpyH2D(bobs, &v, sizeof(v)).code(),
            StatusCode::kPermissionDenied);
  std::uint32_t out = 0;
  EXPECT_EQ(
      alice->cudaMemcpy(&out, bobs, 4, MemcpyKind::kDeviceToHost).code(),
      StatusCode::kPermissionDenied);
  DevicePtr mine = 0;
  ASSERT_TRUE(alice->cudaMalloc(&mine, 64).ok());
  EXPECT_EQ(alice->cudaMemcpyD2D(mine, bobs, 4).code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(manager_.stats().transfers_rejected, 3u);
}

TEST_F(GuardianTest, KernelLaunchThroughManager) {
  auto lib = Connect();
  ASSERT_TRUE(lib.ok());
  auto fn = LoadKernel(*lib, "vecadd");
  ASSERT_TRUE(fn.ok()) << fn.status();
  DevicePtr a = 0, b = 0, c = 0;
  const int n = 32;
  ASSERT_TRUE(lib->cudaMalloc(&a, n * 4).ok());
  ASSERT_TRUE(lib->cudaMalloc(&b, n * 4).ok());
  ASSERT_TRUE(lib->cudaMalloc(&c, n * 4).ok());
  std::vector<float> xs(n, 2.0f), ys(n, 3.0f);
  ASSERT_TRUE(lib->cudaMemcpyH2D(a, xs.data(), n * 4).ok());
  ASSERT_TRUE(lib->cudaMemcpyH2D(b, ys.data(), n * 4).ok());
  simcuda::LaunchConfig config;
  config.block = {32, 1, 1};
  ASSERT_TRUE(lib->cudaLaunchKernel(*fn, config,
                                    {KernelArg::U64(a), KernelArg::U64(b),
                                     KernelArg::U64(c), KernelArg::U32(n)})
                  .ok());
  std::vector<float> out(n);
  ASSERT_TRUE(
      lib->cudaMemcpy(out.data(), c, n * 4, MemcpyKind::kDeviceToHost).ok());
  EXPECT_FLOAT_EQ(out[17], 5.0f);
  EXPECT_EQ(manager_.stats().sandboxed_launches, 1u);
}

TEST_F(GuardianTest, OobKernelWrapsAndVictimSurvives) {
  // The end-to-end Figure 4 property through the full client-server stack:
  // the attacker's OOB store wraps into its own partition; the victim's
  // data is intact; NO fault is raised (fencing, not checking).
  auto attacker = Connect();
  auto victim = Connect();
  ASSERT_TRUE(attacker.ok() && victim.ok());

  DevicePtr victim_buf = 0;
  ASSERT_TRUE(victim->cudaMalloc(&victim_buf, 64).ok());
  const std::uint32_t secret = 777;
  ASSERT_TRUE(victim->cudaMemcpyH2D(victim_buf, &secret, 4).ok());

  auto fn = LoadKernel(*attacker, "oob_writer");
  ASSERT_TRUE(fn.ok());
  DevicePtr mine = 0;
  ASSERT_TRUE(attacker->cudaMalloc(&mine, 64).ok());
  simcuda::LaunchConfig config;
  ASSERT_TRUE(attacker
                  ->cudaLaunchKernel(*fn, config,
                                     {KernelArg::U64(mine),
                                      KernelArg::U64(victim_buf - mine),
                                      KernelArg::U32(666)})
                  .ok());

  std::uint32_t check = 0;
  ASSERT_TRUE(
      victim->cudaMemcpy(&check, victim_buf, 4, MemcpyKind::kDeviceToHost)
          .ok());
  EXPECT_EQ(check, 777u);  // survived
  EXPECT_EQ(manager_.stats().faults_contained, 0u);
}

TEST_F(GuardianTest, CheckingModeFaultsOnlyTheAttacker) {
  GrdManager manager(&gpu_, [] {
    ManagerOptions options;
    options.mode = ptxpatcher::BoundsCheckMode::kChecking;
    return options;
  }());
  LoopbackTransport transport(&manager);
  auto attacker = GrdLib::Connect(&transport, 1ull << 20);
  auto victim = GrdLib::Connect(&transport, 1ull << 20);
  ASSERT_TRUE(attacker.ok() && victim.ok());

  DevicePtr victim_buf = 0;
  ASSERT_TRUE(victim->cudaMalloc(&victim_buf, 64).ok());
  auto module = attacker->cuModuleLoadData(SamplePtx());
  ASSERT_TRUE(module.ok());
  auto fn = attacker->cuModuleGetFunction(*module, "oob_writer");
  ASSERT_TRUE(fn.ok());
  DevicePtr mine = 0;
  ASSERT_TRUE(attacker->cudaMalloc(&mine, 64).ok());
  simcuda::LaunchConfig config;
  const Status s = attacker->cudaLaunchKernel(
      *fn, config,
      {KernelArg::U64(mine), KernelArg::U64(victim_buf - mine),
       KernelArg::U32(666)});
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);  // detected, not wrapped
  EXPECT_EQ(manager.stats().faults_contained, 1u);

  // Attacker is terminated; victim continues unharmed.
  DevicePtr more = 0;
  EXPECT_EQ(attacker->cudaMalloc(&more, 64).code(), StatusCode::kAborted);
  EXPECT_TRUE(victim->cudaMalloc(&more, 64).ok());
}

TEST_F(GuardianTest, NoProtectionModeSkipsSandboxing) {
  GrdManager manager(&gpu_, [] {
    ManagerOptions options;
    options.protection_enabled = false;
    return options;
  }());
  LoopbackTransport transport(&manager);
  auto lib = GrdLib::Connect(&transport, 1ull << 20);
  ASSERT_TRUE(lib.ok());
  auto module = lib->cuModuleLoadData(SamplePtx());
  ASSERT_TRUE(module.ok());
  auto fn = lib->cuModuleGetFunction(*module, "kernel");
  ASSERT_TRUE(fn.ok());
  DevicePtr p = 0;
  ASSERT_TRUE(lib->cudaMalloc(&p, 256).ok());
  simcuda::LaunchConfig config;
  config.block = {4, 1, 1};
  ASSERT_TRUE(lib->cudaLaunchKernel(*fn, config,
                                    {KernelArg::U64(p), KernelArg::U32(1)})
                  .ok());
  EXPECT_EQ(manager.stats().native_launches, 1u);
  EXPECT_EQ(manager.stats().sandboxed_launches, 0u);
}

TEST_F(GuardianTest, StandaloneFastPathIssuesNativeKernels) {
  GrdManager manager(&gpu_, [] {
    ManagerOptions options;
    options.standalone_fast_path = true;
    return options;
  }());
  LoopbackTransport transport(&manager);
  auto solo = GrdLib::Connect(&transport, 1ull << 20);
  ASSERT_TRUE(solo.ok());
  auto module = solo->cuModuleLoadData(SamplePtx());
  auto fn = solo->cuModuleGetFunction(*module, "kernel");
  ASSERT_TRUE(fn.ok());
  DevicePtr p = 0;
  ASSERT_TRUE(solo->cudaMalloc(&p, 256).ok());
  simcuda::LaunchConfig config;
  ASSERT_TRUE(solo->cudaLaunchKernel(*fn, config,
                                     {KernelArg::U64(p), KernelArg::U32(0)})
                  .ok());
  EXPECT_EQ(manager.stats().native_launches, 1u);

  // A second tenant arrives: subsequent launches are sandboxed (§4.2.3).
  auto second = GrdLib::Connect(&transport, 1ull << 20);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(solo->cudaLaunchKernel(*fn, config,
                                     {KernelArg::U64(p), KernelArg::U32(0)})
                  .ok());
  EXPECT_EQ(manager.stats().sandboxed_launches, 1u);
}

TEST_F(GuardianTest, StreamsEventsAndSyncForwarded) {
  auto lib = Connect();
  ASSERT_TRUE(lib.ok());
  simcuda::StreamId stream = 0;
  ASSERT_TRUE(lib->cudaStreamCreate(&stream).ok());
  bool capturing = true;
  ASSERT_TRUE(lib->cudaStreamIsCapturing(stream, &capturing).ok());
  EXPECT_FALSE(capturing);
  std::uint64_t capture_id = 7;
  ASSERT_TRUE(lib->cudaStreamGetCaptureInfo(stream, &capture_id).ok());
  EXPECT_EQ(capture_id, 0u);
  simcuda::EventId event = 0;
  ASSERT_TRUE(lib->cudaEventCreateWithFlags(&event, 2).ok());
  ASSERT_TRUE(lib->cudaEventRecord(event, stream).ok());
  ASSERT_TRUE(lib->cudaStreamWaitEvent(stream, event).ok());
  ASSERT_TRUE(lib->cudaEventSynchronize(event).ok());
  ASSERT_TRUE(lib->cudaStreamSynchronize(stream).ok());
  ASSERT_TRUE(lib->cudaDeviceSynchronize().ok());
  ASSERT_TRUE(lib->cudaEventDestroy(event).ok());
  ASSERT_TRUE(lib->cudaStreamDestroy(stream).ok());
  // Lifecycle: stream/event ops on dead handles are rejected.
  EXPECT_EQ(lib->cudaStreamSynchronize(stream).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(lib->cudaEventRecord(event, 0).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(GuardianTest, AsyncMemcpyOrderedOnStream) {
  auto lib = Connect();
  ASSERT_TRUE(lib.ok());
  DevicePtr p = 0;
  ASSERT_TRUE(lib->cudaMalloc(&p, 64).ok());
  simcuda::StreamId stream = 0;
  ASSERT_TRUE(lib->cudaStreamCreate(&stream).ok());
  const std::uint64_t first = 0x1111, second = 0x2222;
  ASSERT_TRUE(lib->cudaMemcpyH2DAsync(p, &first, 8, stream).ok());
  ASSERT_TRUE(lib->cudaMemcpyH2DAsync(p, &second, 8, stream).ok());
  ASSERT_TRUE(lib->cudaStreamSynchronize(stream).ok());
  std::uint64_t back = 0;
  ASSERT_TRUE(lib->cudaMemcpy(&back, p, 8, MemcpyKind::kDeviceToHost).ok());
  EXPECT_EQ(back, second);  // FIFO on the stream
  // Bounds are checked at submission, async or not.
  EXPECT_EQ(lib->cudaMemcpyH2DAsync(1ull << 40, &first, 8, stream).code(),
            StatusCode::kPermissionDenied);
}

TEST_F(GuardianTest, ExportTablesServedThroughManager) {
  auto lib = Connect();
  ASSERT_TRUE(lib.ok());
  auto table = lib->cudaGetExportTable(simcuda::ExportTableId::kGraphsInternal);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_FALSE((*table)->entries.empty());
  // Cached on second call (same pointer).
  auto again = lib->cudaGetExportTable(simcuda::ExportTableId::kGraphsInternal);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*table, *again);
}

TEST_F(GuardianTest, CublasRunsUnmodifiedOnGuardian) {
  // Transparency: the same simulated closed-source library that runs on
  // NativeCuda runs on grdLib with no code changes (paper's headline claim).
  auto lib = Connect();
  ASSERT_TRUE(lib.ok());
  auto blas = simlibs::Cublas::Create(*lib);
  ASSERT_TRUE(blas.ok()) << blas.status();
  const double xs[3] = {1.0, -5.0, 2.0};
  DevicePtr x = 0;
  ASSERT_TRUE(lib->cudaMalloc(&x, sizeof(xs)).ok());
  ASSERT_TRUE(lib->cudaMemcpyH2D(x, xs, sizeof(xs)).ok());
  auto idx = blas->Idamax(x, 3);
  ASSERT_TRUE(idx.ok()) << idx.status();
  EXPECT_EQ(*idx, 2u);
}

TEST_F(GuardianTest, DisconnectReleasesPartition) {
  auto lib = Connect();
  ASSERT_TRUE(lib.ok());
  EXPECT_EQ(manager_.active_clients(), 1u);
  ASSERT_TRUE(lib->Disconnect().ok());
  EXPECT_EQ(manager_.active_clients(), 0u);
  // The partition range is reusable.
  auto next = Connect();
  ASSERT_TRUE(next.ok());
}

TEST_F(GuardianTest, UnknownClientRejected) {
  ipc::Writer request;
  protocol::WriteHeader(request, protocol::Op::kMalloc, 999);
  request.Put<std::uint64_t>(64);
  const auto response = manager_.HandleRequest(std::move(request).Take());
  auto decoded = protocol::DecodeResponse(response);
  EXPECT_EQ(decoded.status().code(), StatusCode::kNotFound);
}

TEST_F(GuardianTest, MalformedRequestRejected) {
  const auto response = manager_.HandleRequest({0x01});
  auto decoded = protocol::DecodeResponse(response);
  EXPECT_FALSE(decoded.ok());
}

TEST_F(GuardianTest, SharingLayerFootprintIsOneContext) {
  // §2.2: Guardian creates one context total (176 MB) regardless of client
  // count, vs MPS's context per client.
  auto a = Connect();
  auto b = Connect();
  auto c = Connect();
  auto d = Connect();
  ASSERT_TRUE(a.ok() && b.ok() && c.ok() && d.ok());
  EXPECT_EQ(manager_.SharingLayerFootprint(), 176ull << 20);
}

TEST(GuardianChannelTest, FullStackOverShmRings) {
  // grdLib -> shared-memory ring -> ManagerServer thread -> grdManager.
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  GrdManager manager(&gpu, ManagerOptions{});
  ipc::HeapChannel heap_a, heap_b;
  ManagerServer server(&manager);
  server.AddChannel(&heap_a.channel());
  server.AddChannel(&heap_b.channel());
  std::atomic<bool> stop{false};
  std::thread pump([&] { server.Run(stop); });

  {
    ChannelTransport transport_a(&heap_a.channel());
    ChannelTransport transport_b(&heap_b.channel());
    auto alice = GrdLib::Connect(&transport_a, 1ull << 20);
    auto bob = GrdLib::Connect(&transport_b, 1ull << 20);
    ASSERT_TRUE(alice.ok()) << alice.status();
    ASSERT_TRUE(bob.ok()) << bob.status();

    DevicePtr pa = 0, pb = 0;
    ASSERT_TRUE(alice->cudaMalloc(&pa, 1024).ok());
    ASSERT_TRUE(bob->cudaMalloc(&pb, 1024).ok());
    EXPECT_NE(pa, pb);

    const std::uint64_t payload = 0xABCDEF;
    ASSERT_TRUE(alice->cudaMemcpyH2D(pa, &payload, 8).ok());
    std::uint64_t back = 0;
    ASSERT_TRUE(
        alice->cudaMemcpy(&back, pa, 8, MemcpyKind::kDeviceToHost).ok());
    EXPECT_EQ(back, 0xABCDEFull);

    // Cross-tenant transfer rejected through the real IPC path too.
    EXPECT_EQ(bob->cudaMemcpyH2D(pa, &payload, 8).code(),
              StatusCode::kPermissionDenied);
  }

  stop.store(true);
  pump.join();
}

TEST(PartitionAllocatorTest, PowerOfTwoSizeAlignedPartitions) {
  PartitionAllocator alloc(1ull << 30);
  auto p1 = alloc.CreatePartition(10ull << 20);
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(p1->size, 16ull << 20);
  EXPECT_EQ(p1->base % p1->size, 0u);
  auto p2 = alloc.CreatePartition(1ull << 20);
  ASSERT_TRUE(p2.ok());
  // Disjoint.
  EXPECT_TRUE(p1->end() <= p2->base || p2->end() <= p1->base);
}

TEST(PartitionAllocatorTest, SuballocationsStayInside) {
  PartitionAllocator alloc(1ull << 30);
  auto p = alloc.CreatePartition(1ull << 20);
  ASSERT_TRUE(p.ok());
  for (int i = 0; i < 100; ++i) {
    auto addr = alloc.AllocateIn(p->base, 4096);
    ASSERT_TRUE(addr.ok());
    EXPECT_TRUE(p->Contains(*addr, 4096));
  }
}

TEST(PartitionAllocatorTest, ReleaseThenReuse) {
  // headroom 0: the paper's exact-size alignment, tight packing.
  PartitionAllocator alloc(64ull << 20, /*growth_headroom=*/0);
  auto p1 = alloc.CreatePartition(16ull << 20);
  ASSERT_TRUE(p1.ok());
  auto p2 = alloc.CreatePartition(16ull << 20);
  ASSERT_TRUE(p2.ok());
  auto p3 = alloc.CreatePartition(32ull << 20);
  EXPECT_FALSE(p3.ok());  // doesn't fit alongside (alignment + guard)
  ASSERT_TRUE(alloc.ReleasePartition(p1->base).ok());
  ASSERT_TRUE(alloc.ReleasePartition(p2->base).ok());
  auto p4 = alloc.CreatePartition(32ull << 20);
  EXPECT_TRUE(p4.ok()) << p4.status();
}

TEST(PartitionAllocatorTest, FreeInValidatesOwnership) {
  PartitionAllocator alloc(1ull << 30);
  auto p1 = alloc.CreatePartition(1ull << 20);
  auto p2 = alloc.CreatePartition(1ull << 20);
  ASSERT_TRUE(p1.ok() && p2.ok());
  auto a = alloc.AllocateIn(p1->base, 256);
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(alloc.FreeIn(p2->base, *a).ok());
  EXPECT_TRUE(alloc.FreeIn(p1->base, *a).ok());
}

}  // namespace
}  // namespace grd::guardian
