#include <gtest/gtest.h>

#include <pthread.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "ipc/channel.hpp"
#include "ipc/serializer.hpp"
#include "ipc/shm_ring.hpp"

namespace grd::ipc {
namespace {

TEST(Serializer, PodRoundTrip) {
  Writer writer;
  writer.Put<std::uint32_t>(42);
  writer.Put<std::uint64_t>(0xDEADBEEFCAFEull);
  writer.Put<double>(3.5);
  Reader reader(writer.bytes());
  EXPECT_EQ(*reader.Get<std::uint32_t>(), 42u);
  EXPECT_EQ(*reader.Get<std::uint64_t>(), 0xDEADBEEFCAFEull);
  EXPECT_DOUBLE_EQ(*reader.Get<double>(), 3.5);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(Serializer, StringsAndBlobs) {
  Writer writer;
  writer.PutString("cudaLaunchKernel");
  const std::uint8_t payload[4] = {1, 2, 3, 4};
  writer.PutBlob(payload, sizeof(payload));
  writer.PutString("");
  Reader reader(writer.bytes());
  EXPECT_EQ(*reader.GetString(), "cudaLaunchKernel");
  auto blob = reader.GetBlob();
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(blob->size(), 4u);
  EXPECT_EQ((*blob)[3], 4u);
  EXPECT_EQ(*reader.GetString(), "");
}

TEST(Serializer, TruncationDetected) {
  Writer writer;
  writer.Put<std::uint32_t>(7);
  Reader reader(writer.bytes());
  ASSERT_TRUE(reader.Get<std::uint32_t>().ok());
  EXPECT_FALSE(reader.Get<std::uint64_t>().ok());
  Reader reader2(writer.bytes());
  EXPECT_FALSE(reader2.GetString().ok());  // length says 7, only 0 remain
}

TEST(ShmRing, SingleThreadMessageStream) {
  std::vector<std::uint8_t> region(ShmRing::RegionSize(4096));
  ShmRing ring(region.data(), 4096, /*initialize=*/true);
  for (int i = 0; i < 100; ++i) {
    Bytes message = {static_cast<std::uint8_t>(i),
                     static_cast<std::uint8_t>(i + 1)};
    ASSERT_TRUE(ring.Write(message).ok());
    auto out = ring.TryRead();
    ASSERT_TRUE(out.ok());
    EXPECT_EQ((*out)[0], static_cast<std::uint8_t>(i));
  }
  EXPECT_EQ(ring.TryRead().status().code(), StatusCode::kNotFound);
}

TEST(ShmRing, WrapAround) {
  // Capacity chosen so messages straddle the ring boundary repeatedly.
  std::vector<std::uint8_t> region(ShmRing::RegionSize(64));
  ShmRing ring(region.data(), 64, true);
  for (int i = 0; i < 200; ++i) {
    Bytes message(13, static_cast<std::uint8_t>(i));
    ASSERT_TRUE(ring.Write(message).ok());
    auto out = ring.TryRead();
    ASSERT_TRUE(out.ok());
    ASSERT_EQ(out->size(), 13u);
    EXPECT_EQ((*out)[12], static_cast<std::uint8_t>(i));
  }
}

TEST(ShmRing, OversizeMessageRejected) {
  std::vector<std::uint8_t> region(ShmRing::RegionSize(64));
  ShmRing ring(region.data(), 64, true);
  Bytes big(65, 0);
  EXPECT_EQ(ring.Write(big).code(), StatusCode::kInvalidArgument);
}

TEST(ShmRing, CloseUnblocksReader) {
  std::vector<std::uint8_t> region(ShmRing::RegionSize(4096));
  ShmRing ring(region.data(), 4096, true);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ring.Close();
  });
  auto out = ring.Read();
  EXPECT_EQ(out.status().code(), StatusCode::kUnavailable);
  closer.join();
}

TEST(ShmRing, CrossThreadThroughput) {
  std::vector<std::uint8_t> region(ShmRing::RegionSize(1 << 16));
  ShmRing ring(region.data(), 1 << 16, true);
  constexpr int kMessages = 20000;
  std::thread producer([&] {
    for (int i = 0; i < kMessages; ++i) {
      Bytes message(sizeof(int));
      std::memcpy(message.data(), &i, sizeof(int));
      ASSERT_TRUE(ring.Write(message).ok());
    }
  });
  for (int i = 0; i < kMessages; ++i) {
    auto out = ring.Read();
    ASSERT_TRUE(out.ok());
    int value = -1;
    std::memcpy(&value, out->data(), sizeof(int));
    ASSERT_EQ(value, i);  // SPSC ordering
  }
  producer.join();
}

TEST(Channel, RequestResponseAcrossThreads) {
  HeapChannel heap;
  Channel& channel = heap.channel();
  std::thread server([&] {
    for (int i = 0; i < 50; ++i) {
      auto request = channel.request().Read();
      ASSERT_TRUE(request.ok());
      Bytes response = *request;
      response.push_back(0xFF);  // echo + marker
      ASSERT_TRUE(channel.response().Write(response).ok());
    }
  });
  for (int i = 0; i < 50; ++i) {
    Bytes request = {static_cast<std::uint8_t>(i)};
    auto response = channel.Call(request);
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response->size(), 2u);
    EXPECT_EQ((*response)[0], static_cast<std::uint8_t>(i));
    EXPECT_EQ((*response)[1], 0xFF);
  }
  server.join();
}

TEST(ShmRing, MessageCountersTrackWholePublishes) {
  std::vector<std::uint8_t> region(ShmRing::RegionSize(4096));
  ShmRing ring(region.data(), 4096, /*initialize=*/true);
  EXPECT_EQ(ring.messages_written(), 0u);
  EXPECT_EQ(ring.messages_read(), 0u);
  const Bytes message(16, 0xAB);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(ring.Write(message).ok());
  EXPECT_EQ(ring.messages_written(), 3u);
  ASSERT_TRUE(ring.TryRead().ok());
  ASSERT_TRUE(ring.TryRead().ok());
  EXPECT_EQ(ring.messages_read(), 2u);
  // The crash-repair deficit a supervisor would compute: one consumed
  // message per matching response still owed.
  EXPECT_EQ(ring.messages_written() - ring.messages_read(), 1u);
}

TEST(ShmRing, ReadWithDeadlineTimesOutOnEmptyRing) {
  std::vector<std::uint8_t> region(ShmRing::RegionSize(4096));
  ShmRing ring(region.data(), 4096, /*initialize=*/true);
  const auto start = std::chrono::steady_clock::now();
  auto result = ring.ReadWithDeadline(std::chrono::milliseconds(50));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            50);
}

TEST(ShmRing, ReadWithDeadlineDeliversLateMessage) {
  std::vector<std::uint8_t> region(ShmRing::RegionSize(4096));
  ShmRing ring(region.data(), 4096, /*initialize=*/true);
  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(ring.Write(Bytes(8, 0x5A)).ok());
  });
  auto result = ring.ReadWithDeadline(std::chrono::seconds(5));
  writer.join();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 8u);
}

TEST(ShmRing, ReadWithDeadlineIsNotShortenedBySignalStorm) {
  // The EINTR audit's regression guard: a signal landing in the timed wait
  // must RETRY against the absolute deadline, not spuriously time out early
  // (nor error out). Hammer the waiting thread with SIGUSR1 (handler
  // installed without SA_RESTART so sleeps genuinely return EINTR) and
  // check the full deadline was honored.
  struct sigaction action{};
  struct sigaction previous{};
  action.sa_handler = [](int) {};
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: make EINTR observable
  ASSERT_EQ(sigaction(SIGUSR1, &action, &previous), 0);

  std::vector<std::uint8_t> region(ShmRing::RegionSize(4096));
  ShmRing ring(region.data(), 4096, /*initialize=*/true);
  std::atomic<bool> done{false};
  Status observed = OkStatus();
  std::chrono::steady_clock::duration elapsed{};
  std::thread reader([&] {
    const auto start = std::chrono::steady_clock::now();
    observed = ring.ReadWithDeadline(std::chrono::milliseconds(200)).status();
    elapsed = std::chrono::steady_clock::now() - start;
    done.store(true);
  });
  while (!done.load()) {
    pthread_kill(reader.native_handle(), SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  reader.join();
  ASSERT_EQ(sigaction(SIGUSR1, &previous, nullptr), 0);

  EXPECT_EQ(observed.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(
      std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
      200);
}

TEST(ShmRing, MessagePublishedBeforeDeadlineIsNeverTimedOut) {
  // Deadline-edge race regression: ReadWithDeadline used to probe the ring
  // and THEN read the clock, so a frame published in that window — before
  // the deadline — was reported as DeadlineExceeded and the message sat
  // unconsumed (lost to this call; a retry would double-consume a later
  // pairing). The fix re-probes once on the deadline path, making the
  // invariant deterministic: a Write that RETURNS at or before the reader's
  // entry-time deadline estimate can never be timed out, because the
  // reader's internal deadline is at least that estimate and the final
  // probe happens after it. The producer aims its publish a few hundred
  // nanoseconds before the deadline to land in the danger window.
  std::vector<std::uint8_t> region(ShmRing::RegionSize(4096));
  ShmRing ring(region.data(), 4096, /*initialize=*/true);

  auto now_ns = [] {
    timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
  };

  constexpr int kTrials = 4000;
  // Short enough that the reader is still in its dense spin-probe phase
  // when the deadline expires (the window the bug lives in).
  constexpr std::int64_t kTimeoutNs = 20'000;
  std::atomic<int> armed{0};
  std::atomic<int> published{0};
  std::atomic<std::int64_t> deadline_estimate{0};
  std::atomic<std::int64_t> published_at{0};

  std::thread producer([&] {
    std::uint64_t salt = 0x9E3779B97F4A7C15ull;
    for (int trial = 1; trial <= kTrials; ++trial) {
      while (armed.load(std::memory_order_acquire) < trial) {
      }
      const std::int64_t deadline =
          deadline_estimate.load(std::memory_order_acquire);
      salt = salt * 6364136223846793005ull + 1442695040888963407ull;
      const std::int64_t lead = static_cast<std::int64_t>(salt % 1200);
      while (now_ns() < deadline - lead) {
      }
      ASSERT_TRUE(ring.Write(Bytes(4, 0x5A)).ok());
      published_at.store(now_ns(), std::memory_order_release);
      published.store(trial, std::memory_order_release);
    }
  });

  int violations = 0;
  for (int trial = 1; trial <= kTrials; ++trial) {
    const std::int64_t estimate = now_ns() + kTimeoutNs;
    deadline_estimate.store(estimate, std::memory_order_release);
    armed.store(trial, std::memory_order_release);
    auto result = ring.ReadWithDeadline(std::chrono::nanoseconds(kTimeoutNs));
    while (published.load(std::memory_order_acquire) < trial) {
    }
    if (!result.ok()) {
      ASSERT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
      // A publish whose Write RETURNED before the entry-time deadline
      // estimate must have been delivered, not timed out.
      if (published_at.load(std::memory_order_acquire) <= estimate)
        ++violations;
      // The frame is still in the ring (that is the bug's signature when it
      // fires, and the legitimate state when the publish was genuinely
      // late); drain it so the next trial starts empty.
      ASSERT_TRUE(ring.Read().ok());
    }
  }
  producer.join();
  EXPECT_EQ(violations, 0);
}

TEST(ShmRing, DoorbellSurvivesWriteIndexWrap) {
  // The futex doorbell used to wait on the low 32 bits of the byte-counted
  // tail, which aliases (ABA) when the write index crosses a 4 GiB
  // boundary; the doorbell is now a dedicated per-publish sequence counter.
  // Start the ring just below the 2^32 mark so this stream of messages
  // crosses it while a deadline reader sleeps on the doorbell.
  std::vector<std::uint8_t> region(ShmRing::RegionSize(4096));
  ShmRing ring(region.data(), 4096, /*initialize=*/true);
  auto* header = reinterpret_cast<ShmRing::Header*>(region.data());
  const std::uint64_t near_wrap = (1ull << 32) - 64;
  header->head.store(near_wrap, std::memory_order_relaxed);
  header->tail.store(near_wrap, std::memory_order_relaxed);

  std::thread producer([&] {
    for (int i = 0; i < 64; ++i) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      ASSERT_TRUE(ring.Write(Bytes(12, static_cast<std::uint8_t>(i))).ok());
    }
  });
  for (int i = 0; i < 64; ++i) {
    auto out = ring.ReadWithDeadline(std::chrono::seconds(5));
    ASSERT_TRUE(out.ok());
    ASSERT_EQ(out->size(), 12u);
    EXPECT_EQ((*out)[0], static_cast<std::uint8_t>(i));
  }
  producer.join();
  EXPECT_GT(header->tail.load(std::memory_order_acquire), 1ull << 32);
}

TEST(Channel, CrossProcessViaForkAndSharedRegion) {
  // The paper's real deployment shape: client and manager in different
  // address spaces sharing a memory segment.
  auto region = SharedRegion::Create(Channel::RegionSize(4096));
  ASSERT_TRUE(region.ok());
  Channel parent_channel(region->addr(), 4096, /*initialize=*/true);

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: attach and serve one doubling request.
    Channel child_channel(region->addr(), 4096, /*initialize=*/false);
    auto request = child_channel.request().Read();
    if (!request.ok()) _exit(1);
    std::uint32_t value = 0;
    std::memcpy(&value, request->data(), sizeof(value));
    value *= 2;
    Bytes response(sizeof(value));
    std::memcpy(response.data(), &value, sizeof(value));
    _exit(child_channel.response().Write(response).ok() ? 0 : 1);
  }

  std::uint32_t value = 21;
  Bytes request(sizeof(value));
  std::memcpy(request.data(), &value, sizeof(value));
  auto response = parent_channel.Call(request);
  ASSERT_TRUE(response.ok());
  std::uint32_t doubled = 0;
  std::memcpy(&doubled, response->data(), sizeof(doubled));
  EXPECT_EQ(doubled, 42u);

  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  EXPECT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);
}

}  // namespace
}  // namespace grd::ipc
