// Observability layer coverage: the metrics registry (Log2Histogram,
// ShardedCounter, registration-ordered JSON / Prometheus rendering) and the
// structured tracer (thread rings, shared span arena, context propagation,
// Chrome trace-event export) — plus end-to-end trace propagation through
// the loopback manager, including kBatch compacted envelopes.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "guardian/execution.hpp"
#include "guardian/grdlib.hpp"
#include "guardian/manager.hpp"
#include "guardian/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "ptx/generator.hpp"
#include "ptx/printer.hpp"
#include "simgpu/device_spec.hpp"

namespace grd {
namespace {

using obs::Log2Histogram;
using obs::MetricsRegistry;
using obs::ShardedCounter;
using obs::SpanArenaHeader;
using obs::SpanRecord;
using obs::TraceContext;
using obs::TraceExporter;
using obs::TraceRecorder;

// ---- metrics ---------------------------------------------------------------

TEST(Log2HistogramTest, BucketsPercentilesAndMax) {
  Log2Histogram hist;
  EXPECT_EQ(hist.PercentileNs(0.5), 0u);  // empty histogram

  // Three 1 µs samples land in bucket 0, one 1024 µs sample in bucket 10.
  for (int i = 0; i < 3; ++i) hist.Record(1'000);
  hist.Record(1'024'000);

  EXPECT_EQ(hist.count.load(), 4u);
  EXPECT_EQ(hist.total_ns.load(), 3'000u + 1'024'000u);
  EXPECT_EQ(hist.max_ns.load(), 1'024'000u);
  EXPECT_EQ(hist.bucket[0].load(), 3u);
  EXPECT_EQ(hist.bucket[10].load(), 1u);
  // Percentiles report the upper bound (ns) of the holding bucket.
  EXPECT_EQ(hist.PercentileNs(0.50), 2'000u);
  EXPECT_EQ(hist.PercentileNs(1.00), 2'048'000u);
}

TEST(ShardedCounterTest, SumsAcrossThreads) {
  ShardedCounter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) counter.Add();
    });
  for (auto& thread : threads) thread.join();
  counter.Add(42);
  EXPECT_EQ(counter.Value(), kThreads * kIncrements + 42u);
}

TEST(MetricsRegistryTest, JsonIsRegistrationOrderedWithCoalescedGroups) {
  std::atomic<std::uint64_t> a{1};
  std::atomic<std::uint64_t> g{7};
  Log2Histogram x, y;
  x.Record(1'000);

  MetricsRegistry registry;
  registry.Counter("a", &a);
  registry.Histogram("lat", "x", &x);
  registry.Gauge("g", &g);
  registry.Histogram("lat", "y", &y);  // joins group at x's position
  registry.OwnedCounter("own").Add(5);

  // Byte-exact: this shape is what keeps ManagerStats::ToJson stable for
  // its historical consumers.
  EXPECT_EQ(registry.ToJson(),
            "{\"a\":1,"
            "\"lat\":{"
            "\"x\":{\"count\":1,\"total_ns\":1000,\"max_ns\":1000,"
            "\"p50_ns\":2000,\"p99_ns\":2000,\"buckets_us_log2\":{\"0\":1}},"
            "\"y\":{\"count\":0,\"total_ns\":0,\"max_ns\":0,"
            "\"p50_ns\":0,\"p99_ns\":0,\"buckets_us_log2\":{}}},"
            "\"g\":7,"
            "\"own\":5}");
}

TEST(MetricsRegistryTest, PrometheusTextExposition) {
  std::atomic<std::uint64_t> a{1};
  std::atomic<std::uint64_t> g{7};
  Log2Histogram x;
  x.Record(1'000);

  MetricsRegistry registry;
  registry.Counter("a", &a);
  registry.Gauge("g", &g);
  registry.Histogram("lat", "x", &x);
  registry.OwnedCounter("own").Add(5);

  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# TYPE grd_a counter\ngrd_a 1\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE grd_g gauge\ngrd_g 7\n"), std::string::npos);
  EXPECT_NE(text.find("grd_lat_x_us_bucket{le=\"2\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("grd_lat_x_us_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("grd_lat_x_us_sum 1\n"), std::string::npos);
  EXPECT_NE(text.find("grd_lat_x_us_count 1\n"), std::string::npos);
  EXPECT_NE(text.find("grd_own 5\n"), std::string::npos);
}

TEST(ManagerStatsTest, JsonKeepsHistoricalKeyOrderAndRingCounters) {
  guardian::ManagerStats stats;
  stats.launches.store(3);
  stats.ring_messages_read.store(11);
  stats.ring_messages_written.store(9);
  const std::string json = stats.ToJson();

  // Leading key unchanged since the first MANAGER_STATS emission.
  EXPECT_EQ(json.rfind("{\"launches\":3,", 0), 0u);
  // The new ring counters slot in after the tier counters, before the
  // wait histograms — appended, never reordered.
  const auto tier = json.find("\"tier2_instructions\":");
  const auto read = json.find("\"ring_messages_read\":11");
  const auto written = json.find("\"ring_messages_written\":9");
  const auto hist = json.find("\"wait_histograms\":{");
  ASSERT_NE(tier, std::string::npos);
  ASSERT_NE(read, std::string::npos);
  ASSERT_NE(written, std::string::npos);
  ASSERT_NE(hist, std::string::npos);
  EXPECT_LT(tier, read);
  EXPECT_LT(read, written);
  EXPECT_LT(written, hist);
  // One histogram per priority class, in class order.
  EXPECT_LT(json.find("\"realtime\":{", hist), json.find("\"normal\":{", hist));
  EXPECT_LT(json.find("\"normal\":{", hist), json.find("\"batch\":{", hist));

  const std::string prom = stats.ToPrometheus();
  EXPECT_NE(prom.find("grd_launches 3\n"), std::string::npos);
  EXPECT_NE(prom.find("grd_ring_messages_read 11\n"), std::string::npos);
}

// ---- tracing ---------------------------------------------------------------

// Every trace test starts from a clean recorder and leaves it disabled:
// the recorder is a process-wide singleton shared with the other suites in
// this binary.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { TraceRecorder::Instance().Reset(); }
  void TearDown() override { TraceRecorder::Instance().Reset(); }

  static std::vector<SpanRecord> Collect() {
    std::vector<SpanRecord> spans;
    TraceRecorder::Instance().Collect(&spans);
    return spans;
  }
  static const SpanRecord* Find(const std::vector<SpanRecord>& spans,
                                const char* name) {
    for (const SpanRecord& rec : spans)
      if (std::strcmp(rec.name, name) == 0) return &rec;
    return nullptr;
  }
};

TEST_F(TraceTest, DisabledRecorderEmitsNothing) {
  ASSERT_FALSE(TraceRecorder::Instance().enabled());
  TraceRecorder::Instance().EmitComplete("noop", TraceContext{1, 2}, 0, 10,
                                         20);
  {
    obs::ScopedSpan span("noop2");
    EXPECT_FALSE(span.active());
  }
  EXPECT_TRUE(Collect().empty());
  // Disabled ScopedSpan must not perturb the ambient context either.
  EXPECT_EQ(obs::CurrentContext().trace_id, 0u);
}

TEST_F(TraceTest, RingEmitRoundTripsAllFields) {
  TraceRecorder::Instance().Enable(true);
  TraceRecorder::Instance().EmitComplete("alpha", TraceContext{10, 20}, 30,
                                         100, 250, 4, 5);
  TraceRecorder::Instance().EmitInstant("mark", TraceContext{10, 20}, 6);

  const auto spans = Collect();
  const SpanRecord* alpha = Find(spans, "alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(alpha->trace_id, 10u);
  EXPECT_EQ(alpha->span_id, 20u);
  EXPECT_EQ(alpha->parent_span_id, 30u);
  EXPECT_EQ(alpha->begin_ns, 100u);
  EXPECT_EQ(alpha->end_ns, 250u);
  EXPECT_EQ(alpha->arg1, 4u);
  EXPECT_EQ(alpha->arg2, 5u);
  EXPECT_EQ(alpha->phase, 'X');
  EXPECT_EQ(alpha->pid, getpid());

  const SpanRecord* mark = Find(spans, "mark");
  ASSERT_NE(mark, nullptr);
  EXPECT_EQ(mark->phase, 'i');
  EXPECT_EQ(mark->trace_id, 10u);
  EXPECT_EQ(mark->parent_span_id, 20u);  // instant hangs off the open span
  EXPECT_EQ(mark->begin_ns, mark->end_ns);
}

TEST_F(TraceTest, ContextScopeNestsAndRestores) {
  TraceRecorder::Instance().Enable(true);
  EXPECT_FALSE(obs::CurrentContext().valid());
  {
    obs::ContextScope outer(TraceContext{42, 7});
    EXPECT_EQ(obs::CurrentContext().trace_id, 42u);
    {
      obs::ScopedSpan child("child");
      ASSERT_TRUE(child.active());
      // The span inherits the trace and becomes the ambient span.
      EXPECT_EQ(obs::CurrentContext().trace_id, 42u);
      EXPECT_NE(obs::CurrentContext().span_id, 7u);
    }
    EXPECT_EQ(obs::CurrentContext().span_id, 7u);  // restored
  }
  EXPECT_FALSE(obs::CurrentContext().valid());

  const auto spans = Collect();
  const SpanRecord* child = Find(spans, "child");
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->trace_id, 42u);
  EXPECT_EQ(child->parent_span_id, 7u);
  EXPECT_LE(child->begin_ns, child->end_ns);
}

TEST_F(TraceTest, ScopedSpanStartsFreshTraceWithoutAmbientContext) {
  TraceRecorder::Instance().Enable(true);
  { obs::ScopedSpan root("root"); }
  const auto spans = Collect();
  const SpanRecord* root = Find(spans, "root");
  ASSERT_NE(root, nullptr);
  EXPECT_NE(root->trace_id, 0u);
  EXPECT_EQ(root->parent_span_id, 0u);
}

TEST_F(TraceTest, ArenaCommitsOnlyFinishedRecordsAndCountsDrops) {
  constexpr std::uint64_t kCapacity = 4;
  std::vector<std::uint64_t> buffer(
      (SpanArenaHeader::RegionSize(kCapacity) + 7) / 8);
  SpanArenaHeader* arena =
      SpanArenaHeader::Initialize(buffer.data(), kCapacity);
  TraceRecorder::Instance().Enable(true);
  TraceRecorder::Instance().BindArena(arena);

  TraceRecorder::Instance().EmitComplete("one", TraceContext{1, 1}, 0, 1, 2);
  TraceRecorder::Instance().EmitComplete("two", TraceContext{1, 2}, 0, 3, 4);

  // Forge what a SIGKILLed writer leaves behind: a claimed slot whose
  // payload was written but whose commit word never was.
  const std::uint64_t torn = arena->next.fetch_add(1);
  ASSERT_LT(torn, kCapacity);
  SpanRecord uncommitted;
  uncommitted.trace_id = 99;
  arena->records()[torn].CopyPayloadFrom(uncommitted);

  auto spans = Collect();
  EXPECT_EQ(spans.size(), 2u);  // the uncommitted claim is invisible
  EXPECT_NE(Find(spans, "one"), nullptr);
  EXPECT_NE(Find(spans, "two"), nullptr);

  // Overflow: claims beyond capacity are dropped and accounted.
  for (int i = 0; i < 3; ++i)
    TraceRecorder::Instance().EmitComplete("spill", TraceContext{1, 3}, 0, 5,
                                           6);
  EXPECT_EQ(TraceRecorder::Instance().dropped(), 2u);
  spans = Collect();
  EXPECT_EQ(spans.size(), 3u);  // one spill fit in the last slot

  TraceRecorder::Instance().BindArena(nullptr);  // buffer dies with the test
}

TEST_F(TraceTest, ExporterElidesMatchedBeginsAndRendersShape) {
  auto make = [](char phase, const char* name, std::uint64_t span_id,
                 std::uint64_t begin, std::uint64_t end) {
    SpanRecord rec;
    rec.phase = phase;
    rec.trace_id = 1;
    rec.span_id = span_id;
    rec.begin_ns = begin;
    rec.end_ns = end;
    rec.pid = 7;
    rec.tid = 8;
    std::snprintf(rec.name, sizeof(rec.name), "%s", name);
    return rec;
  };
  std::vector<SpanRecord> spans;
  spans.push_back(make('B', "done", 5, 1'000, 0));    // elided: 'X' follows
  spans.push_back(make('X', "done", 5, 1'000, 3'500));
  spans.push_back(make('B', "killed", 6, 2'000, 0));  // survives: no 'X'
  spans.push_back(make('i', "mark\"q", 7, 4'000, 4'000));

  const std::string json = TraceExporter::ToChromeJson(spans);
  // One "done" event only — the complete one, with a microsecond duration.
  EXPECT_EQ(json.find("\"name\":\"done\""),
            json.rfind("\"name\":\"done\""));
  EXPECT_NE(json.find("\"ph\":\"X\",\"ts\":1.000,\"dur\":2.500"),
            std::string::npos);
  // The unmatched begin renders as an unterminated slice, without "dur".
  const auto killed = json.find("\"name\":\"killed\",\"ph\":\"B\"");
  ASSERT_NE(killed, std::string::npos);
  const std::string killed_event =
      json.substr(killed, json.find("}}", killed) - killed);
  EXPECT_EQ(killed_event.find("\"dur\""), std::string::npos);
  // Instants carry thread scope; names are JSON-escaped.
  EXPECT_NE(json.find("\"name\":\"mark\\\"q\",\"ph\":\"i\""),
            std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.substr(json.size() - 2), "]}");
}

// ---- end-to-end propagation through the manager ----------------------------

TEST_F(TraceTest, RequestSpansPropagateThroughDispatchAndExecution) {
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  guardian::ManagerOptions options;
  options.tracing_enabled = true;
  guardian::GrdManager manager(&gpu, options);
  guardian::LoopbackTransport transport(&manager);

  auto lib = guardian::GrdLib::Connect(&transport, 1 << 20);
  ASSERT_TRUE(lib.ok());
  auto module = lib->cuModuleLoadData(ptx::Print(ptx::MakeSampleModule()));
  ASSERT_TRUE(module.ok());
  auto fn = lib->cuModuleGetFunction(*module, "kernel");
  ASSERT_TRUE(fn.ok());
  simcuda::DevicePtr buf = 0;
  ASSERT_TRUE(lib->cudaMalloc(&buf, 4096).ok());
  simcuda::LaunchConfig config;
  config.block = {8, 1, 1};
  // Default stream: synchronous, so the exec span has completed by return.
  ASSERT_TRUE(lib->cudaLaunchKernel(*fn, config,
                                    {ptxexec::KernelArg::U64(buf),
                                     ptxexec::KernelArg::U32(0)})
                  .ok());

  const auto spans = Collect();
  const SpanRecord* client = Find(spans, "client.LaunchKernel");
  const SpanRecord* dispatch = Find(spans, "LaunchKernel");
  ASSERT_NE(client, nullptr);
  ASSERT_NE(dispatch, nullptr);
  // One trace id flows from the client call through dispatch...
  EXPECT_EQ(dispatch->trace_id, client->trace_id);
  EXPECT_NE(client->trace_id, 0u);

  // ...into the queue-wait and per-tier execution spans.
  const SpanRecord* queue = Find(spans, "queue.wait");
  ASSERT_NE(queue, nullptr);
  EXPECT_EQ(queue->trace_id, client->trace_id);
  const SpanRecord* exec = nullptr;
  for (const SpanRecord& rec : spans)
    if (std::strncmp(rec.name, "exec.t", 6) == 0 && rec.phase == 'X')
      exec = &rec;
  ASSERT_NE(exec, nullptr);
  EXPECT_EQ(exec->trace_id, client->trace_id);
  EXPECT_EQ(exec->arg2, 0u);  // outcome code: completed
  EXPECT_GT(exec->arg1, 0u);  // instructions retired

  // The module load passed through the sandbox patch/compile spans.
  EXPECT_NE(Find(spans, "sandbox.patch"), nullptr);
  EXPECT_NE(Find(spans, "ModuleLoadData"), nullptr);
}

TEST_F(TraceTest, BatchSubRequestsCarryTheirOwnTraceContexts) {
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  guardian::ManagerOptions options;
  options.tracing_enabled = true;
  guardian::GrdManager manager(&gpu, options);
  guardian::LoopbackTransport transport(&manager);

  auto lib = guardian::GrdLib::Connect(&transport, 1 << 20);
  ASSERT_TRUE(lib.ok());
  auto module = lib->cuModuleLoadData(ptx::Print(ptx::MakeSampleModule()));
  ASSERT_TRUE(module.ok());
  auto fn = lib->cuModuleGetFunction(*module, "kernel");
  ASSERT_TRUE(fn.ok());
  simcuda::DevicePtr buf = 0;
  ASSERT_TRUE(lib->cudaMalloc(&buf, 4096).ok());
  simcuda::StreamId stream = 0;
  ASSERT_TRUE(lib->cudaStreamCreate(&stream).ok());

  lib->EnableBatching(8);
  simcuda::LaunchConfig config;
  config.block = {8, 1, 1};
  config.stream = stream;  // async => batchable
  const std::vector<ptxexec::KernelArg> args = {ptxexec::KernelArg::U64(buf),
                                                ptxexec::KernelArg::U32(0)};
  ASSERT_TRUE(lib->cudaLaunchKernel(*fn, config, args).ok());
  ASSERT_TRUE(lib->cudaLaunchKernel(*fn, config, args).ok());
  ASSERT_TRUE(lib->FlushBatch().ok());
  ASSERT_TRUE(lib->cudaStreamSynchronize(stream).ok());
  ASSERT_EQ(lib->batches_sent(), 1u);

  const auto spans = Collect();
  // The envelope produced one client span (arg1 = sub-request count) and
  // one dispatch span.
  const SpanRecord* client_batch = Find(spans, "client.Batch");
  const SpanRecord* batch = Find(spans, "Batch");
  ASSERT_NE(client_batch, nullptr);
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(client_batch->arg1, 2u);
  EXPECT_EQ(batch->trace_id, client_batch->trace_id);

  // Each buffered sub-request was stamped with its own context at build
  // time; RunBatch dispatches every one under that context, so the two
  // launch spans carry two distinct trace ids — both different from the
  // envelope's.
  std::vector<const SpanRecord*> launches;
  for (const SpanRecord& rec : spans)
    if (std::strcmp(rec.name, "LaunchKernel") == 0) launches.push_back(&rec);
  ASSERT_EQ(launches.size(), 2u);
  EXPECT_NE(launches[0]->trace_id, launches[1]->trace_id);
  EXPECT_NE(launches[0]->trace_id, client_batch->trace_id);
  EXPECT_NE(launches[1]->trace_id, client_batch->trace_id);
  EXPECT_NE(launches[0]->trace_id, 0u);
  EXPECT_NE(launches[1]->trace_id, 0u);

  // The manager really served it as one compacted batch.
  EXPECT_EQ(manager.stats().batches_decoded.load(), 1u);
  EXPECT_EQ(manager.stats().batched_ops.load(), 2u);
}

}  // namespace
}  // namespace grd
