// Robustness of the grdManager request dispatcher: malformed, truncated and
// adversarial messages must produce error responses, never crashes or
// protection bypasses. The manager is the trust boundary — clients are
// untrusted (threat model, §3/§5).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/rng.hpp"
#include "fleet/chaos.hpp"
#include "guardian/grdlib.hpp"
#include "guardian/manager.hpp"
#include "guardian/transport.hpp"
#include "ipc/channel.hpp"
#include "ptx/generator.hpp"
#include "ptx/printer.hpp"
#include "simgpu/device_spec.hpp"

namespace grd::guardian {
namespace {

using ptxexec::KernelArg;
using simcuda::DevicePtr;

class RobustnessTest : public ::testing::Test {
 protected:
  RobustnessTest()
      : gpu_(simgpu::QuadroRtxA4000()),
        manager_(&gpu_, ManagerOptions{}),
        transport_(&manager_) {}

  // Sends raw bytes; returns the decoded response status.
  Status Send(ipc::Bytes raw) {
    const auto response = manager_.HandleRequest(raw);
    auto decoded = protocol::DecodeResponse(response);
    return decoded.ok() ? OkStatus() : decoded.status();
  }

  simcuda::Gpu gpu_;
  GrdManager manager_;
  LoopbackTransport transport_;
};

TEST_F(RobustnessTest, EmptyMessage) {
  EXPECT_FALSE(Send({}).ok());
}

TEST_F(RobustnessTest, TruncatedHeader) {
  EXPECT_FALSE(Send({0x03, 0x00}).ok());
}

TEST_F(RobustnessTest, UnknownOpcode) {
  ipc::Writer request;
  request.Put<std::uint32_t>(0xDEAD);
  request.Put<std::uint64_t>(1);
  EXPECT_FALSE(Send(std::move(request).Take()).ok());
}

TEST_F(RobustnessTest, BatchAbortAnswersInFullFormWithPerOpStatuses) {
  auto lib = GrdLib::Connect(&transport_, 1 << 20);
  ASSERT_TRUE(lib.ok());
  simcuda::EventId event = 0;
  ASSERT_TRUE(lib->cudaEventCreateWithFlags(&event, 0).ok());

  // sub0: valid EventRecord on the default stream. sub1: launch with a
  // bogus function handle — fails, aborting the batch.
  ipc::Writer sub0;
  protocol::WriteHeader(sub0, protocol::Op::kEventRecord, lib->client_id());
  sub0.Put<std::uint64_t>(event);
  sub0.Put<std::uint64_t>(0);
  ipc::Writer sub1;
  protocol::WriteHeader(sub1, protocol::Op::kLaunchKernel, lib->client_id());
  sub1.Put<std::uint64_t>(999);  // unknown function handle
  for (int i = 0; i < 6; ++i) sub1.Put<std::uint32_t>(1);  // grid + block
  sub1.Put<std::uint64_t>(0);    // stream
  sub1.Put<std::uint32_t>(0);    // argc

  ipc::Writer envelope;
  protocol::WriteHeader(envelope, protocol::Op::kBatch, lib->client_id());
  envelope.Put<std::uint32_t>(2);
  const ipc::Bytes sub0_bytes = std::move(sub0).Take();
  const ipc::Bytes sub1_bytes = std::move(sub1).Take();
  envelope.PutBlob(sub0_bytes.data(), sub0_bytes.size());
  envelope.PutBlob(sub1_bytes.data(), sub1_bytes.size());

  const auto response = manager_.HandleRequest(std::move(envelope).Take());
  auto reader = protocol::DecodeResponse(response);
  ASSERT_TRUE(reader.ok()) << reader.status();
  auto form = reader->Get<std::uint8_t>();
  ASSERT_TRUE(form.ok());
  EXPECT_EQ(*form, 0) << "aborted batch must keep the full response form";
  auto executed = reader->Get<std::uint32_t>();
  ASSERT_TRUE(executed.ok());
  ASSERT_EQ(*executed, 2u);
  auto first = reader->GetBlob();
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(protocol::DecodeResponse(*first).ok());
  auto second = reader->GetBlob();
  ASSERT_TRUE(second.ok());
  auto second_decoded = protocol::DecodeResponse(*second);
  ASSERT_FALSE(second_decoded.ok());
  EXPECT_EQ(second_decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(manager_.stats().batch_responses_compacted, 0u);
  EXPECT_EQ(manager_.stats().batches_decoded, 1u);
}

TEST_F(RobustnessTest, TruncatedLaunchRequest) {
  auto lib = GrdLib::Connect(&transport_, 1 << 20);
  ASSERT_TRUE(lib.ok());
  ipc::Writer request;
  protocol::WriteHeader(request, protocol::Op::kLaunchKernel,
                        lib->client_id());
  request.Put<std::uint64_t>(1);   // function id
  request.Put<std::uint32_t>(1);   // grid.x ... then nothing
  const Status s = Send(std::move(request).Take());
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);  // "message truncated"
}

TEST_F(RobustnessTest, LaunchClaimingHugeArgCount) {
  auto lib = GrdLib::Connect(&transport_, 1 << 20);
  ASSERT_TRUE(lib.ok());
  ipc::Writer request;
  protocol::WriteHeader(request, protocol::Op::kLaunchKernel,
                        lib->client_id());
  request.Put<std::uint64_t>(1);
  for (int i = 0; i < 6; ++i) request.Put<std::uint32_t>(1);  // dims
  request.Put<std::uint64_t>(0);            // stream
  request.Put<std::uint32_t>(0xFFFFFFFF);   // argc lie
  EXPECT_FALSE(Send(std::move(request).Take()).ok());
}

TEST_F(RobustnessTest, SpoofedClientIdRejected) {
  // A client forging another tenant's id must not reach their partition:
  // ids map to partitions server-side, and unknown ids are rejected.
  ipc::Writer request;
  protocol::WriteHeader(request, protocol::Op::kMalloc, 424242);
  request.Put<std::uint64_t>(64);
  EXPECT_EQ(Send(std::move(request).Take()).code(), StatusCode::kNotFound);
}

TEST_F(RobustnessTest, OperationsAfterDisconnectRejected) {
  auto lib = GrdLib::Connect(&transport_, 1 << 20);
  ASSERT_TRUE(lib.ok());
  const ClientId id = lib->client_id();
  ASSERT_TRUE(lib->Disconnect().ok());
  ipc::Writer request;
  protocol::WriteHeader(request, protocol::Op::kMalloc, id);
  request.Put<std::uint64_t>(64);
  EXPECT_EQ(Send(std::move(request).Take()).code(), StatusCode::kNotFound);
}

TEST_F(RobustnessTest, MemcpyWithForgedDeviceAddressRejected) {
  // Even a hand-crafted (non-GrdLib) message cannot read outside the
  // sender's own partition.
  auto attacker = GrdLib::Connect(&transport_, 1 << 20);
  auto victim = GrdLib::Connect(&transport_, 1 << 20);
  ASSERT_TRUE(attacker.ok() && victim.ok());
  DevicePtr secret = 0;
  ASSERT_TRUE(victim->cudaMalloc(&secret, 64).ok());

  ipc::Writer request;
  protocol::WriteHeader(request, protocol::Op::kMemcpyD2H,
                        attacker->client_id());
  request.Put<std::uint64_t>(secret);  // foreign address
  request.Put<std::uint64_t>(64);
  EXPECT_EQ(Send(std::move(request).Take()).code(),
            StatusCode::kPermissionDenied);
}

TEST_F(RobustnessTest, ModuleLoadWithGarbagePtxRejected) {
  auto lib = GrdLib::Connect(&transport_, 1 << 20);
  ASSERT_TRUE(lib.ok());
  EXPECT_FALSE(lib->cuModuleLoadData("definitely not ptx }{").ok());
  // The client remains usable after the rejected load.
  DevicePtr p = 0;
  EXPECT_TRUE(lib->cudaMalloc(&p, 64).ok());
}

TEST_F(RobustnessTest, LaunchWithWrongFunctionHandle) {
  auto lib = GrdLib::Connect(&transport_, 1 << 20);
  ASSERT_TRUE(lib.ok());
  EXPECT_FALSE(
      lib->cudaLaunchKernel(999, simcuda::LaunchConfig{}, {}).ok());
}

// ---- kSetPriority (preemption engine) ------------------------------------

TEST_F(RobustnessTest, SetPriorityTruncatedPayloadRejected) {
  auto lib = GrdLib::Connect(&transport_, 1 << 20);
  ASSERT_TRUE(lib.ok());
  ipc::Writer request;
  protocol::WriteHeader(request, protocol::Op::kSetPriority,
                        lib->client_id());
  request.Put<std::uint8_t>(0);  // scope only; stream id + priority missing
  EXPECT_EQ(Send(std::move(request).Take()).code(), StatusCode::kOutOfRange);
}

TEST_F(RobustnessTest, SetPriorityUnknownClassRejected) {
  auto lib = GrdLib::Connect(&transport_, 1 << 20);
  ASSERT_TRUE(lib.ok());
  ipc::Writer request;
  protocol::WriteHeader(request, protocol::Op::kSetPriority,
                        lib->client_id());
  request.Put<std::uint8_t>(0);
  request.Put<std::uint64_t>(0);
  request.Put<std::uint8_t>(9);  // no such PriorityClass
  EXPECT_EQ(Send(std::move(request).Take()).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(RobustnessTest, SetPriorityUnknownScopeRejected) {
  auto lib = GrdLib::Connect(&transport_, 1 << 20);
  ASSERT_TRUE(lib.ok());
  ipc::Writer request;
  protocol::WriteHeader(request, protocol::Op::kSetPriority,
                        lib->client_id());
  request.Put<std::uint8_t>(7);  // scope is 0 (session) or 1 (stream)
  request.Put<std::uint64_t>(0);
  request.Put<std::uint8_t>(0);
  EXPECT_EQ(Send(std::move(request).Take()).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(RobustnessTest, SetPriorityUnknownStreamRejected) {
  auto lib = GrdLib::Connect(&transport_, 1 << 20);
  ASSERT_TRUE(lib.ok());
  EXPECT_EQ(lib->SetStreamPriority(4242, protocol::PriorityClass::kRealtime)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(RobustnessTest, SetPriorityOnDeadSessionRejected) {
  auto lib = GrdLib::Connect(&transport_, 1 << 20);
  ASSERT_TRUE(lib.ok());
  const ClientId id = lib->client_id();
  ASSERT_TRUE(lib->Disconnect().ok());
  ipc::Writer request;
  protocol::WriteHeader(request, protocol::Op::kSetPriority, id);
  request.Put<std::uint8_t>(0);
  request.Put<std::uint64_t>(0);
  request.Put<std::uint8_t>(0);
  EXPECT_EQ(Send(std::move(request).Take()).code(), StatusCode::kNotFound);
}

// ---- ring-level chaos (fleet::ChaosController frame injectors) ------------
//
// The dispatcher-level tests above hand malformed bytes straight to
// HandleRequest; these go one layer down. A live ManagerServer pumps two
// shared-memory channels while torn / truncated / garbage frames are
// injected into one of them: the ring must contain the damage (frames
// discarded + counted, an error response written back), the neighboring
// tenant must never notice, and the poisoned channel itself must keep
// serving valid requests afterwards.
class RingChaosTest : public ::testing::Test {
 protected:
  static constexpr auto kTimeout = std::chrono::seconds(2);

  RingChaosTest()
      : gpu_(simgpu::QuadroRtxA4000()),
        manager_(&gpu_, ManagerOptions{}),
        server_(&manager_, ManagerServer::Policy::kRoundRobin, 2) {
    server_.AddChannel(&honest_.channel());
    server_.AddChannel(&chaotic_.channel());
    server_.Start();
  }
  ~RingChaosTest() override { server_.Stop(); }

  // Waits until the pump has consumed the injected frame and answered.
  // Returns the decoded status of that answer.
  Status DrainChaosResponse() {
    auto response = chaotic_.channel().response().ReadWithDeadline(kTimeout);
    if (!response.ok()) return response.status();
    auto decoded = protocol::DecodeResponse(*response);
    return decoded.ok() ? OkStatus() : decoded.status();
  }

  simcuda::Gpu gpu_;
  GrdManager manager_;
  ipc::HeapChannel honest_;
  ipc::HeapChannel chaotic_;
  ManagerServer server_;
};

TEST_F(RingChaosTest, TornFrameIsContainedAndAnswered) {
  ChannelTransport honest_transport(&honest_.channel(), kTimeout);
  ChannelTransport chaotic_transport(&chaotic_.channel(), kTimeout);
  auto survivor = GrdLib::Connect(&honest_transport, 1 << 20);
  auto victim = GrdLib::Connect(&chaotic_transport, 1 << 20);
  ASSERT_TRUE(survivor.ok() && victim.ok());

  // The injector is this thread, and the victim session is idle, so the
  // request ring has exactly one writer — same discipline as the fleet's
  // reserved chaos channel.
  Rng rng(21);
  fleet::ChaosController::InjectTornFrame(chaotic_.channel().request(), rng);

  // Containment: the frame is discarded + counted and the pump answers
  // with kAborted instead of wedging or crashing.
  EXPECT_EQ(DrainChaosResponse().code(), StatusCode::kAborted);
  EXPECT_GE(chaotic_.channel().request().frames_corrupt(), 1u);

  // The neighbor never noticed; the poisoned channel still serves.
  DevicePtr p = 0;
  EXPECT_TRUE(survivor->cudaMalloc(&p, 64).ok());
  DevicePtr q = 0;
  EXPECT_TRUE(victim->cudaMalloc(&q, 64).ok());
}

TEST_F(RingChaosTest, TruncatedFrameIsContainedAndAnswered) {
  ChannelTransport chaotic_transport(&chaotic_.channel(), kTimeout);
  auto victim = GrdLib::Connect(&chaotic_transport, 1 << 20);
  ASSERT_TRUE(victim.ok());

  fleet::ChaosController::InjectTruncatedFrame(chaotic_.channel().request());
  EXPECT_EQ(DrainChaosResponse().code(), StatusCode::kAborted);
  EXPECT_GE(chaotic_.channel().request().frames_corrupt(), 1u);

  DevicePtr p = 0;
  EXPECT_TRUE(victim->cudaMalloc(&p, 64).ok());
}

TEST_F(RingChaosTest, GarbageFrameRejectedAtTheDispatcher) {
  ChannelTransport chaotic_transport(&chaotic_.channel(), kTimeout);
  auto victim = GrdLib::Connect(&chaotic_transport, 1 << 20);
  ASSERT_TRUE(victim.ok());

  // A well-formed frame full of junk: the RING accepts it (no corruption at
  // this layer), the DISPATCHER rejects it — a decodable error response, no
  // crash, no count against ring integrity.
  Rng rng(22);
  fleet::ChaosController::InjectGarbageFrame(chaotic_.channel().request(),
                                             rng);
  EXPECT_FALSE(DrainChaosResponse().ok());
  EXPECT_EQ(chaotic_.channel().request().frames_corrupt(), 0u);

  DevicePtr p = 0;
  EXPECT_TRUE(victim->cudaMalloc(&p, 64).ok());
}

TEST_F(RingChaosTest, RepeatedChaosBarrageNeverPoisonsTheServer) {
  ChannelTransport honest_transport(&honest_.channel(), kTimeout);
  auto survivor = GrdLib::Connect(&honest_transport, 1 << 20);
  ASSERT_TRUE(survivor.ok());

  Rng rng(23);
  int answered = 0;
  for (int round = 0; round < 12; ++round) {
    switch (round % 3) {
      case 0:
        fleet::ChaosController::InjectTornFrame(chaotic_.channel().request(),
                                                rng);
        break;
      case 1:
        fleet::ChaosController::InjectTruncatedFrame(
            chaotic_.channel().request());
        break;
      case 2:
        fleet::ChaosController::InjectGarbageFrame(
            chaotic_.channel().request(), rng);
        break;
    }
    // Serve each fault to completion before the next: back-to-back raw
    // injections into one ring may coalesce into a single repair, which is
    // fine for the fleet but would make this count nondeterministic.
    if (!DrainChaosResponse().ok()) ++answered;
    // The honest tenant stays fully functional between every fault.
    DevicePtr p = 0;
    ASSERT_TRUE(survivor->cudaMalloc(&p, 64).ok()) << "round " << round;
    ASSERT_TRUE(survivor->cudaFree(p).ok()) << "round " << round;
  }
  EXPECT_EQ(answered, 12);
  EXPECT_GE(chaotic_.channel().request().frames_corrupt(), 8u);
}

TEST_F(RobustnessTest, RandomBytesNeverCrashTheManager) {
  Rng rng(0xC0FFEE);
  for (int i = 0; i < 5000; ++i) {
    ipc::Bytes junk(rng.NextBelow(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.Next());
    const auto response = manager_.HandleRequest(junk);
    // Every response must decode as ok-or-error, never be malformed.
    ipc::Reader reader(response);
    auto flag = reader.Get<std::uint8_t>();
    ASSERT_TRUE(flag.ok());
  }
}

TEST_F(RobustnessTest, RandomBytesWithValidHeaderNeverCrash) {
  // Worse: syntactically valid headers with garbage payloads, using a live
  // client id so deep handlers are reached.
  auto lib = GrdLib::Connect(&transport_, 1 << 20);
  ASSERT_TRUE(lib.ok());
  Rng rng(0xBADF00D);
  for (int i = 0; i < 5000; ++i) {
    ipc::Writer request;
    const auto op = static_cast<protocol::Op>(
        1 + rng.NextBelow(static_cast<std::uint32_t>(
                protocol::Op::kSetPriority)));
    protocol::WriteHeader(request, op, lib->client_id());
    ipc::Bytes raw = std::move(request).Take();
    const std::size_t junk = rng.NextBelow(48);
    for (std::size_t b = 0; b < junk; ++b)
      raw.push_back(static_cast<std::uint8_t>(rng.Next()));
    const auto response = manager_.HandleRequest(raw);
    ipc::Reader reader(response);
    ASSERT_TRUE(reader.Get<std::uint8_t>().ok());
    if (!manager_.active_clients()) break;  // disconnect op may have landed
  }
}

}  // namespace
}  // namespace grd::guardian
