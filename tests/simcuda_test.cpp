#include <gtest/gtest.h>

#include "ptx/generator.hpp"
#include "ptx/printer.hpp"
#include "simcuda/export_tables.hpp"
#include "simcuda/native.hpp"
#include "simcuda/tracing.hpp"
#include "simgpu/device_spec.hpp"

namespace grd::simcuda {
namespace {

class NativeCudaTest : public ::testing::Test {
 protected:
  NativeCudaTest() : gpu_(simgpu::QuadroRtxA4000()), api_(&gpu_) {}

  Result<FunctionId> LoadKernel(NativeCuda& api, const std::string& name) {
    ptx::Module m;
    m.kernels.push_back([&] {
      for (auto& k : ptx::MakeSampleModule().kernels) {
        if (k.name == name) return k;
      }
      return ptx::Kernel{};
    }());
    GRD_ASSIGN_OR_RETURN(ModuleId module,
                         api.cuModuleLoadData(ptx::Print(m)));
    return api.cuModuleGetFunction(module, name);
  }

  Gpu gpu_;
  NativeCuda api_;
};

TEST_F(NativeCudaTest, MallocFreeRoundTrip) {
  DevicePtr ptr = 0;
  ASSERT_TRUE(api_.cudaMalloc(&ptr, 4096).ok());
  EXPECT_EQ(gpu_.allocator().allocated_bytes(), 4096u);
  ASSERT_TRUE(api_.cudaFree(ptr).ok());
  EXPECT_EQ(gpu_.allocator().allocated_bytes(), 0u);
}

TEST_F(NativeCudaTest, FreeForeignPointerRejected) {
  NativeCuda other(&gpu_);
  DevicePtr ptr = 0;
  ASSERT_TRUE(other.cudaMalloc(&ptr, 4096).ok());
  EXPECT_EQ(api_.cudaFree(ptr).code(), StatusCode::kPermissionDenied);
}

TEST_F(NativeCudaTest, MemcpyRoundTrip) {
  DevicePtr ptr = 0;
  ASSERT_TRUE(api_.cudaMalloc(&ptr, 64).ok());
  const std::uint32_t data[4] = {1, 2, 3, 4};
  ASSERT_TRUE(api_.cudaMemcpyH2D(ptr, data, sizeof(data)).ok());
  std::uint32_t back[4] = {};
  ASSERT_TRUE(
      api_.cudaMemcpy(back, ptr, sizeof(back), MemcpyKind::kDeviceToHost)
          .ok());
  EXPECT_EQ(back[3], 4u);
}

TEST_F(NativeCudaTest, MemcpyToForeignBufferRejected) {
  // Host-initiated transfers are checked against context ownership: this is
  // the H2D attack vector Guardian closes with the partition table (§4.2.2);
  // native CUDA closes it with per-context allocations.
  NativeCuda other(&gpu_);
  DevicePtr foreign = 0;
  ASSERT_TRUE(other.cudaMalloc(&foreign, 64).ok());
  const std::uint32_t v = 7;
  EXPECT_EQ(api_.cudaMemcpyH2D(foreign, &v, sizeof(v)).code(),
            StatusCode::kPermissionDenied);
}

TEST_F(NativeCudaTest, MemsetAndD2D) {
  DevicePtr a = 0, b = 0;
  ASSERT_TRUE(api_.cudaMalloc(&a, 64).ok());
  ASSERT_TRUE(api_.cudaMalloc(&b, 64).ok());
  ASSERT_TRUE(api_.cudaMemset(a, 0xCD, 64).ok());
  ASSERT_TRUE(api_.cudaMemcpyD2D(b, a, 64).ok());
  std::uint8_t back = 0;
  ASSERT_TRUE(api_.cudaMemcpy(&back, b + 63, 1, MemcpyKind::kDeviceToHost)
                  .ok());
  EXPECT_EQ(back, 0xCD);
}

TEST_F(NativeCudaTest, LaunchKernelExecutes) {
  auto fn = LoadKernel(api_, "kernel");
  ASSERT_TRUE(fn.ok()) << fn.status();
  DevicePtr buf = 0;
  ASSERT_TRUE(api_.cudaMalloc(&buf, 256).ok());
  LaunchConfig config;
  config.block = {4, 1, 1};
  ASSERT_TRUE(api_.cudaLaunchKernel(*fn, config,
                                    {ptxexec::KernelArg::U64(buf),
                                     ptxexec::KernelArg::U32(2)})
                  .ok());
  std::uint32_t v = 0;
  ASSERT_TRUE(api_.cudaMemcpy(&v, buf + 8, 4, MemcpyKind::kDeviceToHost).ok());
  EXPECT_EQ(v, 3u);
}

TEST_F(NativeCudaTest, KernelTouchingForeignMemoryFaults) {
  // Cross-context isolation: the OOB writer reaching into another context's
  // allocation faults (per-context page tables, §2.1) and only poisons the
  // attacker's context.
  NativeCuda victim_api(&gpu_);
  DevicePtr victim = 0;
  ASSERT_TRUE(victim_api.cudaMalloc(&victim, 4096).ok());

  auto fn = LoadKernel(api_, "oob_writer");
  ASSERT_TRUE(fn.ok());
  DevicePtr mine = 0;
  ASSERT_TRUE(api_.cudaMalloc(&mine, 4096).ok());
  LaunchConfig config;
  const Status s = api_.cudaLaunchKernel(
      *fn, config,
      {ptxexec::KernelArg::U64(mine),
       ptxexec::KernelArg::U64(victim - mine), ptxexec::KernelArg::U32(666)});
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);

  // Sticky error on the faulting context only.
  DevicePtr more = 0;
  EXPECT_EQ(api_.cudaMalloc(&more, 64).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(victim_api.cudaMalloc(&more, 64).ok());
}

TEST_F(NativeCudaTest, StreamsAndEvents) {
  StreamId stream = 0;
  ASSERT_TRUE(api_.cudaStreamCreate(&stream).ok());
  EXPECT_NE(stream, kDefaultStream);
  bool capturing = true;
  ASSERT_TRUE(api_.cudaStreamIsCapturing(stream, &capturing).ok());
  EXPECT_FALSE(capturing);
  EventId event = 0;
  ASSERT_TRUE(api_.cudaEventCreateWithFlags(&event, 0).ok());
  ASSERT_TRUE(api_.cudaEventRecord(event, stream).ok());
  ASSERT_TRUE(api_.cudaStreamSynchronize(stream).ok());
  ASSERT_TRUE(api_.cudaEventDestroy(event).ok());
  ASSERT_TRUE(api_.cudaStreamDestroy(stream).ok());
  EXPECT_FALSE(api_.cudaStreamDestroy(kDefaultStream).ok());
}

TEST_F(NativeCudaTest, ModuleLoadRejectsBadPtx) {
  EXPECT_FALSE(api_.cuModuleLoadData("this is not ptx").ok());
}

TEST_F(NativeCudaTest, GetFunctionRejectsUnknownKernel) {
  ptx::Module m;
  m.kernels.push_back(ptx::MakeVecAddKernel());
  auto module = api_.cuModuleLoadData(ptx::Print(m));
  ASSERT_TRUE(module.ok());
  EXPECT_EQ(api_.cuModuleGetFunction(*module, "nope").status().code(),
            StatusCode::kNotFound);
}

TEST_F(NativeCudaTest, ExportTablesPresent) {
  // Paper §4.1: ~7 tables, >90 hidden functions.
  EXPECT_EQ(kExportTableCount, 7);
  EXPECT_GT(TotalExportedFunctions(), 90u);
  auto table = api_.cudaGetExportTable(ExportTableId::kPrimaryContext);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->id, ExportTableId::kPrimaryContext);
  EXPECT_FALSE((*table)->entries.empty());
}

TEST_F(NativeCudaTest, ContextMemoryReleasedOnDestruction) {
  {
    NativeCuda ephemeral(&gpu_);
    DevicePtr p = 0;
    ASSERT_TRUE(ephemeral.cudaMalloc(&p, 1024).ok());
    EXPECT_TRUE(gpu_.ownership().OwnerOf(p, 1024).ok());
  }
  // Ownership entries for the destroyed context are gone.
  EXPECT_EQ(gpu_.ownership().BytesOwnedBy(2), 0u);
}

TEST(DeviceAllocator, FirstFitAndCoalescing) {
  DeviceAllocator alloc(1 << 20);
  auto a = alloc.Allocate(1000);
  auto b = alloc.Allocate(1000);
  auto c = alloc.Allocate(1000);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(alloc.Free(*b).ok());
  // Freed middle block is reused.
  auto d = alloc.Allocate(500);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, *b);
  ASSERT_TRUE(alloc.Free(*a).ok());
  ASSERT_TRUE(alloc.Free(*c).ok());
  ASSERT_TRUE(alloc.Free(*d).ok());
  // Everything coalesced back: a full-size allocation fits again.
  auto full = alloc.Allocate((1 << 20) - 256, 256);
  EXPECT_TRUE(full.ok()) << full.status();
}

TEST(DeviceAllocator, AlignmentRespected) {
  DeviceAllocator alloc(1 << 20);
  ASSERT_TRUE(alloc.Allocate(10).ok());
  auto aligned = alloc.Allocate(100, 4096);
  ASSERT_TRUE(aligned.ok());
  EXPECT_EQ(*aligned % 4096, 0u);
}

TEST(DeviceAllocator, ExhaustionReported) {
  DeviceAllocator alloc(1024);
  EXPECT_TRUE(alloc.Allocate(512).ok());
  EXPECT_EQ(alloc.Allocate(4096).status().code(), StatusCode::kOutOfMemory);
  EXPECT_FALSE(alloc.Allocate(0).ok());
  EXPECT_FALSE(alloc.Free(999).ok());
}

TEST(Tracing, CountsForwardedCalls) {
  Gpu gpu(simgpu::QuadroRtxA4000());
  NativeCuda native(&gpu);
  TracingCudaApi traced(&native);
  DevicePtr p = 0;
  ASSERT_TRUE(traced.cudaMalloc(&p, 64).ok());
  std::uint32_t v = 5;
  ASSERT_TRUE(traced.cudaMemcpyH2D(p, &v, 4).ok());
  ASSERT_TRUE(traced.cudaFree(p).ok());
  EXPECT_EQ(traced.CountOf("cudaMalloc"), 1u);
  EXPECT_EQ(traced.CountOf("cudaMemcpy"), 1u);
  EXPECT_EQ(traced.CountOf("cudaFree"), 1u);
  EXPECT_EQ(traced.TotalCalls(), 3u);
  traced.ResetCounts();
  EXPECT_EQ(traced.TotalCalls(), 0u);
}

}  // namespace
}  // namespace grd::simcuda
