#include <gtest/gtest.h>

#include <vector>

#include "ptx/generator.hpp"
#include "ptx/parser.hpp"
#include "ptx/printer.hpp"
#include "ptxexec/interpreter.hpp"

namespace grd::ptxexec {
namespace {

using ptx::MakeSampleModule;

// Policy restricting a client to one [base, base+size) range — a minimal
// stand-in for per-context protection.
class RangePolicy final : public simgpu::AccessPolicy {
 public:
  RangePolicy(std::uint64_t base, std::uint64_t size)
      : base_(base), size_(size) {}
  Status CheckAccess(std::uint64_t, std::uint64_t addr, std::uint64_t size,
                     bool) override {
    if (addr < base_ || addr + size > base_ + size_)
      return PermissionDenied("access outside allowed range");
    return OkStatus();
  }

 private:
  std::uint64_t base_, size_;
};

class PtxExecTest : public ::testing::Test {
 protected:
  PtxExecTest() : memory_(64ull << 20), interp_(&memory_, &allow_all_, 1) {
    module_ = MakeSampleModule();
  }

  simgpu::GlobalMemory memory_;
  simgpu::AllowAllPolicy allow_all_;
  Interpreter interp_;
  ptx::Module module_;
};

TEST_F(PtxExecTest, StoreTidWritesThreadIndex) {
  // Listing 1 kernel: A[j] = tid with j from param1. One thread, j = 5.
  LaunchParams params;
  params.block = {8, 1, 1};
  params.args = {KernelArg::U64(0x1000), KernelArg::U32(5)};
  auto stats = interp_.Execute(module_, "kernel", params);
  ASSERT_TRUE(stats.ok()) << stats.status();
  // All 8 threads write A[5]; the last one (tid 7) wins.
  auto v = memory_.Load<std::uint32_t>(0x1000 + 5 * 4);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 7u);
  EXPECT_EQ(stats->global_stores, 8u);
}

TEST_F(PtxExecTest, VecAddComputes) {
  const std::uint64_t a = 0x10000, b = 0x20000, c = 0x30000;
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(memory_.Store<float>(a + i * 4, static_cast<float>(i)).ok());
    ASSERT_TRUE(
        memory_.Store<float>(b + i * 4, static_cast<float>(2 * i)).ok());
  }
  LaunchParams params;
  params.grid = {1, 1, 1};
  params.block = {128, 1, 1};  // 128 > n: guard must mask the tail
  params.args = {KernelArg::U64(a), KernelArg::U64(b), KernelArg::U64(c),
                 KernelArg::U32(n)};
  auto stats = interp_.Execute(module_, "vecadd", params);
  ASSERT_TRUE(stats.ok()) << stats.status();
  for (int i = 0; i < n; ++i) {
    auto v = memory_.Load<float>(c + i * 4);
    ASSERT_TRUE(v.ok());
    EXPECT_FLOAT_EQ(*v, static_cast<float>(3 * i)) << "i=" << i;
  }
  // Guarded tail: exactly n stores.
  EXPECT_EQ(stats->global_stores, static_cast<std::uint64_t>(n));
}

TEST_F(PtxExecTest, VecAddMultiBlock) {
  const std::uint64_t a = 0x10000, b = 0x20000, c = 0x30000;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(memory_.Store<float>(a + i * 4, 1.5f).ok());
    ASSERT_TRUE(memory_.Store<float>(b + i * 4, 2.5f).ok());
  }
  LaunchParams params;
  params.grid = {4, 1, 1};
  params.block = {128, 1, 1};
  params.args = {KernelArg::U64(a), KernelArg::U64(b), KernelArg::U64(c),
                 KernelArg::U32(n)};
  ASSERT_TRUE(interp_.Execute(module_, "vecadd", params).ok());
  auto v = memory_.Load<float>(c + 499 * 4);
  ASSERT_TRUE(v.ok());
  EXPECT_FLOAT_EQ(*v, 4.0f);
}

TEST_F(PtxExecTest, SaxpyUsesFma) {
  const std::uint64_t x = 0x1000, y = 0x2000;
  const int n = 32;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(memory_.Store<float>(x + i * 4, 2.0f).ok());
    ASSERT_TRUE(memory_.Store<float>(y + i * 4, 1.0f).ok());
  }
  LaunchParams params;
  params.block = {32, 1, 1};
  params.args = {KernelArg::U64(x), KernelArg::U64(y), KernelArg::F32(3.0f),
                 KernelArg::U32(n)};
  ASSERT_TRUE(interp_.Execute(module_, "saxpy", params).ok());
  auto v = memory_.Load<float>(y + 10 * 4);
  ASSERT_TRUE(v.ok());
  EXPECT_FLOAT_EQ(*v, 7.0f);  // 3*2 + 1
}

TEST_F(PtxExecTest, OffsetCopyUsesOffsets) {
  const std::uint64_t in = 0x4000, out = 0x8000;
  for (int i = 0; i < 64; ++i)
    ASSERT_TRUE(memory_.Store<std::uint32_t>(in + i * 4, 100 + i).ok());
  LaunchParams params;
  params.block = {16, 1, 1};  // 16 threads x 4 elems
  params.args = {KernelArg::U64(in), KernelArg::U64(out)};
  ASSERT_TRUE(interp_.Execute(module_, "offset_copy", params).ok());
  for (int i = 0; i < 64; ++i) {
    auto v = memory_.Load<std::uint32_t>(out + i * 4);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, 100u + i);
  }
}

TEST_F(PtxExecTest, DotAccumulates) {
  const std::uint64_t a = 0x1000, b = 0x2000, out = 0x3000;
  // 4 threads x unroll 4.
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(memory_.Store<float>(a + i * 4, 2.0f).ok());
    ASSERT_TRUE(memory_.Store<float>(b + i * 4, 3.0f).ok());
  }
  LaunchParams params;
  params.block = {4, 1, 1};
  params.args = {KernelArg::U64(a), KernelArg::U64(b), KernelArg::U64(out)};
  ASSERT_TRUE(interp_.Execute(module_, "dot", params).ok());
  for (int t = 0; t < 4; ++t) {
    auto v = memory_.Load<float>(out + t * 4);
    ASSERT_TRUE(v.ok());
    EXPECT_FLOAT_EQ(*v, 24.0f);  // 4 * (2*3)
  }
}

TEST_F(PtxExecTest, ReduceSumsBlockThroughSharedMemory) {
  const std::uint64_t in = 0x1000, out = 0x2000;
  const int nthreads = 64;
  for (int i = 0; i < nthreads; ++i)
    ASSERT_TRUE(memory_.Store<float>(in + i * 4, 1.0f).ok());
  LaunchParams params;
  params.block = {static_cast<std::uint32_t>(nthreads), 1, 1};
  params.args = {KernelArg::U64(in), KernelArg::U64(out)};
  auto stats = interp_.Execute(module_, "reduce", params);
  ASSERT_TRUE(stats.ok()) << stats.status();
  auto v = memory_.Load<float>(out);
  ASSERT_TRUE(v.ok());
  EXPECT_FLOAT_EQ(*v, static_cast<float>(nthreads));
  EXPECT_GT(stats->shared_accesses, 0u);
}

TEST_F(PtxExecTest, IndirectBranchSelectsArm) {
  LaunchParams params;
  params.block = {1, 1, 1};
  for (std::uint32_t sel : {0u, 1u, 2u}) {
    params.args = {KernelArg::U64(0x100), KernelArg::U32(sel)};
    ASSERT_TRUE(interp_.Execute(module_, "brx_kernel", params).ok());
    auto v = memory_.Load<std::uint32_t>(0x100);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, 10u * (sel + 1));
  }
}

TEST_F(PtxExecTest, IndirectBranchOutOfTableFaults) {
  LaunchParams params;
  params.block = {1, 1, 1};
  params.args = {KernelArg::U64(0x100), KernelArg::U32(7)};  // table size 3
  auto stats = interp_.Execute(module_, "brx_kernel", params);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(interp_.last_fault().kernel, "brx_kernel");
}

TEST_F(PtxExecTest, OobWriterCorruptsNeighbourWithoutProtection) {
  // The Figure 1 scenario: one shared context, no checks -> a kernel can
  // write into another tenant's buffer.
  const std::uint64_t mine = 0x10000, victim = 0x20000;
  ASSERT_TRUE(memory_.Store<std::uint32_t>(victim, 777).ok());
  LaunchParams params;
  params.block = {1, 1, 1};
  params.args = {KernelArg::U64(mine), KernelArg::U64(victim - mine),
                 KernelArg::U32(666)};
  ASSERT_TRUE(interp_.Execute(module_, "oob_writer", params).ok());
  auto v = memory_.Load<std::uint32_t>(victim);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 666u);  // corrupted
}

TEST_F(PtxExecTest, RangePolicyBlocksOobWriter) {
  // Per-context protection (native CUDA / MPS): the same OOB write faults.
  const std::uint64_t mine = 0x10000, victim = 0x20000;
  RangePolicy policy(mine, 0x1000);
  Interpreter guarded(&memory_, &policy, 1);
  LaunchParams params;
  params.block = {1, 1, 1};
  params.args = {KernelArg::U64(mine), KernelArg::U64(victim - mine),
                 KernelArg::U32(666)};
  auto stats = guarded.Execute(module_, "oob_writer", params);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(guarded.last_fault().address, victim);
}

TEST_F(PtxExecTest, CopyKernelFunctional) {
  const std::uint64_t in = 0x1000, out = 0x2000;
  const int n = 48;
  for (int i = 0; i < n; ++i)
    ASSERT_TRUE(memory_.Store<std::uint32_t>(in + i * 4, 1000 + i).ok());
  LaunchParams params;
  params.block = {64, 1, 1};
  params.args = {KernelArg::U64(in), KernelArg::U64(out), KernelArg::U32(n)};
  ASSERT_TRUE(interp_.Execute(module_, "copyk", params).ok());
  for (int i = 0; i < n; ++i) {
    auto v = memory_.Load<std::uint32_t>(out + i * 4);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, 1000u + i);
  }
}

TEST_F(PtxExecTest, UnknownKernelIsNotFound) {
  LaunchParams params;
  auto stats = interp_.Execute(module_, "nope", params);
  EXPECT_EQ(stats.status().code(), StatusCode::kNotFound);
}

TEST_F(PtxExecTest, MissingArgumentFaults) {
  LaunchParams params;
  params.block = {1, 1, 1};
  params.args = {KernelArg::U64(0x1000)};  // kernel expects 2 args
  auto stats = interp_.Execute(module_, "kernel", params);
  EXPECT_FALSE(stats.ok());
}

TEST_F(PtxExecTest, RunawayKernelIsTerminated) {
  // An infinite loop must hit the instruction budget, not hang (paper cites
  // TReM-style revocation for endless kernels).
  const auto module = ptx::Parse(R"(
.version 7.7
.target sm_86
.address_size 64
.visible .entry spin()
{
    .reg .b32 %r<2>;
LOOP:
    add.s32 %r1, %r1, 1;
    bra LOOP;
}
)");
  ASSERT_TRUE(module.ok()) << module.status();
  Interpreter interp(&memory_, &allow_all_, 1);
  interp.set_max_instructions_per_thread(10'000);
  LaunchParams params;
  params.block = {1, 1, 1};
  auto stats = interp.Execute(*module, "spin", params);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(PtxExecTest, ExecutesFromPrintedText) {
  // Print -> Parse -> Execute must agree with direct execution (the
  // grdManager runs kernels from re-emitted PTX text).
  const std::string text = ptx::Print(module_);
  auto reparsed = ptx::Parse(text);
  ASSERT_TRUE(reparsed.ok());
  LaunchParams params;
  params.block = {8, 1, 1};
  params.args = {KernelArg::U64(0x1000), KernelArg::U32(3)};
  ASSERT_TRUE(interp_.Execute(*reparsed, "kernel", params).ok());
  auto v = memory_.Load<std::uint32_t>(0x1000 + 3 * 4);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 7u);
}

TEST_F(PtxExecTest, SignedNegativeOffsetsWork) {
  const auto module = ptx::Parse(R"(
.version 7.7
.target sm_86
.address_size 64
.visible .entry negoff(.param .u64 p0)
{
    .reg .b32 %r<3>;
    .reg .b64 %rd<3>;
    ld.param.u64 %rd1, [p0];
    cvta.to.global.u64 %rd2, %rd1;
    mov.u32 %r1, 42;
    st.global.u32 [%rd2+-4], %r1;
    ret;
}
)");
  ASSERT_TRUE(module.ok()) << module.status();
  LaunchParams params;
  params.block = {1, 1, 1};
  params.args = {KernelArg::U64(0x1004)};
  ASSERT_TRUE(interp_.Execute(*module, "negoff", params).ok());
  auto v = memory_.Load<std::uint32_t>(0x1000);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42u);
}

TEST_F(PtxExecTest, VectorLoadStore) {
  const auto module = ptx::Parse(R"(
.version 7.7
.target sm_86
.address_size 64
.visible .entry vmove(.param .u64 p0, .param .u64 p1)
{
    .reg .b32 %r<5>;
    .reg .b64 %rd<5>;
    ld.param.u64 %rd1, [p0];
    ld.param.u64 %rd2, [p1];
    cvta.to.global.u64 %rd3, %rd1;
    cvta.to.global.u64 %rd4, %rd2;
    ld.global.v4.u32 {%r1, %r2, %r3, %r4}, [%rd3];
    st.global.v4.u32 [%rd4], {%r1, %r2, %r3, %r4};
    ret;
}
)");
  ASSERT_TRUE(module.ok()) << module.status();
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(memory_.Store<std::uint32_t>(0x1000 + i * 4, 7 + i).ok());
  LaunchParams params;
  params.block = {1, 1, 1};
  params.args = {KernelArg::U64(0x1000), KernelArg::U64(0x2000)};
  ASSERT_TRUE(interp_.Execute(*module, "vmove", params).ok());
  for (int i = 0; i < 4; ++i) {
    auto v = memory_.Load<std::uint32_t>(0x2000 + i * 4);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, 7u + i);
  }
}

TEST_F(PtxExecTest, UnimplementedOpcodeReportsCleanly) {
  const auto module = ptx::Parse(R"(
.version 7.7
.target sm_86
.address_size 64
.visible .entry weird()
{
    .reg .b32 %r<2>;
    vote.ballot.b32 %r1, %r1;
    ret;
}
)");
  ASSERT_TRUE(module.ok()) << module.status();
  LaunchParams params;
  params.block = {1, 1, 1};
  auto stats = interp_.Execute(*module, "weird", params);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace grd::ptxexec
