#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "ptx/generator.hpp"
#include "ptx/parser.hpp"
#include "ptx/printer.hpp"
#include "ptxexec/interpreter.hpp"
#include "ptxpatcher/patcher.hpp"
#include "ptxpatcher/regmodel.hpp"

namespace grd::ptxpatcher {
namespace {

using ptx::ComputeStats;
using ptx::Kernel;
using ptx::KernelStats;
using ptxexec::Interpreter;
using ptxexec::KernelArg;
using ptxexec::LaunchParams;

PatchedKernel MustPatch(const Kernel& kernel,
                        BoundsCheckMode mode = BoundsCheckMode::kFencingBitwise) {
  PatchOptions options;
  options.mode = mode;
  auto result = PatchKernel(kernel, options);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? std::move(*result) : PatchedKernel{};
}

TEST(Patcher, AppendsTwoParams) {
  const auto patched = MustPatch(ptx::MakeStoreTidKernel());
  ASSERT_EQ(patched.kernel.params.size(), 4u);
  EXPECT_EQ(patched.kernel.params[2].name, "kernel_grd_base");
  EXPECT_EQ(patched.kernel.params[3].name, "kernel_grd_bound");
  EXPECT_EQ(patched.kernel.params[2].type, ptx::Type::kU64);
  EXPECT_EQ(patched.stats.extra_params, 2);
}

TEST(Patcher, CountsMatchKernelStats) {
  for (const Kernel& k : ptx::MakeSampleModule().kernels) {
    const KernelStats stats = ComputeStats(k);
    const auto patched = MustPatch(k);
    EXPECT_EQ(patched.stats.patched_loads, stats.loads) << k.name;
    EXPECT_EQ(patched.stats.patched_stores, stats.stores) << k.name;
  }
}

TEST(Patcher, BitwiseInsertsTwoInstructionsPerDirectAccess) {
  // Listing 1: exactly two bitwise instructions per load/store (plus the two
  // ld.param at entry).
  const auto patched = MustPatch(ptx::MakeStoreTidKernel());
  // 1 store, direct addressing: 2 (ld.param) + 2 (and/or) = 4.
  EXPECT_EQ(patched.stats.inserted_instructions, 4u);
  EXPECT_EQ(patched.stats.patched_offset_accesses, 0u);
}

TEST(Patcher, OffsetModeAddsTempMaterialization) {
  const auto patched = MustPatch(ptx::MakeOffsetCopyKernel());
  // 8 accesses; 6 have non-zero immediate offsets (i=1..3 for ld and st).
  EXPECT_EQ(patched.stats.patched_offset_accesses, 6u);
  // 2 ld.param + per zero-offset access 2, per offset access 3.
  EXPECT_EQ(patched.stats.inserted_instructions, 2u + 2 * 2u + 6 * 3u);
}

TEST(Patcher, PatchedPtxContainsAndOrSequence) {
  const auto patched = MustPatch(ptx::MakeStoreTidKernel());
  const std::string text = ptx::Print(patched.kernel);
  EXPECT_NE(text.find("and.b64 %grdtmp1, %rd4, %grdreg2;"), std::string::npos)
      << text;
  EXPECT_NE(text.find("or.b64 %grdtmp1, %grdtmp1, %grdreg1;"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ld.param.u64 %grdreg1, [kernel_grd_base];"),
            std::string::npos)
      << text;
}

TEST(Patcher, PatchedKernelReparses) {
  for (const Kernel& k : ptx::MakeSampleModule().kernels) {
    for (const auto mode :
         {BoundsCheckMode::kFencingBitwise, BoundsCheckMode::kFencingModulo,
          BoundsCheckMode::kChecking}) {
      const auto patched = MustPatch(k, mode);
      ptx::Module m;
      m.kernels.push_back(patched.kernel);
      auto reparsed = ptx::Parse(ptx::Print(m));
      ASSERT_TRUE(reparsed.ok())
          << k.name << " " << BoundsCheckModeName(mode) << ": "
          << reparsed.status();
      EXPECT_EQ(reparsed->kernels[0], patched.kernel);
    }
  }
}

TEST(Patcher, SharedAccessesUntouched) {
  const auto patched = MustPatch(ptx::MakeReduceKernel());
  // Only 1 global load + 1 global store are protected; shared ld/st keep
  // their original operands.
  EXPECT_EQ(patched.stats.patched_loads, 1u);
  EXPECT_EQ(patched.stats.patched_stores, 1u);
  const std::string text = ptx::Print(patched.kernel);
  EXPECT_NE(text.find("st.shared.f32 [%rd8], %f1;"), std::string::npos);
}

TEST(Patcher, FuncInstrumentedLikeEntry) {
  const auto patched = MustPatch(ptx::MakeFuncStoreKernel());
  EXPECT_FALSE(patched.kernel.is_entry);
  EXPECT_EQ(patched.stats.patched_stores, 1u);
  EXPECT_EQ(patched.stats.extra_params, 2);
}

TEST(Patcher, BrxIdxClamped) {
  const auto patched = MustPatch(ptx::MakeIndirectBranchKernel());
  EXPECT_EQ(patched.stats.patched_indirect_branches, 1u);
  const std::string text = ptx::Print(patched.kernel);
  EXPECT_NE(text.find("min.u32 %grdidx1, %r1, 2;"), std::string::npos)
      << text;
  EXPECT_NE(text.find("brx.idx %grdidx1, ts;"), std::string::npos) << text;
}

TEST(Patcher, RejectsReservedParamCollision) {
  Kernel k = ptx::MakeStoreTidKernel();
  ptx::Param fake;
  fake.type = ptx::Type::kU64;
  fake.name = GrdParam0Name(k.name);
  k.params.push_back(fake);
  PatchOptions options;
  EXPECT_EQ(PatchKernel(k, options).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(Patcher, ModuleAggregation) {
  PatchStats aggregate;
  PatchOptions options;
  auto patched = PatchModule(ptx::MakeSampleModule(), options, &aggregate);
  ASSERT_TRUE(patched.ok()) << patched.status();
  std::size_t loads = 0, stores = 0;
  for (const Kernel& k : ptx::MakeSampleModule().kernels) {
    const KernelStats stats = ComputeStats(k);
    loads += stats.loads;
    stores += stats.stores;
  }
  EXPECT_EQ(aggregate.patched_loads, loads);
  EXPECT_EQ(aggregate.patched_stores, stores);
}

TEST(Patcher, GrdArgsPerMode) {
  const std::uint64_t base = 0x7fa2d0000000ull;
  const std::uint64_t size = 16ull << 20;
  const auto bitwise =
      ComputeGrdArgs(BoundsCheckMode::kFencingBitwise, base, size);
  EXPECT_EQ(bitwise.arg0, base);
  EXPECT_EQ(bitwise.arg1, 0x000000FFFFFFull);  // Figure 4 mask
  const auto modulo =
      ComputeGrdArgs(BoundsCheckMode::kFencingModulo, base, size);
  EXPECT_EQ(modulo.arg1, size);
  const auto checking = ComputeGrdArgs(BoundsCheckMode::kChecking, base, size);
  EXPECT_EQ(checking.arg1, base + size);
}

// ---- Functional properties: run the patched PTX through the interpreter --

class PatchedExecution : public ::testing::Test {
 protected:
  PatchedExecution() : memory_(64ull << 20), interp_(&memory_, &allow_, 1) {}

  // Launches `kernel` patched with `mode`, over partition [base, base+size).
  Status RunPatched(const Kernel& kernel, BoundsCheckMode mode,
                    std::uint64_t base, std::uint64_t size,
                    std::vector<KernelArg> args, ptxexec::Dim3 block = {1, 1, 1}) {
    PatchOptions options;
    options.mode = mode;
    auto patched = PatchKernel(kernel, options);
    if (!patched.ok()) return patched.status();
    ptx::Module m;
    m.kernels.push_back(patched->kernel);
    const GrdArgs grd = ComputeGrdArgs(mode, base, size);
    args.push_back(KernelArg::U64(grd.arg0));
    args.push_back(KernelArg::U64(grd.arg1));
    LaunchParams params;
    params.block = block;
    params.args = std::move(args);
    auto stats = interp_.Execute(m, kernel.name, params);
    return stats.ok() ? OkStatus() : stats.status();
  }

  simgpu::GlobalMemory memory_;
  simgpu::AllowAllPolicy allow_;
  Interpreter interp_;
};

TEST_F(PatchedExecution, InBoundsStoreUnchanged) {
  // A[5] = tid inside the partition: patched kernel behaves identically.
  const std::uint64_t base = 1ull << 20, size = 1ull << 20;
  ASSERT_TRUE(RunPatched(ptx::MakeStoreTidKernel(),
                         BoundsCheckMode::kFencingBitwise, base, size,
                         {KernelArg::U64(base), KernelArg::U32(5)},
                         {4, 1, 1})
                  .ok());
  auto v = memory_.Load<std::uint32_t>(base + 20);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 3u);
}

TEST_F(PatchedExecution, OobWriteWrapsIntoOwnPartition) {
  // Figure 4: the attack store lands inside the attacker's own partition;
  // the victim's data survives.
  const std::uint64_t attacker = 2ull << 20;  // [2 MiB, 3 MiB)
  const std::uint64_t size = 1ull << 20;
  const std::uint64_t victim = 8ull << 20;
  ASSERT_TRUE(memory_.Store<std::uint32_t>(victim, 777).ok());

  ASSERT_TRUE(RunPatched(ptx::MakeOobWriterKernel(),
                         BoundsCheckMode::kFencingBitwise, attacker, size,
                         {KernelArg::U64(attacker),
                          KernelArg::U64(victim - attacker),
                          KernelArg::U32(666)})
                  .ok());

  auto untouched = memory_.Load<std::uint32_t>(victim);
  ASSERT_TRUE(untouched.ok());
  EXPECT_EQ(*untouched, 777u);  // victim intact
  // The wrapped store landed at (victim & mask) | attacker_base.
  const std::uint64_t wrapped =
      FenceAddress(victim, attacker, PartitionMask(size));
  ASSERT_GE(wrapped, attacker);
  ASSERT_LT(wrapped, attacker + size);
  auto wrapped_value = memory_.Load<std::uint32_t>(wrapped);
  ASSERT_TRUE(wrapped_value.ok());
  EXPECT_EQ(*wrapped_value, 666u);
}

TEST_F(PatchedExecution, ModuloFencingAlsoWraps) {
  const std::uint64_t attacker = 2ull << 20;
  const std::uint64_t size = 1ull << 20;
  const std::uint64_t victim = 8ull << 20;
  ASSERT_TRUE(memory_.Store<std::uint32_t>(victim, 777).ok());
  ASSERT_TRUE(RunPatched(ptx::MakeOobWriterKernel(),
                         BoundsCheckMode::kFencingModulo, attacker, size,
                         {KernelArg::U64(attacker),
                          KernelArg::U64(victim - attacker),
                          KernelArg::U32(666)})
                  .ok());
  auto untouched = memory_.Load<std::uint32_t>(victim);
  ASSERT_TRUE(untouched.ok());
  EXPECT_EQ(*untouched, 777u);
}

TEST_F(PatchedExecution, ModuloWorksForNonPowerOfTwoPartitions) {
  // §4.4: modulo fencing does not require power-of-two alignment.
  const std::uint64_t base = 3ull << 20;
  const std::uint64_t size = (1ull << 20) + 4096;  // not a power of two
  const std::uint64_t victim = 16ull << 20;
  ASSERT_TRUE(memory_.Store<std::uint32_t>(victim, 777).ok());
  ASSERT_TRUE(RunPatched(ptx::MakeOobWriterKernel(),
                         BoundsCheckMode::kFencingModulo, base, size,
                         {KernelArg::U64(base), KernelArg::U64(victim - base),
                          KernelArg::U32(666)})
                  .ok());
  auto untouched = memory_.Load<std::uint32_t>(victim);
  ASSERT_TRUE(untouched.ok());
  EXPECT_EQ(*untouched, 777u);
}

TEST_F(PatchedExecution, CheckingModeTrapsOnOob) {
  const std::uint64_t base = 2ull << 20, size = 1ull << 20;
  const std::uint64_t victim = 8ull << 20;
  const Status s = RunPatched(ptx::MakeOobWriterKernel(),
                              BoundsCheckMode::kChecking, base, size,
                              {KernelArg::U64(base),
                               KernelArg::U64(victim - base),
                               KernelArg::U32(666)});
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  // Victim untouched.
  auto v = memory_.Load<std::uint32_t>(victim);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 0u);
}

TEST_F(PatchedExecution, CheckingModeAllowsInBounds) {
  const std::uint64_t base = 2ull << 20, size = 1ull << 20;
  EXPECT_TRUE(RunPatched(ptx::MakeOobWriterKernel(),
                         BoundsCheckMode::kChecking, base, size,
                         {KernelArg::U64(base), KernelArg::U64(64),
                          KernelArg::U32(5)})
                  .ok());
  auto v = memory_.Load<std::uint32_t>(base + 64);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 5u);
}

TEST_F(PatchedExecution, BrxClampPreventsFault) {
  // Out-of-table selector 7 on a 3-entry table: native faults (covered in
  // ptxexec tests); the patched kernel clamps to arm 2 and completes.
  const std::uint64_t base = 1ull << 20, size = 1ull << 20;
  ASSERT_TRUE(RunPatched(ptx::MakeIndirectBranchKernel(),
                         BoundsCheckMode::kFencingBitwise, base, size,
                         {KernelArg::U64(base), KernelArg::U32(7)})
                  .ok());
  auto v = memory_.Load<std::uint32_t>(base);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 30u);  // clamped to last arm
}

TEST_F(PatchedExecution, VecAddEquivalentWhenInBounds) {
  // Equivalence property: for in-bounds data the patched kernel computes
  // exactly what the native kernel computes.
  const std::uint64_t base = 4ull << 20, size = 1ull << 20;
  const std::uint64_t a = base, b = base + 0x10000, c = base + 0x20000;
  const int n = 64;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(memory_.Store<float>(a + i * 4, static_cast<float>(i)).ok());
    ASSERT_TRUE(memory_.Store<float>(b + i * 4, 1.0f).ok());
  }
  ASSERT_TRUE(RunPatched(ptx::MakeVecAddKernel(),
                         BoundsCheckMode::kFencingBitwise, base, size,
                         {KernelArg::U64(a), KernelArg::U64(b),
                          KernelArg::U64(c), KernelArg::U32(n)},
                         {64, 1, 1})
                  .ok());
  for (int i = 0; i < n; ++i) {
    auto v = memory_.Load<float>(c + i * 4);
    ASSERT_TRUE(v.ok());
    EXPECT_FLOAT_EQ(*v, static_cast<float>(i + 1));
  }
}

// Property sweep: random kernels, all three modes, execution inside the
// partition must succeed and never touch memory outside it.
class PatchedRandomKernels
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PatchedRandomKernels, NeverEscapesPartition) {
  const auto [seed, mode_index] = GetParam();
  Rng rng(seed * 104729 + 7);
  const auto mode = static_cast<BoundsCheckMode>(mode_index);

  simgpu::GlobalMemory memory(32ull << 20);
  simgpu::AllowAllPolicy allow;
  Interpreter interp(&memory, &allow, 1);

  const std::uint64_t base = 1ull << 20;
  const std::uint64_t size = 1ull << 20;
  // Poison a sentinel outside the partition.
  const std::uint64_t sentinel = 4ull << 20;
  ASSERT_TRUE(memory.Store<std::uint64_t>(sentinel, 0x5EBA5E11ull).ok());

  const Kernel kernel = ptx::MakeRandomKernel(
      rng, "rk", static_cast<int>(rng.NextInRange(1, 24)),
      static_cast<int>(rng.NextInRange(1, 12)), rng.NextBool(0.5));
  PatchOptions options;
  options.mode = mode;
  auto patched = PatchKernel(kernel, options);
  ASSERT_TRUE(patched.ok()) << patched.status();
  ptx::Module m;
  m.kernels.push_back(patched->kernel);

  const GrdArgs grd = ComputeGrdArgs(mode, base, size);
  LaunchParams params;
  params.block = {32, 1, 1};
  params.args = {KernelArg::U64(base), KernelArg::U32(0),
                 KernelArg::U64(grd.arg0), KernelArg::U64(grd.arg1)};
  auto stats = interp.Execute(m, "rk", params);
  ASSERT_TRUE(stats.ok()) << stats.status();

  auto v = memory.Load<std::uint64_t>(sentinel);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 0x5EBA5E11ull);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PatchedRandomKernels,
                         ::testing::Combine(::testing::Range(0, 12),
                                            ::testing::Values(0, 1, 2)));

// ---- Register model (Figure 9) ----------------------------------------

TEST(RegModel, NoOptCountsDistinctRegisters) {
  const Kernel k = ptx::MakeStoreTidKernel();
  const RegisterUsage native = EstimateRegisterUsage(k);
  // %rd1..4, %r1..2 -> 6 distinct virtual registers actually used.
  EXPECT_EQ(native.no_opt, 6u);
  EXPECT_LE(native.optimized, native.no_opt);
}

TEST(RegModel, PatchedAddsFewRegistersNoOpt) {
  const Kernel k = ptx::MakeStoreTidKernel();
  const auto patched = MustPatch(k);
  const RegisterUsage native = EstimateRegisterUsage(k);
  const RegisterUsage sandboxed = EstimateRegisterUsage(patched.kernel);
  const std::size_t delta = sandboxed.no_opt - native.no_opt;
  EXPECT_GE(delta, 2u);  // at least base+mask
  EXPECT_LE(delta, 4u);  // Figure 9a: up to 4 extra registers
}

TEST(RegModel, OptimizedDeltaSmallerThanNoOptDelta) {
  // Figure 9b: with -O3 most kernels pay nothing because the fencing temps
  // have short live ranges.
  std::size_t sum_noopt_delta = 0, sum_opt_delta = 0, n = 0;
  for (const Kernel& k : ptx::MakeSampleModule().kernels) {
    const auto patched = MustPatch(k);
    const RegisterUsage native = EstimateRegisterUsage(k);
    const RegisterUsage sandboxed = EstimateRegisterUsage(patched.kernel);
    sum_noopt_delta += sandboxed.no_opt - native.no_opt;
    sum_opt_delta += sandboxed.optimized >= native.optimized
                         ? sandboxed.optimized - native.optimized
                         : 0;
    ++n;
  }
  EXPECT_LT(sum_opt_delta, sum_noopt_delta);
}

// ---- Guard elision (CFG/loop analysis) ----------------------------------

std::size_t BodyInstructionCount(const Kernel& k) {
  std::size_t n = 0;
  for (const auto& stmt : k.body)
    if (std::holds_alternative<ptx::Instruction>(stmt)) ++n;
  return n;
}

// Counter loop over a loop-invariant pointer: the only in-loop access reads
// [%rd2+4] where %rd2 never changes — the hoisting rule's minimal target.
// The latch guard is a u32 setp, so the loop is deliberately NOT versionable.
Kernel MakeHoistKernel(std::string name = "hoistk") {
  using ptx::Operand;
  auto inst = [](std::string op, std::vector<std::string> mods,
                 std::vector<Operand> ops) {
    ptx::Instruction i;
    i.opcode = std::move(op);
    i.modifiers = std::move(mods);
    i.operands = std::move(ops);
    return i;
  };
  auto regs = [](ptx::Type t, std::string prefix, int count) {
    ptx::RegDecl d;
    d.type = t;
    d.is_range = true;
    d.prefix = std::move(prefix);
    d.count = count;
    return d;
  };
  Kernel k;
  k.name = std::move(name);
  ptx::Param p0, p1;
  p0.type = ptx::Type::kU64;
  p0.name = k.name + "_param_0";
  p1.type = ptx::Type::kU32;
  p1.name = k.name + "_param_1";
  k.params = {p0, p1};
  k.body.emplace_back(regs(ptx::Type::kPred, "%p", 2));
  k.body.emplace_back(regs(ptx::Type::kB32, "%r", 5));
  k.body.emplace_back(regs(ptx::Type::kB64, "%rd", 3));
  k.body.emplace_back(inst("ld", {"param", "u64"},
                           {Operand::Reg("%rd1"), Operand::Mem(p0.name)}));
  k.body.emplace_back(inst("ld", {"param", "u32"},
                           {Operand::Reg("%r1"), Operand::Mem(p1.name)}));
  k.body.emplace_back(inst("cvta", {"to", "global", "u64"},
                           {Operand::Reg("%rd2"), Operand::Reg("%rd1")}));
  k.body.emplace_back(
      inst("mov", {"u32"}, {Operand::Reg("%r2"), Operand::Imm(0)}));
  k.body.emplace_back(ptx::Label{"HLOOP"});
  k.body.emplace_back(inst("ld", {"global", "u32"},
                           {Operand::Reg("%r3"), Operand::Mem("%rd2", 4)}));
  k.body.emplace_back(inst("add", {"s32"}, {Operand::Reg("%r2"),
                                            Operand::Reg("%r2"),
                                            Operand::Reg("%r3")}));
  k.body.emplace_back(inst(
      "add", {"s32"},
      {Operand::Reg("%r2"), Operand::Reg("%r2"), Operand::Imm(1)}));
  k.body.emplace_back(inst("setp", {"lt", "u32"},
                           {Operand::Reg("%p1"), Operand::Reg("%r2"),
                            Operand::Reg("%r1")}));
  ptx::Instruction backedge =
      inst("bra", {}, {Operand::Id("HLOOP")});
  backedge.pred = ptx::Predicate{"%p1", false};
  k.body.emplace_back(std::move(backedge));
  k.body.emplace_back(inst("st", {"global", "u32"},
                           {Operand::Mem("%rd2"), Operand::Reg("%r2")}));
  k.body.emplace_back(inst("ret", {}, {}));
  return k;
}

std::vector<Kernel> ElisionCorpus() {
  std::vector<Kernel> kernels = ptx::MakeSampleModule().kernels;
  kernels.push_back(ptx::MakePointerWalkKernel("walk", 2));
  kernels.push_back(ptx::MakeRepeatedRmwKernel("rmw", 4));
  kernels.push_back(MakeHoistKernel());
  return kernels;
}

// Satellite: inserted_instructions must equal the exact emitted-body delta
// for every kernel, every mode, elision on and off — including base+offset
// materialization temporaries, preheader checks, and loop clones.
TEST(GuardElision, InsertedInstructionsAreExactBodyDelta) {
  for (const Kernel& k : ElisionCorpus()) {
    for (const auto mode :
         {BoundsCheckMode::kFencingBitwise, BoundsCheckMode::kFencingModulo,
          BoundsCheckMode::kChecking}) {
      for (const bool elision : {false, true}) {
        PatchOptions options;
        options.mode = mode;
        options.elision_enabled = elision;
        auto patched = PatchKernel(k, options);
        ASSERT_TRUE(patched.ok()) << k.name << ": " << patched.status();
        EXPECT_EQ(patched->stats.inserted_instructions,
                  BodyInstructionCount(patched->kernel) -
                      BodyInstructionCount(k))
            << k.name << " " << BoundsCheckModeName(mode)
            << " elision=" << elision;
      }
    }
  }
}

TEST(GuardElision, OffByDefaultMatchesLegacyOutput) {
  // PatchOptions{} must still produce the legacy full-patch body.
  for (const Kernel& k : ElisionCorpus()) {
    PatchOptions legacy;
    auto patched = PatchKernel(k, legacy);
    ASSERT_TRUE(patched.ok()) << patched.status();
    EXPECT_EQ(patched->stats.guards_elided, 0u);
    EXPECT_EQ(patched->stats.guards_hoisted, 0u);
    EXPECT_EQ(patched->stats.loop_range_checks, 0u);
  }
}

TEST(GuardElision, DominatedFencesElided) {
  // rmw: 4 ld/st pairs over offsets 0,4,8,0 -> three distinct fence
  // expressions, so 3 fences survive and the other 5 are elided.
  PatchOptions options;
  options.elision_enabled = true;
  auto patched = PatchKernel(ptx::MakeRepeatedRmwKernel("rmw", 4), options);
  ASSERT_TRUE(patched.ok()) << patched.status();
  EXPECT_EQ(patched->stats.guards_elided, 5u);
  EXPECT_EQ(patched->stats.patched_loads, 4u);
  EXPECT_EQ(patched->stats.patched_stores, 4u);
  // 2 ld.param + fence(+0)=2 + fence(+4)=3 + fence(+8)=3.
  EXPECT_EQ(patched->stats.inserted_instructions, 10u);
  // Full patching pays 2 + 2*(2) + 6*(3) = 24... (offsets 4/8 occur twice
  // each as ld+st; offset 0 occurs four times): 4*2 + 4*3 = 20, +2 = 22.
  PatchOptions full;
  auto unopt = PatchKernel(ptx::MakeRepeatedRmwKernel("rmw", 4), full);
  ASSERT_TRUE(unopt.ok());
  EXPECT_EQ(unopt->stats.inserted_instructions, 22u);
  // Elided consumers read the provider's dedicated slot register.
  const std::string text = ptx::Print(patched->kernel);
  EXPECT_NE(text.find("%grdtmp4"), std::string::npos) << text;
}

TEST(GuardElision, LoopVersionedBehindRangeCheck) {
  PatchOptions options;
  options.elision_enabled = true;
  auto patched = PatchKernel(ptx::MakePointerWalkKernel("walk", 1), options);
  ASSERT_TRUE(patched.ok()) << patched.status();
  EXPECT_EQ(patched->stats.loop_range_checks, 1u);
  // Both in-loop accesses run unfenced in the fast clone.
  EXPECT_EQ(patched->stats.guards_elided, 2u);
  EXPECT_EQ(patched->stats.patched_loads, 1u);
  EXPECT_EQ(patched->stats.patched_stores, 1u);
  const std::string text = ptx::Print(patched->kernel);
  EXPECT_NE(text.find("GRD_SLOW_0:"), std::string::npos) << text;
  EXPECT_NE(text.find("bra GRD_DONE_0;"), std::string::npos) << text;
  EXPECT_NE(text.find("WALK_TOP_grdslow0:"), std::string::npos) << text;
  EXPECT_NE(text.find("max.u64"), std::string::npos) << text;
}

TEST(GuardElision, InvariantFenceHoistedInBitwiseModeOnly) {
  PatchOptions options;
  options.elision_enabled = true;
  auto patched = PatchKernel(MakeHoistKernel(), options);
  ASSERT_TRUE(patched.ok()) << patched.status();
  EXPECT_EQ(patched->stats.guards_hoisted, 1u);
  EXPECT_EQ(patched->stats.guards_elided, 1u);
  EXPECT_EQ(patched->stats.loop_range_checks, 0u);
  const std::string text = ptx::Print(patched->kernel);
  // The hoisted fence (add + and/or into the slot register) sits before the
  // loop header label; the in-loop load reads the slot.
  const auto hoist_pos = text.find("and.b64 %grdtmp4");
  const auto label_pos = text.find("HLOOP:");
  ASSERT_NE(hoist_pos, std::string::npos) << text;
  ASSERT_NE(label_pos, std::string::npos);
  EXPECT_LT(hoist_pos, label_pos);
  EXPECT_NE(text.find("ld.global.u32 %r3, [%grdtmp4];"), std::string::npos)
      << text;

  // Modulo's rem and checking's trap must keep their execution conditions:
  // no hoisting outside bitwise mode.
  for (const auto mode :
       {BoundsCheckMode::kFencingModulo, BoundsCheckMode::kChecking}) {
    PatchOptions o;
    o.mode = mode;
    o.elision_enabled = true;
    auto p = PatchKernel(MakeHoistKernel(), o);
    ASSERT_TRUE(p.ok()) << p.status();
    EXPECT_EQ(p->stats.guards_hoisted, 0u) << BoundsCheckModeName(mode);
  }
}

TEST(GuardElision, ElidedKernelsReparse) {
  for (const Kernel& k : ElisionCorpus()) {
    for (const auto mode :
         {BoundsCheckMode::kFencingBitwise, BoundsCheckMode::kFencingModulo,
          BoundsCheckMode::kChecking}) {
      PatchOptions options;
      options.mode = mode;
      options.elision_enabled = true;
      auto patched = PatchKernel(k, options);
      ASSERT_TRUE(patched.ok()) << k.name << ": " << patched.status();
      ptx::Module m;
      m.kernels.push_back(patched->kernel);
      auto reparsed = ptx::Parse(ptx::Print(m));
      ASSERT_TRUE(reparsed.ok())
          << k.name << " " << BoundsCheckModeName(mode) << ": "
          << reparsed.status();
      EXPECT_EQ(reparsed->kernels[0], patched->kernel);
    }
  }
}

// Elided and full patching must be observationally identical — including the
// wrap-around (bitwise/modulo) and trap (checking) OOB semantics — on both
// the fast path (walk fits the partition) and the slow path (walk exceeds
// it, so the preheader check routes to the fenced clone).
TEST(GuardElision, WrapParityFullVsElided) {
  const Kernel kernel = ptx::MakePointerWalkKernel("walk", 2);
  const std::uint64_t base = 1ull << 20;
  const std::uint64_t size = 4096;

  struct Run {
    Status status = OkStatus();
    std::vector<std::uint32_t> partition;
  };
  auto run = [&](BoundsCheckMode mode, bool elision,
                 std::uint32_t iters) -> Run {
    PatchOptions options;
    options.mode = mode;
    options.elision_enabled = elision;
    auto patched = PatchKernel(kernel, options);
    EXPECT_TRUE(patched.ok()) << patched.status();
    if (elision) EXPECT_EQ(patched->stats.loop_range_checks, 1u);
    ptx::Module m;
    m.kernels.push_back(patched->kernel);
    simgpu::GlobalMemory memory(16ull << 20);
    simgpu::AllowAllPolicy allow;
    Interpreter interp(&memory, &allow, 1);
    const GrdArgs grd = ComputeGrdArgs(mode, base, size);
    LaunchParams params;
    params.block = {32, 1, 1};
    params.args = {KernelArg::U64(base), KernelArg::U32(iters),
                   KernelArg::U64(grd.arg0), KernelArg::U64(grd.arg1)};
    Run result;
    auto stats = interp.Execute(m, kernel.name, params);
    if (!stats.ok()) result.status = stats.status();
    for (std::uint64_t a = base; a < base + size; a += 4) {
      auto v = memory.Load<std::uint32_t>(a);
      EXPECT_TRUE(v.ok());
      result.partition.push_back(v.ok() ? *v : 0);
    }
    return result;
  };

  for (const auto mode :
       {BoundsCheckMode::kFencingBitwise, BoundsCheckMode::kFencingModulo,
        BoundsCheckMode::kChecking}) {
    // 4 iterations spans 1 KiB (in bounds, fast clone); 32 spans 8 KiB (OOB:
    // wrap-around for the fencing modes, trap for checking).
    for (const std::uint32_t iters : {4u, 32u}) {
      const Run full = run(mode, false, iters);
      const Run elided = run(mode, true, iters);
      EXPECT_EQ(full.status.code(), elided.status.code())
          << BoundsCheckModeName(mode) << " iters=" << iters;
      EXPECT_EQ(full.partition, elided.partition)
          << BoundsCheckModeName(mode) << " iters=" << iters;
    }
  }
}

// Golden corpus: the exact elided output for a fixed kernel set is committed
// as text; any change to the rewrite rules shows up as a reviewable diff.
// Regenerate with GRD_UPDATE_GOLDEN=1.
TEST(GuardElision, GoldenCorpusStable) {
  std::string text;
  const auto append_mode = [&](BoundsCheckMode mode,
                               const std::vector<Kernel>& kernels) {
    ptx::Module m;
    PatchOptions options;
    options.mode = mode;
    options.elision_enabled = true;
    for (const Kernel& k : kernels) {
      auto patched = PatchKernel(k, options);
      ASSERT_TRUE(patched.ok()) << k.name << ": " << patched.status();
      m.kernels.push_back(patched->kernel);
    }
    text += "// ---- mode: ";
    text += BoundsCheckModeName(mode);
    text += " ----\n";
    text += ptx::Print(m);
  };
  append_mode(BoundsCheckMode::kFencingBitwise,
              {ptx::MakeStoreTidKernel(), ptx::MakeOffsetCopyKernel(),
               ptx::MakeIndirectBranchKernel(),
               ptx::MakePointerWalkKernel("walk", 2),
               ptx::MakeRepeatedRmwKernel("rmw", 4), MakeHoistKernel()});
  append_mode(BoundsCheckMode::kFencingModulo,
              {ptx::MakePointerWalkKernel("walk", 2),
               ptx::MakeRepeatedRmwKernel("rmw", 4)});
  append_mode(BoundsCheckMode::kChecking,
              {ptx::MakePointerWalkKernel("walk", 2),
               ptx::MakeRepeatedRmwKernel("rmw", 4)});

  const std::string path =
      std::string(GRD_REPO_DIR) + "/tests/golden/guard_elision.golden.ptx";
  if (std::getenv("GRD_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << path;
    out << text;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (run with GRD_UPDATE_GOLDEN=1 to create)";
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), text)
      << "golden PTX drifted; rerun with GRD_UPDATE_GOLDEN=1 and review the "
         "diff";
}

}  // namespace
}  // namespace grd::ptxpatcher
