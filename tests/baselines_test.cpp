#include <gtest/gtest.h>

#include "baselines/mps.hpp"
#include "ptx/generator.hpp"
#include "ptx/printer.hpp"
#include "simgpu/device_spec.hpp"

namespace grd::baselines {
namespace {

using ptxexec::KernelArg;
using simcuda::DevicePtr;
using simcuda::MemcpyKind;

std::string SamplePtx() { return ptx::Print(ptx::MakeSampleModule()); }

TEST(MpsMemory, Section22Numbers) {
  // §2.2: "With just four clients (no data included) the GPU memory
  // consumption of MPS (734MB) is 4x larger than Guardian (176MB), whereas
  // with 16 clients it rises to 16x more (2.8GB vs. 176MB)."
  EXPECT_EQ(MpsMemoryFootprint(1), 176ull << 20);
  EXPECT_EQ(MpsMemoryFootprint(4), 734ull << 20);
  const double ratio_4 = static_cast<double>(MpsMemoryFootprint(4)) /
                         static_cast<double>(176ull << 20);
  EXPECT_NEAR(ratio_4, 4.17, 0.2);
  const double gb_16 =
      static_cast<double>(MpsMemoryFootprint(16)) / (1024.0 * 1024 * 1024);
  EXPECT_NEAR(gb_16, 2.9, 0.15);  // "2.8GB"
  EXPECT_EQ(MpsMemoryFootprint(0), 0u);
}

class MpsTest : public ::testing::Test {
 protected:
  MpsTest() : gpu_(simgpu::QuadroRtxA4000()), server_(&gpu_) {}

  simcuda::Gpu gpu_;
  MpsServer server_;
};

TEST_F(MpsTest, ClientsShareSpatiallyWithProtection) {
  auto alice = server_.CreateClient();
  auto bob = server_.CreateClient();
  DevicePtr pa = 0, pb = 0;
  ASSERT_TRUE(alice->cudaMalloc(&pa, 1024).ok());
  ASSERT_TRUE(bob->cudaMalloc(&pb, 1024).ok());
  const std::uint64_t v = 0xFEED;
  ASSERT_TRUE(alice->cudaMemcpyH2D(pa, &v, 8).ok());
  std::uint64_t back = 0;
  ASSERT_TRUE(alice->cudaMemcpy(&back, pa, 8, MemcpyKind::kDeviceToHost).ok());
  EXPECT_EQ(back, 0xFEEDull);
  EXPECT_EQ(server_.client_count(), 2u);
}

TEST_F(MpsTest, OobFaultKillsServerAndAllClients) {
  // The paper's §2.2 observation: one client's illegal access terminates
  // the MPS server and every co-running client.
  auto attacker = server_.CreateClient();
  auto victim = server_.CreateClient();

  DevicePtr victim_buf = 0;
  ASSERT_TRUE(victim->cudaMalloc(&victim_buf, 4096).ok());

  auto module = attacker->cuModuleLoadData(SamplePtx());
  ASSERT_TRUE(module.ok());
  auto fn = attacker->cuModuleGetFunction(*module, "oob_writer");
  ASSERT_TRUE(fn.ok());
  DevicePtr mine = 0;
  ASSERT_TRUE(attacker->cudaMalloc(&mine, 4096).ok());

  simcuda::LaunchConfig config;
  const Status s = attacker->cudaLaunchKernel(
      *fn, config,
      {KernelArg::U64(mine), KernelArg::U64(victim_buf - mine),
       KernelArg::U32(666)});
  EXPECT_FALSE(s.ok());  // memory protection DID trigger (ASID TLB)
  EXPECT_TRUE(server_.failed());

  // ... but fault isolation did NOT hold: the victim is dead too.
  DevicePtr more = 0;
  EXPECT_EQ(victim->cudaMalloc(&more, 64).code(), StatusCode::kUnavailable);
  EXPECT_EQ(attacker->cudaMalloc(&more, 64).code(),
            StatusCode::kUnavailable);
}

TEST_F(MpsTest, HealthyClientsUnaffectedByNormalErrors) {
  // Host-side API errors (bad pointer to cudaFree etc.) must NOT take the
  // server down — only device faults do.
  auto a = server_.CreateClient();
  auto b = server_.CreateClient();
  EXPECT_FALSE(a->cudaFree(0xDEAD).ok());
  EXPECT_FALSE(server_.failed());
  DevicePtr p = 0;
  EXPECT_TRUE(b->cudaMalloc(&p, 64).ok());
}

TEST_F(MpsTest, KernelsExecuteThroughMps) {
  auto client = server_.CreateClient();
  auto module = client->cuModuleLoadData(SamplePtx());
  ASSERT_TRUE(module.ok());
  auto fn = client->cuModuleGetFunction(*module, "kernel");
  ASSERT_TRUE(fn.ok());
  DevicePtr buf = 0;
  ASSERT_TRUE(client->cudaMalloc(&buf, 256).ok());
  simcuda::LaunchConfig config;
  config.block = {8, 1, 1};
  ASSERT_TRUE(client->cudaLaunchKernel(*fn, config,
                                       {KernelArg::U64(buf),
                                        KernelArg::U32(1)})
                  .ok());
  std::uint32_t v = 0;
  ASSERT_TRUE(
      client->cudaMemcpy(&v, buf + 4, 4, MemcpyKind::kDeviceToHost).ok());
  EXPECT_EQ(v, 7u);
}

}  // namespace
}  // namespace grd::baselines
