#include <gtest/gtest.h>

#include "ptx/generator.hpp"
#include "ptx/parser.hpp"
#include "ptx/printer.hpp"

namespace grd::ptx {
namespace {

TEST(Generator, StoreTidMatchesListing1Shape) {
  const Kernel k = MakeStoreTidKernel();
  ASSERT_EQ(k.params.size(), 2u);
  const KernelStats stats = ComputeStats(k);
  EXPECT_EQ(stats.loads, 0u);
  EXPECT_EQ(stats.stores, 1u);
}

TEST(Generator, VecAddHasTwoLoadsOneStore) {
  const KernelStats stats = ComputeStats(MakeVecAddKernel());
  EXPECT_EQ(stats.loads, 2u);
  EXPECT_EQ(stats.stores, 1u);
}

TEST(Generator, ReduceSharedAccessesNotCountedAsProtected) {
  const Kernel k = MakeReduceKernel();
  const KernelStats stats = ComputeStats(k);
  // One global load (input) and one global store (output); the shared-memory
  // staging traffic is exempt from protection (paper §3).
  EXPECT_EQ(stats.loads, 1u);
  EXPECT_EQ(stats.stores, 1u);
}

TEST(Generator, OffsetCopyUsesOffsetAddressing) {
  const Kernel k = MakeOffsetCopyKernel();
  bool found_nonzero_offset = false;
  for (const auto& stmt : k.body) {
    const auto* inst = std::get_if<Instruction>(&stmt);
    if (inst == nullptr || !inst->IsProtectedMemoryAccess()) continue;
    for (const auto& op : inst->operands) {
      if (op.kind == Operand::Kind::kMemory && op.offset != 0)
        found_nonzero_offset = true;
    }
  }
  EXPECT_TRUE(found_nonzero_offset);
}

TEST(Generator, FuncKernelIsFunc) {
  EXPECT_FALSE(MakeFuncStoreKernel().is_entry);
}

TEST(Generator, IndirectBranchKernelHasBrx) {
  const KernelStats stats = ComputeStats(MakeIndirectBranchKernel());
  EXPECT_EQ(stats.indirect_branches, 1u);
}

TEST(Generator, RandomKernelHonoursCounts) {
  Rng rng(42);
  for (const auto& [lds, sts] : std::vector<std::pair<int, int>>{
           {0, 0}, {1, 0}, {0, 1}, {10, 5}, {83, 26}}) {
    const Kernel k = MakeRandomKernel(rng, "k", lds, sts);
    const KernelStats stats = ComputeStats(k);
    EXPECT_EQ(stats.loads, static_cast<std::size_t>(lds));
    EXPECT_EQ(stats.stores, static_cast<std::size_t>(sts));
  }
}

TEST(Generator, SampleModuleParsesFromText) {
  const Module m = MakeSampleModule();
  auto reparsed = Parse(Print(m));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->kernels.size(), m.kernels.size());
}

TEST(Generator, Table3SpecsMatchPaper) {
  const auto& corpora = Table3Corpora();
  ASSERT_EQ(corpora.size(), 7u);
  EXPECT_EQ(corpora[0].name, "cuBlas (v11)");
  EXPECT_EQ(corpora[0].kernels, 4115u);
  EXPECT_EQ(corpora[0].total_loads, 341249u);
  EXPECT_EQ(corpora[0].total_stores, 106399u);
  EXPECT_EQ(corpora[6].name, "PyTorch");
  EXPECT_EQ(corpora[6].kernels, 27987u);
  EXPECT_EQ(corpora[6].funcs, 319u);
}

TEST(Generator, CorpusTotalsMatchSpecExactly) {
  // Use the small Rodinia corpus (23 kernels + 7 funcs) to keep this fast.
  const LibraryCorpusSpec& spec = Table3Corpora()[4];
  std::size_t loads = 0, stores = 0, kernels = 0, funcs = 0;
  GenerateCorpus(spec, /*seed=*/1, [&](const Kernel& k) {
    const KernelStats stats = ComputeStats(k);
    loads += stats.loads;
    stores += stats.stores;
    (k.is_entry ? kernels : funcs)++;
  });
  EXPECT_EQ(loads, spec.total_loads);
  EXPECT_EQ(stores, spec.total_stores);
  EXPECT_EQ(kernels, spec.kernels);
  EXPECT_EQ(funcs, spec.funcs);
}

TEST(Generator, CurandCorpusTotalsMatch) {
  const LibraryCorpusSpec& spec = Table3Corpora()[2];  // cuRAND: 204 kernels
  std::size_t loads = 0, stores = 0, units = 0;
  GenerateCorpus(spec, /*seed=*/2, [&](const Kernel& k) {
    const KernelStats stats = ComputeStats(k);
    loads += stats.loads;
    stores += stats.stores;
    ++units;
  });
  EXPECT_EQ(loads, spec.total_loads);
  EXPECT_EQ(stores, spec.total_stores);
  EXPECT_EQ(units, spec.kernels + spec.funcs);
}

}  // namespace
}  // namespace grd::ptx
