// Multi-device fleet coverage (ctest label `process`): session adoption and
// live migration.
//
// The death test SIGKILLs the only worker mid-kernel and proves the session
// is ADOPTED, not failed: the respawned worker rebuilds it from the shared
// journal under the SAME client id and partition bounds, the interrupted
// launch resumes from its journaled block checkpoint, and the grid total in
// kernel_blocks_executed stays exact — no completed block replayed, no block
// lost with the dead worker. The thread-mode tests cover least-loaded
// placement at registration and GrdManager::Migrate moving a session (memory
// bytes included) between devices while one of its kernels is mid-grid.
//
// Children never run gtest assertions: they report through exit codes and
// arm alarm() as a hang backstop, following the process_mode_test pattern.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "guardian/grdlib.hpp"
#include "guardian/manager.hpp"
#include "guardian/process_server.hpp"
#include "guardian/shared_state.hpp"
#include "guardian/transport.hpp"
#include "simgpu/device_spec.hpp"

namespace grd::guardian {
namespace {

using ptxexec::KernelArg;
using simcuda::DevicePtr;

// Finite kernel with tunable per-block work: every block spins `iters`
// times, then stores its id. Long enough to be killed (or migrated) with
// only a prefix of the grid checkpointed, short enough that the resumed
// remainder finishes well inside the alarm() backstop.
constexpr char kBlockWorkPtx[] = R"(
.version 7.7
.target sm_86
.address_size 64
.visible .entry blockwork(
    .param .u64 dst,
    .param .u32 iters
)
{
    .reg .b32 %r<6>;
    .reg .b64 %rd<4>;
    .reg .pred %p1;
    mov.u32 %r1, %ctaid.x;
    ld.param.u32 %r4, [iters];
    mov.u32 %r2, 0;
LOOP:
    add.s32 %r2, %r2, 1;
    setp.lt.u32 %p1, %r2, %r4;
    @%p1 bra LOOP;
    ld.param.u64 %rd1, [dst];
    cvta.to.global.u64 %rd2, %rd1;
    mul.wide.u32 %rd3, %r1, 4;
    add.s64 %rd2, %rd2, %rd3;
    st.global.u32 [%rd2], %r1;
    ret;
}
)";

constexpr std::uint32_t kBlocks = 64;
constexpr std::uint32_t kIters = 200'000;

pid_t ForkChild(const std::function<int()>& body) {
  const pid_t pid = fork();
  if (pid == 0) {
    alarm(30);  // hang backstop: SIGALRM-terminated children fail the test
    _exit(body());
  }
  return pid;
}

int WaitExit(pid_t pid) {
  int status = 0;
  if (waitpid(pid, &status, 0) != pid) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
}

bool PollUntil(const std::function<bool()>& predicate, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!predicate()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

// Completed blocks the (single) active session has journaled so far.
std::uint64_t JournaledBlocks(SharedServingState& state,
                              std::uint32_t max_sessions) {
  for (std::uint32_t i = 0; i < max_sessions; ++i) {
    SharedSessionSlot& slot = state.session_slot(i);
    if (slot.state.load(std::memory_order_acquire) !=
        static_cast<std::uint32_t>(SessionSlotState::kActive))
      continue;
    std::uint64_t done = 0;
    for (const auto& word : slot.journal.pending_done)
      done += static_cast<std::uint64_t>(
          __builtin_popcountll(word.load(std::memory_order_acquire)));
    return done;
  }
  return 0;
}

// ---- adoption: worker SIGKILLed mid-kernel --------------------------------

TEST(AdoptionTest, KilledWorkerSessionIsAdoptedAndKernelResumesMidGrid) {
  ProcessServerOptions options;
  options.workers = 1;
  options.channels = 1;
  options.layout.ring_bytes = 1 << 20;
  // The work kernel must genuinely run until SIGKILLed, not trip the budget.
  options.manager.max_kernel_instructions = 1ull << 40;
  auto server = ProcessServer::Create(options);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());
  ASSERT_TRUE((*server)->WaitForChannelOwners());

  int ready[2];  // client -> test: "work launch is next"
  ASSERT_EQ(pipe(ready), 0);

  // The client sends ONE synchronous launch and expects it to succeed: the
  // kill lands mid-grid, the supervisor answers kUnavailable synthetically,
  // and grdLib's attach-first recovery must resume the kernel transparently
  // on the respawned worker — same client id, same partition, no replay.
  const pid_t client = ForkChild([&]() -> int {
    ChannelTransport transport(&(*server)->channel(0));
    GrdLibOptions recovery;
    recovery.recovery_attempts = 20;
    auto lib = GrdLib::Connect(&transport, 8 << 20, recovery);
    if (!lib.ok()) return 10;
    const ClientId id = lib->client_id();
    const std::uint64_t base = lib->partition_base();

    auto module = lib->cuModuleLoadData(kBlockWorkPtx);
    if (!module.ok()) return 11;
    auto fn = lib->cuModuleGetFunction(*module, "blockwork");
    if (!fn.ok()) return 12;
    DevicePtr dst = 0;
    if (!lib->cudaMalloc(&dst, kBlocks * 4).ok()) return 13;

    if (write(ready[1], "L", 1) != 1) return 14;
    simcuda::LaunchConfig config;
    config.grid = {kBlocks, 1, 1};
    config.block = {1, 1, 1};
    // Default stream: synchronous — the worker dies underneath this call.
    const Status done = lib->cudaLaunchKernel(
        *fn, config, {KernelArg::U64(dst), KernelArg::U32(kIters)});
    if (!done.ok()) return 15;

    // Adoption, not a rebuild: the session identity survived the crash.
    if (lib->client_id() != id) return 16;
    if (lib->partition_base() != base) return 17;
    if (lib->resume_attaches() < 1) return 18;

    // The grid completed across the two worker generations.
    std::uint32_t value = 0;
    if (!lib->cudaMemcpy(&value, dst + 5 * 4, 4,
                         simcuda::MemcpyKind::kDeviceToHost)
             .ok())
      return 19;
    if (value != 5) return 20;
    if (!lib->cudaMemcpy(&value, dst + (kBlocks - 1) * 4, 4,
                         simcuda::MemcpyKind::kDeviceToHost)
             .ok())
      return 21;
    if (value != kBlocks - 1) return 22;
    return 0;
  });

  // Wait until the kernel has checkpointed a few blocks into the shared
  // journal — the deferred stats accounting shows nothing until completion,
  // so the journal bitmap is the only honest mid-kernel progress signal —
  // then SIGKILL the worker with most of the grid still to run.
  close(ready[1]);
  char go = 0;
  ASSERT_EQ(read(ready[0], &go, 1), 1)
      << "client exited before arming the work launch";
  SharedServingState& state = (*server)->state();
  ASSERT_TRUE(PollUntil(
      [&] { return JournaledBlocks(state, options.layout.max_sessions) >= 4; },
      10'000))
      << "kernel never journaled completed blocks";
  ASSERT_EQ(kill((*server)->worker_pid(0), SIGKILL), 0);

  EXPECT_EQ(WaitExit(client), 0);

  // Supervisor adopted instead of failing; the adopting worker resumed the
  // checkpointed kernel; and the block accounting is EXACT: the dead
  // worker's partial run contributed nothing, the resumed run counted the
  // full grid once.
  EXPECT_GE(state.counters().workers_respawned.load(), 1u);
  EXPECT_GE(state.counters().sessions_adopted.load(), 1u);
  EXPECT_EQ(state.counters().sessions_crash_failed.load(), 0u);
  EXPECT_GE(state.stats().sessions_adopted.load(), 1u);
  EXPECT_GE(state.stats().checkpoint_kernels_resumed.load(), 1u);
  EXPECT_EQ(state.stats().kernel_blocks_executed.load(), kBlocks);

  (*server)->Stop();
  close(ready[0]);
}

// ---- multi-device placement and live migration (thread mode) --------------

TEST(MigrationTest, RegistrationPlacesSessionsLeastLoadedAcrossDevices) {
  ManagerOptions options;
  options.extra_devices.push_back(simgpu::QuadroRtxA4000());
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  GrdManager manager(&gpu, options);
  LoopbackTransport transport(&manager);

  auto a = GrdLib::Connect(&transport, 1 << 20);
  auto b = GrdLib::Connect(&transport, 1 << 20);
  ASSERT_TRUE(a.ok() && b.ok());
  // Two idle devices, two registrations: one session each.
  EXPECT_NE(a->device_id(), b->device_id());
  EXPECT_LT(a->device_id(), 2u);
  EXPECT_LT(b->device_id(), 2u);
}

TEST(MigrationTest, LiveMigrationMovesMemoryAndResumesKernelExactly) {
  ManagerOptions options;
  options.extra_devices.push_back(simgpu::QuadroRtxA4000());
  options.migrate_queue_threshold = 0;  // explicit Migrate only
  options.max_kernel_instructions = 1ull << 40;
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  GrdManager manager(&gpu, options);
  LoopbackTransport transport(&manager);

  auto lib = GrdLib::Connect(&transport, 8 << 20);
  ASSERT_TRUE(lib.ok());
  const std::uint32_t source = lib->device_id();
  const std::uint32_t target = source == 0 ? 1 : 0;

  // A bystander buffer whose bytes must survive the partition move.
  constexpr std::uint32_t kPatternWords = 256;
  DevicePtr pattern = 0;
  ASSERT_TRUE(lib->cudaMalloc(&pattern, kPatternWords * 4).ok());
  std::vector<std::uint32_t> expected(kPatternWords);
  for (std::uint32_t i = 0; i < kPatternWords; ++i) expected[i] = i * 7 + 3;
  ASSERT_TRUE(
      lib->cudaMemcpyH2D(pattern, expected.data(), kPatternWords * 4).ok());

  auto module = lib->cuModuleLoadData(kBlockWorkPtx);
  ASSERT_TRUE(module.ok()) << module.status();
  auto fn = lib->cuModuleGetFunction(*module, "blockwork");
  ASSERT_TRUE(fn.ok());
  DevicePtr dst = 0;
  ASSERT_TRUE(lib->cudaMalloc(&dst, kBlocks * 4).ok());
  simcuda::StreamId stream = 0;
  ASSERT_TRUE(lib->cudaStreamCreate(&stream).ok());

  simcuda::LaunchConfig config;
  config.grid = {kBlocks, 1, 1};
  config.block = {1, 1, 1};
  config.stream = stream;
  ASSERT_TRUE(
      lib->cudaLaunchKernel(*fn, config,
                            {KernelArg::U64(dst), KernelArg::U32(kIters)})
          .ok());

  // Migrate with the kernel mid-grid (thread mode counts per block, so a
  // non-zero counter means at least one block completed on the source).
  ASSERT_TRUE(PollUntil(
      [&] { return manager.stats().kernel_blocks_executed.load() > 0; },
      10'000));
  ASSERT_TRUE(manager.Migrate(lib->client_id(), target).ok());
  ASSERT_TRUE(lib->cudaStreamSynchronize(stream).ok());

  // The revoked kernel resumed on the target from its checkpoint: exact
  // block total, no replay, and the migration counters say so.
  EXPECT_EQ(manager.stats().kernel_blocks_executed.load(), kBlocks);
  EXPECT_EQ(manager.stats().sessions_migrated.load(), 1u);
  EXPECT_GE(manager.stats().checkpoint_kernels_resumed.load(), 1u);

  // Every block stored its id — the prefix on the source device survived
  // the byte copy, the remainder ran on the target.
  std::vector<std::uint32_t> out(kBlocks);
  ASSERT_TRUE(lib->cudaMemcpy(out.data(), dst, kBlocks * 4,
                              simcuda::MemcpyKind::kDeviceToHost)
                  .ok());
  for (std::uint32_t i = 0; i < kBlocks; ++i) EXPECT_EQ(out[i], i) << i;

  // And the bystander allocation moved byte-exact.
  std::vector<std::uint32_t> moved(kPatternWords);
  ASSERT_TRUE(lib->cudaMemcpy(moved.data(), pattern, kPatternWords * 4,
                              simcuda::MemcpyKind::kDeviceToHost)
                  .ok());
  EXPECT_EQ(moved, expected);
}

}  // namespace
}  // namespace grd::guardian
