// Process-mode manager coverage (ctest label `process`): the SharedRegion
// session registry, the robust-mutex crash recovery, and — the point of the
// suite — fork-based death tests against the ProcessServer worker pool:
// SIGKILL a worker mid-kernel and prove the in-flight request answers with
// a clean synthetic status, surviving workers keep serving, the parent
// respawns a replacement that ADOPTS the dead worker's sessions from their
// shared journals (with respawn off they crash-fail instead), and fresh
// registrations succeed on the orphaned channel.
//
// Children never run gtest assertions: they report through exit codes
// (unique per failure point) and arm alarm() as a hang backstop, following
// the ipc_test fork pattern.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <thread>
#include <vector>

#include "guardian/grdlib.hpp"
#include "guardian/process_server.hpp"
#include "guardian/shared_state.hpp"
#include "guardian/transport.hpp"
#include "ipc/robust_mutex.hpp"
#include "obs/trace.hpp"
#include "ptx/generator.hpp"
#include "ptx/printer.hpp"

namespace grd::guardian {
namespace {

using ptxexec::KernelArg;
using simcuda::DevicePtr;

// Kernel whose block 3 spins forever (blocks 0..2 store their id and exit):
// launched on the default stream it parks the serving worker inside
// HandleRequest indefinitely — the "mid-kernel" window the death tests
// SIGKILL into.
constexpr char kSpinTailPtx[] = R"(
.version 7.7
.target sm_86
.address_size 64
.visible .entry spintail(
    .param .u64 dst
)
{
    .reg .b32 %r<4>;
    .reg .b64 %rd<4>;
    .reg .pred %p1;
    mov.u32 %r1, %ctaid.x;
    setp.lt.u32 %p1, %r1, 3;
    @%p1 bra STORE;
LOOP:
    add.s32 %r2, %r2, 1;
    bra LOOP;
STORE:
    ld.param.u64 %rd1, [dst];
    cvta.to.global.u64 %rd2, %rd1;
    mul.wide.u32 %rd3, %r1, 4;
    add.s64 %rd2, %rd2, %rd3;
    st.global.u32 [%rd2], %r1;
    ret;
}
)";

pid_t ForkChild(const std::function<int()>& body) {
  const pid_t pid = fork();
  if (pid == 0) {
    alarm(30);  // hang backstop: SIGALRM-terminated children fail the test
    _exit(body());
  }
  return pid;
}

int WaitExit(pid_t pid) {
  int status = 0;
  if (waitpid(pid, &status, 0) != pid) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
}

bool PollUntil(const std::function<bool()>& predicate, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!predicate()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

// The honest tenant workload of the process_isolation example: sample
// kernel over 16 threads, last thread's value read back.
int RunHonestWorkload(GrdLib& lib) {
  auto module = lib.cuModuleLoadData(ptx::Print(ptx::MakeSampleModule()));
  if (!module.ok()) return 1;
  auto fn = lib.cuModuleGetFunction(*module, "kernel");
  if (!fn.ok()) return 2;
  DevicePtr buf = 0;
  if (!lib.cudaMalloc(&buf, 4096).ok()) return 3;
  simcuda::LaunchConfig config;
  config.block = {16, 1, 1};
  if (!lib.cudaLaunchKernel(*fn, config,
                            {KernelArg::U64(buf), KernelArg::U32(3)})
           .ok())
    return 4;
  std::uint32_t value = 0;
  if (!lib.cudaMemcpy(&value, buf + 12, 4, simcuda::MemcpyKind::kDeviceToHost)
           .ok())
    return 5;
  if (value != 15) return 6;
  return lib.cudaFree(buf).ok() ? 0 : 7;
}

std::vector<std::uint64_t> AlignedBuffer(std::uint64_t bytes) {
  return std::vector<std::uint64_t>((bytes + 7) / 8);
}

// ---- SharedServingState units (no fork) ------------------------------------

TEST(SharedStateTest, SessionSlotLifecycleExhaustionAndRecycling) {
  SharedServingLayout layout;
  layout.max_sessions = 3;
  layout.max_channels = 1;
  layout.max_workers = 2;
  layout.ring_bytes = 4096;
  auto buffer = AlignedBuffer(SharedServingState::RegionSize(layout));
  SharedServingState* state =
      SharedServingState::Initialize(buffer.data(), layout);
  ASSERT_TRUE(SharedServingState::Attach(buffer.data()).ok());

  PartitionBounds bounds{1 << 20, 1 << 20};
  auto a = state->AllocateSession(0, bounds, protocol::PriorityClass::kNormal);
  auto b = state->AllocateSession(0, bounds, protocol::PriorityClass::kBatch);
  auto c = state->AllocateSession(1, bounds, protocol::PriorityClass::kNormal);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_NE(*a, *b);
  EXPECT_NE(*b, *c);
  EXPECT_EQ(state->ActiveSessions(), 3u);

  // Full: the fourth registration fails cleanly.
  auto overflow =
      state->AllocateSession(1, bounds, protocol::PriorityClass::kNormal);
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kOutOfMemory);

  // Clean release frees the slot for a NEW id.
  ASSERT_TRUE(state->ReleaseSession(*b).ok());
  EXPECT_EQ(state->FindSession(*b), nullptr);
  auto d = state->AllocateSession(1, bounds, protocol::PriorityClass::kNormal);
  ASSERT_TRUE(d.ok());
  EXPECT_GT(*d, *c);

  // Crash-failing worker 0 hits only its sessions; the failed slot still
  // resolves (clean-error path) and is recycled only under pressure.
  EXPECT_EQ(state->FailSessionsOfWorker(0), 1u);  // session a
  ASSERT_NE(state->FindSession(*a), nullptr);
  EXPECT_EQ(state->FindSession(*a)->state.load(),
            static_cast<std::uint32_t>(SessionSlotState::kFailed));
  ASSERT_NE(state->FindSession(*c), nullptr);
  EXPECT_EQ(state->FindSession(*c)->state.load(),
            static_cast<std::uint32_t>(SessionSlotState::kActive));
  auto e = state->AllocateSession(1, bounds, protocol::PriorityClass::kNormal);
  ASSERT_TRUE(e.ok());  // recycled a's slot: no free slot remained
  EXPECT_EQ(state->FindSession(*a), nullptr);
  EXPECT_EQ(state->FailedSessions(), 0u);

  const SharedPoolCounters& counters = state->counters();
  EXPECT_EQ(counters.sessions_registered.load(), 5u);
  EXPECT_EQ(counters.sessions_released.load(), 1u);
  EXPECT_EQ(counters.sessions_crash_failed.load(), 1u);
}

TEST(SharedStateTest, AttachRejectsForeignRegion) {
  auto buffer = AlignedBuffer(4096);
  EXPECT_FALSE(SharedServingState::Attach(buffer.data()).ok());
}

TEST(SharedStateTest, ChannelClaimCasExcludesDoubleOwnership) {
  SharedServingLayout layout;
  layout.max_sessions = 2;
  layout.max_channels = 2;
  layout.max_workers = 3;
  layout.ring_bytes = 4096;
  auto buffer = AlignedBuffer(SharedServingState::RegionSize(layout));
  SharedServingState* state =
      SharedServingState::Initialize(buffer.data(), layout);

  EXPECT_TRUE(state->ClaimChannel(0, 0));
  EXPECT_TRUE(state->ClaimChannel(0, 0));   // idempotent for the owner
  EXPECT_FALSE(state->ClaimChannel(0, 1));  // sticky against everyone else
  EXPECT_TRUE(state->ClaimChannel(1, 1));

  // Supervisor reassignment: worker 0's channels are released and re-aimed
  // at worker 2, which can now claim them; worker 1's claim is untouched.
  state->ReassignChannelsOfWorker(0, 2);
  EXPECT_EQ(state->channel_slot(0).owner.load(), kNoWorker);
  EXPECT_EQ(state->channel_slot(0).preferred.load(), 2u);
  EXPECT_EQ(state->channel_slot(1).owner.load(), 1u);
  EXPECT_TRUE(state->ClaimChannel(0, 2));
}

TEST(SharedStateTest, AuditReleasesSlotTornMidAllocation) {
  SharedServingLayout layout;
  layout.max_sessions = 2;
  layout.max_channels = 1;
  layout.max_workers = 2;
  layout.ring_bytes = 4096;
  auto buffer = AlignedBuffer(SharedServingState::RegionSize(layout));
  SharedServingState* state =
      SharedServingState::Initialize(buffer.data(), layout);

  // Forge the torn shape a worker killed between claiming a slot and
  // publishing its client id would leave: state set, id still 0.
  state->session_slot(0).state.store(
      static_cast<std::uint32_t>(SessionSlotState::kActive));
  state->session_slot(0).owner_worker.store(0);
  EXPECT_EQ(state->FindSession(0), nullptr);  // id 0 never resolves

  EXPECT_EQ(state->AuditAfterWorkerDeath(), 1u);
  EXPECT_EQ(state->session_slot(0).state.load(), 0u);
  EXPECT_EQ(state->session_slot(0).owner_worker.load(), kNoWorker);
  EXPECT_EQ(state->counters().registry_repairs.load(), 1u);
  EXPECT_EQ(state->AuditAfterWorkerDeath(), 0u);  // clean registry: no-op
}

TEST(RobustMutexTest, LockRecoversFromOwnerKilledInCriticalSection) {
  auto region = ipc::SharedRegion::Create(sizeof(ipc::RobustMutex));
  ASSERT_TRUE(region.ok());
  auto* mu = static_cast<ipc::RobustMutex*>(region->addr());
  mu->Init();

  // Child takes the lock and dies holding it.
  const pid_t pid = ForkChild([&] {
    mu->Lock();
    return 0;  // _exit without Unlock
  });
  ASSERT_EQ(WaitExit(pid), 0);

  // Parent: EOWNERDEAD surfaces exactly once, then the mutex is consistent.
  EXPECT_TRUE(mu->Lock());
  mu->Unlock();
  EXPECT_FALSE(mu->Lock());
  mu->Unlock();
}

// ---- fork-based death tests against the worker pool ------------------------

TEST(ProcessModeTest, CrashAdoptsItsSessionsSurvivorsServeAndParentRespawns) {
  ProcessServerOptions options;
  options.workers = 2;
  options.channels = 2;
  options.layout.ring_bytes = 1 << 20;
  // The spin kernel must genuinely run until SIGKILLed, not trip the budget.
  options.manager.max_kernel_instructions = 1ull << 40;
  auto server = ProcessServer::Create(options);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());
  ASSERT_TRUE((*server)->WaitForChannelOwners());

  int victim_ready[2];  // victim client -> test: "spin launch is next"
  int survivor_stop[2];  // test -> survivor client: "you may stop"
  ASSERT_EQ(pipe(victim_ready), 0);
  ASSERT_EQ(pipe(survivor_stop), 0);
  ASSERT_EQ(fcntl(survivor_stop[0], F_SETFL, O_NONBLOCK), 0);

  // Victim tenant on channel 0: honest workload, then a spin launch that
  // parks its worker mid-kernel. After the kill the in-flight request
  // answers with the clean synthetic failure, but the session itself
  // SURVIVES: the respawned worker adopts it from the shared journal on
  // first touch, so a straggler op succeeds under the same client id.
  const pid_t victim = ForkChild([&]() -> int {
    ChannelTransport transport(&(*server)->channel(0));
    auto lib = GrdLib::Connect(&transport, 8 << 20);
    if (!lib.ok()) return 10;
    if (RunHonestWorkload(*lib) != 0) return 11;

    auto module = lib->cuModuleLoadData(kSpinTailPtx);
    if (!module.ok()) return 12;
    auto spin = lib->cuModuleGetFunction(*module, "spintail");
    if (!spin.ok()) return 13;
    DevicePtr buf = 0;
    if (!lib->cudaMalloc(&buf, 4096).ok()) return 14;

    if (write(victim_ready[1], "L", 1) != 1) return 15;
    simcuda::LaunchConfig config;
    config.grid = {4, 1, 1};
    config.block = {1, 1, 1};
    // Default stream: synchronous — blocks until the worker dies under it.
    const Status killed =
        lib->cudaLaunchKernel(*spin, config, {KernelArg::U64(buf)});
    // 1. the in-flight request answers with the supervisor's synthetic
    //    kUnavailable, not a hang and not success.
    if (killed.ok()) return 16;
    if (killed.code() != StatusCode::kUnavailable) return 17;

    // 2. a straggler on the killed session is served by the replacement
    //    worker, which adopts the session from its shared journal on first
    //    touch — same client id, same partition, handles still valid.
    DevicePtr straggler = 0;
    if (!lib->cudaMalloc(&straggler, 64).ok()) return 18;

    // 4. a fresh registration on the same channel reaches the respawned
    //    worker and serves a full workload.
    auto fresh = GrdLib::Connect(&transport, 8 << 20);
    if (!fresh.ok()) return 19;
    if (RunHonestWorkload(*fresh) != 0) return 20;
    return 0;
  });

  // Survivor tenant on channel 1: keeps serving straight through the crash
  // window until the test releases it.
  const pid_t survivor = ForkChild([&]() -> int {
    ChannelTransport transport(&(*server)->channel(1));
    auto lib = GrdLib::Connect(&transport, 8 << 20);
    if (!lib.ok()) return 30;
    char go = 0;
    int rounds = 0;
    while (read(survivor_stop[0], &go, 1) != 1) {
      if (RunHonestWorkload(*lib) != 0) return 31;
      ++rounds;
    }
    return rounds > 0 ? 0 : 32;
  });

  // Wait for the victim's signal, then for its worker to consume the spin
  // launch (request consumed, no response yet), then SIGKILL mid-kernel.
  // The parent's copy of the write end closes first so a victim child that
  // dies before signalling delivers EOF here (fast failure, not a hang).
  close(victim_ready[1]);
  char ready = 0;
  ASSERT_EQ(read(victim_ready[0], &ready, 1), 1)
      << "victim child exited before arming the spin launch";
  ipc::Channel& victim_channel = (*server)->channel(0);
  ASSERT_TRUE(PollUntil(
      [&] {
        return victim_channel.request().messages_read() >
               victim_channel.response().messages_written();
      },
      10'000));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const std::uint32_t victim_worker = (*server)->channel_owner(0);
  ASSERT_LT(victim_worker, options.workers);
  const std::uint64_t generation_before =
      (*server)->state().worker_slot(victim_worker).generation.load();
  ASSERT_EQ(kill((*server)->worker_pid(victim_worker), SIGKILL), 0);

  EXPECT_EQ(WaitExit(victim), 0);
  ASSERT_EQ(write(survivor_stop[1], "Q", 1), 1);
  EXPECT_EQ(WaitExit(survivor), 0);

  SharedServingState& state = (*server)->state();
  EXPECT_GE(state.counters().workers_respawned.load(), 1u);
  EXPECT_GE(state.counters().synthetic_responses.load(), 1u);
  EXPECT_GT(state.worker_slot(victim_worker).generation.load(),
            generation_before);
  // 3. with respawn on, the journaled session was adopted, not failed —
  //    and the survivor's session was never touched by the crash.
  EXPECT_GE(state.counters().sessions_adopted.load(), 1u);
  EXPECT_EQ(state.counters().sessions_crash_failed.load(), 0u);
  EXPECT_EQ(state.FailedSessions(), 0u);

  (*server)->Stop();
  for (const int fd : {victim_ready[0], survivor_stop[0], survivor_stop[1]})
    close(fd);
}

TEST(ProcessModeTest, StressRegisterLaunchUnregisterAcrossProcesses) {
  constexpr std::uint32_t kClients = 6;
  constexpr int kIterations = 8;

  ProcessServerOptions options;
  options.workers = 3;
  options.channels = kClients;
  options.layout.max_sessions = 32;
  options.layout.ring_bytes = 1 << 20;
  auto server = ProcessServer::Create(options);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());
  ASSERT_TRUE((*server)->WaitForChannelOwners());

  std::vector<pid_t> clients;
  for (std::uint32_t c = 0; c < kClients; ++c) {
    clients.push_back(ForkChild([&, c]() -> int {
      ChannelTransport transport(&(*server)->channel(c));
      for (int i = 0; i < kIterations; ++i) {
        auto lib = GrdLib::Connect(&transport, 1 << 20);
        if (!lib.ok()) return 40;
        const int workload = RunHonestWorkload(*lib);
        if (workload != 0) return 50 + workload;
        if (!lib->Disconnect().ok()) return 41;
      }
      return 0;
    }));
  }
  for (const pid_t pid : clients) EXPECT_EQ(WaitExit(pid), 0);

  SharedServingState& state = (*server)->state();
  // No leaked or failed registry slots once every tenant disconnected.
  EXPECT_EQ(state.ActiveSessions(), 0u);
  EXPECT_EQ(state.FailedSessions(), 0u);
  // Registration/release accounting balances exactly.
  EXPECT_EQ(state.counters().sessions_registered.load(),
            kClients * static_cast<std::uint64_t>(kIterations));
  EXPECT_EQ(state.counters().sessions_released.load(),
            kClients * static_cast<std::uint64_t>(kIterations));
  EXPECT_EQ(state.counters().sessions_crash_failed.load(), 0u);
  // The pool-wide ManagerStats aggregate the per-worker serving exactly:
  // one sandboxed launch and one checked D2H transfer per iteration.
  EXPECT_EQ(state.stats().launches.load(),
            kClients * static_cast<std::uint64_t>(kIterations));
  EXPECT_EQ(state.stats().transfers_checked.load(),
            kClients * static_cast<std::uint64_t>(kIterations));
  // No channel ended up double-claimed or orphaned: every owner is a live
  // worker, and sticky claims kept the parent's deterministic assignment.
  for (std::uint32_t i = 0; i < options.channels; ++i) {
    const std::uint32_t owner = (*server)->channel_owner(i);
    ASSERT_LT(owner, options.workers);
    EXPECT_EQ(owner, i % options.workers);
    EXPECT_EQ(state.worker_slot(owner).alive.load(), 1u);
  }
  (*server)->Stop();
}

TEST(ProcessModeTest, NoRespawnStillFailsSessionsAndReleasesChannels) {
  ProcessServerOptions options;
  options.workers = 1;
  options.channels = 1;
  options.respawn = false;
  auto server = ProcessServer::Create(options);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());
  ASSERT_TRUE((*server)->WaitForChannelOwners());

  // Register a session and leave it live (no disconnect).
  const pid_t client = ForkChild([&]() -> int {
    ChannelTransport transport(&(*server)->channel(0));
    auto lib = GrdLib::Connect(&transport, 1 << 20);
    return lib.ok() ? 0 : 10;
  });
  ASSERT_EQ(WaitExit(client), 0);
  SharedServingState& state = (*server)->state();
  ASSERT_TRUE(PollUntil([&] { return state.ActiveSessions() == 1; }, 5000));

  ASSERT_EQ(kill((*server)->worker_pid(0), SIGKILL), 0);
  ASSERT_TRUE(PollUntil([&] { return state.FailedSessions() == 1; }, 5000));
  EXPECT_EQ(state.counters().sessions_crash_failed.load(), 1u);
  EXPECT_EQ(state.counters().workers_respawned.load(), 0u);
  // Channels are released, not reassigned: no replacement is coming.
  ASSERT_TRUE(PollUntil(
      [&] { return (*server)->channel_owner(0) == kNoWorker; }, 5000));
  (*server)->Stop();
}

TEST(ProcessModeTest, GrowPartitionPublishesBoundsToSharedSlot) {
  ProcessServerOptions options;
  options.workers = 1;
  options.channels = 1;
  auto server = ProcessServer::Create(options);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());
  ASSERT_TRUE((*server)->WaitForChannelOwners());

  const pid_t client = ForkChild([&]() -> int {
    ChannelTransport transport(&(*server)->channel(0));
    auto lib = GrdLib::Connect(&transport, 1 << 20);
    if (!lib.ok()) return 10;
    const std::uint64_t before = lib->partition_size();
    if (!lib->GrowPartition().ok()) return 11;
    if (lib->partition_size() != 2 * before) return 12;
    return 0;  // exit WITHOUT disconnect: the slot must stay published
  });
  ASSERT_EQ(WaitExit(client), 0);

  // The worker's in-place doubling is visible to this (parent) process
  // through the SharedRegion bounds — the cross-process BoundsTable story.
  SharedServingState& state = (*server)->state();
  ASSERT_EQ(state.ActiveSessions(), 1u);
  SharedSessionSlot* slot = nullptr;
  for (std::uint32_t i = 0; i < options.layout.max_sessions && !slot; ++i)
    if (state.session_slot(i).state.load() != 0) slot = &state.session_slot(i);
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->partition_size.load(), 2ull << 20);
  EXPECT_NE(slot->partition_base.load(), 0u);
  (*server)->Stop();
}

// The SharedRegion span arena survives its writer: a worker SIGKILLed
// mid-kernel leaves its committed spans — including the unterminated 'B'
// execution span — readable by the parent, with no torn records. This is
// the crash-forensics story of the tracing tentpole.
TEST(ProcessModeTest, KilledWorkerSpansAreFlushedFromSharedArena) {
  obs::TraceRecorder::Instance().Reset();

  ProcessServerOptions options;
  options.workers = 1;
  options.channels = 1;
  options.respawn = false;
  options.manager.tracing_enabled = true;
  options.manager.max_kernel_instructions = 1ull << 40;
  options.layout.ring_bytes = 1 << 20;
  auto server = ProcessServer::Create(options);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());
  ASSERT_TRUE((*server)->WaitForChannelOwners());

  int ready[2];  // client -> test: "spin launch is next"
  ASSERT_EQ(pipe(ready), 0);

  // The client forked after Start() inherits the arena binding too, so its
  // client.* spans land in the same shared arena as the worker's.
  const pid_t client = ForkChild([&]() -> int {
    ChannelTransport transport(&(*server)->channel(0));
    auto lib = GrdLib::Connect(&transport, 8 << 20);
    if (!lib.ok()) return 10;
    auto module = lib->cuModuleLoadData(kSpinTailPtx);
    if (!module.ok()) return 11;
    auto spin = lib->cuModuleGetFunction(*module, "spintail");
    if (!spin.ok()) return 12;
    DevicePtr buf = 0;
    if (!lib->cudaMalloc(&buf, 4096).ok()) return 13;
    if (write(ready[1], "L", 1) != 1) return 14;
    simcuda::LaunchConfig config;
    config.grid = {4, 1, 1};
    config.block = {1, 1, 1};
    const Status killed =
        lib->cudaLaunchKernel(*spin, config, {KernelArg::U64(buf)});
    if (killed.ok() || killed.code() != StatusCode::kUnavailable) return 15;
    return 0;
  });

  close(ready[1]);
  char go = 0;
  ASSERT_EQ(read(ready[0], &go, 1), 1)
      << "client exited before arming the spin launch";
  ipc::Channel& channel = (*server)->channel(0);
  ASSERT_TRUE(PollUntil(
      [&] {
        return channel.request().messages_read() >
               channel.response().messages_written();
      },
      10'000));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_EQ(kill((*server)->worker_pid(0), SIGKILL), 0);
  EXPECT_EQ(WaitExit(client), 0);
  SharedServingState& state = (*server)->state();
  ASSERT_TRUE(PollUntil([&] { return state.FailedSessions() == 1; }, 5000));

  // The supervisor commits the worker.killed instant after it fails the
  // sessions (the condition polled above) and unblocks waiters, so poll the
  // async trace sink until the mark lands before snapshotting.
  std::vector<obs::SpanRecord> spans;
  ASSERT_TRUE(PollUntil(
      [&] {
        spans.clear();
        obs::TraceRecorder::Instance().Collect(&spans);
        for (const obs::SpanRecord& rec : spans)
          if (std::strcmp(rec.name, "worker.killed") == 0) return true;
        return false;
      },
      5000))
      << "worker.killed instant never reached the shared arena";

  // Only whole records surface: the commit-word protocol means a torn
  // record is invisible, never garbled.
  ASSERT_FALSE(spans.empty());
  for (const obs::SpanRecord& rec : spans) {
    EXPECT_TRUE(rec.phase == 'X' || rec.phase == 'B' || rec.phase == 'i')
        << rec.phase;
    EXPECT_NE(rec.name[0], '\0');
    EXPECT_EQ(rec.name[obs::SpanRecord::kNameCap - 1], '\0');
    EXPECT_NE(rec.begin_ns, 0u);
    EXPECT_GT(rec.pid, 0);
  }

  // The kill mid-kernel left an execution span opened ('B') and never
  // completed: no 'X' record shares its span id. It carries the dead
  // worker's pid, not ours.
  const obs::SpanRecord* unterminated = nullptr;
  for (const obs::SpanRecord& rec : spans) {
    if (rec.phase != 'B' || std::strncmp(rec.name, "exec.t", 6) != 0) continue;
    bool completed = false;
    for (const obs::SpanRecord& other : spans)
      if (other.phase == 'X' && other.span_id == rec.span_id) completed = true;
    if (!completed) unterminated = &rec;
  }
  ASSERT_NE(unterminated, nullptr)
      << "no unterminated exec span from the killed worker";
  EXPECT_NE(unterminated->pid, getpid());

  // The worker got as far as serving the session setup: its dispatch spans
  // were committed before the kill...
  bool worker_dispatch = false;
  for (const obs::SpanRecord& rec : spans)
    if (std::strcmp(rec.name, "ModuleLoadData") == 0) worker_dispatch = true;
  EXPECT_TRUE(worker_dispatch);
  // ...and the supervisor marked the death in the same trace stream.
  bool killed_mark = false;
  for (const obs::SpanRecord& rec : spans)
    if (std::strcmp(rec.name, "worker.killed") == 0 && rec.phase == 'i')
      killed_mark = true;
  EXPECT_TRUE(killed_mark);

  // The export path renders the evidence: an unterminated "exec." slice.
  const std::string json = obs::TraceExporter::ToChromeJson(spans);
  EXPECT_NE(json.find("\"name\":\"exec.t"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);

  // Unbind before the SharedRegion goes away with the server.
  obs::TraceRecorder::Instance().Reset();
  (*server)->Stop();
  close(ready[0]);
}

}  // namespace
}  // namespace grd::guardian
