#include <gtest/gtest.h>

#include "simgpu/device_spec.hpp"
#include "simgpu/engine.hpp"
#include "simgpu/memory.hpp"
#include "simgpu/timing.hpp"

namespace grd::simgpu {
namespace {

TEST(DeviceSpec, Table2Quadro) {
  const DeviceSpec spec = QuadroRtxA4000();
  EXPECT_EQ(spec.sms, 48);
  EXPECT_EQ(spec.cuda_cores, 6144);
  EXPECT_EQ(spec.l1_kb, 128);
  EXPECT_EQ(spec.l2_kb, 4096);
  EXPECT_EQ(spec.global_mem_bytes, 16ull << 30);
  EXPECT_EQ(spec.regs_per_thread, 255);
  EXPECT_TRUE(spec.ecc);
  EXPECT_EQ(spec.l1_hit_latency, 28);
}

TEST(DeviceSpec, Table2GeForce) {
  const DeviceSpec spec = GeForceRtx3080Ti();
  EXPECT_EQ(spec.sms, 80);
  EXPECT_EQ(spec.cuda_cores, 10240);
  EXPECT_EQ(spec.l2_kb, 6144);
  EXPECT_EQ(spec.global_mem_bytes, 12ull << 30);
  EXPECT_FALSE(spec.ecc);
  EXPECT_DOUBLE_EQ(spec.global_bw_gbps, 912.0);
}

TEST(GlobalMemory, ReadWriteRoundTrip) {
  GlobalMemory mem(1 << 20);
  const std::uint32_t v = 0xDEADBEEF;
  ASSERT_TRUE(mem.Store<std::uint32_t>(4096, v).ok());
  auto r = mem.Load<std::uint32_t>(4096);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, v);
}

TEST(GlobalMemory, UntouchedReadsZero) {
  GlobalMemory mem(1 << 20);
  auto r = mem.Load<std::uint64_t>(123456);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 0u);
}

TEST(GlobalMemory, CrossPageAccess) {
  GlobalMemory mem(1 << 20);
  // 64 KiB pages: write 8 bytes straddling the first boundary.
  const std::uint64_t addr = 64 * 1024 - 4;
  const std::uint64_t v = 0x1122334455667788ull;
  ASSERT_TRUE(mem.Store<std::uint64_t>(addr, v).ok());
  auto r = mem.Load<std::uint64_t>(addr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, v);
}

TEST(GlobalMemory, OutOfDeviceRangeFails) {
  GlobalMemory mem(1 << 20);
  EXPECT_EQ(mem.Store<std::uint32_t>((1 << 20) - 2, 1).code(),
            StatusCode::kOutOfRange);
  EXPECT_FALSE(mem.Load<std::uint32_t>(1 << 20).ok());
  std::uint8_t buf[4];
  EXPECT_FALSE(mem.Read((1u << 20) - 1, buf, 4).ok());
}

TEST(GlobalMemory, FillAndCopy) {
  GlobalMemory mem(1 << 20);
  ASSERT_TRUE(mem.Fill(100, 0xAB, 64).ok());
  auto r = mem.Load<std::uint8_t>(163);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 0xAB);
  ASSERT_TRUE(mem.Copy(5000, 100, 64).ok());
  auto r2 = mem.Load<std::uint8_t>(5063);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, 0xAB);
}

TEST(GlobalMemory, SparseResidency) {
  GlobalMemory mem(16ull << 30);  // a "16 GB" device costs nothing up front
  EXPECT_EQ(mem.resident_bytes(), 0u);
  ASSERT_TRUE(mem.Store<std::uint32_t>(8ull << 30, 7).ok());
  EXPECT_EQ(mem.resident_bytes(), 64u * 1024);
}

TEST(Timing, AverageLatencyMatchesFigure5Extremes) {
  const TimingModel model(QuadroRtxA4000());
  EXPECT_DOUBLE_EQ(model.AverageAccessLatency(CacheProfile::AllL1()), 28.0);
  EXPECT_DOUBLE_EQ(model.AverageAccessLatency(CacheProfile::AllGlobal()),
                   285.0);
}

TEST(Timing, BitwiseCostIsTwoInstructions) {
  const TimingModel model(QuadroRtxA4000());
  EXPECT_DOUBLE_EQ(
      model.ProtectionCyclesPerAccess(ProtectionMode::kFencingBitwise, 0.0),
      8.0);
  // base+offset mode: four instructions (paper §4.3).
  EXPECT_DOUBLE_EQ(
      model.ProtectionCyclesPerAccess(ProtectionMode::kFencingBitwise, 1.0),
      16.0);
}

TEST(Timing, ModuloCostIsSevenInstructions) {
  const TimingModel model(QuadroRtxA4000());
  EXPECT_DOUBLE_EQ(
      model.ProtectionCyclesPerAccess(ProtectionMode::kFencingModulo, 0.0),
      28.0);
}

TEST(Timing, CheckingCostIs80CyclesPerBound) {
  // 80 cycles per conditional check (paper §4.4), two bounds per access.
  const TimingModel model(QuadroRtxA4000());
  EXPECT_DOUBLE_EQ(
      model.ProtectionCyclesPerAccess(ProtectionMode::kChecking, 0.0), 160.0);
}

TEST(Timing, PaperSection74OverheadBands) {
  // §7.4: all-L1 data -> 28%..57% overhead; all-global -> 2%..5%.
  const TimingModel model(QuadroRtxA4000());
  KernelProfile all_l1;
  all_l1.loads = 100;
  all_l1.stores = 0;
  all_l1.alu_ops = 0;
  all_l1.cache = CacheProfile::AllL1();
  const double l1_overhead =
      model.RelativeOverhead(all_l1, ProtectionMode::kFencingBitwise);
  EXPECT_GT(l1_overhead, 0.25);
  EXPECT_LT(l1_overhead, 0.60);

  KernelProfile all_l1_offset = all_l1;
  all_l1_offset.offset_mode_fraction = 1.0;
  const double l1_offset_overhead =
      model.RelativeOverhead(all_l1_offset, ProtectionMode::kFencingBitwise);
  EXPECT_GT(l1_offset_overhead, 0.50);  // "up to 57%"

  KernelProfile global;
  global.loads = 100;
  global.cache = CacheProfile::AllGlobal();
  const double global_overhead =
      model.RelativeOverhead(global, ProtectionMode::kFencingBitwise);
  EXPECT_GT(global_overhead, 0.015);
  EXPECT_LT(global_overhead, 0.05);
}

TEST(Timing, ModeOrdering) {
  // checking > modulo > bitwise > none for any profile.
  const TimingModel model(QuadroRtxA4000());
  KernelProfile p;
  p.loads = 40;
  p.stores = 20;
  p.alu_ops = 120;
  const double none = model.ThreadCycles(p, ProtectionMode::kNone);
  const double bitwise =
      model.ThreadCycles(p, ProtectionMode::kFencingBitwise);
  const double modulo = model.ThreadCycles(p, ProtectionMode::kFencingModulo);
  const double checking = model.ThreadCycles(p, ProtectionMode::kChecking);
  EXPECT_LT(none, bitwise);
  EXPECT_LT(bitwise, modulo);
  EXPECT_LT(modulo, checking);
}

TEST(Engine, SingleKernelRunsAtOwnParallelism) {
  const DeviceSpec spec = QuadroRtxA4000();
  SharingEngine engine(spec);
  const auto s = engine.AddStream();
  // 1000 threads, 100 cycles each -> alone: 100000 lane-cycles / 1000 lanes.
  engine.Enqueue(s, MakeKernelOp(spec, 100.0, 1000));
  const auto result = engine.Run();
  EXPECT_NEAR(result.total_cycles, 100.0, 1e-6);
}

TEST(Engine, LowOccupancyKernelsOverlapPerfectly) {
  // Two kernels each needing 1000 lanes on a 6144-lane GPU: spatial sharing
  // runs them fully in parallel (the Figure 6 B/D "2x" scenario).
  const DeviceSpec spec = QuadroRtxA4000();
  SharingEngine engine(spec);
  const auto s1 = engine.AddStream();
  const auto s2 = engine.AddStream();
  engine.Enqueue(s1, MakeKernelOp(spec, 100.0, 1000));
  engine.Enqueue(s2, MakeKernelOp(spec, 100.0, 1000));
  const auto result = engine.Run();
  EXPECT_NEAR(result.total_cycles, 100.0, 1e-6);
}

TEST(Engine, SaturatingKernelsContend) {
  // Two kernels each able to use the whole GPU: co-running them halves each
  // one's rate; makespan equals serial execution.
  const DeviceSpec spec = QuadroRtxA4000();
  SharingEngine engine(spec);
  const auto s1 = engine.AddStream();
  const auto s2 = engine.AddStream();
  engine.Enqueue(s1, MakeKernelOp(spec, 100.0, 100000));
  engine.Enqueue(s2, MakeKernelOp(spec, 100.0, 100000));
  const auto result = engine.Run();
  const double alone = 100.0 * 100000 / spec.cuda_cores;
  EXPECT_NEAR(result.total_cycles, 2 * alone, 1.0);
}

TEST(Engine, StreamOrderIsPreserved) {
  const DeviceSpec spec = QuadroRtxA4000();
  SharingEngine engine(spec);
  const auto s = engine.AddStream();
  engine.Enqueue(s, GpuOp::Delay(50.0));
  engine.Enqueue(s, MakeKernelOp(spec, 100.0, 64));
  const auto result = engine.Run();
  EXPECT_NEAR(result.total_cycles, 150.0, 1e-6);
}

TEST(Engine, MemcpySharesPcie) {
  const DeviceSpec spec = QuadroRtxA4000();
  SharingEngine engine(spec);
  const auto s1 = engine.AddStream();
  const auto s2 = engine.AddStream();
  const double bytes = 1600.0;
  engine.Enqueue(s1, GpuOp::Memcpy(bytes, spec.pcie_bytes_per_cycle));
  engine.Enqueue(s2, GpuOp::Memcpy(bytes, spec.pcie_bytes_per_cycle));
  const auto result = engine.Run();
  // Both want the full link: each gets half -> 2x single-transfer time.
  EXPECT_NEAR(result.total_cycles, 2 * bytes / spec.pcie_bytes_per_cycle,
              1e-6);
}

TEST(Engine, MemcpyAndKernelOverlap) {
  const DeviceSpec spec = QuadroRtxA4000();
  SharingEngine engine(spec);
  const auto s1 = engine.AddStream();
  const auto s2 = engine.AddStream();
  engine.Enqueue(s1, MakeKernelOp(spec, 100.0, 64));
  engine.Enqueue(s2, GpuOp::Memcpy(100.0 * spec.pcie_bytes_per_cycle,
                                   spec.pcie_bytes_per_cycle));
  const auto result = engine.Run();
  // Different resources: perfect overlap.
  EXPECT_NEAR(result.total_cycles, 100.0, 1e-6);
}

TEST(Engine, TimeSharingCostsContextSwitches) {
  // Time-sharing expressed as one serialized stream with switch delays.
  const DeviceSpec spec = QuadroRtxA4000();
  SharingEngine engine(spec);
  const auto s = engine.AddStream();
  engine.Enqueue(s, MakeKernelOp(spec, 100.0, 1000));
  engine.Enqueue(s, GpuOp::Delay(static_cast<double>(spec.context_switch_cycles)));
  engine.Enqueue(s, MakeKernelOp(spec, 100.0, 1000));
  const auto serial = engine.Run();

  SharingEngine spatial(spec);
  const auto a = spatial.AddStream();
  const auto b = spatial.AddStream();
  spatial.Enqueue(a, MakeKernelOp(spec, 100.0, 1000));
  spatial.Enqueue(b, MakeKernelOp(spec, 100.0, 1000));
  const auto parallel = spatial.Run();
  EXPECT_GT(serial.total_cycles, 2 * parallel.total_cycles);
}

TEST(Engine, PerStreamFinishTimes) {
  const DeviceSpec spec = QuadroRtxA4000();
  SharingEngine engine(spec);
  const auto s1 = engine.AddStream();
  const auto s2 = engine.AddStream();
  engine.Enqueue(s1, MakeKernelOp(spec, 50.0, 64));
  engine.Enqueue(s2, MakeKernelOp(spec, 100.0, 64));
  const auto result = engine.Run();
  ASSERT_EQ(result.stream_finish.size(), 2u);
  EXPECT_NEAR(result.stream_finish[0], 50.0, 1e-6);
  EXPECT_NEAR(result.stream_finish[1], 100.0, 1e-6);
}

TEST(Engine, UtilizationReported) {
  const DeviceSpec spec = QuadroRtxA4000();
  SharingEngine engine(spec);
  const auto s = engine.AddStream();
  engine.Enqueue(s, MakeKernelOp(spec, 100.0, spec.cuda_cores));
  const auto result = engine.Run();
  EXPECT_NEAR(result.Utilization(spec), 1.0, 1e-6);
}

}  // namespace
}  // namespace grd::simgpu
