// Tests for the paper's extension / future-work features: static safety
// analysis (§2.2), kernel revocation (TReM [53]), progressive partition
// growth (§4.4), and manager scheduling policies (§4.2.4).
#include <gtest/gtest.h>

#include "guardian/grdlib.hpp"
#include "guardian/manager.hpp"
#include "guardian/transport.hpp"
#include "ptx/generator.hpp"
#include "ptx/parser.hpp"
#include "ptx/printer.hpp"
#include "ptxpatcher/analyzer.hpp"
#include "simgpu/device_spec.hpp"

namespace grd::guardian {
namespace {

using ptxexec::KernelArg;
using simcuda::DevicePtr;

// --- static safety analysis ---------------------------------------------

TEST(Analyzer, KernelsWithGlobalAccessesAreUnsafe) {
  for (const auto& kernel : ptx::MakeSampleModule().kernels) {
    const auto report = ptxpatcher::AnalyzeKernelSafety(kernel);
    const auto stats = ptx::ComputeStats(kernel);
    const bool has_risk = stats.loads + stats.stores + stats.indirect_branches;
    EXPECT_EQ(report.safe, !has_risk) << kernel.name;
    if (!report.safe) EXPECT_FALSE(report.reasons.empty());
  }
}

TEST(Analyzer, PureComputeKernelIsSafe) {
  const auto module = ptx::Parse(R"(
.version 7.7
.target sm_86
.address_size 64
.visible .entry purec(.param .u32 p0)
{
    .reg .b32 %r<4>;
    ld.param.u32 %r1, [p0];
    mov.u32 %r2, %tid.x;
    add.s32 %r3, %r1, %r2;
    ret;
}
)");
  ASSERT_TRUE(module.ok());
  EXPECT_TRUE(ptxpatcher::IsStaticallySafe(module->kernels[0]));
}

TEST(Analyzer, SharedOnlyKernelIsSafe) {
  // Shared memory is intra-block private (§3): no sandboxing needed.
  const auto module = ptx::Parse(R"(
.version 7.7
.target sm_86
.address_size 64
.visible .entry sharedonly()
{
    .shared .align 4 .b8 buf[64];
    .reg .b32 %r<3>;
    .reg .b64 %rd<2>;
    mov.u64 %rd1, buf;
    mov.u32 %r1, 7;
    st.shared.u32 [%rd1], %r1;
    ld.shared.u32 %r2, [%rd1];
    ret;
}
)");
  ASSERT_TRUE(module.ok()) << module.status();
  EXPECT_TRUE(ptxpatcher::IsStaticallySafe(module->kernels[0]));
}

TEST(Analyzer, SkipSafeOptionLeavesKernelUntouched) {
  const auto module = ptx::Parse(R"(
.version 7.7
.target sm_86
.address_size 64
.visible .entry purec()
{
    .reg .b32 %r<3>;
    mov.u32 %r1, %tid.x;
    add.s32 %r2, %r1, 1;
    ret;
}
)");
  ASSERT_TRUE(module.ok());
  ptxpatcher::PatchOptions options;
  options.skip_statically_safe = true;
  auto patched = ptxpatcher::PatchKernel(module->kernels[0], options);
  ASSERT_TRUE(patched.ok());
  EXPECT_EQ(patched->kernel, module->kernels[0]);  // byte-identical
  EXPECT_EQ(patched->stats.skipped_safe_kernels, 1u);
  EXPECT_EQ(patched->stats.extra_params, 0);

  // Unsafe kernels are still instrumented under the same option.
  auto unsafe = ptxpatcher::PatchKernel(ptx::MakeStoreTidKernel(), options);
  ASSERT_TRUE(unsafe.ok());
  EXPECT_EQ(unsafe->stats.skipped_safe_kernels, 0u);
  EXPECT_EQ(unsafe->stats.extra_params, 2);
}

// --- kernel revocation ----------------------------------------------------

TEST(Revocation, EndlessKernelIsTerminatedAndContained) {
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  ManagerOptions options;
  options.max_kernel_instructions = 50'000;
  GrdManager manager(&gpu, options);
  LoopbackTransport transport(&manager);
  auto spinner = GrdLib::Connect(&transport, 1 << 20);
  auto victim = GrdLib::Connect(&transport, 1 << 20);
  ASSERT_TRUE(spinner.ok() && victim.ok());

  auto module = spinner->cuModuleLoadData(R"(
.version 7.7
.target sm_86
.address_size 64
.visible .entry spin()
{
    .reg .b32 %r<2>;
LOOP:
    add.s32 %r1, %r1, 1;
    bra LOOP;
}
)");
  ASSERT_TRUE(module.ok()) << module.status();
  auto fn = spinner->cuModuleGetFunction(*module, "spin");
  ASSERT_TRUE(fn.ok());
  const Status s = spinner->cudaLaunchKernel(*fn, simcuda::LaunchConfig{}, {});
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);  // revoked
  EXPECT_EQ(manager.stats().faults_contained, 1u);
  // Budget kill is a last resort now: the kernel was revoked-and-requeued
  // once (keeping its checkpoint) before the failure became final.
  EXPECT_EQ(manager.stats().budget_requeues, 1u);

  // The spinner is failed; the co-tenant is unaffected.
  DevicePtr p = 0;
  EXPECT_EQ(spinner->cudaMalloc(&p, 64).code(), StatusCode::kAborted);
  EXPECT_TRUE(victim->cudaMalloc(&p, 64).ok());
}

// --- progressive partition growth ----------------------------------------

TEST(PartitionGrowth, DoublesAndKeepsMaskInvariant) {
  PartitionAllocator alloc(1ull << 30);
  auto p = alloc.CreatePartition(1ull << 20);
  ASSERT_TRUE(p.ok());
  const std::uint64_t base = p->base;
  auto grown = alloc.GrowPartition(base);
  ASSERT_TRUE(grown.ok()) << grown.status();
  EXPECT_EQ(grown->size, 2ull << 20);
  EXPECT_EQ(grown->base, base);
  EXPECT_TRUE(IsAligned(grown->base, grown->size));
  // Allocations beyond the original size now succeed.
  std::uint64_t total = 0;
  while (true) {
    auto a = alloc.AllocateIn(base, 256 << 10);
    if (!a.ok()) break;
    total += 256 << 10;
  }
  EXPECT_GE(total, (2ull << 20) - (512 << 10));
}

TEST(PartitionGrowth, FailsWhenNeighbourOccupied) {
  // headroom 0: partitions align exactly to their own size and pack tightly,
  // so a same-size neighbour can occupy the range growth would need. Use a
  // headroom-2 allocator and park a partition right after the first by
  // exhausting alignment slack.
  PartitionAllocator alloc(16ull << 20, /*growth_headroom=*/1);
  auto p1 = alloc.CreatePartition(1ull << 20);
  ASSERT_TRUE(p1.ok());
  auto grown = alloc.GrowPartition(p1->base);
  ASSERT_TRUE(grown.ok());
  // p1 now spans its full 2 MiB alignment bucket [base, base+2M); the next
  // partition lands at base+2M. A second growth needs [base+2M, base+4M)
  // which is (a) misaligned AND would be (b) occupied.
  auto p2 = alloc.CreatePartition(2ull << 20);
  ASSERT_TRUE(p2.ok());
  EXPECT_FALSE(alloc.GrowPartition(p1->base).ok());
}

TEST(PartitionGrowth, SecondGrowthBlockedByAlignment) {
  // With headroom 1 a partition can double exactly once; the second
  // doubling would break the mask invariant (base not aligned to 4x size).
  PartitionAllocator alloc(1ull << 30, /*growth_headroom=*/1);
  auto p = alloc.CreatePartition(1ull << 20);
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(alloc.GrowPartition(p->base).ok());
  const auto second = alloc.GrowPartition(p->base);
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PartitionGrowth, HeadroomTwoAllowsTwoDoublings) {
  PartitionAllocator alloc(1ull << 30, /*growth_headroom=*/2);
  auto p = alloc.CreatePartition(1ull << 20);
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(alloc.GrowPartition(p->base).ok());
  auto grown = alloc.GrowPartition(p->base);
  ASSERT_TRUE(grown.ok()) << grown.status();
  EXPECT_EQ(grown->size, 4ull << 20);
  EXPECT_TRUE(IsAligned(grown->base, grown->size));
}

TEST(PartitionGrowth, EndToEndThroughGrdLib) {
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  GrdManager manager(&gpu, ManagerOptions{});
  LoopbackTransport transport(&manager);
  auto lib = GrdLib::Connect(&transport, 1 << 20);
  ASSERT_TRUE(lib.ok());
  const std::uint64_t old_size = lib->partition_size();

  // Fill the partition, grow, then allocate more.
  DevicePtr p = 0;
  ASSERT_TRUE(lib->cudaMalloc(&p, 900 << 10).ok());
  DevicePtr q = 0;
  EXPECT_EQ(lib->cudaMalloc(&q, 900 << 10).code(), StatusCode::kOutOfMemory);
  ASSERT_TRUE(lib->GrowPartition().ok());
  EXPECT_EQ(lib->partition_size(), 2 * old_size);
  EXPECT_TRUE(lib->cudaMalloc(&q, 900 << 10).ok());

  // Kernels launched after growth use the new mask: an address in the grown
  // half is now reachable in-bounds.
  auto module = lib->cuModuleLoadData(ptx::Print(ptx::MakeSampleModule()));
  auto fn = lib->cuModuleGetFunction(*module, "oob_writer");
  ASSERT_TRUE(fn.ok());
  const std::uint64_t target_in_grown_half = q;  // beyond the original size
  ASSERT_TRUE(lib->cudaLaunchKernel(
                     *fn, simcuda::LaunchConfig{},
                     {KernelArg::U64(lib->partition_base()),
                      KernelArg::U64(target_in_grown_half -
                                     lib->partition_base()),
                      KernelArg::U32(42)})
                  .ok());
  std::uint32_t v = 0;
  ASSERT_TRUE(lib->cudaMemcpy(&v, target_in_grown_half, 4,
                              simcuda::MemcpyKind::kDeviceToHost)
                  .ok());
  EXPECT_EQ(v, 42u);  // landed exactly where aimed: in-bounds post-growth
}

// --- scheduling policies ---------------------------------------------------

class SchedulingTest : public ::testing::Test {
 protected:
  SchedulingTest()
      : gpu_(simgpu::QuadroRtxA4000()), manager_(&gpu_, ManagerOptions{}) {}

  // Registers a client directly and returns its id.
  ClientId Register() {
    ipc::Writer request;
    protocol::WriteHeader(request, protocol::Op::kRegisterClient, 0);
    request.Put<std::uint64_t>(1 << 20);
    const auto response = manager_.HandleRequest(std::move(request).Take());
    auto reader = protocol::DecodeResponse(response);
    if (!reader.ok()) return 0;
    auto id = reader->Get<std::uint64_t>();
    return id.ok() ? *id : 0;
  }

  // Enqueues `n` device-synchronize requests for `client` on `channel`.
  void EnqueueSyncs(ipc::Channel& channel, ClientId client, int n) {
    for (int i = 0; i < n; ++i) {
      ipc::Writer request;
      protocol::WriteHeader(request, protocol::Op::kDeviceSynchronize, client);
      ASSERT_TRUE(channel.request().Write(std::move(request).Take()).ok());
    }
  }

  static std::size_t Drain(ipc::Channel& channel) {
    std::size_t count = 0;
    while (channel.response().TryRead().ok()) ++count;
    return count;
  }

  simcuda::Gpu gpu_;
  GrdManager manager_;
};

TEST_F(SchedulingTest, RoundRobinServesOnePerChannelPerSweep) {
  ipc::HeapChannel a, b;
  ManagerServer server(&manager_);
  server.AddChannel(&a.channel());
  server.AddChannel(&b.channel());
  const ClientId ca = Register(), cb = Register();
  EnqueueSyncs(a.channel(), ca, 3);
  EnqueueSyncs(b.channel(), cb, 3);
  EXPECT_EQ(server.ServeOnce(), 2u);  // one from each
  EXPECT_EQ(Drain(a.channel()), 1u);
  EXPECT_EQ(Drain(b.channel()), 1u);
}

TEST_F(SchedulingTest, PriorityServesHighFirst) {
  ipc::HeapChannel low, high;
  ManagerServer server(&manager_, ManagerServer::Policy::kPriority);
  server.AddChannel(&low.channel(), 1.0, /*priority=*/0);
  server.AddChannel(&high.channel(), 1.0, /*priority=*/5);
  const ClientId cl = Register(), ch = Register();
  EnqueueSyncs(low.channel(), cl, 2);
  EnqueueSyncs(high.channel(), ch, 2);
  // First two sweeps drain the high-priority channel entirely.
  EXPECT_EQ(server.ServeOnce(), 1u);
  EXPECT_EQ(server.ServeOnce(), 1u);
  EXPECT_EQ(Drain(high.channel()), 2u);
  EXPECT_EQ(Drain(low.channel()), 0u);
  // Then the low-priority channel gets served.
  EXPECT_EQ(server.ServeOnce(), 1u);
  EXPECT_EQ(Drain(low.channel()), 1u);
}

TEST_F(SchedulingTest, WeightedFairHonoursWeights) {
  ipc::HeapChannel heavy, light;
  ManagerServer server(&manager_, ManagerServer::Policy::kWeightedFair);
  server.AddChannel(&heavy.channel(), /*weight=*/3.0);
  server.AddChannel(&light.channel(), /*weight=*/1.0);
  const ClientId ch = Register(), cl = Register();
  EnqueueSyncs(heavy.channel(), ch, 9);
  EnqueueSyncs(light.channel(), cl, 9);
  // One sweep: heavy gets 3, light gets 1.
  EXPECT_EQ(server.ServeOnce(), 4u);
  EXPECT_EQ(Drain(heavy.channel()), 3u);
  EXPECT_EQ(Drain(light.channel()), 1u);
  // Over 3 sweeps: 9 vs 3.
  (void)server.ServeOnce();
  (void)server.ServeOnce();
  EXPECT_EQ(Drain(heavy.channel()), 6u);
  EXPECT_EQ(Drain(light.channel()), 2u);
}

}  // namespace
}  // namespace grd::guardian
