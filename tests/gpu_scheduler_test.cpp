// Stream-aware execution engine coverage: same-stream FIFO ordering,
// cross-stream/cross-tenant overlap under the SM-occupancy scheduler, event
// dependencies, stream/event lifecycle, mid-flight fault containment and
// batched IPC. Wall-clock overlap is made deterministic by dilating modeled
// device time into executor sleeps (ManagerOptions::device_time_ns_per_cycle).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "guardian/grdlib.hpp"
#include "guardian/manager.hpp"
#include "guardian/transport.hpp"
#include "ptx/generator.hpp"
#include "ptx/printer.hpp"
#include "simgpu/device_spec.hpp"
#include "simgpu/timing.hpp"

namespace grd::guardian {
namespace {

using ptxexec::KernelArg;
using simcuda::DevicePtr;
using simcuda::MemcpyKind;

std::string SamplePtx() { return ptx::Print(ptx::MakeSampleModule()); }

// ~10 µs of wall time per modeled device cycle-equivalent: big-grid kernels
// sleep tens of milliseconds, giving overlap assertions a wide margin.
constexpr double kSlowDeviceScale = 10'000.0;

class SchedulerTest : public ::testing::Test {
 protected:
  void Init(ManagerOptions options) {
    gpu_ = std::make_unique<simcuda::Gpu>(simgpu::QuadroRtxA4000());
    manager_ = std::make_unique<GrdManager>(gpu_.get(), options);
    transport_ = std::make_unique<LoopbackTransport>(manager_.get());
  }

  Result<GrdLib> Connect(std::uint64_t bytes = 16ull << 20) {
    return GrdLib::Connect(transport_.get(), bytes);
  }

  Result<simcuda::FunctionId> LoadKernel(GrdLib& lib,
                                         const std::string& kernel) {
    GRD_ASSIGN_OR_RETURN(simcuda::ModuleId module,
                         lib.cuModuleLoadData(SamplePtx()));
    return lib.cuModuleGetFunction(module, kernel);
  }

  // Launches copyk(src -> dst, n) on `stream` with one 256-wide block per
  // 256 elements.
  Status LaunchCopy(GrdLib& lib, simcuda::FunctionId fn, DevicePtr src,
                    DevicePtr dst, std::uint32_t n, simcuda::StreamId stream) {
    simcuda::LaunchConfig config;
    config.block = {256, 1, 1};
    config.grid = {(n + 255) / 256, 1, 1};
    config.stream = stream;
    return lib.cudaLaunchKernel(
        fn, config, {KernelArg::U64(src), KernelArg::U64(dst),
                     KernelArg::U32(n)});
  }

  std::unique_ptr<simcuda::Gpu> gpu_;
  std::unique_ptr<GrdManager> manager_;
  std::unique_ptr<LoopbackTransport> transport_;
};

TEST(SmFootprintTest, OccupancyModelMatchesSpec) {
  const auto spec = simgpu::QuadroRtxA4000();
  // One 256-thread block fits on one SM.
  EXPECT_EQ(simgpu::SmFootprint(spec, 1, 256), 1);
  // 1536 threads per SM: six 256-thread blocks co-reside per SM.
  EXPECT_EQ(simgpu::SmFootprint(spec, 12, 256), 2);
  // A grid larger than the device clamps to all SMs.
  EXPECT_EQ(simgpu::SmFootprint(spec, 100000, 1024), spec.sms);
  // Degenerate dims still occupy one SM.
  EXPECT_EQ(simgpu::SmFootprint(spec, 0, 0), 1);
}

TEST_F(SchedulerTest, SameStreamFifoOrdering) {
  Init(ManagerOptions{});
  auto lib = Connect();
  ASSERT_TRUE(lib.ok()) << lib.status();
  auto fn = LoadKernel(*lib, "copyk");
  ASSERT_TRUE(fn.ok()) << fn.status();

  constexpr std::uint32_t n = 512;
  DevicePtr a = 0, b = 0, c = 0, d = 0;
  for (DevicePtr* p : {&a, &b, &c, &d})
    ASSERT_TRUE(lib->cudaMalloc(p, n * 4).ok());
  std::vector<std::uint32_t> xs(n);
  for (std::uint32_t i = 0; i < n; ++i) xs[i] = i * 7 + 1;
  ASSERT_TRUE(lib->cudaMemcpyH2D(a, xs.data(), n * 4).ok());

  simcuda::StreamId stream = 0;
  ASSERT_TRUE(lib->cudaStreamCreate(&stream).ok());
  // The chain a->b->c->d only produces d==a when the three kernels run in
  // exactly the enqueue order.
  ASSERT_TRUE(LaunchCopy(*lib, *fn, a, b, n, stream).ok());
  ASSERT_TRUE(LaunchCopy(*lib, *fn, b, c, n, stream).ok());
  ASSERT_TRUE(LaunchCopy(*lib, *fn, c, d, n, stream).ok());
  ASSERT_TRUE(lib->cudaStreamSynchronize(stream).ok());

  std::vector<std::uint32_t> out(n);
  ASSERT_TRUE(
      lib->cudaMemcpy(out.data(), d, n * 4, MemcpyKind::kDeviceToHost).ok());
  EXPECT_EQ(out, xs);
  EXPECT_GE(manager_->stats().kernels_enqueued, 3u);
}

TEST_F(SchedulerTest, CrossTenantKernelsOverlap) {
  ManagerOptions options;
  options.scheduler_executors = 4;
  options.device_time_ns_per_cycle = kSlowDeviceScale;
  Init(options);
  auto alice = Connect();
  auto bob = Connect();
  ASSERT_TRUE(alice.ok() && bob.ok());
  auto alice_fn = LoadKernel(*alice, "copyk");
  auto bob_fn = LoadKernel(*bob, "copyk");
  ASSERT_TRUE(alice_fn.ok() && bob_fn.ok());

  constexpr std::uint32_t n = 4096;
  DevicePtr asrc = 0, adst = 0, bsrc = 0, bdst = 0;
  ASSERT_TRUE(alice->cudaMalloc(&asrc, n * 4).ok());
  ASSERT_TRUE(alice->cudaMalloc(&adst, n * 4).ok());
  ASSERT_TRUE(bob->cudaMalloc(&bsrc, n * 4).ok());
  ASSERT_TRUE(bob->cudaMalloc(&bdst, n * 4).ok());
  std::vector<std::uint32_t> data(n, 0xA11CEu);
  ASSERT_TRUE(alice->cudaMemcpyH2D(asrc, data.data(), n * 4).ok());

  // Alice's big copy kernel sleeps tens of milliseconds of modeled device
  // time on its own stream; Bob's kernel is admitted meanwhile because the
  // combined SM footprint fits.
  simcuda::StreamId alice_stream = 0;
  ASSERT_TRUE(alice->cudaStreamCreate(&alice_stream).ok());
  ASSERT_TRUE(LaunchCopy(*alice, *alice_fn, asrc, adst, n, alice_stream).ok());
  ASSERT_TRUE(LaunchCopy(*bob, *bob_fn, bsrc, bdst, 256, 0).ok());

  ASSERT_TRUE(alice->cudaStreamSynchronize(alice_stream).ok());
  EXPECT_GE(manager_->stats().peak_resident_kernels, 2u)
      << "tenants' kernels never co-resided on the device";
  EXPECT_GE(manager_->stats().peak_sms_in_use, 2u);
  // Live introspection: everything synchronized, so the device is empty.
  EXPECT_EQ(manager_->scheduler().resident_kernels(), 0);
  EXPECT_EQ(manager_->scheduler().sms_in_use(), 0);

  std::vector<std::uint32_t> out(n);
  ASSERT_TRUE(
      alice->cudaMemcpy(out.data(), adst, n * 4, MemcpyKind::kDeviceToHost)
          .ok());
  EXPECT_EQ(out, data);
}

TEST_F(SchedulerTest, EventWaitOrdersCrossStreamWork) {
  ManagerOptions options;
  options.scheduler_executors = 4;
  options.device_time_ns_per_cycle = 2'000.0;
  Init(options);
  auto lib = Connect();
  ASSERT_TRUE(lib.ok());
  auto fn = LoadKernel(*lib, "copyk");
  ASSERT_TRUE(fn.ok());

  constexpr std::uint32_t n = 4096;
  DevicePtr a = 0, b = 0, c = 0;
  for (DevicePtr* p : {&a, &b, &c})
    ASSERT_TRUE(lib->cudaMalloc(p, n * 4).ok());
  std::vector<std::uint32_t> xs(n);
  for (std::uint32_t i = 0; i < n; ++i) xs[i] = i ^ 0x5A5A;
  ASSERT_TRUE(lib->cudaMemcpyH2D(a, xs.data(), n * 4).ok());

  simcuda::StreamId producer = 0, consumer = 0;
  ASSERT_TRUE(lib->cudaStreamCreate(&producer).ok());
  ASSERT_TRUE(lib->cudaStreamCreate(&consumer).ok());
  simcuda::EventId done = 0;
  ASSERT_TRUE(lib->cudaEventCreateWithFlags(&done, 0).ok());

  // producer: a -> b (slow); consumer: b -> c, gated on the event. Without
  // the cross-stream dependency the consumer would read b while it is still
  // zeros — the free executor would run it immediately.
  ASSERT_TRUE(LaunchCopy(*lib, *fn, a, b, n, producer).ok());
  ASSERT_TRUE(lib->cudaEventRecord(done, producer).ok());
  ASSERT_TRUE(lib->cudaStreamWaitEvent(consumer, done).ok());
  ASSERT_TRUE(LaunchCopy(*lib, *fn, b, c, n, consumer).ok());
  ASSERT_TRUE(lib->cudaStreamSynchronize(consumer).ok());

  std::vector<std::uint32_t> out(n);
  ASSERT_TRUE(
      lib->cudaMemcpy(out.data(), c, n * 4, MemcpyKind::kDeviceToHost).ok());
  EXPECT_EQ(out, xs);
}

TEST_F(SchedulerTest, EventSynchronizeWaitsForRecordedWork) {
  ManagerOptions options;
  options.scheduler_executors = 2;
  options.device_time_ns_per_cycle = 2'000.0;
  Init(options);
  auto lib = Connect();
  ASSERT_TRUE(lib.ok());
  auto fn = LoadKernel(*lib, "copyk");
  ASSERT_TRUE(fn.ok());

  constexpr std::uint32_t n = 4096;
  DevicePtr src = 0, dst = 0;
  ASSERT_TRUE(lib->cudaMalloc(&src, n * 4).ok());
  ASSERT_TRUE(lib->cudaMalloc(&dst, n * 4).ok());
  std::vector<std::uint32_t> xs(n, 42);
  ASSERT_TRUE(lib->cudaMemcpyH2D(src, xs.data(), n * 4).ok());

  simcuda::StreamId stream = 0;
  ASSERT_TRUE(lib->cudaStreamCreate(&stream).ok());
  simcuda::EventId event = 0;
  ASSERT_TRUE(lib->cudaEventCreateWithFlags(&event, 0).ok());
  // Synchronizing a never-recorded event completes immediately (CUDA).
  ASSERT_TRUE(lib->cudaEventSynchronize(event).ok());

  ASSERT_TRUE(LaunchCopy(*lib, *fn, src, dst, n, stream).ok());
  ASSERT_TRUE(lib->cudaEventRecord(event, stream).ok());
  ASSERT_TRUE(lib->cudaEventSynchronize(event).ok());
  // The event completing implies the slow kernel before it completed.
  std::vector<std::uint32_t> out(n);
  ASSERT_TRUE(
      lib->cudaMemcpy(out.data(), dst, n * 4, MemcpyKind::kDeviceToHost).ok());
  EXPECT_EQ(out, xs);
}

TEST_F(SchedulerTest, StreamDestroyDrainsQueuedWork) {
  ManagerOptions options;
  options.device_time_ns_per_cycle = 2'000.0;
  Init(options);
  auto lib = Connect();
  ASSERT_TRUE(lib.ok());
  auto fn = LoadKernel(*lib, "copyk");
  ASSERT_TRUE(fn.ok());

  constexpr std::uint32_t n = 4096;
  DevicePtr src = 0, dst = 0;
  ASSERT_TRUE(lib->cudaMalloc(&src, n * 4).ok());
  ASSERT_TRUE(lib->cudaMalloc(&dst, n * 4).ok());
  std::vector<std::uint32_t> xs(n, 7);
  ASSERT_TRUE(lib->cudaMemcpyH2D(src, xs.data(), n * 4).ok());

  simcuda::StreamId stream = 0;
  ASSERT_TRUE(lib->cudaStreamCreate(&stream).ok());
  ASSERT_TRUE(LaunchCopy(*lib, *fn, src, dst, n, stream).ok());
  // Destroy with the copy kernel still queued/running: it must drain, not
  // orphan — afterwards the result is visible and the handle is gone.
  ASSERT_TRUE(lib->cudaStreamDestroy(stream).ok());
  std::vector<std::uint32_t> out(n);
  ASSERT_TRUE(
      lib->cudaMemcpy(out.data(), dst, n * 4, MemcpyKind::kDeviceToHost).ok());
  EXPECT_EQ(out, xs);
  EXPECT_EQ(lib->cudaStreamSynchronize(stream).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SchedulerTest, EventRecordOnDestroyedStreamRejected) {
  Init(ManagerOptions{});
  auto lib = Connect();
  ASSERT_TRUE(lib.ok());
  simcuda::StreamId stream = 0;
  ASSERT_TRUE(lib->cudaStreamCreate(&stream).ok());
  simcuda::EventId event = 0;
  ASSERT_TRUE(lib->cudaEventCreateWithFlags(&event, 0).ok());
  ASSERT_TRUE(lib->cudaStreamDestroy(stream).ok());
  EXPECT_EQ(lib->cudaEventRecord(event, stream).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(lib->cudaStreamWaitEvent(stream, event).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SchedulerTest, MidFlightFaultContainedToAttacker) {
  ManagerOptions options;
  options.mode = ptxpatcher::BoundsCheckMode::kChecking;
  options.scheduler_executors = 4;
  options.device_time_ns_per_cycle = kSlowDeviceScale;
  Init(options);
  auto victim = Connect();
  auto attacker = Connect();
  ASSERT_TRUE(victim.ok() && attacker.ok());
  auto victim_fn = LoadKernel(*victim, "copyk");
  auto attacker_fn = LoadKernel(*attacker, "oob_writer");
  ASSERT_TRUE(victim_fn.ok() && attacker_fn.ok());

  constexpr std::uint32_t n = 4096;
  DevicePtr vsrc = 0, vdst = 0;
  ASSERT_TRUE(victim->cudaMalloc(&vsrc, n * 4).ok());
  ASSERT_TRUE(victim->cudaMalloc(&vdst, n * 4).ok());
  std::vector<std::uint32_t> xs(n, 0xBEEF);
  ASSERT_TRUE(victim->cudaMemcpyH2D(vsrc, xs.data(), n * 4).ok());

  // Victim's long kernel is mid-flight on its own stream when the attacker
  // crashes: the fault must kill only the attacker.
  simcuda::StreamId vstream = 0;
  ASSERT_TRUE(victim->cudaStreamCreate(&vstream).ok());
  ASSERT_TRUE(LaunchCopy(*victim, *victim_fn, vsrc, vdst, n, vstream).ok());

  DevicePtr mine = 0;
  ASSERT_TRUE(attacker->cudaMalloc(&mine, 64).ok());
  simcuda::LaunchConfig config;
  const Status oob = attacker->cudaLaunchKernel(
      *attacker_fn, config,
      {KernelArg::U64(mine), KernelArg::U64(vsrc - mine),
       KernelArg::U32(666)});
  EXPECT_EQ(oob.code(), StatusCode::kOutOfRange);
  DevicePtr more = 0;
  EXPECT_EQ(attacker->cudaMalloc(&more, 64).code(), StatusCode::kAborted);

  ASSERT_TRUE(victim->cudaStreamSynchronize(vstream).ok());
  std::vector<std::uint32_t> out(n);
  ASSERT_TRUE(
      victim->cudaMemcpy(out.data(), vdst, n * 4, MemcpyKind::kDeviceToHost)
          .ok());
  EXPECT_EQ(out, xs);
  EXPECT_EQ(manager_->stats().faults_contained, 1u);
}

TEST_F(SchedulerTest, AsyncLaunchFaultSurfacesAtSynchronize) {
  ManagerOptions options;
  options.mode = ptxpatcher::BoundsCheckMode::kChecking;
  Init(options);
  auto lib = Connect();
  ASSERT_TRUE(lib.ok());
  auto fn = LoadKernel(*lib, "oob_writer");
  ASSERT_TRUE(fn.ok());
  DevicePtr mine = 0;
  ASSERT_TRUE(lib->cudaMalloc(&mine, 64).ok());

  simcuda::StreamId stream = 0;
  ASSERT_TRUE(lib->cudaStreamCreate(&stream).ok());
  simcuda::LaunchConfig config;
  config.stream = stream;
  // Async launch reports success; the device fault lands at the sync point.
  ASSERT_TRUE(lib->cudaLaunchKernel(*fn, config,
                                    {KernelArg::U64(mine),
                                     KernelArg::U64(1ull << 33),
                                     KernelArg::U32(666)})
                  .ok());
  EXPECT_FALSE(lib->cudaStreamSynchronize(stream).ok());
  EXPECT_EQ(manager_->stats().faults_contained, 1u);
}

TEST_F(SchedulerTest, BatchedAsyncCallsCoalesceIntoOneMessage) {
  Init(ManagerOptions{});
  auto lib = Connect();
  ASSERT_TRUE(lib.ok());
  auto fn = LoadKernel(*lib, "copyk");
  ASSERT_TRUE(fn.ok());
  lib->EnableBatching(8);

  constexpr std::uint32_t n = 512;
  DevicePtr src = 0, dst = 0;
  ASSERT_TRUE(lib->cudaMalloc(&src, n * 4).ok());
  ASSERT_TRUE(lib->cudaMalloc(&dst, n * 4).ok());
  simcuda::StreamId stream = 0;
  ASSERT_TRUE(lib->cudaStreamCreate(&stream).ok());

  // Upload + kernel + upload + kernel, all async on one stream: grdLib
  // buffers them and the StreamSynchronize flush sends ONE kBatch message.
  std::vector<std::uint32_t> xs(n);
  for (std::uint32_t i = 0; i < n; ++i) xs[i] = i + 3;
  ASSERT_TRUE(lib->cudaMemcpyH2DAsync(src, xs.data(), n * 4, stream).ok());
  ASSERT_TRUE(LaunchCopy(*lib, *fn, src, dst, n, stream).ok());
  std::vector<std::uint32_t> ys(n);
  for (std::uint32_t i = 0; i < n; ++i) ys[i] = i * 11;
  ASSERT_TRUE(lib->cudaMemcpyH2DAsync(src, ys.data(), n * 4, stream).ok());
  ASSERT_TRUE(LaunchCopy(*lib, *fn, src, dst, n, stream).ok());
  EXPECT_EQ(manager_->stats().batches_decoded, 0u);  // still buffered

  ASSERT_TRUE(lib->cudaStreamSynchronize(stream).ok());
  EXPECT_EQ(manager_->stats().batches_decoded, 1u);
  EXPECT_EQ(manager_->stats().batched_ops, 4u);
  EXPECT_EQ(lib->batches_sent(), 1u);
  // All four sub-ops succeeded with empty payloads: the reply collapsed to
  // one summary response instead of four full ones.
  EXPECT_EQ(manager_->stats().batch_responses_compacted, 1u);

  std::vector<std::uint32_t> out(n);
  ASSERT_TRUE(
      lib->cudaMemcpy(out.data(), dst, n * 4, MemcpyKind::kDeviceToHost).ok());
  EXPECT_EQ(out, ys);  // FIFO: the second upload+copy won
}

TEST_F(SchedulerTest, DeviceSynchronizeDrainsAllStreams) {
  ManagerOptions options;
  options.scheduler_executors = 4;
  options.device_time_ns_per_cycle = 2'000.0;
  Init(options);
  auto lib = Connect();
  ASSERT_TRUE(lib.ok());
  auto fn = LoadKernel(*lib, "copyk");
  ASSERT_TRUE(fn.ok());

  constexpr std::uint32_t n = 4096;
  DevicePtr src = 0, d1 = 0, d2 = 0;
  for (DevicePtr* p : {&src, &d1, &d2})
    ASSERT_TRUE(lib->cudaMalloc(p, n * 4).ok());
  std::vector<std::uint32_t> xs(n, 99);
  ASSERT_TRUE(lib->cudaMemcpyH2D(src, xs.data(), n * 4).ok());

  simcuda::StreamId s1 = 0, s2 = 0;
  ASSERT_TRUE(lib->cudaStreamCreate(&s1).ok());
  ASSERT_TRUE(lib->cudaStreamCreate(&s2).ok());
  ASSERT_TRUE(LaunchCopy(*lib, *fn, src, d1, n, s1).ok());
  ASSERT_TRUE(LaunchCopy(*lib, *fn, src, d2, n, s2).ok());
  ASSERT_TRUE(lib->cudaDeviceSynchronize().ok());

  std::vector<std::uint32_t> out1(n), out2(n);
  ASSERT_TRUE(
      lib->cudaMemcpy(out1.data(), d1, n * 4, MemcpyKind::kDeviceToHost).ok());
  ASSERT_TRUE(
      lib->cudaMemcpy(out2.data(), d2, n * 4, MemcpyKind::kDeviceToHost).ok());
  EXPECT_EQ(out1, xs);
  EXPECT_EQ(out2, xs);
  EXPECT_GE(manager_->stats().scheduler_ops_completed, 2u);
}

}  // namespace
}  // namespace grd::guardian
