#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ptx/generator.hpp"
#include "ptx/parser.hpp"
#include "ptx/printer.hpp"
#include "ptx/validator.hpp"
#include "ptxpatcher/patcher.hpp"

namespace grd::ptx {
namespace {

Module MustParse(std::string_view src) {
  auto result = Parse(src);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? std::move(*result) : Module{};
}

constexpr std::string_view kHeader = R"(
.version 7.7
.target sm_86
.address_size 64
)";

TEST(Validator, SampleModuleIsClean) {
  const auto report = Validate(MakeSampleModule());
  EXPECT_TRUE(report.ok()) << report.issues.front().kernel << ": "
                           << report.issues.front().message;
}

TEST(Validator, PatchedModulesStayClean) {
  // The patcher must only produce PTX that the validator (and so a real
  // assembler) accepts — for every mode.
  for (const auto mode :
       {ptxpatcher::BoundsCheckMode::kFencingBitwise,
        ptxpatcher::BoundsCheckMode::kFencingModulo,
        ptxpatcher::BoundsCheckMode::kChecking}) {
    ptxpatcher::PatchOptions options;
    options.mode = mode;
    auto patched = ptxpatcher::PatchModule(MakeSampleModule(), options);
    ASSERT_TRUE(patched.ok());
    const auto report = Validate(*patched);
    EXPECT_TRUE(report.ok())
        << ptxpatcher::BoundsCheckModeName(mode) << ": "
        << (report.ok() ? "" : report.issues.front().message);
  }
}

TEST(Validator, UndeclaredRegister) {
  const Module m = MustParse(std::string(kHeader) + R"(
.visible .entry k()
{
    .reg .b32 %r<2>;
    add.s32 %r1, %r1, %r9;
    ret;
}
)");
  const auto report = Validate(m);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.issues[0].message.find("%r9"), std::string::npos);
}

TEST(Validator, NamedRegisterFormAccepted) {
  const Module m = MustParse(std::string(kHeader) + R"(
.visible .entry k()
{
    .reg .pred %flag;
    .reg .b32 %r<3>;
    setp.eq.s32 %flag, %r1, %r2;
    ret;
}
)");
  EXPECT_TRUE(Validate(m).ok());
}

TEST(Validator, DanglingBranchTarget) {
  const Module m = MustParse(std::string(kHeader) + R"(
.visible .entry k()
{
    .reg .pred %p<2>;
    @%p1 bra NOWHERE;
    ret;
}
)");
  const auto report = Validate(m);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.issues[0].message.find("NOWHERE"), std::string::npos);
}

TEST(Validator, BranchTableWithMissingLabel) {
  const Module m = MustParse(std::string(kHeader) + R"(
.visible .entry k(.param .u32 p0)
{
    .reg .b32 %r<2>;
    ld.param.u32 %r1, [p0];
ts: .branchtargets L0, MISSING;
    brx.idx %r1, ts;
L0:
    ret;
}
)");
  const auto report = Validate(m);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.issues[0].message.find("MISSING"), std::string::npos);
}

TEST(Validator, UndeclaredBranchTable) {
  const Module m = MustParse(std::string(kHeader) + R"(
.visible .entry k()
{
    .reg .b32 %r<2>;
    brx.idx %r1, ghost_table;
    ret;
}
)");
  EXPECT_FALSE(Validate(m).ok());
}

TEST(Validator, UnknownParameter) {
  const Module m = MustParse(std::string(kHeader) + R"(
.visible .entry k(.param .u64 k_param_0)
{
    .reg .b64 %rd<2>;
    ld.param.u64 %rd1, [k_param_7];
    ret;
}
)");
  const auto report = Validate(m);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.issues[0].message.find("k_param_7"), std::string::npos);
}

TEST(Validator, DuplicateLabel) {
  const Module m = MustParse(std::string(kHeader) + R"(
.visible .entry k()
{
L:
L:
    ret;
}
)");
  EXPECT_FALSE(Validate(m).ok());
}

TEST(Validator, DuplicateKernelNames) {
  Module m;
  m.kernels.push_back(MakeVecAddKernel("same"));
  m.kernels.push_back(MakeSaxpyKernel("same"));
  const auto report = Validate(m);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.issues[0].message.find("same"), std::string::npos);
}

TEST(Validator, GlobalVariablesResolve) {
  const Module m = MustParse(std::string(kHeader) + R"(
.global .align 8 .b8 lut[64];
.visible .entry k()
{
    .reg .b64 %rd<3>;
    mov.u64 %rd1, lut;
    ret;
}
)");
  EXPECT_TRUE(Validate(m).ok());
}

TEST(Validator, ValidateOrErrorSummarizes) {
  const Module m = MustParse(std::string(kHeader) + R"(
.visible .entry k()
{
    add.s32 %r1, %r2, %r3;
    ret;
}
)");
  const Status s = ValidateOrError(m);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("issue(s) total"), std::string::npos);
}

TEST(Validator, RandomGeneratedKernelsAlwaysClean) {
  Rng rng(77);
  for (int i = 0; i < 40; ++i) {
    Module m;
    m.kernels.push_back(MakeRandomKernel(
        rng, "rk", static_cast<int>(rng.NextBelow(30)),
        static_cast<int>(rng.NextBelow(15)), rng.NextBool(0.5)));
    const auto report = Validate(m);
    EXPECT_TRUE(report.ok())
        << (report.ok() ? "" : report.issues.front().message);
  }
}

}  // namespace
}  // namespace grd::ptx
