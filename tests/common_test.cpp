#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "common/cycle_clock.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/strings.hpp"

namespace grd {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesMessage) {
  Status s = OutOfRange("address 0x10 outside partition");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(s.ToString(), "OUT_OF_RANGE: address 0x10 outside partition");
}

TEST(Status, AllConstructorsMapToCodes) {
  EXPECT_EQ(InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(OutOfMemory("x").code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(PermissionDenied("x").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Aborted("x").code(), StatusCode::kAborted);
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, HoldsStatus) {
  Result<int> r = NotFound("kernel");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Doubled(Result<int> in) {
  GRD_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(Result, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_EQ(Doubled(Internal("boom")).status().code(), StatusCode::kInternal);
}

TEST(Bits, PowerOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(16u << 20));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_EQ(NextPowerOfTwo(0), 1u);
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(17), 32u);
  EXPECT_EQ(NextPowerOfTwo(1u << 20), 1u << 20);
}

TEST(Bits, Alignment) {
  EXPECT_EQ(AlignUp(13, 8), 16u);
  EXPECT_EQ(AlignUp(16, 8), 16u);
  EXPECT_EQ(AlignDown(13, 8), 8u);
  EXPECT_TRUE(IsAligned(256, 256));
  EXPECT_FALSE(IsAligned(257, 256));
}

TEST(Bits, PaperFigure4MaskExample) {
  // Paper §4.3: partition start 0x7fa2d0000000, size 16MB -> end
  // 0x7fa2d0FFFFFF, mask 0x000000FFFFFF.
  const std::uint64_t base = 0x7fa2d0000000ull;
  const std::uint64_t size = 16ull << 20;
  EXPECT_EQ(PartitionMask(size), 0x000000FFFFFFull);
  EXPECT_EQ(base + size - 1, 0x7fa2d0FFFFFFull);
}

TEST(Bits, FenceIdentityInBounds) {
  const std::uint64_t base = 0x7fa2d0000000ull;
  const std::uint64_t size = 16ull << 20;
  const std::uint64_t mask = PartitionMask(size);
  for (std::uint64_t off : {std::uint64_t{0}, std::uint64_t{1},
                            std::uint64_t{4096}, size - 1}) {
    EXPECT_EQ(FenceAddress(base + off, base, mask), base + off);
  }
}

TEST(Bits, FenceWrapsOutOfBounds) {
  // Figure 4: an address in a neighbour's partition wraps into the own one.
  const std::uint64_t base = 0x7fa2d0000000ull;
  const std::uint64_t size = 16ull << 20;
  const std::uint64_t mask = PartitionMask(size);
  const std::uint64_t neighbour = 0x7fa1d0000000ull + 100;
  const std::uint64_t fenced = FenceAddress(neighbour, base, mask);
  EXPECT_GE(fenced, base);
  EXPECT_LT(fenced, base + size);
}

TEST(Bits, FenceModuloMatchesBitwiseForPow2) {
  Rng rng(7);
  const std::uint64_t base = 0x100000000ull;
  const std::uint64_t size = 1ull << 24;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t addr = base + rng.NextBelow(1ull << 30);
    EXPECT_EQ(FenceAddress(addr, base, PartitionMask(size)),
              FenceAddressModulo(addr, base, size));
  }
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, BoundsRespected) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
    const auto v = rng.NextInRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Strings, ToHex) { EXPECT_EQ(ToHex(0x7fa2d0000000ull), "0x7fa2d0000000"); }

TEST(Strings, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(176ull << 20), "176 MB");
  EXPECT_EQ(HumanBytes((2ull << 30) + (819ull << 20)), "2.8 GB");
}

TEST(Strings, SplitAndTrim) {
  const auto lines = SplitLines("a\nb\n\nc");
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[2], "");
  EXPECT_EQ(TrimWhitespace("  x \t"), "x");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_TRUE(StartsWith("cudaMalloc", "cuda"));
  EXPECT_FALSE(StartsWith("cu", "cuda"));
}

TEST(LogSpec, BareLevelSetsGlobalFloor) {
  const LogSpec spec = ParseLogSpec("debug");
  EXPECT_TRUE(spec.has_global);
  EXPECT_EQ(spec.global, LogLevel::kDebug);
  EXPECT_TRUE(spec.components.empty());
}

TEST(LogSpec, ComponentOverridesAndGlobalMix) {
  const LogSpec spec = ParseLogSpec("error,grdManager=debug, Server = info ");
  EXPECT_TRUE(spec.has_global);
  EXPECT_EQ(spec.global, LogLevel::kError);
  ASSERT_EQ(spec.components.size(), 2u);
  EXPECT_EQ(spec.components[0].first, "grdManager");
  EXPECT_EQ(spec.components[0].second, LogLevel::kDebug);
  EXPECT_EQ(spec.components[1].first, "Server");
  EXPECT_EQ(spec.components[1].second, LogLevel::kInfo);
}

TEST(LogSpec, WarningAliasAndAllLevelNames) {
  EXPECT_EQ(ParseLogSpec("warning").global, LogLevel::kWarn);
  EXPECT_EQ(ParseLogSpec("warn").global, LogLevel::kWarn);
  EXPECT_EQ(ParseLogSpec("info").global, LogLevel::kInfo);
  EXPECT_EQ(ParseLogSpec("error").global, LogLevel::kError);
}

TEST(LogSpec, MalformedEntriesAreSkippedNotFatal) {
  // A bad GRD_LOG must never take the process down: junk entries vanish,
  // valid ones still apply.
  const LogSpec spec = ParseLogSpec("bogus,=debug,x=,x=shout,,info,a=warn");
  EXPECT_TRUE(spec.has_global);
  EXPECT_EQ(spec.global, LogLevel::kInfo);
  ASSERT_EQ(spec.components.size(), 1u);
  EXPECT_EQ(spec.components[0].first, "a");
  EXPECT_EQ(spec.components[0].second, LogLevel::kWarn);
}

TEST(LogSpec, EmptySpecChangesNothing) {
  const LogSpec spec = ParseLogSpec("");
  EXPECT_FALSE(spec.has_global);
  EXPECT_TRUE(spec.components.empty());
}

TEST(LogSpec, LoggerLevelForUsesOverrideElseGlobal) {
  Logger& logger = Logger::Instance();
  const LogLevel saved = logger.level();

  logger.ApplySpec(ParseLogSpec("error,Noisy=debug"));
  EXPECT_EQ(logger.level(), LogLevel::kError);
  EXPECT_EQ(logger.LevelFor("Noisy"), LogLevel::kDebug);
  EXPECT_EQ(logger.LevelFor("Other"), LogLevel::kError);

  // A spec without a global keeps the current one and replaces overrides.
  logger.ApplySpec(ParseLogSpec("Quiet=error"));
  EXPECT_EQ(logger.level(), LogLevel::kError);
  EXPECT_EQ(logger.LevelFor("Noisy"), LogLevel::kError);
  EXPECT_EQ(logger.LevelFor("Quiet"), LogLevel::kError);

  logger.ApplySpec(LogSpec{});  // clear overrides
  logger.set_level(saved);
}

TEST(CycleClock, MonotonicNonTrivial) {
  const auto a = CycleClock::Now();
  volatile int sink = 0;
  for (int i = 0; i < 1000; ++i) sink = sink + i;
  const auto b = CycleClock::Now();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace grd
