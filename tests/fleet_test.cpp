// Fleet traffic harness + chaos injector (src/fleet/): seeded mini-fleets
// over a real forked worker pool. Labeled `process` in CMake — these tests
// SIGKILL live workers and must stay out of the TSan job.
#include <gtest/gtest.h>

#include <chrono>

#include "common/rng.hpp"
#include "fleet/fleet.hpp"
#include "fleet/slo.hpp"
#include "fleet/traffic.hpp"
#include "guardian/grdlib.hpp"
#include "guardian/process_server.hpp"
#include "guardian/transport.hpp"

namespace grd::fleet {
namespace {

using guardian::GrdLib;
using guardian::GrdLibOptions;

// ---- traffic shapes -------------------------------------------------------

TEST(ArrivalProcessTest, ClosedLoopHasNoThinkTime) {
  Rng rng(1);
  ArrivalProcess arrivals;
  arrivals.kind = ArrivalKind::kClosedLoop;
  for (std::uint64_t r = 0; r < 8; ++r)
    EXPECT_EQ(arrivals.NextGapNs(rng, r), 0u);
}

TEST(ArrivalProcessTest, PoissonGapsArePositiveAndCapped) {
  Rng rng(2);
  ArrivalProcess arrivals;
  arrivals.kind = ArrivalKind::kPoisson;
  arrivals.rate_hz = 4000.0;
  for (std::uint64_t r = 0; r < 256; ++r) {
    const std::uint64_t gap = arrivals.NextGapNs(rng, r);
    EXPECT_GT(gap, 0u);
    EXPECT_LE(gap, 10'000'000u);  // single-draw cap
  }
}

TEST(ArrivalProcessTest, BurstyGapsOnlyAtBurstBoundaries) {
  Rng rng(3);
  ArrivalProcess arrivals;
  arrivals.kind = ArrivalKind::kBursty;
  arrivals.rate_hz = 2000.0;
  arrivals.burst_len = 8;
  EXPECT_EQ(arrivals.NextGapNs(rng, 0), 0u);  // first burst starts at once
  for (std::uint64_t r = 1; r < 8; ++r)
    EXPECT_EQ(arrivals.NextGapNs(rng, r), 0u) << "in-burst request " << r;
  EXPECT_GT(arrivals.NextGapNs(rng, 8), 0u) << "burst boundary";
}

TEST(ArrivalProcessTest, SameSeedReplaysTheSameGaps) {
  ArrivalProcess arrivals;
  arrivals.kind = ArrivalKind::kPoisson;
  Rng a(42), b(42);
  for (std::uint64_t r = 0; r < 64; ++r)
    EXPECT_EQ(arrivals.NextGapNs(a, r), arrivals.NextGapNs(b, r));
}

// ---- SLO board ------------------------------------------------------------

TEST(SloBoardTest, HistogramHoldsOnlySurvivorSamples) {
  SloBoard board;
  const auto rt = protocol::PriorityClass::kRealtime;
  board.Record(rt, 1000, OkStatus());
  board.Record(rt, 50'000'000, Status(Unavailable("worker died")));
  board.Record(rt, 50'000'000, Status(DeadlineExceeded("wedged")));
  const ClassSlo& slo = board.cls(rt);
  EXPECT_EQ(slo.requests.load(), 3u);
  EXPECT_EQ(slo.ok.load(), 1u);
  EXPECT_EQ(slo.unavailable.load(), 1u);
  EXPECT_EQ(slo.deadline_exceeded.load(), 1u);
  // The 50ms fault durations must not pollute the survivor percentile.
  EXPECT_EQ(slo.latency.count.load(), 1u);
  EXPECT_LE(slo.latency.PercentileNs(0.99), 2048u);
}

// ---- fleet end-to-end -----------------------------------------------------

TEST(FleetTest, CleanFleetCompletesEverySessionWithoutFaults) {
  FleetOptions options;
  options.seed = 11;
  options.workers = 2;
  options.channels = 2;
  options.sessions_per_channel = 2;
  options.requests_per_session = 8;
  options.call_timeout = std::chrono::milliseconds(500);
  Fleet fleet(options);
  ASSERT_TRUE(fleet.Run().ok());
  const FleetReport& report = fleet.report();
  EXPECT_EQ(report.sessions, 4u);
  EXPECT_EQ(report.sessions_completed, 4u);
  EXPECT_EQ(report.hangs, 0u);
  EXPECT_EQ(report.victims, 0u);
  EXPECT_EQ(report.connect_failures, 0u);
  EXPECT_EQ(report.frames_corrupt, 0u);
  EXPECT_EQ(report.synthetic_responses, 0u);
  EXPECT_EQ(report.workers_respawned, 0u);
  EXPECT_EQ(report.realtime_requests + report.batch_requests, 32u);
  EXPECT_EQ(report.realtime_ok + report.batch_ok, 32u);
}

TEST(FleetTest, FleetSurvivesWorkerKillAndStalledTenant) {
  FleetOptions options;
  options.seed = 7;
  options.workers = 2;
  options.channels = 4;
  options.sessions_per_channel = 2;
  options.requests_per_session = 16;
  options.call_timeout = std::chrono::milliseconds(500);
  options.recovery_attempts = 8;
  options.stalled_tenants = 1;
  options.chaos.seed = 99;
  options.chaos.worker_kills = 1;
  // Fire after an eighth of the fleet's cycles: mid-traffic, deterministic
  // enough that some session is always in flight on the victim worker.
  options.chaos.min_requests_before_kill = 16;
  options.chaos.min_gap = std::chrono::microseconds(500);
  options.chaos.max_gap = std::chrono::microseconds(1000);
  Fleet fleet(options);
  ASSERT_TRUE(fleet.Run().ok());
  const FleetReport& report = fleet.report();

  // The acceptance invariants, in miniature: the kill landed, the stall
  // landed, no client hung, every victim recovered, every session finished.
  // With session adoption a kill only mints a *victim* when a request was
  // in flight on the dying worker — idle sessions are re-homed silently —
  // so the kill's footprint is adopted-or-victim, not victims alone.
  EXPECT_EQ(report.kills, 1u);
  EXPECT_EQ(report.stalls_injected, 1u);
  EXPECT_EQ(report.hangs, 0u);
  EXPECT_GE(report.sessions_adopted + report.victims, 1u);
  EXPECT_EQ(report.victims_recovered, report.victims);
  EXPECT_EQ(report.retry_exhausted, 0u);
  EXPECT_EQ(report.sessions, 8u);
  EXPECT_EQ(report.sessions_completed, 8u);
  EXPECT_GE(report.workers_respawned, 1u);
  // Survivor SLO histograms saw real traffic.
  const auto& slo = fleet.slo();
  EXPECT_GT(slo.cls(protocol::PriorityClass::kRealtime).latency.count.load() +
                slo.cls(protocol::PriorityClass::kBatch).latency.count.load(),
            0u);
}

// ---- exact ring accounting at quiescence ----------------------------------

TEST(FleetTest, RingCountersBalanceExactlyAtQuiescence) {
  guardian::ProcessServerOptions server_opts;
  server_opts.workers = 2;
  server_opts.channels = 2;
  server_opts.layout.max_channels = 2;
  server_opts.layout.max_workers = 2;
  server_opts.layout.max_sessions = 8;
  auto server = guardian::ProcessServer::Create(server_opts);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());
  ASSERT_TRUE((*server)->WaitForChannelOwners());

  SloBoard slo;
  Rng rng(5);
  for (std::uint32_t ch = 0; ch < 2; ++ch) {
    guardian::ChannelTransport transport(&(*server)->channel(ch),
                                         std::chrono::milliseconds(500));
    auto lib = GrdLib::Connect(&transport, 1u << 20);
    ASSERT_TRUE(lib.ok());
    TenantSpec spec = ch == 0 ? MakeRealtimeInferenceSpec()
                              : MakeBatchTrainingSpec();
    spec.requests = 8;
    ASSERT_TRUE(RunTenantSession(*lib, spec, rng, slo, nullptr).ok());
    ASSERT_TRUE(lib->Disconnect().ok());
  }

  // Every call returned, so the fleet side is quiescent: each ring's
  // producer and consumer counters must agree exactly, and the pool-wide
  // stats must equal the per-ring sums (the PR's counter-conservation
  // invariant — nothing consumed unaccounted, nothing answered twice).
  std::uint64_t requests_read = 0, responses_written = 0;
  for (std::uint32_t ch = 0; ch < 2; ++ch) {
    ipc::Channel& channel = (*server)->channel(ch);
    EXPECT_EQ(channel.request().messages_written(),
              channel.request().messages_read())
        << "channel " << ch << " request ring";
    EXPECT_EQ(channel.response().messages_written(),
              channel.response().messages_read())
        << "channel " << ch << " response ring";
    EXPECT_EQ(channel.request().frames_corrupt(), 0u);
    requests_read += channel.request().messages_read();
    responses_written += channel.response().messages_written();
  }
  guardian::SharedServingState& state = (*server)->state();
  EXPECT_EQ(state.stats().ring_messages_read.load(), requests_read);
  EXPECT_EQ(state.stats().ring_messages_written.load(), responses_written);
  EXPECT_EQ(state.counters().synthetic_responses.load(), 0u);
  (*server)->Stop();
}

}  // namespace
}  // namespace grd::fleet
