#include <gtest/gtest.h>

#include "simgpu/device_spec.hpp"
#include "workloads/apps.hpp"
#include "workloads/harness.hpp"
#include "workloads/table4.hpp"

namespace grd::workloads {
namespace {

TEST(Apps, RegistryContainsAllEvaluationApps) {
  for (const char* name :
       {"lenet", "siamese", "cifar10", "cv", "rnn", "googlenet", "alexnet",
        "caffenet", "vgg11", "mobilenetv2", "resnet50", "gaussian", "lavamd",
        "hotspot", "particle"}) {
    EXPECT_NO_THROW(GetApp(name)) << name;
  }
  EXPECT_THROW(GetApp("nope"), std::out_of_range);
  EXPECT_EQ(AllAppNames().size(), 15u);
}

TEST(Apps, LenetMixMatchesFigure10) {
  const auto& mix = LenetKernelMix();
  ASSERT_EQ(mix.size(), 30u);
  EXPECT_EQ(mix[0].name, "sgemm_1");
  EXPECT_EQ(mix[2].name, "im2col");
  EXPECT_EQ(mix.back().name, "accuracyfw");
}

TEST(Apps, LenetCacheAveragesNearMeasured) {
  // §7.4: lenet average L1 hit 37%, L2 hit 72%.
  double l1 = 0, l2 = 0;
  for (const auto& kernel : LenetKernelMix()) {
    l1 += kernel.profile.cache.l1_hit;
    l2 += kernel.profile.cache.l2_hit;
  }
  l1 /= LenetKernelMix().size();
  l2 /= LenetKernelMix().size();
  EXPECT_NEAR(l1, 0.37, 0.08);
  EXPECT_NEAR(l2, 0.72, 0.08);
}

TEST(Apps, LenetPerKernelOverheadsInFigure10Band) {
  const simgpu::TimingModel model(simgpu::QuadroRtxA4000());
  double total = 0;
  for (const auto& kernel : LenetKernelMix()) {
    const double overhead = model.RelativeOverhead(
        kernel.profile, simgpu::ProtectionMode::kFencingBitwise);
    EXPECT_GE(overhead, 0.0) << kernel.name;
    EXPECT_LE(overhead, 0.11) << kernel.name;  // Figure 10: 0-10%
    total += overhead;
  }
  EXPECT_NEAR(total / LenetKernelMix().size(), 0.032, 0.015);  // avg ~3.2%
}

TEST(Apps, InferenceVariantDropsBackwardKernels) {
  const AppSpec& training = GetApp("cifar10");
  const AppSpec inference = InferenceVariant(training);
  EXPECT_LT(inference.kernels.size(), training.kernels.size());
  for (const auto& kernel : inference.kernels) {
    EXPECT_EQ(kernel.name.find("bw"), std::string::npos);
  }
  EXPECT_LT(inference.default_iterations, training.default_iterations);
}

TEST(Table4, SixteenMixes) {
  const auto& mixes = Table4Workloads();
  ASSERT_EQ(mixes.size(), 16u);
  EXPECT_EQ(mixes[0].id, "A");
  EXPECT_EQ(mixes[0].name, "2xlenet");
  EXPECT_EQ(mixes[1].TotalClients(), 4);       // B = 4xlenet
  EXPECT_EQ(mixes[15].id, "P");
  EXPECT_EQ(mixes[15].TotalClients(), 4);      // 4 different apps
  EXPECT_EQ(mixes[11].TotalClients(), 6);      // L = 3+1+2
  for (const auto& mix : mixes) {
    EXPECT_GE(mix.TotalClients(), 2);
    EXPECT_LE(mix.TotalClients(), 6);          // paper: 2-6 clients
    for (const auto& entry : mix.entries) EXPECT_NO_THROW(GetApp(entry.app));
  }
}

class HarnessTest : public ::testing::Test {
 protected:
  HarnessTest() : harness_(simgpu::QuadroRtxA4000()) {}

  double Standalone(const std::string& app, Deployment deployment,
                    std::uint64_t iterations = 50) {
    return harness_.RunStandalone({app, iterations, false}, deployment)
        .total_cycles;
  }

  Harness harness_;
};

TEST_F(HarnessTest, StandaloneDeploymentOrdering) {
  // Figure 7/8 ordering: native < noprot < bitwise < modulo < checking.
  for (const char* app : {"lenet", "cifar10", "resnet50"}) {
    const double native = Standalone(app, Deployment::kNative);
    const double noprot = Standalone(app, Deployment::kGuardianNoProtection);
    const double bitwise = Standalone(app, Deployment::kGuardianBitwise);
    const double modulo = Standalone(app, Deployment::kGuardianModulo);
    const double checking = Standalone(app, Deployment::kGuardianChecking);
    EXPECT_LT(native, noprot) << app;
    EXPECT_LT(noprot, bitwise) << app;
    EXPECT_LT(bitwise, modulo) << app;
    EXPECT_LT(modulo, checking) << app;
  }
}

TEST_F(HarnessTest, BitwiseOverheadInPaperBand) {
  // §7.2: Guardian bitwise fencing is 4%-12% over native, ~9% on average.
  double total = 0;
  int count = 0;
  for (const char* app :
       {"lenet", "siamese", "cifar10", "googlenet", "alexnet", "caffenet",
        "vgg11", "mobilenetv2", "resnet50"}) {
    const double native = Standalone(app, Deployment::kNative);
    const double bitwise = Standalone(app, Deployment::kGuardianBitwise);
    const double overhead = bitwise / native - 1.0;
    EXPECT_GT(overhead, 0.02) << app;
    EXPECT_LT(overhead, 0.16) << app;
    total += overhead;
    ++count;
  }
  const double average = total / count;
  EXPECT_GT(average, 0.04);
  EXPECT_LT(average, 0.13);
}

TEST_F(HarnessTest, ModuloAndCheckingMuchWorse) {
  // §7.2: modulo ≈ +29% vs native; checking ≈ 1.7x.
  double modulo_total = 0, checking_total = 0;
  int count = 0;
  for (const char* app : {"lenet", "siamese", "cifar10"}) {
    const double native = Standalone(app, Deployment::kNative);
    modulo_total += Standalone(app, Deployment::kGuardianModulo) / native;
    checking_total += Standalone(app, Deployment::kGuardianChecking) / native;
    ++count;
  }
  const double modulo_ratio = modulo_total / count;
  const double checking_ratio = checking_total / count;
  EXPECT_GT(modulo_ratio, 1.12);
  EXPECT_LT(modulo_ratio, 1.45);
  EXPECT_GT(checking_ratio, 1.4);
  EXPECT_LT(checking_ratio, 2.1);
}

TEST_F(HarnessTest, SpatialBeatsTimeSharing) {
  // Figure 6: Guardian bitwise is ~23% faster than native time-sharing on
  // average, up to ~2x for low-occupancy mixes (B, D).
  const auto& mixes = Table4Workloads();
  double speedup_total = 0;
  int count = 0;
  for (const auto& mix : mixes) {
    const auto runs = Harness::ExpandMix(mix, /*epoch_scale=*/20);
    const double native =
        harness_.RunColocated(runs, Deployment::kNative).total_cycles;
    const double guardian =
        harness_.RunColocated(runs, Deployment::kGuardianBitwise)
            .total_cycles;
    EXPECT_LT(guardian, native) << mix.id;
    speedup_total += native / guardian;
    ++count;
  }
  const double average_speedup = speedup_total / count;
  EXPECT_GT(average_speedup, 1.15);
  EXPECT_LT(average_speedup, 2.6);
}

TEST_F(HarnessTest, GuardianCloseToMps) {
  // §7.1: Guardian bitwise ≈ 4.84% slower than MPS on average; Guardian
  // without protection ≈ MPS (0.05%).
  const auto& mixes = Table4Workloads();
  double fencing_total = 0, noprot_total = 0;
  int count = 0;
  for (const auto& mix : mixes) {
    const auto runs = Harness::ExpandMix(mix, /*epoch_scale=*/20);
    const double mps =
        harness_.RunColocated(runs, Deployment::kMps).total_cycles;
    const double bitwise =
        harness_.RunColocated(runs, Deployment::kGuardianBitwise)
            .total_cycles;
    const double noprot =
        harness_.RunColocated(runs, Deployment::kGuardianNoProtection)
            .total_cycles;
    fencing_total += bitwise / mps;
    noprot_total += noprot / mps;
    ++count;
  }
  EXPECT_NEAR(fencing_total / count, 1.05, 0.05);
  EXPECT_NEAR(noprot_total / count, 1.0, 0.04);
}

TEST_F(HarnessTest, GuardianNoProtBeatsMpsUnderKernelStorms) {
  // §7.1: with thousands of pending kernels (D, H, K, P) the MPS server
  // becomes the bottleneck and Guardian w/o protection wins.
  const auto& mixes = Table4Workloads();
  for (const auto& mix : mixes) {
    if (mix.id != "D" && mix.id != "H" && mix.id != "K" && mix.id != "P")
      continue;
    const auto runs = Harness::ExpandMix(mix, /*epoch_scale=*/20);
    const double mps =
        harness_.RunColocated(runs, Deployment::kMps).total_cycles;
    const double noprot =
        harness_.RunColocated(runs, Deployment::kGuardianNoProtection)
            .total_cycles;
    EXPECT_LT(noprot, mps) << mix.id;
  }
}

TEST_F(HarnessTest, GeForceOverheadsSimilar) {
  // §7.5: Guardian's overhead is similar across GPU models (Figure 11).
  Harness geforce(simgpu::GeForceRtx3080Ti());
  for (const char* app : {"cv", "rnn", "lenet"}) {
    const double native =
        geforce.RunStandalone({app, 50, false}, Deployment::kNative)
            .total_cycles;
    const double bitwise =
        geforce.RunStandalone({app, 50, false}, Deployment::kGuardianBitwise)
            .total_cycles;
    const double overhead = bitwise / native - 1.0;
    EXPECT_GT(overhead, 0.02) << app;
    EXPECT_LT(overhead, 0.17) << app;  // paper: 10-13% on the GeForce
  }
}

TEST_F(HarnessTest, InferenceRunsShorterThanTraining) {
  const double train = Standalone("lenet", Deployment::kNative, 100);
  const double infer =
      harness_.RunStandalone({"lenet", 100, true}, Deployment::kNative)
          .total_cycles;
  EXPECT_LT(infer, train);
}

TEST_F(HarnessTest, ExpandMixScalesEpochs) {
  const auto& mix = Table4Workloads()[0];  // A: 2xlenet @ 500 epochs
  const auto runs = Harness::ExpandMix(mix, 10);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].iterations, 50u);
  const auto full = Harness::ExpandMix(mix, 1);
  EXPECT_EQ(full[0].iterations, 500u);
}

}  // namespace
}  // namespace grd::workloads
