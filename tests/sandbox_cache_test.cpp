// SandboxCache coverage: content-addressed patch sharing across tenants,
// mode-keyed entries, collision safety and concurrent loads.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "guardian/grdlib.hpp"
#include "guardian/manager.hpp"
#include "guardian/sandbox_cache.hpp"
#include "guardian/transport.hpp"
#include "ptx/generator.hpp"
#include "ptx/parser.hpp"
#include "ptx/printer.hpp"
#include "simgpu/device_spec.hpp"

namespace grd::guardian {
namespace {

using ptxexec::KernelArg;
using simcuda::DevicePtr;
using simcuda::MemcpyKind;

std::string SamplePtx() { return ptx::Print(ptx::MakeSampleModule()); }

TEST(SandboxCacheTest, SecondLookupOfIdenticalSourceHitsCache) {
  SandboxCache cache;
  const std::string source = SamplePtx();
  auto parsed = ptx::Parse(source);
  ASSERT_TRUE(parsed.ok());
  ptxpatcher::PatchOptions options;

  auto first = cache.GetOrPatch(source, *parsed, options);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_TRUE(first->patched_now);

  auto second = cache.GetOrPatch(source, *parsed, options);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->patched_now);
  // Shared immutable module, not a copy.
  EXPECT_EQ(first->module.get(), second->module.get());

  EXPECT_EQ(cache.stats().patches, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SandboxCacheTest, DifferentBoundsCheckModesDoNotCollide) {
  SandboxCache cache;
  const std::string source = SamplePtx();
  auto parsed = ptx::Parse(source);
  ASSERT_TRUE(parsed.ok());

  ptxpatcher::PatchOptions bitwise;
  bitwise.mode = ptxpatcher::BoundsCheckMode::kFencingBitwise;
  ptxpatcher::PatchOptions modulo;
  modulo.mode = ptxpatcher::BoundsCheckMode::kFencingModulo;
  ptxpatcher::PatchOptions checking;
  checking.mode = ptxpatcher::BoundsCheckMode::kChecking;

  auto a = cache.GetOrPatch(source, *parsed, bitwise);
  auto b = cache.GetOrPatch(source, *parsed, modulo);
  auto c = cache.GetOrPatch(source, *parsed, checking);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_TRUE(a->patched_now);
  EXPECT_TRUE(b->patched_now);
  EXPECT_TRUE(c->patched_now);
  EXPECT_NE(a->module.get(), b->module.get());
  EXPECT_NE(b->module.get(), c->module.get());
  EXPECT_EQ(cache.stats().patches, 3u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.size(), 3u);

  // Instrumentation genuinely differs across modes (the bitwise module
  // fences with and/or, the modulo module with rem).
  EXPECT_NE(ptx::Print(*a->module), ptx::Print(*b->module));
}

TEST(SandboxCacheTest, PatchFlagVariantsAreDistinctEntries) {
  SandboxCache cache;
  const std::string source = SamplePtx();
  auto parsed = ptx::Parse(source);
  ASSERT_TRUE(parsed.ok());

  ptxpatcher::PatchOptions plain;
  ptxpatcher::PatchOptions skip_safe = plain;
  skip_safe.skip_statically_safe = true;
  auto a = cache.GetOrPatch(source, *parsed, plain);
  auto b = cache.GetOrPatch(source, *parsed, skip_safe);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(b->patched_now);  // not served from the plain entry
  EXPECT_EQ(cache.stats().patches, 2u);
}

TEST(SandboxCacheTest, GuardElisionFlagKeysDistinctEntries) {
  // Elided and full-patch variants of the same source are different modules;
  // the cache must never serve one for the other.
  SandboxCache cache;
  ptx::Module m;
  m.kernels.push_back(ptx::MakeRepeatedRmwKernel("rmw", 4));
  m.kernels.push_back(ptx::MakePointerWalkKernel("walk", 2));
  const std::string source = ptx::Print(m);
  auto parsed = ptx::Parse(source);
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  ptxpatcher::PatchOptions full;
  ptxpatcher::PatchOptions elide = full;
  elide.elision_enabled = true;
  auto a = cache.GetOrPatch(source, *parsed, full);
  auto b = cache.GetOrPatch(source, *parsed, elide);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(b->patched_now);
  EXPECT_NE(a->module.get(), b->module.get());
  EXPECT_EQ(cache.stats().patches, 2u);

  // The aggregate patch stats ride with the slot: the fresh elided patch
  // reports its yield, and a later hit returns the same numbers.
  EXPECT_EQ(a->patch_stats.guards_elided, 0u);
  EXPECT_GT(b->patch_stats.guards_elided, 0u);
  EXPECT_EQ(b->patch_stats.loop_range_checks, 1u);
  auto b2 = cache.GetOrPatch(source, *parsed, elide);
  ASSERT_TRUE(b2.ok());
  EXPECT_FALSE(b2->patched_now);
  EXPECT_EQ(b2->patch_stats.guards_elided, b->patch_stats.guards_elided);
}

TEST(SandboxCacheTest, CapacityIsEnforcedWithLruEviction) {
  SandboxCache cache(/*capacity=*/2);
  ptxpatcher::PatchOptions options;
  // Three distinct sources: version-comment variants of the sample module.
  std::vector<std::string> sources;
  for (int i = 0; i < 3; ++i)
    sources.push_back(SamplePtx() + "\n// variant " + std::to_string(i));
  std::vector<ptx::Module> parsed;
  for (const auto& source : sources) {
    auto module = ptx::Parse(source);
    ASSERT_TRUE(module.ok());
    parsed.push_back(std::move(*module));
  }

  ASSERT_TRUE(cache.GetOrPatch(sources[0], parsed[0], options).ok());
  ASSERT_TRUE(cache.GetOrPatch(sources[1], parsed[1], options).ok());
  EXPECT_EQ(cache.size(), 2u);
  // Third entry evicts the least-recently-used (source 0).
  ASSERT_TRUE(cache.GetOrPatch(sources[2], parsed[2], options).ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  // Source 1 is still cached; source 0 must be re-patched.
  auto hit = cache.GetOrPatch(sources[1], parsed[1], options);
  ASSERT_TRUE(hit.ok());
  EXPECT_FALSE(hit->patched_now);
  auto repatch = cache.GetOrPatch(sources[0], parsed[0], options);
  ASSERT_TRUE(repatch.ok());
  EXPECT_TRUE(repatch->patched_now);
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(SandboxCacheTest, TierStateSurvivesEvictReinsertWhileHeld) {
  // ModuleTierState lifetime across eviction: sessions keep their module
  // and tier-state shared_ptrs, so evicting the slot must not fork a fresh
  // heat counter on re-insert. Pre-fix, the re-patched slot made a new
  // ModuleTierState: the module's heat restarted at zero (splitting future
  // launches between the old holders' state and the new one) and the fusion
  // pass ran — and was counted — a second time for the same logical module.
  SandboxCache cache(/*capacity=*/1);
  ptxpatcher::PatchOptions options;
  const std::string source_a = SamplePtx() + "\n// tier-revival A";
  const std::string source_b = SamplePtx() + "\n// tier-revival B";
  auto parsed_a = ptx::Parse(source_a);
  auto parsed_b = ptx::Parse(source_b);
  ASSERT_TRUE(parsed_a.ok() && parsed_b.ok());
  TierPolicy policy;
  policy.tier1_launch_threshold = 2;
  policy.tier2_launch_threshold = 0;

  // A session loads module A and keeps it hot: launch 2 promotes to tier 1.
  auto held = cache.GetOrPatch(source_a, *parsed_a, options);
  ASSERT_TRUE(held.ok()) << held.status();
  ASSERT_NE(held->tier_state, nullptr);
  EXPECT_FALSE(held->tier_state->OnLaunch(policy).promoted_tier1);
  auto promoted = held->tier_state->OnLaunch(policy);
  EXPECT_TRUE(promoted.promoted_tier1);
  EXPECT_EQ(promoted.tier, ptxexec::ExecTier::kFused);

  // Loading B evicts A's slot (capacity 1) while the session above still
  // holds A's module and tier state.
  ASSERT_TRUE(cache.GetOrPatch(source_b, *parsed_b, options).ok());
  EXPECT_EQ(cache.stats().evictions, 1u);

  // Re-inserting A re-patches it, but the surviving tier state is adopted:
  // same object, heat intact, promotion not repeated.
  auto reloaded = cache.GetOrPatch(source_a, *parsed_a, options);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_TRUE(reloaded->patched_now);
  ASSERT_NE(reloaded->tier_state, nullptr);
  EXPECT_EQ(reloaded->tier_state.get(), held->tier_state.get())
      << "evict/reinsert recycled the module's tier state";
  auto after = reloaded->tier_state->OnLaunch(policy);
  EXPECT_EQ(reloaded->tier_state->launches(), 3u)
      << "launch heat restarted across eviction";
  EXPECT_EQ(after.tier, ptxexec::ExecTier::kFused);
  EXPECT_FALSE(after.promoted_tier1) << "fusion pass re-ran after eviction";
  EXPECT_EQ(after.program.get(), promoted.program.get());

  // Once no session holds the tier state, eviction really retires it: the
  // next re-insert starts cold instead of reviving a dead module's heat.
  held = Result<SandboxCache::Lookup>(Status(NotFound("released")));
  reloaded = Result<SandboxCache::Lookup>(Status(NotFound("released")));
  ASSERT_TRUE(cache.GetOrPatch(source_b, *parsed_b, options).ok());  // evict A
  auto cold = cache.GetOrPatch(source_a, *parsed_a, options);
  ASSERT_TRUE(cold.ok());
  ASSERT_NE(cold->tier_state, nullptr);
  EXPECT_EQ(cold->tier_state->launches(), 0u);
}

TEST(SandboxCacheTest, HashPtxSourceIsStableAndDiscriminating) {
  const std::string a = SamplePtx();
  EXPECT_EQ(HashPtxSource(a), HashPtxSource(a));
  EXPECT_NE(HashPtxSource(a), HashPtxSource(a + " "));
  EXPECT_NE(HashPtxSource(""), HashPtxSource(" "));
}

TEST(SandboxCacheTest, TwoClientsLoadingIdenticalPtxPatchOnce) {
  // The acceptance property: identical PTX loaded by 2 clients is patched
  // exactly once, observable through the manager's stats.
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  GrdManager manager(&gpu, ManagerOptions{});
  LoopbackTransport transport(&manager);
  auto alice = GrdLib::Connect(&transport, 4 << 20);
  auto bob = GrdLib::Connect(&transport, 4 << 20);
  ASSERT_TRUE(alice.ok() && bob.ok());

  const std::string source = SamplePtx();
  auto module_a = alice->cuModuleLoadData(source);
  auto module_b = bob->cuModuleLoadData(source);
  ASSERT_TRUE(module_a.ok() && module_b.ok());
  EXPECT_EQ(manager.stats().ptx_modules_patched, 1u);
  EXPECT_EQ(manager.stats().ptx_cache_hits, 1u);
  EXPECT_EQ(manager.sandbox_cache().size(), 1u);

  // Both tenants launch from the shared sandboxed module; each is fenced to
  // its own partition.
  for (auto* lib : {&*alice, &*bob}) {
    auto fn = lib->cuModuleGetFunction(
        lib == &*alice ? *module_a : *module_b, "copyk");
    ASSERT_TRUE(fn.ok());
    DevicePtr in = 0, out = 0;
    ASSERT_TRUE(lib->cudaMalloc(&in, 256).ok());
    ASSERT_TRUE(lib->cudaMalloc(&out, 256).ok());
    std::vector<std::uint32_t> data(64, lib == &*alice ? 7u : 9u);
    ASSERT_TRUE(lib->cudaMemcpyH2D(in, data.data(), 256).ok());
    simcuda::LaunchConfig config;
    config.block = {64, 1, 1};
    ASSERT_TRUE(lib->cudaLaunchKernel(*fn, config,
                                      {KernelArg::U64(in), KernelArg::U64(out),
                                       KernelArg::U32(64)})
                    .ok());
    std::uint32_t check = 0;
    ASSERT_TRUE(
        lib->cudaMemcpy(&check, out, 4, MemcpyKind::kDeviceToHost).ok());
    EXPECT_EQ(check, lib == &*alice ? 7u : 9u);
  }
  EXPECT_EQ(manager.stats().sandboxed_launches, 2u);
  // Still exactly one patch after both launches.
  EXPECT_EQ(manager.stats().ptx_modules_patched, 1u);
}

TEST(SandboxCacheTest, ManagerSurfacesGuardElisionCounters) {
  // guard_elision_enabled defaults on: loading a module with elidable fences
  // mirrors the patcher's yield into ManagerStats (and MANAGER_STATS JSON),
  // and the versioned loop still computes the right answer end to end.
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  GrdManager manager(&gpu, ManagerOptions{});
  LoopbackTransport transport(&manager);
  auto client = GrdLib::Connect(&transport, 4 << 20);
  ASSERT_TRUE(client.ok());

  ptx::Module m;
  m.kernels.push_back(ptx::MakePointerWalkKernel("walk", 2));
  m.kernels.push_back(ptx::MakeRepeatedRmwKernel("rmw", 4));
  const std::string source = ptx::Print(m);
  auto module = client->cuModuleLoadData(source);
  ASSERT_TRUE(module.ok());
  EXPECT_GT(manager.stats().guards_elided.load(), 0u);
  EXPECT_EQ(manager.stats().loop_range_checks.load(), 1u);
  const std::string json = manager.stats().ToJson();
  EXPECT_NE(json.find("\"guards_elided\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"guards_hoisted\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"loop_range_checks\""), std::string::npos) << json;

  // 8 iterations x 256-byte stripes: the 32 threads' RMW lanes tile every
  // u32 of the 2 KiB buffer exactly once, so each word ends at 1.
  constexpr std::uint32_t kIters = 8;
  auto fn = client->cuModuleGetFunction(*module, "walk");
  ASSERT_TRUE(fn.ok());
  DevicePtr data = 0;
  ASSERT_TRUE(client->cudaMalloc(&data, kIters * 256).ok());
  std::vector<std::uint32_t> zero(kIters * 64, 0);
  ASSERT_TRUE(client->cudaMemcpyH2D(data, zero.data(), kIters * 256).ok());
  simcuda::LaunchConfig config;
  config.block = {32, 1, 1};
  ASSERT_TRUE(client
                  ->cudaLaunchKernel(*fn, config,
                                     {KernelArg::U64(data),
                                      KernelArg::U32(kIters)})
                  .ok());
  std::vector<std::uint32_t> result(kIters * 64, 0);
  ASSERT_TRUE(client
                  ->cudaMemcpy(result.data(), data, kIters * 256,
                               MemcpyKind::kDeviceToHost)
                  .ok());
  for (std::size_t i = 0; i < result.size(); ++i)
    ASSERT_EQ(result[i], 1u) << "word " << i;

  // Forcing the oracle path off leaves the counters untouched.
  ManagerOptions no_elision;
  no_elision.guard_elision_enabled = false;
  GrdManager plain_manager(&gpu, no_elision);
  LoopbackTransport plain_transport(&plain_manager);
  auto plain = GrdLib::Connect(&plain_transport, 4 << 20);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(plain->cuModuleLoadData(source).ok());
  EXPECT_EQ(plain_manager.stats().guards_elided.load(), 0u);
  EXPECT_EQ(plain_manager.stats().loop_range_checks.load(), 0u);
}

TEST(SandboxCacheTest, ConcurrentIdenticalLoadsPatchOnce) {
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  GrdManager manager(&gpu, ManagerOptions{});
  LoopbackTransport transport(&manager);
  const std::string source = SamplePtx();

  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      auto lib = GrdLib::Connect(&transport, 1 << 20);
      if (!lib.ok() || !lib->cuModuleLoadData(source).ok()) ++failures;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(manager.stats().ptx_modules_patched, 1u);
  EXPECT_EQ(manager.stats().ptx_cache_hits,
            static_cast<std::uint64_t>(kThreads - 1));
}

TEST(SandboxCacheTest, CompiledProgramCachedAlongsidePatch) {
  // The bytecode program is compiled exactly once per distinct source: a
  // cache hit returns the stored CompiledModule without re-running
  // CompileKernel (compiles stays at 1).
  SandboxCache cache;
  const std::string source = SamplePtx();
  auto parsed = ptx::Parse(source);
  ASSERT_TRUE(parsed.ok());
  ptxpatcher::PatchOptions options;

  auto first = cache.GetOrPatch(source, *parsed, options);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_NE(first->compiled, nullptr);
  EXPECT_EQ(cache.stats().compiles, 1u);

  auto second = cache.GetOrPatch(source, *parsed, options);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->patched_now);
  EXPECT_EQ(first->compiled.get(), second->compiled.get());
  EXPECT_EQ(cache.stats().compiles, 1u) << "cache hit re-ran CompileKernel";

  // The cached program is runnable as-is.
  auto program = first->compiled->Find("copyk");
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_GT((*program)->code.size(), 0u);
}

TEST(SandboxCacheTest, ManagerCacheHitSkipsParsePatchAndCompile) {
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  GrdManager manager(&gpu, ManagerOptions{});
  LoopbackTransport transport(&manager);
  auto alice = GrdLib::Connect(&transport, 4 << 20);
  auto bob = GrdLib::Connect(&transport, 4 << 20);
  ASSERT_TRUE(alice.ok() && bob.ok());

  const std::string source = SamplePtx();
  ASSERT_TRUE(alice->cuModuleLoadData(source).ok());
  ASSERT_TRUE(bob->cuModuleLoadData(source).ok());
  EXPECT_EQ(manager.stats().ptx_modules_patched, 1u);
  EXPECT_EQ(manager.stats().ptx_cache_hits, 1u);
  // One program lowering total: the hit skipped CompileKernel too.
  EXPECT_EQ(manager.stats().ptx_programs_compiled, 1u);
  EXPECT_EQ(manager.sandbox_cache().stats().compiles, 1u);
}

TEST(SandboxCacheTest, CheckpointResumeUnderCompileCache) {
  // Preemption checkpoint/resume when the victim runs a compiled program
  // served from a cache HIT: a realtime tenant revokes a batch tenant's
  // full-device kernel at a safe point, the kernel resumes its cached
  // program and completes with correct output and no replayed blocks.
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  ManagerOptions options;
  options.scheduler_executors = 4;
  options.device_time_ns_per_cycle = 300.0;
  options.aging_quantum_ns = 0;
  GrdManager manager(&gpu, options);
  LoopbackTransport transport(&manager);

  auto rt = GrdLib::Connect(&transport, 8 << 20);
  auto batch = GrdLib::Connect(&transport, 16ull << 20);
  ASSERT_TRUE(rt.ok() && batch.ok());
  ASSERT_TRUE(rt->SetPriority(protocol::PriorityClass::kRealtime).ok());
  ASSERT_TRUE(batch->SetPriority(protocol::PriorityClass::kBatch).ok());

  const std::string source = SamplePtx();
  auto rt_module = rt->cuModuleLoadData(source);
  auto batch_module = batch->cuModuleLoadData(source);  // cache hit
  ASSERT_TRUE(rt_module.ok() && batch_module.ok());
  ASSERT_EQ(manager.stats().ptx_programs_compiled, 1u);
  auto rt_fn = rt->cuModuleGetFunction(*rt_module, "copyk");
  auto batch_fn = batch->cuModuleGetFunction(*batch_module, "copyk");
  ASSERT_TRUE(rt_fn.ok() && batch_fn.ok());

  constexpr std::uint32_t kBatchElems = 48 * 1024;  // 48 blocks: every SM
  constexpr std::uint32_t kRtElems = 256;
  DevicePtr bsrc = 0, bdst = 0, rsrc = 0, rdst = 0;
  ASSERT_TRUE(batch->cudaMalloc(&bsrc, kBatchElems * 4).ok());
  ASSERT_TRUE(batch->cudaMalloc(&bdst, kBatchElems * 4).ok());
  ASSERT_TRUE(rt->cudaMalloc(&rsrc, kRtElems * 4).ok());
  ASSERT_TRUE(rt->cudaMalloc(&rdst, kRtElems * 4).ok());
  std::vector<std::uint32_t> bdata(kBatchElems);
  for (std::uint32_t i = 0; i < kBatchElems; ++i) bdata[i] = i * 3 + 1;
  ASSERT_TRUE(batch->cudaMemcpyH2D(bsrc, bdata.data(), kBatchElems * 4).ok());
  std::vector<std::uint32_t> rdata(kRtElems, 0xFA57);
  ASSERT_TRUE(rt->cudaMemcpyH2D(rsrc, rdata.data(), kRtElems * 4).ok());

  simcuda::StreamId bstream = 0, rstream = 0;
  ASSERT_TRUE(batch->cudaStreamCreate(&bstream).ok());
  ASSERT_TRUE(rt->cudaStreamCreate(&rstream).ok());

  simcuda::LaunchConfig bconfig;
  bconfig.block = {1024, 1, 1};
  bconfig.grid = {kBatchElems / 1024, 1, 1};
  bconfig.stream = bstream;
  ASSERT_TRUE(batch
                  ->cudaLaunchKernel(*batch_fn, bconfig,
                                     {KernelArg::U64(bsrc),
                                      KernelArg::U64(bdst),
                                      KernelArg::U32(kBatchElems)})
                  .ok());

  // Only launch the realtime kernel once the batch kernel is resident, so
  // the preemption path is deterministically exercised.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (manager.scheduler().resident_kernels() == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "batch kernel never became resident";
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }

  simcuda::LaunchConfig rconfig;
  rconfig.block = {256, 1, 1};
  rconfig.grid = {1, 1, 1};
  rconfig.stream = rstream;
  ASSERT_TRUE(rt->cudaLaunchKernel(*rt_fn, rconfig,
                                   {KernelArg::U64(rsrc), KernelArg::U64(rdst),
                                    KernelArg::U32(kRtElems)})
                  .ok());
  ASSERT_TRUE(rt->cudaStreamSynchronize(rstream).ok());
  ASSERT_TRUE(batch->cudaStreamSynchronize(bstream).ok());

  EXPECT_GE(manager.stats().preemptions, 1u);
  EXPECT_GE(manager.stats().preemption_resumes, 1u);
  // Exact block accounting: a replayed block would exceed the grid sizes.
  EXPECT_EQ(manager.stats().kernel_blocks_executed,
            kBatchElems / 1024 + kRtElems / 256);
  std::vector<std::uint32_t> out(kBatchElems);
  ASSERT_TRUE(batch
                  ->cudaMemcpy(out.data(), bdst, kBatchElems * 4,
                               MemcpyKind::kDeviceToHost)
                  .ok());
  EXPECT_EQ(out, bdata);
}

// ---- tiered-execution promotion state ---------------------------------------

TEST(ModuleTierStateTest, PromotesByLaunchHeatExactlyOnce) {
  auto parsed = ptx::Parse(SamplePtx());
  ASSERT_TRUE(parsed.ok());
  ModuleTierState state(ptxexec::CompiledModule::Compile(*parsed));
  TierPolicy policy;
  policy.tier1_launch_threshold = 3;
  policy.tier2_launch_threshold = 5;

  for (int i = 1; i <= 2; ++i) {
    auto d = state.OnLaunch(policy);
    EXPECT_EQ(d.tier, ptxexec::ExecTier::kCompiled) << "launch " << i;
    EXPECT_EQ(d.program, nullptr);
    EXPECT_FALSE(d.promoted_tier1 || d.promoted_tier2);
  }
  // Launch 3 crosses the tier-1 threshold: the fusion pass runs exactly here.
  auto d3 = state.OnLaunch(policy);
  EXPECT_EQ(d3.tier, ptxexec::ExecTier::kFused);
  EXPECT_TRUE(d3.promoted_tier1);
  EXPECT_FALSE(d3.promoted_tier2);
  ASSERT_NE(d3.program, nullptr);
  EXPECT_GT(d3.superinstructions_fused, 0u);
  // Launch 4: same fused program, no re-promotion.
  auto d4 = state.OnLaunch(policy);
  EXPECT_EQ(d4.tier, ptxexec::ExecTier::kFused);
  EXPECT_FALSE(d4.promoted_tier1);
  EXPECT_EQ(d4.program.get(), d3.program.get()) << "fusion must run once";
  // Launch 5 crosses tier 2; launch 6 stays there without re-announcing.
  auto d5 = state.OnLaunch(policy);
  EXPECT_EQ(d5.tier, ptxexec::ExecTier::kThreaded);
  EXPECT_TRUE(d5.promoted_tier2);
  EXPECT_FALSE(d5.promoted_tier1);
  auto d6 = state.OnLaunch(policy);
  EXPECT_EQ(d6.tier, ptxexec::ExecTier::kThreaded);
  EXPECT_FALSE(d6.promoted_tier1 || d6.promoted_tier2);
  EXPECT_EQ(state.launches(), 6u);
}

TEST(ModuleTierStateTest, DisabledPolicyAccruesHeatWithoutPromoting) {
  auto parsed = ptx::Parse(SamplePtx());
  ASSERT_TRUE(parsed.ok());
  ModuleTierState state(ptxexec::CompiledModule::Compile(*parsed));
  TierPolicy disabled;
  disabled.enabled = false;
  disabled.tier1_launch_threshold = 2;
  disabled.tier2_launch_threshold = 4;
  for (int i = 0; i < 10; ++i) {
    auto d = state.OnLaunch(disabled);
    EXPECT_EQ(d.tier, ptxexec::ExecTier::kCompiled);
    EXPECT_EQ(d.program, nullptr);
  }
  EXPECT_EQ(state.launches(), 10u);
  // Heat accrued while disabled: flipping the policy on promotes the module
  // straight through both tiers on its very next launch.
  TierPolicy enabled = disabled;
  enabled.enabled = true;
  auto d = state.OnLaunch(enabled);
  EXPECT_EQ(d.tier, ptxexec::ExecTier::kThreaded);
  EXPECT_TRUE(d.promoted_tier1);
  EXPECT_TRUE(d.promoted_tier2);
}

TEST(ModuleTierStateTest, ZeroThresholdDisablesThatTier) {
  auto parsed = ptx::Parse(SamplePtx());
  ASSERT_TRUE(parsed.ok());
  const auto compiled = ptxexec::CompiledModule::Compile(*parsed);

  // tier2 = 0: the module plateaus at tier 1 forever.
  ModuleTierState capped(compiled);
  TierPolicy no_tier2;
  no_tier2.tier1_launch_threshold = 1;
  no_tier2.tier2_launch_threshold = 0;
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(capped.OnLaunch(no_tier2).tier, ptxexec::ExecTier::kFused);

  // tier1 = 0: the module jumps from compiled straight to threaded (the
  // fusion pass still runs then, since tier 2 executes the fused program).
  ModuleTierState leap(compiled);
  TierPolicy no_tier1;
  no_tier1.tier1_launch_threshold = 0;
  no_tier1.tier2_launch_threshold = 2;
  EXPECT_EQ(leap.OnLaunch(no_tier1).tier, ptxexec::ExecTier::kCompiled);
  auto d = leap.OnLaunch(no_tier1);
  EXPECT_EQ(d.tier, ptxexec::ExecTier::kThreaded);
  EXPECT_TRUE(d.promoted_tier1);
  EXPECT_TRUE(d.promoted_tier2);
  ASSERT_NE(d.program, nullptr);
}

TEST(SandboxCacheTest, TierHeatSharedAcrossTenantsAndSurfacedInStats) {
  // Launch heat is content-addressed: two tenants of the same PTX share one
  // ModuleTierState through the cache slot, so their launches jointly cross
  // the promotion thresholds — and the promotions/instruction mix land in
  // ManagerStats and its JSON export (the MANAGER_STATS payload).
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  ManagerOptions options;
  options.tier1_launch_threshold = 2;
  options.tier2_launch_threshold = 3;
  GrdManager manager(&gpu, options);
  LoopbackTransport transport(&manager);
  auto alice = GrdLib::Connect(&transport, 4 << 20);
  auto bob = GrdLib::Connect(&transport, 4 << 20);
  ASSERT_TRUE(alice.ok() && bob.ok());

  const std::string source = SamplePtx();
  auto module_a = alice->cuModuleLoadData(source);
  auto module_b = bob->cuModuleLoadData(source);  // cache hit: shared state
  ASSERT_TRUE(module_a.ok() && module_b.ok());

  const auto launch = [&](GrdLib& lib, simcuda::ModuleId module,
                          std::uint32_t fill) {
    auto fn = lib.cuModuleGetFunction(module, "copyk");
    ASSERT_TRUE(fn.ok());
    DevicePtr in = 0, out = 0;
    ASSERT_TRUE(lib.cudaMalloc(&in, 256).ok());
    ASSERT_TRUE(lib.cudaMalloc(&out, 256).ok());
    std::vector<std::uint32_t> data(64, fill);
    ASSERT_TRUE(lib.cudaMemcpyH2D(in, data.data(), 256).ok());
    simcuda::LaunchConfig config;
    config.block = {64, 1, 1};
    ASSERT_TRUE(lib.cudaLaunchKernel(*fn, config,
                                     {KernelArg::U64(in), KernelArg::U64(out),
                                      KernelArg::U32(64)})
                    .ok());
    std::uint32_t check = 0;
    ASSERT_TRUE(lib.cudaMemcpy(&check, out, 4, MemcpyKind::kDeviceToHost).ok());
    EXPECT_EQ(check, fill) << "tiered launch corrupted output";
  };

  // Launch 1 (alice): tier 0. Launch 2 (bob): crosses tier 1 — bob benefits
  // from alice's heat. Launch 3 (bob): crosses tier 2.
  launch(*alice, *module_a, 7u);
  EXPECT_EQ(manager.stats().tier1_promotions, 0u);
  launch(*bob, *module_b, 9u);
  EXPECT_EQ(manager.stats().tier1_promotions, 1u);
  EXPECT_EQ(manager.stats().tier2_promotions, 0u);
  launch(*bob, *module_b, 11u);
  EXPECT_EQ(manager.stats().tier1_promotions, 1u);
  EXPECT_EQ(manager.stats().tier2_promotions, 1u);
  EXPECT_GT(manager.stats().superinstructions_fused, 0u);
  // One launch retired per tier.
  EXPECT_GT(manager.stats().tier_instructions[0], 0u);
  EXPECT_GT(manager.stats().tier_instructions[1], 0u);
  EXPECT_GT(manager.stats().tier_instructions[2], 0u);

  const std::string json = manager.stats().ToJson();
  EXPECT_NE(json.find("\"tier1_promotions\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tier2_promotions\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"superinstructions_fused\":"), std::string::npos);
  EXPECT_NE(json.find("\"tier0_instructions\":"), std::string::npos);
  EXPECT_NE(json.find("\"tier2_instructions\":"), std::string::npos);
}

TEST(SandboxCacheTest, TieringDisabledStaysAtTierZero) {
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  ManagerOptions options;
  options.tiered_execution_enabled = false;
  options.tier1_launch_threshold = 1;
  options.tier2_launch_threshold = 1;
  GrdManager manager(&gpu, options);
  LoopbackTransport transport(&manager);
  auto lib = GrdLib::Connect(&transport, 4 << 20);
  ASSERT_TRUE(lib.ok());
  auto module = lib->cuModuleLoadData(SamplePtx());
  ASSERT_TRUE(module.ok());
  auto fn = lib->cuModuleGetFunction(*module, "copyk");
  ASSERT_TRUE(fn.ok());
  DevicePtr in = 0, out = 0;
  ASSERT_TRUE(lib->cudaMalloc(&in, 256).ok());
  ASSERT_TRUE(lib->cudaMalloc(&out, 256).ok());
  simcuda::LaunchConfig config;
  config.block = {64, 1, 1};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(lib->cudaLaunchKernel(*fn, config,
                                      {KernelArg::U64(in), KernelArg::U64(out),
                                       KernelArg::U32(64)})
                    .ok());
  }
  ASSERT_TRUE(lib->cudaDeviceSynchronize().ok());
  EXPECT_EQ(manager.stats().tier1_promotions, 0u);
  EXPECT_EQ(manager.stats().tier2_promotions, 0u);
  EXPECT_GT(manager.stats().tier_instructions[0], 0u);
  EXPECT_EQ(manager.stats().tier_instructions[1], 0u);
  EXPECT_EQ(manager.stats().tier_instructions[2], 0u);
}

TEST(SandboxCacheTest, ProtectionDisabledBypassesCache) {
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  ManagerOptions options;
  options.protection_enabled = false;
  GrdManager manager(&gpu, options);
  LoopbackTransport transport(&manager);
  auto lib = GrdLib::Connect(&transport, 1 << 20);
  ASSERT_TRUE(lib.ok());
  ASSERT_TRUE(lib->cuModuleLoadData(SamplePtx()).ok());
  EXPECT_EQ(manager.stats().ptx_modules_patched, 0u);
  EXPECT_EQ(manager.sandbox_cache().size(), 0u);
}

}  // namespace
}  // namespace grd::guardian
