// SandboxCache coverage: content-addressed patch sharing across tenants,
// mode-keyed entries, collision safety and concurrent loads.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "guardian/grdlib.hpp"
#include "guardian/manager.hpp"
#include "guardian/sandbox_cache.hpp"
#include "guardian/transport.hpp"
#include "ptx/generator.hpp"
#include "ptx/parser.hpp"
#include "ptx/printer.hpp"
#include "simgpu/device_spec.hpp"

namespace grd::guardian {
namespace {

using ptxexec::KernelArg;
using simcuda::DevicePtr;
using simcuda::MemcpyKind;

std::string SamplePtx() { return ptx::Print(ptx::MakeSampleModule()); }

TEST(SandboxCacheTest, SecondLookupOfIdenticalSourceHitsCache) {
  SandboxCache cache;
  const std::string source = SamplePtx();
  auto parsed = ptx::Parse(source);
  ASSERT_TRUE(parsed.ok());
  ptxpatcher::PatchOptions options;

  auto first = cache.GetOrPatch(source, *parsed, options);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_TRUE(first->patched_now);

  auto second = cache.GetOrPatch(source, *parsed, options);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->patched_now);
  // Shared immutable module, not a copy.
  EXPECT_EQ(first->module.get(), second->module.get());

  EXPECT_EQ(cache.stats().patches, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SandboxCacheTest, DifferentBoundsCheckModesDoNotCollide) {
  SandboxCache cache;
  const std::string source = SamplePtx();
  auto parsed = ptx::Parse(source);
  ASSERT_TRUE(parsed.ok());

  ptxpatcher::PatchOptions bitwise;
  bitwise.mode = ptxpatcher::BoundsCheckMode::kFencingBitwise;
  ptxpatcher::PatchOptions modulo;
  modulo.mode = ptxpatcher::BoundsCheckMode::kFencingModulo;
  ptxpatcher::PatchOptions checking;
  checking.mode = ptxpatcher::BoundsCheckMode::kChecking;

  auto a = cache.GetOrPatch(source, *parsed, bitwise);
  auto b = cache.GetOrPatch(source, *parsed, modulo);
  auto c = cache.GetOrPatch(source, *parsed, checking);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_TRUE(a->patched_now);
  EXPECT_TRUE(b->patched_now);
  EXPECT_TRUE(c->patched_now);
  EXPECT_NE(a->module.get(), b->module.get());
  EXPECT_NE(b->module.get(), c->module.get());
  EXPECT_EQ(cache.stats().patches, 3u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.size(), 3u);

  // Instrumentation genuinely differs across modes (the bitwise module
  // fences with and/or, the modulo module with rem).
  EXPECT_NE(ptx::Print(*a->module), ptx::Print(*b->module));
}

TEST(SandboxCacheTest, PatchFlagVariantsAreDistinctEntries) {
  SandboxCache cache;
  const std::string source = SamplePtx();
  auto parsed = ptx::Parse(source);
  ASSERT_TRUE(parsed.ok());

  ptxpatcher::PatchOptions plain;
  ptxpatcher::PatchOptions skip_safe = plain;
  skip_safe.skip_statically_safe = true;
  auto a = cache.GetOrPatch(source, *parsed, plain);
  auto b = cache.GetOrPatch(source, *parsed, skip_safe);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(b->patched_now);  // not served from the plain entry
  EXPECT_EQ(cache.stats().patches, 2u);
}

TEST(SandboxCacheTest, CapacityIsEnforcedWithLruEviction) {
  SandboxCache cache(/*capacity=*/2);
  ptxpatcher::PatchOptions options;
  // Three distinct sources: version-comment variants of the sample module.
  std::vector<std::string> sources;
  for (int i = 0; i < 3; ++i)
    sources.push_back(SamplePtx() + "\n// variant " + std::to_string(i));
  std::vector<ptx::Module> parsed;
  for (const auto& source : sources) {
    auto module = ptx::Parse(source);
    ASSERT_TRUE(module.ok());
    parsed.push_back(std::move(*module));
  }

  ASSERT_TRUE(cache.GetOrPatch(sources[0], parsed[0], options).ok());
  ASSERT_TRUE(cache.GetOrPatch(sources[1], parsed[1], options).ok());
  EXPECT_EQ(cache.size(), 2u);
  // Third entry evicts the least-recently-used (source 0).
  ASSERT_TRUE(cache.GetOrPatch(sources[2], parsed[2], options).ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  // Source 1 is still cached; source 0 must be re-patched.
  auto hit = cache.GetOrPatch(sources[1], parsed[1], options);
  ASSERT_TRUE(hit.ok());
  EXPECT_FALSE(hit->patched_now);
  auto repatch = cache.GetOrPatch(sources[0], parsed[0], options);
  ASSERT_TRUE(repatch.ok());
  EXPECT_TRUE(repatch->patched_now);
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(SandboxCacheTest, HashPtxSourceIsStableAndDiscriminating) {
  const std::string a = SamplePtx();
  EXPECT_EQ(HashPtxSource(a), HashPtxSource(a));
  EXPECT_NE(HashPtxSource(a), HashPtxSource(a + " "));
  EXPECT_NE(HashPtxSource(""), HashPtxSource(" "));
}

TEST(SandboxCacheTest, TwoClientsLoadingIdenticalPtxPatchOnce) {
  // The acceptance property: identical PTX loaded by 2 clients is patched
  // exactly once, observable through the manager's stats.
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  GrdManager manager(&gpu, ManagerOptions{});
  LoopbackTransport transport(&manager);
  auto alice = GrdLib::Connect(&transport, 4 << 20);
  auto bob = GrdLib::Connect(&transport, 4 << 20);
  ASSERT_TRUE(alice.ok() && bob.ok());

  const std::string source = SamplePtx();
  auto module_a = alice->cuModuleLoadData(source);
  auto module_b = bob->cuModuleLoadData(source);
  ASSERT_TRUE(module_a.ok() && module_b.ok());
  EXPECT_EQ(manager.stats().ptx_modules_patched, 1u);
  EXPECT_EQ(manager.stats().ptx_cache_hits, 1u);
  EXPECT_EQ(manager.sandbox_cache().size(), 1u);

  // Both tenants launch from the shared sandboxed module; each is fenced to
  // its own partition.
  for (auto* lib : {&*alice, &*bob}) {
    auto fn = lib->cuModuleGetFunction(
        lib == &*alice ? *module_a : *module_b, "copyk");
    ASSERT_TRUE(fn.ok());
    DevicePtr in = 0, out = 0;
    ASSERT_TRUE(lib->cudaMalloc(&in, 256).ok());
    ASSERT_TRUE(lib->cudaMalloc(&out, 256).ok());
    std::vector<std::uint32_t> data(64, lib == &*alice ? 7u : 9u);
    ASSERT_TRUE(lib->cudaMemcpyH2D(in, data.data(), 256).ok());
    simcuda::LaunchConfig config;
    config.block = {64, 1, 1};
    ASSERT_TRUE(lib->cudaLaunchKernel(*fn, config,
                                      {KernelArg::U64(in), KernelArg::U64(out),
                                       KernelArg::U32(64)})
                    .ok());
    std::uint32_t check = 0;
    ASSERT_TRUE(
        lib->cudaMemcpy(&check, out, 4, MemcpyKind::kDeviceToHost).ok());
    EXPECT_EQ(check, lib == &*alice ? 7u : 9u);
  }
  EXPECT_EQ(manager.stats().sandboxed_launches, 2u);
  // Still exactly one patch after both launches.
  EXPECT_EQ(manager.stats().ptx_modules_patched, 1u);
}

TEST(SandboxCacheTest, ConcurrentIdenticalLoadsPatchOnce) {
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  GrdManager manager(&gpu, ManagerOptions{});
  LoopbackTransport transport(&manager);
  const std::string source = SamplePtx();

  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      auto lib = GrdLib::Connect(&transport, 1 << 20);
      if (!lib.ok() || !lib->cuModuleLoadData(source).ok()) ++failures;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(manager.stats().ptx_modules_patched, 1u);
  EXPECT_EQ(manager.stats().ptx_cache_hits,
            static_cast<std::uint64_t>(kThreads - 1));
}

TEST(SandboxCacheTest, CompiledProgramCachedAlongsidePatch) {
  // The bytecode program is compiled exactly once per distinct source: a
  // cache hit returns the stored CompiledModule without re-running
  // CompileKernel (compiles stays at 1).
  SandboxCache cache;
  const std::string source = SamplePtx();
  auto parsed = ptx::Parse(source);
  ASSERT_TRUE(parsed.ok());
  ptxpatcher::PatchOptions options;

  auto first = cache.GetOrPatch(source, *parsed, options);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_NE(first->compiled, nullptr);
  EXPECT_EQ(cache.stats().compiles, 1u);

  auto second = cache.GetOrPatch(source, *parsed, options);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->patched_now);
  EXPECT_EQ(first->compiled.get(), second->compiled.get());
  EXPECT_EQ(cache.stats().compiles, 1u) << "cache hit re-ran CompileKernel";

  // The cached program is runnable as-is.
  auto program = first->compiled->Find("copyk");
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_GT((*program)->code.size(), 0u);
}

TEST(SandboxCacheTest, ManagerCacheHitSkipsParsePatchAndCompile) {
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  GrdManager manager(&gpu, ManagerOptions{});
  LoopbackTransport transport(&manager);
  auto alice = GrdLib::Connect(&transport, 4 << 20);
  auto bob = GrdLib::Connect(&transport, 4 << 20);
  ASSERT_TRUE(alice.ok() && bob.ok());

  const std::string source = SamplePtx();
  ASSERT_TRUE(alice->cuModuleLoadData(source).ok());
  ASSERT_TRUE(bob->cuModuleLoadData(source).ok());
  EXPECT_EQ(manager.stats().ptx_modules_patched, 1u);
  EXPECT_EQ(manager.stats().ptx_cache_hits, 1u);
  // One program lowering total: the hit skipped CompileKernel too.
  EXPECT_EQ(manager.stats().ptx_programs_compiled, 1u);
  EXPECT_EQ(manager.sandbox_cache().stats().compiles, 1u);
}

TEST(SandboxCacheTest, CheckpointResumeUnderCompileCache) {
  // Preemption checkpoint/resume when the victim runs a compiled program
  // served from a cache HIT: a realtime tenant revokes a batch tenant's
  // full-device kernel at a safe point, the kernel resumes its cached
  // program and completes with correct output and no replayed blocks.
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  ManagerOptions options;
  options.scheduler_executors = 4;
  options.device_time_ns_per_cycle = 300.0;
  options.aging_quantum_ns = 0;
  GrdManager manager(&gpu, options);
  LoopbackTransport transport(&manager);

  auto rt = GrdLib::Connect(&transport, 8 << 20);
  auto batch = GrdLib::Connect(&transport, 16ull << 20);
  ASSERT_TRUE(rt.ok() && batch.ok());
  ASSERT_TRUE(rt->SetPriority(protocol::PriorityClass::kRealtime).ok());
  ASSERT_TRUE(batch->SetPriority(protocol::PriorityClass::kBatch).ok());

  const std::string source = SamplePtx();
  auto rt_module = rt->cuModuleLoadData(source);
  auto batch_module = batch->cuModuleLoadData(source);  // cache hit
  ASSERT_TRUE(rt_module.ok() && batch_module.ok());
  ASSERT_EQ(manager.stats().ptx_programs_compiled, 1u);
  auto rt_fn = rt->cuModuleGetFunction(*rt_module, "copyk");
  auto batch_fn = batch->cuModuleGetFunction(*batch_module, "copyk");
  ASSERT_TRUE(rt_fn.ok() && batch_fn.ok());

  constexpr std::uint32_t kBatchElems = 48 * 1024;  // 48 blocks: every SM
  constexpr std::uint32_t kRtElems = 256;
  DevicePtr bsrc = 0, bdst = 0, rsrc = 0, rdst = 0;
  ASSERT_TRUE(batch->cudaMalloc(&bsrc, kBatchElems * 4).ok());
  ASSERT_TRUE(batch->cudaMalloc(&bdst, kBatchElems * 4).ok());
  ASSERT_TRUE(rt->cudaMalloc(&rsrc, kRtElems * 4).ok());
  ASSERT_TRUE(rt->cudaMalloc(&rdst, kRtElems * 4).ok());
  std::vector<std::uint32_t> bdata(kBatchElems);
  for (std::uint32_t i = 0; i < kBatchElems; ++i) bdata[i] = i * 3 + 1;
  ASSERT_TRUE(batch->cudaMemcpyH2D(bsrc, bdata.data(), kBatchElems * 4).ok());
  std::vector<std::uint32_t> rdata(kRtElems, 0xFA57);
  ASSERT_TRUE(rt->cudaMemcpyH2D(rsrc, rdata.data(), kRtElems * 4).ok());

  simcuda::StreamId bstream = 0, rstream = 0;
  ASSERT_TRUE(batch->cudaStreamCreate(&bstream).ok());
  ASSERT_TRUE(rt->cudaStreamCreate(&rstream).ok());

  simcuda::LaunchConfig bconfig;
  bconfig.block = {1024, 1, 1};
  bconfig.grid = {kBatchElems / 1024, 1, 1};
  bconfig.stream = bstream;
  ASSERT_TRUE(batch
                  ->cudaLaunchKernel(*batch_fn, bconfig,
                                     {KernelArg::U64(bsrc),
                                      KernelArg::U64(bdst),
                                      KernelArg::U32(kBatchElems)})
                  .ok());

  // Only launch the realtime kernel once the batch kernel is resident, so
  // the preemption path is deterministically exercised.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (manager.scheduler().resident_kernels() == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "batch kernel never became resident";
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }

  simcuda::LaunchConfig rconfig;
  rconfig.block = {256, 1, 1};
  rconfig.grid = {1, 1, 1};
  rconfig.stream = rstream;
  ASSERT_TRUE(rt->cudaLaunchKernel(*rt_fn, rconfig,
                                   {KernelArg::U64(rsrc), KernelArg::U64(rdst),
                                    KernelArg::U32(kRtElems)})
                  .ok());
  ASSERT_TRUE(rt->cudaStreamSynchronize(rstream).ok());
  ASSERT_TRUE(batch->cudaStreamSynchronize(bstream).ok());

  EXPECT_GE(manager.stats().preemptions, 1u);
  EXPECT_GE(manager.stats().preemption_resumes, 1u);
  // Exact block accounting: a replayed block would exceed the grid sizes.
  EXPECT_EQ(manager.stats().kernel_blocks_executed,
            kBatchElems / 1024 + kRtElems / 256);
  std::vector<std::uint32_t> out(kBatchElems);
  ASSERT_TRUE(batch
                  ->cudaMemcpy(out.data(), bdst, kBatchElems * 4,
                               MemcpyKind::kDeviceToHost)
                  .ok());
  EXPECT_EQ(out, bdata);
}

TEST(SandboxCacheTest, ProtectionDisabledBypassesCache) {
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  ManagerOptions options;
  options.protection_enabled = false;
  GrdManager manager(&gpu, options);
  LoopbackTransport transport(&manager);
  auto lib = GrdLib::Connect(&transport, 1 << 20);
  ASSERT_TRUE(lib.ok());
  ASSERT_TRUE(lib->cuModuleLoadData(SamplePtx()).ok());
  EXPECT_EQ(manager.stats().ptx_modules_patched, 0u);
  EXPECT_EQ(manager.sandbox_cache().size(), 0u);
}

}  // namespace
}  // namespace grd::guardian
