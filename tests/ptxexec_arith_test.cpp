// Interpreter arithmetic/control edge cases: every opcode family the
// patcher or the library kernels rely on, executed via small PTX snippets.
#include <gtest/gtest.h>

#include "ptx/parser.hpp"
#include "ptxexec/interpreter.hpp"

namespace grd::ptxexec {
namespace {

// Runs a kernel body that writes a u64 result to [out]. The body may use
// %rd1 (preloaded with the out pointer, already cvta'd) and args a, b as
// u64 params %rd2, %rd3.
class ArithTest : public ::testing::Test {
 protected:
  ArithTest() : memory_(1 << 20), interp_(&memory_, &allow_, 1) {}

  Result<std::uint64_t> Run(const std::string& body, std::uint64_t a = 0,
                            std::uint64_t b = 0) {
    const std::string src = R"(
.version 7.7
.target sm_86
.address_size 64
.visible .entry t(.param .u64 p_out, .param .u64 p_a, .param .u64 p_b)
{
    .reg .pred %p<4>;
    .reg .f32 %f<8>;
    .reg .f64 %fd<8>;
    .reg .b32 %r<16>;
    .reg .b64 %rd<16>;
    ld.param.u64 %rd1, [p_out];
    ld.param.u64 %rd2, [p_a];
    ld.param.u64 %rd3, [p_b];
    cvta.to.global.u64 %rd1, %rd1;
)" + body + R"(
    ret;
}
)";
    auto module = ptx::Parse(src);
    if (!module.ok()) return module.status();
    LaunchParams params;
    params.args = {KernelArg::U64(0x1000), KernelArg::U64(a),
                   KernelArg::U64(b)};
    auto stats = interp_.Execute(*module, "t", params);
    if (!stats.ok()) return stats.status();
    return memory_.Load<std::uint64_t>(0x1000);
  }

  simgpu::GlobalMemory memory_;
  simgpu::AllowAllPolicy allow_;
  Interpreter interp_;
};

TEST_F(ArithTest, SignedDivisionTruncatesTowardZero) {
  auto r = Run(R"(
    div.s32 %r1, %rd2, %rd3;
    cvt.s64.s32 %rd4, %r1;
    st.global.u64 [%rd1], %rd4;
)", static_cast<std::uint64_t>(-7), 2);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(static_cast<std::int64_t>(*r), -3);
}

TEST_F(ArithTest, UnsignedRemainder) {
  auto r = Run(R"(
    rem.u64 %rd4, %rd2, %rd3;
    st.global.u64 [%rd1], %rd4;
)", 1000003, 97);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 1000003ull % 97);
}

TEST_F(ArithTest, DivisionByZeroYieldsZeroNotCrash) {
  auto r = Run(R"(
    div.u32 %r1, %rd2, %rd3;
    cvt.u64.u32 %rd4, %r1;
    st.global.u64 [%rd1], %rd4;
)", 42, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 0u);
}

TEST_F(ArithTest, MulHiUnsigned) {
  auto r = Run(R"(
    mul.hi.u32 %r1, %rd2, %rd3;
    cvt.u64.u32 %rd4, %r1;
    st.global.u64 [%rd1], %rd4;
)", 0xFFFFFFFF, 0xFFFFFFFF);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 0xFFFFFFFEull);  // high 32 of (2^32-1)^2
}

TEST_F(ArithTest, MulWideSignedNegative) {
  auto r = Run(R"(
    mul.wide.s32 %rd4, %rd2, %rd3;
    st.global.u64 [%rd1], %rd4;
)", static_cast<std::uint32_t>(-3), 5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(static_cast<std::int64_t>(*r), -15);
}

TEST_F(ArithTest, SignedMinMax) {
  auto r = Run(R"(
    min.s32 %r1, %rd2, %rd3;
    max.s32 %r2, %rd2, %rd3;
    add.s32 %r3, %r1, %r2;
    cvt.s64.s32 %rd4, %r3;
    st.global.u64 [%rd1], %rd4;
)", static_cast<std::uint64_t>(-10), 3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(static_cast<std::int64_t>(*r), -7);
}

TEST_F(ArithTest, ArithmeticShiftRight) {
  auto r = Run(R"(
    shr.s32 %r1, %rd2, 2;
    cvt.s64.s32 %rd4, %r1;
    st.global.u64 [%rd1], %rd4;
)", static_cast<std::uint32_t>(-16), 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(static_cast<std::int64_t>(*r), -4);  // sign-preserving
}

TEST_F(ArithTest, LogicalShiftRight) {
  auto r = Run(R"(
    shr.u32 %r1, %rd2, 2;
    cvt.u64.u32 %rd4, %r1;
    st.global.u64 [%rd1], %rd4;
)", 0xFFFFFFF0, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 0x3FFFFFFCull);
}

TEST_F(ArithTest, ShiftLeftMasksToWidth) {
  auto r = Run(R"(
    shl.b32 %r1, %rd2, 8;
    cvt.u64.u32 %rd4, %r1;
    st.global.u64 [%rd1], %rd4;
)", 0x01000001, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 0x00000100ull);  // bit 24 shifted out of 32-bit lane
}

TEST_F(ArithTest, SelpSelectsByPredicate) {
  auto r = Run(R"(
    setp.lt.u64 %p1, %rd2, %rd3;
    selp.b64 %rd4, 111, 222, %p1;
    st.global.u64 [%rd1], %rd4;
)", 1, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 111u);
  auto r2 = Run(R"(
    setp.lt.u64 %p1, %rd2, %rd3;
    selp.b64 %rd4, 111, 222, %p1;
    st.global.u64 [%rd1], %rd4;
)", 5, 2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, 222u);
}

TEST_F(ArithTest, UnsignedComparisonAliases) {
  // lo/ls/hi/hs are the unsigned spellings.
  auto r = Run(R"(
    setp.hi.u32 %p1, %rd2, %rd3;
    selp.b64 %rd4, 1, 0, %p1;
    st.global.u64 [%rd1], %rd4;
)", 0xFFFFFFFF, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 1u);  // unsigned: 0xFFFFFFFF > 1
}

TEST_F(ArithTest, SignedComparisonOfNegative) {
  auto r = Run(R"(
    setp.lt.s32 %p1, %rd2, %rd3;
    selp.b64 %rd4, 1, 0, %p1;
    st.global.u64 [%rd1], %rd4;
)", static_cast<std::uint32_t>(-5), 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 1u);  // signed: -5 < 1
}

TEST_F(ArithTest, NegatedPredicateGuard) {
  auto r = Run(R"(
    setp.eq.u64 %p1, %rd2, 0;
    mov.u64 %rd4, 7;
    @!%p1 mov.u64 %rd4, 9;
    st.global.u64 [%rd1], %rd4;
)", 5, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 9u);  // a != 0, negated guard fires
}

TEST_F(ArithTest, FloatConversionRoundTrip) {
  auto r = Run(R"(
    cvt.rn.f32.u64 %f1, %rd2;
    mul.f32 %f2, %f1, 0f40000000;
    cvt.rzi.u64.f32 %rd4, %f2;
    st.global.u64 [%rd1], %rd4;
)", 21, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42u);  // (float)21 * 2.0 -> 42
}

TEST_F(ArithTest, DoublePrecisionChain) {
  auto r = Run(R"(
    cvt.rn.f64.u64 %fd1, %rd2;
    sqrt.rn.f64 %fd2, %fd1;
    cvt.rzi.u64.f64 %rd4, %fd2;
    st.global.u64 [%rd1], %rd4;
)", 144, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 12u);
}

TEST_F(ArithTest, NotAndXorChain) {
  auto r = Run(R"(
    not.b64 %rd4, %rd2;
    xor.b64 %rd4, %rd4, %rd3;
    st.global.u64 [%rd1], %rd4;
)", 0x00FF, 0xFF00);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (~0x00FFull) ^ 0xFF00ull);
}

TEST_F(ArithTest, AbsOfNegative) {
  auto r = Run(R"(
    neg.s64 %rd4, %rd2;
    abs.s64 %rd4, %rd4;
    st.global.u64 [%rd1], %rd4;
)", 17, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 17u);
}

TEST_F(ArithTest, SubByteLoadsSignExtend) {
  ASSERT_TRUE(memory_.Store<std::uint8_t>(0x2000, 0xFF).ok());
  auto r = Run(R"(
    mov.u64 %rd5, 8192;
    ld.global.s8 %r1, [%rd5];
    cvt.s64.s32 %rd4, %r1;
    st.global.u64 [%rd1], %rd4;
)");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(static_cast<std::int64_t>(*r), -1);
}

TEST_F(ArithTest, TwoDimensionalGrid) {
  const auto module = ptx::Parse(R"(
.version 7.7
.target sm_86
.address_size 64
.visible .entry grid2d(.param .u64 p0)
{
    .reg .b32 %r<8>;
    .reg .b64 %rd<6>;
    ld.param.u64 %rd1, [p0];
    cvta.to.global.u64 %rd1, %rd1;
    mov.u32 %r1, %ctaid.y;
    mov.u32 %r2, %nctaid.x;
    mov.u32 %r3, %ctaid.x;
    mad.lo.s32 %r4, %r1, %r2, %r3;
    mov.u32 %r5, %tid.y;
    mov.u32 %r6, %ntid.x;
    mov.u32 %r7, %tid.x;
    mad.lo.s32 %r5, %r5, %r6, %r7;
    mad.lo.s32 %r4, %r4, 4, %r5;
    mul.wide.u32 %rd2, %r4, 4;
    add.s64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r4;
    ret;
}
)");
  ASSERT_TRUE(module.ok()) << module.status();
  LaunchParams params;
  params.grid = {2, 2, 1};
  params.block = {2, 2, 1};
  params.args = {KernelArg::U64(0x4000)};
  ASSERT_TRUE(interp_.Execute(*module, "grid2d", params).ok());
  // 16 distinct linear ids, each written to its own slot.
  for (std::uint32_t i = 0; i < 16; ++i) {
    auto v = memory_.Load<std::uint32_t>(0x4000 + i * 4);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, i);
  }
}

}  // namespace
}  // namespace grd::ptxexec
