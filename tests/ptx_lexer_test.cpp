#include <gtest/gtest.h>

#include "ptx/lexer.hpp"

namespace grd::ptx {
namespace {

std::vector<Token> MustLex(std::string_view src) {
  auto result = Lex(src);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? *result : std::vector<Token>{};
}

TEST(Lexer, Directives) {
  const auto toks = MustLex(".visible .entry .param .u64");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0].kind, TokenKind::kDirective);
  EXPECT_EQ(toks[0].text, "visible");
  EXPECT_EQ(toks[3].text, "u64");
  EXPECT_EQ(toks[4].kind, TokenKind::kEnd);
}

TEST(Lexer, RegistersWithDottedSuffix) {
  const auto toks = MustLex("%rd4 %tid.x %p1");
  EXPECT_EQ(toks[0].text, "%rd4");
  EXPECT_EQ(toks[1].text, "%tid.x");
  EXPECT_EQ(toks[1].kind, TokenKind::kRegister);
  EXPECT_EQ(toks[2].text, "%p1");
}

TEST(Lexer, Integers) {
  const auto toks = MustLex("42 -7 0x1F 0xFFFFFFFFFF");
  EXPECT_EQ(toks[0].ival, 42);
  EXPECT_EQ(toks[1].ival, -7);
  EXPECT_EQ(toks[2].ival, 0x1F);
  EXPECT_EQ(toks[3].ival, 0xFFFFFFFFFFll);
}

TEST(Lexer, Floats) {
  const auto toks = MustLex("3.5 1e3 0f3F800000 0d4008000000000000");
  EXPECT_EQ(toks[0].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(toks[0].fval, 3.5);
  EXPECT_DOUBLE_EQ(toks[1].fval, 1000.0);
  EXPECT_DOUBLE_EQ(toks[2].fval, 1.0);   // f32 bits of 1.0
  EXPECT_DOUBLE_EQ(toks[3].fval, 3.0);   // f64 bits of 3.0
}

TEST(Lexer, HexFloatKeepsSpelling) {
  const auto toks = MustLex("0f3F800000");
  EXPECT_EQ(toks[0].text, "0f3F800000");
}

TEST(Lexer, CommentsSkipped) {
  const auto toks = MustLex("a // line comment\n/* block\ncomment */ b");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[1].line, 3);
}

TEST(Lexer, Punctuation) {
  const auto toks = MustLex(", ; : [ ] ( ) { } @ ! < >");
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    EXPECT_EQ(toks[i].kind, TokenKind::kPunct);
  }
}

TEST(Lexer, InstructionLine) {
  const auto toks = MustLex("ld.global.u32 %r2, [%rd4+8];");
  EXPECT_EQ(toks[0].text, "ld");
  EXPECT_EQ(toks[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(toks[1].text, "global");
  EXPECT_EQ(toks[1].kind, TokenKind::kDirective);
  EXPECT_EQ(toks[2].text, "u32");
  EXPECT_EQ(toks[3].text, "%r2");
  EXPECT_TRUE(toks[4].IsPunct(','));
  EXPECT_TRUE(toks[5].IsPunct('['));
  EXPECT_EQ(toks[6].text, "%rd4");
  EXPECT_TRUE(toks[7].IsPunct('+'));
  EXPECT_EQ(toks[8].ival, 8);
}

TEST(Lexer, NegativeOffset) {
  const auto toks = MustLex("[%rd4+-8]");
  EXPECT_TRUE(toks[2].IsPunct('+'));
  EXPECT_EQ(toks[3].ival, -8);
}

TEST(Lexer, RejectsBarePercent) {
  EXPECT_FALSE(Lex("% x").ok());
}

TEST(Lexer, RejectsUnterminatedBlockComment) {
  EXPECT_FALSE(Lex("/* foo").ok());
}

TEST(Lexer, RejectsUnknownCharacter) {
  EXPECT_FALSE(Lex("a ` b").ok());
}

TEST(Lexer, TracksLineNumbers) {
  const auto toks = MustLex("a\nb\nc");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[2].line, 3);
}

}  // namespace
}  // namespace grd::ptx
