// ManagerServer coverage: scheduling policies under multiple loaded
// channels, the multi-worker pump, idle backoff, and dropped-response
// accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "guardian/grdlib.hpp"
#include "guardian/manager.hpp"
#include "guardian/transport.hpp"
#include "simgpu/device_spec.hpp"

namespace grd::guardian {
namespace {

using simcuda::DevicePtr;
using simcuda::MemcpyKind;

class TransportTest : public ::testing::Test {
 protected:
  TransportTest()
      : gpu_(simgpu::QuadroRtxA4000()), manager_(&gpu_, ManagerOptions{}) {}

  // Registers a client directly and returns its id.
  ClientId Register() {
    ipc::Writer request;
    protocol::WriteHeader(request, protocol::Op::kRegisterClient, 0);
    request.Put<std::uint64_t>(1 << 20);
    const auto response = manager_.HandleRequest(std::move(request).Take());
    auto reader = protocol::DecodeResponse(response);
    if (!reader.ok()) return 0;
    auto id = reader->Get<std::uint64_t>();
    return id.ok() ? *id : 0;
  }

  // Enqueues `n` device-synchronize requests for `client` on `channel`.
  void EnqueueSyncs(ipc::Channel& channel, ClientId client, int n) {
    for (int i = 0; i < n; ++i) {
      ipc::Writer request;
      protocol::WriteHeader(request, protocol::Op::kDeviceSynchronize, client);
      ASSERT_TRUE(channel.request().Write(std::move(request).Take()).ok());
    }
  }

  static std::size_t Drain(ipc::Channel& channel) {
    std::size_t count = 0;
    while (channel.response().TryRead().ok()) ++count;
    return count;
  }

  simcuda::Gpu gpu_;
  GrdManager manager_;
};

TEST_F(TransportTest, RoundRobinIsFairAcrossLoadedChannels) {
  ipc::HeapChannel a, b, c;
  ManagerServer server(&manager_);
  server.AddChannel(&a.channel());
  server.AddChannel(&b.channel());
  server.AddChannel(&c.channel());
  const ClientId ca = Register(), cb = Register(), cc = Register();
  EnqueueSyncs(a.channel(), ca, 5);
  EnqueueSyncs(b.channel(), cb, 5);
  EnqueueSyncs(c.channel(), cc, 5);
  // Every sweep serves exactly one request per loaded channel.
  for (int sweep = 1; sweep <= 5; ++sweep) {
    EXPECT_EQ(server.ServeOnce(), 3u) << "sweep " << sweep;
  }
  EXPECT_EQ(server.ServeOnce(), 0u);  // drained
  EXPECT_EQ(Drain(a.channel()), 5u);
  EXPECT_EQ(Drain(b.channel()), 5u);
  EXPECT_EQ(Drain(c.channel()), 5u);
}

TEST_F(TransportTest, StrictPriorityDrainsHighBeforeLowerTiers) {
  ipc::HeapChannel low, mid, high;
  ManagerServer server(&manager_, ManagerServer::Policy::kPriority);
  server.AddChannel(&low.channel(), 1.0, /*priority=*/0);
  server.AddChannel(&mid.channel(), 1.0, /*priority=*/3);
  server.AddChannel(&high.channel(), 1.0, /*priority=*/7);
  const ClientId cl = Register(), cm = Register(), ch = Register();
  EnqueueSyncs(low.channel(), cl, 2);
  EnqueueSyncs(mid.channel(), cm, 2);
  EnqueueSyncs(high.channel(), ch, 2);

  // One request per sweep, highest pending priority first: the service
  // order is high ×2, mid ×2, low ×2.
  for (int i = 0; i < 2; ++i) EXPECT_EQ(server.ServeOnce(), 1u);
  EXPECT_EQ(Drain(high.channel()), 2u);
  EXPECT_EQ(Drain(mid.channel()), 0u);
  EXPECT_EQ(Drain(low.channel()), 0u);
  for (int i = 0; i < 2; ++i) EXPECT_EQ(server.ServeOnce(), 1u);
  EXPECT_EQ(Drain(mid.channel()), 2u);
  EXPECT_EQ(Drain(low.channel()), 0u);
  for (int i = 0; i < 2; ++i) EXPECT_EQ(server.ServeOnce(), 1u);
  EXPECT_EQ(Drain(low.channel()), 2u);
  EXPECT_EQ(server.ServeOnce(), 0u);
}

TEST_F(TransportTest, WeightedFairServesProportionallyToWeights) {
  ipc::HeapChannel heavy, medium, light;
  ManagerServer server(&manager_, ManagerServer::Policy::kWeightedFair);
  server.AddChannel(&heavy.channel(), /*weight=*/3.0);
  server.AddChannel(&medium.channel(), /*weight=*/2.0);
  server.AddChannel(&light.channel(), /*weight=*/1.0);
  const ClientId ch = Register(), cm = Register(), cl = Register();
  EnqueueSyncs(heavy.channel(), ch, 12);
  EnqueueSyncs(medium.channel(), cm, 12);
  EnqueueSyncs(light.channel(), cl, 12);

  // Each sweep grants weight credits: service is 3:2:1 while all channels
  // stay backlogged.
  EXPECT_EQ(server.ServeOnce(), 6u);
  EXPECT_EQ(Drain(heavy.channel()), 3u);
  EXPECT_EQ(Drain(medium.channel()), 2u);
  EXPECT_EQ(Drain(light.channel()), 1u);
  (void)server.ServeOnce();
  (void)server.ServeOnce();
  EXPECT_EQ(Drain(heavy.channel()), 6u);
  EXPECT_EQ(Drain(medium.channel()), 4u);
  EXPECT_EQ(Drain(light.channel()), 2u);
}

TEST_F(TransportTest, SessionPrioritySweepVisitsRealtimeChannelsFirst) {
  // Channel order deliberately favors the batch tenant; the session-priority
  // policy must still visit the realtime tenant's channel first each sweep.
  ipc::HeapChannel batch_chan, rt_chan;
  ManagerServer server(&manager_, ManagerServer::Policy::kSessionPriority);
  server.AddChannel(&batch_chan.channel());
  server.AddChannel(&rt_chan.channel());
  const ClientId batch_client = Register(), rt_client = Register();

  // Teach each channel which session it carries (header peek on serve).
  EnqueueSyncs(batch_chan.channel(), batch_client, 1);
  EnqueueSyncs(rt_chan.channel(), rt_client, 1);
  EXPECT_EQ(server.ServeOnce(), 2u);
  EXPECT_EQ(Drain(batch_chan.channel()), 1u);
  EXPECT_EQ(Drain(rt_chan.channel()), 1u);

  // Tag the sessions through the wire protocol (kSetPriority scope 0).
  const auto set_priority = [&](ClientId client, protocol::PriorityClass cls) {
    ipc::Writer request;
    protocol::WriteHeader(request, protocol::Op::kSetPriority, client);
    request.Put<std::uint8_t>(0);
    request.Put<std::uint64_t>(0);
    request.Put<std::uint8_t>(static_cast<std::uint8_t>(cls));
    auto decoded =
        protocol::DecodeResponse(manager_.HandleRequest(std::move(request).Take()));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
  };
  set_priority(batch_client, protocol::PriorityClass::kBatch);
  set_priority(rt_client, protocol::PriorityClass::kRealtime);
  EXPECT_EQ(manager_.SessionPriority(rt_client),
            protocol::PriorityClass::kRealtime);
  EXPECT_EQ(manager_.SessionPriority(batch_client),
            protocol::PriorityClass::kBatch);

  // One sessionless registration queued per channel, batch channel first.
  // Registration order is observable through the handed-out client ids, so
  // the sweep's visit order is provable: the realtime channel's
  // registration must happen first despite its channel being listed last.
  const auto enqueue_register = [](ipc::Channel& channel) {
    ipc::Writer request;
    protocol::WriteHeader(request, protocol::Op::kRegisterClient, 0);
    request.Put<std::uint64_t>(1 << 20);
    ASSERT_TRUE(channel.request().Write(std::move(request).Take()).ok());
  };
  enqueue_register(batch_chan.channel());
  enqueue_register(rt_chan.channel());
  EXPECT_EQ(server.ServeOnce(), 2u);

  const auto read_new_id = [](ipc::Channel& channel) -> std::uint64_t {
    auto response = channel.response().TryRead();
    if (!response.ok()) return 0;
    auto reader = protocol::DecodeResponse(*response);
    if (!reader.ok()) return 0;
    auto id = reader->Get<std::uint64_t>();
    return id.ok() ? *id : 0;
  };
  const std::uint64_t id_via_rt = read_new_id(rt_chan.channel());
  const std::uint64_t id_via_batch = read_new_id(batch_chan.channel());
  ASSERT_NE(id_via_rt, 0u);
  ASSERT_NE(id_via_batch, 0u);
  EXPECT_LT(id_via_rt, id_via_batch)
      << "batch channel was served before the realtime channel";
}

TEST_F(TransportTest, DroppedResponseIsCountedNotSilent) {
  ipc::HeapChannel heap;
  ManagerServer server(&manager_);
  server.AddChannel(&heap.channel());
  const ClientId id = Register();
  EnqueueSyncs(heap.channel(), id, 1);
  // The client vanishes before its response can be delivered.
  heap.channel().response().Close();
  EXPECT_EQ(server.ServeOnce(), 1u);  // request was still served
  EXPECT_EQ(manager_.stats().responses_dropped, 1u);
}

TEST_F(TransportTest, MultiWorkerServesConcurrentClientsCorrectly) {
  constexpr int kClients = 6;
  constexpr int kOpsPerClient = 40;
  std::vector<std::unique_ptr<ipc::HeapChannel>> heaps;
  ManagerServer server(&manager_, ManagerServer::Policy::kRoundRobin,
                       /*workers=*/4);
  ASSERT_GE(server.workers(), 2u);
  for (int i = 0; i < kClients; ++i) {
    heaps.push_back(std::make_unique<ipc::HeapChannel>());
    server.AddChannel(&heaps.back()->channel());
  }
  server.Start();

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      ChannelTransport transport(&heaps[i]->channel());
      auto lib = GrdLib::Connect(&transport, 4 << 20);
      if (!lib.ok()) {
        ++failures;
        return;
      }
      for (int op = 0; op < kOpsPerClient; ++op) {
        DevicePtr p = 0;
        if (!lib->cudaMalloc(&p, 4096).ok()) ++failures;
        const std::uint64_t v = i * 1000000 + op;
        if (!lib->cudaMemcpyH2D(p, &v, 8).ok()) ++failures;
        std::uint64_t back = 0;
        if (!lib->cudaMemcpy(&back, p, 8, MemcpyKind::kDeviceToHost).ok())
          ++failures;
        if (back != v) ++failures;
        if (!lib->cudaFree(p).ok()) ++failures;
      }
      if (!lib->Disconnect().ok()) ++failures;
    });
  }
  for (auto& c : clients) c.join();
  server.Stop();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(manager_.active_clients(), 0u);
}

TEST_F(TransportTest, MultiWorkerPreservesPerSessionOrdering) {
  // One channel hammered with sequenced writes to the same address: even
  // with 4 workers, per-channel claims keep the session's requests in
  // order, so the last write wins.
  ipc::HeapChannel heap;
  ManagerServer server(&manager_, ManagerServer::Policy::kRoundRobin,
                       /*workers=*/4);
  server.AddChannel(&heap.channel());
  server.Start();

  ChannelTransport transport(&heap.channel());
  auto lib = GrdLib::Connect(&transport, 1 << 20);
  ASSERT_TRUE(lib.ok());
  DevicePtr p = 0;
  ASSERT_TRUE(lib->cudaMalloc(&p, 8).ok());
  for (std::uint64_t v = 1; v <= 200; ++v) {
    ASSERT_TRUE(lib->cudaMemcpyH2D(p, &v, 8).ok());
  }
  std::uint64_t back = 0;
  ASSERT_TRUE(lib->cudaMemcpy(&back, p, 8, MemcpyKind::kDeviceToHost).ok());
  EXPECT_EQ(back, 200u);
  server.Stop();
}

TEST_F(TransportTest, IdleServerStopsPromptlyDespiteBackoff) {
  ipc::HeapChannel heap;
  ManagerServer server(&manager_, ManagerServer::Policy::kRoundRobin,
                       /*workers=*/2);
  server.AddChannel(&heap.channel());
  std::atomic<bool> stop{false};
  std::thread pump([&] { server.Run(stop); });
  // Let the workers reach the deep end of the backoff (sleep phase).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto begin = std::chrono::steady_clock::now();
  stop.store(true);
  pump.join();
  const auto elapsed = std::chrono::steady_clock::now() - begin;
  // Backoff sleeps are bounded (≤1 ms), so shutdown is fast.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            500);
}

TEST(IdleBackoffTest, EscalatesAndResets) {
  IdleBackoff backoff;
  // Spin + yield phases consume no wall-clock worth measuring.
  const auto begin = std::chrono::steady_clock::now();
  for (int i = 0; i < 96; ++i) backoff.Pause();
  const auto hot = std::chrono::steady_clock::now() - begin;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(hot).count(),
            100);
  // The sleep phase actually sleeps.
  const auto sleep_begin = std::chrono::steady_clock::now();
  for (int i = 0; i < 8; ++i) backoff.Pause();
  const auto slept = std::chrono::steady_clock::now() - sleep_begin;
  EXPECT_GT(std::chrono::duration_cast<std::chrono::microseconds>(slept)
                .count(),
            300);
  backoff.Reset();  // back to the hot phase
  const auto reset_begin = std::chrono::steady_clock::now();
  for (int i = 0; i < 32; ++i) backoff.Pause();
  const auto after_reset = std::chrono::steady_clock::now() - reset_begin;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(after_reset)
                .count(),
            100);
}

}  // namespace
}  // namespace grd::guardian
