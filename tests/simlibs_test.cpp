#include <gtest/gtest.h>

#include <cmath>

#include "simcuda/native.hpp"
#include "simcuda/tracing.hpp"
#include "simgpu/device_spec.hpp"
#include "simlibs/cublas.hpp"
#include "simlibs/cufft.hpp"
#include "simlibs/curand.hpp"
#include "simlibs/cusolver.hpp"
#include "simlibs/cusparse.hpp"
#include "simlibs/libcalls.hpp"

namespace grd::simlibs {
namespace {

using simcuda::DevicePtr;
using simcuda::MemcpyKind;

class SimlibsTest : public ::testing::Test {
 protected:
  SimlibsTest()
      : gpu_(simgpu::QuadroRtxA4000()), native_(&gpu_), traced_(&native_) {}

  DevicePtr Upload(const void* data, std::uint64_t size) {
    DevicePtr ptr = 0;
    EXPECT_TRUE(native_.cudaMalloc(&ptr, size).ok());
    EXPECT_TRUE(native_.cudaMemcpyH2D(ptr, data, size).ok());
    return ptr;
  }

  simcuda::Gpu gpu_;
  simcuda::NativeCuda native_;
  simcuda::TracingCudaApi traced_;
};

TEST_F(SimlibsTest, CublasCreateImplicitCalls) {
  // Table 6 row "cublasCreate": cudaMalloc x3, cudaEventCreateWithFlags x18,
  // cudaFree x2 -> 23 implicit runtime calls.
  auto lib = Cublas::Create(traced_);
  ASSERT_TRUE(lib.ok()) << lib.status();
  EXPECT_EQ(traced_.CountOf("cudaMalloc"), 3u);
  EXPECT_EQ(traced_.CountOf("cudaEventCreateWithFlags"), 18u);
  EXPECT_EQ(traced_.CountOf("cudaFree"), 2u);
  EXPECT_EQ(traced_.CountOf("cudaMalloc") +
                traced_.CountOf("cudaEventCreateWithFlags") +
                traced_.CountOf("cudaFree"),
            23u);
}

TEST_F(SimlibsTest, CublasIdamaxImplicitCallsAndResult) {
  auto lib = Cublas::Create(traced_);
  ASSERT_TRUE(lib.ok());
  const double xs[5] = {1.0, -9.5, 3.0, 9.0, -2.0};
  const DevicePtr x = Upload(xs, sizeof(xs));
  traced_.ResetCounts();
  auto idx = lib->Idamax(x, 5);
  ASSERT_TRUE(idx.ok()) << idx.status();
  EXPECT_EQ(*idx, 2u);  // |-9.5| max, 1-based
  // Table 6 row "cublasIdamax": 1 launch, 1 memcpy, 1 event record,
  // 2 stream capture queries -> 5 calls.
  EXPECT_EQ(traced_.CountOf("cudaLaunchKernel"), 1u);
  EXPECT_EQ(traced_.CountOf("cudaMemcpy"), 1u);
  EXPECT_EQ(traced_.CountOf("cudaEventRecord"), 1u);
  EXPECT_EQ(traced_.CountOf("cudaStreamGetCaptureInfo"), 2u);
  EXPECT_EQ(traced_.TotalCalls(), 5u);
}

TEST_F(SimlibsTest, CublasDdotImplicitCallsAndResult) {
  auto lib = Cublas::Create(traced_);
  ASSERT_TRUE(lib.ok());
  const double xs[4] = {1, 2, 3, 4};
  const double ys[4] = {10, 20, 30, 40};
  const DevicePtr x = Upload(xs, sizeof(xs));
  const DevicePtr y = Upload(ys, sizeof(ys));
  traced_.ResetCounts();
  auto dot = lib->Ddot(x, y, 4);
  ASSERT_TRUE(dot.ok()) << dot.status();
  EXPECT_DOUBLE_EQ(*dot, 300.0);
  // Table 6 row "cublasDdot": 2 launches, 1 memcpy, 1 record, 2 capture -> 6.
  EXPECT_EQ(traced_.CountOf("cudaLaunchKernel"), 2u);
  EXPECT_EQ(traced_.TotalCalls(), 6u);
}

TEST_F(SimlibsTest, CublasSgemmComputes) {
  auto lib = Cublas::Create(native_);
  ASSERT_TRUE(lib.ok());
  // A = [[1,2],[3,4]], B = [[5,6],[7,8]] -> C = [[19,22],[43,50]].
  const float a[4] = {1, 2, 3, 4};
  const float b[4] = {5, 6, 7, 8};
  const DevicePtr da = Upload(a, sizeof(a));
  const DevicePtr db = Upload(b, sizeof(b));
  DevicePtr dc = 0;
  ASSERT_TRUE(native_.cudaMalloc(&dc, sizeof(a)).ok());
  ASSERT_TRUE(lib->Sgemm(da, db, dc, 2, 2, 2).ok());
  float c[4] = {};
  ASSERT_TRUE(
      native_.cudaMemcpy(c, dc, sizeof(c), MemcpyKind::kDeviceToHost).ok());
  EXPECT_FLOAT_EQ(c[0], 19);
  EXPECT_FLOAT_EQ(c[1], 22);
  EXPECT_FLOAT_EQ(c[2], 43);
  EXPECT_FLOAT_EQ(c[3], 50);
}

TEST_F(SimlibsTest, CufftExecImplicitCalls) {
  auto lib = Cufft::Create(traced_);
  ASSERT_TRUE(lib.ok());
  const float signal[8] = {1, 0, 2, 0, 3, 0, 4, 0};  // 4 complex points
  const DevicePtr in = Upload(signal, sizeof(signal));
  DevicePtr out = 0;
  ASSERT_TRUE(native_.cudaMalloc(&out, sizeof(signal)).ok());
  traced_.ResetCounts();
  ASSERT_TRUE(lib->ExecC2C(in, out, 4).ok());
  // Table 6 row "cufftExecC2C": cuMemcpyHtoD x2, cuMemAlloc x1, cuMemFree x1,
  // cuLaunchKernel x1, cudaStreamIsCapturing x1 -> 6.
  EXPECT_EQ(traced_.CountOf("cuMemcpyHtoD"), 2u);
  EXPECT_EQ(traced_.CountOf("cuMemAlloc"), 1u);
  EXPECT_EQ(traced_.CountOf("cuMemFree"), 1u);
  EXPECT_EQ(traced_.CountOf("cuLaunchKernel"), 1u);
  EXPECT_EQ(traced_.CountOf("cudaStreamIsCapturing"), 1u);
  EXPECT_EQ(traced_.TotalCalls(), 6u);
  // Identity twiddle: output equals input.
  float result[8] = {};
  ASSERT_TRUE(native_.cudaMemcpy(result, out, sizeof(result),
                                 MemcpyKind::kDeviceToHost)
                  .ok());
  EXPECT_FLOAT_EQ(result[4], 3.0f);
}

TEST_F(SimlibsTest, CusparseAxpbyImplicitCallsAndResult) {
  auto lib = Cusparse::Create(traced_);
  ASSERT_TRUE(lib.ok());
  const float xs[4] = {1, 1, 1, 1};
  const float ys[4] = {2, 2, 2, 2};
  const DevicePtr x = Upload(xs, sizeof(xs));
  const DevicePtr y = Upload(ys, sizeof(ys));
  traced_.ResetCounts();
  ASSERT_TRUE(lib->Axpby(3.0f, x, 0.5f, y, 4).ok());
  // Table 6 row "cusparseAxpby": cudaLaunchKernel x2 and nothing else.
  EXPECT_EQ(traced_.CountOf("cudaLaunchKernel"), 2u);
  EXPECT_EQ(traced_.TotalCalls(), 2u);
  float result[4] = {};
  ASSERT_TRUE(native_.cudaMemcpy(result, y, sizeof(result),
                                 MemcpyKind::kDeviceToHost)
                  .ok());
  EXPECT_FLOAT_EQ(result[0], 4.0f);  // 3*1 + 0.5*2
}

TEST_F(SimlibsTest, CusolverImplicitCallsAndResult) {
  auto lib = Cusolver::Create(traced_);
  ASSERT_TRUE(lib.ok());
  const double values[3] = {2.0, 4.0, 8.0};
  const double rhs[3] = {10.0, 20.0, 40.0};
  const DevicePtr vals = Upload(values, sizeof(values));
  const DevicePtr b = Upload(rhs, sizeof(rhs));
  DevicePtr x = 0;
  ASSERT_TRUE(native_.cudaMalloc(&x, sizeof(rhs)).ok());
  traced_.ResetCounts();
  ASSERT_TRUE(lib->SpDcsrqr(vals, b, x, 3).ok());
  // Table 6 row "cusolverSpDcsrqr": cudaLaunchKernel x2, cuMemcpyHtoD x1,
  // cuMemAlloc x1 -> 4.
  EXPECT_EQ(traced_.CountOf("cudaLaunchKernel"), 2u);
  EXPECT_EQ(traced_.CountOf("cuMemcpyHtoD"), 1u);
  EXPECT_EQ(traced_.CountOf("cuMemAlloc"), 1u);
  EXPECT_EQ(traced_.TotalCalls(), 4u);
  double result[3] = {};
  ASSERT_TRUE(native_.cudaMemcpy(result, x, sizeof(result),
                                 MemcpyKind::kDeviceToHost)
                  .ok());
  EXPECT_DOUBLE_EQ(result[0], 5.0);
  EXPECT_DOUBLE_EQ(result[2], 5.0);
}

TEST_F(SimlibsTest, CurandGeneratesDeterministicSequence) {
  auto lib = Curand::Create(native_, /*seed=*/42);
  ASSERT_TRUE(lib.ok());
  DevicePtr out = 0;
  ASSERT_TRUE(native_.cudaMalloc(&out, 16).ok());
  ASSERT_TRUE(lib->Generate(out, 4).ok());
  std::uint32_t values[4] = {};
  ASSERT_TRUE(native_.cudaMemcpy(values, out, sizeof(values),
                                 MemcpyKind::kDeviceToHost)
                  .ok());
  EXPECT_EQ(values[0], 42u * 1664525u + 1013904223u);
  EXPECT_EQ(values[1], 43u * 1664525u + 1013904223u);
  EXPECT_NE(values[2], values[3]);
}

TEST(Figure12Calls, ThirtySevenCallsWithPaperBandOverheads) {
  const auto& calls = Figure12Calls();
  ASSERT_EQ(calls.size(), 37u);
  EXPECT_EQ(calls.front().name, "hpr2");
  EXPECT_EQ(calls.back().name, "spvv");
  const simgpu::TimingModel model(simgpu::QuadroRtxA4000());
  double total = 0.0;
  for (const auto& call : calls) {
    const double overhead = model.RelativeOverhead(
        call.profile, simgpu::ProtectionMode::kFencingBitwise);
    EXPECT_GE(overhead, 0.0) << call.name;
    EXPECT_LE(overhead, 0.14) << call.name;  // Figure 12 band: 0-13%
    total += overhead;
  }
  // Paper: ~4% average across the suite.
  const double average = total / static_cast<double>(calls.size());
  EXPECT_GT(average, 0.015);
  EXPECT_LT(average, 0.07);
}

}  // namespace
}  // namespace grd::simlibs
