// Cross-module property tests: invariants that must hold for arbitrary
// inputs, swept with parameterized gtest.
#include <gtest/gtest.h>

#include <thread>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "ipc/shm_ring.hpp"
#include "simgpu/device_spec.hpp"
#include "simgpu/engine.hpp"
#include "workloads/harness.hpp"

namespace grd {
namespace {

// Every randomized suite folds GRD_FUZZ_SEED (default 0: the historical
// per-param seeds) into its Rng and traces the effective seed, so a red
// randomized run is reproducible by exporting the printed value.
std::uint64_t FuzzSeed(std::uint64_t mix) {
  return SeedFromEnv("GRD_FUZZ_SEED", 0) + mix;
}

#define GRD_TRACE_FUZZ_SEED(seed)                             \
  SCOPED_TRACE("effective Rng seed " + std::to_string(seed) + \
               " (shift the whole suite with GRD_FUZZ_SEED=<base>)")

// --- fencing algebra --------------------------------------------------------

class FenceProperty : public ::testing::TestWithParam<int> {};

TEST_P(FenceProperty, AlwaysLandsInPartitionAndIsIdempotent) {
  const std::uint64_t seed = FuzzSeed(GetParam() * 6151 + 11);
  GRD_TRACE_FUZZ_SEED(seed);
  Rng rng(seed);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t size = std::uint64_t{1}
                               << rng.NextInRange(12, 34);  // 4 KB..16 GB
    const std::uint64_t base =
        (rng.Next() & ~(size - 1)) & ((std::uint64_t{1} << 46) - 1);
    const std::uint64_t mask = PartitionMask(size);
    const std::uint64_t addr = rng.Next();
    const std::uint64_t fenced = FenceAddress(addr, base, mask);
    // (1) always inside [base, base+size)
    ASSERT_GE(fenced, base);
    ASSERT_LT(fenced, base + size);
    // (2) idempotent: fencing a fenced address is a no-op
    ASSERT_EQ(FenceAddress(fenced, base, mask), fenced);
    // (3) identity on in-bounds addresses
    const std::uint64_t inside = base + (addr & mask);
    ASSERT_EQ(FenceAddress(inside, base, mask), inside);
    // (4) offset-preserving within the partition
    ASSERT_EQ(fenced - base, addr & mask);
  }
}

TEST_P(FenceProperty, ModuloAgreesWithBitwiseOnPow2) {
  const std::uint64_t seed = FuzzSeed(GetParam() * 7919 + 3);
  GRD_TRACE_FUZZ_SEED(seed);
  Rng rng(seed);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t size = std::uint64_t{1} << rng.NextInRange(12, 30);
    const std::uint64_t base =
        (rng.Next() & ~(size - 1)) & ((std::uint64_t{1} << 40) - 1);
    const std::uint64_t addr = base + rng.NextBelow(std::uint64_t{1} << 38);
    ASSERT_EQ(FenceAddress(addr, base, PartitionMask(size)),
              FenceAddressModulo(addr, base, size));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FenceProperty, ::testing::Range(0, 8));

// --- sharing-engine invariants ---------------------------------------------

class EngineProperty : public ::testing::TestWithParam<int> {};

TEST_P(EngineProperty, MakespanBoundsHold) {
  // For any random op mix: max(stream work alone) <= makespan <= sum of all
  // work (work conservation + no super-linear slowdown).
  const std::uint64_t seed = FuzzSeed(GetParam() * 104729 + 31);
  GRD_TRACE_FUZZ_SEED(seed);
  Rng rng(seed);
  const simgpu::DeviceSpec spec = simgpu::QuadroRtxA4000();
  simgpu::SharingEngine engine(spec);
  const int streams = 2 + static_cast<int>(rng.NextBelow(5));
  std::vector<double> alone(streams, 0.0);
  double serial_total = 0.0;
  for (int s = 0; s < streams; ++s) {
    const auto id = engine.AddStream();
    const int ops = 1 + static_cast<int>(rng.NextBelow(20));
    for (int o = 0; o < ops; ++o) {
      const double cycles = 100.0 + rng.NextBelow(100000);
      switch (rng.NextBelow(3)) {
        case 0: {
          const std::uint64_t threads = 32 + rng.NextBelow(20000);
          engine.Enqueue(id, simgpu::MakeKernelOp(spec, cycles, threads));
          const double duration =
              cycles * static_cast<double>(threads) /
              std::min<double>(static_cast<double>(threads), spec.cuda_cores);
          alone[s] += duration;
          serial_total += duration;
          break;
        }
        case 1: {
          engine.Enqueue(id, simgpu::GpuOp::Memcpy(
                                 cycles * spec.pcie_bytes_per_cycle,
                                 spec.pcie_bytes_per_cycle));
          alone[s] += cycles;
          serial_total += cycles;
          break;
        }
        default:
          engine.Enqueue(id, simgpu::GpuOp::Delay(cycles));
          alone[s] += cycles;
          serial_total += cycles;
      }
    }
  }
  const auto result = engine.Run();
  double max_alone = 0;
  for (const double a : alone) max_alone = std::max(max_alone, a);
  EXPECT_GE(result.total_cycles, max_alone * (1 - 1e-9));
  EXPECT_LE(result.total_cycles, serial_total * (1 + 1e-9));
  // Per-stream finish times never exceed the makespan.
  for (const double f : result.stream_finish)
    EXPECT_LE(f, result.total_cycles * (1 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineProperty, ::testing::Range(0, 12));

// --- harness monotonicity ----------------------------------------------------

TEST(HarnessProperty, TimeGrowsWithIterations) {
  const workloads::Harness harness(simgpu::QuadroRtxA4000());
  double previous = 0;
  for (const std::uint64_t iters : {10ull, 20ull, 40ull, 80ull}) {
    const double t =
        harness
            .RunStandalone({"lenet", iters, false},
                           workloads::Deployment::kGuardianBitwise)
            .total_cycles;
    EXPECT_GT(t, previous);
    previous = t;
  }
}

TEST(HarnessProperty, ColocationNeverFasterThanOneClient) {
  const workloads::Harness harness(simgpu::QuadroRtxA4000());
  const workloads::AppRun one{"cifar10", 30, false};
  const double solo =
      harness.RunColocated({one}, workloads::Deployment::kGuardianBitwise)
          .total_cycles;
  const double duo =
      harness
          .RunColocated({one, one}, workloads::Deployment::kGuardianBitwise)
          .total_cycles;
  EXPECT_GE(duo, solo * (1 - 1e-9));
  EXPECT_LE(duo, 2.2 * solo);  // and never super-linearly slower
}

TEST(HarnessProperty, ProtectionModesAreOrderedForAllApps) {
  const workloads::Harness harness(simgpu::QuadroRtxA4000());
  using workloads::Deployment;
  for (const auto& name : workloads::AllAppNames()) {
    const workloads::AppRun run{name, 20, false};
    const double native =
        harness.RunStandalone(run, Deployment::kNative).total_cycles;
    const double noprot =
        harness.RunStandalone(run, Deployment::kGuardianNoProtection)
            .total_cycles;
    const double bitwise =
        harness.RunStandalone(run, Deployment::kGuardianBitwise).total_cycles;
    const double checking =
        harness.RunStandalone(run, Deployment::kGuardianChecking)
            .total_cycles;
    EXPECT_LT(native, noprot) << name;
    EXPECT_LT(noprot, bitwise) << name;
    EXPECT_LT(bitwise, checking) << name;
  }
}

// --- shm ring under randomized message sizes --------------------------------

class RingProperty : public ::testing::TestWithParam<int> {};

TEST_P(RingProperty, RandomSizesCrossThreadPreserveContentAndOrder) {
  const std::uint64_t seed = FuzzSeed(GetParam() * 31337 + 5);
  GRD_TRACE_FUZZ_SEED(seed);
  Rng rng(seed);
  const std::uint64_t capacity = 1 << 12;
  std::vector<std::uint8_t> region(ipc::ShmRing::RegionSize(capacity));
  ipc::ShmRing ring(region.data(), capacity, true);

  constexpr int kMessages = 2000;
  // Pre-generate so producer/consumer agree without sharing the Rng.
  std::vector<ipc::Bytes> messages;
  messages.reserve(kMessages);
  for (int i = 0; i < kMessages; ++i) {
    ipc::Bytes m(rng.NextBelow(capacity / 2));
    for (auto& byte : m) byte = static_cast<std::uint8_t>(rng.Next());
    messages.push_back(std::move(m));
  }

  std::thread producer([&] {
    for (const auto& m : messages) ASSERT_TRUE(ring.Write(m).ok());
  });
  for (int i = 0; i < kMessages; ++i) {
    auto out = ring.Read();
    ASSERT_TRUE(out.ok());
    ASSERT_EQ(*out, messages[i]) << "message " << i;
  }
  producer.join();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RingProperty, ::testing::Range(0, 6));

}  // namespace
}  // namespace grd
