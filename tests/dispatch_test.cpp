// Dispatch-layer coverage: the typed handler registry that replaced the
// grdManager opcode switch.
#include <gtest/gtest.h>

#include <set>

#include "guardian/dispatch.hpp"
#include "guardian/execution.hpp"
#include "guardian/manager.hpp"
#include "guardian/session.hpp"
#include "simgpu/device_spec.hpp"

namespace grd::guardian {
namespace {

using protocol::Op;

TEST(DispatcherTest, BuiltinRegistryCoversEveryProtocolOp) {
  Dispatcher dispatcher;
  RegisterBuiltinHandlers(dispatcher);
  // Every op of the wire protocol has a handler — the enum is contiguous
  // from kRegisterClient to kResumeSession (the last opcode).
  for (auto raw = static_cast<std::uint32_t>(Op::kRegisterClient);
       raw <= static_cast<std::uint32_t>(Op::kResumeSession); ++raw) {
    const auto* descriptor = dispatcher.Find(static_cast<Op>(raw));
    ASSERT_NE(descriptor, nullptr) << "op " << raw;
    EXPECT_FALSE(descriptor->name.empty());
    EXPECT_TRUE(static_cast<bool>(descriptor->run));
  }
  EXPECT_EQ(dispatcher.size(),
            static_cast<std::size_t>(Op::kResumeSession) -
                static_cast<std::size_t>(Op::kRegisterClient) + 1);
}

TEST(DispatcherTest, HandlerNamesAreUnique) {
  Dispatcher dispatcher;
  RegisterBuiltinHandlers(dispatcher);
  std::set<std::string> names;
  for (const Op op : dispatcher.RegisteredOps())
    names.insert(dispatcher.Find(op)->name);
  EXPECT_EQ(names.size(), dispatcher.size());
}

TEST(DispatcherTest, OnlyRegistrationRunsWithoutASession) {
  Dispatcher dispatcher;
  RegisterBuiltinHandlers(dispatcher);
  // Registration and crash-recovery attach are the only ops a client may
  // issue before (or instead of) owning a live local session.
  for (const Op op : dispatcher.RegisteredOps()) {
    const auto* descriptor = dispatcher.Find(op);
    if (op == Op::kRegisterClient || op == Op::kResumeSession) {
      EXPECT_EQ(descriptor->session, SessionPolicy::kNotRequired)
          << descriptor->name;
    } else {
      EXPECT_EQ(descriptor->session, SessionPolicy::kRequired)
          << descriptor->name;
    }
  }
}

TEST(DispatcherTest, UnknownOpcodeIsNotRegistered) {
  Dispatcher dispatcher;
  RegisterBuiltinHandlers(dispatcher);
  EXPECT_EQ(dispatcher.Find(static_cast<Op>(0)), nullptr);
  EXPECT_EQ(dispatcher.Find(static_cast<Op>(0xDEAD)), nullptr);
}

// A new RPC is one Register call: decode/validate/execute compose into a
// descriptor the dispatcher runs end-to-end.
struct EchoReq {
  std::uint32_t value = 0;
};
Result<EchoReq> DecodeEcho(ipc::Reader& req) {
  EchoReq out;
  GRD_ASSIGN_OR_RETURN(out.value, req.Get<std::uint32_t>());
  return out;
}
Status ValidateEcho(HandlerContext&, const EchoReq& req) {
  if (req.value == 0) return InvalidArgument("zero is not echoable");
  return OkStatus();
}
Result<ipc::Writer> ExecuteEcho(HandlerContext&, EchoReq& req) {
  ipc::Writer out;
  out.Put<std::uint32_t>(req.value + 1);
  return out;
}

TEST(DispatcherTest, TypedRegistrationRunsAllThreeStages) {
  Dispatcher dispatcher;
  const auto custom_op = static_cast<Op>(900);
  dispatcher.Register<EchoReq>(custom_op, "Echo", SessionPolicy::kNotRequired,
                               DecodeEcho, ValidateEcho, ExecuteEcho);
  const auto* descriptor = dispatcher.Find(custom_op);
  ASSERT_NE(descriptor, nullptr);

  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  ExecutionContext exec(&gpu, ManagerOptions{});
  SessionRegistry sessions;
  HandlerContext ctx{exec, sessions, nullptr, nullptr, &dispatcher};

  {  // happy path: decode → validate → execute
    ipc::Writer request;
    request.Put<std::uint32_t>(41);
    ipc::Bytes raw = std::move(request).Take();
    ipc::Reader reader(raw);
    auto out = descriptor->run(ctx, reader);
    ASSERT_TRUE(out.ok()) << out.status();
    ipc::Bytes payload = std::move(*out).Take();
    ipc::Reader result(payload);
    EXPECT_EQ(*result.Get<std::uint32_t>(), 42u);
  }
  {  // validate stage rejects
    ipc::Writer request;
    request.Put<std::uint32_t>(0);
    ipc::Bytes raw = std::move(request).Take();
    ipc::Reader reader(raw);
    auto out = descriptor->run(ctx, reader);
    EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
  }
  {  // decode stage rejects truncated input
    ipc::Bytes raw{0x01};
    ipc::Reader reader(raw);
    auto out = descriptor->run(ctx, reader);
    EXPECT_EQ(out.status().code(), StatusCode::kOutOfRange);
  }
}

TEST(DispatcherTest, DuplicateRegistrationFailsLoudly) {
  Dispatcher dispatcher;
  const auto custom_op = static_cast<Op>(901);
  dispatcher.Register<EchoReq>(custom_op, "Echo", SessionPolicy::kNotRequired,
                               DecodeEcho, ValidateEcho, ExecuteEcho);
  EXPECT_THROW(dispatcher.Register<EchoReq>(custom_op, "EchoAgain",
                                            SessionPolicy::kNotRequired,
                                            DecodeEcho, nullptr, ExecuteEcho),
               std::logic_error);
  // The original handler still serves.
  EXPECT_EQ(dispatcher.Find(custom_op)->name, "Echo");
}

TEST(DispatcherTest, ManagerRejectsUnknownOpThroughRegistry) {
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  GrdManager manager(&gpu, ManagerOptions{});
  ipc::Writer request;
  request.Put<std::uint32_t>(0xBEEF);
  request.Put<std::uint64_t>(0);  // client
  request.Put<std::uint64_t>(0);  // trace_id
  request.Put<std::uint64_t>(0);  // span_id
  const auto response = manager.HandleRequest(std::move(request).Take());
  auto decoded = protocol::DecodeResponse(response);
  EXPECT_EQ(decoded.status().code(), StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace grd::guardian
