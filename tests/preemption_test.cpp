// Preemption engine coverage: TReM-style mid-kernel revocation at safe
// points (priority classes, checkpoint/resume without block replay),
// anti-starvation aging for full-device kernels, the demoted
// instruction-budget kill (revoke-and-requeue once before failing), and the
// engine's policy/telemetry primitives. Wall-clock ordering is made
// deterministic by dilating modeled device time into executor sleeps.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "guardian/grdlib.hpp"
#include "guardian/manager.hpp"
#include "guardian/preemption.hpp"
#include "guardian/transport.hpp"
#include "ptx/generator.hpp"
#include "ptx/printer.hpp"
#include "simgpu/device_spec.hpp"

namespace grd::guardian {
namespace {

using protocol::PriorityClass;
using ptxexec::KernelArg;
using simcuda::DevicePtr;
using simcuda::MemcpyKind;

std::string SamplePtx() { return ptx::Print(ptx::MakeSampleModule()); }

// Kernel with a per-block infinite loop gated on the block index: blocks
// 0..2 store their id and exit, block 3 spins forever. Exercises the
// budget-requeue path with real completed blocks to preserve.
constexpr char kSpinTailPtx[] = R"(
.version 7.7
.target sm_86
.address_size 64
.visible .entry spintail(
    .param .u64 dst
)
{
    .reg .b32 %r<4>;
    .reg .b64 %rd<4>;
    .reg .pred %p1;
    mov.u32 %r1, %ctaid.x;
    setp.lt.u32 %p1, %r1, 3;
    @%p1 bra STORE;
LOOP:
    add.s32 %r2, %r2, 1;
    bra LOOP;
STORE:
    ld.param.u64 %rd1, [dst];
    cvta.to.global.u64 %rd2, %rd1;
    mul.wide.u32 %rd3, %r1, 4;
    add.s64 %rd2, %rd2, %rd3;
    st.global.u32 [%rd2], %r1;
    ret;
}
)";

class PreemptionTest : public ::testing::Test {
 protected:
  void Init(ManagerOptions options) {
    gpu_ = std::make_unique<simcuda::Gpu>(simgpu::QuadroRtxA4000());
    manager_ = std::make_unique<GrdManager>(gpu_.get(), options);
    transport_ = std::make_unique<LoopbackTransport>(manager_.get());
  }

  Result<GrdLib> Connect(std::uint64_t bytes = 16ull << 20) {
    return GrdLib::Connect(transport_.get(), bytes);
  }

  Result<simcuda::FunctionId> LoadKernel(GrdLib& lib,
                                         const std::string& kernel) {
    GRD_ASSIGN_OR_RETURN(simcuda::ModuleId module,
                         lib.cuModuleLoadData(SamplePtx()));
    return lib.cuModuleGetFunction(module, kernel);
  }

  Status LaunchCopy(GrdLib& lib, simcuda::FunctionId fn, DevicePtr src,
                    DevicePtr dst, std::uint32_t n, std::uint32_t block,
                    simcuda::StreamId stream) {
    simcuda::LaunchConfig config;
    config.block = {block, 1, 1};
    config.grid = {(n + block - 1) / block, 1, 1};
    config.stream = stream;
    return lib.cudaLaunchKernel(fn, config,
                                {KernelArg::U64(src), KernelArg::U64(dst),
                                 KernelArg::U32(n)});
  }

  // Spins until at least one kernel is resident on the simulated device.
  bool WaitForResidentKernel() {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (manager_->scheduler().resident_kernels() == 0) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    return true;
  }

  std::unique_ptr<simcuda::Gpu> gpu_;
  std::unique_ptr<GrdManager> manager_;
  std::unique_ptr<LoopbackTransport> transport_;
};

// ---- engine policy units --------------------------------------------------

TEST(PreemptionEngineTest, AgingBoostsEffectiveClassTowardRealtime) {
  PreemptionConfig config;
  config.aging_quantum_ns = 1'000;
  const PreemptionEngine engine(config, nullptr);
  EXPECT_EQ(engine.EffectiveClass(PriorityClass::kBatch, 0), 2);
  EXPECT_EQ(engine.EffectiveClass(PriorityClass::kBatch, 999), 2);
  EXPECT_EQ(engine.EffectiveClass(PriorityClass::kBatch, 1'000), 1);
  EXPECT_EQ(engine.EffectiveClass(PriorityClass::kBatch, 2'000), 0);
  // Clamped at the most urgent class, never past it.
  EXPECT_EQ(engine.EffectiveClass(PriorityClass::kBatch, 1'000'000), 0);
  EXPECT_EQ(engine.EffectiveClass(PriorityClass::kRealtime, 1'000'000), 0);
}

TEST(PreemptionEngineTest, AgingDisabledKeepsBaseClass) {
  PreemptionConfig config;
  config.aging_quantum_ns = 0;
  const PreemptionEngine engine(config, nullptr);
  EXPECT_EQ(engine.EffectiveClass(PriorityClass::kBatch, ~0ull), 2);
}

TEST(PreemptionEngineTest, OnlyStrictlyMoreUrgentBaseClassesPreempt) {
  const PreemptionEngine engine(PreemptionConfig{}, nullptr);
  // Victim side is the class at which the run was ADMITTED (aging
  // included): a promoted kernel keeps that protection while running.
  EXPECT_TRUE(engine.MayPreempt(PriorityClass::kRealtime, /*victim=*/1));
  EXPECT_TRUE(engine.MayPreempt(PriorityClass::kRealtime, /*victim=*/2));
  EXPECT_TRUE(engine.MayPreempt(PriorityClass::kNormal, /*victim=*/2));
  EXPECT_FALSE(engine.MayPreempt(PriorityClass::kNormal, /*victim=*/1));
  EXPECT_FALSE(engine.MayPreempt(PriorityClass::kBatch, /*victim=*/2));
  EXPECT_FALSE(engine.MayPreempt(PriorityClass::kRealtime, /*victim=*/0));
  // A batch kernel admitted at an aged effective class 0 is shielded even
  // from realtime waiters; an aged *waiter* gains no revocation rights.
  EXPECT_FALSE(engine.MayPreempt(PriorityClass::kBatch, /*victim=*/0));
  PreemptionConfig off;
  off.enabled = false;
  const PreemptionEngine disabled(off, nullptr);
  EXPECT_FALSE(disabled.MayPreempt(PriorityClass::kRealtime, /*victim=*/2));
}

TEST(WaitHistogramTest, RecordsAndEstimatesPercentiles) {
  WaitHistogram hist;
  EXPECT_EQ(hist.PercentileNs(0.99), 0u);
  for (int i = 0; i < 90; ++i) hist.Record(1'000);          // 1 µs
  for (int i = 0; i < 10; ++i) hist.Record(1'000'000'000);  // 1 s
  EXPECT_EQ(hist.count.load(), 100u);
  EXPECT_LE(hist.PercentileNs(0.5), 4'000u);
  EXPECT_GE(hist.PercentileNs(0.99), 500'000'000u);
  EXPECT_EQ(hist.max_ns.load(), 1'000'000'000u);
}

// ---- revocation end to end ------------------------------------------------

TEST_F(PreemptionTest, RealtimeKernelPreemptsFullDeviceBatchKernel) {
  ManagerOptions options;
  options.scheduler_executors = 4;
  options.device_time_ns_per_cycle = 200.0;
  options.aging_quantum_ns = 0;  // isolate preemption from aging
  Init(options);

  auto batch = Connect();
  auto rt = Connect();
  ASSERT_TRUE(batch.ok() && rt.ok());
  ASSERT_TRUE(batch->SetPriority(PriorityClass::kBatch).ok());
  ASSERT_TRUE(rt->SetPriority(PriorityClass::kRealtime).ok());
  auto batch_fn = LoadKernel(*batch, "copyk");
  auto rt_fn = LoadKernel(*rt, "copyk");
  ASSERT_TRUE(batch_fn.ok() && rt_fn.ok());

  // Full-device batch kernel: 48 blocks x 1024 threads occupy every SM of
  // the A4000 (1536 threads/SM -> one such block per SM).
  constexpr std::uint32_t kBatchElems = 48 * 1024;
  constexpr std::uint32_t kRtElems = 256;
  DevicePtr bsrc = 0, bdst = 0, rsrc = 0, rdst = 0;
  ASSERT_TRUE(batch->cudaMalloc(&bsrc, kBatchElems * 4).ok());
  ASSERT_TRUE(batch->cudaMalloc(&bdst, kBatchElems * 4).ok());
  ASSERT_TRUE(rt->cudaMalloc(&rsrc, kRtElems * 4).ok());
  ASSERT_TRUE(rt->cudaMalloc(&rdst, kRtElems * 4).ok());
  std::vector<std::uint32_t> bdata(kBatchElems);
  for (std::uint32_t i = 0; i < kBatchElems; ++i) bdata[i] = i * 3 + 1;
  ASSERT_TRUE(batch->cudaMemcpyH2D(bsrc, bdata.data(), kBatchElems * 4).ok());
  std::vector<std::uint32_t> rdata(kRtElems, 0xFEED);
  ASSERT_TRUE(rt->cudaMemcpyH2D(rsrc, rdata.data(), kRtElems * 4).ok());

  simcuda::StreamId bstream = 0, rstream = 0;
  ASSERT_TRUE(batch->cudaStreamCreate(&bstream).ok());
  ASSERT_TRUE(rt->cudaStreamCreate(&rstream).ok());

  ASSERT_TRUE(
      LaunchCopy(*batch, *batch_fn, bsrc, bdst, kBatchElems, 1024, bstream)
          .ok());
  ASSERT_TRUE(WaitForResidentKernel());

  // The realtime kernel cannot co-reside (the device is full): the batch
  // kernel must be revoked at its next safe point for this to complete.
  ASSERT_TRUE(
      LaunchCopy(*rt, *rt_fn, rsrc, rdst, kRtElems, 256, rstream).ok());
  ASSERT_TRUE(rt->cudaStreamSynchronize(rstream).ok());
  EXPECT_GE(manager_->stats().preemptions, 1u);
  EXPECT_GT(manager_->stats().checkpoint_bytes_saved, 0u);
  EXPECT_GE(manager_->stats().wait_hist[0].count.load(), 1u);

  // The batch kernel resumes from its checkpoint and still produces the
  // right answer; no completed block is replayed.
  ASSERT_TRUE(batch->cudaStreamSynchronize(bstream).ok());
  EXPECT_GE(manager_->stats().preemption_resumes, 1u);
  EXPECT_EQ(manager_->stats().kernel_blocks_executed,
            kBatchElems / 1024 + kRtElems / 256);

  std::vector<std::uint32_t> out(kBatchElems);
  ASSERT_TRUE(
      batch->cudaMemcpy(out.data(), bdst, kBatchElems * 4,
                        MemcpyKind::kDeviceToHost)
          .ok());
  EXPECT_EQ(out, bdata);
  std::vector<std::uint32_t> rout(kRtElems);
  ASSERT_TRUE(rt->cudaMemcpy(rout.data(), rdst, kRtElems * 4,
                             MemcpyKind::kDeviceToHost)
                  .ok());
  EXPECT_EQ(rout, rdata);
}

TEST_F(PreemptionTest, TierPromotedKernelPreemptsAndResumesExactly) {
  // Same revocation scenario, but the victim module is hot: low promotion
  // thresholds plus two warm-up launches put the batch kernel at tier 2
  // (direct-threaded fused dispatch) before it is revoked. Checkpoint,
  // resume and exact block accounting must be tier-invariant.
  ManagerOptions options;
  options.scheduler_executors = 4;
  options.device_time_ns_per_cycle = 200.0;
  options.aging_quantum_ns = 0;
  options.tier1_launch_threshold = 2;
  options.tier2_launch_threshold = 3;
  Init(options);

  auto batch = Connect();
  auto rt = Connect();
  ASSERT_TRUE(batch.ok() && rt.ok());
  ASSERT_TRUE(batch->SetPriority(PriorityClass::kBatch).ok());
  ASSERT_TRUE(rt->SetPriority(PriorityClass::kRealtime).ok());
  auto batch_fn = LoadKernel(*batch, "copyk");
  auto rt_fn = LoadKernel(*rt, "copyk");
  ASSERT_TRUE(batch_fn.ok() && rt_fn.ok());

  constexpr std::uint32_t kBatchElems = 48 * 1024;
  constexpr std::uint32_t kRtElems = 256;
  constexpr std::uint32_t kWarmElems = 64;
  DevicePtr bsrc = 0, bdst = 0, rsrc = 0, rdst = 0;
  ASSERT_TRUE(batch->cudaMalloc(&bsrc, kBatchElems * 4).ok());
  ASSERT_TRUE(batch->cudaMalloc(&bdst, kBatchElems * 4).ok());
  ASSERT_TRUE(rt->cudaMalloc(&rsrc, kRtElems * 4).ok());
  ASSERT_TRUE(rt->cudaMalloc(&rdst, kRtElems * 4).ok());
  std::vector<std::uint32_t> bdata(kBatchElems);
  for (std::uint32_t i = 0; i < kBatchElems; ++i) bdata[i] = i * 5 + 2;
  ASSERT_TRUE(batch->cudaMemcpyH2D(bsrc, bdata.data(), kBatchElems * 4).ok());
  std::vector<std::uint32_t> rdata(kRtElems, 0xBEEF);
  ASSERT_TRUE(rt->cudaMemcpyH2D(rsrc, rdata.data(), kRtElems * 4).ok());

  simcuda::StreamId bstream = 0, rstream = 0;
  ASSERT_TRUE(batch->cudaStreamCreate(&bstream).ok());
  ASSERT_TRUE(rt->cudaStreamCreate(&rstream).ok());

  // Two single-block warm-up launches drive the shared module heat to the
  // tier-2 threshold; the big launch below is the third.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(
        LaunchCopy(*batch, *batch_fn, bsrc, bdst, kWarmElems, 64, bstream)
            .ok());
  }
  ASSERT_TRUE(batch->cudaStreamSynchronize(bstream).ok());
  EXPECT_EQ(manager_->stats().tier1_promotions, 1u);

  ASSERT_TRUE(
      LaunchCopy(*batch, *batch_fn, bsrc, bdst, kBatchElems, 1024, bstream)
          .ok());
  ASSERT_TRUE(WaitForResidentKernel());
  ASSERT_TRUE(
      LaunchCopy(*rt, *rt_fn, rsrc, rdst, kRtElems, 256, rstream).ok());
  ASSERT_TRUE(rt->cudaStreamSynchronize(rstream).ok());
  ASSERT_TRUE(batch->cudaStreamSynchronize(bstream).ok());

  EXPECT_GE(manager_->stats().preemptions, 1u);
  EXPECT_GE(manager_->stats().preemption_resumes, 1u);
  EXPECT_EQ(manager_->stats().tier2_promotions, 1u);
  EXPECT_GT(manager_->stats().tier_instructions[2].load(), 0u)
      << "the revoked/resumed launch should have retired at tier 2";
  // Exact accounting across revocation: warm-ups (1 block each) + the
  // 48-block batch grid + the 1-block realtime grid, nothing replayed.
  EXPECT_EQ(manager_->stats().kernel_blocks_executed,
            2u + kBatchElems / 1024 + kRtElems / 256);

  std::vector<std::uint32_t> out(kBatchElems);
  ASSERT_TRUE(batch
                  ->cudaMemcpy(out.data(), bdst, kBatchElems * 4,
                               MemcpyKind::kDeviceToHost)
                  .ok());
  EXPECT_EQ(out, bdata);
}

TEST_F(PreemptionTest, DisabledEngineNeverPreempts) {
  ManagerOptions options;
  options.scheduler_executors = 4;
  options.device_time_ns_per_cycle = 200.0;
  options.preemption_enabled = false;
  options.aging_quantum_ns = 0;
  Init(options);

  auto batch = Connect();
  auto rt = Connect();
  ASSERT_TRUE(batch.ok() && rt.ok());
  ASSERT_TRUE(batch->SetPriority(PriorityClass::kBatch).ok());
  ASSERT_TRUE(rt->SetPriority(PriorityClass::kRealtime).ok());
  auto batch_fn = LoadKernel(*batch, "copyk");
  auto rt_fn = LoadKernel(*rt, "copyk");
  ASSERT_TRUE(batch_fn.ok() && rt_fn.ok());

  constexpr std::uint32_t kBatchElems = 48 * 1024;
  DevicePtr bsrc = 0, bdst = 0, rsrc = 0, rdst = 0;
  ASSERT_TRUE(batch->cudaMalloc(&bsrc, kBatchElems * 4).ok());
  ASSERT_TRUE(batch->cudaMalloc(&bdst, kBatchElems * 4).ok());
  ASSERT_TRUE(rt->cudaMalloc(&rsrc, 256 * 4).ok());
  ASSERT_TRUE(rt->cudaMalloc(&rdst, 256 * 4).ok());

  simcuda::StreamId bstream = 0, rstream = 0;
  ASSERT_TRUE(batch->cudaStreamCreate(&bstream).ok());
  ASSERT_TRUE(rt->cudaStreamCreate(&rstream).ok());
  ASSERT_TRUE(
      LaunchCopy(*batch, *batch_fn, bsrc, bdst, kBatchElems, 1024, bstream)
          .ok());
  ASSERT_TRUE(WaitForResidentKernel());
  ASSERT_TRUE(LaunchCopy(*rt, *rt_fn, rsrc, rdst, 256, 256, rstream).ok());
  // The realtime kernel simply waits for the device to drain.
  ASSERT_TRUE(rt->cudaStreamSynchronize(rstream).ok());
  ASSERT_TRUE(batch->cudaStreamSynchronize(bstream).ok());
  EXPECT_EQ(manager_->stats().preemptions, 0u);
  EXPECT_EQ(manager_->stats().preemption_resumes, 0u);
}

// ---- anti-starvation aging ------------------------------------------------

TEST_F(PreemptionTest, AgingPromotesStarvedFullDeviceBatchKernel) {
  ManagerOptions options;
  options.scheduler_executors = 4;
  options.device_time_ns_per_cycle = 2'000.0;
  options.aging_quantum_ns = 5'000'000;  // one class per 5 ms waited
  Init(options);

  auto worker = Connect();  // kNormal, keeps the device busy
  auto batch = Connect(32ull << 20);
  ASSERT_TRUE(worker.ok() && batch.ok());
  ASSERT_TRUE(batch->SetPriority(PriorityClass::kBatch).ok());
  auto worker_fn = LoadKernel(*worker, "copyk");
  auto batch_fn = LoadKernel(*batch, "copyk");
  ASSERT_TRUE(worker_fn.ok() && batch_fn.ok());

  constexpr std::uint32_t kWorkerElems = 8 * 256;  // 8 blocks, ~10 ms each
  constexpr std::uint32_t kBatchElems = 48 * 1024;  // full device
  constexpr int kWorkerKernels = 12;
  DevicePtr wsrc = 0, wdst = 0, bsrc = 0, bdst = 0;
  ASSERT_TRUE(worker->cudaMalloc(&wsrc, kWorkerElems * 4).ok());
  ASSERT_TRUE(worker->cudaMalloc(&wdst, kWorkerElems * 4).ok());
  ASSERT_TRUE(batch->cudaMalloc(&bsrc, kBatchElems * 4).ok());
  ASSERT_TRUE(batch->cudaMalloc(&bdst, kBatchElems * 4).ok());

  simcuda::StreamId wstream = 0, bstream = 0;
  ASSERT_TRUE(worker->cudaStreamCreate(&wstream).ok());
  ASSERT_TRUE(batch->cudaStreamCreate(&bstream).ok());

  // A dozen back-to-back normal-priority kernels: without aging the
  // full-device batch kernel would only fit after ALL of them drained.
  for (int i = 0; i < kWorkerKernels; ++i)
    ASSERT_TRUE(
        LaunchCopy(*worker, *worker_fn, wsrc, wdst, kWorkerElems, 256,
                   wstream)
            .ok());
  ASSERT_TRUE(WaitForResidentKernel());
  ASSERT_TRUE(
      LaunchCopy(*batch, *batch_fn, bsrc, bdst, kBatchElems, 1024, bstream)
          .ok());

  ASSERT_TRUE(batch->cudaStreamSynchronize(bstream).ok());
  // At the moment the batch kernel finished, how many of the normal
  // kernels had executed? Aging must have promoted the batch kernel ahead
  // of the tail of the worker queue.
  const std::uint64_t blocks_done = manager_->stats().kernel_blocks_executed;
  const std::uint64_t worker_blocks_done = blocks_done - kBatchElems / 1024;
  EXPECT_LT(worker_blocks_done,
            static_cast<std::uint64_t>(kWorkerKernels) * 8)
      << "batch kernel only ran after the whole worker queue drained";
  ASSERT_TRUE(worker->cudaStreamSynchronize(wstream).ok());
  EXPECT_EQ(manager_->stats().kernel_blocks_executed,
            static_cast<std::uint64_t>(kWorkerKernels) * 8 +
                kBatchElems / 1024);
}

// ---- instruction budget as last resort ------------------------------------

TEST_F(PreemptionTest, BudgetTripRequeuesOnceKeepingCompletedBlocks) {
  ManagerOptions options;
  options.max_kernel_instructions = 10'000;
  Init(options);
  auto lib = Connect();
  ASSERT_TRUE(lib.ok());
  auto module = lib->cuModuleLoadData(kSpinTailPtx);
  ASSERT_TRUE(module.ok()) << module.status();
  auto fn = lib->cuModuleGetFunction(*module, "spintail");
  ASSERT_TRUE(fn.ok());
  DevicePtr dst = 0;
  ASSERT_TRUE(lib->cudaMalloc(&dst, 64).ok());

  simcuda::LaunchConfig config;
  config.grid = {4, 1, 1};  // blocks 0..2 store and exit, block 3 spins
  const Status s =
      lib->cudaLaunchKernel(*fn, config, {KernelArg::U64(dst)});
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  // Exactly one revoke-and-requeue before the failure became final, and the
  // three completed blocks were not replayed on the retry. A budget trip is
  // NOT a priority preemption: those counters stay zero.
  EXPECT_EQ(manager_->stats().budget_requeues, 1u);
  EXPECT_EQ(manager_->stats().kernel_blocks_executed, 3u);
  EXPECT_EQ(manager_->stats().faults_contained, 1u);
  EXPECT_EQ(manager_->stats().preemptions, 0u);
  EXPECT_EQ(manager_->stats().preemption_resumes, 0u);
  EXPECT_EQ(manager_->stats().checkpoint_bytes_saved, 0u);
  DevicePtr p = 0;
  EXPECT_EQ(lib->cudaMalloc(&p, 64).code(), StatusCode::kAborted);
}

TEST_F(PreemptionTest, BudgetTripKillsImmediatelyWhenEngineDisabled) {
  ManagerOptions options;
  options.max_kernel_instructions = 10'000;
  options.preemption_enabled = false;
  Init(options);
  auto lib = Connect();
  ASSERT_TRUE(lib.ok());
  auto module = lib->cuModuleLoadData(kSpinTailPtx);
  ASSERT_TRUE(module.ok()) << module.status();
  auto fn = lib->cuModuleGetFunction(*module, "spintail");
  ASSERT_TRUE(fn.ok());
  DevicePtr dst = 0;
  ASSERT_TRUE(lib->cudaMalloc(&dst, 64).ok());

  simcuda::LaunchConfig config;
  config.grid = {4, 1, 1};
  const Status s =
      lib->cudaLaunchKernel(*fn, config, {KernelArg::U64(dst)});
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(manager_->stats().budget_requeues, 0u);
  EXPECT_EQ(manager_->stats().faults_contained, 1u);
}

// ---- priority plumbing ----------------------------------------------------

TEST_F(PreemptionTest, NewStreamsInheritSessionPriority) {
  Init(ManagerOptions{});
  auto lib = Connect();
  ASSERT_TRUE(lib.ok());
  ASSERT_TRUE(lib->SetPriority(PriorityClass::kRealtime).ok());
  simcuda::StreamId stream = 0;
  ASSERT_TRUE(lib->cudaStreamCreate(&stream).ok());
  auto fn = LoadKernel(*lib, "copyk");
  ASSERT_TRUE(fn.ok());
  DevicePtr src = 0, dst = 0;
  ASSERT_TRUE(lib->cudaMalloc(&src, 256 * 4).ok());
  ASSERT_TRUE(lib->cudaMalloc(&dst, 256 * 4).ok());
  ASSERT_TRUE(LaunchCopy(*lib, *fn, src, dst, 256, 256, stream).ok());
  ASSERT_TRUE(lib->cudaStreamSynchronize(stream).ok());
  // The launch was recorded against the realtime wait histogram: the tag
  // reached the scheduler.
  EXPECT_EQ(manager_->stats().wait_hist[0].count.load(), 1u);
  EXPECT_EQ(manager_->stats().wait_hist[1].count.load(), 0u);
}

TEST_F(PreemptionTest, StreamScopeOverridesSessionClass) {
  Init(ManagerOptions{});
  auto lib = Connect();
  ASSERT_TRUE(lib.ok());
  simcuda::StreamId stream = 0;
  ASSERT_TRUE(lib->cudaStreamCreate(&stream).ok());  // kNormal at creation
  ASSERT_TRUE(
      lib->SetStreamPriority(stream, PriorityClass::kBatch).ok());
  auto fn = LoadKernel(*lib, "copyk");
  ASSERT_TRUE(fn.ok());
  DevicePtr src = 0, dst = 0;
  ASSERT_TRUE(lib->cudaMalloc(&src, 256 * 4).ok());
  ASSERT_TRUE(lib->cudaMalloc(&dst, 256 * 4).ok());
  ASSERT_TRUE(LaunchCopy(*lib, *fn, src, dst, 256, 256, stream).ok());
  ASSERT_TRUE(lib->cudaStreamSynchronize(stream).ok());
  EXPECT_EQ(manager_->stats().wait_hist[2].count.load(), 1u);
}

}  // namespace
}  // namespace grd::guardian
