#include <gtest/gtest.h>

#include "ptx/parser.hpp"
#include "ptx/printer.hpp"

namespace grd::ptx {
namespace {

// The paper's Listing 1 kernel, pre-instrumentation.
constexpr std::string_view kListing1 = R"(
.version 7.7
.target sm_86
.address_size 64

.visible .entry kernel(
    .param .u64 kernel_param_0,
    .param .u32 kernel_param_1
)
{
    .reg .b32 %r<3>;
    .reg .b64 %rd<5>;
    ld.param.u64 %rd1, [kernel_param_0];
    ld.param.u32 %r1, [kernel_param_1];
    cvta.to.global.u64 %rd2, %rd1;
    mov.u32 %r2, %tid.x;
    mul.wide.s32 %rd3, %r1, 4;
    add.s64 %rd4, %rd2, %rd3;
    st.global.u32 [%rd4], %r2;
    ret;
}
)";

Module MustParse(std::string_view src) {
  auto result = Parse(src);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? std::move(*result) : Module{};
}

TEST(Parser, ModuleHeader) {
  const Module m = MustParse(kListing1);
  EXPECT_EQ(m.version, "7.7");
  EXPECT_EQ(m.target, "sm_86");
  EXPECT_EQ(m.address_size, 64);
}

TEST(Parser, KernelSignature) {
  const Module m = MustParse(kListing1);
  ASSERT_EQ(m.kernels.size(), 1u);
  const Kernel& k = m.kernels[0];
  EXPECT_EQ(k.name, "kernel");
  EXPECT_TRUE(k.is_entry);
  EXPECT_TRUE(k.visible);
  ASSERT_EQ(k.params.size(), 2u);
  EXPECT_EQ(k.params[0].type, Type::kU64);
  EXPECT_EQ(k.params[0].name, "kernel_param_0");
  EXPECT_EQ(k.params[1].type, Type::kU32);
}

TEST(Parser, RegDecls) {
  const Module m = MustParse(kListing1);
  const Kernel& k = m.kernels[0];
  const auto* r0 = std::get_if<RegDecl>(&k.body[0]);
  ASSERT_NE(r0, nullptr);
  EXPECT_TRUE(r0->is_range);
  EXPECT_EQ(r0->prefix, "%r");
  EXPECT_EQ(r0->count, 3);
  EXPECT_EQ(r0->type, Type::kB32);
}

TEST(Parser, Instructions) {
  const Module m = MustParse(kListing1);
  const Kernel& k = m.kernels[0];
  const auto* ld = std::get_if<Instruction>(&k.body[2]);
  ASSERT_NE(ld, nullptr);
  EXPECT_EQ(ld->opcode, "ld");
  EXPECT_EQ(ld->modifiers, (std::vector<std::string>{"param", "u64"}));
  ASSERT_EQ(ld->operands.size(), 2u);
  EXPECT_EQ(ld->operands[0].kind, Operand::Kind::kRegister);
  EXPECT_EQ(ld->operands[0].name, "%rd1");
  EXPECT_EQ(ld->operands[1].kind, Operand::Kind::kMemory);
  EXPECT_EQ(ld->operands[1].name, "kernel_param_0");
  EXPECT_FALSE(ld->operands[1].MemBaseIsRegister());

  const auto* st = std::get_if<Instruction>(&k.body[8]);
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->opcode, "st");
  EXPECT_TRUE(st->IsProtectedMemoryAccess());
  EXPECT_TRUE(st->operands[0].MemBaseIsRegister());
}

TEST(Parser, SpaceAndTypeModifiers) {
  const Module m = MustParse(kListing1);
  const auto& st = std::get<Instruction>(m.kernels[0].body[8]);
  EXPECT_EQ(st.SpaceModifier(), StateSpace::kGlobal);
  EXPECT_EQ(st.TypeModifier(), Type::kU32);
  const auto& ld = std::get<Instruction>(m.kernels[0].body[2]);
  EXPECT_EQ(ld.SpaceModifier(), StateSpace::kParam);
  EXPECT_FALSE(ld.IsProtectedMemoryAccess());  // param space is safe
}

TEST(Parser, PredicatedBranchAndLabel) {
  const Module m = MustParse(R"(
.version 7.7
.target sm_86
.address_size 64
.visible .entry k()
{
    .reg .pred %p<2>;
    .reg .b32 %r<3>;
    setp.ge.s32 %p1, %r1, %r2;
    @%p1 bra LBB0_2;
    mov.u32 %r1, 0;
LBB0_2:
    ret;
}
)");
  const Kernel& k = m.kernels[0];
  const auto& bra = std::get<Instruction>(k.body[3]);
  ASSERT_TRUE(bra.pred.has_value());
  EXPECT_EQ(bra.pred->reg, "%p1");
  EXPECT_FALSE(bra.pred->negated);
  EXPECT_EQ(bra.operands[0].kind, Operand::Kind::kIdentifier);
  EXPECT_EQ(bra.operands[0].name, "LBB0_2");
  const auto* label = std::get_if<Label>(&k.body[5]);
  ASSERT_NE(label, nullptr);
  EXPECT_EQ(label->name, "LBB0_2");
}

TEST(Parser, NegatedPredicate) {
  const Module m = MustParse(R"(
.version 7.7
.target sm_86
.address_size 64
.visible .entry k()
{
    .reg .pred %p<2>;
    @!%p1 bra DONE;
DONE:
    ret;
}
)");
  const auto& bra = std::get<Instruction>(m.kernels[0].body[1]);
  ASSERT_TRUE(bra.pred.has_value());
  EXPECT_TRUE(bra.pred->negated);
}

TEST(Parser, SharedVarAndBranchTargets) {
  const Module m = MustParse(R"(
.version 7.7
.target sm_86
.address_size 64
.visible .entry k(.param .u32 k_param_0)
{
    .shared .align 4 .b8 sdata[1024];
    .reg .b32 %r<3>;
ts: .branchtargets L0, L1;
    brx.idx %r1, ts;
L0:
    ret;
L1:
    ret;
}
)");
  const Kernel& k = m.kernels[0];
  const auto* smem = std::get_if<VarDecl>(&k.body[0]);
  ASSERT_NE(smem, nullptr);
  EXPECT_EQ(smem->space, StateSpace::kShared);
  EXPECT_EQ(smem->align, 4);
  EXPECT_EQ(smem->array_size, 1024);
  const auto* table = std::get_if<BranchTargetsDecl>(&k.body[2]);
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->name, "ts");
  EXPECT_EQ(table->labels, (std::vector<std::string>{"L0", "L1"}));
  const auto& brx = std::get<Instruction>(k.body[3]);
  EXPECT_EQ(brx.opcode, "brx");
  EXPECT_TRUE(brx.HasModifier("idx"));
}

TEST(Parser, DeviceFunc) {
  const Module m = MustParse(R"(
.version 7.7
.target sm_86
.address_size 64
.func helper(.param .u64 helper_param_0)
{
    ret;
}
)");
  ASSERT_EQ(m.kernels.size(), 1u);
  EXPECT_FALSE(m.kernels[0].is_entry);
  EXPECT_FALSE(m.kernels[0].visible);
}

TEST(Parser, MemoryOffsets) {
  const Module m = MustParse(R"(
.version 7.7
.target sm_86
.address_size 64
.visible .entry k()
{
    .reg .b32 %r<3>;
    .reg .b64 %rd<3>;
    ld.global.u32 %r1, [%rd1+8];
    ld.global.u32 %r2, [%rd1+-16];
    st.global.u32 [%rd2], %r1;
    ret;
}
)");
  const auto& k = m.kernels[0];
  EXPECT_EQ(std::get<Instruction>(k.body[2]).operands[1].offset, 8);
  EXPECT_EQ(std::get<Instruction>(k.body[3]).operands[1].offset, -16);
  EXPECT_EQ(std::get<Instruction>(k.body[4]).operands[0].offset, 0);
}

TEST(Parser, VectorOperand) {
  const Module m = MustParse(R"(
.version 7.7
.target sm_86
.address_size 64
.visible .entry k()
{
    .reg .b32 %r<5>;
    .reg .b64 %rd<2>;
    ld.global.v4.u32 {%r1, %r2, %r3, %r4}, [%rd1];
    ret;
}
)");
  const auto& ld = std::get<Instruction>(m.kernels[0].body[2]);
  EXPECT_EQ(ld.VectorWidth(), 4);
  ASSERT_EQ(ld.operands[0].kind, Operand::Kind::kVector);
  EXPECT_EQ(ld.operands[0].vec.size(), 4u);
}

TEST(Parser, GlobalVariables) {
  const Module m = MustParse(R"(
.version 7.7
.target sm_86
.address_size 64
.global .align 8 .b8 lut[64];
.const .f32 pi;
)");
  ASSERT_EQ(m.globals.size(), 2u);
  EXPECT_EQ(m.globals[0].space, StateSpace::kGlobal);
  EXPECT_EQ(m.globals[0].array_size, 64);
  EXPECT_EQ(m.globals[1].space, StateSpace::kConst);
  EXPECT_EQ(m.globals[1].array_size, -1);
}

TEST(Parser, ErrorOnGarbage) {
  EXPECT_FALSE(Parse("garbage tokens here").ok());
  EXPECT_FALSE(Parse(".version").ok());
  EXPECT_FALSE(Parse(".visible .entry k( { }").ok());
}

TEST(Parser, ErrorOnUnterminatedBody) {
  EXPECT_FALSE(Parse(R"(
.version 7.7
.target sm_86
.address_size 64
.visible .entry k()
{
    ret;
)").ok());
}

TEST(Parser, StatsCountProtectedAccesses) {
  const Module m = MustParse(kListing1);
  const KernelStats stats = ComputeStats(m.kernels[0]);
  EXPECT_EQ(stats.loads, 0u);   // both loads are ld.param (safe space)
  EXPECT_EQ(stats.stores, 1u);  // st.global
  EXPECT_EQ(stats.registers_declared, 8u);  // %r<3> + %rd<5>
}

}  // namespace
}  // namespace grd::ptx
