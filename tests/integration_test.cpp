// Full-stack integration: simulated closed-source libraries and multi-tenant
// scenarios through the complete grdLib -> IPC -> grdManager -> patcher ->
// interpreter -> simulated-GPU pipeline.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "guardian/grdlib.hpp"
#include "guardian/manager.hpp"
#include "guardian/transport.hpp"
#include "ptx/generator.hpp"
#include "ptx/printer.hpp"
#include "simcuda/native.hpp"
#include "simgpu/device_spec.hpp"
#include "simlibs/cublas.hpp"
#include "simlibs/cufft.hpp"
#include "simlibs/curand.hpp"
#include "simlibs/cusolver.hpp"
#include "simlibs/cusparse.hpp"

namespace grd {
namespace {

using guardian::GrdLib;
using ptxexec::KernelArg;
using simcuda::DevicePtr;
using simcuda::MemcpyKind;

class FullStackTest : public ::testing::Test {
 protected:
  FullStackTest()
      : gpu_(simgpu::QuadroRtxA4000()),
        manager_(&gpu_, guardian::ManagerOptions{}),
        transport_(&manager_) {}

  Result<GrdLib> Connect(std::uint64_t bytes = 64ull << 20) {
    return GrdLib::Connect(&transport_, bytes);
  }

  simcuda::Gpu gpu_;
  guardian::GrdManager manager_;
  guardian::LoopbackTransport transport_;
};

TEST_F(FullStackTest, CufftThroughGuardian) {
  auto lib = Connect();
  ASSERT_TRUE(lib.ok());
  auto fft = simlibs::Cufft::Create(*lib);
  ASSERT_TRUE(fft.ok()) << fft.status();
  const float signal[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  DevicePtr in = 0, out = 0;
  ASSERT_TRUE(lib->cudaMalloc(&in, sizeof(signal)).ok());
  ASSERT_TRUE(lib->cudaMalloc(&out, sizeof(signal)).ok());
  ASSERT_TRUE(lib->cudaMemcpyH2D(in, signal, sizeof(signal)).ok());
  ASSERT_TRUE(fft->ExecC2C(in, out, 4).ok());
  float result[8] = {};
  ASSERT_TRUE(
      lib->cudaMemcpy(result, out, sizeof(result), MemcpyKind::kDeviceToHost)
          .ok());
  EXPECT_FLOAT_EQ(result[6], 7.0f);  // identity twiddle
  // The twiddle staging (cuMemAlloc inside the library) came from the
  // client's own partition.
  EXPECT_GT(manager_.stats().transfers_checked, 0u);
}

TEST_F(FullStackTest, CusolverThroughGuardian) {
  auto lib = Connect();
  ASSERT_TRUE(lib.ok());
  auto solver = simlibs::Cusolver::Create(*lib);
  ASSERT_TRUE(solver.ok()) << solver.status();
  const double diag[2] = {4.0, 8.0};
  const double rhs[2] = {12.0, 24.0};
  DevicePtr d = 0, b = 0, x = 0;
  ASSERT_TRUE(lib->cudaMalloc(&d, sizeof(diag)).ok());
  ASSERT_TRUE(lib->cudaMalloc(&b, sizeof(rhs)).ok());
  ASSERT_TRUE(lib->cudaMalloc(&x, sizeof(rhs)).ok());
  ASSERT_TRUE(lib->cudaMemcpyH2D(d, diag, sizeof(diag)).ok());
  ASSERT_TRUE(lib->cudaMemcpyH2D(b, rhs, sizeof(rhs)).ok());
  ASSERT_TRUE(solver->SpDcsrqr(d, b, x, 2).ok());
  double result[2] = {};
  ASSERT_TRUE(
      lib->cudaMemcpy(result, x, sizeof(result), MemcpyKind::kDeviceToHost)
          .ok());
  EXPECT_DOUBLE_EQ(result[0], 3.0);
  EXPECT_DOUBLE_EQ(result[1], 3.0);
}

TEST_F(FullStackTest, CurandThroughGuardianIsDeterministic) {
  auto lib = Connect();
  ASSERT_TRUE(lib.ok());
  auto rand = simlibs::Curand::Create(*lib, 99);
  ASSERT_TRUE(rand.ok());
  DevicePtr out = 0;
  ASSERT_TRUE(lib->cudaMalloc(&out, 32).ok());
  ASSERT_TRUE(rand->Generate(out, 8).ok());
  std::uint32_t guarded[8] = {};
  ASSERT_TRUE(lib->cudaMemcpy(guarded, out, sizeof(guarded),
                              MemcpyKind::kDeviceToHost)
                  .ok());

  // Same sequence on the native runtime.
  simcuda::Gpu gpu2(simgpu::QuadroRtxA4000());
  simcuda::NativeCuda native(&gpu2);
  auto rand2 = simlibs::Curand::Create(native, 99);
  ASSERT_TRUE(rand2.ok());
  DevicePtr out2 = 0;
  ASSERT_TRUE(native.cudaMalloc(&out2, 32).ok());
  ASSERT_TRUE(rand2->Generate(out2, 8).ok());
  std::uint32_t reference[8] = {};
  ASSERT_TRUE(native.cudaMemcpy(reference, out2, sizeof(reference),
                                MemcpyKind::kDeviceToHost)
                  .ok());
  for (int i = 0; i < 8; ++i) EXPECT_EQ(guarded[i], reference[i]) << i;
}

TEST_F(FullStackTest, AllThreeModesComputeIdenticalInBoundsResults) {
  // Property: for in-bounds workloads, the bounds-check mode is
  // unobservable — bitwise, modulo and checking all yield native results.
  std::vector<float> reference;
  for (const auto mode :
       {ptxpatcher::BoundsCheckMode::kFencingBitwise,
        ptxpatcher::BoundsCheckMode::kFencingModulo,
        ptxpatcher::BoundsCheckMode::kChecking}) {
    simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
    guardian::ManagerOptions options;
    options.mode = mode;
    guardian::GrdManager manager(&gpu, options);
    guardian::LoopbackTransport transport(&manager);
    auto lib = GrdLib::Connect(&transport, 16 << 20);
    ASSERT_TRUE(lib.ok());
    auto module = lib->cuModuleLoadData(ptx::Print(ptx::MakeSampleModule()));
    auto fn = lib->cuModuleGetFunction(*module, "saxpy");
    ASSERT_TRUE(fn.ok());
    const int n = 64;
    DevicePtr x = 0, y = 0;
    ASSERT_TRUE(lib->cudaMalloc(&x, n * 4).ok());
    ASSERT_TRUE(lib->cudaMalloc(&y, n * 4).ok());
    std::vector<float> xs(n), ys(n);
    for (int i = 0; i < n; ++i) {
      xs[i] = static_cast<float>(i) * 0.5f;
      ys[i] = static_cast<float>(n - i);
    }
    ASSERT_TRUE(lib->cudaMemcpyH2D(x, xs.data(), n * 4).ok());
    ASSERT_TRUE(lib->cudaMemcpyH2D(y, ys.data(), n * 4).ok());
    simcuda::LaunchConfig config;
    config.block = {64, 1, 1};
    ASSERT_TRUE(lib->cudaLaunchKernel(*fn, config,
                                      {KernelArg::U64(x), KernelArg::U64(y),
                                       KernelArg::F32(2.0f),
                                       KernelArg::U32(n)})
                    .ok());
    std::vector<float> out(n);
    ASSERT_TRUE(
        lib->cudaMemcpy(out.data(), y, n * 4, MemcpyKind::kDeviceToHost)
            .ok());
    if (reference.empty()) {
      reference = out;
      for (int i = 0; i < n; ++i)
        EXPECT_FLOAT_EQ(out[i], 2.0f * xs[i] + ys[i]);
    } else {
      EXPECT_EQ(out, reference)
          << ptxpatcher::BoundsCheckModeName(mode);
    }
  }
}

TEST_F(FullStackTest, ManyTenantsManyKernels) {
  // 6 tenants (the paper's max co-location), each running its own kernels
  // over its own data; all results must be correct and disjoint.
  constexpr int kTenants = 6;
  std::vector<GrdLib> tenants;
  std::vector<DevicePtr> buffers;
  std::vector<simcuda::FunctionId> kernels;
  const std::string ptx_text = ptx::Print(ptx::MakeSampleModule());
  for (int t = 0; t < kTenants; ++t) {
    auto lib = Connect(4 << 20);
    ASSERT_TRUE(lib.ok());
    auto module = lib->cuModuleLoadData(ptx_text);
    ASSERT_TRUE(module.ok());
    auto fn = lib->cuModuleGetFunction(*module, "copyk");
    ASSERT_TRUE(fn.ok());
    DevicePtr in = 0, out = 0;
    ASSERT_TRUE(lib->cudaMalloc(&in, 1024).ok());
    ASSERT_TRUE(lib->cudaMalloc(&out, 1024).ok());
    std::vector<std::uint32_t> data(256);
    for (int i = 0; i < 256; ++i) data[i] = t * 1000 + i;
    ASSERT_TRUE(lib->cudaMemcpyH2D(in, data.data(), 1024).ok());
    simcuda::LaunchConfig config;
    config.grid = {2, 1, 1};
    config.block = {128, 1, 1};
    ASSERT_TRUE(lib->cudaLaunchKernel(*fn, config,
                                      {KernelArg::U64(in), KernelArg::U64(out),
                                       KernelArg::U32(256)})
                    .ok());
    tenants.push_back(std::move(*lib));
    buffers.push_back(out);
    kernels.push_back(*fn);
  }
  for (int t = 0; t < kTenants; ++t) {
    std::vector<std::uint32_t> out(256);
    ASSERT_TRUE(tenants[t]
                    .cudaMemcpy(out.data(), buffers[t], 1024,
                                MemcpyKind::kDeviceToHost)
                    .ok());
    EXPECT_EQ(out[0], static_cast<std::uint32_t>(t * 1000));
    EXPECT_EQ(out[255], static_cast<std::uint32_t>(t * 1000 + 255));
  }
  EXPECT_EQ(manager_.active_clients(), static_cast<std::size_t>(kTenants));
  EXPECT_EQ(manager_.stats().sandboxed_launches,
            static_cast<std::uint64_t>(kTenants));
}

TEST_F(FullStackTest, ConcurrentClientsOverThreadedChannels) {
  // Multi-threaded clients hammering one manager through real rings, served
  // by a multi-worker pump (3 workers dispatching concurrently).
  constexpr int kClients = 4;
  constexpr int kOpsPerClient = 50;
  std::vector<std::unique_ptr<ipc::HeapChannel>> heaps;
  guardian::ManagerServer server(&manager_,
                                 guardian::ManagerServer::Policy::kRoundRobin,
                                 /*workers=*/3);
  for (int i = 0; i < kClients; ++i) {
    heaps.push_back(std::make_unique<ipc::HeapChannel>());
    server.AddChannel(&heaps.back()->channel());
  }
  std::atomic<bool> stop{false};
  std::thread pump([&] { server.Run(stop); });

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      guardian::ChannelTransport transport(&heaps[i]->channel());
      auto lib = GrdLib::Connect(&transport, 4 << 20);
      if (!lib.ok()) {
        ++failures;
        return;
      }
      for (int op = 0; op < kOpsPerClient; ++op) {
        DevicePtr p = 0;
        if (!lib->cudaMalloc(&p, 4096).ok()) ++failures;
        const std::uint64_t v = i * 100000 + op;
        if (!lib->cudaMemcpyH2D(p, &v, 8).ok()) ++failures;
        std::uint64_t back = 0;
        if (!lib->cudaMemcpy(&back, p, 8, MemcpyKind::kDeviceToHost).ok())
          ++failures;
        if (back != v) ++failures;
        if (!lib->cudaFree(p).ok()) ++failures;
      }
    });
  }
  for (auto& c : clients) c.join();
  stop.store(true);
  pump.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(FullStackTest, ModuleWithFuncAndBrxSurvivesFullPipeline) {
  // The trickier PTX constructs (.func, brx.idx, shared memory) must make
  // it through load -> patch -> print -> reparse -> execute.
  auto lib = Connect();
  ASSERT_TRUE(lib.ok());
  auto module = lib->cuModuleLoadData(ptx::Print(ptx::MakeSampleModule()));
  ASSERT_TRUE(module.ok()) << module.status();
  auto brx = lib->cuModuleGetFunction(*module, "brx_kernel");
  ASSERT_TRUE(brx.ok());
  DevicePtr buf = 0;
  ASSERT_TRUE(lib->cudaMalloc(&buf, 64).ok());
  simcuda::LaunchConfig config;
  ASSERT_TRUE(lib->cudaLaunchKernel(*brx, config,
                                    {KernelArg::U64(buf), KernelArg::U32(1)})
                  .ok());
  std::uint32_t v = 0;
  ASSERT_TRUE(lib->cudaMemcpy(&v, buf, 4, MemcpyKind::kDeviceToHost).ok());
  EXPECT_EQ(v, 20u);

  auto reduce = lib->cuModuleGetFunction(*module, "reduce");
  ASSERT_TRUE(reduce.ok());
  DevicePtr in = 0, out = 0;
  ASSERT_TRUE(lib->cudaMalloc(&in, 32 * 4).ok());
  ASSERT_TRUE(lib->cudaMalloc(&out, 4).ok());
  std::vector<float> ones(32, 1.0f);
  ASSERT_TRUE(lib->cudaMemcpyH2D(in, ones.data(), 32 * 4).ok());
  config.block = {32, 1, 1};
  ASSERT_TRUE(lib->cudaLaunchKernel(*reduce, config,
                                    {KernelArg::U64(in), KernelArg::U64(out)})
                  .ok());
  float sum = 0;
  ASSERT_TRUE(lib->cudaMemcpy(&sum, out, 4, MemcpyKind::kDeviceToHost).ok());
  EXPECT_FLOAT_EQ(sum, 32.0f);
}

}  // namespace
}  // namespace grd
