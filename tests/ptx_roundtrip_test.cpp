// Property tests: Print(ast) must re-parse to an identical AST for every
// generator-produced kernel and for randomized kernels.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ptx/generator.hpp"
#include "ptx/parser.hpp"
#include "ptx/printer.hpp"

namespace grd::ptx {
namespace {

void ExpectRoundTrip(const Module& module) {
  const std::string text = Print(module);
  auto reparsed = Parse(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n--- text ---\n" << text;
  EXPECT_EQ(*reparsed, module) << "--- text ---\n" << text;
}

TEST(RoundTrip, SampleModule) { ExpectRoundTrip(MakeSampleModule()); }

TEST(RoundTrip, EachSampleKernelIndividually) {
  for (const Kernel& k : MakeSampleModule().kernels) {
    Module m;
    m.kernels.push_back(k);
    ExpectRoundTrip(m);
  }
}

TEST(RoundTrip, ModuleWithGlobals) {
  Module m;
  VarDecl lut;
  lut.space = StateSpace::kGlobal;
  lut.type = Type::kB8;
  lut.name = "lut";
  lut.align = 8;
  lut.array_size = 256;
  m.globals.push_back(lut);
  m.kernels.push_back(MakeVecAddKernel());
  ExpectRoundTrip(m);
}

class RandomKernelRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RandomKernelRoundTrip, Holds) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  Module m;
  const int lds = static_cast<int>(rng.NextInRange(0, 40));
  const int sts = static_cast<int>(rng.NextInRange(0, 20));
  m.kernels.push_back(MakeRandomKernel(rng, "rk", lds, sts,
                                       /*use_offset_mode=*/GetParam() % 2));
  ExpectRoundTrip(m);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKernelRoundTrip,
                         ::testing::Range(0, 50));

}  // namespace
}  // namespace grd::ptx
