// Parity suite for the compiled bytecode engine (ptxexec::CompileKernel +
// the CompiledKernel executor) AND the tiered executors (FuseKernel
// superinstructions at tier 1, direct-threaded dispatch at tier 2) against
// the seed string-map interpreter (Interpreter::ExecuteReference): every
// kernel family the ptxexec tests exercise — plus patched kernels, faults,
// checkpoints and random fuzz — must produce identical ExecStats, statuses,
// fault details and memory images on every engine. Also holds the
// no-string-lookups-per-step regression guard and the fusion structure
// tests.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "ptx/generator.hpp"
#include "ptx/parser.hpp"
#include "ptxexec/interpreter.hpp"
#include "ptxexec/tier.hpp"
#include "ptxpatcher/patcher.hpp"

namespace grd::ptxexec {
namespace {

using ptx::MakeSampleModule;

constexpr std::uint64_t kMemBytes = 8ull << 20;

// Initial memory image: (address, u32 value) pairs stored before the run.
using MemInit = std::vector<std::pair<std::uint64_t, std::uint32_t>>;

class RangePolicy final : public simgpu::AccessPolicy {
 public:
  RangePolicy(std::uint64_t base, std::uint64_t size)
      : base_(base), size_(size) {}
  Status CheckAccess(std::uint64_t, std::uint64_t addr, std::uint64_t size,
                     bool) override {
    if (addr < base_ || addr + size > base_ + size_)
      return PermissionDenied("access outside allowed range");
    return OkStatus();
  }

 private:
  std::uint64_t base_, size_;
};

struct EngineRun {
  Result<ExecStats> result = ExecStats{};
  DeviceFault fault;
  std::vector<std::uint8_t> memory;
};

// Runs `kernel` once per engine on identical fresh memory images and
// returns both outcomes for comparison.
template <typename RunFn>
EngineRun RunEngine(const ptx::Module& module, const std::string& kernel,
                    const LaunchParams& params, const MemInit& init,
                    simgpu::AccessPolicy* policy, RunFn&& run) {
  EngineRun out;
  simgpu::GlobalMemory memory(kMemBytes);
  simgpu::AllowAllPolicy allow_all;
  for (const auto& [addr, value] : init)
    EXPECT_TRUE(memory.Store<std::uint32_t>(addr, value).ok());
  Interpreter interp(&memory, policy != nullptr ? policy : &allow_all, 1);
  out.result = run(interp, module, kernel, params);
  out.fault = interp.last_fault();
  out.memory.resize(kMemBytes);
  EXPECT_TRUE(memory.Read(0, out.memory.data(), kMemBytes).ok());
  return out;
}

// Compares one engine's outcome (stats/status/fault/memory) against the
// reference run; `engine` labels the failure.
void ExpectSameOutcome(const EngineRun& reference, const EngineRun& other,
                       const std::string& kernel, const char* engine) {
  SCOPED_TRACE(std::string("engine=") + engine);
  ASSERT_EQ(reference.result.ok(), other.result.ok())
      << "kernel " << kernel << ": reference="
      << (reference.result.ok() ? "ok" : reference.result.status().ToString())
      << " " << engine << "="
      << (other.result.ok() ? "ok" : other.result.status().ToString());
  if (reference.result.ok()) {
    const ExecStats& a = *reference.result;
    const ExecStats& b = *other.result;
    EXPECT_EQ(a.instructions, b.instructions) << kernel;
    EXPECT_EQ(a.global_loads, b.global_loads) << kernel;
    EXPECT_EQ(a.global_stores, b.global_stores) << kernel;
    EXPECT_EQ(a.shared_accesses, b.shared_accesses) << kernel;
    EXPECT_EQ(a.threads, b.threads) << kernel;
    EXPECT_EQ(a.blocks, b.blocks) << kernel;
  } else {
    EXPECT_EQ(reference.result.status().code(), other.result.status().code())
        << kernel;
    EXPECT_EQ(reference.result.status().message(),
              other.result.status().message())
        << kernel;
    EXPECT_EQ(reference.fault.status.code(), other.fault.status.code())
        << kernel;
    EXPECT_EQ(reference.fault.address, other.fault.address) << kernel;
    EXPECT_EQ(reference.fault.thread_linear_id, other.fault.thread_linear_id)
        << kernel;
    EXPECT_EQ(reference.fault.kernel, other.fault.kernel) << kernel;
  }
  EXPECT_EQ(reference.memory, other.memory)
      << "kernel " << kernel << ": engines diverged in memory effects";
}

// Every kernel every parity test runs goes through all four engines: the
// reference oracle, the compiled bytecode (tier 0), the fused program under
// switch dispatch (tier 1) and under direct-threaded dispatch (tier 2).
void ExpectParity(const ptx::Module& module, const std::string& kernel,
                  const LaunchParams& params, const MemInit& init = {},
                  simgpu::AccessPolicy* ref_policy = nullptr,
                  simgpu::AccessPolicy* compiled_policy = nullptr) {
  const EngineRun reference = RunEngine(
      module, kernel, params, init, ref_policy,
      [](Interpreter& interp, const ptx::Module& m, const std::string& k,
         const LaunchParams& p) { return interp.ExecuteReference(m, k, p); });
  const EngineRun compiled = RunEngine(
      module, kernel, params, init, compiled_policy,
      [](Interpreter& interp, const ptx::Module& m, const std::string& k,
         const LaunchParams& p) { return interp.Execute(m, k, p); });
  ExpectSameOutcome(reference, compiled, kernel, "compiled");

  for (const ExecTier tier : {ExecTier::kFused, ExecTier::kThreaded}) {
    const EngineRun tiered = RunEngine(
        module, kernel, params, init, compiled_policy,
        [tier](Interpreter& interp, const ptx::Module& m, const std::string& k,
               const LaunchParams& p) -> Result<ExecStats> {
          // Mirrors the manager's tiered launch path: compile the module,
          // surface per-kernel compile errors at Find, fuse, execute at tier.
          auto cm = CompiledModule::Compile(m);
          auto found = cm->Find(k);
          if (!found.ok()) return found.status();
          const CompiledKernel fused = FuseKernel(**found);
          return interp.Execute(fused, p, ExecControls{}, tier);
        });
    ExpectSameOutcome(reference, tiered, kernel,
                      tier == ExecTier::kFused ? "fused" : "threaded");
  }
}

// ---- sample-module kernels (the ptxexec_test corpus) ----------------------

TEST(ProgramParity, StoreTid) {
  LaunchParams params;
  params.block = {8, 1, 1};
  params.args = {KernelArg::U64(0x1000), KernelArg::U32(5)};
  ExpectParity(MakeSampleModule(), "kernel", params);
}

TEST(ProgramParity, VecAddMultiBlockGuardedTail) {
  MemInit init;
  for (int i = 0; i < 500; ++i) {
    init.push_back({0x10000 + i * 4, 0x3FC00000});  // 1.5f
    init.push_back({0x20000 + i * 4, 0x40200000});  // 2.5f
  }
  LaunchParams params;
  params.grid = {4, 1, 1};
  params.block = {128, 1, 1};
  params.args = {KernelArg::U64(0x10000), KernelArg::U64(0x20000),
                 KernelArg::U64(0x30000), KernelArg::U32(500)};
  ExpectParity(MakeSampleModule(), "vecadd", params, init);
}

TEST(ProgramParity, SaxpyFma) {
  MemInit init;
  for (int i = 0; i < 32; ++i) {
    init.push_back({0x1000 + i * 4, 0x40000000});  // 2.0f
    init.push_back({0x2000 + i * 4, 0x3F800000});  // 1.0f
  }
  LaunchParams params;
  params.block = {32, 1, 1};
  params.args = {KernelArg::U64(0x1000), KernelArg::U64(0x2000),
                 KernelArg::F32(3.0f), KernelArg::U32(32)};
  ExpectParity(MakeSampleModule(), "saxpy", params, init);
}

TEST(ProgramParity, OffsetCopy) {
  MemInit init;
  for (int i = 0; i < 64; ++i) init.push_back({0x4000 + i * 4, 100u + i});
  LaunchParams params;
  params.block = {16, 1, 1};
  params.args = {KernelArg::U64(0x4000), KernelArg::U64(0x8000)};
  ExpectParity(MakeSampleModule(), "offset_copy", params, init);
}

TEST(ProgramParity, DotUnrolled) {
  MemInit init;
  for (int i = 0; i < 16; ++i) {
    init.push_back({0x1000 + i * 4, 0x40000000});  // 2.0f
    init.push_back({0x2000 + i * 4, 0x40400000});  // 3.0f
  }
  LaunchParams params;
  params.block = {4, 1, 1};
  params.args = {KernelArg::U64(0x1000), KernelArg::U64(0x2000),
                 KernelArg::U64(0x3000)};
  ExpectParity(MakeSampleModule(), "dot", params, init);
}

TEST(ProgramParity, ReduceSharedMemoryBarriers) {
  MemInit init;
  for (int i = 0; i < 64; ++i) init.push_back({0x1000 + i * 4, 0x3F800000});
  LaunchParams params;
  params.block = {64, 1, 1};
  params.args = {KernelArg::U64(0x1000), KernelArg::U64(0x2000)};
  ExpectParity(MakeSampleModule(), "reduce", params, init);
}

TEST(ProgramParity, IndirectBranchAllArmsAndFault) {
  LaunchParams params;
  params.block = {1, 1, 1};
  for (std::uint32_t sel : {0u, 1u, 2u, 7u}) {  // 7 faults (table size 3)
    params.args = {KernelArg::U64(0x100), KernelArg::U32(sel)};
    ExpectParity(MakeSampleModule(), "brx_kernel", params);
  }
}

TEST(ProgramParity, OobWriterUnprotectedAndPolicyFault) {
  LaunchParams params;
  params.block = {1, 1, 1};
  params.args = {KernelArg::U64(0x10000), KernelArg::U64(0x10000),
                 KernelArg::U32(666)};
  // Unprotected: the write lands (Figure 1 scenario).
  ExpectParity(MakeSampleModule(), "oob_writer", params,
               {{0x20000, 777u}});
  // Under a range policy both engines must fault identically.
  RangePolicy ref_policy(0x10000, 0x1000);
  RangePolicy compiled_policy(0x10000, 0x1000);
  ExpectParity(MakeSampleModule(), "oob_writer", params, {{0x20000, 777u}},
               &ref_policy, &compiled_policy);
}

TEST(ProgramParity, MissingKernelArgumentFaults) {
  LaunchParams params;
  params.block = {4, 1, 1};
  params.args = {KernelArg::U64(0x1000)};  // second param missing
  ExpectParity(MakeSampleModule(), "kernel", params);
}

TEST(ProgramParity, UnknownKernelNameSameError) {
  LaunchParams params;
  simgpu::GlobalMemory memory(1 << 20);
  simgpu::AllowAllPolicy allow;
  Interpreter interp(&memory, &allow, 1);
  const ptx::Module module = MakeSampleModule();
  auto reference = interp.ExecuteReference(module, "nope", params);
  auto compiled = interp.Execute(module, "nope", params);
  ASSERT_FALSE(reference.ok());
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(reference.status().code(), compiled.status().code());
  EXPECT_EQ(reference.status().message(), compiled.status().message());
}

// ---- patched (sandboxed) kernels ------------------------------------------

TEST(ProgramParity, PatchedKernelsAllModes) {
  using ptxpatcher::BoundsCheckMode;
  for (const auto mode :
       {BoundsCheckMode::kFencingBitwise, BoundsCheckMode::kFencingModulo,
        BoundsCheckMode::kChecking}) {
    ptxpatcher::PatchOptions options;
    options.mode = mode;
    auto patched = ptxpatcher::PatchModule(MakeSampleModule(), options);
    ASSERT_TRUE(patched.ok()) << patched.status();
    const std::uint64_t base = 1ull << 20;
    const auto grd = ptxpatcher::ComputeGrdArgs(mode, base, 1ull << 20);
    MemInit init;
    for (int i = 0; i < 256; ++i) init.push_back({base + i * 4, 7u * i});
    LaunchParams params;
    params.grid = {2, 1, 1};
    params.block = {128, 1, 1};
    params.args = {KernelArg::U64(base), KernelArg::U64(base + 0x8000),
                   KernelArg::U32(256), KernelArg::U64(grd.arg0),
                   KernelArg::U64(grd.arg1)};
    ExpectParity(*patched, "copyk", params, init);
  }
}

// ---- arithmetic / control snippets ----------------------------------------

class SnippetParity : public ::testing::Test {
 protected:
  // The ptxexec_arith_test harness shape: %rd1 = out pointer, %rd2/%rd3 =
  // u64 args a/b.
  void Check(const std::string& body, std::uint64_t a = 0,
             std::uint64_t b = 0) {
    const std::string src = R"(
.version 7.7
.target sm_86
.address_size 64
.visible .entry t(.param .u64 p_out, .param .u64 p_a, .param .u64 p_b)
{
    .reg .pred %p<4>;
    .reg .f32 %f<8>;
    .reg .f64 %fd<8>;
    .reg .b32 %r<16>;
    .reg .b64 %rd<16>;
    .shared .align 8 .b8 scratch[64];
    ld.param.u64 %rd1, [p_out];
    ld.param.u64 %rd2, [p_a];
    ld.param.u64 %rd3, [p_b];
    cvta.to.global.u64 %rd1, %rd1;
)" + body + R"(
    ret;
}
)";
    auto module = ptx::Parse(src);
    ASSERT_TRUE(module.ok()) << module.status() << "\n" << body;
    LaunchParams params;
    params.args = {KernelArg::U64(0x1000), KernelArg::U64(a),
                   KernelArg::U64(b)};
    ExpectParity(*module, "t", params);
  }
};

TEST_F(SnippetParity, IntegerArithmetic) {
  Check("div.s32 %r1, %rd2, %rd3; st.global.u32 [%rd1], %r1;",
        static_cast<std::uint64_t>(-7), 2);
  Check("rem.u64 %rd4, %rd2, %rd3; st.global.u64 [%rd1], %rd4;", 1000003, 97);
  Check("div.u32 %r1, %rd2, %rd3; st.global.u32 [%rd1], %r1;", 42, 0);
  Check("rem.s32 %r1, %rd2, %rd3; st.global.u32 [%rd1], %r1;",
        static_cast<std::uint64_t>(-9), 4);
  Check("mul.hi.u32 %r1, %rd2, %rd3; st.global.u32 [%rd1], %r1;", 0xFFFFFFFF,
        0xFFFFFFFF);
  Check("mul.wide.s32 %rd4, %rd2, %rd3; st.global.u64 [%rd1], %rd4;",
        static_cast<std::uint32_t>(-3), 5);
  Check("mad.lo.u32 %r1, %rd2, %rd3, 17; st.global.u32 [%rd1], %r1;", 6, 9);
  Check("mad.wide.s32 %rd4, %rd2, %rd3, 1000; st.global.u64 [%rd1], %rd4;",
        static_cast<std::uint32_t>(-20), 3);
  Check("min.s32 %r1, %rd2, %rd3; max.s32 %r2, %rd2, %rd3; "
        "add.s32 %r3, %r1, %r2; st.global.u32 [%rd1], %r3;",
        static_cast<std::uint64_t>(-10), 3);
  Check("shr.s32 %r1, %rd2, 2; st.global.u32 [%rd1], %r1;",
        static_cast<std::uint32_t>(-16), 0);
  Check("shl.b32 %r1, %rd2, 35; st.global.u32 [%rd1], %r1;", 3, 0);
  Check("neg.s32 %r1, %rd2; abs.s32 %r2, %r1; xor.b32 %r3, %r1, %r2; "
        "not.b32 %r4, %r3; st.global.u32 [%rd1], %r4;",
        12345, 0);
}

TEST_F(SnippetParity, FloatArithmetic) {
  Check("mov.f32 %f1, 0f40490FDB; sqrt.f32 %f2, %f1; "
        "st.global.f32 [%rd1], %f2;");
  Check("mov.f32 %f1, 3.5; mov.f32 %f2, 0f3F800000; div.f32 %f3, %f1, %f2; "
        "min.f32 %f4, %f3, %f1; max.f32 %f5, %f4, %f2; "
        "st.global.f32 [%rd1], %f5;");
  Check("mov.f64 %fd1, 2.25; mov.f64 %fd2, 0.5; fma.rn.f64 %fd3, %fd1, %fd2, "
        "%fd1; neg.f64 %fd4, %fd3; abs.f64 %fd5, %fd4; "
        "st.global.f64 [%rd1], %fd5;");
  Check("mov.f32 %f1, 1.5; mov.f32 %f2, 0.0; div.f32 %f3, %f1, %f2; "
        "st.global.f32 [%rd1], %f3;");  // div-by-zero convention
}

TEST_F(SnippetParity, Conversions) {
  Check("cvt.f64.s32 %fd1, %rd2; st.global.f64 [%rd1], %fd1;",
        static_cast<std::uint64_t>(-42), 0);
  Check("mov.f64 %fd1, 7.75; cvt.rzi.s32.f64 %r1, %fd1; "
        "st.global.u32 [%rd1], %r1;");
  Check("mov.f32 %f1, 0f4479C000; cvt.f64.f32 %fd1, %f1; "
        "st.global.f64 [%rd1], %fd1;");
  Check("cvt.u16.u64 %r1, %rd2; st.global.u32 [%rd1], %r1;", 0x12345678, 0);
  Check("cvt.s64.s8 %rd4, %rd2; st.global.u64 [%rd1], %rd4;", 0x80, 0);
}

TEST_F(SnippetParity, PredicatesAndSelp) {
  Check("setp.lt.s32 %p1, %rd2, %rd3; selp.b32 %r1, 11, 22, %p1; "
        "st.global.u32 [%rd1], %r1;",
        static_cast<std::uint64_t>(-1), 1);
  Check("setp.hi.u32 %p1, %rd2, %rd3; @%p1 st.global.u32 [%rd1], 1; "
        "@!%p1 st.global.u32 [%rd1], 2;",
        10, 3);
  Check("setp.ls.u64 %p1, %rd2, %rd3; selp.b64 %rd4, %rd2, %rd3, %p1; "
        "st.global.u64 [%rd1], %rd4;",
        5, 5);
  Check("setp.ge.f32 %p1, %f1, %f2; selp.b32 %r1, 7, 8, %p1; "
        "st.global.u32 [%rd1], %r1;");
}

TEST_F(SnippetParity, VectorLoadsStores) {
  Check("mov.u32 %r1, 0x11; mov.u32 %r2, 0x22; mov.u32 %r3, 0x33; "
        "mov.u32 %r4, 0x44; st.global.v4.u32 [%rd1], {%r1, %r2, %r3, %r4}; "
        "ld.global.v2.u32 {%r5, %r6}, [%rd1+4]; add.u32 %r7, %r5, %r6; "
        "st.global.u32 [%rd1+16], %r7;");
}

TEST_F(SnippetParity, SharedMemoryViaIdentifier) {
  Check("mov.u64 %rd4, scratch; st.shared.u64 [%rd4+8], %rd2; "
        "ld.shared.u64 %rd5, [scratch+8]; st.global.u64 [%rd1], %rd5;",
        0xDEADBEEFCAFEull, 0);
}

TEST_F(SnippetParity, SpecialRegistersEveryRead) {
  Check("mov.u32 %r1, %tid.x; mov.u32 %r2, %ntid.x; mov.u32 %r3, %ctaid.x; "
        "mov.u32 %r4, %nctaid.x; mov.u32 %r5, %laneid; mov.u32 %r6, "
        "%warpsize; add.u32 %r7, %r1, %r2; add.u32 %r7, %r7, %r3; "
        "add.u32 %r7, %r7, %r4; add.u32 %r7, %r7, %r5; add.u32 %r7, %r7, "
        "%r6; st.global.u32 [%rd1], %r7;");
}

TEST_F(SnippetParity, UnimplementedOpcodeFaultsIdentically) {
  Check("atom.global.add.u32 %r1, [%rd1], 1; st.global.u32 [%rd1], %r1;");
}

TEST_F(SnippetParity, DeadUnimplementedOpcodeIsHarmless) {
  // The reference engine only faults when the instruction is stepped on;
  // the compiler must preserve that by deferring the error to execution.
  Check("bra SKIP; atom.global.add.u32 %r1, [%rd1], 1; SKIP: "
        "st.global.u32 [%rd1], 9;");
}

TEST_F(SnippetParity, TrapFaultsIdentically) {
  Check("setp.eq.u32 %p1, %rd2, 1; @%p1 trap; st.global.u32 [%rd1], 3;", 1,
        0);
}

// ---- randomized fuzz parity ------------------------------------------------

TEST(ProgramParity, RandomKernelFuzz) {
  // Deterministic by default; override with GRD_FUZZ_SEED=<n> to reproduce
  // a red run (the effective seed is printed with any failure below).
  const std::uint64_t seed = SeedFromEnv("GRD_FUZZ_SEED", 0xC0FFEE);
  SCOPED_TRACE("reproduce with GRD_FUZZ_SEED=" + std::to_string(seed));
  Rng rng(seed);
  for (int round = 0; round < 25; ++round) {
    ptx::Module module;
    module.kernels.push_back(ptx::MakeRandomKernel(
        rng, "rk", static_cast<int>(rng.NextInRange(1, 24)),
        static_cast<int>(rng.NextInRange(1, 12)), rng.NextBool(0.5)));
    MemInit init;
    for (int i = 0; i < 128; ++i)
      init.push_back({0x40000 + i * 4,
                      static_cast<std::uint32_t>(rng.NextInRange(0, 1u << 30))});
    LaunchParams params;
    params.grid = {static_cast<std::uint32_t>(rng.NextInRange(1, 3)), 1, 1};
    params.block = {32, 1, 1};
    params.args = {KernelArg::U64(0x40000), KernelArg::U32(0)};
    ExpectParity(module, "rk", params, init);
  }
}

// Elision-vs-full oracle: the CFG/loop guard-elision rewrite must be
// observationally identical to full per-access patching. Each round patches
// one random kernel both ways, proves each flavor self-consistent across all
// four engines, then diffs the two flavors against each other on memory,
// faults and access counts (executed-instruction counts are excluded —
// shrinking them is the whole point of elision). Rounds mix loop and
// straight-line shapes, all three bounds-check modes, and generous vs
// undersized partitions, so both the unfenced fast clone and the fully
// fenced slow clone run — including wrap-around (fencing modes) and traps
// (checking mode).
TEST(ProgramParity, GuardElisionFuzzParity) {
  using ptxpatcher::BoundsCheckMode;
  const std::uint64_t seed = SeedFromEnv("GRD_FUZZ_SEED", 0xE11DE);
  SCOPED_TRACE("reproduce with GRD_FUZZ_SEED=" + std::to_string(seed));
  Rng rng(seed);
  ptxpatcher::PatchStats elision_totals;
  for (int round = 0; round < 18; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const auto mode = static_cast<BoundsCheckMode>(round % 3);
    const bool loop_shape = rng.NextBool(0.6);
    const bool tight = rng.NextBool(0.4);  // undersized partition: slow path

    const std::uint64_t base = 0x40000;
    const std::uint64_t size = tight ? 64 : 4096;
    const auto grd = ptxpatcher::ComputeGrdArgs(mode, base, size);
    ptx::Module native;
    LaunchParams params;
    if (loop_shape) {
      native.kernels.push_back(ptx::MakeRandomLoopKernel(rng, "fz"));
      params.grid = {2, 1, 1};
      params.block = {1, 1, 1};
      params.args = {
          KernelArg::U64(base),
          KernelArg::U32(static_cast<std::uint32_t>(rng.NextInRange(1, 6))),
          KernelArg::U64(grd.arg0), KernelArg::U64(grd.arg1)};
    } else {
      native.kernels.push_back(ptx::MakeRandomKernel(
          rng, "fz", static_cast<int>(rng.NextInRange(1, 12)),
          static_cast<int>(rng.NextInRange(1, 8)), rng.NextBool(0.5)));
      params.grid = {static_cast<std::uint32_t>(rng.NextInRange(1, 2)), 1, 1};
      params.block = {32, 1, 1};
      params.args = {KernelArg::U64(base), KernelArg::U32(0),
                     KernelArg::U64(grd.arg0), KernelArg::U64(grd.arg1)};
    }

    ptxpatcher::PatchOptions options;
    options.mode = mode;
    auto full = ptxpatcher::PatchModule(native, options);
    ASSERT_TRUE(full.ok()) << full.status();
    options.elision_enabled = true;
    ptxpatcher::PatchStats stats;
    auto elided = ptxpatcher::PatchModule(native, options, &stats);
    ASSERT_TRUE(elided.ok()) << elided.status();
    elision_totals += stats;

    MemInit init;
    for (int i = 0; i < 128; ++i)
      init.push_back({base + i * 4, static_cast<std::uint32_t>(
                                        rng.NextInRange(0, 1u << 30))});

    // Each flavor must first agree with itself across all four engines.
    ExpectParity(*full, "fz", params, init);
    ExpectParity(*elided, "fz", params, init);

    // Cross-flavor diff on the compiled engine.
    const auto run = [](Interpreter& interp, const ptx::Module& m,
                        const std::string& k, const LaunchParams& p) {
      return interp.Execute(m, k, p);
    };
    const EngineRun a = RunEngine(*full, "fz", params, init, nullptr, run);
    const EngineRun b = RunEngine(*elided, "fz", params, init, nullptr, run);
    ASSERT_EQ(a.result.ok(), b.result.ok())
        << "full=" << (a.result.ok() ? "ok" : a.result.status().ToString())
        << " elided="
        << (b.result.ok() ? "ok" : b.result.status().ToString());
    if (a.result.ok()) {
      EXPECT_EQ(a.result->global_loads, b.result->global_loads);
      EXPECT_EQ(a.result->global_stores, b.result->global_stores);
      EXPECT_EQ(a.result->shared_accesses, b.result->shared_accesses);
      EXPECT_EQ(a.result->threads, b.result->threads);
      EXPECT_EQ(a.result->blocks, b.result->blocks);
    } else {
      EXPECT_EQ(a.result.status().code(), b.result.status().code());
      EXPECT_EQ(a.fault.status.code(), b.fault.status.code());
      EXPECT_EQ(a.fault.address, b.fault.address);
      EXPECT_EQ(a.fault.thread_linear_id, b.fault.thread_linear_id);
      EXPECT_EQ(a.fault.kernel, b.fault.kernel);
    }
    EXPECT_EQ(a.memory, b.memory)
        << "guard-elision flavors diverged in memory effects";
  }
  // The run must actually exercise the rewrite, or the parity proof above is
  // vacuous.
  EXPECT_GT(elision_totals.guards_elided, 0u);
  EXPECT_GT(elision_totals.loop_range_checks, 0u);
}

// ---- instruction budget / checkpoint / preemption --------------------------

TEST(ProgramParity, InstructionBudgetTripsIdentically) {
  const ptx::Module module = MakeSampleModule();
  LaunchParams params;
  params.grid = {2, 1, 1};
  params.block = {64, 1, 1};
  params.args = {KernelArg::U64(0x1000), KernelArg::U64(0x2000),
                 KernelArg::U64(0x3000), KernelArg::U32(128)};
  simgpu::GlobalMemory mem_a(kMemBytes), mem_b(kMemBytes);
  simgpu::AllowAllPolicy allow;
  Interpreter ref(&mem_a, &allow, 1), comp(&mem_b, &allow, 1);
  ref.set_max_instructions_per_thread(10);
  comp.set_max_instructions_per_thread(10);
  auto a = ref.ExecuteReference(module, "vecadd", params);
  auto b = comp.Execute(module, "vecadd", params);
  ASSERT_FALSE(a.ok());
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(a.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(a.status().code(), b.status().code());
  EXPECT_EQ(a.status().message(), b.status().message());

  // The budget is charged per component inside superinstructions too, so the
  // trip point (and its message) is identical at tiers 1 and 2.
  auto found = CompiledModule::Compile(module)->Find("vecadd");
  ASSERT_TRUE(found.ok()) << found.status();
  const CompiledKernel fused = FuseKernel(**found);
  ASSERT_GT(fused.super_count, 0u) << "vecadd should fuse";
  for (const ExecTier tier : {ExecTier::kFused, ExecTier::kThreaded}) {
    simgpu::GlobalMemory mem(kMemBytes);
    Interpreter tiered(&mem, &allow, 1);
    tiered.set_max_instructions_per_thread(10);
    auto t = tiered.Execute(fused, params, ExecControls{}, tier);
    ASSERT_FALSE(t.ok()) << "tier " << static_cast<int>(tier);
    EXPECT_EQ(a.status().code(), t.status().code())
        << "tier " << static_cast<int>(tier);
    EXPECT_EQ(a.status().message(), t.status().message())
        << "tier " << static_cast<int>(tier);
  }
}

TEST(ProgramParity, PreemptCheckpointResumeMatchesReference) {
  const ptx::Module module = MakeSampleModule();
  MemInit init;
  for (int i = 0; i < 512; ++i) init.push_back({0x10000 + i * 4, 5u * i});

  // All four engines: run with an always-on revocation flag, collecting one
  // block per segment, resuming until done; totals must match a plain run.
  enum class Engine { kReference, kCompiled, kTier1, kTier2 };
  for (const Engine engine : {Engine::kReference, Engine::kCompiled,
                              Engine::kTier1, Engine::kTier2}) {
    SCOPED_TRACE("engine=" + std::to_string(static_cast<int>(engine)));
    simgpu::GlobalMemory memory(kMemBytes);
    simgpu::AllowAllPolicy allow;
    for (const auto& [addr, value] : init)
      ASSERT_TRUE(memory.Store<std::uint32_t>(addr, value).ok());
    Interpreter interp(&memory, &allow, 1);
    LaunchParams params;
    params.grid = {4, 1, 1};
    params.block = {128, 1, 1};
    params.args = {KernelArg::U64(0x10000), KernelArg::U64(0x20000),
                   KernelArg::U32(512)};

    std::atomic<bool> revoke{true};
    KernelCheckpoint ckpt;
    ExecControls controls;
    controls.preempt_requested = &revoke;
    controls.preempt_check_interval = 100;
    controls.checkpoint = &ckpt;

    CompiledKernel fused;
    if (engine == Engine::kTier1 || engine == Engine::kTier2) {
      auto found = CompiledModule::Compile(module)->Find("copyk");
      ASSERT_TRUE(found.ok()) << found.status();
      fused = FuseKernel(**found);
    }

    int segments = 0;
    Result<ExecStats> run = ExecStats{};
    while (true) {
      switch (engine) {
        case Engine::kReference:
          run = interp.ExecuteReference(module, "copyk", params, controls);
          break;
        case Engine::kCompiled:
          run = interp.Execute(module, "copyk", params, controls);
          break;
        case Engine::kTier1:
          run = interp.Execute(fused, params, controls, ExecTier::kFused);
          break;
        case Engine::kTier2:
          run = interp.Execute(fused, params, controls, ExecTier::kThreaded);
          break;
      }
      if (run.ok()) break;
      ASSERT_TRUE(IsPreempted(run.status())) << run.status();
      ++segments;
      ASSERT_LT(segments, 16);
    }
    EXPECT_EQ(segments, 3) << "one block per segment over a 4-block grid";
    EXPECT_EQ(run->blocks, 4u);
    EXPECT_EQ(ckpt.blocks_done, 4u);
    for (int i = 0; i < 512; ++i) {
      auto v = memory.Load<std::uint32_t>(0x20000 + i * 4);
      ASSERT_TRUE(v.ok());
      ASSERT_EQ(*v, 5u * i) << " i=" << i;
    }
  }
}

// A kernel revoked while executing inside a fused loop body must still stop
// exactly at the block boundary: the checkpoint's completed-block count
// advances one block per segment and no block is replayed, at both tier 1
// and tier 2. The loop body fuses into a single superinstruction, so every
// preemption poll here happens between superinstruction dispatches.
TEST(ProgramParity, RevokedMidFusedBlockExactAccounting) {
  const std::string src = R"(
.version 7.7
.target sm_86
.address_size 64
.visible .entry loopk(.param .u64 p_out, .param .u32 p_n)
{
    .reg .pred %p<2>;
    .reg .b32 %r<8>;
    .reg .b64 %rd<8>;
    ld.param.u64 %rd1, [p_out];
    ld.param.u32 %r1, [p_n];
    mov.u32 %r2, %tid.x;
    mov.u32 %r3, %ctaid.x;
    mad.lo.u32 %r4, %r3, 32, %r2;
    mov.u32 %r5, 0;
    mov.u32 %r6, 0;
LOOP:
    add.u32 %r5, %r5, %r6;
    add.u32 %r6, %r6, 1;
    setp.lt.u32 %p1, %r6, %r1;
    @%p1 bra LOOP;
    mul.wide.u32 %rd2, %r4, 4;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r5;
    ret;
}
)";
  auto module = ptx::Parse(src);
  ASSERT_TRUE(module.ok()) << module.status();
  auto compiled = CompileKernel(module->kernels[0]);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  const CompiledKernel fused = FuseKernel(*compiled);
  ASSERT_GT(fused.super_count, 0u) << "the loop body must fuse";

  constexpr std::uint32_t kIters = 200;
  const std::uint32_t expect = kIters * (kIters - 1) / 2;  // sum 0..n-1
  LaunchParams params;
  params.grid = {4, 1, 1};
  params.block = {32, 1, 1};
  params.args = {KernelArg::U64(0x8000), KernelArg::U32(kIters)};

  // Tier-0 baseline for the exact instruction total.
  std::uint64_t baseline_instructions = 0;
  {
    simgpu::GlobalMemory memory(kMemBytes);
    simgpu::AllowAllPolicy allow;
    Interpreter interp(&memory, &allow, 1);
    auto run = interp.Execute(*compiled, params);
    ASSERT_TRUE(run.ok()) << run.status();
    baseline_instructions = run->instructions;
  }

  for (const ExecTier tier : {ExecTier::kFused, ExecTier::kThreaded}) {
    SCOPED_TRACE("tier=" + std::to_string(static_cast<int>(tier)));
    simgpu::GlobalMemory memory(kMemBytes);
    simgpu::AllowAllPolicy allow;
    Interpreter interp(&memory, &allow, 1);

    std::atomic<bool> revoke{true};
    KernelCheckpoint ckpt;
    ExecControls controls;
    controls.preempt_requested = &revoke;
    // Poll lands mid-loop — i.e. between fused-block dispatches — every time.
    controls.preempt_check_interval = 37;
    controls.checkpoint = &ckpt;

    int segments = 0;
    Result<ExecStats> run = ExecStats{};
    while (true) {
      run = interp.Execute(fused, params, controls, tier);
      if (run.ok()) break;
      ASSERT_TRUE(IsPreempted(run.status())) << run.status();
      ++segments;
      // One block per segment, never replayed: blocks_done is exact.
      EXPECT_EQ(ckpt.blocks_done, static_cast<std::uint64_t>(segments));
      ASSERT_LT(segments, 16);
    }
    EXPECT_EQ(segments, 3);
    EXPECT_EQ(run->blocks, 4u);
    EXPECT_EQ(ckpt.blocks_done, 4u);
    EXPECT_EQ(run->instructions, baseline_instructions)
        << "per-component accounting must match tier 0 across preemptions";
    for (std::uint32_t i = 0; i < 128; ++i) {
      auto v = memory.Load<std::uint32_t>(0x8000 + i * 4);
      ASSERT_TRUE(v.ok());
      ASSERT_EQ(*v, expect) << " i=" << i;
    }
  }
}

// ---- the no-string-work regression guard -----------------------------------

TEST(ProgramHotPath, CompiledExecutionPerformsNoStringLookups) {
  const ptx::Module module = MakeSampleModule();
  simgpu::GlobalMemory memory(kMemBytes);
  simgpu::AllowAllPolicy allow;
  Interpreter interp(&memory, &allow, 1);
  LaunchParams params;
  params.grid = {2, 1, 1};
  params.block = {128, 1, 1};
  params.args = {KernelArg::U64(0x10000), KernelArg::U64(0x20000),
                 KernelArg::U64(0x30000), KernelArg::U32(200)};

  // Compile outside the measured window (compilation itself may hash).
  const ptx::Kernel* kernel = module.FindKernel("vecadd");
  ASSERT_NE(kernel, nullptr);
  auto compiled = CompileKernel(*kernel);
  ASSERT_TRUE(compiled.ok());

  const std::uint64_t before = exec_debug::HotPathStringLookups();
  auto run = interp.Execute(*compiled, params);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(exec_debug::HotPathStringLookups() - before, 0u)
      << "a std::string lookup crept back onto the compiled step path";

  // Sanity: the counter is live — the reference engine must bump it heavily
  // (several lookups per executed instruction).
  auto ref = interp.ExecuteReference(module, "vecadd", params);
  ASSERT_TRUE(ref.ok());
  EXPECT_GT(exec_debug::HotPathStringLookups() - before, ref->instructions);
}

// Tiers 1 and 2 run the same pre-decoded program — fusion must not
// reintroduce any per-step string work.
TEST(ProgramHotPath, TieredExecutionPerformsNoStringLookups) {
  const ptx::Module module = MakeSampleModule();
  const ptx::Kernel* kernel = module.FindKernel("vecadd");
  ASSERT_NE(kernel, nullptr);
  auto compiled = CompileKernel(*kernel);
  ASSERT_TRUE(compiled.ok());
  const CompiledKernel fused = FuseKernel(*compiled);

  LaunchParams params;
  params.grid = {2, 1, 1};
  params.block = {128, 1, 1};
  params.args = {KernelArg::U64(0x10000), KernelArg::U64(0x20000),
                 KernelArg::U64(0x30000), KernelArg::U32(200)};
  for (const ExecTier tier : {ExecTier::kFused, ExecTier::kThreaded}) {
    simgpu::GlobalMemory memory(kMemBytes);
    simgpu::AllowAllPolicy allow;
    Interpreter interp(&memory, &allow, 1);
    const std::uint64_t before = exec_debug::HotPathStringLookups();
    auto run = interp.Execute(fused, params, ExecControls{}, tier);
    ASSERT_TRUE(run.ok()) << run.status();
    EXPECT_EQ(exec_debug::HotPathStringLookups() - before, 0u)
        << "tier " << static_cast<int>(tier)
        << " performs string lookups on the step path";
  }
}

// The special-register scan is a compile-time operand kind now: reading
// %tid/%ctaid etc. every step must not touch the counter either.
TEST(ProgramHotPath, SpecialRegisterReadsAreStringFree) {
  const std::string src = R"(
.version 7.7
.target sm_86
.address_size 64
.visible .entry t(.param .u64 p_out)
{
    .reg .b32 %r<8>;
    .reg .b64 %rd<4>;
    ld.param.u64 %rd1, [p_out];
    mov.u32 %r1, %tid.x;
    mov.u32 %r2, %ctaid.x;
    mad.lo.u32 %r3, %r2, 64, %r1;
    mul.wide.u32 %rd2, %r3, 4;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r3;
    ret;
}
)";
  auto module = ptx::Parse(src);
  ASSERT_TRUE(module.ok()) << module.status();
  auto compiled = CompileKernel(module->kernels[0]);
  ASSERT_TRUE(compiled.ok()) << compiled.status();

  simgpu::GlobalMemory memory(1 << 20);
  simgpu::AllowAllPolicy allow;
  Interpreter interp(&memory, &allow, 1);
  LaunchParams params;
  params.grid = {4, 1, 1};
  params.block = {64, 1, 1};
  params.args = {KernelArg::U64(0x1000)};

  const std::uint64_t before = exec_debug::HotPathStringLookups();
  auto run = interp.Execute(*compiled, params);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(exec_debug::HotPathStringLookups() - before, 0u);
  for (std::uint32_t i = 0; i < 256; ++i) {
    auto v = memory.Load<std::uint32_t>(0x1000 + i * 4);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, i);
  }
}

// ---- compile-time structure ------------------------------------------------

TEST(CompileKernel, DuplicateLabelFailsLikePrepare) {
  const std::string src = R"(
.version 7.7
.target sm_86
.address_size 64
.visible .entry t()
{
L: ret;
L: ret;
}
)";
  auto module = ptx::Parse(src);
  ASSERT_TRUE(module.ok()) << module.status();
  auto compiled = CompileKernel(module->kernels[0]);
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kInvalidArgument);

  // CompiledModule defers the error to Find, matching launch-time surfacing.
  auto cm = CompiledModule::Compile(*module);
  auto find = cm->Find("t");
  ASSERT_FALSE(find.ok());
  EXPECT_EQ(find.status().code(), StatusCode::kInvalidArgument);
}

TEST(CompileKernel, DenseLayoutBakesStructure) {
  const ptx::Module module = MakeSampleModule();
  const ptx::Kernel* reduce = module.FindKernel("reduce");
  ASSERT_NE(reduce, nullptr);
  auto compiled = CompileKernel(*reduce);
  ASSERT_TRUE(compiled.ok());
  EXPECT_GT(compiled->reg_slots, 0);
  EXPECT_GT(compiled->shared_size, 0u);  // .shared decl baked into layout
  EXPECT_FALSE(compiled->code.empty());

  const ptx::Kernel* brx = module.FindKernel("brx_kernel");
  ASSERT_NE(brx, nullptr);
  auto brx_compiled = CompileKernel(*brx);
  ASSERT_TRUE(brx_compiled.ok());
  ASSERT_EQ(brx_compiled->branch_tables.size(), 1u);
  EXPECT_EQ(brx_compiled->branch_tables[0].pcs.size(), 3u);
  for (const std::uint32_t pc : brx_compiled->branch_tables[0].pcs) {
    ASSERT_NE(pc, BranchTable::kUnresolved);
    EXPECT_LT(pc, brx_compiled->code.size());
  }
}

// ---- fusion structure -------------------------------------------------------

TEST(FuseKernel, StructuralInvariants) {
  const ptx::Module module = MakeSampleModule();
  for (const char* name : {"vecadd", "copyk", "reduce", "brx_kernel"}) {
    SCOPED_TRACE(name);
    const ptx::Kernel* kernel = module.FindKernel(name);
    ASSERT_NE(kernel, nullptr);
    auto compiled = CompileKernel(*kernel);
    ASSERT_TRUE(compiled.ok()) << compiled.status();
    const CompiledKernel fused = FuseKernel(*compiled);

    // Fusion never changes program length, branch tables or register layout.
    ASSERT_EQ(fused.code.size(), compiled->code.size());
    EXPECT_EQ(fused.branch_tables.size(), compiled->branch_tables.size());
    EXPECT_EQ(fused.reg_slots, compiled->reg_slots);
    EXPECT_EQ(fused.fused_code.size(), fused.fused_instructions);
    EXPECT_EQ(fused.fused_micro.size(), fused.fused_code.size());

    // Collect branch targets exactly as the fuser does.
    const std::size_t n = fused.code.size();
    std::vector<bool> is_target(n + 1, false);
    for (const auto& inst : fused.code)
      if (inst.op == COp::kBra && inst.target <= n) is_target[inst.target] = true;
    for (const auto& table : fused.branch_tables)
      for (const std::uint32_t pc : table.pcs)
        if (pc != BranchTable::kUnresolved && pc <= n) is_target[pc] = true;

    std::uint32_t supers = 0, covered = 0;
    for (std::size_t pc = 0; pc < n; ++pc) {
      if (fused.code[pc].op != COp::kFused) {
        // Non-fused slots are untouched.
        EXPECT_EQ(static_cast<int>(fused.code[pc].op),
                  static_cast<int>(compiled->code[pc].op))
            << "pc=" << pc;
        continue;
      }
      ++supers;
      const unsigned count = fused.code[pc].sub;
      const std::uint32_t base = fused.code[pc].target;
      covered += count;
      ASSERT_GE(count, 2u) << "pc=" << pc;
      ASSERT_LE(count, kMaxFusedRun) << "pc=" << pc;
      ASSERT_LE(base + count, fused.fused_code.size()) << "pc=" << pc;
      ASSERT_LE(pc + count, n) << "pc=" << pc;
      for (unsigned j = 0; j < count; ++j) {
        // Components are verbatim copies of the originals, which stay in
        // place behind the super (a branch into the middle executes them).
        EXPECT_EQ(static_cast<int>(fused.fused_code[base + j].op),
                  static_cast<int>(compiled->code[pc + j].op))
            << "pc=" << pc << " j=" << j;
        if (j > 0) {
          EXPECT_EQ(static_cast<int>(fused.code[pc + j].op),
                    static_cast<int>(compiled->code[pc + j].op))
              << "pc=" << pc << " j=" << j;
          // A run never SPANS a branch target — it may only begin at one.
          EXPECT_FALSE(is_target[pc + j])
              << "fused run at pc=" << pc << " spans branch target " << pc + j;
        }
      }
    }
    EXPECT_EQ(supers, fused.super_count);
    EXPECT_EQ(covered, fused.fused_instructions);

    // Re-fusing an already-fused program is the identity.
    const CompiledKernel refused = FuseKernel(fused);
    EXPECT_EQ(refused.super_count, fused.super_count);
    EXPECT_EQ(refused.fused_code.size(), fused.fused_code.size());
  }
}

TEST(FuseKernel, HotLoopBodyFusesIntoOneSuperinstruction) {
  // The canonical loop head: add+add+setp+@bra collapses into a single
  // superinstruction whose terminal branch re-enters it — one dispatch per
  // loop iteration.
  const std::string src = R"(
.version 7.7
.target sm_86
.address_size 64
.visible .entry t(.param .u32 p_n)
{
    .reg .pred %p<2>;
    .reg .b32 %r<4>;
    ld.param.u32 %r1, [p_n];
    mov.u32 %r2, 0;
LOOP:
    add.u32 %r2, %r2, 1;
    setp.lt.u32 %p1, %r2, %r1;
    @%p1 bra LOOP;
    ret;
}
)";
  auto module = ptx::Parse(src);
  ASSERT_TRUE(module.ok()) << module.status();
  auto compiled = CompileKernel(module->kernels[0]);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  const CompiledKernel fused = FuseKernel(*compiled);
  ASSERT_GE(fused.super_count, 1u);
  // The loop-body super begins at the branch target and covers the whole
  // add / setp / @bra tail, all lowered to non-generic micro ops.
  bool found_loop = false;
  for (std::size_t pc = 0; pc < fused.code.size(); ++pc) {
    if (fused.code[pc].op != COp::kFused) continue;
    const std::uint32_t base = fused.code[pc].target;
    const unsigned count = fused.code[pc].sub;
    if (fused.fused_micro[base + count - 1].op == MicroOp::kBra &&
        fused.fused_micro[base + count - 1].target == pc) {
      found_loop = true;
      EXPECT_EQ(count, 3u) << "add + setp + @bra";
      for (unsigned j = 0; j < count; ++j)
        EXPECT_NE(static_cast<int>(fused.fused_micro[base + j].op),
                  static_cast<int>(MicroOp::kGeneric))
            << "hot integer component " << j << " fell back to generic";
    }
  }
  EXPECT_TRUE(found_loop) << "no superinstruction closes the loop";
}

}  // namespace
}  // namespace grd::ptxexec
