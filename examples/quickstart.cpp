// Quickstart: two tenants sharing a GPU through Guardian.
//
// Demonstrates the whole public API surface end to end:
//  1. start a grdManager owning the (simulated) GPU;
//  2. connect two clients (grdLib) declaring their memory requirements;
//  3. register a PTX module — the manager sandboxes it with the PTX-patcher;
//  4. run vecadd through the full interception path and read results back;
//  5. launch an out-of-bounds attack from tenant A against tenant B and
//     observe that the store wraps around inside A's own partition.
#include <cstdio>
#include <vector>

#include "common/strings.hpp"
#include "guardian/grdlib.hpp"
#include "guardian/manager.hpp"
#include "guardian/transport.hpp"
#include "ptx/generator.hpp"
#include "ptx/printer.hpp"
#include "simgpu/device_spec.hpp"

using namespace grd;
using guardian::GrdLib;
using ptxexec::KernelArg;
using simcuda::DevicePtr;

int main() {
  // 1. The trusted manager is the only entity with GPU access (§4.2).
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  guardian::GrdManager manager(&gpu, guardian::ManagerOptions{});
  guardian::LoopbackTransport transport(&manager);

  // 2. Tenants declare memory requirements at connect time (§4.2.1).
  auto alice = GrdLib::Connect(&transport, /*memory_requirement=*/16 << 20);
  auto bob = GrdLib::Connect(&transport, /*memory_requirement=*/16 << 20);
  if (!alice.ok() || !bob.ok()) {
    std::fprintf(stderr, "connect failed\n");
    return 1;
  }
  std::printf("alice: partition [%s, +%s)\n",
              ToHex(alice->partition_base()).c_str(),
              HumanBytes(alice->partition_size()).c_str());
  std::printf("bob  : partition [%s, +%s)\n\n",
              ToHex(bob->partition_base()).c_str(),
              HumanBytes(bob->partition_size()).c_str());

  // 3. Register the PTX module; the manager patches every kernel offline.
  const std::string ptx_text = ptx::Print(ptx::MakeSampleModule());
  auto module = alice->cuModuleLoadData(ptx_text);
  auto vecadd = alice->cuModuleGetFunction(*module, "vecadd");
  auto oob_writer = alice->cuModuleGetFunction(*module, "oob_writer");

  // 4. vecadd through the full interception path.
  const int n = 64;
  DevicePtr a = 0, b = 0, c = 0;
  (void)alice->cudaMalloc(&a, n * 4);
  (void)alice->cudaMalloc(&b, n * 4);
  (void)alice->cudaMalloc(&c, n * 4);
  std::vector<float> xs(n, 1.5f), ys(n, 2.5f), out(n);
  (void)alice->cudaMemcpyH2D(a, xs.data(), n * 4);
  (void)alice->cudaMemcpyH2D(b, ys.data(), n * 4);
  simcuda::LaunchConfig config;
  config.block = {64, 1, 1};
  const Status launch = alice->cudaLaunchKernel(
      *vecadd, config,
      {KernelArg::U64(a), KernelArg::U64(b), KernelArg::U64(c),
       KernelArg::U32(n)});
  (void)alice->cudaMemcpy(out.data(), c, n * 4,
                          simcuda::MemcpyKind::kDeviceToHost);
  std::printf("vecadd: %s, c[0] = %.1f (expected 4.0)\n\n",
              launch.ToString().c_str(), out[0]);

  // 5. The attack: alice stores 666 at bob's buffer address.
  DevicePtr bobs = 0;
  (void)bob->cudaMalloc(&bobs, 64);
  const std::uint32_t secret = 777;
  (void)bob->cudaMemcpyH2D(bobs, &secret, 4);

  const Status attack = alice->cudaLaunchKernel(
      *oob_writer, simcuda::LaunchConfig{},
      {KernelArg::U64(a), KernelArg::U64(bobs - a), KernelArg::U32(666)});
  std::printf("OOB attack launch: %s (fencing wraps, it does not fault)\n",
              attack.ToString().c_str());

  std::uint32_t bob_value = 0;
  (void)bob->cudaMemcpy(&bob_value, bobs, 4,
                        simcuda::MemcpyKind::kDeviceToHost);
  std::printf("bob's secret after attack: %u (expected 777 - intact)\n",
              bob_value);

  // The wrapped store landed inside alice's own partition (Figure 4).
  const std::uint64_t wrapped =
      FenceAddress(bobs, alice->partition_base(),
                   PartitionMask(alice->partition_size()));
  std::uint32_t wrapped_value = 0;
  (void)alice->cudaMemcpy(&wrapped_value, wrapped, 4,
                          simcuda::MemcpyKind::kDeviceToHost);
  std::printf("wrap-around landed at %s inside alice's partition: %u\n",
              ToHex(wrapped).c_str(), wrapped_value);

  return bob_value == 777 && wrapped_value == 666 ? 0 : 1;
}
