// The offline phase as a command-line tool (paper Figure 3, dashed path):
// extract PTX (here: read from a file or stdin, standing in for cuobjdump),
// sandbox every kernel, and emit the patched PTX plus a patch report.
//
// Usage:
//   offline_patcher [--mode=bitwise|modulo|checking] [--skip-safe]
//                   [--validate-only] [input.ptx] > sandboxed.ptx
// With no input file, a demo module (the paper's Listing 1 kernel and
// friends) is used and the before/after PTX is shown.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "ptx/generator.hpp"
#include "ptx/parser.hpp"
#include "ptx/printer.hpp"
#include "ptx/validator.hpp"
#include "ptxpatcher/analyzer.hpp"
#include "ptxpatcher/patcher.hpp"

using namespace grd;

int main(int argc, char** argv) {
  ptxpatcher::PatchOptions options;
  bool validate_only = false;
  std::string input_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--mode=bitwise") {
      options.mode = ptxpatcher::BoundsCheckMode::kFencingBitwise;
    } else if (arg == "--mode=modulo") {
      options.mode = ptxpatcher::BoundsCheckMode::kFencingModulo;
    } else if (arg == "--mode=checking") {
      options.mode = ptxpatcher::BoundsCheckMode::kChecking;
    } else if (arg == "--skip-safe") {
      options.skip_statically_safe = true;
    } else if (arg == "--validate-only") {
      validate_only = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      input_path = arg;
    }
  }

  // Acquire PTX text.
  std::string ptx_text;
  bool demo = false;
  if (!input_path.empty()) {
    std::ifstream in(input_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", input_path.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    ptx_text = buffer.str();
  } else {
    ptx_text = ptx::Print(ptx::MakeSampleModule());
    demo = true;
  }

  auto module = ptx::Parse(ptx_text);
  if (!module.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 module.status().ToString().c_str());
    return 1;
  }
  const auto report = ptx::Validate(*module);
  if (!report.ok()) {
    for (const auto& issue : report.issues) {
      std::fprintf(stderr, "invalid PTX [%s]: %s\n", issue.kernel.c_str(),
                   issue.message.c_str());
    }
    return 1;
  }
  if (validate_only) {
    std::fprintf(stderr, "OK: %zu kernel(s) validated\n",
                 module->kernels.size());
    return 0;
  }

  ptxpatcher::PatchStats stats;
  auto patched = ptxpatcher::PatchModule(*module, options, &stats);
  if (!patched.ok()) {
    std::fprintf(stderr, "patch error: %s\n",
                 patched.status().ToString().c_str());
    return 1;
  }

  if (demo) {
    std::fprintf(stderr, "(demo mode: using the built-in sample module; "
                         "pass a .ptx file to patch your own)\n\n");
    std::fprintf(stderr, "--- original Listing-1 kernel ---\n%s\n",
                 ptx::Print(module->kernels[0]).c_str());
    std::fprintf(stderr, "--- sandboxed (%s) ---\n%s\n",
                 ptxpatcher::BoundsCheckModeName(options.mode),
                 ptx::Print(patched->kernels[0]).c_str());
  }
  std::fputs(ptx::Print(*patched).c_str(), stdout);

  std::fprintf(stderr,
               "sandboxed %zu kernel(s): %zu loads + %zu stores fenced, "
               "%zu base+offset accesses, %zu indirect branches clamped, "
               "%zu instructions inserted, %zu statically-safe skipped\n",
               patched->kernels.size(), stats.patched_loads,
               stats.patched_stores, stats.patched_offset_accesses,
               stats.patched_indirect_branches, stats.inserted_instructions,
               stats.skipped_safe_kernels);
  return 0;
}
