// Scenario: the §2.2 fault-isolation experiment.
//
// The same two-tenant OOB attack is run under three sharing mechanisms:
//   1. a bare shared context (GPU streams, Figure 1)  -> silent corruption;
//   2. NVIDIA MPS                                      -> everyone dies;
//   3. Guardian (bitwise fencing)                      -> victim unharmed,
//      attacker confined to its own partition.
#include <cstdio>

#include "baselines/mps.hpp"
#include "guardian/grdlib.hpp"
#include "guardian/manager.hpp"
#include "guardian/transport.hpp"
#include "ptx/generator.hpp"
#include "ptx/parser.hpp"
#include "ptx/printer.hpp"
#include "ptxexec/interpreter.hpp"
#include "simgpu/device_spec.hpp"

using namespace grd;
using ptxexec::KernelArg;
using simcuda::DevicePtr;

namespace {

const std::string kPtx = ptx::Print(ptx::MakeSampleModule());

void SharedContextScenario() {
  std::printf("--- 1. bare shared context (spatial sharing, no checks) ---\n");
  simgpu::GlobalMemory memory(64ull << 20);
  simgpu::AllowAllPolicy allow_all;  // one context, one address space
  ptxexec::Interpreter interp(&memory, &allow_all, /*client=*/1);
  auto module = ptx::Parse(kPtx);

  const std::uint64_t attacker_buf = 1ull << 20;
  const std::uint64_t victim_buf = 8ull << 20;
  (void)memory.Store<std::uint32_t>(victim_buf, 777);

  ptxexec::LaunchParams params;
  params.args = {KernelArg::U64(attacker_buf),
                 KernelArg::U64(victim_buf - attacker_buf),
                 KernelArg::U32(666)};
  (void)interp.Execute(*module, "oob_writer", params);
  const auto v = memory.Load<std::uint32_t>(victim_buf);
  std::printf("victim data after attack: %u  -> %s\n\n", *v,
              *v == 777 ? "intact" : "SILENTLY CORRUPTED");
}

void MpsScenario() {
  std::printf("--- 2. NVIDIA MPS ---\n");
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  baselines::MpsServer server(&gpu);
  auto attacker = server.CreateClient();
  auto victim = server.CreateClient();

  DevicePtr victim_buf = 0;
  (void)victim->cudaMalloc(&victim_buf, 4096);
  DevicePtr mine = 0;
  (void)attacker->cudaMalloc(&mine, 4096);
  auto module = attacker->cuModuleLoadData(kPtx);
  auto fn = attacker->cuModuleGetFunction(*module, "oob_writer");

  const Status s = attacker->cudaLaunchKernel(
      *fn, simcuda::LaunchConfig{},
      {KernelArg::U64(mine), KernelArg::U64(victim_buf - mine),
       KernelArg::U32(666)});
  std::printf("attack launch: %s\n", s.ToString().c_str());
  DevicePtr probe = 0;
  const Status victim_alive = victim->cudaMalloc(&probe, 64);
  std::printf("innocent victim's next call: %s  -> %s\n\n",
              victim_alive.ToString().c_str(),
              victim_alive.ok() ? "survived" : "KILLED BY NEIGHBOUR'S FAULT");
}

void GuardianScenario() {
  std::printf("--- 3. Guardian (address fencing, bitwise) ---\n");
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  guardian::GrdManager manager(&gpu, guardian::ManagerOptions{});
  guardian::LoopbackTransport transport(&manager);
  auto attacker = guardian::GrdLib::Connect(&transport, 1 << 20);
  auto victim = guardian::GrdLib::Connect(&transport, 1 << 20);

  DevicePtr victim_buf = 0;
  (void)victim->cudaMalloc(&victim_buf, 4096);
  const std::uint32_t secret = 777;
  (void)victim->cudaMemcpyH2D(victim_buf, &secret, 4);
  DevicePtr mine = 0;
  (void)attacker->cudaMalloc(&mine, 4096);
  auto module = attacker->cuModuleLoadData(kPtx);
  auto fn = attacker->cuModuleGetFunction(*module, "oob_writer");

  const Status s = attacker->cudaLaunchKernel(
      *fn, simcuda::LaunchConfig{},
      {KernelArg::U64(mine), KernelArg::U64(victim_buf - mine),
       KernelArg::U32(666)});
  std::printf("attack launch: %s\n", s.ToString().c_str());

  std::uint32_t check = 0;
  (void)victim->cudaMemcpy(&check, victim_buf, 4,
                           simcuda::MemcpyKind::kDeviceToHost);
  DevicePtr probe = 0;
  const Status victim_alive = victim->cudaMalloc(&probe, 64);
  std::printf("victim data: %u, victim's next call: %s  -> %s\n", check,
              victim_alive.ToString().c_str(),
              check == 777 && victim_alive.ok() ? "fully isolated"
                                                : "ISOLATION FAILED");
}

}  // namespace

int main() {
  std::printf("Fault isolation under three sharing mechanisms "
              "(paper §2.2, Table 1)\n\n");
  SharedContextScenario();
  MpsScenario();
  GuardianScenario();
  return 0;
}
