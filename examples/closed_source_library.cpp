// Scenario: transparently protecting a closed-source accelerated library.
//
// The paper's key transparency claim (§4.1): Guardian intercepts only the
// CUDA runtime/driver surface, so the *implicit* calls issued inside
// cuBLAS/cuFFT/cuSPARSE-style libraries are protected without any library
// changes. Here the same simulated library code runs first on the native
// runtime, then on grdLib — byte-identical results, and a trace of every
// implicit call Guardian intercepted.
#include <cstdio>

#include "guardian/grdlib.hpp"
#include "guardian/manager.hpp"
#include "guardian/transport.hpp"
#include "simcuda/native.hpp"
#include "simcuda/tracing.hpp"
#include "simgpu/device_spec.hpp"
#include "simlibs/cublas.hpp"
#include "simlibs/cusparse.hpp"

using namespace grd;
using simcuda::DevicePtr;

namespace {

// The "application": numerics through cuBLAS + cuSPARSE. It only sees the
// abstract CUDA API — it cannot tell whether Guardian is underneath.
Result<double> RunNumerics(simcuda::CudaApi& api) {
  GRD_ASSIGN_OR_RETURN(auto blas, simlibs::Cublas::Create(api));
  GRD_ASSIGN_OR_RETURN(auto sparse, simlibs::Cusparse::Create(api));

  const double xs[6] = {0.5, -9.25, 3.0, 7.5, -2.0, 1.0};
  const double ys[6] = {1, 2, 3, 4, 5, 6};
  DevicePtr x = 0, y = 0;
  GRD_RETURN_IF_ERROR(api.cudaMalloc(&x, sizeof(xs)));
  GRD_RETURN_IF_ERROR(api.cudaMalloc(&y, sizeof(ys)));
  GRD_RETURN_IF_ERROR(api.cudaMemcpyH2D(x, xs, sizeof(xs)));
  GRD_RETURN_IF_ERROR(api.cudaMemcpyH2D(y, ys, sizeof(ys)));

  GRD_ASSIGN_OR_RETURN(std::uint32_t amax, blas.Idamax(x, 6));
  GRD_ASSIGN_OR_RETURN(double dot, blas.Ddot(x, y, 6));

  const float fx[4] = {1, 2, 3, 4};
  const float fy[4] = {10, 20, 30, 40};
  DevicePtr sx = 0, sy = 0;
  GRD_RETURN_IF_ERROR(api.cudaMalloc(&sx, sizeof(fx)));
  GRD_RETURN_IF_ERROR(api.cudaMalloc(&sy, sizeof(fy)));
  GRD_RETURN_IF_ERROR(api.cudaMemcpyH2D(sx, fx, sizeof(fx)));
  GRD_RETURN_IF_ERROR(api.cudaMemcpyH2D(sy, fy, sizeof(fy)));
  GRD_RETURN_IF_ERROR(sparse.Axpby(2.0f, sx, 1.0f, sy, 4));
  float result[4] = {};
  GRD_RETURN_IF_ERROR(api.cudaMemcpy(result, sy, sizeof(result),
                                     simcuda::MemcpyKind::kDeviceToHost));

  std::printf("  idamax = %u (expect 2), ddot = %.2f, axpby[3] = %.1f\n",
              amax, dot, result[3]);
  return dot;
}

}  // namespace

int main() {
  std::printf("Closed-source library on native CUDA vs on Guardian\n\n");

  std::printf("native runtime:\n");
  simcuda::Gpu native_gpu(simgpu::QuadroRtxA4000());
  simcuda::NativeCuda native(&native_gpu);
  auto native_result = RunNumerics(native);

  std::printf("\nGuardian (same library code, zero changes):\n");
  simcuda::Gpu guarded_gpu(simgpu::QuadroRtxA4000());
  guardian::GrdManager manager(&guarded_gpu, guardian::ManagerOptions{});
  guardian::LoopbackTransport transport(&manager);
  auto lib = guardian::GrdLib::Connect(&transport, 64 << 20);
  if (!lib.ok()) return 1;
  // Trace what the library does against the interception surface.
  simcuda::TracingCudaApi traced(&*lib);
  auto guarded_result = RunNumerics(traced);

  std::printf("\nimplicit CUDA calls intercepted by grdLib:\n");
  for (const auto& [name, count] : traced.counts()) {
    std::printf("  %-26s x%llu\n", name.c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("\nsandboxed launches executed by grdManager: %llu\n",
              static_cast<unsigned long long>(
                  manager.stats().sandboxed_launches));

  const bool match = native_result.ok() && guarded_result.ok() &&
                     *native_result == *guarded_result;
  std::printf("results identical under both runtimes: %s\n",
              match ? "yes" : "NO");
  return match ? 0 : 1;
}
