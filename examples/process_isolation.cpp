// Scenario: the paper's actual deployment shape at multi-worker scale —
// client applications and a POOL OF FORKED grdManager worker processes in
// different address spaces, meeting only in a MAP_SHARED region that holds
// the per-application rings and the shared session registry
// (guardian/process_server.hpp).
//
// Three phases:
//  1. Fault containment (the paper's §4 demo): an honest tenant and an
//     attacker launching a blind cross-tenant OOB store run against two
//     different workers; the store is fenced into the attacker's own
//     partition and nobody else is harmed.
//  2. Crash containment: a third tenant parks its worker inside an
//     infinite kernel; we SIGKILL that worker mid-kernel. The tenant's
//     blocked call returns a clean kUnavailable (synthetic response from
//     the supervisor), its session is failed in the shared registry, the
//     other workers keep serving throughout, and the parent respawns a
//     replacement into the same slot.
//  3. Recovery: the same tenant reconnects over the same channel — served
//     by the respawned worker — and completes a full workload.
//
// The parent never touches the GPU: it supervises worker pids and reads
// the shared registry/stats, which is all the control plane the paper's
// manager-side deployment needs.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <thread>

#include "guardian/grdlib.hpp"
#include "guardian/process_server.hpp"
#include "guardian/shared_state.hpp"
#include "guardian/transport.hpp"
#include "obs/trace.hpp"
#include "ptx/generator.hpp"
#include "ptx/printer.hpp"

using namespace grd;
using guardian::GrdLib;
using ptxexec::KernelArg;
using simcuda::DevicePtr;

namespace {

// Block 3 spins forever; launched synchronously it parks the serving
// worker mid-kernel — the window phase 2 kills into.
constexpr char kSpinTailPtx[] = R"(
.version 7.7
.target sm_86
.address_size 64
.visible .entry spintail(
    .param .u64 dst
)
{
    .reg .b32 %r<4>;
    .reg .b64 %rd<4>;
    .reg .pred %p1;
    mov.u32 %r1, %ctaid.x;
    setp.lt.u32 %p1, %r1, 3;
    @%p1 bra STORE;
LOOP:
    add.s32 %r2, %r2, 1;
    bra LOOP;
STORE:
    ld.param.u64 %rd1, [dst];
    cvta.to.global.u64 %rd2, %rd1;
    mul.wide.u32 %rd3, %r1, 4;
    add.s64 %rd2, %rd2, %rd3;
    st.global.u32 [%rd2], %r1;
    ret;
}
)";

int RunHonestWorkload(GrdLib& lib) {
  auto module = lib.cuModuleLoadData(ptx::Print(ptx::MakeSampleModule()));
  if (!module.ok()) return 1;
  auto fn = lib.cuModuleGetFunction(*module, "kernel");
  if (!fn.ok()) return 2;
  DevicePtr buf = 0;
  if (!lib.cudaMalloc(&buf, 4096).ok()) return 3;
  simcuda::LaunchConfig config;
  config.block = {16, 1, 1};
  if (!lib.cudaLaunchKernel(*fn, config,
                            {KernelArg::U64(buf), KernelArg::U32(3)})
           .ok())
    return 4;
  std::uint32_t value = 0;
  if (!lib.cudaMemcpy(&value, buf + 12, 4, simcuda::MemcpyKind::kDeviceToHost)
           .ok())
    return 5;
  return value == 15 ? 0 : 6;  // last tid of 16 threads
}

// Tenant 1: honest workload on channel 0.
int RunHonestTenant(guardian::ProcessServer& server) {
  guardian::ChannelTransport transport(&server.channel(0));
  auto lib = GrdLib::Connect(&transport, 8 << 20);
  if (!lib.ok()) return 10;
  return RunHonestWorkload(*lib) == 0 ? 0 : 11;
}

// Tenant 2: the attacker — blind OOB store far outside its partition.
int RunAttackerTenant(guardian::ProcessServer& server) {
  guardian::ChannelTransport transport(&server.channel(1));
  auto lib = GrdLib::Connect(&transport, 8 << 20);
  if (!lib.ok()) return 12;
  auto module = lib->cuModuleLoadData(ptx::Print(ptx::MakeSampleModule()));
  if (!module.ok()) return 13;
  auto fn = lib->cuModuleGetFunction(*module, "oob_writer");
  if (!fn.ok()) return 14;
  DevicePtr buf = 0;
  if (!lib->cudaMalloc(&buf, 4096).ok()) return 15;
  const Status s = lib->cudaLaunchKernel(
      *fn, simcuda::LaunchConfig{},
      {KernelArg::U64(buf), KernelArg::U64(512ull << 20), KernelArg::U32(666)});
  // Fencing: the launch SUCCEEDS (the store wraps into the attacker's own
  // partition) and nobody else is harmed.
  return s.ok() ? 0 : 16;
}

// Tenant 3: parks its worker in a spin kernel, survives the worker's
// SIGKILL with a clean error, then reconnects and finishes a workload on
// the respawned worker. `ready_fd` tells the parent the spin launch is out.
int RunCrashTenant(guardian::ProcessServer& server, int ready_fd) {
  guardian::ChannelTransport transport(&server.channel(2));
  auto lib = GrdLib::Connect(&transport, 8 << 20);
  if (!lib.ok()) return 20;
  auto module = lib->cuModuleLoadData(kSpinTailPtx);
  if (!module.ok()) return 21;
  auto spin = lib->cuModuleGetFunction(*module, "spintail");
  if (!spin.ok()) return 22;
  DevicePtr buf = 0;
  if (!lib->cudaMalloc(&buf, 4096).ok()) return 23;

  if (write(ready_fd, "L", 1) != 1) return 24;
  simcuda::LaunchConfig config;
  config.grid = {4, 1, 1};
  config.block = {1, 1, 1};
  const Status killed =
      lib->cudaLaunchKernel(*spin, config, {KernelArg::U64(buf)});
  if (killed.ok() || killed.code() != StatusCode::kUnavailable) return 25;

  auto fresh = GrdLib::Connect(&transport, 8 << 20);
  if (!fresh.ok()) return 26;
  return RunHonestWorkload(*fresh) == 0 ? 0 : 27;
}

int ExitCode(int wait_status) {
  return WIFEXITED(wait_status) ? WEXITSTATUS(wait_status) : -1;
}

}  // namespace

int main() {
  guardian::ProcessServerOptions options;
  options.workers = 2;
  options.channels = 3;
  options.manager.max_kernel_instructions = 1ull << 40;  // spin until killed
  // Tracing through the pool: every process (workers, forked tenants, this
  // supervisor) emits spans into the SharedRegion arena, so the trace
  // export below still holds the killed worker's last, unterminated span.
  options.manager.tracing_enabled = true;
  auto server = guardian::ProcessServer::Create(options);
  if (!server.ok()) return 1;
  if (!(*server)->Start().ok()) return 1;
  if (!(*server)->WaitForChannelOwners()) return 1;
  std::printf("manager pool: %u forked workers over %u channels\n",
              options.workers, options.channels);

  // ---- phase 1: cross-tenant fault containment -----------------------------
  const pid_t tenant1 = fork();
  if (tenant1 == 0) _exit(RunHonestTenant(**server));
  const pid_t tenant2 = fork();
  if (tenant2 == 0) _exit(RunAttackerTenant(**server));
  int status1 = 0, status2 = 0;
  (void)waitpid(tenant1, &status1, 0);
  (void)waitpid(tenant2, &status2, 0);
  std::printf("tenant 1 (honest)  : exit %d %s\n", ExitCode(status1),
              ExitCode(status1) == 0 ? "(kernel ran, results correct)"
                                     : "(FAILED)");
  std::printf("tenant 2 (attacker): exit %d %s\n", ExitCode(status2),
              ExitCode(status2) == 0
                  ? "(OOB store wrapped into own partition)"
                  : "(FAILED)");

  // ---- phase 2+3: SIGKILL a worker mid-kernel, survive, respawn ------------
  int ready[2];
  if (pipe(ready) != 0) return 1;
  const pid_t tenant3 = fork();
  if (tenant3 == 0) _exit(RunCrashTenant(**server, ready[1]));
  // Parent's write end closes now: a tenant that dies before signalling
  // delivers EOF below instead of wedging the demo.
  close(ready[1]);

  char token = 0;
  if (read(ready[0], &token, 1) != 1) {
    int status3 = 0;
    (void)waitpid(tenant3, &status3, 0);
    std::printf("tenant 3 failed before the spin launch (exit %d)\n",
                ExitCode(status3));
    return 1;
  }
  ipc::Channel& crash_channel = (*server)->channel(2);
  // Wait until the worker consumed the spin launch (mid-kernel), then kill.
  while (crash_channel.request().messages_read() <=
         crash_channel.response().messages_written())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const std::uint32_t victim = (*server)->channel_owner(2);
  std::printf("SIGKILLing worker %u mid-kernel (pid %d)\n", victim,
              static_cast<int>((*server)->worker_pid(victim)));
  (void)kill((*server)->worker_pid(victim), SIGKILL);

  int status3 = 0;
  (void)waitpid(tenant3, &status3, 0);
  std::printf("tenant 3 (crashed worker): exit %d %s\n", ExitCode(status3),
              ExitCode(status3) == 0
                  ? "(clean kUnavailable, reconnected on respawned worker)"
                  : "(FAILED)");

  guardian::SharedServingState& state = (*server)->state();
  std::printf("supervisor: %llu session(s) crash-failed, %llu synthetic "
              "response(s), %llu respawn(s)\n",
              static_cast<unsigned long long>(
                  state.counters().sessions_crash_failed.load()),
              static_cast<unsigned long long>(
                  state.counters().synthetic_responses.load()),
              static_cast<unsigned long long>(
                  state.counters().workers_respawned.load()));
  std::printf("MANAGER_STATS %s\n", state.stats().ToJson().c_str());

  // Flush every span the pool committed — including the killed worker's
  // begin-only exec span, which renders as an unterminated slice.
  const Status exported = obs::TraceExporter::WriteFile("trace.json");
  if (exported.ok())
    std::printf("wrote trace.json (spans of the killed worker included)\n");
  obs::TraceRecorder::Instance().Reset();  // unbind before the region dies

  const bool ok = ExitCode(status1) == 0 && ExitCode(status2) == 0 &&
                  ExitCode(status3) == 0 &&
                  state.counters().workers_respawned.load() >= 1 &&
                  exported.ok();
  (*server)->Stop();
  close(ready[0]);
  return ok ? 0 : 1;
}
