// Scenario: the paper's actual deployment shape — client applications and
// the grdManager in DIFFERENT PROCESSES, exchanging CUDA calls over
// shared-memory rings (per-application channels, §4).
//
// The parent process runs the grdManager and its round-robin server pump;
// two forked children act as tenant applications. Each child allocates,
// uploads, launches the Listing-1 kernel, and reads results back — entirely
// through IPC. One child then attempts the cross-tenant OOB write and the
// parent verifies containment.
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <thread>

#include "guardian/grdlib.hpp"
#include "guardian/manager.hpp"
#include "guardian/transport.hpp"
#include "ipc/channel.hpp"
#include "ptx/generator.hpp"
#include "ptx/printer.hpp"
#include "simgpu/device_spec.hpp"

using namespace grd;
using guardian::GrdLib;
using ptxexec::KernelArg;
using simcuda::DevicePtr;

namespace {

constexpr std::uint64_t kRingBytes = 1 << 20;

// Child tenant body: returns 0 on success.
int RunTenant(void* channel_region, bool attack) {
  ipc::Channel channel(channel_region, kRingBytes, /*initialize=*/false);
  guardian::ChannelTransport transport(&channel);
  auto lib = GrdLib::Connect(&transport, 8 << 20);
  if (!lib.ok()) return 10;

  auto module =
      lib->cuModuleLoadData(ptx::Print(ptx::MakeSampleModule()));
  if (!module.ok()) return 11;

  DevicePtr buf = 0;
  if (!lib->cudaMalloc(&buf, 4096).ok()) return 12;

  if (!attack) {
    auto fn = lib->cuModuleGetFunction(*module, "kernel");
    simcuda::LaunchConfig config;
    config.block = {16, 1, 1};
    if (!lib->cudaLaunchKernel(*fn, config,
                               {KernelArg::U64(buf), KernelArg::U32(3)})
             .ok())
      return 13;
    std::uint32_t value = 0;
    if (!lib->cudaMemcpy(&value, buf + 12, 4,
                         simcuda::MemcpyKind::kDeviceToHost)
             .ok())
      return 14;
    return value == 15 ? 0 : 15;  // last tid of 16 threads
  }

  // The attacker: blind OOB store far outside its own partition.
  auto fn = lib->cuModuleGetFunction(*module, "oob_writer");
  const Status s = lib->cudaLaunchKernel(
      *fn, simcuda::LaunchConfig{},
      {KernelArg::U64(buf), KernelArg::U64(512ull << 20),
       KernelArg::U32(666)});
  // Fencing: the launch SUCCEEDS (wraps) and nobody else is harmed.
  return s.ok() ? 0 : 16;
}

}  // namespace

int main() {
  auto region_a = ipc::SharedRegion::Create(ipc::Channel::RegionSize(kRingBytes));
  auto region_b = ipc::SharedRegion::Create(ipc::Channel::RegionSize(kRingBytes));
  if (!region_a.ok() || !region_b.ok()) return 1;
  ipc::Channel channel_a(region_a->addr(), kRingBytes, /*initialize=*/true);
  ipc::Channel channel_b(region_b->addr(), kRingBytes, /*initialize=*/true);

  const pid_t tenant1 = fork();
  if (tenant1 == 0) _exit(RunTenant(region_a->addr(), /*attack=*/false));
  const pid_t tenant2 = fork();
  if (tenant2 == 0) _exit(RunTenant(region_b->addr(), /*attack=*/true));

  // Parent: the grdManager process.
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  guardian::GrdManager manager(&gpu, guardian::ManagerOptions{});
  guardian::ManagerServer server(&manager);
  server.AddChannel(&channel_a);
  server.AddChannel(&channel_b);

  std::atomic<bool> stop{false};
  std::thread pump([&] { server.Run(stop); });

  int status1 = 0, status2 = 0;
  (void)waitpid(tenant1, &status1, 0);
  (void)waitpid(tenant2, &status2, 0);
  stop.store(true);
  pump.join();

  const int code1 = WIFEXITED(status1) ? WEXITSTATUS(status1) : -1;
  const int code2 = WIFEXITED(status2) ? WEXITSTATUS(status2) : -1;
  std::printf("tenant 1 (honest)  : exit %d %s\n", code1,
              code1 == 0 ? "(kernel ran, results correct)" : "(FAILED)");
  std::printf("tenant 2 (attacker): exit %d %s\n", code2,
              code2 == 0 ? "(OOB store wrapped into own partition)"
                         : "(FAILED)");
  std::printf("manager: %llu sandboxed launches, %llu faults, "
              "%llu transfers checked\n",
              static_cast<unsigned long long>(
                  manager.stats().sandboxed_launches),
              static_cast<unsigned long long>(manager.stats().faults_contained),
              static_cast<unsigned long long>(
                  manager.stats().transfers_checked));
  return (code1 == 0 && code2 == 0) ? 0 : 1;
}
