// Scenario: dynamic multi-tenancy — the operational features around the
// core protection mechanism.
//
//  1. Standalone fast path (§4.2.3): a lone tenant runs native, unpatched
//     kernels; the moment a second tenant registers, launches switch to the
//     sandboxed versions.
//  2. Progressive partition growth (§4.4 future work): a tenant outgrows
//     its partition and doubles it in place; the fencing mask follows.
//  3. Kernel revocation (TReM [53]): an endless kernel is terminated and
//     only its owner is failed.
#include <cstdio>

#include "common/strings.hpp"
#include "guardian/grdlib.hpp"
#include "guardian/manager.hpp"
#include "guardian/transport.hpp"
#include "ptx/generator.hpp"
#include "ptx/printer.hpp"
#include "simgpu/device_spec.hpp"

using namespace grd;
using guardian::GrdLib;
using ptxexec::KernelArg;
using simcuda::DevicePtr;

int main() {
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  guardian::ManagerOptions options;
  options.standalone_fast_path = true;
  options.max_kernel_instructions = 100'000;
  guardian::GrdManager manager(&gpu, options);
  guardian::LoopbackTransport transport(&manager);

  // --- 1. standalone fast path ---
  std::printf("1. standalone fast path\n");
  auto solo = GrdLib::Connect(&transport, 1 << 20);
  if (!solo.ok()) return 1;
  auto module = solo->cuModuleLoadData(ptx::Print(ptx::MakeSampleModule()));
  auto kernel = solo->cuModuleGetFunction(*module, "kernel");
  DevicePtr buf = 0;
  (void)solo->cudaMalloc(&buf, 4096);
  simcuda::LaunchConfig config;
  config.block = {8, 1, 1};
  (void)solo->cudaLaunchKernel(*kernel, config,
                               {KernelArg::U64(buf), KernelArg::U32(0)});
  std::printf("   1 tenant : native launches = %llu, sandboxed = %llu\n",
              (unsigned long long)manager.stats().native_launches,
              (unsigned long long)manager.stats().sandboxed_launches);

  auto second = GrdLib::Connect(&transport, 1 << 20);
  if (!second.ok()) return 1;
  (void)solo->cudaLaunchKernel(*kernel, config,
                               {KernelArg::U64(buf), KernelArg::U32(0)});
  std::printf("   2 tenants: native launches = %llu, sandboxed = %llu "
              "(protection engaged automatically)\n\n",
              (unsigned long long)manager.stats().native_launches,
              (unsigned long long)manager.stats().sandboxed_launches);

  // --- 2. partition growth ---
  std::printf("2. progressive partition growth\n");
  std::printf("   before: %s partition\n",
              HumanBytes(solo->partition_size()).c_str());
  DevicePtr big = 0;
  const Status oom = solo->cudaMalloc(&big, 900 << 10);
  const Status oom2 = solo->cudaMalloc(&big, 900 << 10);
  std::printf("   two 900 KB allocations: %s then %s\n",
              oom.ToString().c_str(), oom2.ToString().c_str());
  if (solo->GrowPartition().ok()) {
    std::printf("   grown to %s; retrying: %s\n\n",
                HumanBytes(solo->partition_size()).c_str(),
                solo->cudaMalloc(&big, 900 << 10).ToString().c_str());
  }

  // --- 3. revocation ---
  std::printf("3. endless-kernel revocation\n");
  auto spin_module = second->cuModuleLoadData(R"(
.version 7.7
.target sm_86
.address_size 64
.visible .entry spin()
{
    .reg .b32 %r<2>;
LOOP:
    add.s32 %r1, %r1, 1;
    bra LOOP;
}
)");
  auto spin = second->cuModuleGetFunction(*spin_module, "spin");
  const Status revoked =
      second->cudaLaunchKernel(*spin, simcuda::LaunchConfig{}, {});
  std::printf("   spinning tenant: %s\n", revoked.ToString().c_str());
  DevicePtr probe = 0;
  std::printf("   spinner next call: %s\n",
              second->cudaMalloc(&probe, 64).ToString().c_str());
  std::printf("   other tenant    : %s (unaffected)\n",
              solo->cudaMalloc(&probe, 64).ToString().c_str());
  return 0;
}
