// Scenario: dynamic multi-tenancy — the operational features around the
// core protection mechanism.
//
//  1. Standalone fast path (§4.2.3): a lone tenant runs native, unpatched
//     kernels; the moment a second tenant registers, launches switch to the
//     sandboxed versions.
//  2. Progressive partition growth (§4.4 future work): a tenant outgrows
//     its partition and doubles it in place; the fencing mask follows.
//  3. Kernel revocation (TReM [53]): an endless kernel is revoked-and-
//     requeued once, then terminated — and only its owner is failed.
//  4. Priority preemption: a kRealtime tenant's kernel revokes a kBatch
//     tenant's full-device kernel at a safe point instead of queueing
//     behind it; the batch kernel resumes from its checkpoint.
//
// Runs with tracing enabled and exports every span — client call, dispatch,
// queue wait, preemption and per-tier execution — to ./trace.json, loadable
// in Perfetto / chrome://tracing.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/strings.hpp"
#include "guardian/grdlib.hpp"
#include "guardian/manager.hpp"
#include "guardian/transport.hpp"
#include "obs/trace.hpp"
#include "ptx/generator.hpp"
#include "ptx/printer.hpp"
#include "simgpu/device_spec.hpp"

using namespace grd;
using guardian::GrdLib;
using guardian::protocol::PriorityClass;
using ptxexec::KernelArg;
using simcuda::DevicePtr;

int main() {
  simcuda::Gpu gpu(simgpu::QuadroRtxA4000());
  guardian::ManagerOptions options;
  options.standalone_fast_path = true;
  options.max_kernel_instructions = 100'000;
  options.scheduler_executors = 4;
  // Dilate modeled device time so the batch kernel of section 4 is long
  // enough to be preempted mid-flight.
  options.device_time_ns_per_cycle = 200.0;
  options.tracing_enabled = true;
  guardian::GrdManager manager(&gpu, options);
  guardian::LoopbackTransport transport(&manager);

  // --- 1. standalone fast path ---
  std::printf("1. standalone fast path\n");
  auto solo = GrdLib::Connect(&transport, 1 << 20);
  if (!solo.ok()) return 1;
  auto module = solo->cuModuleLoadData(ptx::Print(ptx::MakeSampleModule()));
  auto kernel = solo->cuModuleGetFunction(*module, "kernel");
  DevicePtr buf = 0;
  (void)solo->cudaMalloc(&buf, 4096);
  simcuda::LaunchConfig config;
  config.block = {8, 1, 1};
  (void)solo->cudaLaunchKernel(*kernel, config,
                               {KernelArg::U64(buf), KernelArg::U32(0)});
  std::printf("   1 tenant : native launches = %llu, sandboxed = %llu\n",
              (unsigned long long)manager.stats().native_launches,
              (unsigned long long)manager.stats().sandboxed_launches);

  auto second = GrdLib::Connect(&transport, 1 << 20);
  if (!second.ok()) return 1;
  (void)solo->cudaLaunchKernel(*kernel, config,
                               {KernelArg::U64(buf), KernelArg::U32(0)});
  std::printf("   2 tenants: native launches = %llu, sandboxed = %llu "
              "(protection engaged automatically)\n\n",
              (unsigned long long)manager.stats().native_launches,
              (unsigned long long)manager.stats().sandboxed_launches);

  // --- 2. partition growth ---
  std::printf("2. progressive partition growth\n");
  std::printf("   before: %s partition\n",
              HumanBytes(solo->partition_size()).c_str());
  DevicePtr big = 0;
  const Status oom = solo->cudaMalloc(&big, 900 << 10);
  const Status oom2 = solo->cudaMalloc(&big, 900 << 10);
  std::printf("   two 900 KB allocations: %s then %s\n",
              oom.ToString().c_str(), oom2.ToString().c_str());
  if (solo->GrowPartition().ok()) {
    std::printf("   grown to %s; retrying: %s\n\n",
                HumanBytes(solo->partition_size()).c_str(),
                solo->cudaMalloc(&big, 900 << 10).ToString().c_str());
  }

  // --- 3. revocation ---
  std::printf("3. endless-kernel revocation\n");
  auto spin_module = second->cuModuleLoadData(R"(
.version 7.7
.target sm_86
.address_size 64
.visible .entry spin()
{
    .reg .b32 %r<2>;
LOOP:
    add.s32 %r1, %r1, 1;
    bra LOOP;
}
)");
  auto spin = second->cuModuleGetFunction(*spin_module, "spin");
  const Status revoked =
      second->cudaLaunchKernel(*spin, simcuda::LaunchConfig{}, {});
  std::printf("   spinning tenant: %s\n", revoked.ToString().c_str());
  std::printf("   (budget kill is a last resort: %llu revoke-and-requeue "
              "before the failure)\n",
              (unsigned long long)manager.stats().budget_requeues);
  DevicePtr probe = 0;
  std::printf("   spinner next call: %s\n",
              second->cudaMalloc(&probe, 64).ToString().c_str());
  std::printf("   other tenant    : %s (unaffected)\n\n",
              solo->cudaMalloc(&probe, 64).ToString().c_str());

  // --- 4. priority preemption ---
  std::printf("4. realtime tenant preempts a batch tenant's long kernel\n");
  auto batch = GrdLib::Connect(&transport, 1 << 20);
  auto realtime = GrdLib::Connect(&transport, 1 << 20);
  if (!batch.ok() || !realtime.ok()) return 1;
  (void)batch->SetPriority(PriorityClass::kBatch);
  (void)realtime->SetPriority(PriorityClass::kRealtime);

  const std::string copy_ptx = ptx::Print(ptx::MakeSampleModule());
  auto batch_fn = batch->cuModuleGetFunction(
      *batch->cuModuleLoadData(copy_ptx), "copyk");
  auto rt_fn = realtime->cuModuleGetFunction(
      *realtime->cuModuleLoadData(copy_ptx), "copyk");

  constexpr std::uint32_t kBatchElems = 48 * 1024;  // 48 blocks: every SM
  constexpr std::uint32_t kRtElems = 256;
  DevicePtr bsrc = 0, bdst = 0, rsrc = 0, rdst = 0;
  (void)batch->cudaMalloc(&bsrc, kBatchElems * 4);
  (void)batch->cudaMalloc(&bdst, kBatchElems * 4);
  (void)realtime->cudaMalloc(&rsrc, kRtElems * 4);
  (void)realtime->cudaMalloc(&rdst, kRtElems * 4);
  std::vector<std::uint32_t> payload(kBatchElems, 0xBA7C4);
  (void)batch->cudaMemcpyH2D(bsrc, payload.data(), kBatchElems * 4);

  simcuda::StreamId bstream = 0, rstream = 0;
  (void)batch->cudaStreamCreate(&bstream);
  (void)realtime->cudaStreamCreate(&rstream);

  simcuda::LaunchConfig bconfig;
  bconfig.block = {1024, 1, 1};
  bconfig.grid = {kBatchElems / 1024, 1, 1};
  bconfig.stream = bstream;
  const Status batch_launch = batch->cudaLaunchKernel(
      *batch_fn, bconfig,
      {KernelArg::U64(bsrc), KernelArg::U64(bdst),
       KernelArg::U32(kBatchElems)});
  if (!batch_launch.ok()) {
    std::printf("   batch launch failed: %s\n",
                batch_launch.ToString().c_str());
    return 1;
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (manager.scheduler().resident_kernels() == 0) {
    if (std::chrono::steady_clock::now() > deadline) {
      std::printf("   batch kernel never became resident\n");
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }

  simcuda::LaunchConfig rconfig;
  rconfig.block = {256, 1, 1};
  rconfig.grid = {1, 1, 1};
  rconfig.stream = rstream;
  const auto rt_begin = std::chrono::steady_clock::now();
  (void)realtime->cudaLaunchKernel(*rt_fn, rconfig,
                                   {KernelArg::U64(rsrc),
                                    KernelArg::U64(rdst),
                                    KernelArg::U32(kRtElems)});
  (void)realtime->cudaStreamSynchronize(rstream);
  const double rt_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - rt_begin)
                           .count();
  (void)batch->cudaStreamSynchronize(bstream);
  std::printf("   realtime kernel finished in %.2f ms while the full-device "
              "batch kernel was mid-flight\n", rt_ms);
  std::printf("   preemptions=%llu resumes=%llu checkpoint_bytes=%llu "
              "(batch kernel resumed, no blocks replayed)\n",
              (unsigned long long)manager.stats().preemptions,
              (unsigned long long)manager.stats().preemption_resumes,
              (unsigned long long)manager.stats().checkpoint_bytes_saved);

  std::printf("\n5. structured stats export (ManagerStats::ToJson)\n");
  std::printf("MANAGER_STATS %s\n", manager.stats().ToJson().c_str());

  std::printf("\n6. trace export (Chrome trace-event JSON)\n");
  const Status exported = obs::TraceExporter::WriteFile("trace.json");
  if (!exported.ok()) {
    std::printf("   trace export failed: %s\n", exported.ToString().c_str());
    return 1;
  }
  std::printf("   wrote trace.json — open in Perfetto or chrome://tracing\n");
  return 0;
}
