#include "baselines/mps.hpp"

namespace grd::baselines {

std::uint64_t MpsMemoryFootprint(std::size_t num_clients) {
  if (num_clients == 0) return 0;
  return kFirstContextFootprint +
         (num_clients - 1) * kExtraContextFootprint;
}

MpsClient::MpsClient(MpsServer* server, simcuda::Gpu* gpu)
    : server_(server), inner_(gpu) {}

Status MpsClient::CheckServer() const {
  if (server_->failed())
    return Unavailable(
        "MPS server crashed after a client fault; all clients terminated");
  return OkStatus();
}

Status MpsClient::Propagate(Status status) {
  // OOB device faults surface as OutOfRange/PermissionDenied from the
  // execution layer; they leave the MPS server in an undefined state.
  if (status.code() == StatusCode::kOutOfRange ||
      status.code() == StatusCode::kPermissionDenied) {
    server_->MarkFailed();
  }
  return status;
}

Status MpsClient::cudaMalloc(simcuda::DevicePtr* ptr, std::uint64_t size) {
  GRD_RETURN_IF_ERROR(CheckServer());
  return inner_.cudaMalloc(ptr, size);
}
Status MpsClient::cudaFree(simcuda::DevicePtr ptr) {
  GRD_RETURN_IF_ERROR(CheckServer());
  return inner_.cudaFree(ptr);
}
Status MpsClient::cudaMemcpy(void* dst_host, simcuda::DevicePtr src_dev,
                             std::uint64_t size, simcuda::MemcpyKind kind) {
  GRD_RETURN_IF_ERROR(CheckServer());
  return inner_.cudaMemcpy(dst_host, src_dev, size, kind);
}
Status MpsClient::cudaMemcpyH2D(simcuda::DevicePtr dst, const void* src,
                                std::uint64_t size) {
  GRD_RETURN_IF_ERROR(CheckServer());
  return inner_.cudaMemcpyH2D(dst, src, size);
}
Status MpsClient::cudaMemcpyD2D(simcuda::DevicePtr dst,
                                simcuda::DevicePtr src, std::uint64_t size) {
  GRD_RETURN_IF_ERROR(CheckServer());
  return inner_.cudaMemcpyD2D(dst, src, size);
}
Status MpsClient::cudaMemset(simcuda::DevicePtr dst, int value,
                             std::uint64_t size) {
  GRD_RETURN_IF_ERROR(CheckServer());
  return inner_.cudaMemset(dst, value, size);
}
Status MpsClient::cudaLaunchKernel(simcuda::FunctionId func,
                                   const simcuda::LaunchConfig& config,
                                   std::vector<ptxexec::KernelArg> args) {
  GRD_RETURN_IF_ERROR(CheckServer());
  return Propagate(inner_.cudaLaunchKernel(func, config, std::move(args)));
}
Status MpsClient::cudaStreamCreate(simcuda::StreamId* stream) {
  GRD_RETURN_IF_ERROR(CheckServer());
  return inner_.cudaStreamCreate(stream);
}
Status MpsClient::cudaStreamDestroy(simcuda::StreamId stream) {
  return inner_.cudaStreamDestroy(stream);
}
Status MpsClient::cudaStreamSynchronize(simcuda::StreamId stream) {
  GRD_RETURN_IF_ERROR(CheckServer());
  return inner_.cudaStreamSynchronize(stream);
}
Status MpsClient::cudaStreamIsCapturing(simcuda::StreamId stream,
                                        bool* capturing) {
  return inner_.cudaStreamIsCapturing(stream, capturing);
}
Status MpsClient::cudaStreamGetCaptureInfo(simcuda::StreamId stream,
                                           std::uint64_t* capture_id) {
  return inner_.cudaStreamGetCaptureInfo(stream, capture_id);
}
Status MpsClient::cudaEventCreateWithFlags(simcuda::EventId* event,
                                           std::uint32_t flags) {
  GRD_RETURN_IF_ERROR(CheckServer());
  return inner_.cudaEventCreateWithFlags(event, flags);
}
Status MpsClient::cudaEventDestroy(simcuda::EventId event) {
  return inner_.cudaEventDestroy(event);
}
Status MpsClient::cudaEventRecord(simcuda::EventId event,
                                  simcuda::StreamId stream) {
  GRD_RETURN_IF_ERROR(CheckServer());
  return inner_.cudaEventRecord(event, stream);
}
Status MpsClient::cudaDeviceSynchronize() {
  GRD_RETURN_IF_ERROR(CheckServer());
  return inner_.cudaDeviceSynchronize();
}
Result<const simcuda::ExportTable*> MpsClient::cudaGetExportTable(
    simcuda::ExportTableId id) {
  return inner_.cudaGetExportTable(id);
}
Result<simcuda::ModuleId> MpsClient::RegisterFatBinary(
    const std::string& ptx) {
  GRD_RETURN_IF_ERROR(CheckServer());
  return inner_.RegisterFatBinary(ptx);
}
Result<simcuda::FunctionId> MpsClient::RegisterFunction(
    simcuda::ModuleId module, const std::string& kernel) {
  return inner_.RegisterFunction(module, kernel);
}
Result<simcuda::ModuleId> MpsClient::cuModuleLoadData(const std::string& ptx) {
  GRD_RETURN_IF_ERROR(CheckServer());
  return inner_.cuModuleLoadData(ptx);
}
Result<simcuda::FunctionId> MpsClient::cuModuleGetFunction(
    simcuda::ModuleId module, const std::string& kernel) {
  return inner_.cuModuleGetFunction(module, kernel);
}
Status MpsClient::cuLaunchKernel(simcuda::FunctionId func,
                                 const simcuda::LaunchConfig& config,
                                 std::vector<ptxexec::KernelArg> args) {
  GRD_RETURN_IF_ERROR(CheckServer());
  return Propagate(inner_.cuLaunchKernel(func, config, std::move(args)));
}
Status MpsClient::cuMemAlloc(simcuda::DevicePtr* ptr, std::uint64_t size) {
  return cudaMalloc(ptr, size);
}
Status MpsClient::cuMemFree(simcuda::DevicePtr ptr) { return cudaFree(ptr); }
Status MpsClient::cuMemcpyHtoD(simcuda::DevicePtr dst, const void* src,
                               std::uint64_t size) {
  return cudaMemcpyH2D(dst, src, size);
}
Status MpsClient::cuMemcpyDtoH(void* dst, simcuda::DevicePtr src,
                               std::uint64_t size) {
  return cudaMemcpy(dst, src, size, simcuda::MemcpyKind::kDeviceToHost);
}
const simgpu::DeviceSpec& MpsClient::GetDeviceSpec() const {
  return inner_.GetDeviceSpec();
}

}  // namespace grd::baselines
