// NVIDIA MPS simulation (paper §2.2, Table 1 row "MPS").
//
// Semantics reproduced:
//  - spatial sharing: clients submit concurrently through one server;
//  - memory protection: per-client ASID-style isolation (an access to a
//    foreign or unmapped address faults) — implemented with the same
//    ownership registry native contexts use;
//  - NO fault isolation: the MPS server shares one copy of GPU storage and
//    scheduling resources across clients, so a device fault in ANY client
//    transitions the server to FAILED and kills all co-running clients
//    ("when a kernel of an MPS client performs an illegal memory access,
//    both the MPS server and other co-running clients are terminated");
//  - per-client context footprint: 176 MB for the first context plus
//    ~186 MB per additional client (reproduces 734 MB @ 4 clients and
//    2.8 GB @ 16 clients vs Guardian's constant 176 MB).
#pragma once

#include <memory>

#include "simcuda/native.hpp"

namespace grd::baselines {

// Driver-observed context costs (§2.2 arithmetic).
constexpr std::uint64_t kFirstContextFootprint = 176ull << 20;
constexpr std::uint64_t kExtraContextFootprint = 186ull << 20;

std::uint64_t MpsMemoryFootprint(std::size_t num_clients);

class MpsServer;

// An MPS client: the full CudaApi surface, executing against the shared GPU
// with per-client protection but server-coupled fault behaviour.
class MpsClient final : public simcuda::CudaApi {
 public:
  MpsClient(MpsServer* server, simcuda::Gpu* gpu);

  Status cudaMalloc(simcuda::DevicePtr* ptr, std::uint64_t size) override;
  Status cudaFree(simcuda::DevicePtr ptr) override;
  Status cudaMemcpy(void* dst_host, simcuda::DevicePtr src_dev,
                    std::uint64_t size, simcuda::MemcpyKind kind) override;
  Status cudaMemcpyH2D(simcuda::DevicePtr dst_dev, const void* src_host,
                       std::uint64_t size) override;
  Status cudaMemcpyD2D(simcuda::DevicePtr dst_dev, simcuda::DevicePtr src_dev,
                       std::uint64_t size) override;
  Status cudaMemset(simcuda::DevicePtr dst, int value,
                    std::uint64_t size) override;
  Status cudaLaunchKernel(simcuda::FunctionId func,
                          const simcuda::LaunchConfig& config,
                          std::vector<ptxexec::KernelArg> args) override;
  Status cudaStreamCreate(simcuda::StreamId* stream) override;
  Status cudaStreamDestroy(simcuda::StreamId stream) override;
  Status cudaStreamSynchronize(simcuda::StreamId stream) override;
  Status cudaStreamIsCapturing(simcuda::StreamId stream,
                               bool* capturing) override;
  Status cudaStreamGetCaptureInfo(simcuda::StreamId stream,
                                  std::uint64_t* capture_id) override;
  Status cudaEventCreateWithFlags(simcuda::EventId* event,
                                  std::uint32_t flags) override;
  Status cudaEventDestroy(simcuda::EventId event) override;
  Status cudaEventRecord(simcuda::EventId event,
                         simcuda::StreamId stream) override;
  Status cudaDeviceSynchronize() override;
  Result<const simcuda::ExportTable*> cudaGetExportTable(
      simcuda::ExportTableId id) override;
  Result<simcuda::ModuleId> RegisterFatBinary(const std::string& ptx) override;
  Result<simcuda::FunctionId> RegisterFunction(
      simcuda::ModuleId module, const std::string& kernel) override;
  Result<simcuda::ModuleId> cuModuleLoadData(const std::string& ptx) override;
  Result<simcuda::FunctionId> cuModuleGetFunction(
      simcuda::ModuleId module, const std::string& kernel) override;
  Status cuLaunchKernel(simcuda::FunctionId func,
                        const simcuda::LaunchConfig& config,
                        std::vector<ptxexec::KernelArg> args) override;
  Status cuMemAlloc(simcuda::DevicePtr* ptr, std::uint64_t size) override;
  Status cuMemFree(simcuda::DevicePtr ptr) override;
  Status cuMemcpyHtoD(simcuda::DevicePtr dst, const void* src,
                      std::uint64_t size) override;
  Status cuMemcpyDtoH(void* dst, simcuda::DevicePtr src,
                      std::uint64_t size) override;
  const simgpu::DeviceSpec& GetDeviceSpec() const override;

 private:
  Status CheckServer() const;
  // A device fault (sticky error on the inner context) poisons the server.
  Status Propagate(Status status);

  MpsServer* server_;
  simcuda::NativeCuda inner_;
};

class MpsServer {
 public:
  explicit MpsServer(simcuda::Gpu* gpu) : gpu_(gpu) {}

  std::unique_ptr<MpsClient> CreateClient() {
    ++client_count_;
    return std::make_unique<MpsClient>(this, gpu_);
  }

  bool failed() const noexcept { return failed_; }
  void MarkFailed() noexcept { failed_ = true; }
  std::size_t client_count() const noexcept { return client_count_; }

  // Device memory consumed by MPS contexts alone (no user data) — the §2.2
  // comparison against Guardian's single 176 MB context.
  std::uint64_t GpuMemoryFootprint() const {
    return MpsMemoryFootprint(client_count_);
  }

 private:
  simcuda::Gpu* gpu_;
  bool failed_ = false;
  std::size_t client_count_ = 0;
};

}  // namespace grd::baselines
