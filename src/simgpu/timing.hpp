// Analytic kernel timing model.
//
// The paper's overhead analysis (§4.4, §7.4, Figure 5) is latency-based: a
// load/store costs 28 cycles from L1, ~193 from L2, 220-350 from global
// memory; each fencing instruction costs ~4 ALU cycles. A kernel's device
// time is dominated by its memory accesses, so Guardian's relative overhead
// is (extra ALU cycles per access) / (average access latency) — small when
// data is in global memory, large (28-57%) when everything hits in L1.
// This model reproduces exactly that arithmetic.
#pragma once

#include <cstdint>

#include "simgpu/device_spec.hpp"

namespace grd::simgpu {

// Cache behaviour of a kernel (measured per kernel by Nsight in the paper;
// we carry measured/representative ratios on each workload kernel).
struct CacheProfile {
  double l1_hit = 0.37;  // lenet average (paper §7.4)
  double l2_hit = 0.72;  // of L1 misses, fraction hitting L2
  // §7.4 (2): "cache hits result in a lower load/store instruction latency
  // in the rare case that every thread in the warp hits in the cache" [4].
  // A hit only shortens the warp's instruction when the whole warp hits;
  // this factor scales the *effective* L1 benefit (1.0 = perfectly
  // coalesced warps).
  double warp_uniformity = 1.0;

  static CacheProfile AllL1() { return {1.0, 1.0, 1.0}; }
  static CacheProfile AllGlobal() { return {0.0, 0.0, 1.0}; }
};

// Bounds-checking deployment modes (paper §4.4 and §6 "deployments").
enum class ProtectionMode : std::uint8_t {
  kNone,            // Guardian w/o protection (interception only)
  kFencingBitwise,  // AND+OR, 2 instructions / 8 cycles
  kFencingModulo,   // inline 64-bit modulo, 7 instructions / 28 cycles
  kChecking,        // conditional checks, ~80 cycles (Address Divergence Unit)
};

const char* ProtectionModeName(ProtectionMode mode) noexcept;

// Static instruction profile of one kernel (derived from the PTX via
// ptx::ComputeStats, or synthesized for workload kernels).
struct KernelProfile {
  std::uint64_t loads = 0;           // protected global/local loads per thread
  std::uint64_t stores = 0;          // protected stores per thread
  std::uint64_t alu_ops = 0;         // other instructions per thread
  double offset_mode_fraction = 0.0; // fraction of accesses using base+offset
  CacheProfile cache;
};

class TimingModel {
 public:
  explicit TimingModel(const DeviceSpec& spec) : spec_(spec) {}

  // Average latency of one load/store under the cache profile.
  double AverageAccessLatency(const CacheProfile& cache) const;

  // Extra device cycles per protected access for a protection mode.
  // Base addressing: bitwise = 2 instr (8 cy), modulo = 7 instr (28 cy),
  // checking = 80 cy. base+offset addressing adds a temp-register add for
  // the fencing modes (paper §4.3, §7.2: "up to eight instructions (32
  // cycles)" for the offset mode).
  double ProtectionCyclesPerAccess(ProtectionMode mode,
                                   double offset_mode_fraction) const;

  // Device cycles one thread of this kernel takes.
  double ThreadCycles(const KernelProfile& profile,
                      ProtectionMode mode) const;

  // Guardian's relative overhead for this kernel vs native (e.g. 0.032
  // means +3.2%).
  double RelativeOverhead(const KernelProfile& profile,
                          ProtectionMode mode) const;

  const DeviceSpec& spec() const noexcept { return spec_; }

 private:
  DeviceSpec spec_;
};

// ---- occupancy model (§4.2.4 substrate) -----------------------------------
//
// The device scheduler in the guardian layer co-schedules kernels by SM
// footprint; the timing engine owns the arithmetic so the scheduler never
// hard-codes device geometry.

// SMs a launch of `blocks` blocks × `threads_per_block` threads occupies:
// each SM hosts floor(max_threads_per_sm / threads_per_block) blocks (min 1),
// and the result is clamped to [1, spec.sms] — a grid larger than the device
// runs in waves on all SMs.
int SmFootprint(const DeviceSpec& spec, std::uint64_t blocks,
                std::uint64_t threads_per_block) noexcept;

// Modeled device cycles for a finished kernel run, from its dynamic
// instruction counts (ptxexec ExecStats): memory accesses at global latency,
// everything else at ALU cost, spread over the lanes of `sm_footprint` SMs.
double KernelDeviceCycles(const DeviceSpec& spec, std::uint64_t instructions,
                          std::uint64_t global_accesses, std::uint64_t threads,
                          int sm_footprint) noexcept;

// Modeled cycles a host<->device or device<->device copy of `bytes` occupies
// the copy engine.
double MemcpyDeviceCycles(const DeviceSpec& spec, std::uint64_t bytes) noexcept;

}  // namespace grd::simgpu
