#include "simgpu/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace grd::simgpu {
namespace {

constexpr double kEps = 1e-9;

// Max-min fair allocation: distributes `capacity` among demands with
// per-entry caps. Classic water-filling: repeatedly grant the unsatisfied
// entries an equal share; entries whose cap is below the share keep the cap
// and release the remainder.
void WaterFill(std::vector<double>& caps, std::vector<double>& rates,
               double capacity) {
  const std::size_t n = caps.size();
  rates.assign(n, 0.0);
  std::vector<bool> done(n, false);
  std::size_t remaining = n;
  while (remaining > 0 && capacity > kEps) {
    const double share = capacity / static_cast<double>(remaining);
    bool any_capped = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (done[i]) continue;
      if (caps[i] <= share + kEps) {
        rates[i] = caps[i];
        capacity -= caps[i];
        done[i] = true;
        --remaining;
        any_capped = true;
      }
    }
    if (!any_capped) {
      for (std::size_t i = 0; i < n; ++i) {
        if (!done[i]) rates[i] = share;
      }
      break;
    }
  }
}

}  // namespace

GpuOp MakeKernelOp(const DeviceSpec& spec, double thread_cycles,
                   std::uint64_t threads, std::string label) {
  const double lanes =
      std::min<double>(static_cast<double>(threads), spec.cuda_cores);
  return GpuOp::Kernel(thread_cycles * static_cast<double>(threads),
                       std::max(lanes, 1.0), std::move(label));
}

SharingEngine::StreamId SharingEngine::AddStream() {
  streams_.emplace_back();
  return streams_.size() - 1;
}

void SharingEngine::Enqueue(StreamId stream, GpuOp op) {
  streams_[stream].push_back(std::move(op));
}

SharingEngine::RunResult SharingEngine::Run() {
  struct StreamState {
    std::size_t next = 0;     // next op index
    double remaining = 0.0;   // remaining work of the active op
    bool active = false;
  };
  const std::size_t n = streams_.size();
  std::vector<StreamState> state(n);
  RunResult result;
  result.stream_finish.assign(n, 0.0);

  auto activate = [&](std::size_t s) {
    auto& st = state[s];
    if (!st.active && st.next < streams_[s].size()) {
      st.remaining = streams_[s][st.next].work;
      st.active = true;
      // Zero-work ops complete immediately below.
    }
  };
  for (std::size_t s = 0; s < n; ++s) activate(s);

  double now = 0.0;
  while (true) {
    // Collect active ops per resource and water-fill.
    std::vector<std::size_t> kernel_streams, memcpy_streams, host_streams;
    bool any_active = false;
    for (std::size_t s = 0; s < n; ++s) {
      if (!state[s].active) continue;
      any_active = true;
      const auto& op = streams_[s][state[s].next];
      if (op.kind == GpuOp::Kind::kKernel) kernel_streams.push_back(s);
      if (op.kind == GpuOp::Kind::kMemcpy) memcpy_streams.push_back(s);
      if (op.kind == GpuOp::Kind::kHostSerial) host_streams.push_back(s);
    }
    if (!any_active) break;

    std::vector<double> rates_all(n, 0.0);
    {
      std::vector<double> caps, rates;
      for (std::size_t s : kernel_streams)
        caps.push_back(streams_[s][state[s].next].max_rate);
      WaterFill(caps, rates, static_cast<double>(spec_.cuda_cores));
      for (std::size_t i = 0; i < kernel_streams.size(); ++i)
        rates_all[kernel_streams[i]] = rates[i];
    }
    {
      std::vector<double> caps, rates;
      for (std::size_t s : memcpy_streams)
        caps.push_back(streams_[s][state[s].next].max_rate);
      WaterFill(caps, rates, spec_.pcie_bytes_per_cycle);
      for (std::size_t i = 0; i < memcpy_streams.size(); ++i)
        rates_all[memcpy_streams[i]] = rates[i];
    }
    {
      // One dispatcher thread: processor-sharing with total capacity 1.
      std::vector<double> caps, rates;
      for (std::size_t s : host_streams)
        caps.push_back(streams_[s][state[s].next].max_rate);
      WaterFill(caps, rates, 1.0);
      for (std::size_t i = 0; i < host_streams.size(); ++i)
        rates_all[host_streams[i]] = rates[i];
    }
    for (std::size_t s = 0; s < n; ++s) {
      if (state[s].active &&
          streams_[s][state[s].next].kind == GpuOp::Kind::kDelay) {
        rates_all[s] = 1.0;  // delays progress in real time, uncontended
      }
    }

    // Time to the earliest completion.
    double dt = std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s < n; ++s) {
      if (!state[s].active) continue;
      if (rates_all[s] <= kEps) continue;  // starved this round
      dt = std::min(dt, state[s].remaining / rates_all[s]);
    }
    if (!std::isfinite(dt)) {
      // All active ops starved: cannot happen with non-empty capacity, but
      // guard against zero-capacity misconfiguration.
      break;
    }
    dt = std::max(dt, 0.0);

    // Advance.
    double lanes_in_use = 0.0;
    for (std::size_t s : kernel_streams) lanes_in_use += rates_all[s];
    result.lane_busy_integral += lanes_in_use * dt;
    now += dt;
    for (std::size_t s = 0; s < n; ++s) {
      auto& st = state[s];
      if (!st.active) continue;
      st.remaining -= rates_all[s] * dt;
      if (st.remaining <= kEps) {
        st.active = false;
        ++st.next;
        result.stream_finish[s] = now;
        activate(s);
      }
    }
  }

  result.total_cycles = now;
  streams_.clear();
  return result;
}

}  // namespace grd::simgpu
