#include "simgpu/memory.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace grd::simgpu {

GlobalMemory::GlobalMemory(std::uint64_t size_bytes)
    : size_(size_bytes),
      page_count_((size_bytes + kPageSize - 1) / kPageSize),
      pages_(new std::atomic<std::uint8_t*>[page_count_]) {
  for (std::uint64_t i = 0; i < page_count_; ++i)
    pages_[i].store(nullptr, std::memory_order_relaxed);
}

GlobalMemory::~GlobalMemory() {
  for (std::uint64_t i = 0; i < page_count_; ++i)
    delete[] pages_[i].load(std::memory_order_relaxed);
}

Status GlobalMemory::CheckRange(std::uint64_t addr, std::uint64_t len) const {
  if (len > size_ || addr > size_ - len) {
    return OutOfRange("device access " + ToHex(addr) + "+" +
                      std::to_string(len) + " beyond device memory (" +
                      std::to_string(size_) + " bytes)");
  }
  return OkStatus();
}

std::uint8_t* GlobalMemory::PageForWrite(std::uint64_t page_index) {
  std::uint8_t* page = pages_[page_index].load(std::memory_order_acquire);
  if (page != nullptr) return page;
  auto fresh = std::make_unique<std::uint8_t[]>(kPageSize);
  std::memset(fresh.get(), 0, kPageSize);
  std::uint8_t* expected = nullptr;
  if (pages_[page_index].compare_exchange_strong(expected, fresh.get(),
                                                 std::memory_order_acq_rel)) {
    resident_pages_.fetch_add(1, std::memory_order_relaxed);
    return fresh.release();
  }
  return expected;  // another thread installed it first; `fresh` is dropped
}

Status GlobalMemory::Read(std::uint64_t addr, void* dst,
                          std::uint64_t len) const {
  GRD_RETURN_IF_ERROR(CheckRange(addr, len));
  auto* out = static_cast<std::uint8_t*>(dst);
  while (len > 0) {
    const std::uint64_t page_index = addr / kPageSize;
    const std::uint64_t offset = addr % kPageSize;
    const std::uint64_t chunk = std::min(len, kPageSize - offset);
    if (const std::uint8_t* page = PageForRead(page_index)) {
      std::memcpy(out, page + offset, chunk);
    } else {
      std::memset(out, 0, chunk);
    }
    out += chunk;
    addr += chunk;
    len -= chunk;
  }
  return OkStatus();
}

Status GlobalMemory::Write(std::uint64_t addr, const void* src,
                           std::uint64_t len) {
  GRD_RETURN_IF_ERROR(CheckRange(addr, len));
  const auto* in = static_cast<const std::uint8_t*>(src);
  while (len > 0) {
    const std::uint64_t page_index = addr / kPageSize;
    const std::uint64_t offset = addr % kPageSize;
    const std::uint64_t chunk = std::min(len, kPageSize - offset);
    std::memcpy(PageForWrite(page_index) + offset, in, chunk);
    in += chunk;
    addr += chunk;
    len -= chunk;
  }
  return OkStatus();
}

Status GlobalMemory::Fill(std::uint64_t addr, std::uint8_t value,
                          std::uint64_t len) {
  GRD_RETURN_IF_ERROR(CheckRange(addr, len));
  while (len > 0) {
    const std::uint64_t page_index = addr / kPageSize;
    const std::uint64_t offset = addr % kPageSize;
    const std::uint64_t chunk = std::min(len, kPageSize - offset);
    std::memset(PageForWrite(page_index) + offset, value, chunk);
    addr += chunk;
    len -= chunk;
  }
  return OkStatus();
}

Status GlobalMemory::Copy(std::uint64_t dst, std::uint64_t src,
                          std::uint64_t len) {
  GRD_RETURN_IF_ERROR(CheckRange(dst, len));
  GRD_RETURN_IF_ERROR(CheckRange(src, len));
  std::vector<std::uint8_t> buffer(static_cast<std::size_t>(len));
  GRD_RETURN_IF_ERROR(Read(src, buffer.data(), len));
  return Write(dst, buffer.data(), len);
}

}  // namespace grd::simgpu
