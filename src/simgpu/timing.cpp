#include "simgpu/timing.hpp"

namespace grd::simgpu {

const char* ProtectionModeName(ProtectionMode mode) noexcept {
  switch (mode) {
    case ProtectionMode::kNone: return "no-protection";
    case ProtectionMode::kFencingBitwise: return "fencing-bitwise";
    case ProtectionMode::kFencingModulo: return "fencing-modulo";
    case ProtectionMode::kChecking: return "checking";
  }
  return "?";
}

double TimingModel::AverageAccessLatency(const CacheProfile& cache) const {
  const double l1 = cache.l1_hit * cache.warp_uniformity;
  const double l2 = (1.0 - l1) * cache.l2_hit;
  const double global = 1.0 - l1 - l2;
  return l1 * spec_.l1_hit_latency + l2 * spec_.l2_hit_latency +
         global * spec_.global_latency;
}

double TimingModel::ProtectionCyclesPerAccess(
    ProtectionMode mode, double offset_mode_fraction) const {
  const double alu = spec_.alu_cycles;
  switch (mode) {
    case ProtectionMode::kNone:
      return 0.0;
    case ProtectionMode::kFencingBitwise:
      // 2 bitwise instructions; base+offset needs an extra add into a temp
      // register plus the two bitwise ops on it (4 instructions total).
      return (2.0 + offset_mode_fraction * 2.0) * alu;
    case ProtectionMode::kFencingModulo:
      // Inline 64-bit modulo: 7 instructions = 28 cycles (paper §4.4).
      return 28.0 + offset_mode_fraction * 1.0 * alu;
    case ProtectionMode::kChecking:
      // Conditional checks through the Address Divergence Unit: 80 cycles
      // per bound, and each access checks both the lower and the upper
      // bound; base+offset adds up to 8 instructions (32 cycles) per access.
      return 160.0 + offset_mode_fraction * 32.0;
  }
  return 0.0;
}

double TimingModel::ThreadCycles(const KernelProfile& profile,
                                 ProtectionMode mode) const {
  const double access_latency = AverageAccessLatency(profile.cache);
  const double accesses =
      static_cast<double>(profile.loads + profile.stores);
  const double base = accesses * access_latency +
                      static_cast<double>(profile.alu_ops) * spec_.alu_cycles;
  const double extra =
      accesses * ProtectionCyclesPerAccess(mode, profile.offset_mode_fraction);
  // The two extra ld.param at kernel entry (mask + base) are amortized over
  // the whole kernel; charge them once.
  const double prologue =
      mode == ProtectionMode::kNone ? 0.0 : 2.0 * spec_.l1_hit_latency;
  return base + extra + prologue;
}

double TimingModel::RelativeOverhead(const KernelProfile& profile,
                                     ProtectionMode mode) const {
  const double native = ThreadCycles(profile, ProtectionMode::kNone);
  if (native <= 0.0) return 0.0;
  return ThreadCycles(profile, mode) / native - 1.0;
}

}  // namespace grd::simgpu
