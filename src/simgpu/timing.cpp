#include "simgpu/timing.hpp"

#include <algorithm>

namespace grd::simgpu {

const char* ProtectionModeName(ProtectionMode mode) noexcept {
  switch (mode) {
    case ProtectionMode::kNone: return "no-protection";
    case ProtectionMode::kFencingBitwise: return "fencing-bitwise";
    case ProtectionMode::kFencingModulo: return "fencing-modulo";
    case ProtectionMode::kChecking: return "checking";
  }
  return "?";
}

double TimingModel::AverageAccessLatency(const CacheProfile& cache) const {
  const double l1 = cache.l1_hit * cache.warp_uniformity;
  const double l2 = (1.0 - l1) * cache.l2_hit;
  const double global = 1.0 - l1 - l2;
  return l1 * spec_.l1_hit_latency + l2 * spec_.l2_hit_latency +
         global * spec_.global_latency;
}

double TimingModel::ProtectionCyclesPerAccess(
    ProtectionMode mode, double offset_mode_fraction) const {
  const double alu = spec_.alu_cycles;
  switch (mode) {
    case ProtectionMode::kNone:
      return 0.0;
    case ProtectionMode::kFencingBitwise:
      // 2 bitwise instructions; base+offset needs an extra add into a temp
      // register plus the two bitwise ops on it (4 instructions total).
      return (2.0 + offset_mode_fraction * 2.0) * alu;
    case ProtectionMode::kFencingModulo:
      // Inline 64-bit modulo: 7 instructions = 28 cycles (paper §4.4).
      return 28.0 + offset_mode_fraction * 1.0 * alu;
    case ProtectionMode::kChecking:
      // Conditional checks through the Address Divergence Unit: 80 cycles
      // per bound, and each access checks both the lower and the upper
      // bound; base+offset adds up to 8 instructions (32 cycles) per access.
      return 160.0 + offset_mode_fraction * 32.0;
  }
  return 0.0;
}

double TimingModel::ThreadCycles(const KernelProfile& profile,
                                 ProtectionMode mode) const {
  const double access_latency = AverageAccessLatency(profile.cache);
  const double accesses =
      static_cast<double>(profile.loads + profile.stores);
  const double base = accesses * access_latency +
                      static_cast<double>(profile.alu_ops) * spec_.alu_cycles;
  const double extra =
      accesses * ProtectionCyclesPerAccess(mode, profile.offset_mode_fraction);
  // The two extra ld.param at kernel entry (mask + base) are amortized over
  // the whole kernel; charge them once.
  const double prologue =
      mode == ProtectionMode::kNone ? 0.0 : 2.0 * spec_.l1_hit_latency;
  return base + extra + prologue;
}

double TimingModel::RelativeOverhead(const KernelProfile& profile,
                                     ProtectionMode mode) const {
  const double native = ThreadCycles(profile, ProtectionMode::kNone);
  if (native <= 0.0) return 0.0;
  return ThreadCycles(profile, mode) / native - 1.0;
}

int SmFootprint(const DeviceSpec& spec, std::uint64_t blocks,
                std::uint64_t threads_per_block) noexcept {
  if (blocks == 0) blocks = 1;
  if (threads_per_block == 0) threads_per_block = 1;
  const std::uint64_t blocks_per_sm =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                     spec.max_threads_per_sm) /
                                     threads_per_block);
  const std::uint64_t needed = (blocks + blocks_per_sm - 1) / blocks_per_sm;
  const std::uint64_t cap = spec.sms > 0 ? static_cast<std::uint64_t>(spec.sms)
                                         : 1;
  return static_cast<int>(std::min(needed, cap));
}

double KernelDeviceCycles(const DeviceSpec& spec, std::uint64_t instructions,
                          std::uint64_t global_accesses, std::uint64_t threads,
                          int sm_footprint) noexcept {
  if (threads == 0 || sm_footprint <= 0) return 0.0;
  const std::uint64_t alu_ops =
      instructions > global_accesses ? instructions - global_accesses : 0;
  const double thread_cycle_total =
      static_cast<double>(alu_ops) * spec.alu_cycles +
      static_cast<double>(global_accesses) * spec.global_latency;
  // Lanes available to this kernel: its share of the device's cores.
  const int cores_per_sm = spec.sms > 0 ? spec.cuda_cores / spec.sms : 1;
  const double lanes =
      std::max(1.0, static_cast<double>(sm_footprint) * cores_per_sm);
  const double per_thread = thread_cycle_total / static_cast<double>(threads);
  // Total work spread over the lanes, floored by one thread's critical path.
  return std::max(per_thread, thread_cycle_total / lanes);
}

double MemcpyDeviceCycles(const DeviceSpec& spec, std::uint64_t bytes) noexcept {
  const double rate = spec.pcie_bytes_per_cycle > 0 ? spec.pcie_bytes_per_cycle
                                                    : 1.0;
  return static_cast<double>(bytes) / rate;
}

}  // namespace grd::simgpu
