// Simulated GPU global memory: a sparse, byte-addressable store over the
// device address range [0, global_mem_bytes). Sparse 64 KiB paging keeps a
// "16 GB" device cheap to host. Kernels executed by ptxexec really read and
// write this store, so cross-tenant corruption and wrap-around effects are
// observable, not just modeled.
//
// Concurrency: the page directory is a fixed array of atomic page pointers
// (2 MiB of directory for a 16 GB device), so co-resident kernels under the
// guardian device scheduler access memory without taking any lock — first
// touch installs a page with a CAS, losers discard their allocation. Byte
// ranges are NOT serialized against each other: racing writes to the *same*
// bytes are a device-level data race exactly as on real hardware
// (Guardian's partitioning keeps tenants on disjoint ranges).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/status.hpp"

namespace grd::simgpu {

// Access-control hook consulted on every device-side global access (and on
// host-initiated transfers by the runtimes). Implementations:
//  - simcuda native: per-context allocation ownership (a context cannot touch
//    another context's memory -> fault, like real per-context page tables);
//  - MPS baseline: per-client protection, fault kills everyone (grd::baselines);
//  - single-context stream sharing (Guardian w/o protection): allow-all --
//    which is exactly the unsafety Guardian closes.
class AccessPolicy {
 public:
  virtual ~AccessPolicy() = default;
  // `client` identifies the tenant on whose behalf the access runs.
  virtual Status CheckAccess(std::uint64_t client, std::uint64_t addr,
                             std::uint64_t size, bool is_write) = 0;
};

// Allow-everything policy (single shared CUDA context, paper Figure 1).
class AllowAllPolicy final : public AccessPolicy {
 public:
  Status CheckAccess(std::uint64_t, std::uint64_t, std::uint64_t,
                     bool) override {
    return OkStatus();
  }
};

class GlobalMemory {
 public:
  explicit GlobalMemory(std::uint64_t size_bytes);
  ~GlobalMemory();

  GlobalMemory(const GlobalMemory&) = delete;
  GlobalMemory& operator=(const GlobalMemory&) = delete;

  std::uint64_t size() const noexcept { return size_; }

  // Bytes currently backed by host pages (diagnostics).
  std::uint64_t resident_bytes() const noexcept {
    return resident_pages_.load(std::memory_order_relaxed) * kPageSize;
  }

  Status Read(std::uint64_t addr, void* dst, std::uint64_t len) const;
  Status Write(std::uint64_t addr, const void* src, std::uint64_t len);
  Status Fill(std::uint64_t addr, std::uint8_t value, std::uint64_t len);
  // Device-to-device copy (cudaMemcpyD2D path).
  Status Copy(std::uint64_t dst, std::uint64_t src, std::uint64_t len);

  template <typename T>
  Result<T> Load(std::uint64_t addr) const {
    T v{};
    GRD_RETURN_IF_ERROR(Read(addr, &v, sizeof(T)));
    return v;
  }
  template <typename T>
  Status Store(std::uint64_t addr, const T& v) {
    return Write(addr, &v, sizeof(T));
  }

 private:
  static constexpr std::uint64_t kPageSize = 64 * 1024;

  Status CheckRange(std::uint64_t addr, std::uint64_t len) const;
  // Null when the page was never touched (reads as zero).
  const std::uint8_t* PageForRead(std::uint64_t page_index) const {
    return pages_[page_index].load(std::memory_order_acquire);
  }
  // Installs a zeroed page on first touch (lock-free, CAS losers discard).
  std::uint8_t* PageForWrite(std::uint64_t page_index);

  std::uint64_t size_;
  std::uint64_t page_count_;
  std::atomic<std::uint64_t> resident_pages_{0};
  // Copy-on-first-touch 64 KiB pages behind atomic pointers; absent pages
  // read as zero. Owned; freed in the destructor.
  std::unique_ptr<std::atomic<std::uint8_t*>[]> pages_;
};

}  // namespace grd::simgpu
