// GPU device descriptors (paper Table 2) plus the latency constants the
// paper's cost analysis uses (Figure 5, §7.4).
#pragma once

#include <cstdint>
#include <string>

namespace grd::simgpu {

struct DeviceSpec {
  std::string name;
  std::string compute_capability = "8.6";
  int sms = 48;
  int cuda_cores = 6144;
  int l1_kb = 128;
  int l2_kb = 4096;
  std::uint64_t global_mem_bytes = 16ull << 30;
  int regs_per_thread = 255;
  // Resident-thread cap per SM (GA10x: 1536). The occupancy model uses it to
  // derive how many blocks co-reside on one SM, hence a launch's SM
  // footprint (§4.2.4 spatial sharing).
  int max_threads_per_sm = 1536;
  // Concurrent DMA transfers the device sustains (copy engines); bounds how
  // many memcpy ops the guardian scheduler admits at once.
  int copy_engines = 2;
  bool ecc = false;

  // Latencies in GPU cycles (paper Table 2 & Figure 5 & §7.4 use 28-cycle L1,
  // 193-cycle L2 (180 in §7.4's lenet profile), 220-350-cycle global; we use
  // the §7.4 representative 285-cycle midpoint for global).
  int l1_hit_latency = 28;
  int l2_hit_latency = 193;
  int global_latency = 285;
  double global_bw_gbps = 448.0;

  // Host-visible costs.
  double clock_ghz = 1.56;
  // Context-switch cost for time-sharing in GPU cycles. The paper cites
  // 100s-of-milliseconds-scale resets only for MIG; CUDA context switches
  // are tens of microseconds (§2.2 "costly context switches").
  std::uint64_t context_switch_cycles = 50'000;
  // Device-side cost of one ALU/bitwise instruction (paper cites 4 cycles
  // per bitwise op [3]).
  int alu_cycles = 4;

  // PCIe v4 x16 effective host<->device bandwidth, bytes per GPU cycle.
  double pcie_bytes_per_cycle = 16.0;
};

// Quadro RTX A4000: the paper's primary evaluation GPU (all experiments
// except §7.5).
DeviceSpec QuadroRtxA4000();

// GeForce RTX 3080 Ti: the §7.5 secondary GPU.
DeviceSpec GeForceRtx3080Ti();

}  // namespace grd::simgpu
