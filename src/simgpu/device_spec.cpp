#include "simgpu/device_spec.hpp"

namespace grd::simgpu {

DeviceSpec QuadroRtxA4000() {
  DeviceSpec spec;
  spec.name = "RTX A4000";
  spec.compute_capability = "8.6";
  spec.sms = 48;
  spec.cuda_cores = 6144;
  spec.l1_kb = 128;
  spec.l2_kb = 4096;
  spec.global_mem_bytes = 16ull << 30;
  spec.regs_per_thread = 255;
  spec.max_threads_per_sm = 1536;  // GA104
  spec.copy_engines = 2;
  spec.ecc = true;
  spec.global_bw_gbps = 448.0;
  spec.clock_ghz = 1.56;
  return spec;
}

DeviceSpec GeForceRtx3080Ti() {
  DeviceSpec spec;
  spec.name = "RTX 3080 Ti";
  spec.compute_capability = "8.6";
  spec.sms = 80;
  spec.cuda_cores = 10240;
  spec.l1_kb = 128;
  spec.l2_kb = 6144;
  spec.global_mem_bytes = 12ull << 30;
  spec.regs_per_thread = 255;
  spec.max_threads_per_sm = 1536;  // GA102
  spec.copy_engines = 2;
  spec.ecc = false;
  spec.global_bw_gbps = 912.0;
  spec.clock_ghz = 1.67;
  return spec;
}

}  // namespace grd::simgpu
