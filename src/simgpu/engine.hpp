// Event-driven spatial-sharing engine.
//
// Models the GPU as two shared resources: execution lanes (CUDA cores) and
// the PCIe link. Each stream executes its operation queue in order (CUDA
// stream semantics, paper §2.1); operations from *different* streams run
// concurrently and share resources via max-min fair (water-filling)
// allocation capped by each operation's own parallelism. This reproduces the
// paper's spatial-sharing behaviour: co-running low-occupancy kernels overlap
// almost perfectly (Figure 6 workloads B/D show ~2x gain), while
// resource-saturating kernels contend and the gain shrinks.
//
// Time-sharing (the native baseline) is expressed on the same engine by
// enqueueing all clients into one stream with context-switch delays between
// client switches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "simgpu/device_spec.hpp"

namespace grd::simgpu {

struct GpuOp {
  enum class Kind : std::uint8_t {
    kKernel,      // work = lane-cycles, max_rate = max concurrent lanes
    kMemcpy,      // work = bytes, max_rate = bytes/cycle cap (usually link speed)
    kDelay,       // fixed host-side latency in cycles (uncontended)
    kHostSerial,  // host work on a SINGLE shared dispatcher (capacity 1):
                  // models the MPS server / grdManager dispatch loop, which
                  // serializes across clients and becomes the bottleneck with
                  // thousands of pending kernels (paper §7.1, workloads D/H/K/P)
  };

  Kind kind = Kind::kKernel;
  double work = 0.0;
  double max_rate = 1.0;
  std::string label;

  static GpuOp Kernel(double lane_cycles, double max_lanes,
                      std::string label = {}) {
    return {Kind::kKernel, lane_cycles, max_lanes, std::move(label)};
  }
  static GpuOp Memcpy(double bytes, double max_bytes_per_cycle,
                      std::string label = {}) {
    return {Kind::kMemcpy, bytes, max_bytes_per_cycle, std::move(label)};
  }
  static GpuOp Delay(double cycles, std::string label = {}) {
    return {Kind::kDelay, cycles, 1.0, std::move(label)};
  }
  static GpuOp HostSerial(double cycles, std::string label = {}) {
    return {Kind::kHostSerial, cycles, 1.0, std::move(label)};
  }
};

// Convenience: lane-cycles and max-lane demand for a kernel with
// `threads` total threads each costing `thread_cycles`.
GpuOp MakeKernelOp(const DeviceSpec& spec, double thread_cycles,
                   std::uint64_t threads, std::string label = {});

class SharingEngine {
 public:
  using StreamId = std::size_t;

  explicit SharingEngine(const DeviceSpec& spec) : spec_(spec) {}

  StreamId AddStream();
  void Enqueue(StreamId stream, GpuOp op);

  struct RunResult {
    double total_cycles = 0.0;               // makespan
    std::vector<double> stream_finish;       // per-stream completion time
    double lane_busy_integral = 0.0;         // for utilization reporting
    double Utilization(const DeviceSpec& spec) const {
      return total_cycles > 0.0
                 ? lane_busy_integral / (total_cycles * spec.cuda_cores)
                 : 0.0;
    }
  };

  // Simulates to completion and resets the queues.
  RunResult Run();

 private:
  DeviceSpec spec_;
  std::vector<std::vector<GpuOp>> streams_;
};

}  // namespace grd::simgpu
