// Small string helpers shared by the PTX toolchain and report printers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace grd {

std::string ToHex(std::uint64_t v);

// "176 MB", "2.8 GB" style human-readable byte counts (paper §2.2 numbers).
std::string HumanBytes(std::uint64_t bytes);

std::vector<std::string_view> SplitLines(std::string_view text);

std::string_view TrimWhitespace(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);

// Join with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace grd
