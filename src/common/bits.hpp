// Bit/alignment helpers. Guardian partitions are power-of-two sized and
// size-aligned so the fencing mask is `size - 1` (paper §4.4).
#pragma once

#include <bit>
#include <cstdint>

namespace grd {

constexpr bool IsPowerOfTwo(std::uint64_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

// Smallest power of two >= v (v = 0 maps to 1).
constexpr std::uint64_t NextPowerOfTwo(std::uint64_t v) noexcept {
  return std::bit_ceil(v == 0 ? std::uint64_t{1} : v);
}

constexpr std::uint64_t AlignUp(std::uint64_t v, std::uint64_t align) noexcept {
  return (v + align - 1) & ~(align - 1);
}

constexpr std::uint64_t AlignDown(std::uint64_t v, std::uint64_t align) noexcept {
  return v & ~(align - 1);
}

constexpr bool IsAligned(std::uint64_t v, std::uint64_t align) noexcept {
  return (v & (align - 1)) == 0;
}

// Mask for a power-of-two partition of `size` bytes: low bits that select an
// offset inside the partition (paper Figure 4: size 16 MB -> 0x000000FFFFFF).
constexpr std::uint64_t PartitionMask(std::uint64_t size) noexcept {
  return size - 1;
}

// The paper's address-fencing transform (Listing 1, lines 26-28):
//   fenced = (addr & mask) | base
// Identity for in-partition addresses; wraps out-of-partition addresses back
// into [base, base+size).
constexpr std::uint64_t FenceAddress(std::uint64_t addr, std::uint64_t base,
                                     std::uint64_t mask) noexcept {
  return (addr & mask) | base;
}

// Address-fencing with modulo (paper §4.4):
//   fenced = base + ((addr - base) % size)
// Valid for arbitrary (non power-of-two) partition sizes. Note: matches the
// paper's formula, which for addr < base relies on unsigned wraparound.
constexpr std::uint64_t FenceAddressModulo(std::uint64_t addr,
                                           std::uint64_t base,
                                           std::uint64_t size) noexcept {
  return base + ((addr - base) % size);
}

}  // namespace grd
