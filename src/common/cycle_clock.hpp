// CycleClock: cycle-granularity timestamps for the Table 5 host-side
// micro-measurements (the paper uses rdtsc). Falls back to a
// steady_clock-derived pseudo-cycle count on non-x86 targets.
#pragma once

#include <cstdint>

namespace grd {

class CycleClock {
 public:
  // Current timestamp-counter value.
  static std::uint64_t Now() noexcept;

  // Measure `fn` and return elapsed cycles. Meant for micro-benchmarks, so
  // it does not attempt serialization; callers should repeat and aggregate.
  template <typename Fn>
  static std::uint64_t Measure(Fn&& fn) noexcept(noexcept(fn())) {
    const std::uint64_t begin = Now();
    fn();
    return Now() - begin;
  }
};

}  // namespace grd
