// Status / Result<T>: lightweight error propagation used across all Guardian
// modules. We deliberately avoid exceptions on hot paths (CUDA-call
// interception, kernel launch) and return Status codes mirroring the CUDA
// error model; exceptions are reserved for programming errors.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace grd {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfMemory,
  kOutOfRange,       // bounds-check violation (address checking mode)
  kPermissionDenied, // operation touches another tenant's partition
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kUnavailable,      // e.g. MPS server crashed / channel closed
  kAborted,          // e.g. client killed by fault propagation
  kDeadlineExceeded,
};

std::string_view StatusCodeName(StatusCode code) noexcept;

// Value-semantic status: code + optional message. `Ok()` carries no
// allocation; error paths may allocate for the message.
class [[nodiscard]] Status {
 public:
  Status() noexcept : code_(StatusCode::kOk) {}
  explicit Status(StatusCode code, std::string message = {})
      : code_(code), message_(std::move(message)) {}

  static Status Ok() noexcept { return Status(); }

  bool ok() const noexcept { return code_ == StatusCode::kOk; }
  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

inline Status OkStatus() noexcept { return Status::Ok(); }
Status InvalidArgument(std::string msg);
Status NotFound(std::string msg);
Status AlreadyExists(std::string msg);
Status OutOfMemory(std::string msg);
Status OutOfRange(std::string msg);
Status PermissionDenied(std::string msg);
Status FailedPrecondition(std::string msg);
Status Unimplemented(std::string msg);
Status Internal(std::string msg);
Status Unavailable(std::string msg);
Status Aborted(std::string msg);
Status DeadlineExceeded(std::string msg);

// Result<T>: either a value or a non-OK Status. Minimal expected<T>-style
// type so the codebase does not depend on std::expected availability.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : storage_(std::move(status)) {}  // NOLINT

  bool ok() const noexcept { return std::holds_alternative<T>(storage_); }

  const Status& status() const noexcept {
    static const Status kOk{};
    if (ok()) return kOk;
    return std::get<Status>(storage_);
  }

  T& value() & { return std::get<T>(storage_); }
  const T& value() const& { return std::get<T>(storage_); }
  T&& value() && { return std::get<T>(std::move(storage_)); }

  T value_or(T fallback) const& {
    return ok() ? std::get<T>(storage_) : std::move(fallback);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> storage_;
};

// Propagate a non-OK status from an expression producing Status.
#define GRD_RETURN_IF_ERROR(expr)                        \
  do {                                                   \
    ::grd::Status grd_status_ = (expr);                  \
    if (!grd_status_.ok()) return grd_status_;           \
  } while (0)

// Assign the value of a Result<T> expression or propagate its status.
#define GRD_ASSIGN_OR_RETURN(lhs, expr)                  \
  GRD_ASSIGN_OR_RETURN_IMPL_(                            \
      GRD_STATUS_CONCAT_(grd_result_, __LINE__), lhs, expr)
#define GRD_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)       \
  auto tmp = (expr);                                     \
  if (!tmp.ok()) return tmp.status();                    \
  lhs = std::move(tmp).value()
#define GRD_STATUS_CONCAT_(a, b) GRD_STATUS_CONCAT_IMPL_(a, b)
#define GRD_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace grd
