// Minimal leveled logger. Defaults to WARN so tests/benches stay quiet; the
// examples raise it to INFO to narrate the Guardian call flow.
//
// Every line is prefixed with a monotonic timestamp (seconds since process
// start, microsecond resolution) so log lines correlate with trace spans —
// both derive from CLOCK_MONOTONIC.
//
// Levels come from the `GRD_LOG` environment variable, parsed once at first
// use. The spec is a comma-separated list of entries; a bare level sets the
// global floor and `component=level` overrides one component:
//
//   GRD_LOG=debug                          everything at DEBUG
//   GRD_LOG=ManagerServer=debug            only ManagerServer verbose
//   GRD_LOG=error,grdManager=debug         quiet except grdManager
#pragma once

#include <cstdint>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace grd {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Parsed form of a GRD_LOG spec (see header comment for the grammar).
struct LogSpec {
  bool has_global = false;
  LogLevel global = LogLevel::kWarn;
  std::vector<std::pair<std::string, LogLevel>> components;
};

// Parses "warn,ManagerServer=debug"-style specs. Unknown level names and
// malformed entries are skipped, never fatal: a bad GRD_LOG must not take
// the process down, it just logs at the defaults.
LogSpec ParseLogSpec(std::string_view spec);

class Logger {
 public:
  static Logger& Instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  LogLevel level() const noexcept { return level_; }

  // The effective threshold for one component (override, else global).
  LogLevel LevelFor(std::string_view component) const;

  // Replaces the per-component overrides (and the global level if the spec
  // carries one). Called with the GRD_LOG value at startup; tests call it
  // directly.
  void ApplySpec(const LogSpec& spec);

  void Write(LogLevel level, std::string_view component, std::string_view msg);

  // Nanoseconds of CLOCK_MONOTONIC at process start (first Logger use);
  // timestamps are rendered relative to it.
  std::uint64_t start_ns() const noexcept { return start_ns_; }

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  std::vector<std::pair<std::string, LogLevel>> overrides_;
  std::uint64_t start_ns_ = 0;
  std::mutex mu_;
};

namespace internal {
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() { Logger::Instance().Write(level_, component_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};
}  // namespace internal

#define GRD_LOG(level, component) ::grd::internal::LogLine(level, component)
#define GRD_LOG_DEBUG(component) GRD_LOG(::grd::LogLevel::kDebug, component)
#define GRD_LOG_INFO(component) GRD_LOG(::grd::LogLevel::kInfo, component)
#define GRD_LOG_WARN(component) GRD_LOG(::grd::LogLevel::kWarn, component)
#define GRD_LOG_ERROR(component) GRD_LOG(::grd::LogLevel::kError, component)

}  // namespace grd
