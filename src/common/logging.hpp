// Minimal leveled logger. Defaults to WARN so tests/benches stay quiet; the
// examples raise it to INFO to narrate the Guardian call flow.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string_view>

namespace grd {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

class Logger {
 public:
  static Logger& Instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  LogLevel level() const noexcept { return level_; }

  void Write(LogLevel level, std::string_view component, std::string_view msg);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::mutex mu_;
};

namespace internal {
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() { Logger::Instance().Write(level_, component_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};
}  // namespace internal

#define GRD_LOG(level, component) ::grd::internal::LogLine(level, component)
#define GRD_LOG_DEBUG(component) GRD_LOG(::grd::LogLevel::kDebug, component)
#define GRD_LOG_INFO(component) GRD_LOG(::grd::LogLevel::kInfo, component)
#define GRD_LOG_WARN(component) GRD_LOG(::grd::LogLevel::kWarn, component)
#define GRD_LOG_ERROR(component) GRD_LOG(::grd::LogLevel::kError, component)

}  // namespace grd
