#include "common/strings.hpp"

#include <cstdio>

namespace grd {

std::string ToHex(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string HumanBytes(std::uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (value == static_cast<std::uint64_t>(value)) {
    std::snprintf(buf, sizeof(buf), "%llu %s",
                  static_cast<unsigned long long>(value), units[unit]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, units[unit]);
  }
  return buf;
}

std::vector<std::string_view> SplitLines(std::string_view text) {
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::string_view TrimWhitespace(std::string_view s) {
  const char* ws = " \t\r\n";
  const std::size_t first = s.find_first_not_of(ws);
  if (first == std::string_view::npos) return {};
  const std::size_t last = s.find_last_not_of(ws);
  return s.substr(first, last - first + 1);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace grd
