#include "common/logging.hpp"

namespace grd {

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

void Logger::Write(LogLevel level, std::string_view component,
                   std::string_view msg) {
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  static constexpr std::string_view kNames[] = {"DEBUG", "INFO", "WARN",
                                                "ERROR"};
  std::lock_guard<std::mutex> lock(mu_);
  std::clog << '[' << kNames[static_cast<int>(level)] << "] [" << component
            << "] " << msg << '\n';
}

}  // namespace grd
