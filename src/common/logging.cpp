#include "common/logging.hpp"

#include <time.h>

#include <cstdio>
#include <cstdlib>

namespace grd {
namespace {

std::uint64_t MonotonicNs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

bool ParseLevelName(std::string_view name, LogLevel* out) {
  if (name == "debug") *out = LogLevel::kDebug;
  else if (name == "info") *out = LogLevel::kInfo;
  else if (name == "warn" || name == "warning") *out = LogLevel::kWarn;
  else if (name == "error") *out = LogLevel::kError;
  else return false;
  return true;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
    s.remove_suffix(1);
  return s;
}

}  // namespace

LogSpec ParseLogSpec(std::string_view spec) {
  LogSpec out;
  while (!spec.empty()) {
    const std::size_t comma = spec.find(',');
    std::string_view entry = Trim(spec.substr(0, comma));
    spec = comma == std::string_view::npos ? std::string_view{}
                                           : spec.substr(comma + 1);
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    LogLevel level;
    if (eq == std::string_view::npos) {
      if (ParseLevelName(entry, &level)) {
        out.has_global = true;
        out.global = level;
      }
      continue;
    }
    const std::string_view component = Trim(entry.substr(0, eq));
    if (component.empty()) continue;
    if (ParseLevelName(Trim(entry.substr(eq + 1)), &level))
      out.components.emplace_back(std::string(component), level);
  }
  return out;
}

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() : start_ns_(MonotonicNs()) {
  if (const char* env = std::getenv("GRD_LOG")) ApplySpec(ParseLogSpec(env));
}

void Logger::ApplySpec(const LogSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spec.has_global) level_ = spec.global;
  overrides_ = spec.components;
}

LogLevel Logger::LevelFor(std::string_view component) const {
  // Overrides are few (one per GRD_LOG entry); a linear scan beats a map
  // for the sizes involved and keeps this callable before main().
  for (const auto& [name, level] : overrides_)
    if (name == component) return level;
  return level_;
}

void Logger::Write(LogLevel level, std::string_view component,
                   std::string_view msg) {
  if (static_cast<int>(level) < static_cast<int>(LevelFor(component))) return;
  static constexpr std::string_view kNames[] = {"DEBUG", "INFO", "WARN",
                                                "ERROR"};
  // Monotonic seconds since process start, microsecond resolution: the same
  // clock the trace spans use, so log lines line up with trace.json.
  const std::uint64_t elapsed_ns = MonotonicNs() - start_ns_;
  char stamp[32];
  std::snprintf(stamp, sizeof(stamp), "%llu.%06llu",
                static_cast<unsigned long long>(elapsed_ns / 1'000'000'000ull),
                static_cast<unsigned long long>((elapsed_ns / 1000ull) %
                                                1'000'000ull));
  std::lock_guard<std::mutex> lock(mu_);
  std::clog << '[' << stamp << "] [" << kNames[static_cast<int>(level)]
            << "] [" << component << "] " << msg << '\n';
}

}  // namespace grd
