// Deterministic xoshiro256** RNG. All simulator randomness (cache-hit draws,
// workload jitter, property-test inputs) flows through this so experiments
// are reproducible run to run.
#pragma once

#include <cstdint>
#include <cstdlib>

namespace grd {

// Seed override for randomized tests: reads an integer (decimal or 0x hex)
// from `env_var`, falling back to `fallback` when unset or malformed. The
// fuzz suites seed their Rng through this and print the effective value on
// failure, so a red randomized run reproduces with e.g.
// `GRD_FUZZ_SEED=0xBAD5EED ctest -R ptxexec_program`.
inline std::uint64_t SeedFromEnv(const char* env_var,
                                 std::uint64_t fallback) noexcept {
  const char* raw = std::getenv(env_var);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(raw, &end, 0);
  return end != nullptr && *end == '\0' ? parsed : fallback;
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept {
    // splitmix64 expansion of the seed into the 4-word state.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9E3779B97F4A7C15ull;
      std::uint64_t w = z;
      w = (w ^ (w >> 30)) * 0xBF58476D1CE4E5B9ull;
      w = (w ^ (w >> 27)) * 0x94D049BB133111EBull;
      s = w ^ (w >> 31);
    }
  }

  std::uint64_t Next() noexcept {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t NextBelow(std::uint64_t bound) noexcept {
    return bound == 0 ? 0 : Next() % bound;
  }

  // Uniform in [lo, hi].
  std::uint64_t NextInRange(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + NextBelow(hi - lo + 1);
  }

  // Uniform in [0, 1).
  double NextDouble() noexcept {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli draw with probability p.
  bool NextBool(double p) noexcept { return NextDouble() < p; }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace grd
