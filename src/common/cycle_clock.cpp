#include "common/cycle_clock.hpp"

#include <chrono>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace grd {

std::uint64_t CycleClock::Now() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  // Assume ~1 cycle/ns; good enough for relative comparisons in Table 5.
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

}  // namespace grd
