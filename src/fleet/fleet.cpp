#include "fleet/fleet.hpp"

#include <time.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <thread>
#include <vector>

#include "common/logging.hpp"
#include "guardian/process_server.hpp"
#include "guardian/protocol.hpp"
#include "guardian/transport.hpp"
#include "ipc/channel.hpp"
#include "ipc/serializer.hpp"
#include "obs/trace.hpp"

namespace grd::fleet {
namespace {

using guardian::GrdLib;
using guardian::GrdLibOptions;
using protocol::Op;
using simcuda::DevicePtr;

void SleepNs(std::uint64_t ns) {
  timespec deadline;
  clock_gettime(CLOCK_MONOTONIC, &deadline);
  deadline.tv_sec += static_cast<time_t>(ns / 1'000'000'000);
  deadline.tv_nsec += static_cast<long>(ns % 1'000'000'000);
  if (deadline.tv_nsec >= 1'000'000'000) {
    deadline.tv_sec += 1;
    deadline.tv_nsec -= 1'000'000'000;
  }
  while (clock_nanosleep(CLOCK_MONOTONIC, TIMER_ABSTIME, &deadline,
                         nullptr) == EINTR) {
  }
}

// The stalled-tenant fault: a burst of large D2H reads issued raw (past the
// transport), then the client goes silent instead of draining its response
// ring. The worker pump must park at most one response for this channel and
// keep serving its co-resident channels; when the tenant wakes, every
// response is still there, in order.
Status RunStalledBurst(ipc::Channel& channel, GrdLib& lib,
                       std::chrono::nanoseconds timeout,
                       std::uint64_t ring_bytes) {
  const std::uint64_t chunk =
      std::clamp<std::uint64_t>(ring_bytes / 4, 1024, 1u << 20);
  DevicePtr buf = 0;
  GRD_RETURN_IF_ERROR(lib.cudaMalloc(&buf, chunk));
  constexpr int kBurst = 6;
  int written = 0;
  Status burst = OkStatus();
  for (; written < kBurst; ++written) {
    ipc::Writer request;
    protocol::WriteHeader(request, Op::kMemcpyD2H, lib.client_id());
    request.Put<std::uint64_t>(buf);
    request.Put<std::uint64_t>(chunk);
    burst = channel.request().WriteWithDeadline(std::move(request).Take(),
                                                timeout);
    if (!burst.ok()) break;
  }
  // Silence: longer than the pump's park deadline, shorter than ours.
  SleepNs(10'000'000);
  for (int i = 0; i < written; ++i) {
    auto response = channel.response().ReadWithDeadline(timeout);
    if (!response.ok()) {
      // Pairing repair: the worker still owes responses this loop failed to
      // collect. Drain until the ring stays silent so the session's later
      // transport calls cannot mis-pair with a stale burst response.
      while (channel.response()
                 .ReadWithDeadline(std::chrono::milliseconds(20))
                 .ok()) {
      }
      return response.status();
    }
    auto decoded = protocol::DecodeResponse(*response);
    if (!decoded.ok()) burst = decoded.status();
  }
  GRD_RETURN_IF_ERROR(burst);
  return lib.cudaFree(buf);
}

}  // namespace

Fleet::Fleet(FleetOptions options) : options_(options) {
  options_.stalled_tenants =
      std::min(options_.stalled_tenants, options_.channels);
}

void Fleet::BindTo(obs::MetricsRegistry& registry) const {
  slo_.BindTo(registry);
  registry.Counter("fleet_request_cycles", &progress_);
  registry.Counter("fleet_sessions_started", &sessions_started_);
  registry.Counter("fleet_sessions_completed", &sessions_completed_);
  registry.Counter("fleet_victims", &victims_);
  registry.Counter("fleet_victims_recovered", &victims_recovered_);
  registry.Counter("fleet_retry_exhausted", &retry_exhausted_);
  registry.Counter("fleet_recoveries", &recoveries_);
  registry.Counter("fleet_recovery_retries", &recovery_retries_);
  registry.Counter("fleet_resume_attaches", &resume_attaches_);
  registry.Counter("fleet_connect_failures", &connect_failures_);
  registry.Counter("fleet_stalls_injected", &stalls_injected_);
}

Status Fleet::Run() {
  const bool frame_chaos = options_.chaos.torn_frames +
                               options_.chaos.truncated_frames +
                               options_.chaos.garbage_frames >
                           0;
  guardian::ProcessServerOptions server_opts;
  server_opts.workers = options_.workers;
  // Frame faults land on a reserved extra channel no tenant uses: they
  // prove ring containment without desynchronizing a live session's
  // request/response pairing.
  server_opts.channels = options_.channels + (frame_chaos ? 1 : 0);
  server_opts.layout.max_channels = server_opts.channels;
  server_opts.layout.max_workers = std::max(options_.workers, 1u);
  server_opts.layout.max_sessions = options_.channels * 2 + 16;
  server_opts.layout.ring_bytes = options_.ring_bytes;
  server_opts.manager.tracing_enabled = options_.tracing;
  // Multi-device fleet: each worker owns `devices_per_worker` replicas of
  // the default device and places/migrates its sessions across them.
  for (std::uint32_t d = 1; d < options_.devices_per_worker; ++d)
    server_opts.extra_devices.push_back(server_opts.device);
  server_opts.manager.migrate_queue_threshold =
      options_.migrate_queue_threshold;

  GRD_ASSIGN_OR_RETURN(std::unique_ptr<guardian::ProcessServer> server,
                       guardian::ProcessServer::Create(server_opts));
  GRD_RETURN_IF_ERROR(server->Start());
  if (!server->WaitForChannelOwners())
    return Internal("fleet worker pool failed to claim its channels");

  ChaosController chaos(server.get(), options_.chaos);
  if (frame_chaos)
    chaos.ArmRing(&server->channel(options_.channels).request());
  chaos.Start(&progress_);

  const auto wall_begin = std::chrono::steady_clock::now();
  std::vector<std::thread> drivers;
  drivers.reserve(options_.channels);
  for (std::uint32_t ch = 0; ch < options_.channels; ++ch) {
    drivers.emplace_back([this, &server, ch] {
      Rng rng(options_.seed * 0x9E3779B97F4A7C15ull + ch + 1);
      // First *successful* session on a stalled channel goes silent after
      // its work (a crashed first session would otherwise skip the fault).
      bool stall_pending = ch < options_.stalled_tenants;
      for (std::uint32_t s = 0; s < options_.sessions_per_channel; ++s) {
        sessions_started_.fetch_add(1, std::memory_order_relaxed);
        TenantSpec spec = rng.NextDouble() < options_.realtime_fraction
                              ? MakeRealtimeInferenceSpec()
                              : MakeBatchTrainingSpec();
        spec.requests = options_.requests_per_session;

        guardian::ChannelTransport transport(&server->channel(ch),
                                             options_.call_timeout);
        GrdLibOptions lib_opts;
        lib_opts.recovery_attempts = options_.recovery_attempts;
        auto lib = GrdLib::Connect(&transport, 2u << 20, lib_opts);
        if (!lib.ok()) {
          connect_failures_.fetch_add(1, std::memory_order_relaxed);
          sessions_finished_.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        (void)lib->SetPriority(spec.priority);

        Status st = RunTenantSession(*lib, spec, rng, slo_, &progress_);
        if (st.ok() && stall_pending) {
          stall_pending = false;
          stalls_injected_.fetch_add(1, std::memory_order_relaxed);
          st = RunStalledBurst(server->channel(ch), *lib,
                               options_.call_timeout, options_.ring_bytes);
        }
        if (!st.ok() && (st.code() == StatusCode::kUnavailable ||
                         st.code() == StatusCode::kDeadlineExceeded)) {
          // Victim: its worker died (or wedged) under it. grdLib has
          // already re-registered the session and replayed the module
          // journal; rebuild device state by re-running the cycle.
          victims_.fetch_add(1, std::memory_order_relaxed);
          for (int attempt = 0; attempt < 4 && !st.ok(); ++attempt) {
            if (st.code() != StatusCode::kUnavailable &&
                st.code() != StatusCode::kDeadlineExceeded)
              break;
            st = RunTenantSession(*lib, spec, rng, slo_, &progress_);
          }
          if (st.ok()) {
            victims_recovered_.fetch_add(1, std::memory_order_relaxed);
          } else if (st.code() == StatusCode::kUnavailable ||
                     st.code() == StatusCode::kDeadlineExceeded) {
            // All 4 rebuild attempts burned and the session is still on a
            // retryable failure: terminal exhaustion, its own counter (and
            // gate) so it cannot hide inside the recovered-vs-victims diff.
            retry_exhausted_.fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (st.ok())
          sessions_completed_.fetch_add(1, std::memory_order_relaxed);
        recoveries_.fetch_add(lib->recoveries(), std::memory_order_relaxed);
        recovery_retries_.fetch_add(lib->recovery_retries(),
                                    std::memory_order_relaxed);
        resume_attaches_.fetch_add(lib->resume_attaches(),
                                   std::memory_order_relaxed);
        (void)lib->Disconnect();
        sessions_finished_.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& driver : drivers) driver.join();
  const auto wall_end = std::chrono::steady_clock::now();
  chaos.Stop();

  // Snapshot server-side counters before teardown.
  guardian::SharedPoolCounters& counters = server->state().counters();
  report_.synthetic_responses = counters.synthetic_responses.load();
  report_.workers_respawned = counters.workers_respawned.load();
  report_.sessions_crash_failed = counters.sessions_crash_failed.load();
  // Adoption/migration outcomes aggregate in the pool's shared ManagerStats.
  const guardian::ManagerStats& pool_stats = server->state().stats();
  report_.sessions_adopted = pool_stats.sessions_adopted.load();
  report_.sessions_migrated = pool_stats.sessions_migrated.load();
  report_.checkpoint_kernels_resumed =
      pool_stats.checkpoint_kernels_resumed.load();
  report_.frames_corrupt = 0;
  for (std::uint32_t i = 0; i < server_opts.channels; ++i)
    report_.frames_corrupt += server->channel(i).request().frames_corrupt() +
                              server->channel(i).response().frames_corrupt();
  // The span arena is shared-region memory: export before Stop unbinds the
  // recorder and the region goes away with the server.
  if (options_.tracing && !options_.trace_path.empty()) {
    const Status exported = obs::TraceExporter::WriteFile(options_.trace_path);
    if (!exported.ok())
      GRD_LOG_WARN("Fleet") << "trace export failed: "
                            << exported.ToString();
  }
  server->Stop();

  const ClassSlo& rt = slo_.cls(protocol::PriorityClass::kRealtime);
  const ClassSlo& batch = slo_.cls(protocol::PriorityClass::kBatch);
  report_.realtime_requests = rt.requests.load();
  report_.realtime_ok = rt.ok.load();
  report_.realtime_p50_ns = rt.latency.PercentileNs(0.50);
  report_.realtime_p99_ns = rt.latency.PercentileNs(0.99);
  report_.batch_requests = batch.requests.load();
  report_.batch_ok = batch.ok.load();
  report_.batch_p99_ns = batch.latency.PercentileNs(0.99);
  report_.deadline_exceeded = 0;
  for (int c = 0; c < protocol::kPriorityClassCount; ++c)
    report_.deadline_exceeded +=
        slo_.cls(static_cast<protocol::PriorityClass>(c))
            .deadline_exceeded.load();
  report_.sessions =
      static_cast<std::uint64_t>(options_.channels) *
      options_.sessions_per_channel;
  report_.sessions_completed = sessions_completed_.load();
  report_.victims = victims_.load();
  report_.victims_recovered = victims_recovered_.load();
  report_.retry_exhausted = retry_exhausted_.load();
  report_.recoveries = recoveries_.load();
  report_.recovery_retries = recovery_retries_.load();
  report_.resume_attaches = resume_attaches_.load();
  report_.connect_failures = connect_failures_.load();
  report_.stalls_injected = stalls_injected_.load();
  report_.hangs = sessions_started_.load() - sessions_finished_.load();
  report_.kills = chaos.kills_injected();
  report_.delays = chaos.delays_injected();
  report_.torn_frames = chaos.torn_injected();
  report_.truncated_frames = chaos.truncated_injected();
  report_.garbage_frames = chaos.garbage_injected();
  report_.wall_ms = std::chrono::duration<double, std::milli>(wall_end -
                                                              wall_begin)
                        .count();
  return OkStatus();
}

}  // namespace grd::fleet
