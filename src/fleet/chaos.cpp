#include "fleet/chaos.hpp"

#include <signal.h>
#include <time.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

namespace grd::fleet {
namespace {

void SleepMicros(std::int64_t us) {
  timespec deadline;
  clock_gettime(CLOCK_MONOTONIC, &deadline);
  deadline.tv_sec += us / 1'000'000;
  deadline.tv_nsec += (us % 1'000'000) * 1000;
  if (deadline.tv_nsec >= 1'000'000'000) {
    deadline.tv_sec += 1;
    deadline.tv_nsec -= 1'000'000'000;
  }
  while (clock_nanosleep(CLOCK_MONOTONIC, TIMER_ABSTIME, &deadline,
                         nullptr) == EINTR) {
  }
}

}  // namespace

void ChaosController::InjectGarbageFrame(ipc::ShmRing& ring, Rng& rng) {
  ipc::Bytes junk(24 + rng.NextBelow(40));
  for (auto& byte : junk) byte = static_cast<std::uint8_t>(rng.Next());
  (void)ring.TryWrite(junk);
}

void ChaosController::InjectTornFrame(ipc::ShmRing& ring, Rng& rng) {
  // Length prefix promising far more payload than will ever arrive, plus a
  // few junk bytes — the shape a writer killed mid-copy would leave if the
  // publish protocol were broken. TryRead must clamp and count it.
  std::uint8_t frame[12];
  const std::uint32_t claimed =
      static_cast<std::uint32_t>(ring.capacity() + 1 + rng.NextBelow(4096));
  std::memcpy(frame, &claimed, sizeof(claimed));
  for (std::size_t i = sizeof(claimed); i < sizeof(frame); ++i)
    frame[i] = static_cast<std::uint8_t>(rng.Next());
  (void)ring.InjectRaw(frame, sizeof(frame));
}

void ChaosController::InjectTruncatedFrame(ipc::ShmRing& ring) {
  // Not even a whole length prefix: impossible under the publish protocol,
  // so the reader must treat it as corruption, not wait for more bytes.
  const std::uint8_t stub[2] = {0xde, 0xad};
  (void)ring.InjectRaw(stub, sizeof(stub));
}

pid_t ChaosController::PickWorkerPid(Rng& rng) const {
  const std::uint32_t workers = server_->options().workers;
  const std::uint32_t start = static_cast<std::uint32_t>(
      rng.NextBelow(workers == 0 ? 1 : workers));
  for (std::uint32_t i = 0; i < workers; ++i) {
    const pid_t pid = server_->worker_pid((start + i) % workers);
    if (pid > 0) return pid;
  }
  return -1;
}

pid_t ChaosController::PickMidGridWorkerPid(Rng& rng) const {
  const std::uint32_t workers = server_->options().workers;
  const std::uint32_t sessions = server_->options().layout.max_sessions;
  if (workers == 0 || sessions == 0) return -1;
  guardian::SharedServingState& state = server_->state();
  const std::uint32_t start =
      static_cast<std::uint32_t>(rng.NextBelow(sessions));
  for (std::uint32_t i = 0; i < sessions; ++i) {
    guardian::SharedSessionSlot& slot =
        state.session_slot((start + i) % sessions);
    if (slot.state.load(std::memory_order_acquire) !=
        static_cast<std::uint32_t>(guardian::SessionSlotState::kActive))
      continue;
    if (slot.journal.pending_state.load(std::memory_order_acquire) != 1)
      continue;
    // Stable once armed (published before pending_state, single writer).
    const std::uint64_t grid =
        static_cast<std::uint64_t>(slot.journal.pending_grid[0]) *
        slot.journal.pending_grid[1] * slot.journal.pending_grid[2];
    std::uint64_t done = 0;
    for (const auto& word : slot.journal.pending_done)
      done += static_cast<std::uint64_t>(
          __builtin_popcountll(word.load(std::memory_order_acquire)));
    // EARLY grid only: at least one block journaled (so the resume has a
    // checkpoint to rebuild) but no more than a quarter done (so the grid
    // still has runway and the SIGKILL beats the kernel's completion).
    if (done == 0 || done > grid / 4) continue;
    const std::uint32_t owner =
        slot.owner_worker.load(std::memory_order_acquire);
    if (owner >= workers) continue;
    const pid_t pid = server_->worker_pid(owner);
    if (pid > 0) return pid;
  }
  return -1;
}

pid_t ChaosController::PickBusyWorkerPid(Rng& rng) const {
  const std::uint32_t workers = server_->options().workers;
  const std::uint32_t channels = server_->options().channels;
  if (workers == 0 || channels == 0) return -1;
  const std::uint32_t start =
      static_cast<std::uint32_t>(rng.NextBelow(channels));
  for (std::uint32_t i = 0; i < channels; ++i) {
    const std::uint32_t ch = (start + i) % channels;
    ipc::Channel& channel = server_->channel(ch);
    // Consumed-but-unanswered request: the owning worker is inside
    // HandleRequest right now (decoding, or parked in a synchronous kernel).
    if (channel.request().messages_read() <=
        channel.response().messages_written())
      continue;
    const std::uint32_t owner = server_->channel_owner(ch);
    if (owner >= workers) continue;
    const pid_t pid = server_->worker_pid(owner);
    if (pid > 0) return pid;
  }
  return -1;
}

void ChaosController::Start(const std::atomic<std::uint64_t>* progress) {
  stop_.store(false, std::memory_order_release);
  injector_ = std::thread([this, progress] { Loop(progress); });
}

void ChaosController::Stop() {
  stop_.store(true, std::memory_order_release);
  if (injector_.joinable()) injector_.join();
}

void ChaosController::Loop(const std::atomic<std::uint64_t>* progress) {
  Rng rng(options_.seed);
  std::vector<Event> schedule;
  for (std::uint32_t i = 0; i < options_.worker_kills; ++i)
    schedule.push_back(Event::kKill);
  for (std::uint32_t i = 0; i < options_.delays; ++i)
    schedule.push_back(Event::kDelay);
  for (std::uint32_t i = 0; i < options_.torn_frames; ++i)
    schedule.push_back(Event::kTorn);
  for (std::uint32_t i = 0; i < options_.truncated_frames; ++i)
    schedule.push_back(Event::kTruncated);
  for (std::uint32_t i = 0; i < options_.garbage_frames; ++i)
    schedule.push_back(Event::kGarbage);
  // Seeded Fisher-Yates: the same seed replays the same fault order.
  for (std::size_t i = schedule.size(); i > 1; --i)
    std::swap(schedule[i - 1], schedule[rng.NextBelow(i)]);

  for (const Event event : schedule) {
    if (stop_.load(std::memory_order_acquire)) return;
    const std::int64_t span =
        options_.max_gap.count() - options_.min_gap.count();
    SleepMicros(options_.min_gap.count() +
                (span > 0 ? static_cast<std::int64_t>(rng.NextBelow(
                                static_cast<std::uint64_t>(span)))
                          : 0));
    switch (event) {
      case Event::kKill: {
        // Hold fire until the fleet has made real progress, so the kill
        // lands mid-traffic; give up waiting only on stop.
        while (progress != nullptr &&
               progress->load(std::memory_order_relaxed) <
                   options_.min_requests_before_kill &&
               !stop_.load(std::memory_order_acquire))
          SleepMicros(200);
        // Prefer a worker whose session journal shows a kernel MID-GRID
        // right now (armed pending mirror, >= 1 block done): that kill is
        // the adoption / checkpoint-resume scenario this harness exists to
        // exercise. Poll briefly; degrade to any mid-request worker, then to
        // any live worker, so the kill always lands.
        pid_t pid = -1;
        for (int spin = 0; spin < 250 && pid <= 0 &&
                           !stop_.load(std::memory_order_acquire);
             ++spin) {
          pid = PickMidGridWorkerPid(rng);
          if (pid <= 0) SleepMicros(200);
        }
        if (pid <= 0) pid = PickBusyWorkerPid(rng);
        if (pid <= 0) pid = PickWorkerPid(rng);
        if (pid <= 0) {
          skipped_.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        if (::kill(pid, SIGKILL) == 0)
          kills_.fetch_add(1, std::memory_order_relaxed);
        else
          skipped_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case Event::kDelay: {
        const pid_t pid = PickWorkerPid(rng);
        if (pid <= 0) {
          skipped_.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        if (::kill(pid, SIGSTOP) == 0) {
          SleepMicros(options_.delay_hold.count());
          // The pid may have been reaped+respawned only if something else
          // SIGKILLed it meanwhile; SIGCONT on a gone pid is harmless.
          ::kill(pid, SIGCONT);
          delays_.fetch_add(1, std::memory_order_relaxed);
        } else {
          skipped_.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
      case Event::kTorn:
        if (ring_ == nullptr) {
          skipped_.fetch_add(1, std::memory_order_relaxed);
        } else {
          InjectTornFrame(*ring_, rng);
          torn_.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      case Event::kTruncated:
        if (ring_ == nullptr) {
          skipped_.fetch_add(1, std::memory_order_relaxed);
        } else {
          InjectTruncatedFrame(*ring_);
          truncated_.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      case Event::kGarbage:
        if (ring_ == nullptr) {
          skipped_.fetch_add(1, std::memory_order_relaxed);
        } else {
          InjectGarbageFrame(*ring_, rng);
          garbage_.fetch_add(1, std::memory_order_relaxed);
        }
        break;
    }
  }
}

}  // namespace grd::fleet
