// Per-priority-class SLO accounting for the fleet traffic harness.
//
// Every request cycle a tenant driver issues lands here under the session's
// protocol::PriorityClass: a latency sample plus an outcome counter. The
// cells are the registry-compatible shapes (obs::Log2Histogram, plain
// atomics), so a SloBoard binds directly into an obs::MetricsRegistry and
// the per-class SLOs render next to the manager's own counters.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/status.hpp"
#include "guardian/protocol.hpp"
#include "obs/metrics.hpp"

namespace grd::fleet {

// The wire-protocol vocabulary (ops, priority classes) is guardian's.
namespace protocol = guardian::protocol;

struct ClassSlo {
  obs::Log2Histogram latency;  // successful (survivor) cycles only
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> ok{0};
  // Worker crashed / session failed under the call.
  std::atomic<std::uint64_t> unavailable{0};
  // Per-call deadline fired (wedged or stopped manager).
  std::atomic<std::uint64_t> deadline_exceeded{0};
  // Corrupt-frame containment surfaced on this call.
  std::atomic<std::uint64_t> aborted{0};
  std::atomic<std::uint64_t> other_errors{0};
};

// Thread-safe: drivers on different threads record concurrently.
class SloBoard {
 public:
  void Record(protocol::PriorityClass cls, std::uint64_t latency_ns,
              const Status& status);

  ClassSlo& cls(protocol::PriorityClass c) noexcept {
    return classes_[static_cast<int>(c)];
  }
  const ClassSlo& cls(protocol::PriorityClass c) const noexcept {
    return classes_[static_cast<int>(c)];
  }

  // Registers every class's cells ("fleet_<class>_*" counters plus the
  // "fleet_latency" histogram group). The board must outlive the registry.
  void BindTo(obs::MetricsRegistry& registry) const;

  static const char* ClassName(protocol::PriorityClass c) noexcept;

 private:
  ClassSlo classes_[protocol::kPriorityClassCount];
};

}  // namespace grd::fleet
