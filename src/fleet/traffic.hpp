// Fleet traffic model: tenant classes, arrival processes, and the per-class
// session workload each driver thread replays against a connected session.
//
// Two tenant archetypes cover the paper's sharing scenario (§5: latency-
// critical inference co-resident with throughput batch training):
//  - realtime inference: small H2D payload, saxpy launch on the default
//    stream (synchronous), 4-byte result readback — every request is a
//    full round trip whose latency is the tenant's SLO.
//  - batch training: larger payloads, dot-product launches on a created
//    stream with client-side batching enabled, periodic stream syncs —
//    throughput-shaped traffic that stresses ring backpressure.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "fleet/slo.hpp"
#include "guardian/grdlib.hpp"
#include "guardian/protocol.hpp"

namespace grd::fleet {

enum class ArrivalKind : std::uint8_t {
  kClosedLoop,  // next request immediately after the previous completes
  kPoisson,     // exponential think time at rate_hz
  kBursty,      // back-to-back bursts of burst_len, exponential gaps between
};

struct ArrivalProcess {
  ArrivalKind kind = ArrivalKind::kClosedLoop;
  double rate_hz = 2000.0;
  std::uint32_t burst_len = 8;

  // Think time (ns) to insert BEFORE request `request_index`, drawn from
  // the seeded rng — the whole fleet schedule replays from one seed.
  std::uint64_t NextGapNs(Rng& rng, std::uint64_t request_index) const;
};

enum class TenantClass : std::uint8_t { kRealtimeInference, kBatchTraining };

struct TenantSpec {
  TenantClass cls = TenantClass::kRealtimeInference;
  protocol::PriorityClass priority = protocol::PriorityClass::kRealtime;
  ArrivalProcess arrivals;
  std::uint32_t requests = 24;       // request cycles per session
  std::uint32_t payload_bytes = 256; // H2D bytes per request
  std::uint32_t threads = 32;        // launch width
};

TenantSpec MakeRealtimeInferenceSpec();
TenantSpec MakeBatchTrainingSpec();

// PTX text + entry name of the tenant class's kernel.
struct TenantKernel {
  std::string ptx;
  std::string entry;
};
TenantKernel KernelFor(TenantClass cls);

// One session cycle against an already-connected session: module load,
// function lookup, buffer setup, then the paced request loop. Every request
// cycle records a latency sample in `slo` under spec.priority and bumps
// `progress` (the chaos controller's kill trigger) when non-null. Returns
// the first non-retryable-at-this-level error; the caller owns recovery.
Status RunTenantSession(guardian::GrdLib& lib, const TenantSpec& spec,
                        Rng& rng, SloBoard& slo,
                        std::atomic<std::uint64_t>* progress);

}  // namespace grd::fleet
