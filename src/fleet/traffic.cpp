#include "fleet/traffic.hpp"

#include <time.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <vector>

#include "ptx/generator.hpp"
#include "ptx/printer.hpp"

namespace grd::fleet {
namespace {

using guardian::GrdLib;
using ptxexec::KernelArg;
using simcuda::DevicePtr;

// Exponential tails are unbounded; cap one think-time so a single draw
// cannot dominate a bench run.
constexpr std::uint64_t kMaxGapNs = 10'000'000;

std::uint64_t ExpGapNs(Rng& rng, double mean_events, double rate_hz) {
  const double u = std::max(rng.NextDouble(), 1e-12);
  const double ns = -std::log(u) * mean_events / rate_hz * 1e9;
  return std::min<std::uint64_t>(static_cast<std::uint64_t>(ns), kMaxGapNs);
}

void SleepNs(std::uint64_t ns) {
  if (ns == 0) return;
  timespec deadline;
  clock_gettime(CLOCK_MONOTONIC, &deadline);
  deadline.tv_sec += static_cast<time_t>(ns / 1'000'000'000);
  deadline.tv_nsec += static_cast<long>(ns % 1'000'000'000);
  if (deadline.tv_nsec >= 1'000'000'000) {
    deadline.tv_sec += 1;
    deadline.tv_nsec -= 1'000'000'000;
  }
  while (clock_nanosleep(CLOCK_MONOTONIC, TIMER_ABSTIME, &deadline,
                         nullptr) == EINTR) {
  }
}

std::uint64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::uint64_t ArrivalProcess::NextGapNs(Rng& rng,
                                        std::uint64_t request_index) const {
  switch (kind) {
    case ArrivalKind::kClosedLoop:
      return 0;
    case ArrivalKind::kPoisson:
      return ExpGapNs(rng, 1.0, rate_hz);
    case ArrivalKind::kBursty:
      // In-burst requests go back to back; the gap between bursts carries
      // the whole burst's worth of think time.
      if (burst_len == 0 || request_index % burst_len != 0 ||
          request_index == 0)
        return 0;
      return ExpGapNs(rng, static_cast<double>(burst_len), rate_hz);
  }
  return 0;
}

TenantSpec MakeRealtimeInferenceSpec() {
  TenantSpec spec;
  spec.cls = TenantClass::kRealtimeInference;
  spec.priority = protocol::PriorityClass::kRealtime;
  spec.arrivals.kind = ArrivalKind::kPoisson;
  spec.arrivals.rate_hz = 4000.0;
  spec.requests = 24;
  // 64 blocks of 32 threads per launch: the synchronous kernel dominates the
  // request cycle, so a worker SIGKILLed mid-request is usually mid-GRID with
  // completed blocks in the session journal for the adoption resume-match
  // path to pick up on retry — and enough blocks remain after the chaos
  // controller spots one done that the kill reliably beats completion.
  spec.payload_bytes = 8192;
  spec.threads = 32;
  return spec;
}

TenantSpec MakeBatchTrainingSpec() {
  TenantSpec spec;
  spec.cls = TenantClass::kBatchTraining;
  spec.priority = protocol::PriorityClass::kBatch;
  spec.arrivals.kind = ArrivalKind::kBursty;
  spec.arrivals.rate_hz = 2000.0;
  spec.arrivals.burst_len = 8;
  spec.requests = 24;
  spec.payload_bytes = 2048;
  spec.threads = 32;
  return spec;
}

TenantKernel KernelFor(TenantClass cls) {
  ptx::Module module;
  if (cls == TenantClass::kRealtimeInference) {
    module.kernels.push_back(ptx::MakeSaxpyKernel());
    return {ptx::Print(module), "saxpy"};
  }
  module.kernels.push_back(ptx::MakeDotKernel());
  return {ptx::Print(module), "dot"};
}

Status RunTenantSession(guardian::GrdLib& lib, const TenantSpec& spec,
                        Rng& rng, SloBoard& slo,
                        std::atomic<std::uint64_t>* progress) {
  const TenantKernel kernel = KernelFor(spec.cls);
  GRD_ASSIGN_OR_RETURN(simcuda::ModuleId module,
                       lib.cuModuleLoadData(kernel.ptx));
  GRD_ASSIGN_OR_RETURN(simcuda::FunctionId fn,
                       lib.cuModuleGetFunction(module, kernel.entry));

  const bool realtime = spec.cls == TenantClass::kRealtimeInference;
  // dot (unroll 4) reads threads*4 floats from each input and writes
  // threads floats; saxpy reads/writes payload_bytes/4 elements.
  const std::uint64_t buf_bytes = std::max<std::uint64_t>(
      spec.payload_bytes, realtime ? 0 : spec.threads * 16ull);
  DevicePtr a = 0, b = 0, out = 0;
  GRD_RETURN_IF_ERROR(lib.cudaMalloc(&a, buf_bytes));
  GRD_RETURN_IF_ERROR(lib.cudaMalloc(&b, buf_bytes));
  GRD_RETURN_IF_ERROR(lib.cudaMalloc(&out, std::max<std::uint64_t>(
                                               spec.threads * 4ull, 64)));

  simcuda::StreamId stream = simcuda::kDefaultStream;
  if (!realtime) {
    GRD_RETURN_IF_ERROR(lib.cudaStreamCreate(&stream));
    lib.EnableBatching(8);
  }

  std::vector<float> payload(buf_bytes / sizeof(float));
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<float>(rng.NextDouble());

  Status session = OkStatus();
  for (std::uint32_t r = 0; r < spec.requests; ++r) {
    SleepNs(spec.arrivals.NextGapNs(rng, r));
    const std::uint64_t begin = NowNs();
    const std::uint64_t recoveries_before =
        lib.recoveries() + lib.resume_attaches();
    Status cycle = OkStatus();
    if (realtime) {
      cycle = lib.cudaMemcpyH2D(a, payload.data(), spec.payload_bytes);
      if (cycle.ok()) {
        const std::uint32_t n = spec.payload_bytes / sizeof(float);
        simcuda::LaunchConfig config;
        config.block = {spec.threads, 1, 1};
        config.grid = {(n + spec.threads - 1) / spec.threads, 1, 1};
        cycle = lib.cudaLaunchKernel(
            fn, config,
            {KernelArg::U64(a), KernelArg::U64(b), KernelArg::F32(1.5f),
             KernelArg::U32(n)});
      }
      if (cycle.ok()) {
        float back = 0;
        cycle = lib.cudaMemcpy(&back, b, sizeof(back),
                               simcuda::MemcpyKind::kDeviceToHost);
      }
    } else {
      cycle = lib.cudaMemcpyH2DAsync(a, payload.data(), spec.payload_bytes,
                                     stream);
      if (cycle.ok()) {
        simcuda::LaunchConfig config;
        config.block = {spec.threads, 1, 1};
        config.grid = {1, 1, 1};
        config.stream = stream;
        cycle = lib.cudaLaunchKernel(
            fn, config,
            {KernelArg::U64(a), KernelArg::U64(b), KernelArg::U64(out)});
      }
      // Periodic sync: bounds the async error-reporting window and drains
      // the batch buffer so backpressure is exercised, CUDA-style.
      if (cycle.ok() && (r + 1) % 8 == 0) cycle = lib.cudaStreamSynchronize(stream);
    }
    // A cycle that transparently absorbed a worker crash (grdLib attached /
    // re-registered mid-call) measures recovery, not serving latency: keep
    // it out of the SLO histogram so the survivor-latency comparison stays
    // honest. Recovery cost is visible in its own counters.
    if (lib.recoveries() + lib.resume_attaches() == recoveries_before)
      slo.Record(spec.priority, NowNs() - begin, cycle);
    if (progress != nullptr)
      progress->fetch_add(1, std::memory_order_relaxed);
    if (!cycle.ok()) {
      session = cycle;
      break;
    }
  }

  if (session.ok() && !realtime)
    session = lib.cudaStreamSynchronize(stream);
  if (session.ok()) {
    // Teardown is part of the session; a crash here still fails the cycle.
    if (!realtime) GRD_RETURN_IF_ERROR(lib.cudaStreamDestroy(stream));
    GRD_RETURN_IF_ERROR(lib.cudaFree(out));
    GRD_RETURN_IF_ERROR(lib.cudaFree(b));
    GRD_RETURN_IF_ERROR(lib.cudaFree(a));
  }
  return session;
}

}  // namespace grd::fleet
