// Closed-loop multi-tenant fleet harness over a ProcessServer pool.
//
// One driver thread per channel replays seeded session cycles of mixed
// realtime-inference / batch-training tenants (traffic.hpp) while an
// optional ChaosController SIGKILLs workers, stalls readers and corrupts
// frames underneath them. The harness proves the full fault model:
//  - per-call deadlines (ChannelTransport) — no client ever hangs;
//  - grdLib recovery — a victim session re-registers, replays its module
//    journal and finishes its work;
//  - worker pump backpressure — a stalled tenant parks its responses
//    without wedging co-resident tenants;
//  - supervisor repair — synthetic responses + respawn keep counters exact.
// Per-class SLO latencies land in a SloBoard (registry-bindable).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "common/status.hpp"
#include "fleet/chaos.hpp"
#include "fleet/slo.hpp"
#include "fleet/traffic.hpp"
#include "obs/metrics.hpp"

namespace grd::fleet {

struct FleetOptions {
  std::uint64_t seed = 42;
  std::uint32_t workers = 4;
  // Devices EACH worker owns (multi-device fleet): sessions are placed
  // least-loaded at registration and may live-migrate between a worker's
  // devices under queue-depth imbalance. 1 = the historical single device.
  std::uint32_t devices_per_worker = 1;
  // Queue-depth imbalance that triggers an automatic live migration
  // (ManagerOptions::migrate_queue_threshold); only meaningful with
  // devices_per_worker > 1. 0 disables the trigger.
  std::uint64_t migrate_queue_threshold = 8;
  std::uint32_t channels = 8;  // tenant channels (chaos channel is extra)
  std::uint32_t sessions_per_channel = 4;
  std::uint32_t requests_per_session = 24;
  double realtime_fraction = 0.5;
  // Deliberately small rings: response backpressure is part of the test.
  std::uint64_t ring_bytes = 1u << 16;
  std::chrono::milliseconds call_timeout{50};
  int recovery_attempts = 8;
  // Channels whose first session stops draining responses mid-run (the
  // stalled-tenant fault; capped at `channels`).
  std::uint32_t stalled_tenants = 0;
  ChaosOptions chaos;  // all-zero budgets = no chaos
  bool tracing = false;
  // When tracing: export the pool's span timeline here before teardown
  // (the span arena lives in the server's shared region and dies with it).
  std::string trace_path;
};

struct FleetReport {
  // Per-class SLO snapshots (ns percentiles are log2-bucket upper bounds).
  std::uint64_t realtime_requests = 0;
  std::uint64_t realtime_ok = 0;
  std::uint64_t realtime_p50_ns = 0;
  std::uint64_t realtime_p99_ns = 0;
  std::uint64_t batch_requests = 0;
  std::uint64_t batch_ok = 0;
  std::uint64_t batch_p99_ns = 0;
  std::uint64_t deadline_exceeded = 0;  // across all classes
  // Session outcomes.
  std::uint64_t sessions = 0;
  std::uint64_t sessions_completed = 0;
  std::uint64_t victims = 0;            // sessions that saw kUnavailable
  std::uint64_t victims_recovered = 0;  // ...and then finished their work
  // Victim cycles that burned all 4 rebuild attempts and still failed with
  // a retryable code. Distinct from (victims - victims_recovered): a victim
  // whose retry loop exited on a NON-retryable code is a logic bug surfaced
  // elsewhere, while exhaustion is the fleet quietly giving up — the gate
  // requires this to be zero so it can never hide under the
  // recovered-vs-victims comparison.
  std::uint64_t retry_exhausted = 0;
  std::uint64_t recoveries = 0;         // grdLib session re-registrations
  std::uint64_t recovery_retries = 0;   // calls transparently re-sent
  std::uint64_t connect_failures = 0;
  std::uint64_t stalls_injected = 0;
  std::uint64_t hangs = 0;  // sessions started but never finished
  // Server-side repair counters (SharedPoolCounters + ring headers).
  std::uint64_t frames_corrupt = 0;
  std::uint64_t synthetic_responses = 0;
  std::uint64_t workers_respawned = 0;
  std::uint64_t sessions_crash_failed = 0;
  // Multi-device fleet outcomes: sessions adopted (rebuilt from their
  // journal) after a worker death instead of failed, sessions live-migrated
  // between devices, checkpointed kernels resumed mid-grid by either path,
  // and client-side recoveries that attached to an adopted session.
  std::uint64_t sessions_adopted = 0;
  std::uint64_t sessions_migrated = 0;
  std::uint64_t checkpoint_kernels_resumed = 0;
  std::uint64_t resume_attaches = 0;
  // Chaos events actually landed.
  std::uint64_t kills = 0;
  std::uint64_t delays = 0;
  std::uint64_t torn_frames = 0;
  std::uint64_t truncated_frames = 0;
  std::uint64_t garbage_frames = 0;
  double wall_ms = 0.0;
};

class Fleet {
 public:
  explicit Fleet(FleetOptions options);

  // Stands up the pool, drives every session to completion (all calls are
  // deadline-bounded, so Run always returns), tears down, fills report().
  Status Run();

  const FleetReport& report() const noexcept { return report_; }
  const SloBoard& slo() const noexcept { return slo_; }

  // Registers the per-class SLO cells plus the fleet outcome counters;
  // this Fleet must outlive the registry.
  void BindTo(obs::MetricsRegistry& registry) const;

 private:
  FleetOptions options_;
  SloBoard slo_;
  FleetReport report_;

  // Live counters (registry-bindable; snapshotted into report_ by Run).
  std::atomic<std::uint64_t> progress_{0};
  std::atomic<std::uint64_t> sessions_started_{0};
  std::atomic<std::uint64_t> sessions_finished_{0};
  std::atomic<std::uint64_t> sessions_completed_{0};
  std::atomic<std::uint64_t> victims_{0};
  std::atomic<std::uint64_t> victims_recovered_{0};
  std::atomic<std::uint64_t> retry_exhausted_{0};
  std::atomic<std::uint64_t> recoveries_{0};
  std::atomic<std::uint64_t> recovery_retries_{0};
  std::atomic<std::uint64_t> resume_attaches_{0};
  std::atomic<std::uint64_t> connect_failures_{0};
  std::atomic<std::uint64_t> stalls_injected_{0};
};

}  // namespace grd::fleet
