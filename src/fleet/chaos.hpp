// Chaos injection against a live ProcessServer worker pool.
//
// A seeded background thread replays a shuffled schedule of fault events
// while the fleet drives traffic:
//  - worker SIGKILLs mid-request (the paper's crash-containment scenario,
//    §4.2.3: a tenant fault must not take the service down);
//  - SIGSTOP/SIGCONT holds — delayed responses from a live worker;
//  - torn / truncated / garbage frames written into a designated ring,
//    exercising ipc::ShmRing's corrupt-frame containment end to end.
//
// The ring-level hooks are static so protocol robustness tests can aim the
// same faults at their own channels without standing up a controller.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "common/rng.hpp"
#include "guardian/process_server.hpp"
#include "ipc/shm_ring.hpp"

namespace grd::fleet {

struct ChaosOptions {
  std::uint64_t seed = 1;
  std::uint32_t worker_kills = 0;
  std::uint32_t delays = 0;  // SIGSTOP→hold→SIGCONT rounds
  std::chrono::microseconds delay_hold{2000};
  std::uint32_t torn_frames = 0;
  std::uint32_t truncated_frames = 0;
  std::uint32_t garbage_frames = 0;
  // A kill only fires once the observed progress counter (fleet request
  // cycles) reaches this floor, so victims die MID-run, not before traffic.
  std::uint64_t min_requests_before_kill = 1;
  // Spacing between consecutive events, uniformly drawn.
  std::chrono::microseconds min_gap{500};
  std::chrono::microseconds max_gap{4000};
};

class ChaosController {
 public:
  ChaosController(guardian::ProcessServer* server, ChaosOptions options)
      : server_(server), options_(options) {}
  ~ChaosController() { Stop(); }

  // Frame-fault target (typically a reserved channel's request ring no
  // honest tenant uses). Unset, frame events are skipped and counted as
  // such. Must be called before Start().
  void ArmRing(ipc::ShmRing* ring) { ring_ = ring; }

  // Launches the injection thread; `progress` (may be null) gates kills.
  void Start(const std::atomic<std::uint64_t>* progress);
  // Joins the thread after the schedule drains (idempotent).
  void Stop();

  std::uint64_t kills_injected() const noexcept { return kills_; }
  std::uint64_t delays_injected() const noexcept { return delays_; }
  std::uint64_t torn_injected() const noexcept { return torn_; }
  std::uint64_t truncated_injected() const noexcept { return truncated_; }
  std::uint64_t garbage_injected() const noexcept { return garbage_; }
  std::uint64_t skipped_events() const noexcept { return skipped_; }

  // --- ring-level fault hooks (also for tests) ---
  // Frame-shaped write whose body is noise: the ring stays valid, the
  // protocol layer must reject the garbage header cleanly.
  static void InjectGarbageFrame(ipc::ShmRing& ring, Rng& rng);
  // Raw length prefix claiming more bytes than exist: TryRead must detect,
  // repair (head := tail, frames_corrupt++) and return kAborted.
  static void InjectTornFrame(ipc::ShmRing& ring, Rng& rng);
  // Fewer bytes than a length prefix: same containment path.
  static void InjectTruncatedFrame(ipc::ShmRing& ring);

 private:
  enum class Event : std::uint8_t {
    kKill,
    kDelay,
    kTorn,
    kTruncated,
    kGarbage,
  };

  void Loop(const std::atomic<std::uint64_t>* progress);
  // A live worker's pid, or -1 when none is up right now.
  pid_t PickWorkerPid(Rng& rng) const;
  // A live worker currently holding a consumed-but-unanswered request on one
  // of its channels (it is mid-request — likely mid-kernel), or -1.
  pid_t PickBusyWorkerPid(Rng& rng) const;
  // A live worker owning a session whose shared journal shows an armed
  // pending kernel with >= 1 completed block — i.e. mid-GRID right now, the
  // strongest kill target for the checkpoint-resume path. -1 when none.
  pid_t PickMidGridWorkerPid(Rng& rng) const;

  guardian::ProcessServer* server_;
  ChaosOptions options_;
  ipc::ShmRing* ring_ = nullptr;

  std::thread injector_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> kills_{0};
  std::atomic<std::uint64_t> delays_{0};
  std::atomic<std::uint64_t> torn_{0};
  std::atomic<std::uint64_t> truncated_{0};
  std::atomic<std::uint64_t> garbage_{0};
  std::atomic<std::uint64_t> skipped_{0};
};

}  // namespace grd::fleet
