#include "fleet/slo.hpp"

#include <string>

namespace grd::fleet {

const char* SloBoard::ClassName(protocol::PriorityClass c) noexcept {
  switch (c) {
    case protocol::PriorityClass::kRealtime: return "realtime";
    case protocol::PriorityClass::kNormal: return "normal";
    case protocol::PriorityClass::kBatch: return "batch";
  }
  return "unknown";
}

void SloBoard::Record(protocol::PriorityClass cls, std::uint64_t latency_ns,
                      const Status& status) {
  ClassSlo& slo = this->cls(cls);
  // Survivor semantics: the latency histogram holds only successful cycles.
  // A failed cycle's duration is dominated by the fault (a 50ms deadline, a
  // recovery backoff), which would drown the p99 the SLO gate compares.
  if (status.ok()) slo.latency.Record(latency_ns);
  slo.requests.fetch_add(1, std::memory_order_relaxed);
  switch (status.code()) {
    case StatusCode::kOk:
      slo.ok.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kUnavailable:
      slo.unavailable.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kDeadlineExceeded:
      slo.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kAborted:
      slo.aborted.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      slo.other_errors.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

void SloBoard::BindTo(obs::MetricsRegistry& registry) const {
  for (int c = 0; c < protocol::kPriorityClassCount; ++c) {
    const auto cls = static_cast<protocol::PriorityClass>(c);
    const std::string prefix = std::string("fleet_") + ClassName(cls);
    const ClassSlo& slo = classes_[c];
    registry.Counter(prefix + "_requests", &slo.requests);
    registry.Counter(prefix + "_ok", &slo.ok);
    registry.Counter(prefix + "_unavailable", &slo.unavailable);
    registry.Counter(prefix + "_deadline_exceeded", &slo.deadline_exceeded);
    registry.Counter(prefix + "_aborted", &slo.aborted);
    registry.Counter(prefix + "_other_errors", &slo.other_errors);
    registry.Histogram("fleet_latency", ClassName(cls), &slo.latency);
  }
}

}  // namespace grd::fleet
