// Functional PTX interpreter.
//
// Executes kernels against the simulated GPU global memory, with a
// thread-grid model (blocks, threads, bar.sync lockstep phases, per-block
// shared memory). Because the instrumented fencing/checking instructions are
// ordinary PTX, patched kernels run through the same interpreter — the
// wrap-around semantics of Figure 4 are produced by actually executing the
// AND/OR, not by special-casing.
//
// Two engines share the launch/fault/preemption semantics:
//  - the COMPILED engine (the production hot path): kernels are lowered once
//    by ptxexec::CompileKernel (program.hpp) into dense bytecode — enum
//    opcodes, interned register slots, pre-resolved branches/params/shared
//    offsets — and executed against flat arrays with zero per-step string
//    work;
//  - the REFERENCE engine (ExecuteReference): the original string-map
//    interpreter, kept as the parity oracle and the bench_interpreter
//    baseline. Every std::string-keyed lookup it performs on the step path
//    bumps exec_debug::HotPathStringLookups(), which is how tests assert the
//    compiled path performs none.
//
// Supported subset: the full instruction vocabulary produced by ptx/generator
// and ptxpatcher (ld/st over param/global/local/shared/generic incl. v2/v4,
// mov/cvta/cvt, integer and f32/f64 arithmetic, logicals/shifts, setp/selp,
// bra/brx.idx/bar.sync/ret/exit/trap). Unsupported opcodes abort the launch
// with kUnimplemented rather than mis-executing.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "common/status.hpp"
#include "ptx/ast.hpp"
#include "ptxexec/launch.hpp"
#include "ptxexec/program.hpp"
#include "simgpu/memory.hpp"

namespace grd::ptxexec {

// A device-side fault (what the real GPU would raise as an Xid error /
// illegal-address exception).
struct DeviceFault {
  Status status;
  std::uint64_t address = 0;
  std::uint64_t thread_linear_id = 0;
  std::string kernel;
};

// Cooperative-preemption hooks for a launch (TReM-style revocation). All
// fields are optional; a default ExecControls reproduces the plain
// run-to-completion behaviour.
struct ExecControls {
  // Polled every `preempt_check_interval` instructions and at every block
  // boundary. When it reads true (and `checkpoint` is set), the kernel runs
  // to the next block boundary — the safe point — saves the completed-block
  // bitmap into `checkpoint`, and Execute returns kUnavailable ("preempted
  // at safe point"); completed blocks are never replayed on resume.
  const std::atomic<bool>* preempt_requested = nullptr;
  std::uint64_t preempt_check_interval = 5'000;
  // In+out resume state. When `valid`, Execute skips completed blocks and
  // continues accumulating into checkpoint->stats.
  KernelCheckpoint* checkpoint = nullptr;
  // Called after each executed block with that block's stats delta (the
  // scheduler uses it to dilate modeled device time per block, which is
  // what bounds preemption latency to roughly one block).
  std::function<void(const ExecStats& block_delta)> after_block;
};

// True iff a non-OK Execute status means "suspended at a safe point" (the
// checkpoint holds resume state) rather than a device fault.
inline bool IsPreempted(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

class Interpreter {
 public:
  // `client` is the tenant id handed to the access policy on global accesses.
  Interpreter(simgpu::GlobalMemory* memory, simgpu::AccessPolicy* policy,
              std::uint64_t client)
      : memory_(memory), policy_(policy), client_(client) {}

  // Executes a pre-compiled kernel (the hot path: no per-step string work).
  // On a device fault, returns the fault status (detail via last_fault()).
  Result<ExecStats> Execute(const CompiledKernel& kernel,
                            const LaunchParams& params);

  // Preemptible/resumable variant. On success the returned stats cover all
  // segments of the kernel (checkpoint-accumulated); see ExecControls for
  // the preempted path. An exceeded instruction budget returns
  // kDeadlineExceeded with the checkpoint (when provided) holding every
  // block completed before the runaway one, so the scheduler can requeue
  // instead of killing outright.
  Result<ExecStats> Execute(const CompiledKernel& kernel,
                            const LaunchParams& params,
                            const ExecControls& controls);

  // Tiered variant (tier.cpp). kCompiled routes to the plain compiled engine
  // above; kFused / kThreaded run through the tiered block executor, which
  // dispatches superinstructions as single units while charging stats,
  // instruction budget and preemption polls per component — so stats, faults
  // and checkpoints stay bit-identical to every other engine. For tiers >= 1
  // pass the fused program (FuseKernel / CompiledModule::Fused); an unfused
  // program is legal (it simply has no superinstructions to dispatch).
  Result<ExecStats> Execute(const CompiledKernel& kernel,
                            const LaunchParams& params,
                            const ExecControls& controls, ExecTier tier);

  // Convenience: compiles `kernel_name` from `module` and executes the
  // result. Pays the (one-time-per-call) compile cost; callers on a hot
  // launch path should compile once and use the CompiledKernel overloads —
  // the grdManager does so through the SandboxCache.
  Result<ExecStats> Execute(const ptx::Module& module,
                            std::string_view kernel_name,
                            const LaunchParams& params);
  Result<ExecStats> Execute(const ptx::Module& module,
                            std::string_view kernel_name,
                            const LaunchParams& params,
                            const ExecControls& controls);

  // The seed string-map engine, kept as the parity oracle for the compiled
  // path and as bench_interpreter's baseline. Semantically identical to
  // Execute (same stats, faults, checkpoints); every per-step string lookup
  // it performs is counted by exec_debug::HotPathStringLookups().
  Result<ExecStats> ExecuteReference(const ptx::Module& module,
                                     std::string_view kernel_name,
                                     const LaunchParams& params);
  Result<ExecStats> ExecuteReference(const ptx::Module& module,
                                     std::string_view kernel_name,
                                     const LaunchParams& params,
                                     const ExecControls& controls);

  const DeviceFault& last_fault() const noexcept { return last_fault_; }

  // Safety valve for runaway kernels (paper §4.3 mentions TReM-style
  // termination of endless kernels as the companion mechanism).
  void set_max_instructions_per_thread(std::uint64_t limit) noexcept {
    max_instructions_per_thread_ = limit;
  }

 private:
  simgpu::GlobalMemory* memory_;
  simgpu::AccessPolicy* policy_;
  std::uint64_t client_;
  DeviceFault last_fault_;
  std::uint64_t max_instructions_per_thread_ = 10'000'000;
};

namespace exec_debug {

// Process-wide count of std::string-keyed lookups (map finds, name hashing,
// special-register name scans) performed on the per-step execution path.
// Only the reference engine bumps it; the regression suite snapshots it
// around a compiled-path run and asserts the delta is zero, so any future
// change that sneaks a string lookup back onto the hot path — and routes it
// through the instrumented helpers, as the reference engine does — fails
// loudly instead of silently eating the compile win back.
std::uint64_t HotPathStringLookups() noexcept;
void BumpHotPathStringLookup() noexcept;

}  // namespace exec_debug

}  // namespace grd::ptxexec
