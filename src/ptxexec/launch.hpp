// Kernel launch descriptors shared by the interpreter and the runtimes.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace grd::ptxexec {

struct Dim3 {
  std::uint32_t x = 1, y = 1, z = 1;
  std::uint64_t Count() const noexcept {
    return static_cast<std::uint64_t>(x) * y * z;
  }
};

// A kernel argument as raw bits (mirrors CUDA's void** kernelParams: the
// launch path does not know types; the kernel's .param decls do).
struct KernelArg {
  std::uint64_t bits = 0;
  std::uint8_t size = 8;

  static KernelArg U64(std::uint64_t v) { return {v, 8}; }
  static KernelArg U32(std::uint32_t v) { return {v, 4}; }
  static KernelArg F32(float v) {
    std::uint32_t b;
    std::memcpy(&b, &v, sizeof(b));
    return {b, 4};
  }
  static KernelArg F64(double v) {
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof(b));
    return {b, 8};
  }
};

struct LaunchParams {
  Dim3 grid;
  Dim3 block;
  std::vector<KernelArg> args;
};

// Execution statistics returned by a functional run. The device scheduler
// feeds these into simgpu's occupancy/timing model (SmFootprint /
// KernelDeviceCycles), so the counts double as the timing engine's input.
// `blocks` counts blocks actually executed; a resumed (previously preempted)
// kernel accumulates across segments, so at completion it equals the grid
// size exactly — replayed blocks would show as an excess.
struct ExecStats {
  std::uint64_t instructions = 0;
  std::uint64_t global_loads = 0;
  std::uint64_t global_stores = 0;
  std::uint64_t shared_accesses = 0;
  std::uint64_t threads = 0;
  std::uint64_t blocks = 0;
};

// Suspended-kernel state saved at a preemption safe point (block boundary).
// Blocks run to completion before the kernel yields, so per-thread PCs,
// registers, and shared memory never need to leave the device: the
// completed-block bitmap plus the accumulated stats IS the full resume
// state. A resumed Execute skips every block whose bit is set.
struct KernelCheckpoint {
  std::vector<std::uint64_t> done_bitmap;  // bit per linear block index
  std::uint64_t blocks_total = 0;
  std::uint64_t blocks_done = 0;
  ExecStats stats;     // accumulated across all executed segments
  bool valid = false;  // true once any block completed under this checkpoint

  bool Done(std::uint64_t block) const {
    const std::uint64_t word = block / 64;
    return word < done_bitmap.size() &&
           (done_bitmap[word] >> (block % 64)) & 1;
  }
  void MarkDone(std::uint64_t block) {
    const std::uint64_t word = block / 64;
    if (word >= done_bitmap.size()) done_bitmap.resize(word + 1, 0);
    done_bitmap[word] |= std::uint64_t{1} << (block % 64);
    ++blocks_done;
    valid = true;
  }
  // What the manager would ship off-device for this suspension (accounting
  // only; the checkpoint lives in host memory here).
  std::uint64_t SizeBytes() const {
    return done_bitmap.size() * sizeof(std::uint64_t) + sizeof(ExecStats) +
           2 * sizeof(std::uint64_t);
  }
};

}  // namespace grd::ptxexec
