// Kernel launch descriptors shared by the interpreter and the runtimes.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace grd::ptxexec {

struct Dim3 {
  std::uint32_t x = 1, y = 1, z = 1;
  std::uint64_t Count() const noexcept {
    return static_cast<std::uint64_t>(x) * y * z;
  }
};

// A kernel argument as raw bits (mirrors CUDA's void** kernelParams: the
// launch path does not know types; the kernel's .param decls do).
struct KernelArg {
  std::uint64_t bits = 0;
  std::uint8_t size = 8;

  static KernelArg U64(std::uint64_t v) { return {v, 8}; }
  static KernelArg U32(std::uint32_t v) { return {v, 4}; }
  static KernelArg F32(float v) {
    std::uint32_t b;
    std::memcpy(&b, &v, sizeof(b));
    return {b, 4};
  }
  static KernelArg F64(double v) {
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof(b));
    return {b, 8};
  }
};

struct LaunchParams {
  Dim3 grid;
  Dim3 block;
  std::vector<KernelArg> args;
};

// Execution statistics returned by a functional run. The device scheduler
// feeds these into simgpu's occupancy/timing model (SmFootprint /
// KernelDeviceCycles), so the counts double as the timing engine's input.
struct ExecStats {
  std::uint64_t instructions = 0;
  std::uint64_t global_loads = 0;
  std::uint64_t global_stores = 0;
  std::uint64_t shared_accesses = 0;
  std::uint64_t threads = 0;
  std::uint64_t blocks = 0;
};

}  // namespace grd::ptxexec
