// Tier 1/2 execution: superinstruction fusion and the tiered block executor.
//
// FuseKernel is a peephole pass over the compiled bytecode. It scans for
// maximal straight-line runs of unpredicated pure/memory instructions
// (optionally closed by a branch, predicated or not), stops at every branch
// target, and replaces the run's FIRST slot with a kFused instruction whose
// components live in CompiledKernel::fused_code. The covered originals stay
// in place behind the super, which buys three invariants for free:
//  - branches into the middle of a run execute the originals individually;
//  - branch tables and kBra targets never need remapping;
//  - the program length is unchanged, so checkpoints, pcs and the budget
//    accounting are comparable across tiers instruction for instruction.
//
// The executor's thread loop lives in tier_dispatch.inc, instantiated twice:
// a portable switch variant and (under __GNUC__, unless GRD_NO_COMPUTED_GOTO
// is defined) a direct-threaded computed-goto variant used by tier 2.
#include "ptxexec/tier.hpp"

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "ptxexec/exec_core.hpp"
#include "ptxexec/interpreter.hpp"
#include "ptxexec/launch.hpp"
#include "ptxexec/scalar_ops.hpp"
#include "simgpu/memory.hpp"

#if defined(__GNUC__) && !defined(GRD_NO_COMPUTED_GOTO)
#define GRD_TIER_HAS_THREADED 1
#else
#define GRD_TIER_HAS_THREADED 0
#endif

namespace grd::ptxexec {
namespace {

using exec_core::CThread;

// The label table in tier_dispatch.inc is indexed by COp and must cover the
// enum exactly.
static_assert(static_cast<unsigned>(COp::kFused) == 16,
              "COp changed: update the tier_dispatch.inc label table");

// Tier >= 1 block executor. Same machine state and grid semantics as the
// compiled executor (both derive exec_core::EngineBase and run under
// exec_core::RunGrid); only the thread dispatch loop differs.
class TierExec : public exec_core::EngineBase {
 public:
  TierExec(const CompiledKernel& prog, const LaunchParams& params,
           simgpu::GlobalMemory* memory, simgpu::AccessPolicy* policy,
           std::uint64_t client, std::uint64_t max_instructions,
           ExecStats* stats, const std::atomic<bool>* preempt,
           std::uint64_t preempt_check_interval, bool threaded)
      : EngineBase(prog, params, memory, policy, client, max_instructions,
                   stats, preempt, preempt_check_interval),
        threaded_(threaded) {}

  // Runs one block to completion (all threads), honoring bar.sync phases.
  Status RunBlock(std::uint32_t bx, std::uint32_t by, std::uint32_t bz,
                  DeviceFault* fault);

 private:
  // Thread-run loops instantiated from tier_dispatch.inc.
  Status RunThreadSwitch(CThread& t, std::uint64_t* regs, bool* thread_done);
#if GRD_TIER_HAS_THREADED
  Status RunThreadThreaded(CThread& t, std::uint64_t* regs, bool* thread_done);
#endif

  // Memory ops shared by the top-level handlers and the fused-component
  // loop. Neither advances the pc; faults are recorded via Fault().
  Status DoLd(CThread& t, std::uint64_t* regs, const CompiledInst& inst) {
    const std::size_t width = inst.width;
    const std::uint64_t addr = ReadOp(t, regs, inst.a) +
                               static_cast<std::uint64_t>(inst.mem_offset);
    if (inst.sub > 1) {
      for (int lane = 0; lane < inst.sub; ++lane) {
        auto bits = LoadSized(addr + lane * width, width);
        if (!bits.ok()) return Fault(bits.status(), addr, t);
        regs[inst.vec[lane]] = *bits;
      }
    } else {
      auto bits = LoadSized(addr, width);
      if (!bits.ok()) return Fault(bits.status(), addr, t);
      // Sign-extend signed sub-64-bit loads so later s64 arithmetic works.
      regs[inst.dst] =
          inst.is_signed
              ? static_cast<std::uint64_t>(scalar::SignExtend(*bits, width))
              : *bits;
    }
    return OkStatus();
  }

  Status DoSt(CThread& t, std::uint64_t* regs, const CompiledInst& inst) {
    const std::size_t width = inst.width;
    const std::uint64_t addr = ReadOp(t, regs, inst.a) +
                               static_cast<std::uint64_t>(inst.mem_offset);
    if (inst.sub > 1) {
      for (int lane = 0; lane < inst.sub; ++lane) {
        const Status s = StoreSized(
            addr + lane * width,
            scalar::MaskToWidth(regs[inst.vec[lane]], width), width);
        if (!s.ok()) return Fault(s, addr, t);
      }
    } else {
      const Status s = StoreSized(
          addr, scalar::MaskToWidth(ReadOp(t, regs, inst.b), width), width);
      if (!s.ok()) return Fault(s, addr, t);
    }
    return OkStatus();
  }

  bool threaded_;
};

// Sign-extends `bits` given the precomputed 64-width*8 shift (FusedComp::sx).
inline std::int64_t MicroSext(std::uint64_t bits, unsigned sx) {
  return static_cast<std::int64_t>(bits << sx) >> sx;
}

template <typename T>
inline bool MicroCompare(CmpOp cmp, T x, T y) {
  switch (cmp) {
    case CmpOp::kEq: return x == y;
    case CmpOp::kNe: return x != y;
    case CmpOp::kLt: return x < y;
    case CmpOp::kLe: return x <= y;
    case CmpOp::kGt: return x > y;
    case CmpOp::kGe: return x >= y;
  }
  return false;
}

// Per-instruction prologue of every non-fused handler: bump the instruction
// count, then skip (pc+1) when a guard predicate disagrees — exactly the
// compiled engine's Step() order. Expanded inside tier_dispatch.inc, where
// GRD_NEXT re-enters the dispatch of the active variant.
#define GRD_GUARD()                                       \
  ++stats_->instructions;                                 \
  if (ip->pred_slot != kNoPredSlot) {                     \
    const bool grd_pred = (regs[ip->pred_slot] & 1) != 0; \
    if (grd_pred == ip->pred_negated) {                   \
      ++t.pc;                                             \
      GRD_NEXT();                                         \
    }                                                     \
  }

#define GRD_TIER_FN RunThreadSwitch
#define GRD_TIER_THREADED 0
#include "ptxexec/tier_dispatch.inc"
#undef GRD_TIER_FN
#undef GRD_TIER_THREADED

#if GRD_TIER_HAS_THREADED
#define GRD_TIER_FN RunThreadThreaded
#define GRD_TIER_THREADED 1
#include "ptxexec/tier_dispatch.inc"
#undef GRD_TIER_FN
#undef GRD_TIER_THREADED
#endif

#undef GRD_GUARD

Status TierExec::RunBlock(std::uint32_t bx, std::uint32_t by, std::uint32_t bz,
                          DeviceFault* fault) {
  const std::uint64_t nthreads = params_.block.Count();
  std::vector<CThread> threads;
  SetupBlock(bx, by, bz, &threads);

  bool all_done = false;
  while (!all_done) {
    all_done = true;
    bool progressed = false;
    for (std::uint64_t i = 0; i < nthreads; ++i) {
      auto& t = threads[i];
      if (t.done) continue;
      std::uint64_t* regs = regs_.data() + i * prog_.reg_slots;
      // Run this thread until it blocks on a barrier or finishes.
      bool thread_done = false;
#if GRD_TIER_HAS_THREADED
      const Status s = threaded_ ? RunThreadThreaded(t, regs, &thread_done)
                                 : RunThreadSwitch(t, regs, &thread_done);
#else
      static_cast<void>(threaded_);  // tier 2 falls back to the switch loop
      const Status s = RunThreadSwitch(t, regs, &thread_done);
#endif
      if (!s.ok()) {
        *fault = fault_;
        return s;
      }
      progressed = true;
      if (thread_done) t.done = true;
      if (!t.done) all_done = false;
    }
    if (!all_done && !progressed) {
      *fault = DeviceFault{Internal("barrier deadlock in " + prog_.name), 0,
                           0, prog_.name};
      return fault->status;
    }
  }
  return OkStatus();
}

// Pre-decodes one fused component into its micro op. Anything outside the
// hot integer set — floats, div/rem (trap-free zero semantics), wide/hi
// multiplies, memory ops, cvt, special-register sources — stays kGeneric
// and executes the original CompiledInst, so micro lowering can never
// change semantics, only skip decode work.
FusedComp LowerComp(const CompiledInst& inst) {
  FusedComp m;  // defaults: kGeneric, all sources immediate 0
  const std::size_t width = inst.width;
  m.mask = width >= 8 ? ~0ull : ((1ull << (width * 8)) - 1);
  m.sx = static_cast<std::uint8_t>(64 - width * 8);
  m.shmask = static_cast<std::uint8_t>(width * 8 - 1);
  m.dst = inst.dst;
  m.is_signed = inst.is_signed;
  // Resolves a source to slot-or-immediate; special registers (thread/block
  // ids) keep the component generic.
  const auto src = [&m](unsigned idx, const OperandDesc& desc,
                        std::uint64_t* out) {
    switch (desc.kind) {
      case OperandDesc::Kind::kReg:
        *out = desc.slot;
        m.src_imm = static_cast<std::uint8_t>(m.src_imm & ~(1u << idx));
        return true;
      case OperandDesc::Kind::kImm:
        *out = desc.imm;
        return true;
      case OperandDesc::Kind::kSpecial:
        return false;
    }
    return false;
  };

  // Only a run's terminal kBra may be predicated (FusableInterior).
  if (inst.pred_slot != kNoPredSlot && inst.op != COp::kBra) return m;

  switch (inst.op) {
    case COp::kMov:
      if (src(0, inst.a, &m.a)) m.op = MicroOp::kMov;
      break;
    case COp::kBinary: {
      if (inst.is_float) break;
      MicroOp op;
      switch (static_cast<BinAlu>(inst.sub)) {
        case BinAlu::kAdd: op = MicroOp::kAdd; break;
        case BinAlu::kSub: op = MicroOp::kSub; break;
        case BinAlu::kMul: op = MicroOp::kMulLo; break;
        case BinAlu::kAnd: op = MicroOp::kAnd; break;
        case BinAlu::kOr: op = MicroOp::kOr; break;
        case BinAlu::kXor: op = MicroOp::kXor; break;
        case BinAlu::kShl: op = MicroOp::kShl; break;
        case BinAlu::kShr: op = MicroOp::kShr; break;
        default: return m;  // div/rem/min/max/wide/hi: generic
      }
      if (src(0, inst.a, &m.a) && src(1, inst.b, &m.b)) m.op = op;
      break;
    }
    case COp::kMad:
      if (inst.is_float || inst.sub != 0) break;  // wide/float mad: generic
      if (src(0, inst.a, &m.a) && src(1, inst.b, &m.b) &&
          src(2, inst.c, &m.c))
        m.op = MicroOp::kMad;
      break;
    case COp::kSetp:
      if (inst.is_float) break;
      m.cmp = inst.sub;
      if (src(0, inst.a, &m.a) && src(1, inst.b, &m.b)) m.op = MicroOp::kSetp;
      break;
    case COp::kSelp:
      if (src(0, inst.a, &m.a) && src(1, inst.b, &m.b) &&
          src(2, inst.c, &m.c))
        m.op = MicroOp::kSelp;
      break;
    case COp::kBra:
      m.op = MicroOp::kBra;
      m.target = inst.target;
      m.pred_slot = inst.pred_slot;
      m.pred_negated = inst.pred_negated;
      break;
    default:
      break;  // ld/st/ldparam/cvt/unary: generic
  }
  return m;
}

// An instruction that may sit anywhere in a fused run: unpredicated, pure or
// memory, never a control transfer / barrier / trap / deferred error.
bool FusableInterior(const CompiledInst& inst) {
  if (inst.pred_slot != kNoPredSlot) return false;
  switch (inst.op) {
    case COp::kLdParam:
    case COp::kLd:
    case COp::kSt:
    case COp::kMov:
    case COp::kCvt:
    case COp::kBinary:
    case COp::kMad:
    case COp::kUnary:
    case COp::kSetp:
    case COp::kSelp:
      return true;
    default:
      return false;
  }
}

}  // namespace

CompiledKernel FuseKernel(const CompiledKernel& kernel) {
  CompiledKernel out = kernel;
  if (out.super_count > 0) return out;  // already fused
  const std::size_t n = out.code.size();
  if (n < 2) return out;

  // A fused run must never span a branch target: a kFused instruction may
  // only BEGIN at one. Targets come from kBra instructions and from every
  // resolved branch-table entry (an unresolved entry faults before jumping).
  std::vector<bool> is_target(n + 1, false);
  for (const auto& inst : out.code)
    if (inst.op == COp::kBra && inst.target <= n) is_target[inst.target] = true;
  for (const auto& table : out.branch_tables)
    for (const std::uint32_t pc : table.pcs)
      if (pc != BranchTable::kUnresolved && pc <= n) is_target[pc] = true;

  for (std::size_t pc = 0; pc < n;) {
    if (!FusableInterior(out.code[pc])) {
      ++pc;
      continue;
    }
    std::size_t end = pc + 1;
    while (end < n && end - pc < kMaxFusedRun && !is_target[end] &&
           FusableInterior(out.code[end]))
      ++end;
    // A trailing branch (predicated or not) joins the run: the setp + @%p bra
    // loop tail retires in the same dispatch, and a backward branch to the
    // run's own head re-enters the superinstruction directly — one dispatch
    // per loop iteration.
    if (end < n && end - pc < kMaxFusedRun && !is_target[end] &&
        out.code[end].op == COp::kBra)
      ++end;
    const std::size_t count = end - pc;
    if (count >= 2) {
      CompiledInst super;
      super.op = COp::kFused;
      super.sub = static_cast<std::uint8_t>(count);
      super.target = static_cast<std::uint32_t>(out.fused_code.size());
      for (std::size_t j = pc; j < end; ++j) {
        out.fused_code.push_back(out.code[j]);
        out.fused_micro.push_back(LowerComp(out.code[j]));
      }
      out.code[pc] = super;
      ++out.super_count;
      out.fused_instructions += static_cast<std::uint32_t>(count);
    }
    pc = end;  // covered originals stay in place; scan resumes after the run
  }
  return out;
}

std::shared_ptr<const CompiledModule> CompiledModule::Fused(
    std::uint64_t* superinstructions) const {
  auto fused = std::make_shared<CompiledModule>();
  fused->entries_.reserve(entries_.size());
  std::uint64_t total = 0;
  for (const auto& entry : entries_) {
    Entry out;
    out.name = entry.name;
    out.error = entry.error;
    if (entry.kernel != nullptr) {
      auto k = std::make_shared<CompiledKernel>(FuseKernel(*entry.kernel));
      total += k->super_count;
      out.kernel = std::move(k);
    }
    fused->entries_.push_back(std::move(out));
  }
  if (superinstructions != nullptr) *superinstructions = total;
  return fused;
}

bool ThreadedDispatchAvailable() noexcept {
  return GRD_TIER_HAS_THREADED != 0;
}

Result<ExecStats> Interpreter::Execute(const CompiledKernel& kernel,
                                       const LaunchParams& params,
                                       const ExecControls& controls,
                                       ExecTier tier) {
  if (tier == ExecTier::kCompiled) return Execute(kernel, params, controls);
  const bool threaded = tier == ExecTier::kThreaded;
  return exec_core::RunGrid(
      kernel, params, controls, &last_fault_, [&](ExecStats* stats) {
        return TierExec(kernel, params, memory_, policy_, client_,
                        max_instructions_per_thread_, stats,
                        controls.preempt_requested,
                        controls.preempt_check_interval, threaded);
      });
}

}  // namespace grd::ptxexec
