// Scalar bit-manipulation helpers shared by the compiled engine
// (program.cpp) and the reference engine (interpreter.cpp). Both engines
// must produce bit-identical results — the parity suite compares their
// outputs — so the width masking / sign extension / float reinterpretation
// primitives live here exactly once.
#pragma once

#include <cstdint>
#include <cstring>

namespace grd::ptxexec::scalar {

// Shared-memory addresses are tagged so fenced global arithmetic can never
// collide with them (fencing applies only to global/local accesses anyway).
inline constexpr std::uint64_t kSharedTag = 0x4000'0000'0000'0000ull;

inline std::uint64_t MaskToWidth(std::uint64_t v, std::size_t bytes) {
  if (bytes >= 8) return v;
  return v & ((std::uint64_t{1} << (bytes * 8)) - 1);
}

inline std::int64_t SignExtend(std::uint64_t v, std::size_t bytes) {
  if (bytes >= 8) return static_cast<std::int64_t>(v);
  const int shift = static_cast<int>(64 - bytes * 8);
  return static_cast<std::int64_t>(v << shift) >> shift;
}

inline float AsF32(std::uint64_t bits) {
  float f;
  const auto b = static_cast<std::uint32_t>(bits);
  std::memcpy(&f, &b, sizeof(f));
  return f;
}

inline std::uint64_t F32Bits(float f) {
  std::uint32_t b;
  std::memcpy(&b, &f, sizeof(b));
  return b;
}

inline double AsF64(std::uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

inline std::uint64_t F64Bits(double d) {
  std::uint64_t b;
  std::memcpy(&b, &d, sizeof(b));
  return b;
}

}  // namespace grd::ptxexec::scalar
