// One-time PTX-to-bytecode compilation for the functional interpreter.
//
// The string-map interpreter (interpreter.cpp's reference engine) pays
// per-step costs native hardware never would: register names hashed into
// per-thread unordered_maps, opcodes dispatched by string compare, branch
// targets / params / shared variables resolved through string maps, and a
// `name.find('.')` special-register scan on every register read. CompileKernel
// pays all of those costs exactly once, lowering a parsed (and possibly
// patched) kernel into a CompiledKernel:
//  - opcodes become a dense enum (`COp` + alu/compare sub-ops);
//  - register names are interned to dense uint16 slots, so a thread's
//    register file is a flat uint64 array indexed by slot;
//  - special registers (%tid.x, %ctaid.y, ...) become a compile-time operand
//    kind with an enum id — no per-access string scan;
//  - immediates are pre-encoded into the bit pattern the consuming
//    instruction reads (float immediates per the operand's read type);
//  - labels and brx.idx branch tables are resolved to instruction indices;
//  - ld.param name lookups become parameter indices, shared variables become
//    pre-tagged absolute offsets into the block's shared segment.
//
// Error semantics match the reference engine: anything the old interpreter
// only raised when an instruction was actually *stepped on* (unimplemented
// opcodes, unknown special registers, malformed modifier lists, dangling
// branch targets) compiles into a kError instruction that reproduces the
// same status when — and only when — execution reaches it. Compilation
// itself fails only where PrepareKernel used to fail (duplicate labels) or
// on hard structural limits (too many registers for uint16 slots).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "ptx/ast.hpp"
#include "ptxexec/launch.hpp"

namespace grd::ptxexec {

// Special registers resolved at compile time (the reference engine re-parses
// the register name on every read).
enum class SpecialReg : std::uint8_t {
  kTidX, kTidY, kTidZ,
  kNtidX, kNtidY, kNtidZ,
  kCtaidX, kCtaidY, kCtaidZ,
  kNctaidX, kNctaidY, kNctaidZ,
  kLaneId, kWarpSize,
};

// A pre-decoded source operand: reading one is a switch on `kind` plus an
// array index — never a hash or a string compare.
struct OperandDesc {
  enum class Kind : std::uint8_t { kReg, kImm, kSpecial };
  Kind kind = Kind::kImm;
  SpecialReg sreg = SpecialReg::kTidX;  // kSpecial
  std::uint16_t slot = 0;               // kReg: dense register slot
  std::uint64_t imm = 0;                // kImm: pre-encoded bit pattern
};

// Dense opcode set. Families that share an execution shape share a COp and
// carry an alu/compare discriminator in CompiledInst::sub.
enum class COp : std::uint8_t {
  kLdParam,   // dst <- launch arg [param_index], masked to width
  kLd,        // dst (or vec lanes) <- memory at a + mem_offset
  kSt,        // memory at a + mem_offset <- b (or vec lanes)
  kMov,       // dst <- a (also cvta: identity in the flat address space)
  kCvt,       // dst <- convert(a, src_type -> type)
  kBinary,    // dst <- a (BinAlu) b
  kMad,       // dst <- a * b + c (sub: 0 = masked, 1 = wide)
  kUnary,     // dst <- (UnAlu) a
  kSetp,      // dst <- a (CmpOp) b, as 0/1
  kSelp,      // dst <- (c & 1) ? a : b
  kBra,       // pc <- target
  kBrx,       // pc <- branch_tables[target][a], faulting out of range
  kBar,       // barrier (block-wide phase boundary)
  kRetExit,   // thread done
  kTrap,      // bounds-check trap: device fault
  kError,     // reproduces a reference-engine step-time error when reached
  kFused,     // superinstruction: executes fused_code[target .. target+sub)
};

// Execution tier of a launch (tier.hpp builds tier >= 1 programs; the
// SandboxCache promotes modules across tiers by launch heat):
//  - kCompiled: the dense bytecode engine, one switch dispatch per
//    instruction (the PR 4 baseline);
//  - kFused: hot instruction runs rewritten into superinstructions, so one
//    dispatch retires a whole loop body / guard+access pair;
//  - kThreaded: the fused program under direct-threaded computed-goto
//    dispatch (falls back to the switch loop where labels-as-values are
//    unavailable — see ThreadedDispatchAvailable()).
enum class ExecTier : std::uint8_t { kCompiled = 0, kFused = 1, kThreaded = 2 };

enum class BinAlu : std::uint8_t {
  kAdd, kSub, kMul, kMulWide, kMulHi, kDiv, kRem, kMin, kMax,
  kAnd, kOr, kXor, kShl, kShr,
};

enum class UnAlu : std::uint8_t { kNeg, kAbs, kNot, kSqrt };

enum class CmpOp : std::uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

inline constexpr std::uint16_t kNoPredSlot = 0xFFFF;

// One lowered instruction. Wide but flat: execution touches a handful of
// fields selected by `op`, and the array layout keeps the decode loop free
// of pointer chasing.
struct CompiledInst {
  COp op = COp::kRetExit;
  std::uint8_t sub = 0;  // BinAlu / UnAlu / CmpOp / vector lane count
  ptx::Type type = ptx::Type::kU64;      // operand type (width/signedness)
  ptx::Type src_type = ptx::Type::kU64;  // kCvt source type
  std::uint8_t width = 8;                // TypeSize(type), cached
  bool is_float = false;
  bool is_signed = false;

  // Guard predicate (`@%p` / `@!%p`); kNoPredSlot = unguarded.
  std::uint16_t pred_slot = kNoPredSlot;
  bool pred_negated = false;

  std::uint16_t dst = 0;  // destination register slot
  OperandDesc a, b, c;    // sources; kLd/kSt address base lives in `a`
  std::int64_t mem_offset = 0;
  std::uint16_t param_index = 0;
  // kBra: target pc. kBrx: branch-table index. kLdParam/kError: index into
  // CompiledKernel::strings (parameter name / error message).
  std::uint32_t target = 0;
  std::array<std::uint16_t, 4> vec{};  // ld/st v2/v4 lane slots

  // kError payload: the status the reference engine produced at this step.
  StatusCode error_code = StatusCode::kInternal;
  // True when the reference engine raised it through Fault() (recording
  // DeviceFault detail), false for plain operand-resolution statuses.
  bool error_is_fault = false;
};

// Micro-opcode of one superinstruction component, pre-decoded by FuseKernel.
// The generic bytecode switch pays (opcode dispatch + operand-kind switch +
// evaluator width/signedness dispatch) per instruction; a micro op folds all
// of that into one case with width masks and sign-extension shifts computed
// at fusion time. Anything outside the hot integer set (floats, div/rem,
// wide multiplies, memory, cvt, specials) lowers to kGeneric and executes
// the original CompiledInst through the full component switch — bit-for-bit
// the same semantics, just slower.
enum class MicroOp : std::uint8_t {
  kGeneric,  // run fused_code[i] through the generic component switch
  kMov,      // dst = a                       (unmasked, like COp::kMov)
  kAdd,      // dst = (a + b) & mask
  kSub,      // dst = (a - b) & mask
  kMulLo,    // dst = (a * b) & mask
  kAnd,      // dst = (a & b) & mask
  kOr,       // dst = (a | b) & mask
  kXor,      // dst = (a ^ b) & mask
  kShl,      // dst = ((a & mask) << (b & shmask)) & mask
  kShr,      // dst = (a' >> (b & shmask)) & mask   (a' per signedness)
  kMad,      // dst = (a * b + c) & mask            (mad.lo)
  kSetp,     // dst = compare(a, b) per cmp/signedness, as 0/1
  kSelp,     // dst = (c & 1) ? a : b               (unmasked, like kSelp)
  kBra,      // next_pc = target (honoring the guard predicate); terminal
};

// One pre-decoded superinstruction component. Sources are resolved at fusion
// time: `a/b/c` holds either a raw immediate bit pattern or a register slot,
// selected by the matching bit in `src_imm` (unused sources are immediate 0,
// so the executor never reads the register file for them).
struct FusedComp {
  MicroOp op = MicroOp::kGeneric;
  std::uint8_t cmp = 0;        // kSetp: CmpOp
  std::uint8_t src_imm = 0x7;  // bit 0/1/2: a/b/c is an immediate
  bool is_signed = false;      // kShr / kSetp signed variants
  std::uint16_t dst = 0;
  std::uint16_t pred_slot = kNoPredSlot;  // kBra guard
  bool pred_negated = false;
  std::uint8_t sx = 0;         // 64 - width*8: sign-extension shift
  std::uint8_t shmask = 63;    // width*8 - 1: shift-amount mask
  std::uint64_t mask = ~0ull;  // MaskToWidth(x, width) precomputed
  std::uint64_t a = 0, b = 0, c = 0;  // register slot or immediate bits
  std::uint32_t target = 0;    // kBra target pc
};

// brx.idx target table with labels resolved to pcs. An entry whose label did
// not exist keeps kUnresolved and faults (NotFound, like the reference
// engine) only if that index is actually taken.
struct BranchTable {
  static constexpr std::uint32_t kUnresolved = 0xFFFF'FFFFu;
  std::vector<std::uint32_t> pcs;
  std::vector<std::uint32_t> label_strings;  // strings index per entry
};

// A kernel lowered to dense bytecode. Immutable after CompileKernel; shared
// across tenants via shared_ptr (the SandboxCache stores it next to the
// patched module, so a cache hit skips parse, patch AND compile).
struct CompiledKernel {
  std::string name;
  std::vector<CompiledInst> code;
  std::vector<BranchTable> branch_tables;
  std::vector<std::string> strings;  // cold-path message/name pool
  std::uint16_t reg_slots = 0;       // dense register-file size per thread
  std::size_t param_count = 0;
  std::uint64_t shared_size = 0;     // per-block shared segment, bytes

  // Tier >= 1 programs only (FuseKernel, tier.hpp). A kFused instruction at
  // pc replaces the first instruction of a fused run and executes the
  // components fused_code[target .. target+sub) back to back; the covered
  // originals at pc+1 .. pc+sub-1 stay in place, so a branch into the middle
  // of a fused region still executes them individually and no branch target
  // ever needs remapping.
  std::vector<CompiledInst> fused_code;
  // Parallel to fused_code: the pre-decoded micro op per component (kGeneric
  // entries fall back to the CompiledInst above).
  std::vector<FusedComp> fused_micro;
  std::uint32_t super_count = 0;         // kFused instructions emitted
  std::uint32_t fused_instructions = 0;  // original instructions covered
};

// Lowers one kernel. Fails only on structural problems PrepareKernel also
// rejected (duplicate labels) or hard limits (register/instruction counts
// beyond the index types); per-instruction problems compile into kError.
Result<CompiledKernel> CompileKernel(const ptx::Kernel& kernel);

// Every kernel of a module, compiled once. Kernels that failed to compile
// store their error and reproduce it at launch (matching the reference
// engine, which surfaced such errors per-Execute).
class CompiledModule {
 public:
  static std::shared_ptr<const CompiledModule> Compile(
      const ptx::Module& module);

  // The compiled kernel, NotFound ("kernel X not in module" — the reference
  // engine's message) for unknown names, or the kernel's compile error.
  Result<std::shared_ptr<const CompiledKernel>> Find(
      std::string_view kernel_name) const;

  // Tier-1 copy of the module: every successfully compiled kernel rewritten
  // by FuseKernel (tier.cpp); kernels that failed to compile keep their
  // error. `superinstructions` (optional) receives the total fused count.
  std::shared_ptr<const CompiledModule> Fused(
      std::uint64_t* superinstructions) const;

 private:
  struct Entry {
    std::string name;
    std::shared_ptr<const CompiledKernel> kernel;  // null when compile failed
    Status error;
  };
  std::vector<Entry> entries_;
};

}  // namespace grd::ptxexec
