// One-time PTX-to-bytecode compilation for the functional interpreter.
//
// The string-map interpreter (interpreter.cpp's reference engine) pays
// per-step costs native hardware never would: register names hashed into
// per-thread unordered_maps, opcodes dispatched by string compare, branch
// targets / params / shared variables resolved through string maps, and a
// `name.find('.')` special-register scan on every register read. CompileKernel
// pays all of those costs exactly once, lowering a parsed (and possibly
// patched) kernel into a CompiledKernel:
//  - opcodes become a dense enum (`COp` + alu/compare sub-ops);
//  - register names are interned to dense uint16 slots, so a thread's
//    register file is a flat uint64 array indexed by slot;
//  - special registers (%tid.x, %ctaid.y, ...) become a compile-time operand
//    kind with an enum id — no per-access string scan;
//  - immediates are pre-encoded into the bit pattern the consuming
//    instruction reads (float immediates per the operand's read type);
//  - labels and brx.idx branch tables are resolved to instruction indices;
//  - ld.param name lookups become parameter indices, shared variables become
//    pre-tagged absolute offsets into the block's shared segment.
//
// Error semantics match the reference engine: anything the old interpreter
// only raised when an instruction was actually *stepped on* (unimplemented
// opcodes, unknown special registers, malformed modifier lists, dangling
// branch targets) compiles into a kError instruction that reproduces the
// same status when — and only when — execution reaches it. Compilation
// itself fails only where PrepareKernel used to fail (duplicate labels) or
// on hard structural limits (too many registers for uint16 slots).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "ptx/ast.hpp"
#include "ptxexec/launch.hpp"

namespace grd::ptxexec {

// Special registers resolved at compile time (the reference engine re-parses
// the register name on every read).
enum class SpecialReg : std::uint8_t {
  kTidX, kTidY, kTidZ,
  kNtidX, kNtidY, kNtidZ,
  kCtaidX, kCtaidY, kCtaidZ,
  kNctaidX, kNctaidY, kNctaidZ,
  kLaneId, kWarpSize,
};

// A pre-decoded source operand: reading one is a switch on `kind` plus an
// array index — never a hash or a string compare.
struct OperandDesc {
  enum class Kind : std::uint8_t { kReg, kImm, kSpecial };
  Kind kind = Kind::kImm;
  SpecialReg sreg = SpecialReg::kTidX;  // kSpecial
  std::uint16_t slot = 0;               // kReg: dense register slot
  std::uint64_t imm = 0;                // kImm: pre-encoded bit pattern
};

// Dense opcode set. Families that share an execution shape share a COp and
// carry an alu/compare discriminator in CompiledInst::sub.
enum class COp : std::uint8_t {
  kLdParam,   // dst <- launch arg [param_index], masked to width
  kLd,        // dst (or vec lanes) <- memory at a + mem_offset
  kSt,        // memory at a + mem_offset <- b (or vec lanes)
  kMov,       // dst <- a (also cvta: identity in the flat address space)
  kCvt,       // dst <- convert(a, src_type -> type)
  kBinary,    // dst <- a (BinAlu) b
  kMad,       // dst <- a * b + c (sub: 0 = masked, 1 = wide)
  kUnary,     // dst <- (UnAlu) a
  kSetp,      // dst <- a (CmpOp) b, as 0/1
  kSelp,      // dst <- (c & 1) ? a : b
  kBra,       // pc <- target
  kBrx,       // pc <- branch_tables[target][a], faulting out of range
  kBar,       // barrier (block-wide phase boundary)
  kRetExit,   // thread done
  kTrap,      // bounds-check trap: device fault
  kError,     // reproduces a reference-engine step-time error when reached
};

enum class BinAlu : std::uint8_t {
  kAdd, kSub, kMul, kMulWide, kMulHi, kDiv, kRem, kMin, kMax,
  kAnd, kOr, kXor, kShl, kShr,
};

enum class UnAlu : std::uint8_t { kNeg, kAbs, kNot, kSqrt };

enum class CmpOp : std::uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

inline constexpr std::uint16_t kNoPredSlot = 0xFFFF;

// One lowered instruction. Wide but flat: execution touches a handful of
// fields selected by `op`, and the array layout keeps the decode loop free
// of pointer chasing.
struct CompiledInst {
  COp op = COp::kRetExit;
  std::uint8_t sub = 0;  // BinAlu / UnAlu / CmpOp / vector lane count
  ptx::Type type = ptx::Type::kU64;      // operand type (width/signedness)
  ptx::Type src_type = ptx::Type::kU64;  // kCvt source type
  std::uint8_t width = 8;                // TypeSize(type), cached
  bool is_float = false;
  bool is_signed = false;

  // Guard predicate (`@%p` / `@!%p`); kNoPredSlot = unguarded.
  std::uint16_t pred_slot = kNoPredSlot;
  bool pred_negated = false;

  std::uint16_t dst = 0;  // destination register slot
  OperandDesc a, b, c;    // sources; kLd/kSt address base lives in `a`
  std::int64_t mem_offset = 0;
  std::uint16_t param_index = 0;
  // kBra: target pc. kBrx: branch-table index. kLdParam/kError: index into
  // CompiledKernel::strings (parameter name / error message).
  std::uint32_t target = 0;
  std::array<std::uint16_t, 4> vec{};  // ld/st v2/v4 lane slots

  // kError payload: the status the reference engine produced at this step.
  StatusCode error_code = StatusCode::kInternal;
  // True when the reference engine raised it through Fault() (recording
  // DeviceFault detail), false for plain operand-resolution statuses.
  bool error_is_fault = false;
};

// brx.idx target table with labels resolved to pcs. An entry whose label did
// not exist keeps kUnresolved and faults (NotFound, like the reference
// engine) only if that index is actually taken.
struct BranchTable {
  static constexpr std::uint32_t kUnresolved = 0xFFFF'FFFFu;
  std::vector<std::uint32_t> pcs;
  std::vector<std::uint32_t> label_strings;  // strings index per entry
};

// A kernel lowered to dense bytecode. Immutable after CompileKernel; shared
// across tenants via shared_ptr (the SandboxCache stores it next to the
// patched module, so a cache hit skips parse, patch AND compile).
struct CompiledKernel {
  std::string name;
  std::vector<CompiledInst> code;
  std::vector<BranchTable> branch_tables;
  std::vector<std::string> strings;  // cold-path message/name pool
  std::uint16_t reg_slots = 0;       // dense register-file size per thread
  std::size_t param_count = 0;
  std::uint64_t shared_size = 0;     // per-block shared segment, bytes
};

// Lowers one kernel. Fails only on structural problems PrepareKernel also
// rejected (duplicate labels) or hard limits (register/instruction counts
// beyond the index types); per-instruction problems compile into kError.
Result<CompiledKernel> CompileKernel(const ptx::Kernel& kernel);

// Every kernel of a module, compiled once. Kernels that failed to compile
// store their error and reproduce it at launch (matching the reference
// engine, which surfaced such errors per-Execute).
class CompiledModule {
 public:
  static std::shared_ptr<const CompiledModule> Compile(
      const ptx::Module& module);

  // The compiled kernel, NotFound ("kernel X not in module" — the reference
  // engine's message) for unknown names, or the kernel's compile error.
  Result<std::shared_ptr<const CompiledKernel>> Find(
      std::string_view kernel_name) const;

 private:
  struct Entry {
    std::string name;
    std::shared_ptr<const CompiledKernel> kernel;  // null when compile failed
    Status error;
  };
  std::vector<Entry> entries_;
};

}  // namespace grd::ptxexec
