// CompileKernel (AST -> dense bytecode) and the compiled block executor.
//
// The compiler mirrors the reference engine's Step() case by case; anything
// that engine raised only when an instruction was actually executed is
// lowered to a kError instruction carrying the identical status, so parity
// holds even for kernels with dead broken code. The executor mirrors the
// reference RunBlock/Execute structure (barrier phases, instruction budget,
// preemption polls, checkpoint/resume) over flat arrays instead of string
// maps.
#include "ptxexec/program.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <unordered_map>
#include <utility>

#include "ptxexec/exec_core.hpp"
#include "ptxexec/interpreter.hpp"
#include "ptxexec/scalar_ops.hpp"

namespace grd::ptxexec {
namespace {

using ptx::Instruction;
using ptx::Kernel;
using ptx::Operand;
using ptx::StateSpace;
using ptx::Type;
using scalar::F32Bits;
using scalar::F64Bits;
using scalar::kSharedTag;
using scalar::MaskToWidth;
using scalar::SignExtend;

// ---- compiler -------------------------------------------------------------

// A problem the reference engine would only raise when the instruction is
// stepped on; the whole instruction compiles into kError reproducing it.
struct StepError {
  bool set = false;
  StatusCode code = StatusCode::kInternal;
  std::string message;
  bool is_fault = false;  // raised via Fault() (device-fault detail) or not
};

std::optional<SpecialReg> ParseSpecialReg(const std::string& name) {
  if (name == "%tid.x") return SpecialReg::kTidX;
  if (name == "%tid.y") return SpecialReg::kTidY;
  if (name == "%tid.z") return SpecialReg::kTidZ;
  if (name == "%ntid.x") return SpecialReg::kNtidX;
  if (name == "%ntid.y") return SpecialReg::kNtidY;
  if (name == "%ntid.z") return SpecialReg::kNtidZ;
  if (name == "%ctaid.x") return SpecialReg::kCtaidX;
  if (name == "%ctaid.y") return SpecialReg::kCtaidY;
  if (name == "%ctaid.z") return SpecialReg::kCtaidZ;
  if (name == "%nctaid.x") return SpecialReg::kNctaidX;
  if (name == "%nctaid.y") return SpecialReg::kNctaidY;
  if (name == "%nctaid.z") return SpecialReg::kNctaidZ;
  if (name == "%laneid") return SpecialReg::kLaneId;
  if (name == "%warpsize" || name == "WARP_SZ") return SpecialReg::kWarpSize;
  return std::nullopt;
}

class KernelCompiler {
 public:
  explicit KernelCompiler(const Kernel& kernel) : kernel_(kernel) {}

  Result<CompiledKernel> Compile();

 private:
  Status Flatten();
  Status Lower(const Instruction& inst, CompiledInst* out);

  Result<std::uint16_t> Intern(const std::string& name) {
    const auto it = reg_slots_.find(name);
    if (it != reg_slots_.end()) return it->second;
    if (reg_slots_.size() >= kNoPredSlot)
      return Status(InvalidArgument("kernel " + kernel_.name +
                                    " declares too many registers"));
    const auto slot = static_cast<std::uint16_t>(reg_slots_.size());
    reg_slots_.emplace(name, slot);
    return slot;
  }

  std::uint32_t AddString(std::string s) {
    out_.strings.push_back(std::move(s));
    return static_cast<std::uint32_t>(out_.strings.size() - 1);
  }

  // Compiles an operand read the reference engine performed as
  // ReadOperand(op, read_type). A reference step-time error becomes `err`.
  OperandDesc CompileValue(const Operand& op, Type read_type, StepError* err);
  // Compiles a ld/st address base (reference ResolveAddress); the memory
  // displacement lands in `offset` (folded into the imm for shared bases).
  OperandDesc CompileAddress(const Operand& mem, std::int64_t* offset,
                             StepError* err);

  const Kernel& kernel_;
  CompiledKernel out_;
  std::vector<const Instruction*> insts_;
  std::unordered_map<std::string, std::uint16_t> reg_slots_;
  std::unordered_map<std::string, std::uint32_t> labels_;
  std::unordered_map<std::string, const ptx::BranchTargetsDecl*> raw_tables_;
  std::unordered_map<std::string, std::uint16_t> param_index_;
  std::unordered_map<std::string, std::uint64_t> shared_offsets_;
};

OperandDesc KernelCompiler::CompileValue(const Operand& op, Type read_type,
                                         StepError* err) {
  OperandDesc desc;
  if (err->set) return desc;  // an earlier operand already errored
  switch (op.kind) {
    case Operand::Kind::kRegister: {
      // The reference engine routes dotted names (plus %laneid/%warpsize)
      // through the special-register scan on every read; here the
      // classification happens exactly once.
      if (op.name.find('.') != std::string::npos || op.name == "%laneid" ||
          op.name == "%warpsize") {
        if (const auto sreg = ParseSpecialReg(op.name)) {
          desc.kind = OperandDesc::Kind::kSpecial;
          desc.sreg = *sreg;
          return desc;
        }
        *err = StepError{true, StatusCode::kNotFound,
                         "unknown special register " + op.name,
                         /*is_fault=*/false};
        return desc;
      }
      auto slot = Intern(op.name);
      if (!slot.ok()) {
        *err = StepError{true, slot.status().code(),
                         std::string(slot.status().message()),
                         /*is_fault=*/false};
        return desc;
      }
      desc.kind = OperandDesc::Kind::kReg;
      desc.slot = *slot;
      return desc;
    }
    case Operand::Kind::kImmediate:
      desc.kind = OperandDesc::Kind::kImm;
      if (op.is_float_imm) {
        desc.imm = read_type == Type::kF64
                       ? F64Bits(op.fval)
                       : F32Bits(static_cast<float>(op.fval));
      } else {
        desc.imm = static_cast<std::uint64_t>(op.ival);
      }
      return desc;
    case Operand::Kind::kIdentifier: {
      // Address of a shared variable (e.g. `mov.u64 %rd, sdata;`).
      const auto it = shared_offsets_.find(op.name);
      if (it != shared_offsets_.end()) {
        desc.kind = OperandDesc::Kind::kImm;
        desc.imm = kSharedTag | it->second;
        return desc;
      }
      *err = StepError{true, StatusCode::kNotFound,
                       "unknown identifier operand " + op.name,
                       /*is_fault=*/false};
      return desc;
    }
    default:
      *err = StepError{true, StatusCode::kInvalidArgument,
                       "operand kind not readable as a value",
                       /*is_fault=*/false};
      return desc;
  }
}

OperandDesc KernelCompiler::CompileAddress(const Operand& mem,
                                           std::int64_t* offset,
                                           StepError* err) {
  *offset = 0;
  if (err->set) return OperandDesc{};
  if (mem.MemBaseIsRegister()) {
    OperandDesc desc = CompileValue(Operand::Reg(mem.name), Type::kU64, err);
    *offset = mem.offset;
    return desc;
  }
  const auto it = shared_offsets_.find(mem.name);
  if (it != shared_offsets_.end()) {
    OperandDesc desc;
    desc.kind = OperandDesc::Kind::kImm;
    desc.imm = (kSharedTag | it->second) + static_cast<std::uint64_t>(mem.offset);
    return desc;
  }
  *err = StepError{true, StatusCode::kNotFound,
                   "unknown memory base symbol " + mem.name,
                   /*is_fault=*/false};
  return OperandDesc{};
}

Status KernelCompiler::Flatten() {
  for (std::size_t i = 0; i < kernel_.params.size(); ++i)
    param_index_[kernel_.params[i].name] = static_cast<std::uint16_t>(i);
  for (const auto& stmt : kernel_.body) {
    if (const auto* inst = std::get_if<Instruction>(&stmt)) {
      insts_.push_back(inst);
      continue;
    }
    if (const auto* label = std::get_if<ptx::Label>(&stmt)) {
      if (!labels_
               .emplace(label->name, static_cast<std::uint32_t>(insts_.size()))
               .second)
        return InvalidArgument("duplicate label " + label->name);
      continue;
    }
    if (const auto* table = std::get_if<ptx::BranchTargetsDecl>(&stmt)) {
      raw_tables_[table->name] = table;
      continue;
    }
    if (const auto* var = std::get_if<ptx::VarDecl>(&stmt)) {
      if (var->space == StateSpace::kShared) {
        const std::uint64_t bytes =
            (var->array_size < 0 ? 1 : var->array_size) *
            ptx::TypeSize(var->type);
        const std::uint64_t align = var->align > 0 ? var->align : 8;
        out_.shared_size = (out_.shared_size + align - 1) & ~(align - 1);
        shared_offsets_[var->name] = out_.shared_size;
        out_.shared_size += bytes;
      }
      continue;
    }
    // RegDecl: slots are interned on first use, like the dynamic reg files.
  }
  return OkStatus();
}

Status KernelCompiler::Lower(const Instruction& inst, CompiledInst* out) {
  const Type type = inst.TypeModifier().value_or(Type::kU64);
  out->type = type;
  out->width = static_cast<std::uint8_t>(ptx::TypeSize(type));
  out->is_float = ptx::IsFloat(type);
  out->is_signed = ptx::IsSigned(type);

  if (inst.pred) {
    GRD_ASSIGN_OR_RETURN(out->pred_slot, Intern(inst.pred->reg));
    out->pred_negated = inst.pred->negated;
  }

  const auto& ops = inst.operands;
  const std::string& opc = inst.opcode;
  StepError err;

  // Emits the step-time error the reference engine produced, preserving its
  // operand evaluation order (the StepError captures the first failure).
  const auto emit_error = [&]() {
    out->op = COp::kError;
    out->error_code = err.code;
    out->error_is_fault = err.is_fault;
    out->target = AddString(std::move(err.message));
    return OkStatus();
  };
  const auto fault_error = [&](StatusCode code, std::string message) {
    err = StepError{true, code, std::move(message), /*is_fault=*/true};
    return emit_error();
  };
  // A malformed operand list would have been undefined behaviour in the
  // reference engine; the compiler degrades it to a step-time error.
  const auto need_ops = [&](std::size_t n) {
    if (ops.size() >= n) return true;
    err = StepError{true, StatusCode::kInvalidArgument,
                    "malformed " + opc + " instruction: expected " +
                        std::to_string(n) + " operands",
                    /*is_fault=*/false};
    return false;
  };

  if (opc == "ld") {
    if (!need_ops(2)) return emit_error();
    const auto space = inst.SpaceModifier().value_or(StateSpace::kGeneric);
    if (space == StateSpace::kParam) {
      const auto it = param_index_.find(ops[1].name);
      if (it == param_index_.end())
        return fault_error(StatusCode::kNotFound,
                           "unknown kernel parameter " + ops[1].name);
      out->op = COp::kLdParam;
      out->param_index = it->second;
      out->target = AddString(ops[1].name);  // for the missing-arg fault
      GRD_ASSIGN_OR_RETURN(out->dst, Intern(ops[0].name));
      return OkStatus();
    }
    out->op = COp::kLd;
    out->a = CompileAddress(ops[1], &out->mem_offset, &err);
    if (err.set) return emit_error();
    const int lanes = inst.VectorWidth();
    out->sub = static_cast<std::uint8_t>(lanes);
    if (lanes > 1) {
      if (ops[0].vec.size() < static_cast<std::size_t>(lanes))
        return fault_error(StatusCode::kInvalidArgument,
                           "vector load with too few lane registers");
      for (int lane = 0; lane < lanes; ++lane) {
        GRD_ASSIGN_OR_RETURN(out->vec[lane], Intern(ops[0].vec[lane]));
      }
    } else {
      GRD_ASSIGN_OR_RETURN(out->dst, Intern(ops[0].name));
    }
    return OkStatus();
  }

  if (opc == "st") {
    if (!need_ops(2)) return emit_error();
    out->op = COp::kSt;
    out->a = CompileAddress(ops[0], &out->mem_offset, &err);
    if (err.set) return emit_error();
    const int lanes = inst.VectorWidth();
    out->sub = static_cast<std::uint8_t>(lanes);
    if (lanes > 1) {
      if (ops[1].vec.size() < static_cast<std::size_t>(lanes))
        return fault_error(StatusCode::kInvalidArgument,
                           "vector store with too few lane registers");
      for (int lane = 0; lane < lanes; ++lane) {
        GRD_ASSIGN_OR_RETURN(out->vec[lane], Intern(ops[1].vec[lane]));
      }
    } else {
      out->b = CompileValue(ops[1], type, &err);
      if (err.set) return emit_error();
    }
    return OkStatus();
  }

  if (opc == "mov" || opc == "cvta") {
    if (!need_ops(2)) return emit_error();
    out->op = COp::kMov;
    out->a = CompileValue(ops[1], type, &err);
    if (err.set) return emit_error();
    GRD_ASSIGN_OR_RETURN(out->dst, Intern(ops[0].name));
    return OkStatus();
  }

  if (opc == "cvt") {
    if (!need_ops(2)) return emit_error();
    std::vector<Type> types;
    for (const auto& mod : inst.modifiers)
      if (auto mt = ptx::ParseType(mod)) types.push_back(*mt);
    if (types.size() < 2)
      return fault_error(StatusCode::kInvalidArgument,
                         "cvt needs dst and src types");
    out->op = COp::kCvt;
    out->type = types[types.size() - 2];
    out->src_type = types[types.size() - 1];
    out->a = CompileValue(ops[1], out->src_type, &err);
    if (err.set) return emit_error();
    GRD_ASSIGN_OR_RETURN(out->dst, Intern(ops[0].name));
    return OkStatus();
  }

  const bool is_float = out->is_float;
  const auto binary = [&](BinAlu alu) {
    out->op = COp::kBinary;
    out->sub = static_cast<std::uint8_t>(alu);
    return OkStatus();
  };

  if (opc == "add" || opc == "sub" || opc == "mul" || opc == "div" ||
      opc == "rem" || opc == "min" || opc == "max" || opc == "and" ||
      opc == "or" || opc == "xor" || opc == "shl" || opc == "shr") {
    if (!need_ops(3)) return emit_error();
    out->a = CompileValue(ops[1], type, &err);
    out->b = CompileValue(ops[2], type, &err);
    if (err.set) return emit_error();
    GRD_ASSIGN_OR_RETURN(out->dst, Intern(ops[0].name));
    if (is_float) {
      if (opc == "add") return binary(BinAlu::kAdd);
      if (opc == "sub") return binary(BinAlu::kSub);
      if (opc == "mul") return binary(BinAlu::kMul);
      if (opc == "div") return binary(BinAlu::kDiv);
      if (opc == "min") return binary(BinAlu::kMin);
      if (opc == "max") return binary(BinAlu::kMax);
      return fault_error(StatusCode::kUnimplemented, "float " + opc);
    }
    if (opc == "mul" && inst.HasModifier("wide"))
      return binary(BinAlu::kMulWide);
    if (opc == "mul" && inst.HasModifier("hi")) return binary(BinAlu::kMulHi);
    if (opc == "add") return binary(BinAlu::kAdd);
    if (opc == "sub") return binary(BinAlu::kSub);
    if (opc == "mul") return binary(BinAlu::kMul);  // .lo
    if (opc == "div") return binary(BinAlu::kDiv);
    if (opc == "rem") return binary(BinAlu::kRem);
    if (opc == "min") return binary(BinAlu::kMin);
    if (opc == "max") return binary(BinAlu::kMax);
    if (opc == "and") return binary(BinAlu::kAnd);
    if (opc == "or") return binary(BinAlu::kOr);
    if (opc == "xor") return binary(BinAlu::kXor);
    if (opc == "shl") return binary(BinAlu::kShl);
    return binary(BinAlu::kShr);
  }

  if (opc == "mad" || opc == "fma") {
    if (!need_ops(4)) return emit_error();
    out->a = CompileValue(ops[1], type, &err);
    out->b = CompileValue(ops[2], type, &err);
    out->c = CompileValue(ops[3], type, &err);
    if (err.set) return emit_error();
    GRD_ASSIGN_OR_RETURN(out->dst, Intern(ops[0].name));
    out->op = COp::kMad;
    out->sub = (!is_float && inst.HasModifier("wide")) ? 1 : 0;
    return OkStatus();
  }

  if (opc == "neg" || opc == "abs" || opc == "not" || opc == "sqrt") {
    if (!need_ops(2)) return emit_error();
    out->a = CompileValue(ops[1], type, &err);
    if (err.set) return emit_error();
    GRD_ASSIGN_OR_RETURN(out->dst, Intern(ops[0].name));
    if (is_float && opc == "not")
      return fault_error(StatusCode::kUnimplemented, "float not");
    if (!is_float && opc == "sqrt")
      return fault_error(StatusCode::kUnimplemented, "int sqrt");
    out->op = COp::kUnary;
    out->sub = static_cast<std::uint8_t>(
        opc == "neg" ? UnAlu::kNeg
                     : opc == "abs" ? UnAlu::kAbs
                                    : opc == "not" ? UnAlu::kNot
                                                   : UnAlu::kSqrt);
    return OkStatus();
  }

  if (opc == "setp") {
    if (!need_ops(3)) return emit_error();
    out->a = CompileValue(ops[1], type, &err);
    out->b = CompileValue(ops[2], type, &err);
    if (err.set) return emit_error();
    GRD_ASSIGN_OR_RETURN(out->dst, Intern(ops[0].name));
    const std::string& cmp = inst.modifiers.empty() ? "" : inst.modifiers[0];
    const bool is_unsigned = !is_float && !out->is_signed;
    CmpOp op_code;
    if (cmp == "eq") op_code = CmpOp::kEq;
    else if (cmp == "ne") op_code = CmpOp::kNe;
    else if (cmp == "lt" || (is_unsigned && cmp == "lo")) op_code = CmpOp::kLt;
    else if (cmp == "le" || (is_unsigned && cmp == "ls")) op_code = CmpOp::kLe;
    else if (cmp == "gt" || (is_unsigned && cmp == "hi")) op_code = CmpOp::kGt;
    else if (cmp == "ge" || (is_unsigned && cmp == "hs")) op_code = CmpOp::kGe;
    else
      return fault_error(StatusCode::kUnimplemented,
                         "setp." + cmp +
                             (is_float ? " (float)"
                                       : out->is_signed ? " (signed)"
                                                        : " (unsigned)"));
    out->op = COp::kSetp;
    out->sub = static_cast<std::uint8_t>(op_code);
    return OkStatus();
  }

  if (opc == "selp") {
    if (!need_ops(4)) return emit_error();
    out->a = CompileValue(ops[1], type, &err);
    out->b = CompileValue(ops[2], type, &err);
    out->c = CompileValue(ops[3], Type::kPred, &err);
    if (err.set) return emit_error();
    GRD_ASSIGN_OR_RETURN(out->dst, Intern(ops[0].name));
    out->op = COp::kSelp;
    return OkStatus();
  }

  if (opc == "bra") {
    if (!need_ops(1)) return emit_error();
    const auto it = labels_.find(ops[0].name);
    if (it == labels_.end())
      return fault_error(StatusCode::kNotFound,
                         "branch target " + ops[0].name);
    out->op = COp::kBra;
    out->target = it->second;
    return OkStatus();
  }

  if (opc == "brx") {
    if (!need_ops(2)) return emit_error();
    out->a = CompileValue(ops[0], type, &err);
    if (err.set) return emit_error();
    const auto table_it = raw_tables_.find(ops[1].name);
    if (table_it == raw_tables_.end())
      return fault_error(StatusCode::kNotFound,
                         "branch table " + ops[1].name);
    BranchTable table;
    for (const auto& label : table_it->second->labels) {
      const auto label_it = labels_.find(label);
      if (label_it == labels_.end()) {
        // Faults only if this index is actually taken, like the reference.
        table.pcs.push_back(BranchTable::kUnresolved);
        table.label_strings.push_back(AddString("branch target " + label));
      } else {
        table.pcs.push_back(label_it->second);
        table.label_strings.push_back(0);
      }
    }
    out->op = COp::kBrx;
    out->target = static_cast<std::uint32_t>(out_.branch_tables.size());
    out_.branch_tables.push_back(std::move(table));
    return OkStatus();
  }

  if (opc == "bar") {
    out->op = COp::kBar;
    return OkStatus();
  }

  if (opc == "ret" || opc == "exit") {
    out->op = COp::kRetExit;
    return OkStatus();
  }

  if (opc == "trap") {
    out->op = COp::kTrap;
    return OkStatus();
  }

  return fault_error(StatusCode::kUnimplemented, "opcode " + opc);
}

Result<CompiledKernel> KernelCompiler::Compile() {
  out_.name = kernel_.name;
  out_.param_count = kernel_.params.size();
  // strings[0] is reserved so 0 is never a live message index.
  out_.strings.emplace_back();
  GRD_RETURN_IF_ERROR(Flatten());
  if (insts_.size() >= BranchTable::kUnresolved)
    return Status(InvalidArgument("kernel " + kernel_.name +
                                  " has too many instructions"));
  out_.code.reserve(insts_.size());
  for (const Instruction* inst : insts_) {
    CompiledInst lowered;
    GRD_RETURN_IF_ERROR(Lower(*inst, &lowered));
    out_.code.push_back(lowered);
  }
  out_.reg_slots = static_cast<std::uint16_t>(reg_slots_.size());
  return std::move(out_);
}

// ---- compiled block executor ----------------------------------------------

using exec_core::CThread;

enum class StepOutcome { kContinue, kBarrier, kDone };

// The tier-0 engine: one Step per dispatched instruction through an enum
// switch. Machine state and scalar semantics live in exec_core (shared with
// the tiered executor in tier.cpp).
class CompiledBlockExecutor : public exec_core::EngineBase {
 public:
  CompiledBlockExecutor(const CompiledKernel& prog, const LaunchParams& params,
                        simgpu::GlobalMemory* memory,
                        simgpu::AccessPolicy* policy, std::uint64_t client,
                        std::uint64_t max_instructions, ExecStats* stats,
                        const std::atomic<bool>* preempt = nullptr,
                        std::uint64_t preempt_check_interval = 0)
      : EngineBase(prog, params, memory, policy, client, max_instructions,
                   stats, preempt, preempt_check_interval) {}

  // Runs one block to completion (all threads), honoring bar.sync phases.
  Status RunBlock(std::uint32_t bx, std::uint32_t by, std::uint32_t bz,
                  DeviceFault* fault);

 private:
  Status Step(CThread& t, std::uint64_t* regs, StepOutcome* outcome);
};

Status CompiledBlockExecutor::Step(CThread& t, std::uint64_t* regs,
                                   StepOutcome* outcome) {
  *outcome = StepOutcome::kContinue;
  if (t.pc >= prog_.code.size()) {
    *outcome = StepOutcome::kDone;
    return OkStatus();
  }
  const CompiledInst& inst = prog_.code[t.pc];
  ++stats_->instructions;

  // Guard predicate: one array read, no hash.
  if (inst.pred_slot != kNoPredSlot) {
    const bool value = (regs[inst.pred_slot] & 1) != 0;
    if (value == inst.pred_negated) {
      ++t.pc;
      return OkStatus();
    }
  }

  const std::size_t width = inst.width;

  switch (inst.op) {
    case COp::kLdParam: {
      if (inst.param_index >= params_.args.size())
        return Fault(InvalidArgument("missing argument for parameter " +
                                     prog_.strings[inst.target]),
                     0, t);
      regs[inst.dst] =
          MaskToWidth(params_.args[inst.param_index].bits, width);
      ++t.pc;
      return OkStatus();
    }

    case COp::kLd: {
      const std::uint64_t addr = ReadOp(t, regs, inst.a) +
                                 static_cast<std::uint64_t>(inst.mem_offset);
      if (inst.sub > 1) {
        for (int lane = 0; lane < inst.sub; ++lane) {
          auto bits = LoadSized(addr + lane * width, width);
          if (!bits.ok()) return Fault(bits.status(), addr, t);
          regs[inst.vec[lane]] = *bits;
        }
      } else {
        auto bits = LoadSized(addr, width);
        if (!bits.ok()) return Fault(bits.status(), addr, t);
        // Sign-extend signed sub-64-bit loads so later s64 arithmetic works.
        regs[inst.dst] =
            inst.is_signed
                ? static_cast<std::uint64_t>(SignExtend(*bits, width))
                : *bits;
      }
      ++t.pc;
      return OkStatus();
    }

    case COp::kSt: {
      const std::uint64_t addr = ReadOp(t, regs, inst.a) +
                                 static_cast<std::uint64_t>(inst.mem_offset);
      if (inst.sub > 1) {
        for (int lane = 0; lane < inst.sub; ++lane) {
          const Status s = StoreSized(
              addr + lane * width, MaskToWidth(regs[inst.vec[lane]], width),
              width);
          if (!s.ok()) return Fault(s, addr, t);
        }
      } else {
        const Status s = StoreSized(
            addr, MaskToWidth(ReadOp(t, regs, inst.b), width), width);
        if (!s.ok()) return Fault(s, addr, t);
      }
      ++t.pc;
      return OkStatus();
    }

    case COp::kMov: {
      regs[inst.dst] = ReadOp(t, regs, inst.a);
      ++t.pc;
      return OkStatus();
    }

    case COp::kCvt: {
      regs[inst.dst] = exec_core::EvalCvt(inst.type, inst.src_type,
                                          ReadOp(t, regs, inst.a));
      ++t.pc;
      return OkStatus();
    }

    case COp::kBinary: {
      regs[inst.dst] = exec_core::EvalBinary(inst, ReadOp(t, regs, inst.a),
                                             ReadOp(t, regs, inst.b));
      ++t.pc;
      return OkStatus();
    }

    case COp::kMad: {
      regs[inst.dst] = exec_core::EvalMad(inst, ReadOp(t, regs, inst.a),
                                          ReadOp(t, regs, inst.b),
                                          ReadOp(t, regs, inst.c));
      ++t.pc;
      return OkStatus();
    }

    case COp::kUnary: {
      regs[inst.dst] = exec_core::EvalUnary(inst, ReadOp(t, regs, inst.a));
      ++t.pc;
      return OkStatus();
    }

    case COp::kSetp: {
      regs[inst.dst] = exec_core::EvalSetp(inst, ReadOp(t, regs, inst.a),
                                           ReadOp(t, regs, inst.b))
                           ? 1
                           : 0;
      ++t.pc;
      return OkStatus();
    }

    case COp::kSelp: {
      const std::uint64_t a = ReadOp(t, regs, inst.a);
      const std::uint64_t b = ReadOp(t, regs, inst.b);
      const std::uint64_t p = ReadOp(t, regs, inst.c);
      regs[inst.dst] = (p & 1) ? a : b;
      ++t.pc;
      return OkStatus();
    }

    case COp::kBra: {
      t.pc = inst.target;
      return OkStatus();
    }

    case COp::kBrx: {
      // brx.idx %index, table; — the paper's unsafe indirect branch (§3):
      // out-of-range indices are modeled as a device fault; Guardian's patch
      // clamps the index so the patched kernel cannot reach it.
      const std::uint64_t idx = ReadOp(t, regs, inst.a);
      const BranchTable& table = prog_.branch_tables[inst.target];
      if (idx >= table.pcs.size())
        return Fault(OutOfRange("brx.idx index " + std::to_string(idx) +
                                " outside table of " +
                                std::to_string(table.pcs.size())),
                     idx, t);
      const std::uint32_t target = table.pcs[idx];
      if (target == BranchTable::kUnresolved)
        return Fault(
            Status(StatusCode::kNotFound,
                   prog_.strings[table.label_strings[idx]]),
            0, t);
      t.pc = target;
      return OkStatus();
    }

    case COp::kBar: {
      ++t.pc;
      *outcome = StepOutcome::kBarrier;
      return OkStatus();
    }

    case COp::kRetExit: {
      *outcome = StepOutcome::kDone;
      return OkStatus();
    }

    case COp::kTrap: {
      // Emitted by the address-checking instrumentation on a bounds
      // violation.
      return Fault(
          OutOfRange("bounds check trap in kernel " + prog_.name), 0, t);
    }

    case COp::kError: {
      Status status(inst.error_code, prog_.strings[inst.target]);
      if (inst.error_is_fault) return Fault(std::move(status), 0, t);
      return status;
    }

    case COp::kFused: {
      // Superinstructions exist only in tier >= 1 programs, which run
      // through the tiered executor (tier.cpp); reaching one here means a
      // fused program was handed to the untiered engine.
      return Internal("superinstruction in untiered program " + prog_.name);
    }
  }
  return Internal("corrupt compiled instruction");
}

Status CompiledBlockExecutor::RunBlock(std::uint32_t bx, std::uint32_t by,
                                       std::uint32_t bz, DeviceFault* fault) {
  const std::uint64_t nthreads = params_.block.Count();
  std::vector<CThread> threads;
  SetupBlock(bx, by, bz, &threads);

  bool all_done = false;
  while (!all_done) {
    all_done = true;
    bool progressed = false;
    for (std::uint64_t i = 0; i < nthreads; ++i) {
      auto& t = threads[i];
      if (t.done) continue;
      std::uint64_t* regs = regs_.data() + i * prog_.reg_slots;
      // Run this thread until it blocks on a barrier or finishes.
      std::uint64_t budget = max_instructions_;
      while (true) {
        if (budget-- == 0) {
          const Status s = BudgetFault(t);
          *fault = fault_;
          return s;
        }
        PollPreempt();
        StepOutcome outcome;
        const Status s = Step(t, regs, &outcome);
        if (!s.ok()) {
          *fault = fault_;
          return s;
        }
        progressed = true;
        if (outcome == StepOutcome::kDone) {
          t.done = true;
          break;
        }
        if (outcome == StepOutcome::kBarrier) break;
      }
      if (!t.done) all_done = false;
    }
    if (!all_done && !progressed) {
      *fault = DeviceFault{Internal("barrier deadlock in " + prog_.name), 0,
                           0, prog_.name};
      return fault->status;
    }
  }
  return OkStatus();
}

}  // namespace

Result<CompiledKernel> CompileKernel(const ptx::Kernel& kernel) {
  return KernelCompiler(kernel).Compile();
}

std::shared_ptr<const CompiledModule> CompiledModule::Compile(
    const ptx::Module& module) {
  auto compiled = std::make_shared<CompiledModule>();
  compiled->entries_.reserve(module.kernels.size());
  for (const auto& kernel : module.kernels) {
    Entry entry;
    entry.name = kernel.name;
    auto result = CompileKernel(kernel);
    if (result.ok())
      entry.kernel = std::make_shared<const CompiledKernel>(
          std::move(*result));
    else
      entry.error = result.status();
    compiled->entries_.push_back(std::move(entry));
  }
  return compiled;
}

Result<std::shared_ptr<const CompiledKernel>> CompiledModule::Find(
    std::string_view kernel_name) const {
  for (const auto& entry : entries_) {
    if (entry.name != kernel_name) continue;
    if (entry.kernel == nullptr) return entry.error;
    return entry.kernel;
  }
  return Status(NotFound("kernel " + std::string(kernel_name) +
                         " not in module"));
}

// ---- compiled top-level execution -----------------------------------------

Result<ExecStats> Interpreter::Execute(const CompiledKernel& kernel,
                                       const LaunchParams& params) {
  return Execute(kernel, params, ExecControls{});
}

Result<ExecStats> Interpreter::Execute(const CompiledKernel& kernel,
                                       const LaunchParams& params,
                                       const ExecControls& controls) {
  return exec_core::RunGrid(
      kernel, params, controls, &last_fault_, [&](ExecStats* stats) {
        return CompiledBlockExecutor(kernel, params, memory_, policy_, client_,
                                     max_instructions_per_thread_, stats,
                                     controls.preempt_requested,
                                     controls.preempt_check_interval);
      });
}

Result<ExecStats> Interpreter::Execute(const ptx::Module& module,
                                       std::string_view kernel_name,
                                       const LaunchParams& params) {
  return Execute(module, kernel_name, params, ExecControls{});
}

Result<ExecStats> Interpreter::Execute(const ptx::Module& module,
                                       std::string_view kernel_name,
                                       const LaunchParams& params,
                                       const ExecControls& controls) {
  const ptx::Kernel* kernel = module.FindKernel(kernel_name);
  if (kernel == nullptr)
    return Status(NotFound("kernel " + std::string(kernel_name) +
                           " not in module"));
  GRD_ASSIGN_OR_RETURN(CompiledKernel compiled, CompileKernel(*kernel));
  return Execute(compiled, params, controls);
}

}  // namespace grd::ptxexec
