// The REFERENCE engine: the seed string-map interpreter, kept verbatim as
// the parity oracle for the compiled bytecode engine (program.cpp) and as
// bench_interpreter's baseline. Every std::string-keyed lookup on its step
// path bumps exec_debug's counter, which is how the regression suite proves
// the compiled path performs none. New callers should use the compiled
// Execute overloads; this engine exists to be measured against.
#include "ptxexec/interpreter.hpp"

#include <atomic>
#include <cmath>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "common/strings.hpp"
#include "ptxexec/scalar_ops.hpp"

namespace grd::ptxexec {

namespace exec_debug {
namespace {
std::atomic<std::uint64_t> g_hot_path_string_lookups{0};
}  // namespace

std::uint64_t HotPathStringLookups() noexcept {
  return g_hot_path_string_lookups.load(std::memory_order_relaxed);
}

void BumpHotPathStringLookup() noexcept {
  g_hot_path_string_lookups.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace exec_debug

namespace {

using ptx::Instruction;
using ptx::Kernel;
using ptx::Operand;
using ptx::StateSpace;
using ptx::Type;
using scalar::AsF32;
using scalar::AsF64;
using scalar::F32Bits;
using scalar::F64Bits;
using scalar::kSharedTag;
using scalar::MaskToWidth;
using scalar::SignExtend;

// Marks one string-keyed lookup on the reference step path (see
// exec_debug::HotPathStringLookups).
void CountStringLookup() { exec_debug::BumpHotPathStringLookup(); }

// Pre-flattened kernel: instruction array plus label / branch-table / param /
// shared-variable indices, built once per launch.
struct Prepared {
  const Kernel* kernel = nullptr;
  std::vector<const Instruction*> code;
  std::unordered_map<std::string, std::size_t> labels;
  std::unordered_map<std::string, std::vector<std::string>> branch_tables;
  std::unordered_map<std::string, std::size_t> param_index;
  std::unordered_map<std::string, std::uint64_t> shared_offsets;
  std::uint64_t shared_size = 0;
};

Result<Prepared> PrepareKernel(const Kernel& kernel) {
  Prepared prep;
  prep.kernel = &kernel;
  for (std::size_t i = 0; i < kernel.params.size(); ++i) {
    prep.param_index[kernel.params[i].name] = i;
  }
  for (const auto& stmt : kernel.body) {
    if (const auto* inst = std::get_if<Instruction>(&stmt)) {
      prep.code.push_back(inst);
      continue;
    }
    if (const auto* label = std::get_if<ptx::Label>(&stmt)) {
      if (!prep.labels.emplace(label->name, prep.code.size()).second)
        return Status(InvalidArgument("duplicate label " + label->name));
      continue;
    }
    if (const auto* table = std::get_if<ptx::BranchTargetsDecl>(&stmt)) {
      prep.branch_tables[table->name] = table->labels;
      continue;
    }
    if (const auto* var = std::get_if<ptx::VarDecl>(&stmt)) {
      if (var->space == StateSpace::kShared) {
        const std::uint64_t bytes =
            (var->array_size < 0 ? 1 : var->array_size) *
            ptx::TypeSize(var->type);
        const std::uint64_t align = var->align > 0 ? var->align : 8;
        prep.shared_size = (prep.shared_size + align - 1) & ~(align - 1);
        prep.shared_offsets[var->name] = prep.shared_size;
        prep.shared_size += bytes;
      }
      continue;
    }
    // RegDecl: register files are dynamic maps; nothing to do.
  }
  return prep;
}

struct ThreadCtx {
  std::uint32_t tid_x = 0, tid_y = 0, tid_z = 0;
  std::uint32_t ctaid_x = 0, ctaid_y = 0, ctaid_z = 0;
};

struct ThreadState {
  std::unordered_map<std::string, std::uint64_t> regs;
  std::size_t pc = 0;
  bool done = false;
  bool at_barrier = false;
  ThreadCtx ctx;
};

enum class StepOutcome { kContinue, kBarrier, kDone };

class BlockExecutor {
 public:
  BlockExecutor(const Prepared& prep, const LaunchParams& params,
                simgpu::GlobalMemory* memory, simgpu::AccessPolicy* policy,
                std::uint64_t client, std::uint64_t max_instructions,
                ExecStats* stats, const std::atomic<bool>* preempt = nullptr,
                std::uint64_t preempt_check_interval = 0)
      : prep_(prep),
        params_(params),
        memory_(memory),
        policy_(policy),
        client_(client),
        max_instructions_(max_instructions),
        stats_(stats),
        preempt_(preempt),
        preempt_check_interval_(
            preempt_check_interval > 0 ? preempt_check_interval : 1),
        preempt_countdown_(preempt_check_interval_),
        shared_(prep.shared_size, 0) {}

  // Runs one block to completion (all threads), honoring bar.sync phases.
  Status RunBlock(std::uint32_t bx, std::uint32_t by, std::uint32_t bz,
                  DeviceFault* fault);

 private:
  Status Step(ThreadState& t, StepOutcome* outcome);

  Result<std::uint64_t> ReadOperand(ThreadState& t, const Operand& op,
                                    Type type);
  Result<std::uint64_t> ReadSpecialRegister(const ThreadState& t,
                                            const std::string& name);
  Result<std::uint64_t> ResolveAddress(ThreadState& t, const Operand& mem);
  Result<std::uint64_t> LoadSized(std::uint64_t addr, std::size_t bytes);
  Status StoreSized(std::uint64_t addr, std::uint64_t bits, std::size_t bytes);

  Status Fault(Status status, std::uint64_t addr, const ThreadState& t) {
    fault_ = DeviceFault{std::move(status), addr,
                         LinearThreadId(t), prep_.kernel->name};
    return fault_.status;
  }
  std::uint64_t LinearThreadId(const ThreadState& t) const {
    return static_cast<std::uint64_t>(t.ctx.ctaid_x) * params_.block.Count() +
           t.ctx.tid_x;
  }

  const Prepared& prep_;
  const LaunchParams& params_;
  simgpu::GlobalMemory* memory_;
  simgpu::AccessPolicy* policy_;
  std::uint64_t client_;
  std::uint64_t max_instructions_;
  ExecStats* stats_;
  const std::atomic<bool>* preempt_;
  std::uint64_t preempt_check_interval_;
  std::uint64_t preempt_countdown_;
  bool preempt_latched_ = false;
  std::vector<std::uint8_t> shared_;
  DeviceFault fault_;

 public:
  const DeviceFault& fault() const noexcept { return fault_; }
  // A preemption request observed by the every-N-instructions poll. The
  // block still runs to completion — the safe point is its boundary.
  bool preempt_latched() const noexcept { return preempt_latched_; }
};

Result<std::uint64_t> BlockExecutor::ReadSpecialRegister(
    const ThreadState& t, const std::string& name) {
  CountStringLookup();  // resolved by string compares on every read
  if (name == "%tid.x") return std::uint64_t{t.ctx.tid_x};
  if (name == "%tid.y") return std::uint64_t{t.ctx.tid_y};
  if (name == "%tid.z") return std::uint64_t{t.ctx.tid_z};
  if (name == "%ntid.x") return std::uint64_t{params_.block.x};
  if (name == "%ntid.y") return std::uint64_t{params_.block.y};
  if (name == "%ntid.z") return std::uint64_t{params_.block.z};
  if (name == "%ctaid.x") return std::uint64_t{t.ctx.ctaid_x};
  if (name == "%ctaid.y") return std::uint64_t{t.ctx.ctaid_y};
  if (name == "%ctaid.z") return std::uint64_t{t.ctx.ctaid_z};
  if (name == "%nctaid.x") return std::uint64_t{params_.grid.x};
  if (name == "%nctaid.y") return std::uint64_t{params_.grid.y};
  if (name == "%nctaid.z") return std::uint64_t{params_.grid.z};
  if (name == "%laneid") return std::uint64_t{t.ctx.tid_x % 32};
  if (name == "%warpsize" || name == "WARP_SZ") return std::uint64_t{32};
  return Status(NotFound("unknown special register " + name));
}

Result<std::uint64_t> BlockExecutor::ReadOperand(ThreadState& t,
                                                 const Operand& op,
                                                 Type type) {
  switch (op.kind) {
    case Operand::Kind::kRegister: {
      CountStringLookup();  // the '.'-scan runs on EVERY register read
      if (op.name.find('.') != std::string::npos || op.name == "%laneid" ||
          op.name == "%warpsize") {
        return ReadSpecialRegister(t, op.name);
      }
      CountStringLookup();  // hash of the register name
      const auto it = t.regs.find(op.name);
      return it == t.regs.end() ? std::uint64_t{0} : it->second;
    }
    case Operand::Kind::kImmediate:
      if (op.is_float_imm) {
        return type == Type::kF64 ? F64Bits(op.fval)
                                  : F32Bits(static_cast<float>(op.fval));
      }
      return static_cast<std::uint64_t>(op.ival);
    case Operand::Kind::kIdentifier: {
      // Address of a shared variable (e.g. `mov.u64 %rd, sdata;`).
      CountStringLookup();
      const auto it = prep_.shared_offsets.find(op.name);
      if (it != prep_.shared_offsets.end()) return kSharedTag | it->second;
      return Status(NotFound("unknown identifier operand " + op.name));
    }
    default:
      return Status(
          InvalidArgument("operand kind not readable as a value"));
  }
}

Result<std::uint64_t> BlockExecutor::ResolveAddress(ThreadState& t,
                                                    const Operand& mem) {
  if (mem.MemBaseIsRegister()) {
    GRD_ASSIGN_OR_RETURN(std::uint64_t base,
                         ReadOperand(t, Operand::Reg(mem.name), Type::kU64));
    return base + static_cast<std::uint64_t>(mem.offset);
  }
  CountStringLookup();
  const auto shared_it = prep_.shared_offsets.find(mem.name);
  if (shared_it != prep_.shared_offsets.end()) {
    return (kSharedTag | shared_it->second) +
           static_cast<std::uint64_t>(mem.offset);
  }
  return Status(NotFound("unknown memory base symbol " + mem.name));
}

Result<std::uint64_t> BlockExecutor::LoadSized(std::uint64_t addr,
                                               std::size_t bytes) {
  if (addr & kSharedTag) {
    const std::uint64_t off = addr & ~kSharedTag;
    if (off + bytes > shared_.size())
      return Status(
          OutOfRange("shared access beyond block allocation"));
    std::uint64_t bits = 0;
    std::memcpy(&bits, shared_.data() + off, bytes);
    ++stats_->shared_accesses;
    return bits;
  }
  GRD_RETURN_IF_ERROR(policy_->CheckAccess(client_, addr, bytes, false));
  std::uint64_t bits = 0;
  GRD_RETURN_IF_ERROR(memory_->Read(addr, &bits, bytes));
  ++stats_->global_loads;
  return bits;
}

Status BlockExecutor::StoreSized(std::uint64_t addr, std::uint64_t bits,
                                 std::size_t bytes) {
  if (addr & kSharedTag) {
    const std::uint64_t off = addr & ~kSharedTag;
    if (off + bytes > shared_.size())
      return OutOfRange("shared access beyond block allocation");
    std::memcpy(shared_.data() + off, &bits, bytes);
    ++stats_->shared_accesses;
    return OkStatus();
  }
  GRD_RETURN_IF_ERROR(policy_->CheckAccess(client_, addr, bytes, true));
  GRD_RETURN_IF_ERROR(memory_->Write(addr, &bits, bytes));
  ++stats_->global_stores;
  return OkStatus();
}

Status BlockExecutor::Step(ThreadState& t, StepOutcome* outcome) {
  *outcome = StepOutcome::kContinue;
  if (t.pc >= prep_.code.size()) {
    *outcome = StepOutcome::kDone;
    return OkStatus();
  }
  const Instruction& inst = *prep_.code[t.pc];
  ++stats_->instructions;

  // Guard predicate.
  if (inst.pred) {
    CountStringLookup();
    const auto it = t.regs.find(inst.pred->reg);
    const bool value = it != t.regs.end() && (it->second & 1);
    if (value == inst.pred->negated) {
      ++t.pc;
      return OkStatus();
    }
  }

  const Type type = inst.TypeModifier().value_or(Type::kU64);
  const std::size_t width = ptx::TypeSize(type);
  const auto& ops = inst.operands;

  auto read = [&](std::size_t i) { return ReadOperand(t, ops[i], type); };
  auto write_reg = [&](const Operand& dst, std::uint64_t bits) {
    CountStringLookup();
    t.regs[dst.name] = bits;
  };

  const std::string& opc = inst.opcode;

  if (opc == "ld") {
    const auto space = inst.SpaceModifier().value_or(StateSpace::kGeneric);
    if (space == StateSpace::kParam) {
      CountStringLookup();
      const auto it = prep_.param_index.find(ops[1].name);
      if (it == prep_.param_index.end())
        return Fault(NotFound("unknown kernel parameter " + ops[1].name), 0,
                     t);
      if (it->second >= params_.args.size())
        return Fault(InvalidArgument("missing argument for parameter " +
                                     ops[1].name),
                     0, t);
      write_reg(ops[0], MaskToWidth(params_.args[it->second].bits, width));
      ++t.pc;
      return OkStatus();
    }
    GRD_ASSIGN_OR_RETURN(std::uint64_t addr, ResolveAddress(t, ops[1]));
    const int lanes = inst.VectorWidth();
    if (lanes > 1) {
      for (int lane = 0; lane < lanes; ++lane) {
        auto bits = LoadSized(addr + lane * width, width);
        if (!bits.ok()) return Fault(bits.status(), addr, t);
        CountStringLookup();
        t.regs[ops[0].vec[lane]] = *bits;
      }
    } else {
      auto bits = LoadSized(addr, width);
      if (!bits.ok()) return Fault(bits.status(), addr, t);
      // Sign-extend signed sub-64-bit loads so later s64 arithmetic works.
      write_reg(ops[0], ptx::IsSigned(type)
                            ? static_cast<std::uint64_t>(
                                  SignExtend(*bits, width))
                            : *bits);
    }
    ++t.pc;
    return OkStatus();
  }

  if (opc == "st") {
    GRD_ASSIGN_OR_RETURN(std::uint64_t addr, ResolveAddress(t, ops[0]));
    const int lanes = inst.VectorWidth();
    if (lanes > 1) {
      for (int lane = 0; lane < lanes; ++lane) {
        CountStringLookup();
        const auto it = t.regs.find(ops[1].vec[lane]);
        const std::uint64_t bits = it == t.regs.end() ? 0 : it->second;
        const Status s =
            StoreSized(addr + lane * width, MaskToWidth(bits, width), width);
        if (!s.ok()) return Fault(s, addr, t);
      }
    } else {
      GRD_ASSIGN_OR_RETURN(std::uint64_t bits, read(1));
      const Status s = StoreSized(addr, MaskToWidth(bits, width), width);
      if (!s.ok()) return Fault(s, addr, t);
    }
    ++t.pc;
    return OkStatus();
  }

  if (opc == "mov" || opc == "cvta") {
    // cvta/cvta.to.global is an identity in our flat address space.
    GRD_ASSIGN_OR_RETURN(std::uint64_t bits, read(1));
    write_reg(ops[0], bits);
    ++t.pc;
    return OkStatus();
  }

  if (opc == "cvt") {
    // Modifiers: [rounding...] dst_type src_type (last two type tokens).
    std::vector<Type> types;
    for (const auto& mod : inst.modifiers) {
      if (auto mt = ptx::ParseType(mod)) types.push_back(*mt);
    }
    if (types.size() < 2)
      return Fault(InvalidArgument("cvt needs dst and src types"), 0, t);
    const Type dst_t = types[types.size() - 2];
    const Type src_t = types[types.size() - 1];
    GRD_ASSIGN_OR_RETURN(std::uint64_t raw, ReadOperand(t, ops[1], src_t));
    std::uint64_t out = 0;
    if (ptx::IsFloat(src_t) && ptx::IsFloat(dst_t)) {
      const double v = src_t == Type::kF64 ? AsF64(raw) : AsF32(raw);
      out = dst_t == Type::kF64 ? F64Bits(v) : F32Bits(static_cast<float>(v));
    } else if (ptx::IsFloat(src_t)) {
      const double v = src_t == Type::kF64 ? AsF64(raw) : AsF32(raw);
      out = MaskToWidth(static_cast<std::uint64_t>(
                            static_cast<std::int64_t>(v)),
                        ptx::TypeSize(dst_t));
    } else if (ptx::IsFloat(dst_t)) {
      const double v =
          ptx::IsSigned(src_t)
              ? static_cast<double>(SignExtend(raw, ptx::TypeSize(src_t)))
              : static_cast<double>(MaskToWidth(raw, ptx::TypeSize(src_t)));
      out = dst_t == Type::kF64 ? F64Bits(v) : F32Bits(static_cast<float>(v));
    } else {
      const std::uint64_t v =
          ptx::IsSigned(src_t)
              ? static_cast<std::uint64_t>(
                    SignExtend(raw, ptx::TypeSize(src_t)))
              : MaskToWidth(raw, ptx::TypeSize(src_t));
      out = MaskToWidth(v, ptx::TypeSize(dst_t));
    }
    write_reg(ops[0], out);
    ++t.pc;
    return OkStatus();
  }

  // Binary/ternary arithmetic.
  const bool is_float = ptx::IsFloat(type);
  auto as_f = [&](std::uint64_t bits) {
    return type == Type::kF64 ? AsF64(bits) : static_cast<double>(AsF32(bits));
  };
  auto f_bits = [&](double v) {
    return type == Type::kF64 ? F64Bits(v) : F32Bits(static_cast<float>(v));
  };
  auto as_s = [&](std::uint64_t bits) { return SignExtend(bits, width); };

  if (opc == "add" || opc == "sub" || opc == "mul" || opc == "div" ||
      opc == "rem" || opc == "min" || opc == "max" || opc == "and" ||
      opc == "or" || opc == "xor" || opc == "shl" || opc == "shr") {
    GRD_ASSIGN_OR_RETURN(std::uint64_t a, read(1));
    GRD_ASSIGN_OR_RETURN(std::uint64_t b, read(2));
    std::uint64_t out = 0;
    if (is_float) {
      const double x = as_f(a), y = as_f(b);
      double r = 0.0;
      if (opc == "add") r = x + y;
      else if (opc == "sub") r = x - y;
      else if (opc == "mul") r = x * y;
      else if (opc == "div") r = y == 0.0 ? 0.0 : x / y;
      else if (opc == "min") r = std::fmin(x, y);
      else if (opc == "max") r = std::fmax(x, y);
      else
        return Fault(Unimplemented("float " + opc), 0, t);
      out = f_bits(r);
    } else if (opc == "mul" && inst.HasModifier("wide")) {
      out = ptx::IsSigned(type)
                ? static_cast<std::uint64_t>(as_s(a) * as_s(b))
                : MaskToWidth(a, width) * MaskToWidth(b, width);
    } else if (opc == "mul" && inst.HasModifier("hi")) {
      const unsigned __int128 prod =
          static_cast<unsigned __int128>(MaskToWidth(a, width)) *
          MaskToWidth(b, width);
      out = MaskToWidth(static_cast<std::uint64_t>(prod >> (width * 8)),
                        width);
    } else {
      const std::uint64_t ua = MaskToWidth(a, width);
      const std::uint64_t ub = MaskToWidth(b, width);
      if (opc == "add") out = ua + ub;
      else if (opc == "sub") out = ua - ub;
      else if (opc == "mul") out = ua * ub;  // .lo
      else if (opc == "div")
        out = ub == 0 ? 0
              : ptx::IsSigned(type)
                  ? static_cast<std::uint64_t>(as_s(a) / as_s(b))
                  : ua / ub;
      else if (opc == "rem")
        out = ub == 0 ? 0
              : ptx::IsSigned(type)
                  ? static_cast<std::uint64_t>(as_s(a) % as_s(b))
                  : ua % ub;
      else if (opc == "min")
        out = ptx::IsSigned(type)
                  ? static_cast<std::uint64_t>(std::min(as_s(a), as_s(b)))
                  : std::min(ua, ub);
      else if (opc == "max")
        out = ptx::IsSigned(type)
                  ? static_cast<std::uint64_t>(std::max(as_s(a), as_s(b)))
                  : std::max(ua, ub);
      else if (opc == "and") out = ua & ub;
      else if (opc == "or") out = ua | ub;
      else if (opc == "xor") out = ua ^ ub;
      else if (opc == "shl") out = ua << (ub & (width * 8 - 1));
      else if (opc == "shr")
        out = ptx::IsSigned(type)
                  ? static_cast<std::uint64_t>(as_s(a) >>
                                               (ub & (width * 8 - 1)))
                  : ua >> (ub & (width * 8 - 1));
      out = MaskToWidth(out, width);
      // mul.wide writes a double-width register: undo the mask.
      if (opc == "mul" && inst.HasModifier("wide"))
        out = static_cast<std::uint64_t>(out);
    }
    write_reg(ops[0], out);
    ++t.pc;
    return OkStatus();
  }

  if (opc == "mad" || opc == "fma") {
    GRD_ASSIGN_OR_RETURN(std::uint64_t a, read(1));
    GRD_ASSIGN_OR_RETURN(std::uint64_t b, read(2));
    GRD_ASSIGN_OR_RETURN(std::uint64_t c, read(3));
    std::uint64_t out = 0;
    if (is_float) {
      out = f_bits(as_f(a) * as_f(b) + as_f(c));
    } else if (inst.HasModifier("wide")) {
      out = static_cast<std::uint64_t>(as_s(a) * as_s(b)) + c;
    } else {
      out = MaskToWidth(MaskToWidth(a, width) * MaskToWidth(b, width) +
                            MaskToWidth(c, width),
                        width);
    }
    write_reg(ops[0], out);
    ++t.pc;
    return OkStatus();
  }

  if (opc == "neg" || opc == "abs" || opc == "not" || opc == "sqrt") {
    GRD_ASSIGN_OR_RETURN(std::uint64_t a, read(1));
    std::uint64_t out = 0;
    if (is_float) {
      const double x = as_f(a);
      if (opc == "neg") out = f_bits(-x);
      else if (opc == "abs") out = f_bits(std::fabs(x));
      else if (opc == "sqrt") out = f_bits(std::sqrt(x));
      else
        return Fault(Unimplemented("float " + opc), 0, t);
    } else {
      if (opc == "neg")
        out = MaskToWidth(static_cast<std::uint64_t>(-as_s(a)), width);
      else if (opc == "abs")
        out = MaskToWidth(static_cast<std::uint64_t>(std::llabs(as_s(a))),
                          width);
      else if (opc == "not")
        out = MaskToWidth(~a, width);
      else
        return Fault(Unimplemented("int " + opc), 0, t);
    }
    write_reg(ops[0], out);
    ++t.pc;
    return OkStatus();
  }

  if (opc == "setp") {
    GRD_ASSIGN_OR_RETURN(std::uint64_t a, read(1));
    GRD_ASSIGN_OR_RETURN(std::uint64_t b, read(2));
    const std::string& cmp = inst.modifiers.empty() ? "" : inst.modifiers[0];
    bool r = false;
    if (is_float) {
      const double x = as_f(a), y = as_f(b);
      if (cmp == "eq") r = x == y;
      else if (cmp == "ne") r = x != y;
      else if (cmp == "lt") r = x < y;
      else if (cmp == "le") r = x <= y;
      else if (cmp == "gt") r = x > y;
      else if (cmp == "ge") r = x >= y;
      else
        return Fault(Unimplemented("setp." + cmp + " (float)"), 0, t);
    } else if (ptx::IsSigned(type)) {
      const std::int64_t x = as_s(a), y = as_s(b);
      if (cmp == "eq") r = x == y;
      else if (cmp == "ne") r = x != y;
      else if (cmp == "lt") r = x < y;
      else if (cmp == "le") r = x <= y;
      else if (cmp == "gt") r = x > y;
      else if (cmp == "ge") r = x >= y;
      else
        return Fault(Unimplemented("setp." + cmp + " (signed)"), 0, t);
    } else {
      const std::uint64_t x = MaskToWidth(a, width), y = MaskToWidth(b, width);
      if (cmp == "eq") r = x == y;
      else if (cmp == "ne") r = x != y;
      else if (cmp == "lt" || cmp == "lo") r = x < y;
      else if (cmp == "le" || cmp == "ls") r = x <= y;
      else if (cmp == "gt" || cmp == "hi") r = x > y;
      else if (cmp == "ge" || cmp == "hs") r = x >= y;
      else
        return Fault(Unimplemented("setp." + cmp + " (unsigned)"), 0, t);
    }
    write_reg(ops[0], r ? 1 : 0);
    ++t.pc;
    return OkStatus();
  }

  if (opc == "selp") {
    GRD_ASSIGN_OR_RETURN(std::uint64_t a, read(1));
    GRD_ASSIGN_OR_RETURN(std::uint64_t b, read(2));
    GRD_ASSIGN_OR_RETURN(std::uint64_t p, ReadOperand(t, ops[3], Type::kPred));
    write_reg(ops[0], (p & 1) ? a : b);
    ++t.pc;
    return OkStatus();
  }

  if (opc == "bra") {
    CountStringLookup();
    const auto it = prep_.labels.find(ops[0].name);
    if (it == prep_.labels.end())
      return Fault(NotFound("branch target " + ops[0].name), 0, t);
    t.pc = it->second;
    return OkStatus();
  }

  if (opc == "brx") {
    // brx.idx %index, table; — the paper's unsafe indirect branch (§3): on
    // real hardware an out-of-range index jumps to garbage. We model that as
    // a device fault; Guardian's patch clamps the index so the patched
    // kernel cannot reach this fault.
    GRD_ASSIGN_OR_RETURN(std::uint64_t idx, read(0));
    CountStringLookup();
    const auto table_it = prep_.branch_tables.find(ops[1].name);
    if (table_it == prep_.branch_tables.end())
      return Fault(NotFound("branch table " + ops[1].name), 0, t);
    if (idx >= table_it->second.size())
      return Fault(OutOfRange("brx.idx index " + std::to_string(idx) +
                              " outside table of " +
                              std::to_string(table_it->second.size())),
                   idx, t);
    CountStringLookup();
    const auto label_it = prep_.labels.find(table_it->second[idx]);
    if (label_it == prep_.labels.end())
      return Fault(NotFound("branch target " + table_it->second[idx]), 0, t);
    t.pc = label_it->second;
    return OkStatus();
  }

  if (opc == "bar") {
    ++t.pc;
    *outcome = StepOutcome::kBarrier;
    return OkStatus();
  }

  if (opc == "ret" || opc == "exit") {
    *outcome = StepOutcome::kDone;
    return OkStatus();
  }

  if (opc == "trap") {
    // Emitted by the address-checking instrumentation on a bounds violation.
    return Fault(OutOfRange("bounds check trap in kernel " +
                            prep_.kernel->name),
                 0, t);
  }

  return Fault(Unimplemented("opcode " + opc), 0, t);
}

Status BlockExecutor::RunBlock(std::uint32_t bx, std::uint32_t by,
                               std::uint32_t bz, DeviceFault* fault) {
  const std::uint64_t nthreads = params_.block.Count();
  std::vector<ThreadState> threads(nthreads);
  for (std::uint64_t i = 0; i < nthreads; ++i) {
    auto& t = threads[i];
    t.ctx.tid_x = static_cast<std::uint32_t>(i % params_.block.x);
    t.ctx.tid_y = static_cast<std::uint32_t>((i / params_.block.x) %
                                             params_.block.y);
    t.ctx.tid_z = static_cast<std::uint32_t>(i /
                                             (static_cast<std::uint64_t>(
                                                  params_.block.x) *
                                              params_.block.y));
    t.ctx.ctaid_x = bx;
    t.ctx.ctaid_y = by;
    t.ctx.ctaid_z = bz;
  }
  stats_->threads += nthreads;

  bool all_done = false;
  while (!all_done) {
    all_done = true;
    bool progressed = false;
    for (auto& t : threads) {
      if (t.done) continue;
      // Run this thread until it blocks on a barrier or finishes.
      std::uint64_t budget = max_instructions_;
      while (true) {
        if (budget-- == 0) {
          *fault = DeviceFault{DeadlineExceeded("runaway kernel " +
                                                prep_.kernel->name +
                                                " exceeded instruction budget"),
                               0, LinearThreadId(t), prep_.kernel->name};
          return fault->status;
        }
        if (preempt_ != nullptr && !preempt_latched_ &&
            --preempt_countdown_ == 0) {
          preempt_countdown_ = preempt_check_interval_;
          preempt_latched_ = preempt_->load(std::memory_order_relaxed);
        }
        StepOutcome outcome;
        const Status s = Step(t, &outcome);
        if (!s.ok()) {
          *fault = fault_;
          return s;
        }
        progressed = true;
        if (outcome == StepOutcome::kDone) {
          t.done = true;
          break;
        }
        if (outcome == StepOutcome::kBarrier) break;
      }
      if (!t.done) all_done = false;
    }
    if (!all_done && !progressed) {
      *fault = DeviceFault{Internal("barrier deadlock in " +
                                    prep_.kernel->name),
                           0, 0, prep_.kernel->name};
      return fault->status;
    }
  }
  return OkStatus();
}

}  // namespace

Result<ExecStats> Interpreter::ExecuteReference(const ptx::Module& module,
                                                std::string_view kernel_name,
                                                const LaunchParams& params) {
  return ExecuteReference(module, kernel_name, params, ExecControls{});
}

Result<ExecStats> Interpreter::ExecuteReference(const ptx::Module& module,
                                                std::string_view kernel_name,
                                                const LaunchParams& params,
                                                const ExecControls& controls) {
  const ptx::Kernel* kernel = module.FindKernel(kernel_name);
  if (kernel == nullptr)
    return Status(NotFound("kernel " + std::string(kernel_name) +
                           " not in module"));
  GRD_ASSIGN_OR_RETURN(Prepared prep, PrepareKernel(*kernel));

  KernelCheckpoint* ckpt = controls.checkpoint;
  const std::uint64_t total_blocks = params.grid.Count();
  if (ckpt != nullptr) {
    if (ckpt->valid && ckpt->blocks_total != total_blocks)
      return Status(
          InvalidArgument("checkpoint does not match launch geometry"));
    ckpt->blocks_total = total_blocks;
  }
  // Resume accumulates into the checkpointed totals, so at completion the
  // stats cover every block exactly once regardless of how many times the
  // kernel was suspended.
  ExecStats stats = (ckpt != nullptr && ckpt->valid) ? ckpt->stats
                                                     : ExecStats{};

  auto preempt_pending = [&]() -> bool {
    return ckpt != nullptr && controls.preempt_requested != nullptr &&
           controls.preempt_requested->load(std::memory_order_relaxed);
  };

  std::uint64_t linear = 0;
  for (std::uint32_t bz = 0; bz < params.grid.z; ++bz) {
    for (std::uint32_t by = 0; by < params.grid.y; ++by) {
      for (std::uint32_t bx = 0; bx < params.grid.x; ++bx, ++linear) {
        if (ckpt != nullptr && ckpt->valid && ckpt->Done(linear)) continue;
        const ExecStats before = stats;
        BlockExecutor block(prep, params, memory_, policy_, client_,
                            max_instructions_per_thread_, &stats,
                            controls.preempt_requested,
                            controls.preempt_check_interval);
        DeviceFault fault;
        const Status s = block.RunBlock(bx, by, bz, &fault);
        if (!s.ok()) {
          // A tripped instruction budget keeps the checkpoint (every block
          // before the runaway one), so the caller may requeue instead of
          // killing; any other fault invalidates nothing the caller should
          // resume from.
          if (ckpt != nullptr && s.code() == StatusCode::kDeadlineExceeded)
            ckpt->stats = stats;
          last_fault_ = fault;
          return s;
        }
        ++stats.blocks;
        if (ckpt != nullptr) {
          ckpt->MarkDone(linear);
          ckpt->stats = stats;
        }
        if (controls.after_block) {
          ExecStats delta;
          delta.instructions = stats.instructions - before.instructions;
          delta.global_loads = stats.global_loads - before.global_loads;
          delta.global_stores = stats.global_stores - before.global_stores;
          delta.shared_accesses =
              stats.shared_accesses - before.shared_accesses;
          delta.threads = stats.threads - before.threads;
          delta.blocks = 1;
          controls.after_block(delta);
        }
        // Safe point: between blocks. Yield only when there is work left —
        // a fully executed kernel completes normally.
        if ((block.preempt_latched() || preempt_pending()) &&
            ckpt != nullptr && ckpt->blocks_done < total_blocks) {
          return Status(
              Unavailable("kernel " + std::string(kernel_name) +
                          " preempted at safe point (" +
                          std::to_string(ckpt->blocks_done) + "/" +
                          std::to_string(total_blocks) + " blocks done)"));
        }
      }
    }
  }
  return stats;
}

}  // namespace grd::ptxexec
