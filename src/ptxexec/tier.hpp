// Tiered execution for the compiled bytecode engine.
//
// PR 4's compiled engine pays one enum-switch dispatch per instruction. The
// guardian's SandboxCache counts launches per cached module, and once a
// module is hot the manager promotes it through two further tiers:
//
//  tier 1 (kFused): FuseKernel rewrites the compiled program, collapsing
//    recurring straight-line runs — mad+setp+bra loop heads, ld+op+st bodies,
//    and the patcher's guard-check+access pairs (and/or fencing before each
//    protected ld/st) — into superinstructions. One dispatch retires the
//    whole run; components execute back to back out of a dense side array
//    through the same exec_core evaluators as every other engine.
//
//  tier 2 (kThreaded): the fused program runs under direct-threaded
//    computed-goto dispatch (GNU labels-as-values), replacing the switch's
//    bounds check + jump with one indirect goto per instruction. Where the
//    extension is unavailable (or GRD_NO_COMPUTED_GOTO is defined) tier 2
//    transparently falls back to the tier-1 switch loop.
//
// Fusion preserves the PR 3 safe-point contract: superinstructions charge
// stats, the per-thread instruction budget and the preemption-poll countdown
// per *component*, so revocation latency, checkpoint contents and
// ExecuteReference parity are unchanged at every tier. Fused regions never
// span branch targets, barriers, traps or kError instructions, and the
// covered original instructions stay in place, so branches into the middle
// of a region execute the originals and branch tables need no remapping.
#pragma once

#include <cstdint>

#include "ptxexec/program.hpp"

namespace grd::ptxexec {

// Upper bound on components per superinstruction. Generous relative to the
// patterns fusion targets (a fenced access is 3 instructions, a typical loop
// body under 10); the cap keeps `sub` meaningful and faults mid-run cheap to
// attribute.
inline constexpr unsigned kMaxFusedRun = 12;

// Rewrites a compiled program with superinstructions (tier 1). Pure and
// total: never fails, never changes program length or branch targets, and
// returns the input unchanged (beyond a copy) when nothing is fusable or the
// program is already fused. The result reports its rewrite in
// CompiledKernel::super_count / fused_instructions.
CompiledKernel FuseKernel(const CompiledKernel& kernel);

// True when the tier-2 executor actually uses computed-goto dispatch; false
// when it falls back to the switch loop (non-GNU compiler or
// GRD_NO_COMPUTED_GOTO). Tier-2 runs are legal either way.
bool ThreadedDispatchAvailable() noexcept;

}  // namespace grd::ptxexec
