// Execution core shared by the compiled block executor (program.cpp) and the
// tiered block executor (tier.cpp).
//
// Both engines must stay bit-identical to the reference interpreter — the
// parity suite diffs stats, faults and full memory images — so everything
// semantic lives here exactly once:
//  - the scalar instruction evaluators (EvalBinary/EvalMad/EvalUnary/
//    EvalSetp/EvalCvt), which encode the masking / sign-extension /
//    div-by-zero / shift-count conventions;
//  - EngineBase, the per-block machine state (flat register file, shared
//    segment, operand reads, sized loads/stores through the access policy,
//    fault recording, preemption poll bookkeeping);
//  - RunGrid, the top-level grid walk (checkpoint skip/resume, per-block
//    stats deltas, block-boundary safe points).
// A superinstruction in the tiered engine is executed component by component
// through the same evaluators, which is why fusion cannot drift from the
// oracle.
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "ptxexec/interpreter.hpp"
#include "ptxexec/launch.hpp"
#include "ptxexec/program.hpp"
#include "ptxexec/scalar_ops.hpp"
#include "simgpu/memory.hpp"

namespace grd::ptxexec::exec_core {

struct ThreadCtx {
  std::uint32_t tid_x = 0, tid_y = 0, tid_z = 0;
  std::uint32_t ctaid_x = 0, ctaid_y = 0, ctaid_z = 0;
};

struct CThread {
  std::uint32_t pc = 0;
  bool done = false;
  ThreadCtx ctx;
};

// ---- scalar evaluators ------------------------------------------------------

inline std::uint64_t EvalCvt(ptx::Type dst_t, ptx::Type src_t,
                             std::uint64_t raw) {
  using scalar::AsF32;
  using scalar::AsF64;
  using scalar::F32Bits;
  using scalar::F64Bits;
  using scalar::MaskToWidth;
  using scalar::SignExtend;
  std::uint64_t out = 0;
  if (ptx::IsFloat(src_t) && ptx::IsFloat(dst_t)) {
    const double v = src_t == ptx::Type::kF64 ? AsF64(raw) : AsF32(raw);
    out = dst_t == ptx::Type::kF64 ? F64Bits(v)
                                   : F32Bits(static_cast<float>(v));
  } else if (ptx::IsFloat(src_t)) {
    const double v = src_t == ptx::Type::kF64 ? AsF64(raw) : AsF32(raw);
    out = MaskToWidth(static_cast<std::uint64_t>(static_cast<std::int64_t>(v)),
                      ptx::TypeSize(dst_t));
  } else if (ptx::IsFloat(dst_t)) {
    const double v =
        ptx::IsSigned(src_t)
            ? static_cast<double>(SignExtend(raw, ptx::TypeSize(src_t)))
            : static_cast<double>(MaskToWidth(raw, ptx::TypeSize(src_t)));
    out = dst_t == ptx::Type::kF64 ? F64Bits(v)
                                   : F32Bits(static_cast<float>(v));
  } else {
    const std::uint64_t v =
        ptx::IsSigned(src_t)
            ? static_cast<std::uint64_t>(SignExtend(raw, ptx::TypeSize(src_t)))
            : MaskToWidth(raw, ptx::TypeSize(src_t));
    out = MaskToWidth(v, ptx::TypeSize(dst_t));
  }
  return out;
}

inline std::uint64_t EvalBinary(const CompiledInst& inst, std::uint64_t a,
                                std::uint64_t b) {
  using scalar::AsF32;
  using scalar::AsF64;
  using scalar::F32Bits;
  using scalar::F64Bits;
  using scalar::MaskToWidth;
  using scalar::SignExtend;
  const std::size_t width = inst.width;
  const auto alu = static_cast<BinAlu>(inst.sub);
  std::uint64_t out = 0;
  if (inst.is_float) {
    const bool f64 = inst.type == ptx::Type::kF64;
    const double x = f64 ? AsF64(a) : AsF32(a);
    const double y = f64 ? AsF64(b) : AsF32(b);
    double r = 0.0;
    switch (alu) {
      case BinAlu::kAdd: r = x + y; break;
      case BinAlu::kSub: r = x - y; break;
      case BinAlu::kMul: r = x * y; break;
      case BinAlu::kDiv: r = y == 0.0 ? 0.0 : x / y; break;
      case BinAlu::kMin: r = std::fmin(x, y); break;
      case BinAlu::kMax: r = std::fmax(x, y); break;
      default: break;  // unreachable: compiled to kError
    }
    out = f64 ? F64Bits(r) : F32Bits(static_cast<float>(r));
  } else if (alu == BinAlu::kMulWide) {
    out = inst.is_signed
              ? static_cast<std::uint64_t>(SignExtend(a, width) *
                                           SignExtend(b, width))
              : MaskToWidth(a, width) * MaskToWidth(b, width);
  } else if (alu == BinAlu::kMulHi) {
    const unsigned __int128 prod =
        static_cast<unsigned __int128>(MaskToWidth(a, width)) *
        MaskToWidth(b, width);
    out = MaskToWidth(static_cast<std::uint64_t>(prod >> (width * 8)), width);
  } else {
    const std::uint64_t ua = MaskToWidth(a, width);
    const std::uint64_t ub = MaskToWidth(b, width);
    const std::int64_t sa = SignExtend(a, width);
    const std::int64_t sb = SignExtend(b, width);
    switch (alu) {
      case BinAlu::kAdd: out = ua + ub; break;
      case BinAlu::kSub: out = ua - ub; break;
      case BinAlu::kMul: out = ua * ub; break;  // .lo
      case BinAlu::kDiv:
        out = ub == 0 ? 0
              : inst.is_signed ? static_cast<std::uint64_t>(sa / sb)
                               : ua / ub;
        break;
      case BinAlu::kRem:
        out = ub == 0 ? 0
              : inst.is_signed ? static_cast<std::uint64_t>(sa % sb)
                               : ua % ub;
        break;
      case BinAlu::kMin:
        out = inst.is_signed ? static_cast<std::uint64_t>(std::min(sa, sb))
                             : std::min(ua, ub);
        break;
      case BinAlu::kMax:
        out = inst.is_signed ? static_cast<std::uint64_t>(std::max(sa, sb))
                             : std::max(ua, ub);
        break;
      case BinAlu::kAnd: out = ua & ub; break;
      case BinAlu::kOr: out = ua | ub; break;
      case BinAlu::kXor: out = ua ^ ub; break;
      case BinAlu::kShl: out = ua << (ub & (width * 8 - 1)); break;
      case BinAlu::kShr:
        out = inst.is_signed
                  ? static_cast<std::uint64_t>(sa >> (ub & (width * 8 - 1)))
                  : ua >> (ub & (width * 8 - 1));
        break;
      default: break;  // kMulWide/kMulHi handled above
    }
    out = MaskToWidth(out, width);
  }
  return out;
}

inline std::uint64_t EvalMad(const CompiledInst& inst, std::uint64_t a,
                             std::uint64_t b, std::uint64_t c) {
  using scalar::AsF32;
  using scalar::AsF64;
  using scalar::F32Bits;
  using scalar::F64Bits;
  using scalar::MaskToWidth;
  using scalar::SignExtend;
  const std::size_t width = inst.width;
  std::uint64_t out = 0;
  if (inst.is_float) {
    const bool f64 = inst.type == ptx::Type::kF64;
    const double r = (f64 ? AsF64(a) : AsF32(a)) * (f64 ? AsF64(b) : AsF32(b)) +
                     (f64 ? AsF64(c) : AsF32(c));
    out = f64 ? F64Bits(r) : F32Bits(static_cast<float>(r));
  } else if (inst.sub == 1) {  // wide
    out = static_cast<std::uint64_t>(SignExtend(a, width) *
                                     SignExtend(b, width)) +
          c;
  } else {
    out = MaskToWidth(
        MaskToWidth(a, width) * MaskToWidth(b, width) + MaskToWidth(c, width),
        width);
  }
  return out;
}

inline std::uint64_t EvalUnary(const CompiledInst& inst, std::uint64_t a) {
  using scalar::AsF32;
  using scalar::AsF64;
  using scalar::F32Bits;
  using scalar::F64Bits;
  using scalar::MaskToWidth;
  using scalar::SignExtend;
  const std::size_t width = inst.width;
  std::uint64_t out = 0;
  if (inst.is_float) {
    const bool f64 = inst.type == ptx::Type::kF64;
    const double x = f64 ? AsF64(a) : AsF32(a);
    double r = 0.0;
    switch (static_cast<UnAlu>(inst.sub)) {
      case UnAlu::kNeg: r = -x; break;
      case UnAlu::kAbs: r = std::fabs(x); break;
      case UnAlu::kSqrt: r = std::sqrt(x); break;
      default: break;  // unreachable
    }
    out = f64 ? F64Bits(r) : F32Bits(static_cast<float>(r));
  } else {
    switch (static_cast<UnAlu>(inst.sub)) {
      case UnAlu::kNeg:
        out = MaskToWidth(static_cast<std::uint64_t>(-SignExtend(a, width)),
                          width);
        break;
      case UnAlu::kAbs:
        out = MaskToWidth(
            static_cast<std::uint64_t>(std::llabs(SignExtend(a, width))),
            width);
        break;
      case UnAlu::kNot: out = MaskToWidth(~a, width); break;
      default: break;  // unreachable
    }
  }
  return out;
}

inline bool EvalSetp(const CompiledInst& inst, std::uint64_t a,
                     std::uint64_t b) {
  using scalar::AsF32;
  using scalar::AsF64;
  using scalar::MaskToWidth;
  using scalar::SignExtend;
  const std::size_t width = inst.width;
  const auto cmp = static_cast<CmpOp>(inst.sub);
  bool r = false;
  if (inst.is_float) {
    const bool f64 = inst.type == ptx::Type::kF64;
    const double x = f64 ? AsF64(a) : AsF32(a);
    const double y = f64 ? AsF64(b) : AsF32(b);
    switch (cmp) {
      case CmpOp::kEq: r = x == y; break;
      case CmpOp::kNe: r = x != y; break;
      case CmpOp::kLt: r = x < y; break;
      case CmpOp::kLe: r = x <= y; break;
      case CmpOp::kGt: r = x > y; break;
      case CmpOp::kGe: r = x >= y; break;
    }
  } else if (inst.is_signed) {
    const std::int64_t x = SignExtend(a, width);
    const std::int64_t y = SignExtend(b, width);
    switch (cmp) {
      case CmpOp::kEq: r = x == y; break;
      case CmpOp::kNe: r = x != y; break;
      case CmpOp::kLt: r = x < y; break;
      case CmpOp::kLe: r = x <= y; break;
      case CmpOp::kGt: r = x > y; break;
      case CmpOp::kGe: r = x >= y; break;
    }
  } else {
    const std::uint64_t x = MaskToWidth(a, width);
    const std::uint64_t y = MaskToWidth(b, width);
    switch (cmp) {
      case CmpOp::kEq: r = x == y; break;
      case CmpOp::kNe: r = x != y; break;
      case CmpOp::kLt: r = x < y; break;
      case CmpOp::kLe: r = x <= y; break;
      case CmpOp::kGt: r = x > y; break;
      case CmpOp::kGe: r = x >= y; break;
    }
  }
  return r;
}

// ---- per-block machine state -----------------------------------------------

// Everything a block executor needs besides its dispatch loop: the flat
// register file, the shared segment, operand/special-register reads, sized
// loads/stores routed through the tenant access policy, fault recording, and
// the instruction-budget / preemption-poll bookkeeping.
class EngineBase {
 public:
  EngineBase(const CompiledKernel& prog, const LaunchParams& params,
             simgpu::GlobalMemory* memory, simgpu::AccessPolicy* policy,
             std::uint64_t client, std::uint64_t max_instructions,
             ExecStats* stats, const std::atomic<bool>* preempt,
             std::uint64_t preempt_check_interval)
      : prog_(prog),
        params_(params),
        memory_(memory),
        policy_(policy),
        client_(client),
        max_instructions_(max_instructions),
        stats_(stats),
        preempt_(preempt),
        preempt_check_interval_(
            preempt_check_interval > 0 ? preempt_check_interval : 1),
        preempt_countdown_(preempt_check_interval_),
        shared_(prog.shared_size, 0) {}

  const DeviceFault& fault() const noexcept { return fault_; }
  // A preemption request observed by the every-N-instructions poll. The
  // block still runs to completion — the safe point is its boundary.
  bool preempt_latched() const noexcept { return preempt_latched_; }

 protected:
  // Initializes the block's threads and the flat register file
  // (thread i's registers are regs_[i * reg_slots .. (i+1) * reg_slots)).
  void SetupBlock(std::uint32_t bx, std::uint32_t by, std::uint32_t bz,
                  std::vector<CThread>* threads) {
    const std::uint64_t nthreads = params_.block.Count();
    threads->assign(nthreads, CThread{});
    regs_.assign(nthreads * prog_.reg_slots, 0);
    for (std::uint64_t i = 0; i < nthreads; ++i) {
      auto& t = (*threads)[i];
      t.ctx.tid_x = static_cast<std::uint32_t>(i % params_.block.x);
      t.ctx.tid_y =
          static_cast<std::uint32_t>((i / params_.block.x) % params_.block.y);
      t.ctx.tid_z = static_cast<std::uint32_t>(
          i / (static_cast<std::uint64_t>(params_.block.x) * params_.block.y));
      t.ctx.ctaid_x = bx;
      t.ctx.ctaid_y = by;
      t.ctx.ctaid_z = bz;
    }
    stats_->threads += nthreads;
  }

  std::uint64_t Special(const CThread& t, SpecialReg sreg) const {
    switch (sreg) {
      case SpecialReg::kTidX: return t.ctx.tid_x;
      case SpecialReg::kTidY: return t.ctx.tid_y;
      case SpecialReg::kTidZ: return t.ctx.tid_z;
      case SpecialReg::kNtidX: return params_.block.x;
      case SpecialReg::kNtidY: return params_.block.y;
      case SpecialReg::kNtidZ: return params_.block.z;
      case SpecialReg::kCtaidX: return t.ctx.ctaid_x;
      case SpecialReg::kCtaidY: return t.ctx.ctaid_y;
      case SpecialReg::kCtaidZ: return t.ctx.ctaid_z;
      case SpecialReg::kNctaidX: return params_.grid.x;
      case SpecialReg::kNctaidY: return params_.grid.y;
      case SpecialReg::kNctaidZ: return params_.grid.z;
      case SpecialReg::kLaneId: return t.ctx.tid_x % 32;
      case SpecialReg::kWarpSize: return 32;
    }
    return 0;
  }

  std::uint64_t ReadOp(const CThread& t, const std::uint64_t* regs,
                       const OperandDesc& desc) const {
    switch (desc.kind) {
      case OperandDesc::Kind::kReg: return regs[desc.slot];
      case OperandDesc::Kind::kImm: return desc.imm;
      case OperandDesc::Kind::kSpecial: return Special(t, desc.sreg);
    }
    return 0;
  }

  Result<std::uint64_t> LoadSized(std::uint64_t addr, std::size_t bytes) {
    if (addr & scalar::kSharedTag) {
      const std::uint64_t off = addr & ~scalar::kSharedTag;
      if (off + bytes > shared_.size())
        return Status(OutOfRange("shared access beyond block allocation"));
      std::uint64_t bits = 0;
      std::memcpy(&bits, shared_.data() + off, bytes);
      ++stats_->shared_accesses;
      return bits;
    }
    GRD_RETURN_IF_ERROR(policy_->CheckAccess(client_, addr, bytes, false));
    std::uint64_t bits = 0;
    GRD_RETURN_IF_ERROR(memory_->Read(addr, &bits, bytes));
    ++stats_->global_loads;
    return bits;
  }

  Status StoreSized(std::uint64_t addr, std::uint64_t bits, std::size_t bytes) {
    if (addr & scalar::kSharedTag) {
      const std::uint64_t off = addr & ~scalar::kSharedTag;
      if (off + bytes > shared_.size())
        return OutOfRange("shared access beyond block allocation");
      std::memcpy(shared_.data() + off, &bits, bytes);
      ++stats_->shared_accesses;
      return OkStatus();
    }
    GRD_RETURN_IF_ERROR(policy_->CheckAccess(client_, addr, bytes, true));
    GRD_RETURN_IF_ERROR(memory_->Write(addr, &bits, bytes));
    ++stats_->global_stores;
    return OkStatus();
  }

  Status Fault(Status status, std::uint64_t addr, const CThread& t) {
    fault_ =
        DeviceFault{std::move(status), addr, LinearThreadId(t), prog_.name};
    return fault_.status;
  }

  Status BudgetFault(const CThread& t) {
    return Fault(DeadlineExceeded("runaway kernel " + prog_.name +
                                  " exceeded instruction budget"),
                 0, t);
  }

  std::uint64_t LinearThreadId(const CThread& t) const {
    return static_cast<std::uint64_t>(t.ctx.ctaid_x) * params_.block.Count() +
           t.ctx.tid_x;
  }

  // Polls the preemption flag, resetting the every-N-instructions countdown.
  // Called once per dispatched instruction (a superinstruction bulk-charges
  // its remaining components through SpendCountdown).
  void PollPreempt() {
    if (preempt_ != nullptr && !preempt_latched_ &&
        --preempt_countdown_ == 0) {
      preempt_countdown_ = preempt_check_interval_;
      preempt_latched_ = preempt_->load(std::memory_order_relaxed);
    }
  }

  // Charges `count` additional instructions against the poll countdown in one
  // step (the fused path: components beyond the first are not individually
  // dispatched, but the poll cadence must not stretch).
  void SpendCountdown(std::uint64_t count) {
    if (preempt_ == nullptr || preempt_latched_ || count == 0) return;
    if (preempt_countdown_ > count) {
      preempt_countdown_ -= count;
      return;
    }
    preempt_countdown_ = preempt_check_interval_;
    preempt_latched_ = preempt_->load(std::memory_order_relaxed);
  }

  const CompiledKernel& prog_;
  const LaunchParams& params_;
  simgpu::GlobalMemory* memory_;
  simgpu::AccessPolicy* policy_;
  std::uint64_t client_;
  std::uint64_t max_instructions_;
  ExecStats* stats_;
  const std::atomic<bool>* preempt_;
  std::uint64_t preempt_check_interval_;
  std::uint64_t preempt_countdown_;
  bool preempt_latched_ = false;
  std::vector<std::uint8_t> shared_;
  std::vector<std::uint64_t> regs_;  // nthreads x reg_slots, flat
  DeviceFault fault_;
};

// ---- top-level grid walk ----------------------------------------------------

// The grid loop shared by the compiled and tiered engines: checkpoint
// skip/resume, per-block stats deltas for the scheduler, and block-boundary
// preemption safe points. `make_block` constructs a fresh block executor
// writing into the passed ExecStats; the executor must expose
// RunBlock(bx, by, bz, DeviceFault*) and preempt_latched().
template <typename MakeBlockExec>
Result<ExecStats> RunGrid(const CompiledKernel& kernel,
                          const LaunchParams& params,
                          const ExecControls& controls,
                          DeviceFault* last_fault, MakeBlockExec&& make_block) {
  KernelCheckpoint* ckpt = controls.checkpoint;
  const std::uint64_t total_blocks = params.grid.Count();
  if (ckpt != nullptr) {
    if (ckpt->valid && ckpt->blocks_total != total_blocks)
      return Status(
          InvalidArgument("checkpoint does not match launch geometry"));
    ckpt->blocks_total = total_blocks;
  }
  // Resume accumulates into the checkpointed totals, so at completion the
  // stats cover every block exactly once regardless of how many times the
  // kernel was suspended.
  ExecStats stats =
      (ckpt != nullptr && ckpt->valid) ? ckpt->stats : ExecStats{};

  auto preempt_pending = [&]() -> bool {
    return ckpt != nullptr && controls.preempt_requested != nullptr &&
           controls.preempt_requested->load(std::memory_order_relaxed);
  };

  std::uint64_t linear = 0;
  for (std::uint32_t bz = 0; bz < params.grid.z; ++bz) {
    for (std::uint32_t by = 0; by < params.grid.y; ++by) {
      for (std::uint32_t bx = 0; bx < params.grid.x; ++bx, ++linear) {
        if (ckpt != nullptr && ckpt->valid && ckpt->Done(linear)) continue;
        const ExecStats before = stats;
        auto block = make_block(&stats);
        DeviceFault fault;
        const Status s = block.RunBlock(bx, by, bz, &fault);
        if (!s.ok()) {
          // A tripped instruction budget keeps the checkpoint (every block
          // before the runaway one), so the caller may requeue instead of
          // killing; any other fault invalidates nothing the caller should
          // resume from.
          if (ckpt != nullptr && s.code() == StatusCode::kDeadlineExceeded)
            ckpt->stats = stats;
          *last_fault = fault;
          return s;
        }
        ++stats.blocks;
        if (ckpt != nullptr) {
          ckpt->MarkDone(linear);
          ckpt->stats = stats;
        }
        if (controls.after_block) {
          ExecStats delta;
          delta.instructions = stats.instructions - before.instructions;
          delta.global_loads = stats.global_loads - before.global_loads;
          delta.global_stores = stats.global_stores - before.global_stores;
          delta.shared_accesses =
              stats.shared_accesses - before.shared_accesses;
          delta.threads = stats.threads - before.threads;
          delta.blocks = 1;
          controls.after_block(delta);
        }
        // Safe point: between blocks. Yield only when there is work left —
        // a fully executed kernel completes normally.
        if ((block.preempt_latched() || preempt_pending()) && ckpt != nullptr &&
            ckpt->blocks_done < total_blocks) {
          return Status(Unavailable(
              "kernel " + kernel.name + " preempted at safe point (" +
              std::to_string(ckpt->blocks_done) + "/" +
              std::to_string(total_blocks) + " blocks done)"));
        }
      }
    }
  }
  return stats;
}

}  // namespace grd::ptxexec::exec_core
