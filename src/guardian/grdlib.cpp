#include "guardian/grdlib.hpp"

#include <time.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace grd::guardian {

using ipc::Bytes;
using ipc::Reader;
using ipc::Writer;
using protocol::Op;
using simcuda::DevicePtr;

namespace {
// Keep batch envelopes comfortably below the 1 MiB ring capacity.
constexpr std::uint64_t kMaxPendingBytes = 256 * 1024;

// Wire layout of RequestHeader: u32 op, then the u64 client id. Recovery
// re-sends a serialized request under a NEW client id by patching it in
// place (the payload after the header is identical by construction for
// idempotent ops).
constexpr std::size_t kClientFieldOffset = sizeof(std::uint32_t);

void PatchHeaderClient(Bytes& raw, std::uint64_t client) {
  if (raw.size() >= kClientFieldOffset + sizeof(client))
    std::memcpy(raw.data() + kClientFieldOffset, &client, sizeof(client));
}

// Save/restore (not set/clear) so Recover's internal calls — which also run
// through Call — nest without the inner scope dropping the outer guard.
class ScopedRecoveryFlag {
 public:
  explicit ScopedRecoveryFlag(bool& flag) : flag_(flag), saved_(flag) {
    flag_ = true;
  }
  ~ScopedRecoveryFlag() { flag_ = saved_; }

 private:
  bool& flag_;
  bool saved_;
};
}  // namespace

bool GrdLib::IsRetryable(Op op) {
  // Safe to re-send verbatim against a freshly recovered session: no
  // server-side handles in the payload (module/function/stream/event ids
  // from the dead session would be stale) and no side effect that could
  // double-apply. kModuleLoadData qualifies — the payload is the PTX text,
  // and a duplicate load is a sandbox-cache hit, not a second module.
  switch (op) {
    case Op::kGetDeviceSpec:
    case Op::kModuleLoadData:
    case Op::kDeviceSynchronize:
    case Op::kGetExportTable:
      return true;
    default:
      return false;
  }
}

bool GrdLib::IsRetryableAfterAttach(Op op) {
  // After an attach the session kept its client id, partition, and every
  // server-side module / function / stream handle (rebuilt from the shared
  // journal with identical ids), so ops whose re-execution is idempotent IN
  // EFFECT also re-send safely: an interrupted launch resumes from its
  // journaled block checkpoint (or deterministically rewrites its own
  // partition), copies and memsets rewrite the same bytes, syncs just wait.
  // Handle-creating/destroying ops stay out — the crash may have landed
  // after the side effect, and a second create would leak — as do event
  // ops (events are not journaled, so they did not survive adoption).
  switch (op) {
    case Op::kLaunchKernel:
    case Op::kMemcpyH2D:
    case Op::kMemcpyH2DAsync:
    case Op::kMemcpyD2H:
    case Op::kMemcpyD2D:
    case Op::kMemset:
    case Op::kStreamSynchronize:
    case Op::kStreamIsCapturing:
    case Op::kStreamGetCaptureInfo:
    case Op::kSetPriority:
    case Op::kModuleGetFunction:
      return true;
    default:
      return IsRetryable(op);
  }
}

bool GrdLib::IsRecoverable(Op op) {
  // A failed registration has no session to recover; disconnecting a
  // session the crash already destroyed is complete as-is.
  return op != Op::kRegisterClient && op != Op::kDisconnect;
}

void GrdLib::BackoffSleep(int attempt) const {
  std::int64_t us = options_.recovery_backoff.count();
  for (int i = 1; i < attempt; ++i) {
    us *= 2;
    if (us >= options_.recovery_backoff_max.count()) break;
  }
  us = std::min<std::int64_t>(us, options_.recovery_backoff_max.count());
  timespec deadline;
  clock_gettime(CLOCK_MONOTONIC, &deadline);
  deadline.tv_sec += us / 1'000'000;
  deadline.tv_nsec += (us % 1'000'000) * 1000;
  if (deadline.tv_nsec >= 1'000'000'000) {
    deadline.tv_sec += 1;
    deadline.tv_nsec -= 1'000'000'000;
  }
  while (clock_nanosleep(CLOCK_MONOTONIC, TIMER_ABSTIME, &deadline, nullptr) ==
         EINTR) {
  }
}

ipc::Writer GrdLib::NewRequest(Op op) const {
  Writer writer;
  last_trace_ = protocol::WriteHeader(writer, op, client_);
  last_trace_op_ = op;
  last_trace_begin_ns_ = last_trace_.valid() ? obs::MonotonicNowNs() : 0;
  return writer;
}

Result<Reader> GrdLib::Transact(const Bytes& raw,
                                Bytes* response_storage) const {
  GRD_ASSIGN_OR_RETURN(*response_storage, transport_->Call(raw));
  return protocol::DecodeResponse(*response_storage);
}

Result<Reader> GrdLib::Call(Writer request, Bytes* response_storage) const {
  // Copy the trace state now: FlushBatch below stamps its own envelope
  // header and would clobber it.
  const obs::TraceContext ctx = last_trace_;
  const Op op = last_trace_op_;
  const std::uint64_t begin_ns = last_trace_begin_ns_;
  // Any buffered async calls are ordered before this one; their errors
  // surface here (CUDA-style deferred async error reporting).
  GRD_RETURN_IF_ERROR(FlushBatch());
  Bytes raw = std::move(request).Take();
  auto reader = Transact(raw, response_storage);
  if (ctx.valid()) {
    char name[48];
    std::snprintf(name, sizeof(name), "client.%s", protocol::OpName(op));
    obs::TraceRecorder::Instance().EmitComplete(name, ctx, 0, begin_ns,
                                                obs::MonotonicNowNs());
  }
  if (reader.ok() || recovering_ || options_.recovery_attempts <= 0 ||
      reader.status().code() != StatusCode::kUnavailable ||
      !IsRecoverable(op))
    return reader;
  // Crash recovery (GrdLibOptions): the session died with its worker.
  // Re-establish it; transparently retry only idempotent ops.
  for (int attempt = 1; attempt <= options_.recovery_attempts; ++attempt) {
    BackoffSleep(attempt);
    if (!Recover().ok()) {
      ++recovery_failures_;
      continue;
    }
    const bool retryable =
        last_recovery_attached_ ? IsRetryableAfterAttach(op) : IsRetryable(op);
    if (!retryable)
      return Status(Unavailable(
          std::string("session re-registered after worker crash; ") +
          protocol::OpName(op) +
          " not retried (rebuild device state and retry)"));
    PatchHeaderClient(raw, client_);
    ++recovery_retries_;
    reader = Transact(raw, response_storage);
    if (reader.ok() ||
        reader.status().code() != StatusCode::kUnavailable)
      return reader;
  }
  return reader;
}

Status GrdLib::CallNoPayload(Writer request) const {
  Bytes storage;
  auto reader = Call(std::move(request), &storage);
  return reader.ok() ? OkStatus() : reader.status();
}

void GrdLib::EnableBatching(std::size_t max_pending) {
  batching_enabled_ = true;
  // Clamp to the envelope limit the manager enforces: a larger setting
  // would make every flush an oversize batch rejected wholesale.
  max_pending_ = std::clamp<std::size_t>(max_pending, 1,
                                         protocol::kMaxBatchOps);
}

Status GrdLib::BufferAsync(Writer request) const {
  Bytes bytes = std::move(request).Take();
  pending_bytes_ += bytes.size();
  pending_.push_back(std::move(bytes));
  if (pending_.size() >= max_pending_ || pending_bytes_ >= kMaxPendingBytes)
    return FlushBatch();
  return OkStatus();
}

Status GrdLib::FlushBatch() const {
  if (pending_.empty()) return OkStatus();
  Writer envelope;
  const obs::TraceContext batch_ctx =
      protocol::WriteHeader(envelope, Op::kBatch, client_);
  const std::uint64_t batch_begin_ns =
      batch_ctx.valid() ? obs::MonotonicNowNs() : 0;
  envelope.Put<std::uint32_t>(static_cast<std::uint32_t>(pending_.size()));
  for (const auto& sub : pending_) envelope.PutBlob(sub.data(), sub.size());
  const std::size_t sent = pending_.size();
  pending_.clear();
  pending_bytes_ = 0;
  GRD_ASSIGN_OR_RETURN(Bytes response,
                       transport_->Call(std::move(envelope).Take()));
  if (batch_ctx.valid())
    obs::TraceRecorder::Instance().EmitComplete(
        "client.Batch", batch_ctx, 0, batch_begin_ns, obs::MonotonicNowNs(),
        sent);
  GRD_ASSIGN_OR_RETURN(Reader reader, protocol::DecodeResponse(response));
  ++batches_sent_;
  GRD_ASSIGN_OR_RETURN(std::uint8_t form, reader.Get<std::uint8_t>());
  GRD_ASSIGN_OR_RETURN(std::uint32_t executed, reader.Get<std::uint32_t>());
  if (executed > sent) return Internal("batch response count mismatch");
  if (form == 1) {
    // Compacted reply: every sub-op succeeded, responses elided.
    if (executed < sent)
      return Internal("compacted batch response dropped sub-ops");
    return OkStatus();
  }
  for (std::uint32_t i = 0; i < executed; ++i) {
    GRD_ASSIGN_OR_RETURN(Bytes sub_bytes, reader.GetBlob());
    auto sub = protocol::DecodeResponse(sub_bytes);
    // The manager stops at the first failure, so at most the last executed
    // sub-response is an error; everything after it never ran.
    if (!sub.ok()) return sub.status();
  }
  if (executed < sent)
    return Internal("batch aborted without an error response");
  return OkStatus();
}

Result<GrdLib> GrdLib::Connect(ClientTransport* transport,
                               std::uint64_t memory_requirement,
                               GrdLibOptions options) {
  GrdLib lib(transport);
  lib.options_ = options;
  lib.memory_requirement_ = memory_requirement;
  // Registration is excluded from the generic recovery path (IsRecoverable:
  // a retried register that actually landed twice would leak a session), so
  // Connect loops explicitly: a kUnavailable here means the register never
  // produced a session — re-sending is safe.
  Status registered = lib.Register();
  for (int attempt = 1;
       !registered.ok() &&
       registered.code() == StatusCode::kUnavailable &&
       attempt <= options.recovery_attempts;
       ++attempt) {
    lib.BackoffSleep(attempt);
    registered = lib.Register();
  }
  GRD_RETURN_IF_ERROR(registered);
  GRD_RETURN_IF_ERROR(lib.FetchDeviceSpec());
  return lib;
}

Status GrdLib::Register() const {
  // Runs under the recovery flag so a nested failure cannot recurse into
  // another recovery.
  ScopedRecoveryFlag scope(recovering_);
  Writer request;
  protocol::WriteHeader(request, Op::kRegisterClient, 0);
  request.Put<std::uint64_t>(memory_requirement_);
  Bytes storage;
  auto reader = Transact(std::move(request).Take(), &storage);
  if (!reader.ok()) return reader.status();
  GRD_ASSIGN_OR_RETURN(client_, reader->Get<std::uint64_t>());
  GRD_ASSIGN_OR_RETURN(partition_base_, reader->Get<std::uint64_t>());
  GRD_ASSIGN_OR_RETURN(partition_size_, reader->Get<std::uint64_t>());
  GRD_ASSIGN_OR_RETURN(device_id_, reader->Get<std::uint32_t>());
  return OkStatus();
}

Status GrdLib::ResumeAttach() const {
  ScopedRecoveryFlag scope(recovering_);
  Writer request;
  protocol::WriteHeader(request, Op::kResumeSession, client_);
  request.Put<std::uint64_t>(client_);
  Bytes storage;
  auto reader = Transact(std::move(request).Take(), &storage);
  if (!reader.ok()) return reader.status();
  GRD_ASSIGN_OR_RETURN(client_, reader->Get<std::uint64_t>());
  GRD_ASSIGN_OR_RETURN(partition_base_, reader->Get<std::uint64_t>());
  GRD_ASSIGN_OR_RETURN(partition_size_, reader->Get<std::uint64_t>());
  GRD_ASSIGN_OR_RETURN(device_id_, reader->Get<std::uint32_t>());
  ++resume_attaches_;
  return OkStatus();
}

Status GrdLib::Recover() const {
  ScopedRecoveryFlag scope(recovering_);
  // The old session's buffered batch (if any) died with the worker; replay
  // would re-send launches against handles that no longer exist.
  pending_.clear();
  pending_bytes_ = 0;
  // Attach-first: if the replacement worker adopted the session from its
  // journal, the id, partition and every server-side handle survived —
  // nothing to replay.
  last_recovery_attached_ = false;
  if (client_ != 0 && ResumeAttach().ok()) {
    last_recovery_attached_ = true;
    ++recoveries_;
    return OkStatus();
  }
  GRD_RETURN_IF_ERROR(Register());
  if (priority_set_) {
    Writer request;
    protocol::WriteHeader(request, Op::kSetPriority, client_);
    request.Put<std::uint8_t>(0);  // scope: session
    request.Put<std::uint64_t>(0);
    request.Put<std::uint8_t>(static_cast<std::uint8_t>(priority_));
    Bytes storage;
    auto reader = Transact(std::move(request).Take(), &storage);
    if (!reader.ok()) return reader.status();
  }
  // Replay the module journal: fresh server ids slide in underneath the
  // client-facing virtual handles the application still holds.
  for (auto& [handle, module] : modules_) {
    Writer load;
    protocol::WriteHeader(load, Op::kModuleLoadData, client_);
    load.PutString(module.ptx);
    Bytes storage;
    auto reader = Transact(std::move(load).Take(), &storage);
    if (!reader.ok()) return reader.status();
    GRD_ASSIGN_OR_RETURN(module.server_id, reader->Get<std::uint64_t>());
    for (auto& [fn_handle, fn] : module.functions) {
      Writer lookup;
      protocol::WriteHeader(lookup, Op::kModuleGetFunction, client_);
      lookup.Put<std::uint64_t>(module.server_id);
      lookup.PutString(fn.name);
      Bytes fn_storage;
      auto fn_reader = Transact(std::move(lookup).Take(), &fn_storage);
      if (!fn_reader.ok()) return fn_reader.status();
      GRD_ASSIGN_OR_RETURN(fn.server_id, fn_reader->Get<std::uint64_t>());
    }
  }
  ++recoveries_;
  return OkStatus();
}

Status GrdLib::FetchDeviceSpec() {
  Bytes storage;
  GRD_ASSIGN_OR_RETURN(Reader reader,
                       Call(NewRequest(Op::kGetDeviceSpec), &storage));
  GRD_ASSIGN_OR_RETURN(device_spec_.name, reader.GetString());
  GRD_ASSIGN_OR_RETURN(device_spec_.compute_capability, reader.GetString());
  GRD_ASSIGN_OR_RETURN(device_spec_.sms, reader.Get<std::int32_t>());
  GRD_ASSIGN_OR_RETURN(device_spec_.cuda_cores, reader.Get<std::int32_t>());
  GRD_ASSIGN_OR_RETURN(device_spec_.l1_kb, reader.Get<std::int32_t>());
  GRD_ASSIGN_OR_RETURN(device_spec_.l2_kb, reader.Get<std::int32_t>());
  GRD_ASSIGN_OR_RETURN(device_spec_.global_mem_bytes,
                       reader.Get<std::uint64_t>());
  return OkStatus();
}

Status GrdLib::Disconnect() {
  return CallNoPayload(NewRequest(Op::kDisconnect));
}

Status GrdLib::SetPriority(protocol::PriorityClass priority) {
  Writer request = NewRequest(Op::kSetPriority);
  request.Put<std::uint8_t>(0);  // scope: session
  request.Put<std::uint64_t>(0);
  request.Put<std::uint8_t>(static_cast<std::uint8_t>(priority));
  GRD_RETURN_IF_ERROR(CallNoPayload(std::move(request)));
  // Recorded so Recover() re-applies the class to the fresh session.
  priority_set_ = true;
  priority_ = priority;
  return OkStatus();
}

Status GrdLib::SetStreamPriority(simcuda::StreamId stream,
                                 protocol::PriorityClass priority) {
  Writer request = NewRequest(Op::kSetPriority);
  request.Put<std::uint8_t>(1);  // scope: stream
  request.Put<std::uint64_t>(stream);
  request.Put<std::uint8_t>(static_cast<std::uint8_t>(priority));
  return CallNoPayload(std::move(request));
}

Status GrdLib::GrowPartition() {
  Bytes storage;
  GRD_ASSIGN_OR_RETURN(Reader reader,
                       Call(NewRequest(Op::kGrowPartition), &storage));
  GRD_ASSIGN_OR_RETURN(partition_base_, reader.Get<std::uint64_t>());
  GRD_ASSIGN_OR_RETURN(partition_size_, reader.Get<std::uint64_t>());
  return OkStatus();
}

Status GrdLib::cudaMalloc(DevicePtr* ptr, std::uint64_t size) {
  Writer request = NewRequest(Op::kMalloc);
  request.Put<std::uint64_t>(size);
  Bytes storage;
  GRD_ASSIGN_OR_RETURN(Reader reader, Call(std::move(request), &storage));
  GRD_ASSIGN_OR_RETURN(*ptr, reader.Get<std::uint64_t>());
  return OkStatus();
}

Status GrdLib::cudaFree(DevicePtr ptr) {
  Writer request = NewRequest(Op::kFree);
  request.Put<std::uint64_t>(ptr);
  return CallNoPayload(std::move(request));
}

Status GrdLib::cudaMemcpy(void* dst_host, DevicePtr src_dev,
                          std::uint64_t size, simcuda::MemcpyKind kind) {
  if (kind != simcuda::MemcpyKind::kDeviceToHost)
    return InvalidArgument("this overload serves D2H; use the typed methods");
  Writer request = NewRequest(Op::kMemcpyD2H);
  request.Put<std::uint64_t>(src_dev);
  request.Put<std::uint64_t>(size);
  Bytes storage;
  GRD_ASSIGN_OR_RETURN(Reader reader, Call(std::move(request), &storage));
  GRD_ASSIGN_OR_RETURN(Bytes payload, reader.GetBlob());
  if (payload.size() != size) return Internal("short D2H payload");
  std::memcpy(dst_host, payload.data(), size);
  return OkStatus();
}

Status GrdLib::cudaMemcpyH2D(DevicePtr dst_dev, const void* src_host,
                             std::uint64_t size) {
  Writer request = NewRequest(Op::kMemcpyH2D);
  request.Put<std::uint64_t>(dst_dev);
  request.PutBlob(src_host, size);
  return CallNoPayload(std::move(request));
}

Status GrdLib::cudaMemcpyH2DAsync(DevicePtr dst_dev, const void* src_host,
                                  std::uint64_t size,
                                  simcuda::StreamId stream) {
  Writer request = NewRequest(Op::kMemcpyH2DAsync);
  request.Put<std::uint64_t>(dst_dev);
  request.Put<std::uint64_t>(stream);
  request.PutBlob(src_host, size);
  // The payload is serialized into the message, so the caller's buffer is
  // reusable on return even though the copy completes later.
  if (batching_enabled_ && stream != simcuda::kDefaultStream)
    return BufferAsync(std::move(request));
  return CallNoPayload(std::move(request));
}

Status GrdLib::cudaMemcpyD2D(DevicePtr dst_dev, DevicePtr src_dev,
                             std::uint64_t size) {
  Writer request = NewRequest(Op::kMemcpyD2D);
  request.Put<std::uint64_t>(dst_dev);
  request.Put<std::uint64_t>(src_dev);
  request.Put<std::uint64_t>(size);
  return CallNoPayload(std::move(request));
}

Status GrdLib::cudaMemset(DevicePtr dst, int value, std::uint64_t size) {
  Writer request = NewRequest(Op::kMemset);
  request.Put<std::uint64_t>(dst);
  request.Put<std::uint32_t>(static_cast<std::uint32_t>(value));
  request.Put<std::uint64_t>(size);
  return CallNoPayload(std::move(request));
}

Status GrdLib::cudaLaunchKernel(simcuda::FunctionId func,
                                const simcuda::LaunchConfig& config,
                                std::vector<ptxexec::KernelArg> args) {
  GRD_ASSIGN_OR_RETURN(std::uint64_t server_func, TranslateFunction(func));
  Writer request = NewRequest(Op::kLaunchKernel);
  request.Put<std::uint64_t>(server_func);
  request.Put<std::uint32_t>(config.grid.x);
  request.Put<std::uint32_t>(config.grid.y);
  request.Put<std::uint32_t>(config.grid.z);
  request.Put<std::uint32_t>(config.block.x);
  request.Put<std::uint32_t>(config.block.y);
  request.Put<std::uint32_t>(config.block.z);
  request.Put<std::uint64_t>(config.stream);
  request.Put<std::uint32_t>(static_cast<std::uint32_t>(args.size()));
  for (const auto& arg : args) {
    request.Put<std::uint64_t>(arg.bits);
    request.Put<std::uint8_t>(arg.size);
  }
  // Non-default-stream launches are fire-and-forget (faults surface at the
  // next sync), so they can ride in a batch with adjacent async calls.
  if (batching_enabled_ && config.stream != simcuda::kDefaultStream)
    return BufferAsync(std::move(request));
  return CallNoPayload(std::move(request));
}

Status GrdLib::cudaStreamCreate(simcuda::StreamId* stream) {
  Bytes storage;
  GRD_ASSIGN_OR_RETURN(Reader reader,
                       Call(NewRequest(Op::kStreamCreate), &storage));
  GRD_ASSIGN_OR_RETURN(*stream, reader.Get<std::uint64_t>());
  return OkStatus();
}

Status GrdLib::cudaStreamDestroy(simcuda::StreamId stream) {
  Writer request = NewRequest(Op::kStreamDestroy);
  request.Put<std::uint64_t>(stream);
  return CallNoPayload(std::move(request));
}

Status GrdLib::cudaStreamSynchronize(simcuda::StreamId stream) {
  Writer request = NewRequest(Op::kStreamSynchronize);
  request.Put<std::uint64_t>(stream);
  return CallNoPayload(std::move(request));
}

Status GrdLib::cudaStreamIsCapturing(simcuda::StreamId stream,
                                     bool* capturing) {
  Writer request = NewRequest(Op::kStreamIsCapturing);
  request.Put<std::uint64_t>(stream);
  Bytes storage;
  GRD_ASSIGN_OR_RETURN(Reader reader, Call(std::move(request), &storage));
  GRD_ASSIGN_OR_RETURN(std::uint64_t value, reader.Get<std::uint64_t>());
  *capturing = value != 0;
  return OkStatus();
}

Status GrdLib::cudaStreamGetCaptureInfo(simcuda::StreamId stream,
                                        std::uint64_t* capture_id) {
  Writer request = NewRequest(Op::kStreamGetCaptureInfo);
  request.Put<std::uint64_t>(stream);
  Bytes storage;
  GRD_ASSIGN_OR_RETURN(Reader reader, Call(std::move(request), &storage));
  GRD_ASSIGN_OR_RETURN(*capture_id, reader.Get<std::uint64_t>());
  return OkStatus();
}

Status GrdLib::cudaEventCreateWithFlags(simcuda::EventId* event,
                                        std::uint32_t flags) {
  Writer request = NewRequest(Op::kEventCreate);
  request.Put<std::uint32_t>(flags);
  Bytes storage;
  GRD_ASSIGN_OR_RETURN(Reader reader, Call(std::move(request), &storage));
  GRD_ASSIGN_OR_RETURN(*event, reader.Get<std::uint64_t>());
  return OkStatus();
}

Status GrdLib::cudaEventDestroy(simcuda::EventId event) {
  Writer request = NewRequest(Op::kEventDestroy);
  request.Put<std::uint64_t>(event);
  return CallNoPayload(std::move(request));
}

Status GrdLib::cudaEventRecord(simcuda::EventId event,
                               simcuda::StreamId stream) {
  Writer request = NewRequest(Op::kEventRecord);
  request.Put<std::uint64_t>(event);
  request.Put<std::uint64_t>(stream);
  // Records are fire-and-forget markers, so they batch with the launches
  // and copies around them (FIFO within the envelope preserves order).
  if (batching_enabled_ && stream != simcuda::kDefaultStream)
    return BufferAsync(std::move(request));
  return CallNoPayload(std::move(request));
}

Status GrdLib::cudaEventSynchronize(simcuda::EventId event) {
  Writer request = NewRequest(Op::kEventSynchronize);
  request.Put<std::uint64_t>(event);
  return CallNoPayload(std::move(request));
}

Status GrdLib::cudaStreamWaitEvent(simcuda::StreamId stream,
                                   simcuda::EventId event) {
  Writer request = NewRequest(Op::kStreamWaitEvent);
  request.Put<std::uint64_t>(event);
  request.Put<std::uint64_t>(stream);
  if (batching_enabled_ && stream != simcuda::kDefaultStream)
    return BufferAsync(std::move(request));
  return CallNoPayload(std::move(request));
}

Status GrdLib::cudaDeviceSynchronize() {
  return CallNoPayload(NewRequest(Op::kDeviceSynchronize));
}

Result<const simcuda::ExportTable*> GrdLib::cudaGetExportTable(
    simcuda::ExportTableId id) {
  const auto index = static_cast<std::size_t>(id);
  if (index >= export_tables_.size())
    return Status(NotFound("unknown export table"));
  if (export_tables_[index] != nullptr) return export_tables_[index].get();
  Writer request = NewRequest(Op::kGetExportTable);
  request.Put<std::uint8_t>(static_cast<std::uint8_t>(id));
  Bytes storage;
  GRD_ASSIGN_OR_RETURN(Reader reader, Call(std::move(request), &storage));
  GRD_ASSIGN_OR_RETURN(std::uint8_t table_id, reader.Get<std::uint8_t>());
  GRD_ASSIGN_OR_RETURN(std::uint32_t count, reader.Get<std::uint32_t>());
  auto table = std::make_unique<simcuda::ExportTable>();
  table->id = static_cast<simcuda::ExportTableId>(table_id);
  for (std::uint32_t i = 0; i < count; ++i) {
    GRD_ASSIGN_OR_RETURN(std::string name, reader.GetString());
    table->entries.push_back({std::move(name)});
  }
  export_tables_[index] = std::move(table);
  return export_tables_[index].get();
}

Result<simcuda::ModuleId> GrdLib::RegisterFatBinary(const std::string& ptx) {
  return cuModuleLoadData(ptx);
}

Result<simcuda::FunctionId> GrdLib::RegisterFunction(
    simcuda::ModuleId module, const std::string& kernel) {
  return cuModuleGetFunction(module, kernel);
}

Result<simcuda::ModuleId> GrdLib::cuModuleLoadData(const std::string& ptx) {
  Writer request = NewRequest(Op::kModuleLoadData);
  request.PutString(ptx);
  Bytes storage;
  GRD_ASSIGN_OR_RETURN(Reader reader, Call(std::move(request), &storage));
  GRD_ASSIGN_OR_RETURN(std::uint64_t server_id, reader.Get<std::uint64_t>());
  // Hand the application a VIRTUAL handle and journal the PTX: Recover()
  // can reload the module and remap the same handle to a fresh server id.
  const std::uint64_t handle = next_handle_++;
  modules_[handle] = ModuleRecord{ptx, server_id, {}};
  return handle;
}

Result<simcuda::FunctionId> GrdLib::cuModuleGetFunction(
    simcuda::ModuleId module, const std::string& kernel) {
  auto it = modules_.find(module);
  if (it == modules_.end())
    return Status(NotFound("unknown client module handle"));
  Writer request = NewRequest(Op::kModuleGetFunction);
  request.Put<std::uint64_t>(it->second.server_id);
  request.PutString(kernel);
  Bytes storage;
  GRD_ASSIGN_OR_RETURN(Reader reader, Call(std::move(request), &storage));
  GRD_ASSIGN_OR_RETURN(std::uint64_t server_id, reader.Get<std::uint64_t>());
  const std::uint64_t handle = next_handle_++;
  it->second.functions[handle] = FunctionRecord{kernel, server_id};
  function_module_[handle] = module;
  return handle;
}

Result<std::uint64_t> GrdLib::TranslateFunction(
    std::uint64_t client_func) const {
  auto mod_it = function_module_.find(client_func);
  if (mod_it == function_module_.end())
    return Status(NotFound("unknown client function handle"));
  const auto& module = modules_.at(mod_it->second);
  return module.functions.at(client_func).server_id;
}

Status GrdLib::cuLaunchKernel(simcuda::FunctionId func,
                              const simcuda::LaunchConfig& config,
                              std::vector<ptxexec::KernelArg> args) {
  return cudaLaunchKernel(func, config, std::move(args));
}

Status GrdLib::cuMemAlloc(DevicePtr* ptr, std::uint64_t size) {
  return cudaMalloc(ptr, size);
}

Status GrdLib::cuMemFree(DevicePtr ptr) { return cudaFree(ptr); }

Status GrdLib::cuMemcpyHtoD(DevicePtr dst, const void* src,
                            std::uint64_t size) {
  return cudaMemcpyH2D(dst, src, size);
}

Status GrdLib::cuMemcpyDtoH(void* dst, DevicePtr src, std::uint64_t size) {
  return cudaMemcpy(dst, src, size, simcuda::MemcpyKind::kDeviceToHost);
}

}  // namespace grd::guardian
