#include "guardian/bounds_table.hpp"

#include "common/strings.hpp"
#include "guardian/shared_state.hpp"

namespace grd::guardian {

SharedSessionSlot* PartitionBoundsTable::ResolveSharedSlot(
    ClientId client) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = slot_memo_.find(client);
    // A slot pointer is only valid while the slot still holds this client:
    // recycling (release, crash-fail + reuse) republishes a new id there.
    if (it != slot_memo_.end() &&
        it->second->client.load(std::memory_order_acquire) == client)
      return it->second;
  }
  SharedSessionSlot* slot = shared_->FindSession(client);
  if (slot != nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    slot_memo_[client] = slot;
  }
  return slot;
}

Status PartitionBoundsTable::Insert(ClientId client, PartitionBounds bounds) {
  if (shared_ != nullptr) {
    // Upsert into the client's shared session slot (registration writes the
    // initial bounds through AllocateSession already; GrowPartition re-inserts
    // the doubled bounds here).
    SharedSessionSlot* slot = ResolveSharedSlot(client);
    if (slot == nullptr)
      return NotFound("client " + std::to_string(client) +
                      " has no shared session slot");
    slot->partition_base.store(bounds.base, std::memory_order_relaxed);
    slot->partition_size.store(bounds.size, std::memory_order_release);
    return OkStatus();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!table_.emplace(client, bounds).second)
    return AlreadyExists("client " + std::to_string(client) +
                         " already has a partition");
  return OkStatus();
}

Status PartitionBoundsTable::Remove(ClientId client) {
  if (shared_ != nullptr) {
    // The bounds live in the session slot; the registry erase (or the
    // supervisor's crash fail-over) retires them. Only the memo is dropped
    // here — disconnect must not fail because the slot went first.
    std::lock_guard<std::mutex> lock(mu_);
    slot_memo_.erase(client);
    return OkStatus();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (table_.erase(client) == 0)
    return NotFound("client " + std::to_string(client) + " has no partition");
  return OkStatus();
}

Result<PartitionBounds> PartitionBoundsTable::Lookup(ClientId client) const {
  if (shared_ != nullptr) {
    SharedSessionSlot* slot = ResolveSharedSlot(client);
    if (slot == nullptr)
      return Status(
          NotFound("client " + std::to_string(client) + " has no partition"));
    PartitionBounds bounds;
    bounds.base = slot->partition_base.load(std::memory_order_acquire);
    bounds.size = slot->partition_size.load(std::memory_order_acquire);
    return bounds;
  }
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = table_.find(client);
  if (it == table_.end())
    return Status(
        NotFound("client " + std::to_string(client) + " has no partition"));
  return it->second;
}

std::size_t PartitionBoundsTable::size() const {
  if (shared_ != nullptr) return shared_->ActiveSessions();
  std::lock_guard<std::mutex> lock(mu_);
  return table_.size();
}

Status PartitionBoundsTable::CheckTransfer(ClientId client, std::uint64_t addr,
                                           std::uint64_t len) const {
  GRD_ASSIGN_OR_RETURN(PartitionBounds bounds, Lookup(client));
  if (!bounds.Contains(addr, len)) {
    return PermissionDenied("transfer " + ToHex(addr) + "+" +
                            std::to_string(len) +
                            " outside partition of client " +
                            std::to_string(client));
  }
  return OkStatus();
}

}  // namespace grd::guardian
