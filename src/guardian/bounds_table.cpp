#include "guardian/bounds_table.hpp"

#include "common/strings.hpp"

namespace grd::guardian {

Status PartitionBoundsTable::Insert(ClientId client, PartitionBounds bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!table_.emplace(client, bounds).second)
    return AlreadyExists("client " + std::to_string(client) +
                         " already has a partition");
  return OkStatus();
}

Status PartitionBoundsTable::Remove(ClientId client) {
  std::lock_guard<std::mutex> lock(mu_);
  if (table_.erase(client) == 0)
    return NotFound("client " + std::to_string(client) + " has no partition");
  return OkStatus();
}

Result<PartitionBounds> PartitionBoundsTable::Lookup(ClientId client) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = table_.find(client);
  if (it == table_.end())
    return Status(
        NotFound("client " + std::to_string(client) + " has no partition"));
  return it->second;
}

Status PartitionBoundsTable::CheckTransfer(ClientId client, std::uint64_t addr,
                                           std::uint64_t len) const {
  GRD_ASSIGN_OR_RETURN(PartitionBounds bounds, Lookup(client));
  if (!bounds.Contains(addr, len)) {
    return PermissionDenied("transfer " + ToHex(addr) + "+" +
                            std::to_string(len) +
                            " outside partition of client " +
                            std::to_string(client));
  }
  return OkStatus();
}

}  // namespace grd::guardian
