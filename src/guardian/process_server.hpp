// Process-mode manager deployment: a pool of FORKED grdManager worker
// processes pumping client shm rings against the SharedRegion serving state
// (shared_state.hpp), supervised by the parent.
//
// This is the paper's deployment shape taken to multi-worker scale: clients
// and manager workers live in separate address spaces and meet only in the
// MAP_SHARED region holding the rings and the shared registry. Division of
// labor:
//
//  - Parent (ProcessServer): creates the region, lays out channels, assigns
//    each channel a preferred worker, forks the workers, then supervises —
//    waitpid-reaps dead workers, fails their sessions in the shared
//    registry, writes synthetic error responses for requests a dead worker
//    consumed but never answered (so a blocked client's Call returns a
//    clean Unavailable instead of hanging), releases the dead worker's
//    channel claims and respawns a replacement into the same slot. The
//    parent never touches a GPU.
//
//  - Worker (forked child): constructs its own simulated GPU + GrdManager
//    bound to the shared state (pool-unique client ids, shared bounds,
//    shared ManagerStats), sticky-claims its preferred channels by CAS, and
//    pumps them round-robin with the transport's idle backoff until the
//    shared stop flag rises. A worker crash takes down only the sessions it
//    owned: claims are sticky, so no other worker ever held state for them.
//
// Crash-containment contract (proven by tests/process_mode_test.cpp and
// tests/adoption_test.cpp):
//  1. a SIGKILLed worker's in-flight requests answer with kUnavailable;
//  2. with respawn enabled, its journaled sessions are re-homed onto the
//     replacement worker (adoption_pending) and rebuilt from their shared
//     journals on first touch — same client id, same partition bounds;
//     sessions whose journal overflowed (or with respawn disabled) move to
//     kFailed and later requests get a clean "worker crashed" status;
//  3. sessions on surviving workers are untouched and keep serving;
//  4. the replacement worker accepts fresh registrations on the orphaned
//     channels.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "guardian/execution.hpp"
#include "guardian/shared_state.hpp"
#include "ipc/channel.hpp"
#include "simgpu/device_spec.hpp"

namespace grd::guardian {

struct ProcessServerOptions {
  std::uint32_t workers = 2;
  std::uint32_t channels = 4;
  // Shared-registry capacities; ring_bytes sizes every channel's two rings.
  SharedServingLayout layout;
  // Options each worker's GrdManager is constructed with.
  ManagerOptions manager;
  // Device each worker simulates. Workers are replicas: device *memory* is
  // worker-private, the shared registry is the pool's control plane.
  simgpu::DeviceSpec device = simgpu::QuadroRtxA4000();
  // Additional devices EACH worker owns beyond `device` (multi-device
  // fleet): forwarded into ManagerOptions::extra_devices at fork time so
  // every worker places sessions across its local fleet and can live-migrate
  // between its devices.
  std::vector<simgpu::DeviceSpec> extra_devices;
  // Respawn crashed workers (tests may disable to observe the bare failure).
  bool respawn = true;
};

class ProcessServer {
 public:
  static Result<std::unique_ptr<ProcessServer>> Create(
      ProcessServerOptions options);
  ~ProcessServer();

  ProcessServer(const ProcessServer&) = delete;
  ProcessServer& operator=(const ProcessServer&) = delete;

  // Forks the workers and starts the supervision thread. Call once.
  Status Start();
  // Raises the shared stop flag, reaps every worker (escalating to SIGKILL
  // after a grace period) and joins supervision. Idempotent; also run by
  // the destructor.
  void Stop();

  const ProcessServerOptions& options() const noexcept { return options_; }
  SharedServingState& state() noexcept { return *state_; }
  // Client-side channel i. Clients forked from this process inherit the
  // mapping and may use this object (or re-wrap channel_region) directly.
  ipc::Channel& channel(std::uint32_t i) noexcept { return *channels_[i]; }

  pid_t worker_pid(std::uint32_t i) const noexcept {
    return static_cast<pid_t>(
        state_->worker_slot(i).pid.load(std::memory_order_acquire));
  }
  std::uint32_t channel_owner(std::uint32_t i) noexcept {
    return state_->channel_slot(i).owner.load(std::memory_order_acquire);
  }

  // Blocks until every channel has a live claimed owner (worker startup /
  // respawn barrier for tests and demos). False on timeout.
  bool WaitForChannelOwners(std::int64_t timeout_ms = 5000);

 private:
  explicit ProcessServer(ProcessServerOptions options)
      : options_(std::move(options)) {}

  // Forks a worker into slot `index` (generation bump + pid bookkeeping).
  Status SpawnWorker(std::uint32_t index);
  // The child body; never returns.
  [[noreturn]] void WorkerMain(std::uint32_t index);
  void SuperviseLoop();
  // Crash repair for a reaped worker (see file comment); `respawn` gates
  // step 4.
  void HandleWorkerDeath(std::uint32_t index, int wait_status);
  void WriteSyntheticResponses(std::uint32_t worker);

  ProcessServerOptions options_;
  std::unique_ptr<ipc::SharedRegion> region_;
  SharedServingState* state_ = nullptr;
  // Parent-side channel objects over the shared rings (creator side).
  std::vector<std::unique_ptr<ipc::Channel>> channels_;

  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::thread supervisor_;
};

}  // namespace grd::guardian
