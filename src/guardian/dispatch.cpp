#include "guardian/dispatch.hpp"

#include <algorithm>
#include <stdexcept>

namespace grd::guardian {

void Dispatcher::Register(protocol::Op op, HandlerDescriptor descriptor) {
  // Registration misuse is a programming error at startup, not a request
  // error — fail loudly in every build type (a silently ignored duplicate
  // would serve the wrong handler forever).
  if (!descriptor.run)
    throw std::logic_error("handler '" + descriptor.name +
                           "' has no execute pipeline");
  const bool inserted =
      handlers_
          .emplace(static_cast<std::uint32_t>(op), std::move(descriptor))
          .second;
  if (!inserted)
    throw std::logic_error(
        "duplicate opcode registration: " +
        std::to_string(static_cast<std::uint32_t>(op)));
}

const HandlerDescriptor* Dispatcher::Find(protocol::Op op) const {
  const auto it = handlers_.find(static_cast<std::uint32_t>(op));
  return it == handlers_.end() ? nullptr : &it->second;
}

std::vector<protocol::Op> Dispatcher::RegisteredOps() const {
  std::vector<protocol::Op> ops;
  ops.reserve(handlers_.size());
  for (const auto& [raw, descriptor] : handlers_)
    ops.push_back(static_cast<protocol::Op>(raw));
  std::sort(ops.begin(), ops.end());
  return ops;
}

}  // namespace grd::guardian
