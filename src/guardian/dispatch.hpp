// Dispatch layer of the grdManager (see ARCHITECTURE.md).
//
// Replaces the monolithic opcode switch with a typed handler registry:
// every protocol::Op maps to a HandlerDescriptor whose pipeline runs three
// stages — decode (wire payload → typed request struct), validate (check
// the typed request against session/execution state) and execute (perform
// it, producing the response payload). Adding an RPC is one Register call
// in handlers.cpp, not a switch edit spread across the manager.
//
// The registry is populated once at manager construction and immutable
// afterwards, so lookups need no locking even under the multi-worker
// server.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "guardian/protocol.hpp"
#include "ipc/serializer.hpp"

namespace grd::guardian {

struct ExecutionContext;
class SessionRegistry;
struct ClientSession;
class Dispatcher;

// Everything a handler stage may touch. `session` is bound (and its mutex
// held) by the dispatcher iff the descriptor declares kRequired;
// `session_ref` is the owning pointer behind it, for handlers that enqueue
// asynchronous work outliving the request. `dispatcher` lets the batch
// handler re-dispatch its sub-requests.
struct HandlerContext {
  ExecutionContext& exec;
  SessionRegistry& sessions;
  ClientSession* session = nullptr;
  std::shared_ptr<ClientSession> session_ref;
  const Dispatcher* dispatcher = nullptr;
};

enum class SessionPolicy : std::uint8_t {
  kNotRequired,  // runs without a client id (registration only)
  kRequired,     // client id must resolve to a live, non-failed session
};

struct HandlerDescriptor {
  std::string name;
  SessionPolicy session = SessionPolicy::kRequired;
  // Fused decode→validate→execute pipeline (composed by Dispatcher::Register
  // for typed handlers). Never throws; errors become error responses.
  std::function<Result<ipc::Writer>(HandlerContext&, ipc::Reader&)> run;
};

class Dispatcher {
 public:
  template <typename Req>
  using DecodeFn = Result<Req> (*)(ipc::Reader&);
  template <typename Req>
  using ValidateFn = Status (*)(HandlerContext&, const Req&);
  template <typename Req>
  using ExecuteFn = Result<ipc::Writer> (*)(HandlerContext&, Req&);

  // Raw registration for handlers that manage their own pipeline.
  void Register(protocol::Op op, HandlerDescriptor descriptor);

  // Typed registration: stages are stateless function pointers; `validate`
  // may be null when decoding alone establishes validity.
  template <typename Req>
  void Register(protocol::Op op, std::string name, SessionPolicy policy,
                DecodeFn<Req> decode, ValidateFn<Req> validate,
                ExecuteFn<Req> execute) {
    HandlerDescriptor descriptor;
    descriptor.name = std::move(name);
    descriptor.session = policy;
    descriptor.run = [decode, validate, execute](
                         HandlerContext& ctx,
                         ipc::Reader& req) -> Result<ipc::Writer> {
      GRD_ASSIGN_OR_RETURN(Req decoded, decode(req));
      if (validate != nullptr) GRD_RETURN_IF_ERROR(validate(ctx, decoded));
      return execute(ctx, decoded);
    };
    Register(op, std::move(descriptor));
  }

  // Null for unregistered opcodes.
  const HandlerDescriptor* Find(protocol::Op op) const;

  std::size_t size() const noexcept { return handlers_.size(); }
  // Registered opcodes in ascending order (introspection/tests).
  std::vector<protocol::Op> RegisteredOps() const;

 private:
  std::unordered_map<std::uint32_t, HandlerDescriptor> handlers_;
};

// Populates `dispatcher` with every RPC of the wire protocol (handlers.cpp).
void RegisterBuiltinHandlers(Dispatcher& dispatcher);

// Session adoption (process mode): rebuilds client `client` from its
// shared-slot journal after the supervisor re-homed the slot onto this
// worker — partition at its exact prior bounds, live mallocs address-exact,
// modules replayed from the shared PTX arena through the sandbox cache,
// functions, streams, id counters. An armed pending-kernel mirror is left
// in place: the client's retried launch resumes it from its completed-block
// bitmap. NotFound when the slot was not promised to this worker.
Result<std::shared_ptr<ClientSession>> AdoptJournaledSession(
    ExecutionContext& exec, SessionRegistry& sessions, std::uint64_t client);

// Live migration: moves `session` (mutex held by the caller) to
// `target_device` — pauses its streams, revokes any running kernel at a
// block boundary, detaches the partition with its sub-allocator state,
// copies the partition bytes, re-admits the still-queued work on streams
// recreated on the target scheduler. Tickets stay valid across the move.
Status MigrateSession(ExecutionContext& exec, SessionRegistry& sessions,
                      const std::shared_ptr<ClientSession>& session,
                      std::uint32_t target_device);

}  // namespace grd::guardian
