#include "guardian/sandbox_cache.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace grd::guardian {

std::uint64_t HashPtxSource(const std::string& source) noexcept {
  std::uint64_t hash = 14695981039346656037ull;  // FNV offset basis
  for (const char c : source) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

ModuleTierState::Decision ModuleTierState::OnLaunch(const TierPolicy& policy) {
  Decision decision;
  // The launch ordinal (1-based): heat accrues even while tiering is
  // disabled, so flipping the policy on later promotes already-hot modules
  // on their next launch.
  const std::uint64_t ordinal =
      launches_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!policy.enabled || compiled_ == nullptr) return decision;

  const bool want1 = policy.tier1_launch_threshold != 0 &&
                     ordinal >= policy.tier1_launch_threshold;
  const bool want2 = policy.tier2_launch_threshold != 0 &&
                     ordinal >= policy.tier2_launch_threshold;
  if (!want1 && !want2) return decision;

  std::lock_guard<std::mutex> lock(mu_);
  if (fused_ == nullptr) {
    // First launch past a threshold pays the one-time fusion pass; every
    // later launch (from any session sharing this cache slot) reuses it.
    fused_ = compiled_->Fused(&superinstructions_);
    decision.promoted_tier1 = true;
    decision.superinstructions_fused = superinstructions_;
  }
  decision.program = fused_;
  decision.tier = ptxexec::ExecTier::kFused;
  if (want2) {
    decision.tier = ptxexec::ExecTier::kThreaded;
    if (!tier2_announced_) {
      tier2_announced_ = true;
      decision.promoted_tier2 = true;
    }
  }
  return decision;
}

SandboxCache::Key SandboxCache::MakeKey(
    const std::string& source,
    const ptxpatcher::PatchOptions& options) noexcept {
  Key key;
  key.content_hash = HashPtxSource(source);
  key.mode = static_cast<std::uint8_t>(options.mode);
  key.skip_statically_safe = options.skip_statically_safe;
  key.protect_indirect_branches = options.protect_indirect_branches;
  key.elision_enabled = options.elision_enabled;
  return key;
}

Result<SandboxCache::Lookup> SandboxCache::GetOrPatch(
    const std::string& source, const ptx::Module& parsed,
    const ptxpatcher::PatchOptions& options) {
  const Key key = MakeKey(source, options);

  std::shared_ptr<Slot> slot;
  std::shared_ptr<ModuleTierState> revived;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& chain = slots_[key];
    for (const auto& candidate : chain) {
      if (candidate->source == source) {
        slot = candidate;
        break;
      }
    }
    if (!slot) {
      slot = std::make_shared<Slot>();
      slot->source = source;
      // Source + ~patched module + ~compiled program (each estimated at
      // source size: patched PTX is the source plus a few fences per
      // access, and the bytecode is a constant factor of the instruction
      // count).
      slot->footprint_bytes = 3 * source.size();
      chain.push_back(slot);
      ++slot_count_;
      // Re-insert after eviction: if any session still holds this module's
      // tier state, adopt it — heat, fused program and promotion flags
      // carry over instead of restarting (and re-promoting) from zero.
      revived = ReviveTierStateLocked(key, source);
    }
    slot->last_use = ++use_tick_;
    EvictLocked();
  }

  // The global lock is released: patching one module does not block loads
  // of different modules. Same-module loads serialize on the slot mutex and
  // all but the first observe `done`.
  std::lock_guard<std::mutex> lock(slot->mu);
  if (slot->done) {
    if (!slot->status.ok()) return slot->status;  // cached failure, not a hit
    ++stats_.hits;
    return Lookup{slot->module, slot->compiled, slot->tier_state,
                  slot->patch_stats, /*patched_now=*/false};
  }

  ptxpatcher::PatchStats patch_stats;
  auto patched = [&] {
    // Miss path only: cache hits above never reach this span, so a trace
    // showing sandbox.patch is itself evidence of a cold module.
    obs::ScopedSpan patch_span("sandbox.patch", source.size());
    return ptxpatcher::PatchModule(parsed, options, &patch_stats);
  }();
  slot->done = true;
  if (!patched.ok()) {
    slot->status = patched.status();
    return slot->status;
  }
  ++stats_.patches;
  slot->patch_stats = patch_stats;
  slot->module = std::make_shared<const ptx::Module>(std::move(*patched));
  // Lower the patched kernels to bytecode while we hold the slot: the
  // compile cost rides with the patch cost, paid once per distinct source
  // and skipped entirely by every subsequent hit.
  {
    obs::ScopedSpan compile_span("sandbox.compile", source.size());
    slot->compiled = ptxexec::CompiledModule::Compile(*slot->module);
  }
  ++stats_.compiles;
  // Launch heat lives with the cache slot so tier promotion is shared by
  // every tenant of this module (and survives re-loads served from cache).
  // A state revived across eviction keeps ticking where it left off; its
  // captured compiled/fused programs came from the identical source and
  // options, so in-flight launches and this slot agree on the program.
  slot->tier_state = revived ? std::move(revived)
                             : std::make_shared<ModuleTierState>(slot->compiled);
  return Lookup{slot->module, slot->compiled, slot->tier_state,
                slot->patch_stats, /*patched_now=*/true};
}

void SandboxCache::EvictLocked() {
  while (slot_count_ > capacity_) {
    // Find the least-recently-used idle slot. A slot with use_count > 1 is
    // held by a worker (being patched or just handed out this call) and is
    // skipped — which also protects the entry acquired above.
    auto victim_it = slots_.end();
    std::size_t victim_index = 0;
    std::uint64_t oldest = 0;
    for (auto it = slots_.begin(); it != slots_.end(); ++it) {
      auto& chain = it->second;
      for (std::size_t i = 0; i < chain.size(); ++i) {
        if (chain[i].use_count() > 1) continue;
        if (victim_it == slots_.end() || chain[i]->last_use < oldest) {
          victim_it = it;
          victim_index = i;
          oldest = chain[i]->last_use;
        }
      }
    }
    if (victim_it == slots_.end()) return;  // everything in flight
    auto& chain = victim_it->second;
    // Park the victim's tier state for revival: sessions that loaded this
    // module still hold it (and may have launches in flight against it), so
    // a later re-insert of the same source must adopt it, not fork a fresh
    // heat counter alongside.
    Slot& victim = *chain[victim_index];
    if (victim.tier_state)
      evicted_tier_states_[victim_it->first].push_back(
          EvictedTierState{victim.source, victim.tier_state});
    stats_.bytes_reclaimed += victim.footprint_bytes;
    chain.erase(chain.begin() + victim_index);
    // Drop the emptied map node too, or unique-source churn would grow the
    // key map without bound while the slot count stays capped.
    if (chain.empty()) slots_.erase(victim_it);
    ++stats_.evictions;
    --slot_count_;
  }
}

std::shared_ptr<ModuleTierState> SandboxCache::ReviveTierStateLocked(
    const Key& key, const std::string& source) {
  std::shared_ptr<ModuleTierState> revived;
  auto it = evicted_tier_states_.find(key);
  if (it != evicted_tier_states_.end()) {
    auto& chain = it->second;
    for (std::size_t i = 0; i < chain.size(); ++i) {
      if (chain[i].source != source) continue;
      revived = chain[i].tier_state.lock();
      // Claimed or expired, either way the parked entry is spent.
      chain.erase(chain.begin() + i);
      break;
    }
    if (chain.empty()) evicted_tier_states_.erase(it);
  }
  // Prune expired strays so the parking map tracks live holders only, not
  // the history of every module ever evicted.
  for (auto map_it = evicted_tier_states_.begin();
       map_it != evicted_tier_states_.end();) {
    auto& chain = map_it->second;
    chain.erase(std::remove_if(chain.begin(), chain.end(),
                               [](const EvictedTierState& entry) {
                                 return entry.tier_state.expired();
                               }),
                chain.end());
    map_it = chain.empty() ? evicted_tier_states_.erase(map_it)
                           : std::next(map_it);
  }
  return revived;
}

std::size_t SandboxCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slot_count_;
}

}  // namespace grd::guardian
