// Content-addressed cache of sandboxed PTX modules and their compiled
// programs.
//
// The paper patches every registered module per client (§4.2.3). In a
// multi-tenant deployment N clients typically load the *same* accelerated
// library, so the patch cost is paid N times for identical input. The cache
// keys on (FNV-1a hash of the PTX source) × (bounds-check mode and patch
// flags) and stores the patched module behind a shared_ptr, so N tenants
// loading the same library patch it once and share the immutable result.
//
// Since the bytecode engine, each slot also stores the patched module
// lowered through ptxexec::CompileKernel (program.hpp): a cache hit skips
// parse-output patching, verification replay AND compilation, so a repeat
// load costs one hash plus one source compare — which is what makes the
// cached launch path's cost independent of kernel size.
//
// Concurrency: a global mutex guards the slot map only; the patch itself
// runs under a per-slot mutex, so two workers patching *different* modules
// proceed in parallel while two workers loading the *same* module serialize
// and the second gets the cached result. Hash collisions are handled by
// verifying the full source text, never by trusting the hash.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "ptx/ast.hpp"
#include "ptxexec/program.hpp"
#include "ptxexec/tier.hpp"
#include "ptxpatcher/patcher.hpp"

namespace grd::guardian {

// 64-bit FNV-1a over the module source — the cache's content address.
std::uint64_t HashPtxSource(const std::string& source) noexcept;

// Tier-promotion policy, copied from ManagerOptions at launch time so the
// cache layer stays policy-free. A module's Nth launch (N >= threshold) runs
// at that tier; a 0 threshold disables the tier.
struct TierPolicy {
  bool enabled = true;
  std::uint64_t tier1_launch_threshold = 3;
  std::uint64_t tier2_launch_threshold = 16;
};

// Launch heat and tiered-program state of one cached module. Lives in the
// module's cache slot and is shared by every tenant whose PTX lands there —
// heat is content-addressed exactly like the patch itself, so N tenants
// running the same library promote it together and a hot cache hit starts
// hot. The fused program is built once, on the first launch that crosses the
// tier-1 threshold, and reused by every later launch (and tenant).
class ModuleTierState {
 public:
  explicit ModuleTierState(
      std::shared_ptr<const ptxexec::CompiledModule> compiled)
      : compiled_(std::move(compiled)) {}

  struct Decision {
    ptxexec::ExecTier tier = ptxexec::ExecTier::kCompiled;
    // The program to run: the shared fused module for tiers >= 1, null for
    // tier 0 (callers keep using their compiled module).
    std::shared_ptr<const ptxexec::CompiledModule> program;
    // Set on the single call that performed each promotion, so the manager
    // can count promotions (and fused superinstructions) exactly once.
    bool promoted_tier1 = false;
    bool promoted_tier2 = false;
    std::uint64_t superinstructions_fused = 0;
  };

  // Records one launch and decides its tier. Thread-safe; the fusion pass
  // runs at most once, under the internal mutex.
  Decision OnLaunch(const TierPolicy& policy);

  std::uint64_t launches() const noexcept {
    return launches_.load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<const ptxexec::CompiledModule> compiled_;
  std::atomic<std::uint64_t> launches_{0};
  std::mutex mu_;
  std::shared_ptr<const ptxexec::CompiledModule> fused_;  // built lazily
  std::uint64_t superinstructions_ = 0;
  bool tier2_announced_ = false;
};

class SandboxCache {
 public:
  // Entry cap: the cache is bounded (LRU eviction) so a tenant looping
  // unique PTX sources cannot grow the trusted manager without bound.
  // Sessions keep their module shared_ptr, so evicting an entry never
  // invalidates an already-loaded module — a re-load just re-patches.
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit SandboxCache(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  // Successful-outcome counters, mirrored 1:1 by the manager's
  // ptx_modules_patched / ptx_cache_hits stats: `patches` counts modules
  // successfully patched, `hits` counts loads served a cached module.
  // Failed patches (fresh or replayed) count in neither — the error itself
  // reaches the caller.
  struct Stats {
    std::atomic<std::uint64_t> patches{0};
    std::atomic<std::uint64_t> hits{0};
    // Modules lowered through ptxexec::CompileKernel (once per fresh patch);
    // a cached load reuses the stored program and does not bump this — the
    // compiled-program cache tests key off exactly that.
    std::atomic<std::uint64_t> compiles{0};
    std::atomic<std::uint64_t> evictions{0};
    // Approximate bytes LRU eviction reclaimed (source text retained for
    // collision-proofing plus the patched module, estimated at source
    // size); mirrored into ManagerStats for operators.
    std::atomic<std::uint64_t> bytes_reclaimed{0};
  };

  struct Lookup {
    std::shared_ptr<const ptx::Module> module;
    // The module's kernels lowered to bytecode, compiled together with the
    // patch and cached alongside it; launches run these directly.
    std::shared_ptr<const ptxexec::CompiledModule> compiled;
    // Shared launch-heat / tiered-program state for this cached module.
    // Content-addressed like the module itself: every session loading the
    // same source shares one heat counter and one fused program.
    std::shared_ptr<ModuleTierState> tier_state;
    // Aggregate patcher stats for the module, cached with it so the manager
    // can mirror the guard-elision counters on the load that patched
    // (patched_now) without re-running the patcher.
    ptxpatcher::PatchStats patch_stats;
    bool patched_now = false;  // false = served from cache
  };

  // Returns the sandboxed module for `source`, patching `parsed` on first
  // use. Patch failures are cached too: identical input yields an identical
  // error without re-running the patcher.
  Result<Lookup> GetOrPatch(const std::string& source,
                            const ptx::Module& parsed,
                            const ptxpatcher::PatchOptions& options);

  const Stats& stats() const noexcept { return stats_; }

  // Distinct cached entries (successful and failed).
  std::size_t size() const;

 private:
  struct Key {
    std::uint64_t content_hash = 0;
    std::uint8_t mode = 0;
    bool skip_statically_safe = false;
    bool protect_indirect_branches = false;
    bool elision_enabled = false;

    bool operator==(const Key& other) const noexcept {
      return content_hash == other.content_hash && mode == other.mode &&
             skip_statically_safe == other.skip_statically_safe &&
             protect_indirect_branches == other.protect_indirect_branches &&
             elision_enabled == other.elision_enabled;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept {
      return static_cast<std::size_t>(
          key.content_hash ^ (static_cast<std::uint64_t>(key.mode) << 56) ^
          (static_cast<std::uint64_t>(key.skip_statically_safe) << 55) ^
          (static_cast<std::uint64_t>(key.protect_indirect_branches) << 54) ^
          (static_cast<std::uint64_t>(key.elision_enabled) << 53));
    }
  };
  struct Slot {
    std::mutex mu;
    std::string source;  // full text: collision-proofs the content hash
    bool done = false;
    Status status{};  // non-OK when the cached patch failed
    std::shared_ptr<const ptx::Module> module;
    std::shared_ptr<const ptxexec::CompiledModule> compiled;
    std::shared_ptr<ModuleTierState> tier_state;
    ptxpatcher::PatchStats patch_stats;
    std::uint64_t last_use = 0;  // LRU tick, guarded by the cache's mu_
    // Estimated resident footprint charged to bytes_reclaimed on eviction:
    // the retained source plus the patched module plus the compiled
    // program (each approximated by the source size).
    std::uint64_t footprint_bytes = 0;
  };

  // Launch heat of evicted slots whose tier state still has live holders
  // (sessions keep their module/tier-state shared_ptrs across eviction, so
  // an in-flight launch may still be deciding tiers against it). Keyed like
  // slots_ and matched by full source: a re-inserted module adopts the
  // surviving state instead of a fresh one, so its heat is not split
  // between old holders and new loads and tier promotion stays
  // exactly-once. weak_ptr: once the last holder drops, the heat
  // legitimately dies with it and the entry is pruned on the next eviction.
  struct EvictedTierState {
    std::string source;
    std::weak_ptr<ModuleTierState> tier_state;
  };

  static Key MakeKey(const std::string& source,
                     const ptxpatcher::PatchOptions& options) noexcept;

  // Drops least-recently-used idle entries until within capacity. Requires
  // mu_ held. Slots referenced outside the map (a worker mid-patch) are
  // never evicted — their use_count keeps them safe.
  void EvictLocked();

  // Claims (and removes) the surviving tier state of a previously evicted
  // slot with this exact key and source, if any holder kept it alive.
  // Requires mu_ held.
  std::shared_ptr<ModuleTierState> ReviveTierStateLocked(
      const Key& key, const std::string& source);

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::uint64_t use_tick_ = 0;     // guarded by mu_
  std::size_t slot_count_ = 0;     // guarded by mu_; kept in step with slots_
  // Hash collisions chain into the vector; entries are matched by full
  // source comparison.
  std::unordered_map<Key, std::vector<std::shared_ptr<Slot>>, KeyHash> slots_;
  std::unordered_map<Key, std::vector<EvictedTierState>, KeyHash>
      evicted_tier_states_;  // guarded by mu_
  Stats stats_;
};

}  // namespace grd::guardian
