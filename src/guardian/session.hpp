// Session layer of the grdManager (see ARCHITECTURE.md).
//
// One ClientSession per registered tenant, owning everything the paper keeps
// per-application: the partition view, loaded modules, the pointerToSymbol
// map (§4.2.3), streams and events. Streams are real GpuScheduler work
// queues and events carry completion state, so the stream/event RPCs have
// CUDA semantics instead of being decorative. Each session carries its own
// mutex — the dispatch layer holds it for the duration of a request, so a
// session's state is only ever touched by one worker at a time while
// different sessions proceed concurrently. Asynchronous kernel bodies run
// on scheduler executors *without* the session mutex; they only touch the
// atomic `failed` flag, captured-by-value launch state, and shared_ptr-held
// modules, never the maps.
//
// The SessionRegistry is the only cross-session structure: a shared_mutex
// protected id → session map. Lookups (every request) take the shared lock;
// register/disconnect take the exclusive one. Sessions are handed out as
// shared_ptr so a disconnect racing with an in-flight request on another
// worker never frees state under it.
//
// Process mode (shared_state.hpp): the registry binds to the pool's
// SharedServingState. Client ids then come from the shared allocator (unique
// across every forked worker), each Create/Erase publishes/retires a shared
// session slot stamped with this worker's index, and a Find miss consults
// the shared slots so a session orphaned by a crashed worker fails with a
// clean "worker crashed" status instead of "unknown client". The heavy
// per-session state (modules, compiled programs, streams) stays
// worker-private — sticky channel claims guarantee a session's requests
// only ever reach the worker that owns it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "guardian/bounds_table.hpp"
#include "guardian/gpu_scheduler.hpp"
#include "guardian/sandbox_cache.hpp"
#include "ptx/ast.hpp"
#include "ptxexec/program.hpp"

namespace grd::guardian {

struct ClientModule {
  ptx::Module native;
  // Owned by the SandboxCache and shared across tenants loading identical
  // PTX; null when protection is disabled.
  std::shared_ptr<const ptx::Module> sandboxed;
  // Bytecode programs (ptxexec::CompileKernel) the launch path actually
  // runs: `sandboxed_compiled` comes from the sandbox cache with the patch;
  // `native_compiled` is lowered at load time and only when a native
  // (unfenced) launch is reachable — protection off or the standalone fast
  // path armed.
  std::shared_ptr<const ptxexec::CompiledModule> sandboxed_compiled;
  std::shared_ptr<const ptxexec::CompiledModule> native_compiled;
  // Launch-heat / tiered-program state, owned by the module's SandboxCache
  // slot and shared across tenants: a hot cached module starts hot here too.
  // Null when protection is disabled (no cache slot → no tiering).
  std::shared_ptr<ModuleTierState> tier_state;
};

struct FunctionEntry {
  std::uint64_t module = 0;
  std::string kernel;
};

struct ClientSession {
  ClientSession(ClientId id_in, std::shared_ptr<GpuStream> default_stream)
      : id(id_in) {
    streams[0] = std::move(default_stream);
  }

  const ClientId id;
  // Serializes request handling for this session (held by the dispatcher).
  std::mutex mu;

  PartitionBounds partition;
  // Atomic because asynchronous kernel bodies set it from executor threads
  // while the dispatcher reads it under `mu`.
  std::atomic<bool> failed{false};
  // Set by Disconnect under `mu`: a worker that resolved this session
  // before the disconnect landed must not touch the released partition.
  bool disconnected = false;
  // kSetPriority session scope: class new streams inherit (existing streams
  // are retagged by the handler at the same time). Atomic because the
  // ManagerServer's session-priority sweep reads it without `mu` to order
  // ring pumping by tenant class.
  std::atomic<protocol::PriorityClass> default_priority{
      protocol::PriorityClass::kNormal};
  // Device this session is placed on (multi-device fleet). Atomic because
  // asynchronous kernel bodies resolve their device per invocation while
  // live migration retargets it under `mu` — a checkpointed kernel
  // re-admitted after migration must run against the target device.
  std::atomic<std::uint32_t> device_id{0};
  // Set by adoption when the journal carries an armed in-flight-kernel
  // mirror: the next launch matching it resumes from the mirrored bitmap
  // instead of starting fresh (the client retries the launch it saw fail
  // when its worker died). Cleared by that launch either way (under `mu`).
  bool resume_pending = false;
  std::uint64_t next_module = 1;
  std::uint64_t next_function = 1;
  std::uint64_t next_stream = 1;
  std::uint64_t next_event = 1;
  std::unordered_map<std::uint64_t, ClientModule> modules;
  // The paper's pointerToSymbol map: client launch handle -> sandboxed
  // kernel symbol.
  std::unordered_map<std::uint64_t, FunctionEntry> pointer_to_symbol;
  // id 0 is the default stream, created at registration.
  std::unordered_map<std::uint64_t, std::shared_ptr<GpuStream>> streams;
  std::unordered_map<std::uint64_t, std::shared_ptr<GpuEvent>> events;
};

class SharedServingState;

class SessionRegistry {
 public:
  // Process mode: allocate ids/slots from the pool's shared registry on
  // behalf of worker `worker_index`. Must be called before any session
  // exists (worker startup, pre-serving).
  void BindShared(SharedServingState* shared, std::uint32_t worker_index);

  // Creates a session for a freshly assigned client id covering `partition`
  // on `device`, with `default_stream` installed as stream 0. Fails only in
  // process mode, when the shared registry is out of slots.
  Result<std::shared_ptr<ClientSession>> Create(
      PartitionBounds partition, std::shared_ptr<GpuStream> default_stream,
      std::uint32_t device = 0);

  // Adoption path: re-installs a session whose shared slot (and client id)
  // already exists — the local map entry died with a crashed worker and is
  // being rebuilt from the slot's journal. Never allocates a shared slot.
  std::shared_ptr<ClientSession> Restore(
      ClientId id, PartitionBounds partition,
      std::shared_ptr<GpuStream> default_stream, std::uint32_t device);

  // NotFound for ids that never registered or already disconnected;
  // Unavailable for sessions lost to a crashed worker (process mode).
  Result<std::shared_ptr<ClientSession>> Find(ClientId id) const;

  Status Erase(ClientId id);

  // Mirrors a session-scope kSetPriority into the shared slot (no-op in
  // threaded mode) so the parent supervisor and serving policies in other
  // processes see the tenant's current class.
  void PublishPriority(ClientId id, protocol::PriorityClass priority);

  // Mirrors a live migration's device change into the shared slot (no-op in
  // threaded mode) so adoption after a later crash lands on the right device.
  void PublishDevice(ClientId id, std::uint32_t device);

  // Mirrors a GrowPartition into the shared slot (no-op in threaded mode) so
  // adoption rebuilds the partition at its grown size.
  void PublishPartition(ClientId id, PartitionBounds bounds);

  std::size_t size() const;

  // Process-mode bindings (null / 0 in threaded mode); used by the adoption
  // path to reach the journal of a slot this worker now owns.
  SharedServingState* shared() const noexcept { return shared_; }
  std::uint32_t worker_index() const noexcept { return worker_index_; }

 private:
  mutable std::shared_mutex mu_;
  ClientId next_id_ = 1;
  std::unordered_map<ClientId, std::shared_ptr<ClientSession>> sessions_;
  SharedServingState* shared_ = nullptr;  // null = threaded mode
  std::uint32_t worker_index_ = 0;
};

}  // namespace grd::guardian
