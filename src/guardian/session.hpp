// Session layer of the grdManager (see ARCHITECTURE.md).
//
// One ClientSession per registered tenant, owning everything the paper keeps
// per-application: the partition view, loaded modules, the pointerToSymbol
// map (§4.2.3), streams and events. Each session carries its own mutex —
// the dispatch layer holds it for the duration of a request, so a session's
// state is only ever touched by one worker at a time while different
// sessions proceed concurrently.
//
// The SessionRegistry is the only cross-session structure: a shared_mutex
// protected id → session map. Lookups (every request) take the shared lock;
// register/disconnect take the exclusive one. Sessions are handed out as
// shared_ptr so a disconnect racing with an in-flight request on another
// worker never frees state under it.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "guardian/bounds_table.hpp"
#include "ptx/ast.hpp"

namespace grd::guardian {

struct ClientModule {
  ptx::Module native;
  // Owned by the SandboxCache and shared across tenants loading identical
  // PTX; null when protection is disabled.
  std::shared_ptr<const ptx::Module> sandboxed;
};

struct FunctionEntry {
  std::uint64_t module = 0;
  std::string kernel;
};

struct ClientSession {
  explicit ClientSession(ClientId id_in) : id(id_in) {
    streams[0] = false;  // default stream
  }

  const ClientId id;
  // Serializes request handling for this session (held by the dispatcher).
  std::mutex mu;

  PartitionBounds partition;
  bool failed = false;
  // Set by Disconnect under `mu`: a worker that resolved this session
  // before the disconnect landed must not touch the released partition.
  bool disconnected = false;
  std::uint64_t next_module = 1;
  std::uint64_t next_function = 1;
  std::uint64_t next_stream = 1;
  std::uint64_t next_event = 1;
  std::unordered_map<std::uint64_t, ClientModule> modules;
  // The paper's pointerToSymbol map: client launch handle -> sandboxed
  // kernel symbol.
  std::unordered_map<std::uint64_t, FunctionEntry> pointer_to_symbol;
  std::unordered_map<std::uint64_t, bool> streams;
  std::unordered_map<std::uint64_t, std::uint32_t> events;
};

class SessionRegistry {
 public:
  // Creates a session for a freshly assigned client id covering `partition`.
  std::shared_ptr<ClientSession> Create(PartitionBounds partition);

  // NotFound for ids that never registered or already disconnected.
  Result<std::shared_ptr<ClientSession>> Find(ClientId id) const;

  Status Erase(ClientId id);

  std::size_t size() const;

 private:
  mutable std::shared_mutex mu_;
  ClientId next_id_ = 1;
  std::unordered_map<ClientId, std::shared_ptr<ClientSession>> sessions_;
};

}  // namespace grd::guardian
