// Preemption engine of the grdManager execution layer (see ARCHITECTURE.md).
//
// TReM-style mid-kernel revocation: instead of the blunt instruction-budget
// kill, a running kernel can be revoked at a safe point (a block boundary),
// its completed-block bitmap checkpointed, and the work item requeued at the
// head of its stream — the tenant is never failed, it just resumes later
// without replaying finished blocks.
//
// The engine is the *policy* half of preemption; the GpuScheduler is the
// mechanism. Under the scheduler lock the scan consults the engine to
//  - compute a queued kernel's *effective* priority class (its stream's
//    base class boosted one class per aging quantum waited, never demoted),
//    which is what lets a starved full-device kernel eventually outrank the
//    small-kernel traffic keeping the device busy;
//  - decide whether a waiting kernel may revoke a running one (strictly
//    more-urgent *base* class — an aged kernel gains admission priority,
//    never the right to revoke a peer);
//  - record the preemption/resume/checkpoint/wait-time telemetry into
//    ManagerStats.
#pragma once

#include <atomic>
#include <cstdint>

#include "guardian/protocol.hpp"
#include "obs/metrics.hpp"

namespace grd::guardian {

struct ManagerStats;

using protocol::IsValidPriorityClass;
using protocol::kPriorityClassCount;
using protocol::PriorityClass;
using protocol::PriorityClassName;

struct PreemptionConfig {
  bool enabled = true;
  // Instructions between cooperative preemption polls inside a block (the
  // interpreter's ExecControls::preempt_check_interval).
  std::uint64_t preempt_check_interval = 5'000;
  // Anti-starvation aging: a blocked stream head's effective class is
  // boosted one class per quantum spent as the admissible head (time queued
  // behind the stream's own earlier work does not count). 0 disables aging.
  std::uint64_t aging_quantum_ns = 250'000'000;
};

// Lock-free log2-bucketed latency histogram (one per priority class in
// ManagerStats): bucket i counts waits in [2^i, 2^(i+1)) microseconds,
// bucket 0 additionally holds sub-microsecond waits. Now the shared
// obs::Log2Histogram (identical layout and semantics), so the metrics
// registry can render it alongside every other cell.
using WaitHistogram = obs::Log2Histogram;

class PreemptionEngine {
 public:
  // `stats` may be null (standalone scheduler use in tests): telemetry is
  // skipped, policy still applies.
  PreemptionEngine(const PreemptionConfig& config, ManagerStats* stats)
      : config_(config), stats_(stats) {}

  bool enabled() const noexcept { return config_.enabled; }
  std::uint64_t check_interval() const noexcept {
    return config_.preempt_check_interval;
  }

  // Aged class of a queued op: base boosted one class per aging quantum
  // waited, floored at kRealtime. Returned as int for direct comparison.
  // Aging affects *admission* order and reservation only — see MayPreempt.
  int EffectiveClass(PriorityClass base, std::uint64_t waited_ns) const;

  // May a waiter revoke a running kernel? The waiter's *base* class must be
  // strictly more urgent than the class at which the victim was *admitted*
  // (its aged effective class at grant time), and the engine enabled.
  // Asymmetry is deliberate: an aging boost never grants revocation rights
  // (two aged peers would otherwise revoke each other at every block
  // boundary forever), but it does protect the promoted kernel once it is
  // running — a starved batch kernel that finally won the device is not
  // immediately revoked by the steady normal-priority traffic it outlived.
  bool MayPreempt(PriorityClass waiter_base, int victim_admitted_class) const;

  // Telemetry (relaxed atomics into ManagerStats; all no-ops when null).
  void RecordPreemption(std::uint64_t checkpoint_bytes) const;
  void RecordResume() const;
  void RecordKernelStart(PriorityClass cls, std::uint64_t waited_ns) const;
  void RecordBudgetRequeue() const;

 private:
  const PreemptionConfig config_;
  ManagerStats* const stats_;
};

}  // namespace grd::guardian
