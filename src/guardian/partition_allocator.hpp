// Guardian's GPU memory partitioning (paper §4.2.1).
//
// At startup the allocator reserves the whole device. Each application gets
// one contiguous partition, rounded up to a power of two and aligned to its
// own size so that the fencing mask is simply `size - 1` (§4.4 "aligns the
// partitions in power-of-two sizes"). cudaMalloc/cudaFree from each client
// are served by a first-fit sub-allocator inside its partition, mirroring
// the PyTorch/TensorFlow power-of-two caching-allocator behaviour the paper
// leans on.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/status.hpp"
#include "guardian/bounds_table.hpp"
#include "simcuda/gpu.hpp"

namespace grd::guardian {

class PartitionAllocator {
 public:
  // Manages [0, device_bytes). The first 64 KiB are reserved so no
  // partition starts at device address 0 (keeps nullptr distinguishable).
  // `growth_headroom` aligns each partition to size << headroom so that up
  // to `headroom` in-place doublings keep the power-of-two mask invariant
  // (0 = paper baseline: exact size alignment, no growth possible).
  explicit PartitionAllocator(std::uint64_t device_bytes,
                              int growth_headroom = 1);

  // Creates a partition of at least `requested_bytes` (rounded to the next
  // power of two, aligned to its size).
  Result<PartitionBounds> CreatePartition(std::uint64_t requested_bytes);
  Status ReleasePartition(std::uint64_t base);

  // Session adoption / migration: re-creates a partition at its journaled
  // bounds so client-held device pointers stay valid. `size` must be the
  // power-of-two size the partition originally had; the exact range must be
  // free on this device.
  Result<PartitionBounds> CreatePartitionAt(std::uint64_t base,
                                            std::uint64_t size);

  // Progressive allocation (the §4.4 future-work extension): doubles the
  // partition in place. Requires (a) the partition base to be aligned to
  // the doubled size — so the power-of-two mask invariant survives — and
  // (b) the adjacent range [base+size, base+2*size) to be free.
  Result<PartitionBounds> GrowPartition(std::uint64_t base);

  // cudaMalloc / cudaFree inside an existing partition.
  Result<std::uint64_t> AllocateIn(std::uint64_t partition_base,
                                   std::uint64_t size);
  Status FreeIn(std::uint64_t partition_base, std::uint64_t addr);

  // Journal replay: re-claims a cudaMalloc block at its exact prior device
  // address inside a partition rebuilt by CreatePartitionAt.
  Status AllocateExactIn(std::uint64_t partition_base, std::uint64_t addr,
                         std::uint64_t size);

  // Live migration: a partition lifted out of one device's allocator with
  // its sub-allocator state (the live cudaMalloc map) intact, to be
  // re-attached at the same bounds on the target device's allocator.
  struct Detached {
    PartitionBounds bounds;
    std::unique_ptr<simcuda::DeviceAllocator> suballocator;
  };
  Result<Detached> Detach(std::uint64_t base);
  // Consumes `partition` only on success, so a failed attach (range occupied
  // on this device) leaves it intact for re-attaching elsewhere.
  Status Attach(Detached& partition);
  // Whether an Attach/CreatePartitionAt of [base, base+size) would succeed
  // right now. Lets migration check the target BEFORE freezing the session's
  // streams, so an infeasible move costs nothing.
  bool CanAttachAt(std::uint64_t base, std::uint64_t size) const noexcept;

  std::uint64_t device_bytes() const noexcept { return device_bytes_; }
  std::size_t partition_count() const noexcept { return partitions_.size(); }

 private:
  struct Partition {
    PartitionBounds bounds;
    std::unique_ptr<simcuda::DeviceAllocator> suballocator;
  };

  std::uint64_t device_bytes_;
  int growth_headroom_;
  simcuda::DeviceAllocator carver_;  // carves size-aligned partitions
  std::unordered_map<std::uint64_t, Partition> partitions_;  // by base
};

}  // namespace grd::guardian
