// Wire protocol between grdLib (client) and grdManager (server).
//
// Every CUDA runtime/driver call grdLib intercepts becomes one
// request/response exchange (paper §4.1: "the intercepted CUDA calls are
// forwarded to another process, the grdManager, which is the only entity
// with GPU access"). Requests carry the client id assigned at registration;
// the manager validates it against the channel's owner.
#pragma once

#include <cstdint>

#include "common/status.hpp"
#include "ipc/serializer.hpp"
#include "obs/trace.hpp"

namespace grd::guardian::protocol {

enum class Op : std::uint32_t {
  kRegisterClient = 1,
  kDisconnect,
  kMalloc,
  kFree,
  kMemcpyH2D,
  kMemcpyD2H,
  kMemcpyD2D,
  kMemset,
  kLaunchKernel,
  kStreamCreate,
  kStreamDestroy,
  kStreamSynchronize,
  kStreamIsCapturing,
  kStreamGetCaptureInfo,
  kEventCreate,
  kEventDestroy,
  kEventRecord,
  kDeviceSynchronize,
  kGetExportTable,
  kModuleLoadData,
  kModuleGetFunction,
  kGetDeviceSpec,
  kGrowPartition,
  // Stream-aware execution engine (appended to keep earlier opcodes stable).
  kMemcpyH2DAsync,
  kStreamWaitEvent,
  kEventSynchronize,
  // Envelope carrying several async sub-requests in one ring message
  // (grdLib coalesces adjacent launch/async-memcpy calls). Sub-requests
  // execute in order; execution stops at the first failure. The response
  // payload leads with a u8 form: 1 = compacted (all sub-ops succeeded,
  // only the executed count follows), 0 = full (count + one encoded
  // response per executed sub-op).
  kBatch,
  // Preemption engine: tag a session (scope 0) or one stream (scope 1) with
  // a PriorityClass. Payload: u8 scope, u64 stream id, u8 priority.
  kSetPriority,
  // Multi-device fleet: re-attach to a session that survived its worker via
  // the shared-region journal (adoption). Payload: u64 prior client id.
  // Response: u64 client id, u64 partition base, u64 size, u32 device id.
  // NotFound when no adoptable journal exists — the client falls back to a
  // full re-register + module replay.
  kResumeSession,
};

// Priority classes of the preemption engine, least to most preemptible.
// Wire-visible (the u8 priority field of kSetPriority); the scheduler's
// aging policy may *boost* an op's effective class, never demote it.
enum class PriorityClass : std::uint8_t {
  kRealtime = 0,
  kNormal = 1,
  kBatch = 2,
};

inline constexpr int kPriorityClassCount = 3;

inline bool IsValidPriorityClass(std::uint8_t raw) {
  return raw < kPriorityClassCount;
}

inline const char* PriorityClassName(PriorityClass cls) {
  switch (cls) {
    case PriorityClass::kRealtime: return "realtime";
    case PriorityClass::kNormal: return "normal";
    case PriorityClass::kBatch: return "batch";
  }
  return "?";
}

// Upper bound on sub-requests per kBatch envelope, shared by the grdLib
// buffer cap and the dispatcher's decode guard so a client-side setting can
// never produce an envelope the manager rejects wholesale.
inline constexpr std::uint32_t kMaxBatchOps = 64;

// Stable wire-op names (trace span labels, diagnostics).
inline const char* OpName(Op op) {
  switch (op) {
    case Op::kRegisterClient: return "RegisterClient";
    case Op::kDisconnect: return "Disconnect";
    case Op::kMalloc: return "Malloc";
    case Op::kFree: return "Free";
    case Op::kMemcpyH2D: return "MemcpyH2D";
    case Op::kMemcpyD2H: return "MemcpyD2H";
    case Op::kMemcpyD2D: return "MemcpyD2D";
    case Op::kMemset: return "Memset";
    case Op::kLaunchKernel: return "LaunchKernel";
    case Op::kStreamCreate: return "StreamCreate";
    case Op::kStreamDestroy: return "StreamDestroy";
    case Op::kStreamSynchronize: return "StreamSynchronize";
    case Op::kStreamIsCapturing: return "StreamIsCapturing";
    case Op::kStreamGetCaptureInfo: return "StreamGetCaptureInfo";
    case Op::kEventCreate: return "EventCreate";
    case Op::kEventDestroy: return "EventDestroy";
    case Op::kEventRecord: return "EventRecord";
    case Op::kDeviceSynchronize: return "DeviceSynchronize";
    case Op::kGetExportTable: return "GetExportTable";
    case Op::kModuleLoadData: return "ModuleLoadData";
    case Op::kModuleGetFunction: return "ModuleGetFunction";
    case Op::kGetDeviceSpec: return "GetDeviceSpec";
    case Op::kGrowPartition: return "GrowPartition";
    case Op::kMemcpyH2DAsync: return "MemcpyH2DAsync";
    case Op::kStreamWaitEvent: return "StreamWaitEvent";
    case Op::kEventSynchronize: return "EventSynchronize";
    case Op::kBatch: return "Batch";
    case Op::kSetPriority: return "SetPriority";
    case Op::kResumeSession: return "ResumeSession";
  }
  return "UnknownOp";
}

struct RequestHeader {
  Op op{};
  std::uint64_t client = 0;
  // End-to-end tracing (obs/trace.hpp): the client-side span this request
  // belongs to. Zero when tracing is disabled; the manager treats a zero
  // trace_id as "untraced".
  obs::TraceContext trace;
};

// Stamps the ambient trace context into the header (allocating a fresh
// trace id for a context-less thread) when tracing is enabled; writes
// zeros otherwise. Returns the stamped context so grdLib can record the
// matching client-side span.
inline obs::TraceContext WriteHeader(ipc::Writer& writer, Op op,
                                     std::uint64_t client) {
  obs::TraceContext ctx;
  if (obs::TraceRecorder::Instance().enabled()) {
    ctx = obs::CurrentContext();
    if (!ctx.valid()) ctx.trace_id = obs::NewTraceId();
    ctx.span_id = obs::NewSpanId();
  }
  writer.Put<std::uint32_t>(static_cast<std::uint32_t>(op));
  writer.Put<std::uint64_t>(client);
  writer.Put<std::uint64_t>(ctx.trace_id);
  writer.Put<std::uint64_t>(ctx.span_id);
  return ctx;
}

inline Result<RequestHeader> ReadHeader(ipc::Reader& reader) {
  RequestHeader header;
  GRD_ASSIGN_OR_RETURN(std::uint32_t op, reader.Get<std::uint32_t>());
  header.op = static_cast<Op>(op);
  GRD_ASSIGN_OR_RETURN(header.client, reader.Get<std::uint64_t>());
  GRD_ASSIGN_OR_RETURN(header.trace.trace_id, reader.Get<std::uint64_t>());
  GRD_ASSIGN_OR_RETURN(header.trace.span_id, reader.Get<std::uint64_t>());
  return header;
}

// Responses: u8 ok flag; on failure a status code + message follow, on
// success the op-specific payload.
inline ipc::Bytes EncodeError(const Status& status) {
  ipc::Writer writer;
  writer.Put<std::uint8_t>(0);
  writer.Put<std::uint8_t>(static_cast<std::uint8_t>(status.code()));
  writer.PutString(status.message());
  return std::move(writer).Take();
}

inline ipc::Bytes EncodeOk(ipc::Writer payload = {}) {
  ipc::Writer writer;
  writer.Put<std::uint8_t>(1);
  ipc::Bytes body = std::move(payload).Take();
  for (const std::uint8_t b : body) writer.Put<std::uint8_t>(b);
  return std::move(writer).Take();
}

// Returns a Reader positioned at the payload, or the decoded error status.
inline Result<ipc::Reader> DecodeResponse(const ipc::Bytes& response) {
  ipc::Reader reader(response);
  GRD_ASSIGN_OR_RETURN(std::uint8_t ok, reader.Get<std::uint8_t>());
  if (ok != 0) return reader;
  GRD_ASSIGN_OR_RETURN(std::uint8_t code, reader.Get<std::uint8_t>());
  GRD_ASSIGN_OR_RETURN(std::string message, reader.GetString());
  return Status(static_cast<StatusCode>(code), std::move(message));
}

}  // namespace grd::guardian::protocol
