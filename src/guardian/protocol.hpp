// Wire protocol between grdLib (client) and grdManager (server).
//
// Every CUDA runtime/driver call grdLib intercepts becomes one
// request/response exchange (paper §4.1: "the intercepted CUDA calls are
// forwarded to another process, the grdManager, which is the only entity
// with GPU access"). Requests carry the client id assigned at registration;
// the manager validates it against the channel's owner.
#pragma once

#include <cstdint>

#include "common/status.hpp"
#include "ipc/serializer.hpp"

namespace grd::guardian::protocol {

enum class Op : std::uint32_t {
  kRegisterClient = 1,
  kDisconnect,
  kMalloc,
  kFree,
  kMemcpyH2D,
  kMemcpyD2H,
  kMemcpyD2D,
  kMemset,
  kLaunchKernel,
  kStreamCreate,
  kStreamDestroy,
  kStreamSynchronize,
  kStreamIsCapturing,
  kStreamGetCaptureInfo,
  kEventCreate,
  kEventDestroy,
  kEventRecord,
  kDeviceSynchronize,
  kGetExportTable,
  kModuleLoadData,
  kModuleGetFunction,
  kGetDeviceSpec,
  kGrowPartition,
  // Stream-aware execution engine (appended to keep earlier opcodes stable).
  kMemcpyH2DAsync,
  kStreamWaitEvent,
  kEventSynchronize,
  // Envelope carrying several async sub-requests in one ring message
  // (grdLib coalesces adjacent launch/async-memcpy calls). Sub-requests
  // execute in order; execution stops at the first failure. The response
  // payload leads with a u8 form: 1 = compacted (all sub-ops succeeded,
  // only the executed count follows), 0 = full (count + one encoded
  // response per executed sub-op).
  kBatch,
  // Preemption engine: tag a session (scope 0) or one stream (scope 1) with
  // a PriorityClass. Payload: u8 scope, u64 stream id, u8 priority.
  kSetPriority,
};

// Priority classes of the preemption engine, least to most preemptible.
// Wire-visible (the u8 priority field of kSetPriority); the scheduler's
// aging policy may *boost* an op's effective class, never demote it.
enum class PriorityClass : std::uint8_t {
  kRealtime = 0,
  kNormal = 1,
  kBatch = 2,
};

inline constexpr int kPriorityClassCount = 3;

inline bool IsValidPriorityClass(std::uint8_t raw) {
  return raw < kPriorityClassCount;
}

inline const char* PriorityClassName(PriorityClass cls) {
  switch (cls) {
    case PriorityClass::kRealtime: return "realtime";
    case PriorityClass::kNormal: return "normal";
    case PriorityClass::kBatch: return "batch";
  }
  return "?";
}

// Upper bound on sub-requests per kBatch envelope, shared by the grdLib
// buffer cap and the dispatcher's decode guard so a client-side setting can
// never produce an envelope the manager rejects wholesale.
inline constexpr std::uint32_t kMaxBatchOps = 64;

struct RequestHeader {
  Op op{};
  std::uint64_t client = 0;
};

inline void WriteHeader(ipc::Writer& writer, Op op, std::uint64_t client) {
  writer.Put<std::uint32_t>(static_cast<std::uint32_t>(op));
  writer.Put<std::uint64_t>(client);
}

inline Result<RequestHeader> ReadHeader(ipc::Reader& reader) {
  RequestHeader header;
  GRD_ASSIGN_OR_RETURN(std::uint32_t op, reader.Get<std::uint32_t>());
  header.op = static_cast<Op>(op);
  GRD_ASSIGN_OR_RETURN(header.client, reader.Get<std::uint64_t>());
  return header;
}

// Responses: u8 ok flag; on failure a status code + message follow, on
// success the op-specific payload.
inline ipc::Bytes EncodeError(const Status& status) {
  ipc::Writer writer;
  writer.Put<std::uint8_t>(0);
  writer.Put<std::uint8_t>(static_cast<std::uint8_t>(status.code()));
  writer.PutString(status.message());
  return std::move(writer).Take();
}

inline ipc::Bytes EncodeOk(ipc::Writer payload = {}) {
  ipc::Writer writer;
  writer.Put<std::uint8_t>(1);
  ipc::Bytes body = std::move(payload).Take();
  for (const std::uint8_t b : body) writer.Put<std::uint8_t>(b);
  return std::move(writer).Take();
}

// Returns a Reader positioned at the payload, or the decoded error status.
inline Result<ipc::Reader> DecodeResponse(const ipc::Bytes& response) {
  ipc::Reader reader(response);
  GRD_ASSIGN_OR_RETURN(std::uint8_t ok, reader.Get<std::uint8_t>());
  if (ok != 0) return reader;
  GRD_ASSIGN_OR_RETURN(std::uint8_t code, reader.Get<std::uint8_t>());
  GRD_ASSIGN_OR_RETURN(std::string message, reader.GetString());
  return Status(static_cast<StatusCode>(code), std::move(message));
}

}  // namespace grd::guardian::protocol
