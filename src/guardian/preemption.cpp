#include "guardian/preemption.hpp"

#include <algorithm>

#include "guardian/execution.hpp"

namespace grd::guardian {

void WaitHistogram::Record(std::uint64_t wait_ns) {
  int index = 0;
  for (std::uint64_t us = wait_ns / 1'000; us > 1 && index < kBuckets - 1;
       us >>= 1)
    ++index;
  bucket[index].fetch_add(1, std::memory_order_relaxed);
  count.fetch_add(1, std::memory_order_relaxed);
  total_ns.fetch_add(wait_ns, std::memory_order_relaxed);
  BumpCounterMax(max_ns, wait_ns);
}

std::uint64_t WaitHistogram::PercentileNs(double p) const {
  const std::uint64_t n = count.load(std::memory_order_relaxed);
  if (n == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(p * static_cast<double>(n - 1));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += bucket[i].load(std::memory_order_relaxed);
    if (seen > rank)
      return (std::uint64_t{1} << (i + 1)) * 1'000;  // bucket upper bound
  }
  return max_ns.load(std::memory_order_relaxed);
}

int PreemptionEngine::EffectiveClass(PriorityClass base,
                                     std::uint64_t waited_ns) const {
  int cls = static_cast<int>(base);
  if (config_.aging_quantum_ns > 0) {
    const std::uint64_t boost = waited_ns / config_.aging_quantum_ns;
    cls -= static_cast<int>(
        std::min<std::uint64_t>(boost, kPriorityClassCount));
  }
  return std::max(cls, 0);
}

bool PreemptionEngine::MayPreempt(PriorityClass waiter_base,
                                  int victim_admitted_class) const {
  return config_.enabled &&
         static_cast<int>(waiter_base) < victim_admitted_class;
}

void PreemptionEngine::RecordPreemption(std::uint64_t checkpoint_bytes) const {
  if (stats_ == nullptr) return;
  stats_->preemptions.fetch_add(1, std::memory_order_relaxed);
  stats_->checkpoint_bytes_saved.fetch_add(checkpoint_bytes,
                                           std::memory_order_relaxed);
}

void PreemptionEngine::RecordResume() const {
  if (stats_ == nullptr) return;
  stats_->preemption_resumes.fetch_add(1, std::memory_order_relaxed);
}

void PreemptionEngine::RecordKernelStart(PriorityClass cls,
                                         std::uint64_t waited_ns) const {
  if (stats_ == nullptr) return;
  stats_->wait_hist[static_cast<int>(cls)].Record(waited_ns);
}

void PreemptionEngine::RecordBudgetRequeue() const {
  if (stats_ == nullptr) return;
  stats_->budget_requeues.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace grd::guardian
