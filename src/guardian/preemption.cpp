#include "guardian/preemption.hpp"

#include <algorithm>

#include "guardian/execution.hpp"
#include "obs/trace.hpp"

namespace grd::guardian {

int PreemptionEngine::EffectiveClass(PriorityClass base,
                                     std::uint64_t waited_ns) const {
  int cls = static_cast<int>(base);
  if (config_.aging_quantum_ns > 0) {
    const std::uint64_t boost = waited_ns / config_.aging_quantum_ns;
    cls -= static_cast<int>(
        std::min<std::uint64_t>(boost, kPriorityClassCount));
  }
  return std::max(cls, 0);
}

bool PreemptionEngine::MayPreempt(PriorityClass waiter_base,
                                  int victim_admitted_class) const {
  return config_.enabled &&
         static_cast<int>(waiter_base) < victim_admitted_class;
}

void PreemptionEngine::RecordPreemption(std::uint64_t checkpoint_bytes) const {
  obs::TraceRecorder::Instance().EmitInstant(
      "preempt.revoke", obs::CurrentContext(), checkpoint_bytes);
  if (stats_ == nullptr) return;
  stats_->preemptions.fetch_add(1, std::memory_order_relaxed);
  stats_->checkpoint_bytes_saved.fetch_add(checkpoint_bytes,
                                           std::memory_order_relaxed);
}

void PreemptionEngine::RecordResume() const {
  obs::TraceRecorder::Instance().EmitInstant("preempt.resume",
                                             obs::CurrentContext());
  if (stats_ == nullptr) return;
  stats_->preemption_resumes.fetch_add(1, std::memory_order_relaxed);
}

void PreemptionEngine::RecordKernelStart(PriorityClass cls,
                                         std::uint64_t waited_ns) const {
  if (stats_ == nullptr) return;
  stats_->wait_hist[static_cast<int>(cls)].Record(waited_ns);
}

void PreemptionEngine::RecordBudgetRequeue() const {
  if (stats_ == nullptr) return;
  stats_->budget_requeues.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace grd::guardian
