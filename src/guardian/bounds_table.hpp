// The partition bounds table (paper §4.2.1): per-application base address,
// size and fencing mask, consulted on every host-initiated transfer
// (§4.2.2) and on every kernel launch to append the fencing arguments
// (§4.2.3).
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "common/bits.hpp"
#include "common/status.hpp"

namespace grd::guardian {

using ClientId = std::uint64_t;

struct PartitionBounds {
  std::uint64_t base = 0;
  std::uint64_t size = 0;

  std::uint64_t mask() const noexcept { return PartitionMask(size); }
  std::uint64_t end() const noexcept { return base + size; }
  bool Contains(std::uint64_t addr, std::uint64_t len) const noexcept {
    return addr >= base && len <= size && addr - base <= size - len;
  }
};

class SharedServingState;
struct SharedSessionSlot;

class PartitionBoundsTable {
 public:
  // Process mode: back the table with the SharedRegion session slots instead
  // of the private map, so bounds (including in-place partition growth) are
  // visible to every worker process and the parent supervisor. In that mode
  // Insert is an upsert into the client's slot and Remove succeeds trivially
  // — the bounds entry lives and dies with the shared session slot itself.
  // Lookups stay O(1): slot pointers are stable for the mapping's lifetime,
  // so they are memoized per client under `mu_` and validated against the
  // slot's own client id (which changes whenever a slot is recycled).
  void BindShared(SharedServingState* shared) noexcept { shared_ = shared; }

  Status Insert(ClientId client, PartitionBounds bounds);
  Status Remove(ClientId client);
  Result<PartitionBounds> Lookup(ClientId client) const;

  // Validates a host-initiated transfer touching [addr, addr+len) on behalf
  // of `client` (paper §4.2.2: "every host-initiated transfer is checked at
  // run-time to verify that it falls in a valid range").
  Status CheckTransfer(ClientId client, std::uint64_t addr,
                       std::uint64_t len) const;

  std::size_t size() const;

 private:
  // Resolves the client's shared slot, consulting and refreshing the memo
  // under `mu_`. Null when the client has no live slot.
  SharedSessionSlot* ResolveSharedSlot(ClientId client) const;

  SharedServingState* shared_ = nullptr;  // null = threaded mode (map below)
  mutable std::mutex mu_;
  std::unordered_map<ClientId, PartitionBounds> table_;
  // Process mode: client -> slot memo (see BindShared).
  mutable std::unordered_map<ClientId, SharedSessionSlot*> slot_memo_;
};

}  // namespace grd::guardian
