// The partition bounds table (paper §4.2.1): per-application base address,
// size and fencing mask, consulted on every host-initiated transfer
// (§4.2.2) and on every kernel launch to append the fencing arguments
// (§4.2.3).
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "common/bits.hpp"
#include "common/status.hpp"

namespace grd::guardian {

using ClientId = std::uint64_t;

struct PartitionBounds {
  std::uint64_t base = 0;
  std::uint64_t size = 0;

  std::uint64_t mask() const noexcept { return PartitionMask(size); }
  std::uint64_t end() const noexcept { return base + size; }
  bool Contains(std::uint64_t addr, std::uint64_t len) const noexcept {
    return addr >= base && len <= size && addr - base <= size - len;
  }
};

class PartitionBoundsTable {
 public:
  Status Insert(ClientId client, PartitionBounds bounds);
  Status Remove(ClientId client);
  Result<PartitionBounds> Lookup(ClientId client) const;

  // Validates a host-initiated transfer touching [addr, addr+len) on behalf
  // of `client` (paper §4.2.2: "every host-initiated transfer is checked at
  // run-time to verify that it falls in a valid range").
  Status CheckTransfer(ClientId client, std::uint64_t addr,
                       std::uint64_t len) const;

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return table_.size();
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<ClientId, PartitionBounds> table_;
};

}  // namespace grd::guardian
