#include "guardian/gpu_scheduler.hpp"

#include <algorithm>
#include <deque>

#include "guardian/execution.hpp"
#include "obs/trace.hpp"

namespace grd::guardian {

// All fields are guarded by the owning scheduler's mu_, except
// `preempt_requested`, which the kernel body polls from an executor thread
// without the lock (atomic; set/reset under the lock).
struct GpuWorkItem {
  enum class Kind : std::uint8_t { kKernel, kCopy, kEventRecord, kWaitEvent };
  enum class State : std::uint8_t { kQueued, kRunning, kDone };

  Kind kind = Kind::kKernel;
  State state = State::kQueued;
  // Kernels and copies only. Non-preemptible bodies are wrapped to ignore
  // the slot; `preemptible` records whether the body honors the flag.
  PreemptibleBody body;
  bool preemptible = false;
  int sm_footprint = 0;
  GpuTicket depends_on;  // kWaitEvent: the record snapshot to wait for
  Status status;
  // Preemption/priority state.
  PriorityClass priority = PriorityClass::kNormal;  // stream's, at submit
  std::atomic<bool> preempt_requested{false};
  std::uint32_t preempt_count = 0;  // times revoked at a safe point
  bool started = false;             // first run began (wait time recorded)
  std::chrono::steady_clock::time_point enqueue_time;
  // Aging clock: starts when the op first becomes its stream's admissible
  // head. An op queued behind its own stream's work is not starving — its
  // stream is making progress; only a head the scan keeps passing over is.
  bool head_seen = false;
  std::chrono::steady_clock::time_point head_since;
  // Effective class at the moment the scan granted the device (the class
  // this run *earned*, aging included); revocation eligibility is judged
  // against it, so a promoted kernel keeps its protection while running.
  int admitted_class = static_cast<int>(PriorityClass::kNormal);
  // Trace context of the request that submitted this op (captured from the
  // submitting thread): executor-side spans/instants — admission, the
  // preemption engine's revoke/resume events, the body's own spans — stay
  // correlated with the client request even though they run on executors.
  obs::TraceContext trace;
};

class GpuStream {
 public:
  friend class GpuScheduler;

 private:
  std::deque<GpuTicket> queue_;
  bool active_ = false;     // one op of this stream is on an executor
  bool paused_ = false;     // migration: scan skips this stream entirely
  bool destroyed_ = false;  // retired: enqueues fail
  PriorityClass priority_ = PriorityClass::kNormal;
  Status first_error_;      // sticky, reported by SynchronizeStream
};

namespace {

using Kind = GpuWorkItem::Kind;
using State = GpuWorkItem::State;

GpuTicket FailedTicket(Status status) {
  auto op = std::make_shared<GpuWorkItem>();
  op->state = State::kDone;
  op->status = std::move(status);
  return op;
}

}  // namespace

GpuScheduler::GpuScheduler(const simgpu::DeviceSpec& spec,
                           std::size_t executors, ManagerStats* stats,
                           PreemptionConfig preemption)
    : spec_(spec),
      executor_count_(std::clamp<std::size_t>(executors, 1, 64)),
      stats_(stats),
      engine_(preemption, stats) {
  executors_.reserve(executor_count_);
  for (std::size_t i = 0; i < executor_count_; ++i)
    executors_.emplace_back([this] { ExecutorLoop(); });
}

GpuScheduler::~GpuScheduler() { Shutdown(); }

std::shared_ptr<GpuStream> GpuScheduler::CreateStream(PriorityClass priority) {
  auto stream = std::shared_ptr<GpuStream>(new GpuStream());
  stream->priority_ = priority;
  std::lock_guard<std::mutex> lock(mu_);
  streams_.push_back(stream);
  return stream;
}

void GpuScheduler::SetStreamPriority(GpuStream& stream,
                                     PriorityClass priority) {
  std::lock_guard<std::mutex> lock(mu_);
  stream.priority_ = priority;
  // Already-queued ops keep their submit-time class (CUDA reprioritization
  // semantics: takes effect for subsequent work).
}

GpuTicket GpuScheduler::Submit(GpuStream& stream, GpuTicket op,
                               GpuEvent* record_into, GpuEvent* wait_on) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stream.destroyed_ || stopped_)
      return FailedTicket(InvalidArgument("stream is destroyed"));
    if (wait_on != nullptr)
      op->depends_on = wait_on->last_record;  // snapshot, CUDA semantics
    op->priority = stream.priority_;
    op->trace = obs::CurrentContext();
    op->enqueue_time = std::chrono::steady_clock::now();
    stream.queue_.push_back(op);
    ++queued_ops_;
    if (record_into != nullptr) record_into->last_record = op;
    if (stats_ != nullptr)
      BumpCounterMax(stats_->peak_queue_depth, queued_ops_);
  }
  cv_.notify_all();
  return op;
}

GpuTicket GpuScheduler::EnqueueKernel(GpuStream& stream,
                                      std::function<Status()> body,
                                      int sm_footprint) {
  auto op = std::make_shared<GpuWorkItem>();
  op->kind = Kind::kKernel;
  op->body = [plain = std::move(body)](KernelSlot&) { return plain(); };
  op->preemptible = false;
  op->sm_footprint = std::clamp(sm_footprint, 1, std::max(1, spec_.sms));
  return Submit(stream, std::move(op), nullptr, nullptr);
}

GpuTicket GpuScheduler::EnqueuePreemptibleKernel(GpuStream& stream,
                                                 PreemptibleBody body,
                                                 int sm_footprint) {
  auto op = std::make_shared<GpuWorkItem>();
  op->kind = Kind::kKernel;
  op->body = std::move(body);
  op->preemptible = true;
  op->sm_footprint = std::clamp(sm_footprint, 1, std::max(1, spec_.sms));
  return Submit(stream, std::move(op), nullptr, nullptr);
}

GpuTicket GpuScheduler::EnqueueCopy(GpuStream& stream,
                                    std::function<Status()> body) {
  auto op = std::make_shared<GpuWorkItem>();
  op->kind = Kind::kCopy;
  op->body = [plain = std::move(body)](KernelSlot&) { return plain(); };
  return Submit(stream, std::move(op), nullptr, nullptr);
}

GpuTicket GpuScheduler::RecordEvent(GpuStream& stream, GpuEvent& event) {
  auto op = std::make_shared<GpuWorkItem>();
  op->kind = Kind::kEventRecord;
  return Submit(stream, std::move(op), &event, nullptr);
}

GpuTicket GpuScheduler::EnqueueWaitEvent(GpuStream& stream, GpuEvent& event) {
  auto op = std::make_shared<GpuWorkItem>();
  op->kind = Kind::kWaitEvent;
  return Submit(stream, std::move(op), nullptr, &event);
}

Status GpuScheduler::Wait(const GpuTicket& ticket) {
  if (ticket == nullptr) return InvalidArgument("null ticket");
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return ticket->state == State::kDone; });
  return ticket->status;
}

Status GpuScheduler::SynchronizeStream(GpuStream& stream) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return stream.queue_.empty() && !stream.active_; });
  return stream.first_error_;
}

Status GpuScheduler::SynchronizeEvent(GpuEvent& event) {
  std::unique_lock<std::mutex> lock(mu_);
  const GpuTicket record = event.last_record;
  if (record == nullptr) return OkStatus();  // never recorded: complete
  cv_.wait(lock, [&] { return record->state == State::kDone; });
  return record->status;
}

Status GpuScheduler::DestroyStream(GpuStream& stream) {
  std::unique_lock<std::mutex> lock(mu_);
  if (stream.destroyed_) return InvalidArgument("stream already destroyed");
  // Drain rather than orphan: queued work keeps its ordering guarantees,
  // then the stream is retired for good.
  cv_.wait(lock, [&] { return stream.queue_.empty() && !stream.active_; });
  stream.destroyed_ = true;
  return stream.first_error_;
}

void GpuScheduler::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    for (const auto& weak : streams_) {
      const auto stream = weak.lock();
      if (stream == nullptr) continue;
      for (const auto& op : stream->queue_) {
        if (op->state == State::kQueued) {
          op->state = State::kDone;
          op->status = Aborted("scheduler shut down with work queued");
        }
      }
      stream->queue_.clear();
    }
    queued_ops_ = 0;
  }
  cv_.notify_all();
  for (auto& thread : executors_) thread.join();
  executors_.clear();
}

void GpuScheduler::PauseStream(GpuStream& stream) {
  std::lock_guard<std::mutex> lock(mu_);
  stream.paused_ = true;
}

void GpuScheduler::ResumeStream(GpuStream& stream) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stream.paused_ = false;
  }
  cv_.notify_all();
}

bool GpuScheduler::RequestStreamPreemption(GpuStream& stream) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stream.queue_.empty()) return false;
  const GpuTicket& head = stream.queue_.front();
  if (head->kind == Kind::kKernel && head->state == State::kRunning &&
      head->preemptible) {
    head->preempt_requested.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void GpuScheduler::WaitStreamInactive(GpuStream& stream) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !stream.active_; });
}

std::vector<GpuTicket> GpuScheduler::ExtractQueued(GpuStream& stream) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<GpuTicket> items;
  // Stop at a non-queued head: a still-running op owns its queue slot (the
  // executor's requeue-on-preempt path relies on the item staying put).
  while (!stream.queue_.empty() &&
         stream.queue_.front()->state == State::kQueued) {
    items.push_back(stream.queue_.front());
    stream.queue_.pop_front();
    if (queued_ops_ > 0) --queued_ops_;
  }
  return items;
}

GpuTicket GpuScheduler::Readmit(GpuStream& stream, GpuTicket op) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stream.destroyed_ || stopped_) {
      op->state = State::kDone;
      op->status = Aborted("target stream gone before re-admission");
      cv_.notify_all();
      return op;
    }
    // The target device may be smaller than the source; re-clamp so the
    // occupancy scan can ever admit the kernel.
    if (op->kind == GpuWorkItem::Kind::kKernel)
      op->sm_footprint =
          std::clamp(op->sm_footprint, 1, std::max(1, spec_.sms));
    op->head_seen = false;  // aging restarts on the new device
    stream.queue_.push_back(op);
    ++queued_ops_;
    if (stats_ != nullptr)
      BumpCounterMax(stats_->peak_queue_depth, queued_ops_);
  }
  cv_.notify_all();
  return op;
}

int GpuScheduler::sms_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sms_in_use_;
}

int GpuScheduler::resident_kernels() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_kernels_;
}

std::uint64_t GpuScheduler::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_ops_;
}

PriorityClass GpuScheduler::StreamPriority(GpuStream& stream) const {
  std::lock_guard<std::mutex> lock(mu_);
  return stream.priority_;
}

void GpuScheduler::UpdatePeaksLocked() {
  if (stats_ == nullptr) return;
  BumpCounterMax(stats_->peak_resident_kernels,
                 static_cast<std::uint64_t>(resident_kernels_));
  BumpCounterMax(stats_->peak_sms_in_use,
                 static_cast<std::uint64_t>(sms_in_use_));
}

void GpuScheduler::RequestPreemptionLocked(PriorityClass waiter_base,
                                           int needed_sms) {
  if (!engine_.enabled()) return;
  // SMs that will come free without further action: currently unused ones
  // plus the footprints of victims already asked to vacate.
  int projected_free = spec_.sms - sms_in_use_;
  std::vector<GpuTicket> candidates;
  for (const auto& weak : streams_) {
    const auto s = weak.lock();
    if (s == nullptr || !s->active_ || s->queue_.empty()) continue;
    const GpuTicket& running = s->queue_.front();
    if (running->kind != Kind::kKernel || running->state != State::kRunning)
      continue;
    if (running->preempt_requested.load(std::memory_order_relaxed)) {
      projected_free += running->sm_footprint;
      continue;
    }
    if (running->preemptible &&
        engine_.MayPreempt(waiter_base, running->admitted_class))
      candidates.push_back(running);
  }
  if (projected_free >= needed_sms) return;  // a plan is already in flight
  // Revoke least-urgent victims first; bigger footprints first within a
  // class so fewer kernels bounce.
  std::sort(candidates.begin(), candidates.end(),
            [](const GpuTicket& a, const GpuTicket& b) {
              if (a->admitted_class != b->admitted_class)
                return a->admitted_class > b->admitted_class;
              return a->sm_footprint > b->sm_footprint;
            });
  for (const auto& victim : candidates) {
    if (projected_free >= needed_sms) break;
    victim->preempt_requested.store(true, std::memory_order_relaxed);
    projected_free += victim->sm_footprint;
  }
}

bool GpuScheduler::ScanLocked(GpuTicket* op,
                              std::shared_ptr<GpuStream>* stream) {
  op->reset();
  stream->reset();
  bool completed_marker = false;
  // Prune dead stream slots so a churning tenant cannot grow the scan list.
  streams_.erase(std::remove_if(streams_.begin(), streams_.end(),
                                [](const std::weak_ptr<GpuStream>& weak) {
                                  const auto s = weak.lock();
                                  return s == nullptr ||
                                         (s->destroyed_ && s->queue_.empty());
                                }),
                 streams_.end());
  const std::size_t n = streams_.size();
  if (n == 0) return completed_marker;
  rotor_ %= n;
  // Phase 1 — resolve ready markers to a fixpoint: a record completing may
  // unblock a wait in a stream the sweep already passed.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t i = 0; i < n; ++i) {
      const auto s = streams_[(rotor_ + i) % n].lock();
      if (s == nullptr || s->active_ || s->paused_ || s->queue_.empty())
        continue;
      const GpuTicket& head = s->queue_.front();
      if (head->kind == Kind::kEventRecord) {
        FinishLocked(*s, head, OkStatus());
        completed_marker = progressed = true;
      } else if (head->kind == Kind::kWaitEvent &&
                 (head->depends_on == nullptr ||
                  head->depends_on->state == State::kDone)) {
        FinishLocked(*s, head, OkStatus());
        completed_marker = progressed = true;
      }
    }
  }
  // Phase 2 — pick a body op, most urgent effective class first. When a
  // blocked head is a kernel that does not fit, the device is *reserved*
  // for its class: no strictly-less-urgent kernel is admitted behind it
  // (same-class peers may still backfill — aging resolves starvation within
  // a class — and copies always flow: they occupy DMA engines, not SMs).
  // Running lower-priority kernels are asked to vacate at their next safe
  // point.
  // With the engine disabled, priorities/aging/reservation do not apply:
  // one rotor pass in pure FIFO-with-occupancy order (pre-engine behavior).
  const bool prioritized = engine_.enabled();
  const auto now = std::chrono::steady_clock::now();
  int reserved_class = kPriorityClassCount;  // no reservation yet
  const int class_passes = prioritized ? kPriorityClassCount : 1;
  for (int cls = 0; cls < class_passes; ++cls) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t index = (rotor_ + i) % n;
      const auto s = streams_[index].lock();
      if (s == nullptr || s->active_ || s->paused_ || s->queue_.empty())
        continue;
      const GpuTicket& head = s->queue_.front();
      if (head->kind != Kind::kKernel && head->kind != Kind::kCopy) continue;
      if (prioritized) {
        if (!head->head_seen) {
          head->head_seen = true;
          head->head_since = now;
        }
        const auto waited_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                now - head->head_since)
                .count());
        if (engine_.EffectiveClass(head->priority, waited_ns) != cls)
          continue;
      }
      const int granted_class =
          prioritized ? cls : static_cast<int>(head->priority);
      if (head->kind == Kind::kCopy) {
        if (copies_in_flight_ < std::max(1, spec_.copy_engines)) {
          head->admitted_class = granted_class;
          *op = head;
          *stream = s;
          rotor_ = (index + 1) % n;
          return completed_marker;
        }
        continue;
      }
      if (cls > reserved_class) continue;  // device reserved for more urgent
      if (sms_in_use_ + head->sm_footprint <= spec_.sms) {
        head->admitted_class = granted_class;
        *op = head;
        *stream = s;
        rotor_ = (index + 1) % n;
        return completed_marker;
      }
      if (prioritized) {
        RequestPreemptionLocked(head->priority, head->sm_footprint);
        reserved_class = std::min(reserved_class, cls);
      }
    }
  }
  return completed_marker;
}

void GpuScheduler::FinishLocked(GpuStream& stream, const GpuTicket& op,
                                Status status) {
  op->status = std::move(status);
  op->state = State::kDone;
  if (!op->status.ok() && stream.first_error_.ok())
    stream.first_error_ = op->status;
  if (!stream.queue_.empty() && stream.queue_.front() == op)
    stream.queue_.pop_front();
  if (queued_ops_ > 0) --queued_ops_;
  if (stats_ != nullptr)
    stats_->scheduler_ops_completed.fetch_add(1, std::memory_order_relaxed);
}

void GpuScheduler::ExecutorLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    GpuTicket op;
    std::shared_ptr<GpuStream> stream;
    const bool completed_marker = ScanLocked(&op, &stream);
    if (completed_marker) cv_.notify_all();
    if (op == nullptr) {
      if (stopped_) return;
      cv_.wait(lock);
      continue;
    }
    op->state = State::kRunning;
    stream->active_ = true;
    if (op->kind == Kind::kKernel) {
      sms_in_use_ += op->sm_footprint;
      ++resident_kernels_;
      UpdatePeaksLocked();
      if (!op->started) {
        op->started = true;
        const auto waited_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - op->enqueue_time)
                .count());
        engine_.RecordKernelStart(op->priority, waited_ns);
        obs::TraceRecorder::Instance().EmitInstant(
            "sched.admit", op->trace, waited_ns,
            static_cast<std::uint64_t>(op->priority));
      } else if (op->preempt_count > 0) {
        obs::ContextScope trace_scope(op->trace);
        engine_.RecordResume();
      }
    } else if (op->kind == Kind::kCopy) {
      ++copies_in_flight_;
    }
    lock.unlock();
    KernelSlot slot;
    slot.preempt_requested = &op->preempt_requested;
    Status status;
    {
      // Run the body under the submitting request's trace context so its
      // spans (and the preemption engine's budget-requeue instants) stay
      // correlated across the executor handoff.
      obs::ContextScope trace_scope(op->trace);
      status = op->body ? op->body(slot) : OkStatus();
    }
    lock.lock();
    if (op->kind == Kind::kKernel) {
      sms_in_use_ -= op->sm_footprint;
      --resident_kernels_;
    } else if (op->kind == Kind::kCopy) {
      --copies_in_flight_;
    }
    if (op->kind == Kind::kKernel && slot.preempted && !stopped_) {
      // Revoked at a safe point: the item goes back to being the head of
      // its stream (it was never popped) and will re-run with its captured
      // checkpoint once the scan admits it again. Budget trips share the
      // requeue mechanics but not the telemetry: the handler counts them
      // as budget_requeues, and their re-run is not a preemption resume.
      op->preempt_requested.store(false, std::memory_order_relaxed);
      op->state = State::kQueued;
      if (!slot.budget_trip) {
        ++op->preempt_count;
        obs::ContextScope trace_scope(op->trace);
        engine_.RecordPreemption(slot.checkpoint_bytes);
      }
      stream->active_ = false;
      cv_.notify_all();
      continue;
    }
    stream->active_ = false;
    FinishLocked(*stream, op, std::move(status));
    cv_.notify_all();
  }
}

}  // namespace grd::guardian
