#include "guardian/gpu_scheduler.hpp"

#include <algorithm>
#include <deque>

#include "guardian/execution.hpp"

namespace grd::guardian {

// All fields are guarded by the owning scheduler's mu_.
struct GpuWorkItem {
  enum class Kind : std::uint8_t { kKernel, kCopy, kEventRecord, kWaitEvent };
  enum class State : std::uint8_t { kQueued, kRunning, kDone };

  Kind kind = Kind::kKernel;
  State state = State::kQueued;
  std::function<Status()> body;  // kernels and copies only
  int sm_footprint = 0;
  GpuTicket depends_on;  // kWaitEvent: the record snapshot to wait for
  Status status;
};

class GpuStream {
 public:
  friend class GpuScheduler;

 private:
  std::deque<GpuTicket> queue_;
  bool active_ = false;     // one op of this stream is on an executor
  bool destroyed_ = false;  // retired: enqueues fail
  Status first_error_;      // sticky, reported by SynchronizeStream
};

namespace {

using Kind = GpuWorkItem::Kind;
using State = GpuWorkItem::State;

GpuTicket FailedTicket(Status status) {
  auto op = std::make_shared<GpuWorkItem>();
  op->state = State::kDone;
  op->status = std::move(status);
  return op;
}

}  // namespace

GpuScheduler::GpuScheduler(const simgpu::DeviceSpec& spec,
                           std::size_t executors, ManagerStats* stats)
    : spec_(spec),
      executor_count_(std::clamp<std::size_t>(executors, 1, 64)),
      stats_(stats) {
  executors_.reserve(executor_count_);
  for (std::size_t i = 0; i < executor_count_; ++i)
    executors_.emplace_back([this] { ExecutorLoop(); });
}

GpuScheduler::~GpuScheduler() { Shutdown(); }

std::shared_ptr<GpuStream> GpuScheduler::CreateStream() {
  auto stream = std::shared_ptr<GpuStream>(new GpuStream());
  std::lock_guard<std::mutex> lock(mu_);
  streams_.push_back(stream);
  return stream;
}

GpuTicket GpuScheduler::Submit(GpuStream& stream, GpuTicket op,
                               GpuEvent* record_into, GpuEvent* wait_on) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stream.destroyed_ || stopped_)
      return FailedTicket(InvalidArgument("stream is destroyed"));
    if (wait_on != nullptr)
      op->depends_on = wait_on->last_record;  // snapshot, CUDA semantics
    stream.queue_.push_back(op);
    ++queued_ops_;
    if (record_into != nullptr) record_into->last_record = op;
    if (stats_ != nullptr)
      BumpCounterMax(stats_->peak_queue_depth, queued_ops_);
  }
  cv_.notify_all();
  return op;
}

GpuTicket GpuScheduler::EnqueueKernel(GpuStream& stream,
                                      std::function<Status()> body,
                                      int sm_footprint) {
  auto op = std::make_shared<GpuWorkItem>();
  op->kind = Kind::kKernel;
  op->body = std::move(body);
  op->sm_footprint = std::clamp(sm_footprint, 1, std::max(1, spec_.sms));
  return Submit(stream, std::move(op), nullptr, nullptr);
}

GpuTicket GpuScheduler::EnqueueCopy(GpuStream& stream,
                                    std::function<Status()> body) {
  auto op = std::make_shared<GpuWorkItem>();
  op->kind = Kind::kCopy;
  op->body = std::move(body);
  return Submit(stream, std::move(op), nullptr, nullptr);
}

GpuTicket GpuScheduler::RecordEvent(GpuStream& stream, GpuEvent& event) {
  auto op = std::make_shared<GpuWorkItem>();
  op->kind = Kind::kEventRecord;
  return Submit(stream, std::move(op), &event, nullptr);
}

GpuTicket GpuScheduler::EnqueueWaitEvent(GpuStream& stream, GpuEvent& event) {
  auto op = std::make_shared<GpuWorkItem>();
  op->kind = Kind::kWaitEvent;
  return Submit(stream, std::move(op), nullptr, &event);
}

Status GpuScheduler::Wait(const GpuTicket& ticket) {
  if (ticket == nullptr) return InvalidArgument("null ticket");
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return ticket->state == State::kDone; });
  return ticket->status;
}

Status GpuScheduler::SynchronizeStream(GpuStream& stream) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return stream.queue_.empty() && !stream.active_; });
  return stream.first_error_;
}

Status GpuScheduler::SynchronizeEvent(GpuEvent& event) {
  std::unique_lock<std::mutex> lock(mu_);
  const GpuTicket record = event.last_record;
  if (record == nullptr) return OkStatus();  // never recorded: complete
  cv_.wait(lock, [&] { return record->state == State::kDone; });
  return record->status;
}

Status GpuScheduler::DestroyStream(GpuStream& stream) {
  std::unique_lock<std::mutex> lock(mu_);
  if (stream.destroyed_) return InvalidArgument("stream already destroyed");
  // Drain rather than orphan: queued work keeps its ordering guarantees,
  // then the stream is retired for good.
  cv_.wait(lock, [&] { return stream.queue_.empty() && !stream.active_; });
  stream.destroyed_ = true;
  return stream.first_error_;
}

void GpuScheduler::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    for (const auto& weak : streams_) {
      const auto stream = weak.lock();
      if (stream == nullptr) continue;
      for (const auto& op : stream->queue_) {
        if (op->state == State::kQueued) {
          op->state = State::kDone;
          op->status = Aborted("scheduler shut down with work queued");
        }
      }
      stream->queue_.clear();
    }
    queued_ops_ = 0;
  }
  cv_.notify_all();
  for (auto& thread : executors_) thread.join();
  executors_.clear();
}

int GpuScheduler::sms_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sms_in_use_;
}

int GpuScheduler::resident_kernels() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_kernels_;
}

void GpuScheduler::UpdatePeaksLocked() {
  if (stats_ == nullptr) return;
  BumpCounterMax(stats_->peak_resident_kernels,
                 static_cast<std::uint64_t>(resident_kernels_));
  BumpCounterMax(stats_->peak_sms_in_use,
                 static_cast<std::uint64_t>(sms_in_use_));
}

bool GpuScheduler::ScanLocked(GpuTicket* op,
                              std::shared_ptr<GpuStream>* stream) {
  op->reset();
  stream->reset();
  bool completed_marker = false;
  // Prune dead stream slots so a churning tenant cannot grow the scan list.
  streams_.erase(std::remove_if(streams_.begin(), streams_.end(),
                                [](const std::weak_ptr<GpuStream>& weak) {
                                  const auto s = weak.lock();
                                  return s == nullptr ||
                                         (s->destroyed_ && s->queue_.empty());
                                }),
                 streams_.end());
  const std::size_t n = streams_.size();
  if (n == 0) return completed_marker;
  rotor_ %= n;
  // Keep sweeping while markers resolve: a record completing may unblock a
  // wait in a stream the sweep already passed.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t index = (rotor_ + i) % n;
      const auto s = streams_[index].lock();
      if (s == nullptr || s->active_ || s->queue_.empty()) continue;
      const GpuTicket& head = s->queue_.front();
      switch (head->kind) {
        case Kind::kEventRecord:
          FinishLocked(*s, head, OkStatus());
          completed_marker = progressed = true;
          break;
        case Kind::kWaitEvent:
          if (head->depends_on == nullptr ||
              head->depends_on->state == State::kDone) {
            FinishLocked(*s, head, OkStatus());
            completed_marker = progressed = true;
          }
          break;
        case Kind::kKernel:
          if (sms_in_use_ + head->sm_footprint <= spec_.sms) {
            *op = head;
            *stream = s;
            rotor_ = (index + 1) % n;
            return completed_marker;
          }
          break;
        case Kind::kCopy:
          if (copies_in_flight_ < std::max(1, spec_.copy_engines)) {
            *op = head;
            *stream = s;
            rotor_ = (index + 1) % n;
            return completed_marker;
          }
          break;
      }
    }
  }
  return completed_marker;
}

void GpuScheduler::FinishLocked(GpuStream& stream, const GpuTicket& op,
                                Status status) {
  op->status = std::move(status);
  op->state = State::kDone;
  if (!op->status.ok() && stream.first_error_.ok())
    stream.first_error_ = op->status;
  if (!stream.queue_.empty() && stream.queue_.front() == op)
    stream.queue_.pop_front();
  if (queued_ops_ > 0) --queued_ops_;
  if (stats_ != nullptr)
    stats_->scheduler_ops_completed.fetch_add(1, std::memory_order_relaxed);
}

void GpuScheduler::ExecutorLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    GpuTicket op;
    std::shared_ptr<GpuStream> stream;
    const bool completed_marker = ScanLocked(&op, &stream);
    if (completed_marker) cv_.notify_all();
    if (op == nullptr) {
      if (stopped_) return;
      cv_.wait(lock);
      continue;
    }
    op->state = State::kRunning;
    stream->active_ = true;
    if (op->kind == Kind::kKernel) {
      sms_in_use_ += op->sm_footprint;
      ++resident_kernels_;
      UpdatePeaksLocked();
    } else if (op->kind == Kind::kCopy) {
      ++copies_in_flight_;
    }
    lock.unlock();
    Status status = op->body ? op->body() : OkStatus();
    lock.lock();
    if (op->kind == Kind::kKernel) {
      sms_in_use_ -= op->sm_footprint;
      --resident_kernels_;
    } else if (op->kind == Kind::kCopy) {
      --copies_in_flight_;
    }
    stream->active_ = false;
    FinishLocked(*stream, op, std::move(status));
    cv_.notify_all();
  }
}

}  // namespace grd::guardian
