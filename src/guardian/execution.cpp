// Structured export of the execution layer's counters (ManagerStats::ToJson):
// every cell is registered with an obs::MetricsRegistry in declaration order
// and rendered from there, so the JSON byte layout is exactly what the
// pre-registry hand-rolled emitter produced and the same registration drives
// the Prometheus text dump.
#include "guardian/execution.hpp"

#include <string>

#include "obs/metrics.hpp"

namespace grd::guardian {

void ManagerStats::BindTo(obs::MetricsRegistry* registry) const {
  registry->Counter("launches", &launches);
  registry->Counter("sandboxed_launches", &sandboxed_launches);
  registry->Counter("native_launches", &native_launches);
  registry->Counter("lookup_cycles", &lookup_cycles);
  registry->Counter("augment_cycles", &augment_cycles);
  registry->Counter("transfers_checked", &transfers_checked);
  registry->Counter("transfers_rejected", &transfers_rejected);
  registry->Counter("faults_contained", &faults_contained);
  registry->Counter("responses_dropped", &responses_dropped);
  registry->Counter("ptx_modules_patched", &ptx_modules_patched);
  registry->Counter("ptx_cache_hits", &ptx_cache_hits);
  registry->Counter("ptx_programs_compiled", &ptx_programs_compiled);
  registry->Counter("guards_elided", &guards_elided);
  registry->Counter("guards_hoisted", &guards_hoisted);
  registry->Counter("loop_range_checks", &loop_range_checks);
  registry->Counter("sandbox_cache_evictions", &sandbox_cache_evictions);
  registry->Counter("sandbox_cache_bytes_reclaimed",
                    &sandbox_cache_bytes_reclaimed);
  registry->Counter("kernels_enqueued", &kernels_enqueued);
  registry->Counter("memcpys_enqueued", &memcpys_enqueued);
  registry->Counter("scheduler_ops_completed", &scheduler_ops_completed);
  registry->Gauge("peak_resident_kernels", &peak_resident_kernels);
  registry->Gauge("peak_sms_in_use", &peak_sms_in_use);
  registry->Gauge("peak_queue_depth", &peak_queue_depth);
  registry->Counter("batches_decoded", &batches_decoded);
  registry->Counter("batched_ops", &batched_ops);
  registry->Counter("batch_responses_compacted", &batch_responses_compacted);
  registry->Counter("preemptions", &preemptions);
  registry->Counter("preemption_resumes", &preemption_resumes);
  registry->Counter("checkpoint_bytes_saved", &checkpoint_bytes_saved);
  registry->Counter("budget_requeues", &budget_requeues);
  registry->Counter("kernel_blocks_executed", &kernel_blocks_executed);
  registry->Counter("tier1_promotions", &tier1_promotions);
  registry->Counter("tier2_promotions", &tier2_promotions);
  registry->Counter("superinstructions_fused", &superinstructions_fused);
  registry->Counter("tier0_instructions", &tier_instructions[0]);
  registry->Counter("tier1_instructions", &tier_instructions[1]);
  registry->Counter("tier2_instructions", &tier_instructions[2]);
  registry->Counter("ring_messages_read", &ring_messages_read);
  registry->Counter("ring_messages_written", &ring_messages_written);
  registry->Counter("sessions_adopted", &sessions_adopted);
  registry->Counter("sessions_migrated", &sessions_migrated);
  registry->Counter("checkpoint_kernels_resumed", &checkpoint_kernels_resumed);
  for (int cls = 0; cls < kPriorityClassCount; ++cls)
    registry->Histogram("wait_histograms",
                        std::string(PriorityClassName(
                            static_cast<PriorityClass>(cls))),
                        &wait_hist[cls]);
}

std::string ManagerStats::ToJson() const {
  obs::MetricsRegistry registry;
  BindTo(&registry);
  return registry.ToJson();
}

std::string ManagerStats::ToPrometheus() const {
  obs::MetricsRegistry registry;
  BindTo(&registry);
  return registry.PrometheusText();
}

}  // namespace grd::guardian
