// Structured export of the execution layer's counters (ManagerStats::ToJson).
#include "guardian/execution.hpp"

#include <string>

namespace grd::guardian {
namespace {

void AppendField(std::string* out, const char* name, std::uint64_t value,
                 bool* first) {
  if (!*first) out->push_back(',');
  *first = false;
  out->append("\"");
  out->append(name);
  out->append("\":");
  out->append(std::to_string(value));
}

void AppendCounter(std::string* out, const char* name,
                   const std::atomic<std::uint64_t>& counter, bool* first) {
  AppendField(out, name, counter.load(std::memory_order_relaxed), first);
}

void AppendHistogram(std::string* out, const WaitHistogram& hist) {
  bool first = true;
  out->push_back('{');
  AppendField(out, "count", hist.count.load(std::memory_order_relaxed),
              &first);
  AppendField(out, "total_ns", hist.total_ns.load(std::memory_order_relaxed),
              &first);
  AppendField(out, "max_ns", hist.max_ns.load(std::memory_order_relaxed),
              &first);
  AppendField(out, "p50_ns", hist.PercentileNs(0.50), &first);
  AppendField(out, "p99_ns", hist.PercentileNs(0.99), &first);
  // Populated log2 buckets only: bucket i counts waits in [2^i, 2^(i+1)) µs.
  out->append(",\"buckets_us_log2\":{");
  bool first_bucket = true;
  for (int i = 0; i < WaitHistogram::kBuckets; ++i) {
    const std::uint64_t n = hist.bucket[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    if (!first_bucket) out->push_back(',');
    first_bucket = false;
    out->append("\"");
    out->append(std::to_string(i));
    out->append("\":");
    out->append(std::to_string(n));
  }
  out->append("}}");
}

}  // namespace

std::string ManagerStats::ToJson() const {
  std::string out;
  out.reserve(1024);
  out.push_back('{');
  bool first = true;
  AppendCounter(&out, "launches", launches, &first);
  AppendCounter(&out, "sandboxed_launches", sandboxed_launches, &first);
  AppendCounter(&out, "native_launches", native_launches, &first);
  AppendCounter(&out, "lookup_cycles", lookup_cycles, &first);
  AppendCounter(&out, "augment_cycles", augment_cycles, &first);
  AppendCounter(&out, "transfers_checked", transfers_checked, &first);
  AppendCounter(&out, "transfers_rejected", transfers_rejected, &first);
  AppendCounter(&out, "faults_contained", faults_contained, &first);
  AppendCounter(&out, "responses_dropped", responses_dropped, &first);
  AppendCounter(&out, "ptx_modules_patched", ptx_modules_patched, &first);
  AppendCounter(&out, "ptx_cache_hits", ptx_cache_hits, &first);
  AppendCounter(&out, "ptx_programs_compiled", ptx_programs_compiled, &first);
  AppendCounter(&out, "guards_elided", guards_elided, &first);
  AppendCounter(&out, "guards_hoisted", guards_hoisted, &first);
  AppendCounter(&out, "loop_range_checks", loop_range_checks, &first);
  AppendCounter(&out, "sandbox_cache_evictions", sandbox_cache_evictions,
                &first);
  AppendCounter(&out, "sandbox_cache_bytes_reclaimed",
                sandbox_cache_bytes_reclaimed, &first);
  AppendCounter(&out, "kernels_enqueued", kernels_enqueued, &first);
  AppendCounter(&out, "memcpys_enqueued", memcpys_enqueued, &first);
  AppendCounter(&out, "scheduler_ops_completed", scheduler_ops_completed,
                &first);
  AppendCounter(&out, "peak_resident_kernels", peak_resident_kernels, &first);
  AppendCounter(&out, "peak_sms_in_use", peak_sms_in_use, &first);
  AppendCounter(&out, "peak_queue_depth", peak_queue_depth, &first);
  AppendCounter(&out, "batches_decoded", batches_decoded, &first);
  AppendCounter(&out, "batched_ops", batched_ops, &first);
  AppendCounter(&out, "batch_responses_compacted", batch_responses_compacted,
                &first);
  AppendCounter(&out, "preemptions", preemptions, &first);
  AppendCounter(&out, "preemption_resumes", preemption_resumes, &first);
  AppendCounter(&out, "checkpoint_bytes_saved", checkpoint_bytes_saved,
                &first);
  AppendCounter(&out, "budget_requeues", budget_requeues, &first);
  AppendCounter(&out, "kernel_blocks_executed", kernel_blocks_executed,
                &first);
  AppendCounter(&out, "tier1_promotions", tier1_promotions, &first);
  AppendCounter(&out, "tier2_promotions", tier2_promotions, &first);
  AppendCounter(&out, "superinstructions_fused", superinstructions_fused,
                &first);
  AppendCounter(&out, "tier0_instructions", tier_instructions[0], &first);
  AppendCounter(&out, "tier1_instructions", tier_instructions[1], &first);
  AppendCounter(&out, "tier2_instructions", tier_instructions[2], &first);
  out.append(",\"wait_histograms\":{");
  for (int cls = 0; cls < kPriorityClassCount; ++cls) {
    if (cls > 0) out.push_back(',');
    out.append("\"");
    out.append(PriorityClassName(static_cast<PriorityClass>(cls)));
    out.append("\":");
    AppendHistogram(&out, wait_hist[cls]);
  }
  out.append("}}");
  return out;
}

}  // namespace grd::guardian
