// grdManager: the trusted GPU manager process (paper §4.2).
//
// The manager is the only entity with GPU access. It:
//  - creates the single GPU context all tenants share (one context total —
//    the §2.2 memory argument against MPS's context-per-client);
//  - partitions device memory and serves each client's allocations from its
//    partition (§4.2.1);
//  - validates every host-initiated transfer against the partition bounds
//    table (§4.2.2);
//  - sandboxes every registered PTX module with the PTX-patcher and, on
//    launch, looks up the sandboxed kernel in the pointerToSymbol map and
//    appends the partition mask/base arguments (§4.2.3, Table 5);
//  - executes calls from different clients on different streams, selecting
//    requests round-robin (§4.2.4 — see ManagerServer in transport.hpp);
//  - contains device faults to the faulting client (the whole point).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "guardian/bounds_table.hpp"
#include "guardian/partition_allocator.hpp"
#include "guardian/protocol.hpp"
#include "ipc/serializer.hpp"
#include "ptx/ast.hpp"
#include "ptxpatcher/patcher.hpp"
#include "simcuda/gpu.hpp"

namespace grd::guardian {

struct ManagerOptions {
  // Bounds-checking method used for sandboxing (§4.4).
  ptxpatcher::BoundsCheckMode mode =
      ptxpatcher::BoundsCheckMode::kFencingBitwise;
  // false = "Guardian w/o protection": interception and forwarding only
  // (the paper's ablation deployment built on Arax-style sharing).
  bool protection_enabled = true;
  // §4.2.3: "when the grdManager detects that an application runs
  // standalone, it issues a native kernel". Off by default so multi-tenant
  // tests and the overhead benchmarks exercise the sandboxed path even with
  // a single client; the paper's deployment turns it on.
  bool standalone_fast_path = false;
  // §2.2 extension: statically safe kernels (no protected accesses) are
  // not instrumented at all.
  bool skip_statically_safe = false;
  // TReM-style revocation [53]: kernels exceeding this per-thread
  // instruction budget are terminated and the client is failed, so an
  // endless (possibly wrap-around-corrupted) kernel cannot hold the GPU.
  std::uint64_t max_kernel_instructions = 10'000'000;
};

// Host-side cost counters backing Table 5.
struct ManagerStats {
  std::uint64_t launches = 0;
  std::uint64_t sandboxed_launches = 0;
  std::uint64_t native_launches = 0;
  std::uint64_t lookup_cycles = 0;   // pointerToSymbol lookups
  std::uint64_t augment_cycles = 0;  // kernel-parameter array rebuilds
  std::uint64_t transfers_checked = 0;
  std::uint64_t transfers_rejected = 0;
  std::uint64_t faults_contained = 0;
};

class GrdManager {
 public:
  GrdManager(simcuda::Gpu* gpu, ManagerOptions options);

  // Full request dispatcher (one IPC message in, one out). Never throws and
  // never returns a malformed response; internal errors become error
  // responses.
  ipc::Bytes HandleRequest(const ipc::Bytes& request);

  const ManagerStats& stats() const noexcept { return stats_; }
  const ManagerOptions& options() const noexcept { return options_; }
  std::size_t active_clients() const noexcept { return clients_.size(); }

  // Device memory the sharing layer itself consumes: exactly one context
  // regardless of client count (§2.2: 176 MB vs MPS's per-client growth).
  std::uint64_t SharingLayerFootprint() const noexcept {
    return simcuda::Gpu::kContextFootprintBytes;
  }

 private:
  struct ClientModule {
    ptx::Module native;
    ptx::Module sandboxed;  // empty when protection is disabled
  };
  struct FunctionEntry {
    std::uint64_t module = 0;
    std::string kernel;
  };
  struct ClientState {
    ClientId id = 0;
    PartitionBounds partition;
    bool failed = false;
    std::uint64_t next_module = 1;
    std::uint64_t next_function = 1;
    std::uint64_t next_stream = 1;
    std::uint64_t next_event = 1;
    std::unordered_map<std::uint64_t, ClientModule> modules;
    // The paper's pointerToSymbol map: client launch handle -> sandboxed
    // kernel symbol.
    std::unordered_map<std::uint64_t, FunctionEntry> pointer_to_symbol;
    std::unordered_map<std::uint64_t, bool> streams;
    std::unordered_map<std::uint64_t, std::uint32_t> events;
  };

  Result<ClientState*> FindClient(ClientId id);

  // Typed handlers (REQ = already-parsed request reader; each returns the
  // response payload writer or an error).
  Result<ipc::Writer> HandleRegister(ipc::Reader& req);
  Result<ipc::Writer> HandleDisconnect(ClientState& client);
  Result<ipc::Writer> HandleMalloc(ClientState& client, ipc::Reader& req);
  Result<ipc::Writer> HandleFree(ClientState& client, ipc::Reader& req);
  Result<ipc::Writer> HandleMemcpyH2D(ClientState& client, ipc::Reader& req);
  Result<ipc::Writer> HandleMemcpyD2H(ClientState& client, ipc::Reader& req);
  Result<ipc::Writer> HandleMemcpyD2D(ClientState& client, ipc::Reader& req);
  Result<ipc::Writer> HandleMemset(ClientState& client, ipc::Reader& req);
  Result<ipc::Writer> HandleLaunch(ClientState& client, ipc::Reader& req);
  Result<ipc::Writer> HandleModuleLoad(ClientState& client, ipc::Reader& req);
  Result<ipc::Writer> HandleGetFunction(ClientState& client, ipc::Reader& req);
  Result<ipc::Writer> HandleGetExportTable(ipc::Reader& req);
  Result<ipc::Writer> HandleGetDeviceSpec();
  Result<ipc::Writer> HandleGrowPartition(ClientState& client);

  simcuda::Gpu* gpu_;
  ManagerOptions options_;
  PartitionAllocator partitions_;
  PartitionBoundsTable bounds_;
  std::unordered_map<ClientId, ClientState> clients_;
  ClientId next_client_ = 1;
  ManagerStats stats_;
};

}  // namespace grd::guardian
