// grdManager: the trusted GPU manager process (paper §4.2).
//
// The manager is the only entity with GPU access. It:
//  - creates the single GPU context all tenants share (one context total —
//    the §2.2 memory argument against MPS's context-per-client);
//  - partitions device memory and serves each client's allocations from its
//    partition (§4.2.1);
//  - validates every host-initiated transfer against the partition bounds
//    table (§4.2.2);
//  - sandboxes every registered PTX module with the PTX-patcher (through a
//    content-addressed cache shared across tenants) and, on launch, looks up
//    the sandboxed kernel in the pointerToSymbol map and appends the
//    partition mask/base arguments (§4.2.3, Table 5);
//  - executes calls from different clients on different streams (§4.2.4 —
//    see ManagerServer in transport.hpp);
//  - contains device faults to the faulting client (the whole point).
//
// Since the layered refactor the class is a thin facade wiring three layers
// (see ARCHITECTURE.md):
//   session   — SessionRegistry / ClientSession (session.hpp)
//   dispatch  — typed handler registry (dispatch.hpp, handlers.cpp)
//   execution — shared GPU/partition/bounds state (execution.hpp)
// HandleRequest is thread-safe: the multi-worker ManagerServer calls it
// concurrently from several workers.
#pragma once

#include <cstdint>

#include "guardian/dispatch.hpp"
#include "guardian/execution.hpp"
#include "guardian/protocol.hpp"
#include "guardian/session.hpp"
#include "ipc/serializer.hpp"

namespace grd::guardian {

class SharedServingState;

class GrdManager {
 public:
  GrdManager(simcuda::Gpu* gpu, ManagerOptions options);

  // Process-mode worker: sessions/bounds/stats bind to the forked pool's
  // SharedRegion state (shared_state.hpp) on behalf of worker
  // `worker_index`. Client ids are pool-unique, every registration is
  // visible to the parent supervisor, and the stats counters aggregate
  // across all workers.
  GrdManager(simcuda::Gpu* gpu, ManagerOptions options,
             SharedServingState* shared, std::uint32_t worker_index);
  // Quiesces the device scheduler (cancelling queued work, joining the
  // executor pool) before any session state is torn down.
  ~GrdManager();

  // Full request dispatcher (one IPC message in, one out). Never throws and
  // never returns a malformed response; internal errors become error
  // responses. Safe to call concurrently.
  ipc::Bytes HandleRequest(const ipc::Bytes& request);

  const ManagerStats& stats() const noexcept { return exec_.stats; }
  const ManagerOptions& options() const noexcept { return exec_.options; }
  std::size_t active_clients() const noexcept { return sessions_.size(); }

  const Dispatcher& dispatcher() const noexcept { return dispatcher_; }
  const SandboxCache& sandbox_cache() const noexcept {
    return exec_.sandbox_cache;
  }
  // The primary device's scheduler (device 0) — the historical single-device
  // accessor; multi-device callers go through `execution().device(id)`.
  GpuScheduler& scheduler() noexcept { return exec_.device(0).scheduler; }
  ExecutionContext& execution() noexcept { return exec_; }

  // Deterministic live migration (tests/tools): moves `client` to
  // `device` under its session mutex, exactly as the automatic batch-arrival
  // trigger would. Thread-safe against concurrent requests of the session.
  Status Migrate(ClientId client, std::uint32_t device);

  // Called by the transport when a response could not be delivered.
  void NoteDroppedResponse() noexcept { ++exec_.stats.responses_dropped; }

  // Transport-layer accounting: one shm-ring message consumed / produced on
  // behalf of this manager. Counted at the ring read/write sites themselves
  // (ManagerServer sweeps and the process-mode worker pump) so the shared
  // process-mode stats aggregate exactly, message by message. The write
  // counter is bumped BEFORE the ring publish: a client that consumed a
  // response (and whoever it then unblocks) must never observe the shared
  // counter lagging the ring's own. A failed publish takes the bump back.
  void NoteRingRead() noexcept { ++exec_.stats.ring_messages_read; }
  void NoteRingWritten() noexcept { ++exec_.stats.ring_messages_written; }
  void NoteRingWriteAborted() noexcept { --exec_.stats.ring_messages_written; }

  // Session-scope priority class of `client` (kSetPriority scope 0), for the
  // ManagerServer's session-priority channel scheduling: ring pumping and
  // device admission share one notion of tenant priority. Unknown or
  // unregistered clients rank kNormal.
  protocol::PriorityClass SessionPriority(ClientId client) const;

  // Device memory the sharing layer itself consumes: exactly one context
  // regardless of client count (§2.2: 176 MB vs MPS's per-client growth).
  std::uint64_t SharingLayerFootprint() const noexcept {
    return simcuda::Gpu::kContextFootprintBytes;
  }

 private:
  ExecutionContext exec_;
  SessionRegistry sessions_;
  Dispatcher dispatcher_;
};

}  // namespace grd::guardian
