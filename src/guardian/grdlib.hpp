// grdLib: the client-side dynamically-loadable library (paper §4.1).
//
// In the paper grdLib is LD_PRELOADed so that every CUDA runtime and driver
// symbol — including the implicit calls issued inside closed-source
// accelerated libraries, and the driver library pulled in via dlopen() —
// resolves into it; the native CUDA libraries are removed from the search
// path so a missed symbol fails loudly instead of escaping interception.
// Here grdLib implements the same seam (`simcuda::CudaApi`): any
// application or simulated library written against the API runs unmodified
// on top of Guardian, and there is no other route to the device.
//
// Every method serializes the call and forwards it to the grdManager; host
// memory never crosses the boundary except as explicit message payloads
// (the per-application shared-memory segment of the paper).
#pragma once

#include <array>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "guardian/protocol.hpp"
#include "guardian/transport.hpp"
#include "simcuda/api.hpp"

namespace grd::guardian {

// Client half of the fault model (fleet/chaos harness): how grdLib behaves
// when the manager side crashes out from under it. All off by default — the
// historical behavior (errors surface raw, no recovery) is `{}`.
struct GrdLibOptions {
  // On kUnavailable (worker crashed, session failed, ring closed): run the
  // recovery path, up to this many attempts per call. Recovery is
  // attach-first: a kResumeSession with the old client id asks the
  // replacement worker to adopt the session from its shared journal — same
  // id, same partition (device pointers stay valid), modules / functions /
  // streams rebuilt server-side with identical ids — and then retries any
  // effect-idempotent call transparently (an interrupted launch resumes
  // from its journaled block checkpoint). If adoption is impossible (journal
  // overflowed, threaded mode) it falls back to a fresh registration, the
  // session priority re-applied and every recorded module load / function
  // lookup replayed so the client-facing handles stay valid; then only
  // fully idempotent calls retry, and non-idempotent ones surface
  // kUnavailable against the already-recovered session (old device
  // pointers / streams / events are gone, so the caller rebuilds those).
  // 0 disables recovery entirely.
  int recovery_attempts = 0;
  // Exponential backoff between recovery attempts (doubled each attempt,
  // capped): the supervisor needs time to repair the registry and respawn.
  std::chrono::microseconds recovery_backoff{500};
  std::chrono::microseconds recovery_backoff_max{20'000};
};

class GrdLib final : public simcuda::CudaApi {
 public:
  // Registers with the grdManager, reserving a partition of at least
  // `memory_requirement` bytes (§4.2.1: applications declare their memory
  // requirement at initialization). With recovery enabled in `options`,
  // registration itself also retries on kUnavailable (the connect may race
  // a worker respawn).
  static Result<GrdLib> Connect(ClientTransport* transport,
                                std::uint64_t memory_requirement,
                                GrdLibOptions options = {});

  GrdLib(GrdLib&&) = default;
  GrdLib(const GrdLib&) = delete;
  // Best-effort flush of still-buffered async calls: real CUDA executes
  // everything submitted, so buffered work must not die with the handle.
  // (A moved-from GrdLib has an empty buffer and flushes nothing.)
  ~GrdLib() {
    if (!pending_.empty()) (void)FlushBatch();
  }

  ClientId client_id() const noexcept { return client_; }
  std::uint64_t partition_base() const noexcept { return partition_base_; }
  std::uint64_t partition_size() const noexcept { return partition_size_; }
  // Fleet device the session is currently placed on (from the register or
  // resume reply; live migration may move it without notice).
  std::uint32_t device_id() const noexcept { return device_id_; }

  // Fault-model observability (see GrdLibOptions): successful session
  // recoveries, calls transparently retried after one, and recovery
  // attempts that themselves failed.
  std::uint64_t recoveries() const noexcept { return recoveries_; }
  std::uint64_t recovery_retries() const noexcept {
    return recovery_retries_;
  }
  std::uint64_t recovery_failures() const noexcept {
    return recovery_failures_;
  }
  // Recoveries that attached to an adopted session (kResumeSession) instead
  // of re-registering from scratch.
  std::uint64_t resume_attaches() const noexcept { return resume_attaches_; }

  Status Disconnect();

  // Progressive allocation extension (§4.4 future work): asks the manager
  // to double this client's partition in place. On success the local
  // partition view is refreshed; subsequent launches use the new mask.
  Status GrowPartition();

  // Preemption engine: tag this whole session (every current stream plus
  // streams created later) or a single stream with a priority class. A
  // kRealtime stream's kernels may revoke a running lower-priority kernel
  // at its next safe point instead of queueing behind it.
  Status SetPriority(protocol::PriorityClass priority);
  Status SetStreamPriority(simcuda::StreamId stream,
                           protocol::PriorityClass priority);

  // Batched IPC: coalesce adjacent asynchronous calls (non-default-stream
  // kernel launches and async H2D copies) into one kBatch ring message,
  // amortizing the per-call ring overhead. Buffered calls are flushed when
  // the buffer reaches `max_pending` entries (or a byte cap) and before any
  // non-batchable call; errors of buffered calls surface at the flush
  // point, CUDA-async style.
  void EnableBatching(std::size_t max_pending = 8);
  // Sends any buffered calls now. Returns the first sub-call error.
  Status FlushBatch() const;
  std::uint64_t batches_sent() const noexcept { return batches_sent_; }

  // ---- CudaApi (runtime) ----
  Status cudaMalloc(simcuda::DevicePtr* ptr, std::uint64_t size) override;
  Status cudaFree(simcuda::DevicePtr ptr) override;
  Status cudaMemcpy(void* dst_host, simcuda::DevicePtr src_dev,
                    std::uint64_t size, simcuda::MemcpyKind kind) override;
  Status cudaMemcpyH2D(simcuda::DevicePtr dst_dev, const void* src_host,
                       std::uint64_t size) override;
  Status cudaMemcpyD2D(simcuda::DevicePtr dst_dev, simcuda::DevicePtr src_dev,
                       std::uint64_t size) override;
  Status cudaMemset(simcuda::DevicePtr dst, int value,
                    std::uint64_t size) override;
  Status cudaMemcpyH2DAsync(simcuda::DevicePtr dst_dev, const void* src_host,
                            std::uint64_t size,
                            simcuda::StreamId stream) override;
  Status cudaLaunchKernel(simcuda::FunctionId func,
                          const simcuda::LaunchConfig& config,
                          std::vector<ptxexec::KernelArg> args) override;
  Status cudaStreamCreate(simcuda::StreamId* stream) override;
  Status cudaStreamDestroy(simcuda::StreamId stream) override;
  Status cudaStreamSynchronize(simcuda::StreamId stream) override;
  Status cudaStreamIsCapturing(simcuda::StreamId stream,
                               bool* capturing) override;
  Status cudaStreamGetCaptureInfo(simcuda::StreamId stream,
                                  std::uint64_t* capture_id) override;
  Status cudaEventCreateWithFlags(simcuda::EventId* event,
                                  std::uint32_t flags) override;
  Status cudaEventDestroy(simcuda::EventId event) override;
  Status cudaEventRecord(simcuda::EventId event,
                         simcuda::StreamId stream) override;
  Status cudaEventSynchronize(simcuda::EventId event) override;
  Status cudaStreamWaitEvent(simcuda::StreamId stream,
                             simcuda::EventId event) override;
  Status cudaDeviceSynchronize() override;
  Result<const simcuda::ExportTable*> cudaGetExportTable(
      simcuda::ExportTableId id) override;
  Result<simcuda::ModuleId> RegisterFatBinary(const std::string& ptx) override;
  Result<simcuda::FunctionId> RegisterFunction(
      simcuda::ModuleId module, const std::string& kernel) override;

  // ---- CudaApi (driver) ----
  Result<simcuda::ModuleId> cuModuleLoadData(const std::string& ptx) override;
  Result<simcuda::FunctionId> cuModuleGetFunction(
      simcuda::ModuleId module, const std::string& kernel) override;
  Status cuLaunchKernel(simcuda::FunctionId func,
                        const simcuda::LaunchConfig& config,
                        std::vector<ptxexec::KernelArg> args) override;
  Status cuMemAlloc(simcuda::DevicePtr* ptr, std::uint64_t size) override;
  Status cuMemFree(simcuda::DevicePtr ptr) override;
  Status cuMemcpyHtoD(simcuda::DevicePtr dst, const void* src,
                      std::uint64_t size) override;
  Status cuMemcpyDtoH(void* dst, simcuda::DevicePtr src,
                      std::uint64_t size) override;

  const simgpu::DeviceSpec& GetDeviceSpec() const override {
    return device_spec_;
  }

 private:
  // Client-side replay journal for one loaded module: enough to rebuild
  // the server-side state after a worker death. Client-facing module and
  // function handles are VIRTUAL (allocated locally, mapped to the current
  // server ids) precisely so recovery can swap the server ids underneath
  // without invalidating what the application holds.
  struct FunctionRecord {
    std::string name;
    std::uint64_t server_id = 0;
  };
  struct ModuleRecord {
    std::string ptx;
    std::uint64_t server_id = 0;
    std::map<std::uint64_t, FunctionRecord> functions;  // by client handle
  };

  explicit GrdLib(ClientTransport* transport) : transport_(transport) {}

  ipc::Writer NewRequest(protocol::Op op) const;
  Result<ipc::Reader> Call(ipc::Writer request,
                           ipc::Bytes* response_storage) const;
  Status CallNoPayload(ipc::Writer request) const;
  // One transport round trip + response decode, no recovery logic.
  Result<ipc::Reader> Transact(const ipc::Bytes& raw,
                               ipc::Bytes* response_storage) const;
  // Appends an async request to the batch buffer (flushing when full)
  // instead of sending it, when batching is on.
  Status BufferAsync(ipc::Writer request) const;
  Status FetchDeviceSpec();
  // Fresh kRegisterClient; rebinds client_/partition on success.
  Status Register() const;
  // kResumeSession with the current client id: attaches to a session the
  // replacement worker adopted from its journal (id, partition and all
  // server handles preserved). Any failure means "not adopted".
  Status ResumeAttach() const;
  // Attach-first session recovery; falls back to re-registration +
  // priority + module replay (see GrdLibOptions).
  Status Recover() const;
  // Sleeps the exponential-backoff slice for recovery attempt `attempt`.
  void BackoffSleep(int attempt) const;
  // Client-handle → current server-handle translation for launches.
  Result<std::uint64_t> TranslateFunction(std::uint64_t client_func) const;
  // Ops safe to re-send verbatim (client id re-patched) after a recovery.
  static bool IsRetryable(protocol::Op op);
  // Wider retry set usable only after an attach recovery, where every
  // server handle survived: effect-idempotent ops re-apply safely.
  static bool IsRetryableAfterAttach(protocol::Op op);
  // Ops whose kUnavailable should NOT trigger recovery at all.
  static bool IsRecoverable(protocol::Op op);

  ClientTransport* transport_;
  GrdLibOptions options_;
  std::uint64_t memory_requirement_ = 0;
  // Rebound by Recover(), which runs under const Call: hence mutable.
  mutable ClientId client_ = 0;
  mutable std::uint64_t partition_base_ = 0;
  mutable std::uint64_t partition_size_ = 0;
  mutable std::uint32_t device_id_ = 0;
  simgpu::DeviceSpec device_spec_;
  // Virtual-handle tables (see ModuleRecord). Server ids are refreshed in
  // place by Recover().
  mutable std::map<std::uint64_t, ModuleRecord> modules_;
  std::map<std::uint64_t, std::uint64_t> function_module_;  // fn → module
  std::uint64_t next_handle_ = 1;
  // Session priority class, re-applied on recovery.
  bool priority_set_ = false;
  protocol::PriorityClass priority_ = protocol::PriorityClass::kNormal;
  // Recovery state/counters (mutated under const Call).
  mutable bool recovering_ = false;
  mutable bool last_recovery_attached_ = false;
  mutable std::uint64_t recoveries_ = 0;
  mutable std::uint64_t recovery_retries_ = 0;
  mutable std::uint64_t recovery_failures_ = 0;
  mutable std::uint64_t resume_attaches_ = 0;
  // Batched-IPC state (mutable: buffering happens inside const Call paths).
  bool batching_enabled_ = false;
  std::size_t max_pending_ = 8;
  mutable std::vector<ipc::Bytes> pending_;
  mutable std::uint64_t pending_bytes_ = 0;
  mutable std::uint64_t batches_sent_ = 0;
  // Trace context NewRequest stamped into the most recent header, so Call
  // can close the matching client-side span (all zero when tracing is off).
  mutable obs::TraceContext last_trace_;
  mutable protocol::Op last_trace_op_{};
  mutable std::uint64_t last_trace_begin_ns_ = 0;
  // Export tables are reconstructed once and cached (paper: grdLib provides
  // a minimal implementation of the hidden functions).
  mutable std::array<std::unique_ptr<simcuda::ExportTable>,
                     simcuda::kExportTableCount>
      export_tables_;
};

}  // namespace grd::guardian
