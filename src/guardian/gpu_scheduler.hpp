// Device scheduler of the grdManager execution layer (see ARCHITECTURE.md).
//
// Replaces the old `gpu_mu` big lock: instead of serializing every kernel
// and memcpy behind one mutex, each CUDA stream is a real FIFO work queue
// and an executor pool drains the queues under an SM-occupancy model taken
// from simgpu's device spec (§4.2.4). Independent tenants' — and
// independent streams' — kernels co-reside on the simulated device as long
// as their combined SM footprint fits; same-stream ordering is preserved
// because only the head of a queue is ever runnable and a stream never has
// two operations in flight.
//
// Work item kinds:
//  - kernels    : carry an SM footprint; admitted when enough SMs are free;
//  - copies     : occupy one of the spec's DMA copy-engine slots, never SMs;
//  - event records / event waits: zero-cost markers resolved by the scan
//    loop itself, giving cudaEventRecord / cudaStreamWaitEvent real
//    cross-stream dependency semantics.
//
// Completion state is exposed through opaque tickets (`GpuTicket`);
// synchronization RPCs (StreamSynchronize / EventSynchronize /
// DeviceSynchronize) block on them, which makes those calls real waits
// instead of the no-ops they used to be.
// Preemption (preemption.hpp policy, this file's mechanism): stream queues
// carry priority classes; the scan admits kernels most-urgent-effective-class
// first (aging boosts starved heads), reserves the device for a blocked
// urgent kernel instead of backfilling less urgent ones, and revokes running
// lower-priority kernels at their next safe point. A revoked kernel's work
// item goes back to the head of its stream with its checkpoint intact and
// resumes later — the owning client is untouched.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "guardian/preemption.hpp"
#include "simgpu/device_spec.hpp"

namespace grd::ptxexec {
struct CompiledKernel;
}  // namespace grd::ptxexec

namespace grd::guardian {

struct ManagerStats;

// Per-run context handed to a preemptible kernel body. The body polls
// `preempt_requested`; when it stops at a safe point instead of completing
// it sets `preempted` (and the checkpoint accounting) and the executor
// requeues the item rather than finishing it.
struct KernelSlot {
  const std::atomic<bool>* preempt_requested = nullptr;
  bool preempted = false;
  // Set together with `preempted` when the stop was an instruction-budget
  // trip, not a priority revocation: the requeue mechanics are shared but
  // the telemetry is not (budget_requeues vs preemptions/resumes).
  bool budget_trip = false;
  std::uint64_t checkpoint_bytes = 0;
  // The bytecode program this run executes, set by the launch body once it
  // resolved native-vs-sandboxed (memoized in its LaunchState, so resumes
  // skip the by-name lookup and run the exact program they suspended with
  // even if the cache has since evicted the source entry). Exposes the
  // running program to the scheduler-side run context for introspection.
  std::shared_ptr<const ptxexec::CompiledKernel> program;
};

using PreemptibleBody = std::function<Status(KernelSlot&)>;

// Internal work-item record; opaque outside the scheduler.
struct GpuWorkItem;
using GpuTicket = std::shared_ptr<GpuWorkItem>;

// One CUDA stream: a FIFO of work items. Created by
// GpuScheduler::CreateStream and owned by the session layer via shared_ptr;
// all state lives behind the scheduler's lock.
class GpuStream;

// One CUDA event. `last_record` snapshots the most recent EventRecord op —
// CUDA semantics: waits/synchronizes target the record in effect at call
// time. Guarded by the scheduler's lock (only touched through scheduler
// calls).
struct GpuEvent {
  explicit GpuEvent(std::uint32_t flags_in = 0) : flags(flags_in) {}
  const std::uint32_t flags;
  GpuTicket last_record;
};

class GpuScheduler {
 public:
  // `stats` may be null (standalone use in tests); when set, the scheduler
  // maintains the occupancy/queue-depth counters in ManagerStats.
  GpuScheduler(const simgpu::DeviceSpec& spec, std::size_t executors,
               ManagerStats* stats, PreemptionConfig preemption = {});
  ~GpuScheduler();

  GpuScheduler(const GpuScheduler&) = delete;
  GpuScheduler& operator=(const GpuScheduler&) = delete;

  std::shared_ptr<GpuStream> CreateStream(
      PriorityClass priority = PriorityClass::kNormal);
  void SetStreamPriority(GpuStream& stream, PriorityClass priority);

  // FIFO-enqueues a kernel body occupying `sm_footprint` SMs. The body runs
  // on an executor thread once every earlier op of the stream finished and
  // the footprint fits into the free SMs.
  GpuTicket EnqueueKernel(GpuStream& stream, std::function<Status()> body,
                          int sm_footprint);
  // Preemptible variant: the body receives a KernelSlot, polls its
  // preempt_requested flag and may stop at a safe point (setting
  // slot.preempted), in which case the item is requeued at the head of its
  // stream and re-invoked later with the same captured state.
  GpuTicket EnqueuePreemptibleKernel(GpuStream& stream, PreemptibleBody body,
                                     int sm_footprint);
  // FIFO-enqueues a copy operation: occupies one DMA copy-engine slot
  // (spec.copy_engines concurrent), no SM occupancy.
  GpuTicket EnqueueCopy(GpuStream& stream, std::function<Status()> body);
  // Marks `event` as recorded once every earlier op of `stream` finished.
  GpuTicket RecordEvent(GpuStream& stream, GpuEvent& event);
  // Blocks later ops of `stream` until the record `event` currently carries
  // completes (no record yet = no-op, as in CUDA).
  GpuTicket EnqueueWaitEvent(GpuStream& stream, GpuEvent& event);

  // Blocks until the ticket's op completed; returns its status.
  Status Wait(const GpuTicket& ticket);
  // Drains the stream; returns its sticky first-error status (OkStatus when
  // every op so far succeeded).
  Status SynchronizeStream(GpuStream& stream);
  // Blocks until the record `event` currently carries completed.
  Status SynchronizeEvent(GpuEvent& event);
  // Drains the stream, then retires it: later enqueues fail with
  // InvalidArgument instead of orphaning work.
  Status DestroyStream(GpuStream& stream);

  // Cancels all queued work (tickets complete with kAborted), joins the
  // executor pool. Idempotent; called by the destructor and by the manager
  // before session state is torn down.
  void Shutdown();

  // ---- live migration (execution layer, under the session mutex) ----
  //
  // Moving a session to another device is scheduler surgery: pause its
  // streams (the scan stops admitting their heads, so nothing re-enters the
  // device), revoke any running kernel at its next safe point, wait for the
  // streams to go inactive, pull the still-queued items off, destroy the
  // drained streams here and Readmit the items into fresh streams created
  // on the target device's scheduler. Tickets remain valid throughout —
  // waiters hold the same GpuWorkItem and see it complete on the target.

  // Freezes admission for `stream`: queued ops stay queued (markers
  // included), a running op finishes or vacates on its own.
  void PauseStream(GpuStream& stream);
  // Rollback for an aborted migration: lifts the pause.
  void ResumeStream(GpuStream& stream);
  // Asks the stream's running preemptible kernel (if any) to vacate at its
  // next safe point; it requeues at the stream head with its checkpoint.
  // Returns true when a running kernel was actually asked — i.e. a
  // checkpointed kernel will resume mid-grid after re-admission.
  bool RequestStreamPreemption(GpuStream& stream);
  // Blocks until no op of `stream` is on an executor. Only meaningful after
  // PauseStream (otherwise the scan may immediately re-admit).
  void WaitStreamInactive(GpuStream& stream);
  // Pops every queued item off `stream` (front first, order preserved) and
  // returns them for re-admission elsewhere. The stream must be inactive.
  std::vector<GpuTicket> ExtractQueued(GpuStream& stream);
  // Appends a previously extracted item to `stream` on THIS scheduler,
  // re-clamping its SM footprint to this device. Aging restarts; the
  // item's checkpoint (captured in its body) is untouched.
  GpuTicket Readmit(GpuStream& stream, GpuTicket op);

  // The stream's current priority class (migration recreates the stream on
  // the target scheduler with the same class).
  PriorityClass StreamPriority(GpuStream& stream) const;

  // Introspection (benches/tests).
  int sms_in_use() const;
  int resident_kernels() const;
  // Ops currently sitting in stream queues (admission-load signal for the
  // migration trigger).
  std::uint64_t queue_depth() const;
  std::size_t executors() const noexcept { return executor_count_; }
  const simgpu::DeviceSpec& spec() const noexcept { return spec_; }
  const PreemptionEngine& preemption() const noexcept { return engine_; }

 private:
  // Common enqueue path: destroyed/stopped check, FIFO push, queue-depth
  // accounting, wake-up. `record_into` binds the op as the event's newest
  // record; `wait_on` snapshots the event's current record as a dependency.
  GpuTicket Submit(GpuStream& stream, GpuTicket op, GpuEvent* record_into,
                   GpuEvent* wait_on);
  void ExecutorLoop();
  // Completes ready marker ops and picks the next runnable body op,
  // most-urgent effective priority class first. Requires mu_ held. Returns
  // true when any marker completed.
  bool ScanLocked(GpuTicket* op, std::shared_ptr<GpuStream>* stream);
  // Asks running strictly-lower-base-priority preemptible kernels to vacate
  // enough SMs for a blocked waiter needing `needed_sms`.
  void RequestPreemptionLocked(PriorityClass waiter_base, int needed_sms);
  void FinishLocked(GpuStream& stream, const GpuTicket& op, Status status);
  void UpdatePeaksLocked();

  const simgpu::DeviceSpec spec_;
  const std::size_t executor_count_;
  ManagerStats* const stats_;
  const PreemptionEngine engine_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::weak_ptr<GpuStream>> streams_;
  std::size_t rotor_ = 0;  // round-robin start index for the scan
  int sms_in_use_ = 0;
  int resident_kernels_ = 0;
  int copies_in_flight_ = 0;  // bounded by spec_.copy_engines
  std::uint64_t queued_ops_ = 0;
  bool stopped_ = false;
  std::vector<std::thread> executors_;
};

}  // namespace grd::guardian
