#include "guardian/partition_allocator.hpp"

#include "common/bits.hpp"
#include "common/strings.hpp"

namespace grd::guardian {

PartitionAllocator::PartitionAllocator(std::uint64_t device_bytes,
                                       int growth_headroom)
    : device_bytes_(device_bytes),
      growth_headroom_(growth_headroom),
      carver_(device_bytes) {
  // Null-page guard; ignore failure only for pathologically tiny devices.
  (void)carver_.Allocate(64 * 1024, 256);
}

Result<PartitionBounds> PartitionAllocator::CreatePartition(
    std::uint64_t requested_bytes) {
  if (requested_bytes == 0)
    return Status(InvalidArgument("partition size must be positive"));
  const std::uint64_t size = NextPowerOfTwo(requested_bytes);
  // Align to the partition size so (addr & ~(size-1)) == base for every
  // in-partition address — the precondition of the Figure 4 mask trick.
  // Extra headroom alignment keeps future in-place doublings mask-valid.
  const std::uint64_t align = size << growth_headroom_;
  GRD_ASSIGN_OR_RETURN(std::uint64_t base, carver_.Allocate(size, align));
  Partition partition;
  partition.bounds = PartitionBounds{base, size};
  partition.suballocator = std::make_unique<simcuda::DeviceAllocator>(size);
  const PartitionBounds bounds = partition.bounds;
  partitions_.emplace(base, std::move(partition));
  return bounds;
}

Result<PartitionBounds> PartitionAllocator::CreatePartitionAt(
    std::uint64_t base, std::uint64_t size) {
  if (size == 0 || NextPowerOfTwo(size) != size)
    return Status(InvalidArgument("partition size must be a power of two"));
  if (!IsAligned(base, size))
    return Status(InvalidArgument("partition base " + ToHex(base) +
                                  " not aligned to its size"));
  if (partitions_.count(base) != 0)
    return Status(FailedPrecondition("partition already live at " +
                                     ToHex(base)));
  GRD_RETURN_IF_ERROR(carver_.AllocateAt(base, size));
  Partition partition;
  partition.bounds = PartitionBounds{base, size};
  partition.suballocator = std::make_unique<simcuda::DeviceAllocator>(size);
  const PartitionBounds bounds = partition.bounds;
  partitions_.emplace(base, std::move(partition));
  return bounds;
}

Status PartitionAllocator::ReleasePartition(std::uint64_t base) {
  const auto it = partitions_.find(base);
  if (it == partitions_.end())
    return NotFound("no partition at " + ToHex(base));
  partitions_.erase(it);
  return carver_.Free(base);
}

Result<PartitionBounds> PartitionAllocator::GrowPartition(std::uint64_t base) {
  const auto it = partitions_.find(base);
  if (it == partitions_.end())
    return Status(NotFound("no partition at " + ToHex(base)));
  const std::uint64_t size = it->second.bounds.size;
  const std::uint64_t doubled = size * 2;
  if (!IsAligned(base, doubled)) {
    return Status(FailedPrecondition(
        "partition base " + ToHex(base) +
        " is not aligned to the doubled size; mask invariant would break"));
  }
  // Claim the adjacent range and extend the sub-allocator's capacity.
  GRD_RETURN_IF_ERROR(carver_.GrowInPlace(base, size));
  it->second.bounds.size = doubled;
  it->second.suballocator->ExtendCapacity(size);
  return it->second.bounds;
}

Result<std::uint64_t> PartitionAllocator::AllocateIn(
    std::uint64_t partition_base, std::uint64_t size) {
  const auto it = partitions_.find(partition_base);
  if (it == partitions_.end())
    return Status(NotFound("no partition at " + ToHex(partition_base)));
  GRD_ASSIGN_OR_RETURN(std::uint64_t offset,
                       it->second.suballocator->Allocate(size));
  return partition_base + offset;
}

Status PartitionAllocator::AllocateExactIn(std::uint64_t partition_base,
                                           std::uint64_t addr,
                                           std::uint64_t size) {
  const auto it = partitions_.find(partition_base);
  if (it == partitions_.end())
    return NotFound("no partition at " + ToHex(partition_base));
  if (addr < partition_base ||
      addr + size > partition_base + it->second.bounds.size)
    return InvalidArgument("replayed block outside partition");
  return it->second.suballocator->AllocateAt(addr - partition_base, size);
}

Result<PartitionAllocator::Detached> PartitionAllocator::Detach(
    std::uint64_t base) {
  const auto it = partitions_.find(base);
  if (it == partitions_.end())
    return Status(NotFound("no partition at " + ToHex(base)));
  Detached out;
  out.bounds = it->second.bounds;
  out.suballocator = std::move(it->second.suballocator);
  partitions_.erase(it);
  GRD_RETURN_IF_ERROR(carver_.Free(base));
  return out;
}

Status PartitionAllocator::Attach(Detached& partition) {
  if (partitions_.count(partition.bounds.base) != 0)
    return FailedPrecondition("partition already live at " +
                              ToHex(partition.bounds.base));
  GRD_RETURN_IF_ERROR(
      carver_.AllocateAt(partition.bounds.base, partition.bounds.size));
  Partition installed;
  installed.bounds = partition.bounds;
  installed.suballocator = std::move(partition.suballocator);
  partitions_.emplace(installed.bounds.base, std::move(installed));
  return OkStatus();
}

bool PartitionAllocator::CanAttachAt(std::uint64_t base,
                                     std::uint64_t size) const noexcept {
  return partitions_.count(base) == 0 && carver_.RangeFree(base, size);
}

Status PartitionAllocator::FreeIn(std::uint64_t partition_base,
                                  std::uint64_t addr) {
  const auto it = partitions_.find(partition_base);
  if (it == partitions_.end())
    return NotFound("no partition at " + ToHex(partition_base));
  if (addr < partition_base ||
      addr >= partition_base + it->second.bounds.size)
    return InvalidArgument("pointer outside partition");
  return it->second.suballocator->Free(addr - partition_base);
}

}  // namespace grd::guardian
