#include "guardian/session.hpp"

namespace grd::guardian {

std::shared_ptr<ClientSession> SessionRegistry::Create(
    PartitionBounds partition, std::shared_ptr<GpuStream> default_stream) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  const ClientId id = next_id_++;
  auto session = std::make_shared<ClientSession>(id, std::move(default_stream));
  session->partition = partition;
  sessions_.emplace(id, session);
  return session;
}

Result<std::shared_ptr<ClientSession>> SessionRegistry::Find(
    ClientId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end())
    return Status(NotFound("unknown client " + std::to_string(id)));
  return it->second;
}

Status SessionRegistry::Erase(ClientId id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (sessions_.erase(id) == 0)
    return NotFound("unknown client " + std::to_string(id));
  return OkStatus();
}

std::size_t SessionRegistry::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace grd::guardian
