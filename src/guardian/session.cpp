#include "guardian/session.hpp"

#include "guardian/shared_state.hpp"

namespace grd::guardian {

void SessionRegistry::BindShared(SharedServingState* shared,
                                 std::uint32_t worker_index) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  shared_ = shared;
  worker_index_ = worker_index;
}

Result<std::shared_ptr<ClientSession>> SessionRegistry::Create(
    PartitionBounds partition, std::shared_ptr<GpuStream> default_stream,
    std::uint32_t device) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  ClientId id = 0;
  if (shared_ != nullptr) {
    // Pool-unique id + shared slot (bounds included), stamped with this
    // worker so the supervisor can fail exactly our sessions if we die.
    GRD_ASSIGN_OR_RETURN(
        id, shared_->AllocateSession(worker_index_, partition,
                                     protocol::PriorityClass::kNormal,
                                     device));
  } else {
    id = next_id_++;
  }
  auto session = std::make_shared<ClientSession>(id, std::move(default_stream));
  session->partition = partition;
  session->device_id.store(device, std::memory_order_relaxed);
  sessions_.emplace(id, session);
  return session;
}

std::shared_ptr<ClientSession> SessionRegistry::Restore(
    ClientId id, PartitionBounds partition,
    std::shared_ptr<GpuStream> default_stream, std::uint32_t device) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto session = std::make_shared<ClientSession>(id, std::move(default_stream));
  session->partition = partition;
  session->device_id.store(device, std::memory_order_relaxed);
  sessions_[id] = session;
  return session;
}

Result<std::shared_ptr<ClientSession>> SessionRegistry::Find(
    ClientId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = sessions_.find(id);
  if (it != sessions_.end()) return it->second;
  if (shared_ != nullptr) {
    // Not ours — distinguish "never existed" from "its worker crashed" so
    // orphaned clients see a clean containment status.
    SharedSessionSlot* slot = shared_->FindSession(id);
    if (slot != nullptr) {
      const auto state = static_cast<SessionSlotState>(
          slot->state.load(std::memory_order_acquire));
      if (state == SessionSlotState::kFailed)
        return Status(Unavailable(
            "client " + std::to_string(id) +
            " lost: its manager worker crashed (reconnect to register "
            "a fresh session)"));
      if (state == SessionSlotState::kActive)
        return Status(Unavailable("client " + std::to_string(id) +
                                  " is served by another manager worker"));
    }
  }
  return Status(NotFound("unknown client " + std::to_string(id)));
}

Status SessionRegistry::Erase(ClientId id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (sessions_.erase(id) == 0)
    return NotFound("unknown client " + std::to_string(id));
  if (shared_ != nullptr) GRD_RETURN_IF_ERROR(shared_->ReleaseSession(id));
  return OkStatus();
}

void SessionRegistry::PublishPriority(ClientId id,
                                      protocol::PriorityClass priority) {
  if (shared_ == nullptr) return;
  SharedSessionSlot* slot = shared_->FindSession(id);
  if (slot != nullptr)
    slot->priority.store(static_cast<std::uint32_t>(priority),
                         std::memory_order_release);
}

void SessionRegistry::PublishDevice(ClientId id, std::uint32_t device) {
  if (shared_ == nullptr) return;
  SharedSessionSlot* slot = shared_->FindSession(id);
  if (slot != nullptr)
    slot->device.store(device, std::memory_order_release);
}

void SessionRegistry::PublishPartition(ClientId id, PartitionBounds bounds) {
  if (shared_ == nullptr) return;
  SharedSessionSlot* slot = shared_->FindSession(id);
  if (slot == nullptr) return;
  slot->partition_base.store(bounds.base, std::memory_order_relaxed);
  slot->partition_size.store(bounds.size, std::memory_order_release);
}

std::size_t SessionRegistry::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace grd::guardian
