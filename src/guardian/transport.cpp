#include "guardian/transport.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace grd::guardian {

void ManagerServer::AddChannel(ipc::Channel* channel, double weight,
                               int priority) {
  auto entry = std::make_unique<Entry>();
  entry->channel = channel;
  entry->weight = weight;
  entry->priority = priority;
  channels_.push_back(std::move(entry));
  // Channels are fixed before Run()/Start(), so the priority order can be
  // computed here instead of sorting on every sweep.
  priority_order_.push_back(channels_.back().get());
  std::stable_sort(priority_order_.begin(), priority_order_.end(),
                   [](const Entry* a, const Entry* b) {
                     return a->priority > b->priority;
                   });
}

bool ManagerServer::ServeOne(Entry& entry) {
  if (!entry.parked.empty()) {
    // A previous response is still waiting for this (stalled) client to
    // drain its ring; deliver it before consuming anything new so strict
    // request/response pairing holds.
    manager_->NoteRingWritten();  // count-then-publish (see manager.hpp)
    if (!entry.channel->response().TryWrite(entry.parked).ok()) {
      manager_->NoteRingWriteAborted();
      return false;
    }
    entry.parked.clear();
    return true;
  }
  auto request = entry.channel->request().TryRead();
  if (!request.ok()) {
    if (request.status().code() == StatusCode::kAborted) {
      // Torn/garbage frame: the ring repaired itself (head clamped to tail,
      // frames_corrupt bumped). Fail only this session's in-flight call;
      // the ring stays usable for whatever the client sends next.
      const ipc::Bytes error = protocol::EncodeError(Status(
          Aborted("corrupt request frame discarded; ring resynchronized")));
      manager_->NoteRingWritten();
      if (!entry.channel->response().TryWrite(error).ok())
        manager_->NoteRingWriteAborted();
      return true;
    }
    return false;
  }
  manager_->NoteRingRead();
  {
    // Remember which session this channel carries so the session-priority
    // sweep can rank it by that tenant's class (cheap header peek; a
    // malformed header is rejected by HandleRequest below anyway).
    ipc::Reader peek(*request);
    auto header = protocol::ReadHeader(peek);
    if (header.ok() && header->client != 0)
      entry.last_client.store(header->client, std::memory_order_relaxed);
  }
  const ipc::Bytes response = manager_->HandleRequest(*request);
  manager_->NoteRingWritten();  // count-then-publish (see manager.hpp)
  Status written = entry.channel->response().TryWrite(response);
  if (!written.ok() && written.code() == StatusCode::kNotFound)
    written = entry.channel->response().WriteWithDeadline(
        response, std::chrono::milliseconds(2));
  if (!written.ok()) manager_->NoteRingWriteAborted();
  if (written.code() == StatusCode::kDeadlineExceeded) {
    entry.parked = response;  // stalled tenant; retried on later sweeps
  } else if (!written.ok()) {
    // The client vanished mid-call. The work is done and cannot be undone;
    // account for the undeliverable response instead of dropping silently.
    manager_->NoteDroppedResponse();
    GRD_LOG_WARN("ManagerServer")
        << "dropped response for vanished client channel: "
        << written.ToString();
  }
  return true;
}

std::size_t ManagerServer::SweepRoundRobin() {
  std::size_t served = 0;
  for (auto& entry : channels_) {
    if (!Claim(*entry)) continue;
    served += ServeOne(*entry) ? 1 : 0;
    Release(*entry);
  }
  return served;
}

std::size_t ManagerServer::SweepPriority() {
  // Strict priority: scan channels in descending priority order (precomputed
  // in AddChannel) and serve the first pending request; at most one request
  // per sweep so lower priorities are still polled when high ones go idle.
  for (Entry* entry : priority_order_) {
    if (!Claim(*entry)) continue;
    const bool served = ServeOne(*entry);
    Release(*entry);
    if (served) return 1;
  }
  return 0;
}

std::size_t ManagerServer::SweepWeightedFair() {
  std::size_t served = 0;
  for (auto& entry : channels_) {
    if (!Claim(*entry)) continue;
    entry->deficit += entry->weight;
    while (entry->deficit >= 1.0 && ServeOne(*entry)) {
      entry->deficit -= 1.0;
      ++served;
    }
    // An idle channel keeps no credit (classic DRR resets empty queues).
    if (entry->deficit >= 1.0) entry->deficit = 0.0;
    Release(*entry);
  }
  return served;
}

std::size_t ManagerServer::SweepSessionPriority() {
  // One request per channel per sweep, like round robin, but channels whose
  // session holds a more urgent class (kSetPriority) are visited first, so
  // a realtime tenant's requests never queue behind a batch tenant's ring
  // backlog inside the same sweep. Classes are snapshotted once per sweep:
  // one registry lookup per channel, and a mid-sweep retag cannot make a
  // channel be served twice (or skipped) within the same sweep.
  std::vector<int> classes(channels_.size());
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    const std::uint64_t client =
        channels_[i]->last_client.load(std::memory_order_relaxed);
    classes[i] = static_cast<int>(
        client == 0 ? protocol::PriorityClass::kNormal
                    : manager_->SessionPriority(client));
  }
  std::size_t served = 0;
  for (int cls = 0; cls < protocol::kPriorityClassCount; ++cls) {
    for (std::size_t i = 0; i < channels_.size(); ++i) {
      if (classes[i] != cls) continue;
      if (!Claim(*channels_[i])) continue;
      served += ServeOne(*channels_[i]) ? 1 : 0;
      Release(*channels_[i]);
    }
  }
  return served;
}

std::size_t ManagerServer::ServeOnce() {
  switch (policy_) {
    case Policy::kRoundRobin: return SweepRoundRobin();
    case Policy::kPriority: return SweepPriority();
    case Policy::kWeightedFair: return SweepWeightedFair();
    case Policy::kSessionPriority: return SweepSessionPriority();
  }
  return 0;
}

void ManagerServer::WorkerLoop(const std::atomic<bool>& stop) {
  IdleBackoff backoff;
  std::size_t doorbell_rotor = 0;
  while (true) {
    const std::size_t served = ServeOnce();
    if (served > 0) {
      backoff.Reset();
      continue;
    }
    if (stop.load(std::memory_order_acquire)) return;
    // Idle: park on a request-ring doorbell (rotating across channels; the
    // wait is claim-free — futex waiters multiplex safely) instead of
    // spin-sleeping. The 500µs bound keeps the worker polling the channels
    // it is not waiting on and noticing `stop`.
    if (ipc::ShmRing::kFutexDoorbell && !channels_.empty()) {
      if (channels_[doorbell_rotor++ % channels_.size()]
              ->channel->request()
              .WaitForMessage(std::chrono::microseconds(500)))
        backoff.Reset();
    } else {
      backoff.Pause();
    }
  }
}

void ManagerServer::Run(const std::atomic<bool>& stop) {
  std::vector<std::thread> extra;
  extra.reserve(workers_ - 1);
  for (std::size_t i = 1; i < workers_; ++i)
    extra.emplace_back([this, &stop] { WorkerLoop(stop); });
  WorkerLoop(stop);
  for (std::thread& worker : extra) worker.join();
}

void ManagerServer::Start() {
  if (self_runner_.joinable()) return;  // already running
  self_stop_.store(false, std::memory_order_release);
  self_runner_ = std::thread([this] { Run(self_stop_); });
}

void ManagerServer::Stop() {
  if (!self_runner_.joinable()) return;
  self_stop_.store(true, std::memory_order_release);
  self_runner_.join();
}

}  // namespace grd::guardian
